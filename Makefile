# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet race bench cover experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

cover:
	go test -cover ./...

# Full-scale experiment tables (EXPERIMENTS.md source data).
experiments:
	go run ./cmd/ltbench -seed 42 | tee results_full.txt

examples:
	go run ./examples/quickstart
	go run ./examples/figure1
	go run ./examples/sensornet
	go run ./examples/faulttolerant
	go run ./examples/distributed

clean:
	go clean ./...
