# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet race bench microbench cover experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Fixed benchmark suite → BENCH_PR10.json (the performance trajectory; see
# EXPERIMENTS.md "Benchmarks"). Pass BENCHFLAGS=-quick for the CI smoke run.
bench:
	go run ./cmd/ltbench -bench -benchout BENCH_PR10.json $(BENCHFLAGS)

# Raw go-test microbenchmarks across all packages.
microbench:
	go test -bench=. -benchmem ./...

cover:
	go test -cover ./...

# Full-scale experiment tables (EXPERIMENTS.md source data).
experiments:
	go run ./cmd/ltbench -seed 42 | tee results_full.txt

examples:
	go run ./examples/quickstart
	go run ./examples/figure1
	go run ./examples/sensornet
	go run ./examples/faulttolerant
	go run ./examples/distributed

clean:
	go clean ./...
