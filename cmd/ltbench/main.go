// Command ltbench runs the reproduction experiments of DESIGN.md and prints
// their tables. By default it runs everything at full scale; use -quick for
// a fast smoke pass and -run to select specific experiments.
//
// Usage:
//
//	ltbench [-run E1,E7] [-seed 42] [-trials 10] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E7) or \"all\"")
	seed := flag.Uint64("seed", 42, "root random seed")
	trials := flag.Int("trials", 0, "trials per data point (0 = experiment default)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	list := flag.Bool("list", false, "list available experiments and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Get(id)
			fmt.Printf("%-4s %s\n", id, e.Title)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	var ids []string
	if strings.EqualFold(*run, "all") {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for i, id := range ids {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ltbench:", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		var rerr error
		if *csv {
			fmt.Printf("# %s: %s\n", tab.ID, tab.Title)
			rerr = tab.WriteCSV(os.Stdout)
		} else {
			rerr = tab.Render(os.Stdout)
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "ltbench:", rerr)
			os.Exit(1)
		}
	}
}
