// Command ltbench runs the reproduction experiments of DESIGN.md and prints
// their tables. By default it runs everything at full scale; use -quick for
// a fast smoke pass and -run to select specific experiments. With -bench it
// instead runs the fixed benchmark suite of internal/bench and writes a
// BENCH_*.json report (the repository's performance trajectory).
//
// Usage:
//
//	ltbench [-run E1,E7] [-seed 42] [-trials 10] [-quick] [-trace e.jsonl]
//	ltbench -run E25 -budget 50000          (refinement lifetime-vs-budget curve)
//	ltbench -deadline 2m                    (stop between trials at the wall clock)
//	ltbench -bench [-quick] [-benchout BENCH_PR10.json]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/budgetflag"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

// run is main minus os.Exit, so deferred profile writers actually flush.
func run() int {
	runExps := flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E7) or \"all\"")
	seed := flag.Uint64("seed", 42, "root random seed")
	trials := flag.Int("trials", 0, "trials per data point (0 = experiment default)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	list := flag.Bool("list", false, "list available experiments and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	doBench := flag.Bool("bench", false, "run the fixed benchmark suite instead of experiments")
	benchOut := flag.String("benchout", "BENCH_PR10.json", "benchmark report path (with -bench)")
	traceOut := flag.String("trace", "", "write experiment trial/reconfig events as JSONL to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	bf := budgetflag.Register(flag.CommandLine)
	flag.Parse()
	if err := bf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ltbench:", err)
		return 1
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ltbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ltbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ltbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ltbench:", err)
			}
		}()
	}

	if *doBench {
		return runBench(*quick, *benchOut)
	}

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Get(id)
			fmt.Printf("%-4s %s\n", id, e.Title)
		}
		return 0
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Quick: *quick, Budget: bf.Budget}
	if bf.Deadline > 0 {
		// The unified -deadline flag maps onto the experiments cancellation
		// contract: a sticky wall-clock check polled between trials.
		deadline := time.Now().Add(bf.Deadline)
		cfg.Cancel = func() bool { return !time.Now().Before(deadline) }
	}
	var traceClose func() error
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ltbench:", err)
			return 1
		}
		buf := bufio.NewWriter(tf)
		jsonl := obs.NewJSONL(buf)
		cfg.Trace = jsonl
		traceClose = func() error {
			if err := jsonl.Err(); err != nil {
				return err
			}
			if err := buf.Flush(); err != nil {
				return err
			}
			return tf.Close()
		}
	}
	var ids []string
	if strings.EqualFold(*runExps, "all") {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*runExps, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for i, id := range ids {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ltbench:", err)
			return 1
		}
		if i > 0 {
			fmt.Println()
		}
		var rerr error
		if *csv {
			fmt.Printf("# %s: %s\n", tab.ID, tab.Title)
			rerr = tab.WriteCSV(os.Stdout)
		} else {
			rerr = tab.Render(os.Stdout)
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "ltbench:", rerr)
			return 1
		}
	}
	if traceClose != nil {
		if err := traceClose(); err != nil {
			fmt.Fprintf(os.Stderr, "ltbench: -trace %s: %v\n", *traceOut, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	return 0
}

func runBench(quick bool, out string) int {
	rep := bench.Run(quick)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ltbench:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ltbench:", err)
		return 1
	}
	for _, c := range rep.Cases {
		line := fmt.Sprintf("%-40s %12.0f ns/op %6d allocs/op", c.Name, c.NsPerOp, c.AllocsPerOp)
		if c.Speedup > 0 {
			line += fmt.Sprintf("   %.2fx vs baseline", c.Speedup)
		}
		fmt.Println(line)
	}
	fmt.Printf("wrote %s (%d cases)\n", out, len(rep.Cases))
	return 0
}
