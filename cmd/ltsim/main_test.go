package main

import "testing"

func TestValidateFlags(t *testing.T) {
	valid := flags{alg: "uniform", b: 3, k: 1}
	if err := valid.validate(); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	cases := []struct {
		name string
		f    flags
	}{
		{"unknown alg", flags{alg: "frob", b: 3, k: 1}},
		{"negative b", flags{alg: "uniform", b: -1, k: 1}},
		{"negative bmax", flags{alg: "uniform", b: 3, bmax: -2, k: 1}},
		{"zero k", flags{alg: "uniform", b: 3, k: 0}},
		{"negative k", flags{alg: "ft", b: 3, k: -2}},
		{"negative failures", flags{alg: "uniform", b: 3, k: 1, failures: -1}},
		{"failures with b 0", flags{alg: "uniform", b: 0, k: 1, failures: 5}},
		{"loss out of range", flags{alg: "uniform", b: 3, k: 1, healing: true, loss: 1.0}},
		{"loss without heal", flags{alg: "uniform", b: 3, k: 1, loss: 0.2}},
		{"delta with heal", flags{alg: "uniform", b: 3, k: 1, healing: true, delta: "d.json"}},
		{"negative delta-at", flags{alg: "uniform", b: 3, k: 1, delta: "d.json", deltaAt: -1}},
		{"negative overlap", flags{alg: "uniform", b: 3, k: 1, delta: "d.json", overlap: -1}},
		{"wakeloss out of range", flags{alg: "uniform", b: 3, k: 1, delta: "d.json", wakeloss: 1.0}},
		{"wakeloss without delta", flags{alg: "uniform", b: 3, k: 1, wakeloss: 0.5}},
		{"negative shards", flags{alg: "uniform", b: 3, k: 1, shards: -2}},
		{"geom partitioner", flags{alg: "uniform", b: 3, k: 1, shards: 4, partitioner: "geom"}},
		{"unknown partitioner", flags{alg: "uniform", b: 3, k: 1, shards: 4, partitioner: "metis"}},
	}
	for _, c := range cases {
		if err := c.f.validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// -failures with -bmax set is fine: batteries are positive.
	ok := flags{alg: "uniform", b: 0, bmax: 4, k: 1, failures: 5}
	if err := ok.validate(); err != nil {
		t.Errorf("failures with bmax rejected: %v", err)
	}
	healOK := flags{alg: "uniform", b: 3, k: 1, healing: true, loss: 0.3}
	if err := healOK.validate(); err != nil {
		t.Errorf("heal with loss rejected: %v", err)
	}
	// The observability flags are valid in any combination, on either
	// runtime.
	obsOK := flags{alg: "uniform", b: 3, k: 1,
		trace: "run.jsonl", metrics: true, obsAddr: "127.0.0.1:0"}
	if err := obsOK.validate(); err != nil {
		t.Errorf("obs flags rejected: %v", err)
	}
	obsHeal := flags{alg: "ft", b: 3, k: 2, healing: true, trace: "run.jsonl"}
	if err := obsHeal.validate(); err != nil {
		t.Errorf("obs flags with heal rejected: %v", err)
	}
	shardOK := flags{alg: "uniform", b: 3, k: 1, shards: 4, partitioner: "bfs"}
	if err := shardOK.validate(); err != nil {
		t.Errorf("shard flags rejected: %v", err)
	}
	deltaOK := flags{alg: "uniform", b: 3, k: 1,
		delta: "d.json", deltaAt: 2, overlap: 2, wakeloss: 0.5, chaos: "", trace: "run.jsonl"}
	if err := deltaOK.validate(); err != nil {
		t.Errorf("delta flags rejected: %v", err)
	}
}
