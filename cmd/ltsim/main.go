// Command ltsim executes a cluster-lifetime schedule slot by slot on the
// energy simulator, optionally injecting faults (random node failures or a
// full chaos plan) and optionally running the self-healing runtime, and
// reports the achieved lifetime, coverage trace, and energy use.
//
// Usage:
//
//	graphgen -family gnp -n 200 -p 0.08 | ltsim -alg uniform -b 4
//	ltsim -graph g.edges -alg ft -b 4 -k 2 -failures 10
//	ltsim -graph g.edges -alg general -bmax 6 -covtrace
//	ltsim -graph g.edges -alg uniform -b 4 -refine tabu -budget 50000
//	ltsim -graph g.edges -alg uniform -b 4 -chaos "crash=10,leak=5x2" -heal -loss 0.15
//	ltsim -graph g.edges -alg uniform -b 4 -trace run.jsonl -metrics -obs-addr 127.0.0.1:8135
//	ltsim -graph g.edges -alg uniform -b 4 -delta d.json -delta-at 3 -overlap 2 -wakeloss 0.5
//
// Observability: -trace FILE streams the typed per-slot event trace as JSONL
// (byte-identical across runs with the same seed), -metrics prints the
// aggregated counters after the run, and -obs-addr serves the live metrics
// snapshot as JSON over HTTP while the simulation runs.
//
// Reconfiguration: -delta FILE applies a JSON graph.Delta (the PATCH
// /v1/schedule payload format) at slot -delta-at through the live
// reconfiguration simulator — the planner computes an overlap transition
// (-overlap slots; 0 = naive re-solve-and-swap) and sleeping survivors miss
// the install with probability -wakeloss.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/budgetflag"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/heal"
	"repro/internal/obs"
	"repro/internal/reconfig"
	"repro/internal/rng"
	"repro/internal/sensim"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/solver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ltsim:", err)
		os.Exit(1)
	}
}

// flags collects the command-line configuration so validation is testable.
type flags struct {
	alg         string
	refine      string
	b           int
	bmax        int
	k           int
	failures    int
	loss        float64
	healing     bool
	chaos       string
	trace       string // JSONL event-trace output path ("" = off)
	metrics     bool   // print the aggregated metrics after the run
	obsAddr     string // serve the live metrics snapshot over HTTP ("" = off)
	delta       string // JSON graph.Delta to apply mid-run ("" = off)
	deltaAt     int    // slot at which the delta lands
	overlap     int    // overlap window for the planned transition
	wakeloss    float64
	shards      int    // partition-solve-stitch when > 1
	partitioner string // shard partitioner name
}

// validate rejects nonsensical flag combinations with actionable errors —
// historically several of these panicked deep inside the libraries.
func (f flags) validate() error {
	switch f.alg {
	case "uniform", "general", "ft", solver.NameGrid, solver.NameAuto:
	default:
		return fmt.Errorf("unknown algorithm %q (have uniform, general, ft, grid, auto)", f.alg)
	}
	switch f.refine {
	case "", solver.NameTabu, solver.NameAnneal:
	default:
		return fmt.Errorf("unknown refiner %q (have %s)", f.refine,
			strings.Join(solver.RefinerNames(), ", "))
	}
	if f.b < 0 {
		return fmt.Errorf("-b %d: battery must be >= 0", f.b)
	}
	if f.bmax < 0 {
		return fmt.Errorf("-bmax %d: battery cap must be >= 0", f.bmax)
	}
	if f.k < 1 {
		return fmt.Errorf("-k %d: domination tolerance must be >= 1", f.k)
	}
	if f.failures < 0 {
		return fmt.Errorf("-failures %d: crash count must be >= 0", f.failures)
	}
	if f.failures > 0 && f.b == 0 && f.bmax == 0 {
		return fmt.Errorf("-failures %d with -b 0: a zero-battery network has no schedule to crash; give -b or -bmax", f.failures)
	}
	if f.loss < 0 || f.loss >= 1 {
		return fmt.Errorf("-loss %v: loss probability must be in [0, 1)", f.loss)
	}
	if f.loss > 0 && !f.healing {
		return fmt.Errorf("-loss degrades the patch-protocol radio and needs -heal")
	}
	if f.delta != "" && f.healing {
		return fmt.Errorf("-delta runs the reconfiguration simulator, -heal the self-healing runtime; pick one")
	}
	if f.deltaAt < 0 {
		return fmt.Errorf("-delta-at %d: the change slot must be >= 0", f.deltaAt)
	}
	if f.overlap < 0 {
		return fmt.Errorf("-overlap %d: the overlap window must be >= 0", f.overlap)
	}
	if f.wakeloss < 0 || f.wakeloss >= 1 {
		return fmt.Errorf("-wakeloss %v: wake-loss probability must be in [0, 1)", f.wakeloss)
	}
	if f.wakeloss > 0 && f.delta == "" {
		return fmt.Errorf("-wakeloss models missed schedule installs and needs -delta")
	}
	if f.shards < 0 {
		return fmt.Errorf("-shards %d: shard count must not be negative", f.shards)
	}
	if f.shards > 1 {
		switch f.partitioner {
		case "", "bfs":
		case "geom":
			return fmt.Errorf("-partitioner geom needs node coordinates, which edge-list input does not carry; use bfs")
		default:
			return fmt.Errorf("unknown partitioner %q (have %s)", f.partitioner,
				strings.Join(shard.Partitioners(), ", "))
		}
	}
	return nil
}

func run() error {
	graphPath := flag.String("graph", "-", "edge-list file (\"-\" = stdin)")
	var f flags
	flag.StringVar(&f.alg, "alg", "uniform", "uniform|general|ft")
	flag.IntVar(&f.b, "b", 3, "uniform battery")
	flag.IntVar(&f.bmax, "bmax", 0, "random batteries in [1, bmax] (0 = uniform b)")
	flag.IntVar(&f.k, "k", 1, "domination tolerance")
	kConst := flag.Float64("K", 3, "color-range constant")
	seed := flag.Uint64("seed", 1, "random seed")
	tries := flag.Int("tries", 30, "WHP retry budget")
	flag.StringVar(&f.refine, "refine", "", "refinement solver run on -alg's schedule: "+
		strings.Join(solver.RefinerNames(), "|")+" (\"\" = off)")
	bf := budgetflag.Register(flag.CommandLine)
	flag.IntVar(&f.failures, "failures", 0, "random node crashes to inject")
	flag.StringVar(&f.chaos, "chaos", "", `chaos plan spec, e.g. "crash=10,blackout=2x3,leak=5x2,loss=0.1"`)
	flag.BoolVar(&f.healing, "heal", false, "run the self-healing runtime (patch → replan → degrade)")
	flag.Float64Var(&f.loss, "loss", 0, "patch-protocol radio loss probability (with -heal)")
	covtrace := flag.Bool("covtrace", false, "print the per-slot coverage trace")
	flag.StringVar(&f.trace, "trace", "", "write the typed event trace as JSONL to this file")
	flag.BoolVar(&f.metrics, "metrics", false, "print the aggregated metrics after the run")
	flag.StringVar(&f.obsAddr, "obs-addr", "", "serve the live metrics snapshot as JSON on this address (e.g. 127.0.0.1:8135)")
	flag.StringVar(&f.delta, "delta", "", "apply this JSON graph delta mid-run (reconfiguration simulator)")
	flag.IntVar(&f.deltaAt, "delta-at", 0, "slot at which the -delta lands")
	flag.IntVar(&f.overlap, "overlap", reconfig.DefaultOverlap, "overlap slots for the planned transition (0 = naive swap)")
	flag.Float64Var(&f.wakeloss, "wakeloss", 0, "probability a sleeping survivor misses the new schedule's install (with -delta)")
	flag.IntVar(&f.shards, "shards", 1, "partition into this many shards, solve concurrently, stitch with boundary repair (1 = whole graph)")
	flag.StringVar(&f.partitioner, "partitioner", "bfs", "shard partitioner: "+
		strings.Join(shard.Partitioners(), "|")+" (edge-list input supports bfs)")
	flag.Parse()

	if err := f.validate(); err != nil {
		return err
	}
	if err := bf.Validate(); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if *graphPath != "-" {
		file, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		defer file.Close()
		in = file
	}
	g, hint, err := graph.ReadEdgeListHinted(in)
	if err != nil {
		return err
	}

	src := rng.New(*seed)
	batteries := make([]int, g.N())
	for i := range batteries {
		if f.bmax > 0 {
			batteries[i] = 1 + src.Intn(f.bmax)
		} else {
			batteries[i] = f.b
		}
	}
	// The uniform algorithms schedule against the scalar -b even when -bmax
	// randomized the simulated batteries (the historical ltsim behavior);
	// only "general" consumes the per-node vector.
	budgets := batteries
	spec := solver.Spec{Name: f.alg, KConst: *kConst}
	scheduleK := 1
	switch f.alg {
	case solver.NameUniform:
		budgets = uniformBudgets(g.N(), f.b)
	case solver.NameFT:
		budgets = uniformBudgets(g.N(), f.b)
		scheduleK = f.k
	}
	if f.refine != "" {
		spec.Name, spec.Base = f.refine, f.alg
	}
	inst := instance.New(g, budgets).WithK(scheduleK).WithHint(instance.ParseHint(hint))
	opt := solver.Options{Tries: *tries, Src: src.Split()}
	bf.Apply(&opt, time.Now())
	var s *core.Schedule
	if f.shards > 1 {
		p, err := shard.ByName(f.partitioner, g, nil, f.shards, *seed)
		if err != nil {
			return err
		}
		solved, err := shard.SolveShards(inst, p, shard.Options{
			Spec: spec, Solver: opt, Seed: *seed, TransientPool: true,
		})
		if err != nil {
			return err
		}
		st, err := shard.Stitch(inst, p, solved, obs.Hooks{})
		if err != nil {
			return err
		}
		s = st.Schedule
		fmt.Printf("sharded solve: %d shards (%s), %d boundary repairs, %d replans\n",
			f.shards, f.partitioner, st.Repairs, st.Replans)
	} else {
		var err error
		if s, err = solver.Solve(inst, spec, opt); err != nil {
			return err
		}
	}

	horizon := maxInt(1, s.Lifetime())
	plan := chaos.Plan{Crashes: energy.RandomFailures(g, f.failures, horizon, src.Split())}
	if f.chaos != "" {
		spec, err := chaos.ParseSpec(f.chaos, g, horizon, src.Split())
		if err != nil {
			return err
		}
		plan = chaos.Merge(plan, spec)
	}

	// Observability: assemble the tracer fan-out (JSONL file, metrics
	// registry) and optionally serve the live snapshot over HTTP.
	var tracers []obs.Tracer
	var jsonl *obs.JSONL
	var traceBuf *bufio.Writer
	var traceFile *os.File
	if f.trace != "" {
		tf, err := os.Create(f.trace)
		if err != nil {
			return err
		}
		traceFile = tf
		traceBuf = bufio.NewWriter(tf)
		jsonl = obs.NewJSONL(traceBuf)
		tracers = append(tracers, jsonl)
	}
	var reg *obs.Registry
	if f.metrics || f.obsAddr != "" {
		reg = obs.NewRegistry()
		tracers = append(tracers, obs.NewMetricsSink(reg))
	}
	hooks := obs.Hooks{Trace: obs.Tee(tracers...)}
	if f.obsAddr != "" {
		// The serve package owns the HTTP lifecycle: same mux shape as
		// ltserve (/healthz, /metrics, plus the legacy root snapshot) and a
		// graceful stop instead of an abandoned listener.
		hs, err := serve.StartHTTP(f.obsAddr, serve.ObsMux(reg))
		if err != nil {
			return fmt.Errorf("-obs-addr %s: %w", f.obsAddr, err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			hs.Stop(ctx) //nolint:errcheck // best-effort on exit
		}()
		fmt.Printf("obs: serving metrics snapshot at http://%s/\n", hs.Addr())
	}

	enet := energy.NewNetwork(g, batteries)
	algLabel := f.alg
	if f.alg == solver.NameAuto {
		// Probe with a fresh auto spec \u2014 the solve spec may have been
		// rewritten by -refine \u2014 so the label reports the dispatch target.
		if _, eff, err := solver.Effective(inst, solver.Spec{Name: solver.NameAuto, KConst: *kConst}); err == nil {
			algLabel = "auto\u2192" + eff.Name
		}
	}
	if f.refine != "" {
		algLabel = algLabel + "+" + f.refine
	}
	fmt.Printf("graph: %v\n", g)
	fmt.Printf("schedule: %s, nominal lifetime %d\n", algLabel, s.Lifetime())

	var coverage []float64
	if f.delta != "" {
		d, err := readDelta(f.delta)
		if err != nil {
			return err
		}
		res, err := reconfig.Simulate(g, s, batteries, []reconfig.Change{{At: f.deltaAt, Delta: d}},
			reconfig.SimOptions{
				K: f.k, Overlap: f.overlap, Solver: f.alg,
				Tries: *tries, Seed: *seed, WakeLoss: f.wakeloss,
				Chaos: plan, Hooks: hooks,
			})
		if err != nil {
			return err
		}
		report(res.Deaths, res.AchievedLifetime, res.FirstViolation)
		fmt.Printf("reconfig: nominal lifetime %d across %d transitions (%d degraded, %d violated)\n",
			res.ScheduleLifetime, res.Reconfigs, res.DegradedTransitions, res.ViolatedTransitions)
		fmt.Printf("reconfig: %d wake misses; covered %d of %d simulated slots\n",
			res.WakeMisses, res.CoveredSlots, res.Slots)
		fmt.Printf("energy spent: %d units (%d on overlap windows)\n",
			res.EnergySpent, res.OverlapEnergy)
	} else if f.healing {
		res := heal.Run(enet, s, heal.Options{
			K: f.k, Chaos: plan, Loss: f.loss, Src: src.Split(), Hooks: hooks,
		})
		coverage = res.Coverage
		report(res.Deaths, res.AchievedLifetime, res.FirstViolation)
		fmt.Printf("healing: %d patch attempts (%d retries), %d slots patched, %d recruits\n",
			res.PatchAttempts, res.Retries, res.PatchSuccesses, res.Recruited)
		fmt.Printf("healing: %d replans, %d degraded slots; protocol %d msgs / %d rounds / %d dropped\n",
			res.Replans, res.DegradedSlots,
			res.Protocol.Messages, res.Protocol.Rounds, res.Protocol.Dropped)
		fmt.Printf("energy spent: %d units\n", res.EnergySpent)
	} else {
		res := sensim.Run(enet, s, sensim.Options{
			K: f.k, Inject: plan.Injector().WithHooks(hooks), Hooks: hooks,
		})
		coverage = res.Coverage
		report(res.Deaths, res.AchievedLifetime, res.FirstViolation)
		fmt.Printf("energy spent: %d units; sensor reports delivered: %d\n",
			res.EnergySpent, res.ReportsDelivered)
	}
	if *covtrace {
		for t, c := range coverage {
			fmt.Printf("slot %3d: coverage %.3f\n", t, c)
		}
	}
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			return fmt.Errorf("-trace %s: %w", f.trace, err)
		}
		if err := traceBuf.Flush(); err != nil {
			return fmt.Errorf("-trace %s: %w", f.trace, err)
		}
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("-trace %s: %w", f.trace, err)
		}
		fmt.Printf("trace written to %s\n", f.trace)
	}
	if f.metrics {
		fmt.Println("metrics:")
		if err := reg.WriteSummary(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// readDelta parses a JSON graph.Delta file (the PATCH payload's delta
// object), rejecting unknown fields so a typoed key fails loudly instead of
// silently simulating the wrong change.
func readDelta(path string) (graph.Delta, error) {
	var d graph.Delta
	file, err := os.Open(path)
	if err != nil {
		return d, err
	}
	defer file.Close()
	dec := json.NewDecoder(file)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return d, fmt.Errorf("-delta %s: %w", path, err)
	}
	return d, nil
}

// report prints the fault and lifetime summary shared by both runtimes.
func report(deaths, achieved, firstViolation int) {
	fmt.Printf("deaths: %d\n", deaths)
	fmt.Printf("achieved lifetime: %d slots\n", achieved)
	if firstViolation >= 0 {
		fmt.Printf("first coverage violation: slot %d\n", firstViolation)
	} else {
		fmt.Printf("first coverage violation: none\n")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// uniformBudgets broadcasts the scalar battery b over n nodes for the
// solver registry's budget-vector surface.
func uniformBudgets(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}
