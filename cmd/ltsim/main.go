// Command ltsim executes a cluster-lifetime schedule slot by slot on the
// energy simulator, optionally injecting random node failures, and reports
// the achieved lifetime, coverage trace, and energy use.
//
// Usage:
//
//	graphgen -family gnp -n 200 -p 0.08 | ltsim -alg uniform -b 4
//	ltsim -graph g.edges -alg ft -b 4 -k 2 -failures 10
//	ltsim -graph g.edges -alg general -bmax 6 -trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sensim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ltsim:", err)
		os.Exit(1)
	}
}

func run() error {
	graphPath := flag.String("graph", "-", "edge-list file (\"-\" = stdin)")
	alg := flag.String("alg", "uniform", "uniform|general|ft")
	b := flag.Int("b", 3, "uniform battery")
	bmax := flag.Int("bmax", 0, "random batteries in [1, bmax] (0 = uniform b)")
	k := flag.Int("k", 1, "domination tolerance")
	kConst := flag.Float64("K", 3, "color-range constant")
	seed := flag.Uint64("seed", 1, "random seed")
	tries := flag.Int("tries", 30, "WHP retry budget")
	failures := flag.Int("failures", 0, "random node crashes to inject")
	trace := flag.Bool("trace", false, "print the per-slot coverage trace")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := graph.ReadEdgeList(in)
	if err != nil {
		return err
	}

	src := rng.New(*seed)
	batteries := make([]int, g.N())
	for i := range batteries {
		if *bmax > 0 {
			batteries[i] = 1 + src.Intn(*bmax)
		} else {
			batteries[i] = *b
		}
	}
	opt := core.Options{K: *kConst, Src: src.Split()}

	var s *core.Schedule
	switch *alg {
	case "uniform":
		s = core.UniformWHP(g, *b, opt, *tries)
	case "general":
		s = core.GeneralWHP(g, batteries, opt, *tries)
	case "ft":
		s = core.FaultTolerantWHP(g, *b, *k, opt, *tries)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	net := energy.NewNetwork(g, batteries)
	plan := energy.RandomFailures(g, *failures, maxInt(1, s.Lifetime()), src.Split())
	res := sensim.Run(net, s, sensim.Options{K: *k, Failures: plan})

	fmt.Printf("graph: %v\n", g)
	fmt.Printf("schedule: %s, nominal lifetime %d\n", *alg, s.Lifetime())
	fmt.Printf("failures injected: %d\n", res.Deaths)
	fmt.Printf("achieved lifetime: %d slots", res.AchievedLifetime)
	if res.FirstViolation >= 0 {
		fmt.Printf(" (first coverage violation at slot %d)", res.FirstViolation)
	}
	fmt.Println()
	fmt.Printf("energy spent: %d units; sensor reports delivered: %d\n",
		res.EnergySpent, res.ReportsDelivered)
	if *trace {
		for t, c := range res.Coverage {
			fmt.Printf("slot %3d: coverage %.3f\n", t, c)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
