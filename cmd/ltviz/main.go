// Command ltviz renders a random unit-disk deployment and the first valid
// dominating class of an Algorithm 1 run as an SVG file.
//
// Usage:
//
//	ltviz -n 200 -side 14 -radius 3 -o deployment.svg
//	ltviz -n 200 -slot 5 -o slot5.svg     (highlight the slot-5 active set)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ltviz:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 200, "node count")
	side := flag.Float64("side", 14, "deployment square side")
	radius := flag.Float64("radius", 3, "communication radius")
	b := flag.Int("b", 3, "uniform battery")
	slot := flag.Int("slot", 0, "time slot whose active set to highlight")
	seed := flag.Uint64("seed", 1, "random seed")
	outPath := flag.String("o", "-", "output file (\"-\" = stdout)")
	width := flag.Int("width", 800, "SVG width in pixels")
	flag.Parse()

	src := rng.New(*seed)
	g, pts := gen.RandomUDG(*n, *side, *radius, src)
	budgets := make([]int, g.N())
	for i := range budgets {
		budgets[i] = *b
	}
	in := instance.New(g, budgets).WithHint(instance.Hint{Family: "udg"})
	s, err := solver.Solve(in, solver.Spec{Name: solver.NameUniform},
		solver.Options{Tries: 30, Src: src.Split()})
	if err != nil {
		return err
	}
	active := s.ActiveAt(*slot)

	var w io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	title := fmt.Sprintf("n=%d radius=%.1f lifetime=%d slot=%d active=%d",
		*n, *radius, s.Lifetime(), *slot, len(active))
	return viz.WriteSVG(w, g, pts, viz.Options{
		Width:     *width,
		Highlight: active,
		Title:     title,
	})
}
