// Command ltsched computes a cluster-lifetime schedule for a graph and
// prints it. Graphs come from a file (edge-list format, see cmd/graphgen) or
// stdin; batteries are uniform (-b) or drawn uniformly from [1, -bmax].
//
// Usage:
//
//	graphgen -family udg -n 60 | ltsched -alg uniform -b 3 -gantt
//	ltsched -graph g.edges -alg general -bmax 5
//	ltsched -graph g.edges -alg ft -b 4 -k 2
//	ltsched -graph g.edges -alg exact -b 2      (small graphs only)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ltsched:", err)
		os.Exit(1)
	}
}

func run() error {
	graphPath := flag.String("graph", "-", "edge-list file (\"-\" = stdin)")
	alg := flag.String("alg", "uniform", "uniform|general|ft|exact")
	b := flag.Int("b", 3, "uniform battery (uniform, ft, exact)")
	bmax := flag.Int("bmax", 0, "random batteries in [1, bmax] (general; 0 = uniform b)")
	k := flag.Int("k", 1, "domination tolerance (ft)")
	kConst := flag.Float64("K", 3, "color-range constant")
	seed := flag.Uint64("seed", 1, "random seed")
	tries := flag.Int("tries", 30, "WHP retry budget")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart")
	csv := flag.Bool("csv", false, "print the schedule as CSV")
	jsonOut := flag.Bool("json", false, "print the schedule as JSON")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := graph.ReadEdgeList(in)
	if err != nil {
		return err
	}

	src := rng.New(*seed)
	batteries := make([]int, g.N())
	for i := range batteries {
		if *bmax > 0 {
			batteries[i] = 1 + src.Intn(*bmax)
		} else {
			batteries[i] = *b
		}
	}
	opt := core.Options{K: *kConst, Src: src.Split()}

	var s *core.Schedule
	tolerance := 1
	switch *alg {
	case "uniform":
		s = core.UniformWHP(g, *b, opt, *tries)
	case "general":
		s = core.GeneralWHP(g, batteries, opt, *tries)
	case "ft":
		tolerance = *k
		s = core.FaultTolerantWHP(g, *b, *k, opt, *tries)
	case "exact":
		if g.N() > 24 {
			return fmt.Errorf("exact solver limited to 24 nodes (got %d)", g.N())
		}
		val, sets, durs := exact.Integral(g, batteries, *k)
		tolerance = *k
		s = &core.Schedule{}
		for i, set := range sets {
			s.Phases = append(s.Phases, core.Phase{Set: set, Duration: durs[i]})
		}
		fmt.Printf("exact optimum: %d\n", val)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	if err := s.Validate(g, batteries, tolerance); err != nil {
		return fmt.Errorf("produced schedule failed validation: %v", err)
	}

	fmt.Printf("graph: %v\n", g)
	fmt.Printf("algorithm: %s (K=%.1f seed=%d)\n", *alg, *kConst, *seed)
	fmt.Printf("lifetime: %d slots in %d phases\n", s.Lifetime(), len(s.Phases))
	switch *alg {
	case "uniform":
		fmt.Printf("upper bound (Lemma 4.1): %d\n", core.UniformUpperBound(g, *b))
	case "general", "exact":
		fmt.Printf("upper bound (Lemma 5.1): %d\n", core.GeneralUpperBound(g, batteries))
	case "ft":
		fmt.Printf("upper bound (Lemma 6.1): %d\n", core.KTolerantUpperBound(g, *b, *k))
	}
	if *gantt {
		if err := s.Gantt(os.Stdout, g.N()); err != nil {
			return err
		}
	}
	if *csv {
		if err := s.WriteCSV(os.Stdout); err != nil {
			return err
		}
	}
	if *jsonOut {
		if err := s.WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
