// Command ltsched computes a cluster-lifetime schedule for a graph and
// prints it. Graphs come from a file (edge-list format, see cmd/graphgen) or
// stdin; batteries are uniform (-b) or drawn uniformly from [1, -bmax].
// Algorithms resolve by name in the internal/solver registry — the paper's
// randomized algorithms plus the deterministic greedy/lp/exact baselines —
// and -race-width races that many independently seeded attempts.
//
// Usage:
//
//	graphgen -family udg -n 60 | ltsched -alg uniform -b 3 -gantt
//	ltsched -graph g.edges -alg general -bmax 5
//	ltsched -graph g.edges -alg ft -b 4 -k 2 -race-width 4
//	ltsched -graph g.edges -alg exact -b 2      (small graphs only)
//	ltsched -graph g.edges -alg general -refine tabu -budget 50000
//	ltsched -graph g.edges -alg uniform -refine anneal -deadline 200ms
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/budgetflag"
	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/solver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ltsched:", err)
		os.Exit(1)
	}
}

func run() error {
	graphPath := flag.String("graph", "-", "edge-list file (\"-\" = stdin)")
	alg := flag.String("alg", "uniform", "algorithm: "+strings.Join(solver.Names(), "|"))
	b := flag.Int("b", 3, "uniform battery (uniform, ft, exact)")
	bmax := flag.Int("bmax", 0, "random batteries in [1, bmax] (general; 0 = uniform b)")
	k := flag.Int("k", 1, "domination tolerance (ft, generalft, baselines)")
	kConst := flag.Float64("K", 3, "color-range constant")
	seed := flag.Uint64("seed", 1, "random seed")
	tries := flag.Int("tries", 30, "WHP retry budget")
	raceWidth := flag.Int("race-width", 1, "independently seeded attempts raced concurrently")
	refine := flag.String("refine", "", "refinement solver run on -alg's schedule: "+
		strings.Join(solver.RefinerNames(), "|")+" (\"\" = off)")
	shards := flag.Int("shards", 1, "partition into this many shards, solve concurrently, stitch with boundary repair (1 = whole graph)")
	partitioner := flag.String("partitioner", "bfs", "shard partitioner: "+
		strings.Join(shard.Partitioners(), "|")+" (geom needs coordinates; edge-list input supports bfs)")
	bf := budgetflag.Register(flag.CommandLine)
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart")
	csv := flag.Bool("csv", false, "print the schedule as CSV")
	jsonOut := flag.Bool("json", false, "print the schedule as JSON")
	flag.Parse()
	if err := bf.Validate(); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Hinted read: graphgen tags generated grids/tori with a "# hint:"
	// comment, which seeds the structure classifier's trial ordering (the
	// embedding is always re-verified, so a wrong hint only costs time).
	g, hint, err := graph.ReadEdgeListHinted(in)
	if err != nil {
		return err
	}

	src := rng.New(*seed)
	batteries := make([]int, g.N())
	for i := range batteries {
		if *bmax > 0 {
			batteries[i] = 1 + src.Intn(*bmax)
		} else {
			batteries[i] = *b
		}
	}

	spec := solver.Spec{Name: *alg, KConst: *kConst}
	if *refine != "" {
		spec.Name, spec.Base = *refine, *alg
	}
	inst := instance.New(g, batteries).WithK(*k).WithHint(instance.ParseHint(hint))
	tolerance := inst.Tolerance()
	opt := solver.Options{Tries: *tries, Src: src.Split(), RaceWidth: *raceWidth}
	bf.Apply(&opt, time.Now())
	var s *core.Schedule
	var st *shard.Stitched
	if *shards > 1 {
		p, err := shard.ByName(*partitioner, g, nil, *shards, *seed)
		if err != nil {
			return err
		}
		solved, err := shard.SolveShards(inst, p, shard.Options{
			Spec: spec, Solver: opt, Seed: *seed, TransientPool: true,
		})
		if err != nil {
			return err
		}
		if st, err = shard.Stitch(inst, p, solved, obs.Hooks{}); err != nil {
			return err
		}
		s = st.Schedule
	} else {
		var err error
		if s, err = solver.Solve(inst, spec, opt); err != nil {
			return err
		}
	}

	// The driver already ran the ValidateWith feasibility gate over every
	// schedule — randomized and baseline alike — so a violation here means
	// the batteries drifted between solve and print; keep the belt anyway.
	if err := s.ValidateWith(domset.NewChecker(g), batteries, tolerance); err != nil {
		return fmt.Errorf("produced schedule failed validation: %v", err)
	}

	fmt.Printf("graph: %v\n", g)
	if m := inst.Meta(); m.Class != instance.Generic {
		fmt.Printf("structure: %s\n", m)
	}
	algLabel := *alg
	if *alg == solver.NameAuto {
		// Report where the portfolio dispatched so the user sees which
		// concrete solver produced the schedule.
		if _, eff, err := solver.Effective(inst, solver.Spec{Name: *alg, KConst: *kConst}); err == nil {
			algLabel = "auto→" + eff.Name
		}
	}
	if *refine != "" {
		algLabel = algLabel + "+" + *refine
	}
	fmt.Printf("algorithm: %s (K=%.1f seed=%d)\n", algLabel, *kConst, *seed)
	if st != nil {
		fmt.Printf("sharded: %d shards (%s), %d boundary repairs, %d replans",
			*shards, *partitioner, st.Repairs, st.Replans)
		if st.Degraded {
			fmt.Print(", degraded")
		}
		fmt.Println()
	}
	fmt.Printf("lifetime: %d slots in %d phases\n", s.Lifetime(), len(s.Phases))
	switch *alg {
	case solver.NameUniform:
		fmt.Printf("upper bound (Lemma 4.1): %d\n", core.UniformUpperBound(g, *b))
	case solver.NameFT:
		fmt.Printf("upper bound (Lemma 6.1): %d\n", core.KTolerantUpperBound(g, *b, tolerance))
	default:
		if tolerance > 1 {
			fmt.Printf("upper bound (Lemmas 5.1+6.1): %d\n", core.GeneralKTolerantUpperBound(g, batteries, tolerance))
		} else {
			fmt.Printf("upper bound (Lemma 5.1): %d\n", core.GeneralUpperBound(g, batteries))
		}
	}
	if guaranteed, err := solver.Guaranteed(inst, spec); err == nil && guaranteed > 0 {
		fmt.Printf("guaranteed w.h.p.: %d\n", guaranteed)
	}
	if *gantt {
		if err := s.Gantt(os.Stdout, g.N()); err != nil {
			return err
		}
	}
	if *csv {
		if err := s.WriteCSV(os.Stdout); err != nil {
			return err
		}
	}
	if *jsonOut {
		if err := s.WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
