package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/instance"
)

// TestHintTaggedFamiliesRoundTrip is the generator→classifier smoke test:
// for each structured family, the emitted edge list must carry a hint the
// reader surfaces, the hint must parse, and the classifier must certify the
// advertised structure on the round-tripped graph.
func TestHintTaggedFamiliesRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		f      params
		hint   string
		class  instance.Class
		n      int
		family string
	}{
		{"grid", params{family: "grid", rows: 6, cols: 9}, "grid 6 9", instance.Grid, 54, "grid"},
		{"torus", params{family: "torus", rows: 5, cols: 7}, "torus 5 7", instance.Torus, 35, "torus"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := run(&buf, tc.f); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.HasPrefix(buf.String(), graph.HintPrefix+" "+tc.hint+"\n") {
			t.Fatalf("%s: output does not lead with the hint comment:\n%.80s", tc.name, buf.String())
		}
		g, hint, err := graph.ReadEdgeListHinted(&buf)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if hint != tc.hint {
			t.Fatalf("%s: round-tripped hint %q, want %q", tc.name, hint, tc.hint)
		}
		if g.N() != tc.n {
			t.Fatalf("%s: n = %d, want %d", tc.name, g.N(), tc.n)
		}
		h := instance.ParseHint(hint)
		if h.Family != tc.family {
			t.Fatalf("%s: parsed hint family %q, want %q", tc.name, h.Family, tc.family)
		}
		m := instance.New(g, make([]int, g.N())).WithHint(h).Meta()
		if m.Class != tc.class {
			t.Fatalf("%s: classified as %v, want %v", tc.name, m.Class, tc.class)
		}
		if m.Rows*m.Cols != tc.n {
			t.Fatalf("%s: certified dims %dx%d do not cover %d nodes", tc.name, m.Rows, m.Cols, tc.n)
		}
	}
}

// TestUDGFamilyTagged: udg/hudg carry the "udg" hint the UDG-aware layers
// propagate, and unstructured families stay untagged.
func TestUDGFamilyTagged(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, params{family: "udg", n: 40, side: 8, radius: 2, seed: 3}); err != nil {
		t.Fatal(err)
	}
	g, hint, err := graph.ReadEdgeListHinted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hint != "udg" || g.N() != 40 {
		t.Fatalf("hint %q n %d, want \"udg\" 40", hint, g.N())
	}
	if !instance.New(g, make([]int, g.N())).WithHint(instance.ParseHint(hint)).Meta().UDG {
		t.Fatal("udg hint did not propagate into Meta")
	}

	buf.Reset()
	if err := run(&buf, params{family: "gnp", n: 30, p: 0.2, seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, hint, err := graph.ReadEdgeListHinted(&buf); err != nil || hint != "" {
		t.Fatalf("gnp emitted hint %q (err %v), want none", hint, err)
	}
}

func TestUnknownFamilyErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, params{family: "frob"}); err == nil {
		t.Fatal("unknown family accepted")
	}
}
