// Command graphgen emits graphs from the repository's generator families as
// plain edge lists (the format cmd/ltsched reads).
//
// Usage:
//
//	graphgen -family gnp -n 100 -p 0.1 [-seed 1] > g.edges
//	graphgen -family udg -n 200 -side 14 -radius 2.5
//	graphgen -family grid -rows 8 -cols 8
//	graphgen -family circulant -n 60 -d 6
//	graphgen -family fujita -k 5
//	graphgen -family planted -n 60 -d 4
//
// Structured families tag their edge lists with a "# hint:" comment
// ("grid 8 8", "torus 5 10", "udg") that seeds the instance classifier's
// trial ordering downstream; the classifier re-verifies every claim, so
// the tag is an ordering aid, never trusted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// params are the generator knobs; one struct so run is testable.
type params struct {
	family       string
	n            int
	p            float64
	side, radius float64
	rows, cols   int
	d, k         int
	seed         uint64
	dot          bool
}

// build generates the requested family and its structure hint ("" when the
// family has none worth tagging).
func build(f params) (*graph.Graph, string, error) {
	src := rng.New(f.seed)
	switch f.family {
	case "gnp":
		return gen.GNP(f.n, f.p, src), "", nil
	case "udg":
		g, _ := gen.RandomUDG(f.n, f.side, f.radius, src)
		return g, "udg", nil
	case "hudg":
		g, _, _ := gen.HeterogeneousUDG(f.n, f.side, f.radius/2, f.radius, src)
		return g, "udg", nil
	case "grid":
		return gen.Grid(f.rows, f.cols), fmt.Sprintf("grid %d %d", f.rows, f.cols), nil
	case "torus":
		return gen.Torus(f.rows, f.cols), fmt.Sprintf("torus %d %d", f.rows, f.cols), nil
	case "ring":
		return gen.Ring(f.n), "", nil
	case "path":
		return gen.Path(f.n), "", nil
	case "star":
		return gen.Star(f.n), "", nil
	case "complete":
		return gen.Complete(f.n), "", nil
	case "circulant":
		return gen.Circulant(f.n, f.d), "", nil
	case "tree":
		return gen.RandomTree(f.n, src), "", nil
	case "caterpillar":
		return gen.Caterpillar(f.n, f.k), "", nil
	case "fujita":
		g, _ := gen.FujitaTrap(f.k)
		return g, "", nil
	case "planted":
		g, _ := gen.PlantedDomatic(f.n, f.d, f.n/2, src)
		return g, "", nil
	}
	return nil, "", fmt.Errorf("unknown family %q", f.family)
}

// run generates and writes the graph: DOT, or a hint-tagged edge list.
func run(w io.Writer, f params) error {
	g, hint, err := build(f)
	if err != nil {
		return err
	}
	if f.dot {
		return graph.WriteDOT(w, g, f.family, nil)
	}
	if hint != "" {
		if _, err := fmt.Fprintf(w, "%s %s\n", graph.HintPrefix, hint); err != nil {
			return err
		}
	}
	return graph.WriteEdgeList(w, g)
}

func main() {
	var f params
	flag.StringVar(&f.family, "family", "gnp", "gnp|udg|hudg|grid|torus|ring|path|star|complete|circulant|tree|caterpillar|fujita|planted")
	flag.IntVar(&f.n, "n", 100, "node count")
	flag.Float64Var(&f.p, "p", 0.1, "edge probability (gnp)")
	flag.Float64Var(&f.side, "side", 10, "deployment square side (udg)")
	flag.Float64Var(&f.radius, "radius", 1.5, "communication radius (udg)")
	flag.IntVar(&f.rows, "rows", 8, "grid/torus rows")
	flag.IntVar(&f.cols, "cols", 8, "grid/torus cols")
	flag.IntVar(&f.d, "d", 4, "degree (circulant) or planted domatic number")
	flag.IntVar(&f.k, "k", 4, "trap parameter (fujita) / legs (caterpillar)")
	flag.Uint64Var(&f.seed, "seed", 1, "random seed")
	flag.BoolVar(&f.dot, "dot", false, "emit Graphviz DOT instead of an edge list")
	flag.Parse()

	if err := run(os.Stdout, f); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
