// Command graphgen emits graphs from the repository's generator families as
// plain edge lists (the format cmd/ltsched reads).
//
// Usage:
//
//	graphgen -family gnp -n 100 -p 0.1 [-seed 1] > g.edges
//	graphgen -family udg -n 200 -side 14 -radius 2.5
//	graphgen -family grid -rows 8 -cols 8
//	graphgen -family circulant -n 60 -d 6
//	graphgen -family fujita -k 5
//	graphgen -family planted -n 60 -d 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	family := flag.String("family", "gnp", "gnp|udg|hudg|grid|torus|ring|path|star|complete|circulant|tree|caterpillar|fujita|planted")
	n := flag.Int("n", 100, "node count")
	p := flag.Float64("p", 0.1, "edge probability (gnp)")
	side := flag.Float64("side", 10, "deployment square side (udg)")
	radius := flag.Float64("radius", 1.5, "communication radius (udg)")
	rows := flag.Int("rows", 8, "grid/torus rows")
	cols := flag.Int("cols", 8, "grid/torus cols")
	d := flag.Int("d", 4, "degree (circulant) or planted domatic number")
	k := flag.Int("k", 4, "trap parameter (fujita) / legs (caterpillar)")
	seed := flag.Uint64("seed", 1, "random seed")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of an edge list")
	flag.Parse()

	src := rng.New(*seed)
	var g *graph.Graph
	switch *family {
	case "gnp":
		g = gen.GNP(*n, *p, src)
	case "udg":
		g, _ = gen.RandomUDG(*n, *side, *radius, src)
	case "hudg":
		g, _, _ = gen.HeterogeneousUDG(*n, *side, *radius/2, *radius, src)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "torus":
		g = gen.Torus(*rows, *cols)
	case "ring":
		g = gen.Ring(*n)
	case "path":
		g = gen.Path(*n)
	case "star":
		g = gen.Star(*n)
	case "complete":
		g = gen.Complete(*n)
	case "circulant":
		g = gen.Circulant(*n, *d)
	case "tree":
		g = gen.RandomTree(*n, src)
	case "caterpillar":
		g = gen.Caterpillar(*n, *k)
	case "fujita":
		g, _ = gen.FujitaTrap(*k)
	case "planted":
		g, _ = gen.PlantedDomatic(*n, *d, *n/2, src)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown family %q\n", *family)
		os.Exit(2)
	}
	var err error
	if *dot {
		err = graph.WriteDOT(os.Stdout, g, *family, nil)
	} else {
		err = graph.WriteEdgeList(os.Stdout, g)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
