package main

import (
	"testing"
	"time"
)

func defaults(t *testing.T) flags {
	t.Helper()
	var f flags
	if err := newFlagSet(&f).Parse(nil); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidateFlags(t *testing.T) {
	if err := defaults(t).validate(); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*flags)
	}{
		{"empty addr", func(f *flags) { f.addr = "" }},
		{"negative workers", func(f *flags) { f.workers = -1 }},
		{"negative queue", func(f *flags) { f.queue = -1 }},
		{"negative inflight", func(f *flags) { f.inflight = -1 }},
		{"negative cache", func(f *flags) { f.cacheSize = -1 }},
		{"negative timeout", func(f *flags) { f.timeout = -time.Second }},
		{"zero drain timeout", func(f *flags) { f.drainTimeout = 0 }},
		{"negative max nodes", func(f *flags) { f.maxNodes = -1 }},
		{"negative overlap", func(f *flags) { f.overlap = -1 }},
		{"malformed fault", func(f *flags) { f.fault = "slow=2" }},
	}
	for _, c := range cases {
		f := defaults(t)
		c.mut(&f)
		if err := f.validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestConfigWiresFault(t *testing.T) {
	f := defaults(t)
	cfg, err := f.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fault != nil {
		t.Fatal("no -fault flag but Config.Fault is set")
	}

	f.fault = "fail=0.5"
	cfg, err = f.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fault == nil {
		t.Fatal("-fault set but Config.Fault is nil")
	}

	f.fault = "fail=banana"
	if _, err := f.config(); err == nil {
		t.Fatal("malformed -fault accepted by config")
	}
}

func TestConfigWiresOverlap(t *testing.T) {
	f := defaults(t)
	f.overlap = 3
	cfg, err := f.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DefaultOverlap != 3 {
		t.Fatalf("DefaultOverlap = %d, want 3", cfg.DefaultOverlap)
	}
}
