// Command ltserve is the lifetime-scheduling service: it serves the
// internal/serve HTTP API — POST a graph with budgets and algorithm
// parameters, get back a feasible schedule (or a 202 and a job to poll) —
// with a bounded worker pool, request coalescing, an LRU result cache,
// explicit backpressure, and /healthz + /metrics on the same port.
//
// Usage:
//
//	ltserve -addr 127.0.0.1:8136
//	ltserve -addr :8136 -workers 4 -queue 128 -timeout 10s
//	ltserve -addr 127.0.0.1:0 -ready-file ltserve.addr   # CI: port in a file
//	ltserve -addr :8136 -fault "slow=0.1:50ms,fail=0.01" -fault-seed 7
//
// The process runs until SIGTERM or SIGINT, then drains: admission flips to
// 503 immediately, accepted jobs finish (bounded by -drain-timeout), and the
// process exits 0 on a clean drain. docs/SERVICE.md documents the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/budgetflag"
	"repro/internal/chaos"
	"repro/internal/rng"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ltserve:", err)
		os.Exit(1)
	}
}

// flags collects the command-line configuration so validation is testable.
type flags struct {
	addr         string
	workers      int
	queue        int
	inflight     int
	cacheSize    int
	timeout      time.Duration
	drainTimeout time.Duration
	maxNodes     int
	raceWidth    int
	overlap      int
	fault        string
	faultSeed    uint64
	readyFile    string
	budget       *budgetflag.Flags
}

// validate rejects nonsensical flag combinations with actionable errors.
func (f flags) validate() error {
	if f.addr == "" {
		return errors.New("-addr must not be empty (use :0 for an ephemeral port)")
	}
	if f.workers < 0 {
		return fmt.Errorf("-workers %d: pool size must be >= 0 (0 = GOMAXPROCS)", f.workers)
	}
	if f.queue < 0 {
		return fmt.Errorf("-queue %d: queue depth must be >= 0 (0 = default)", f.queue)
	}
	if f.inflight < 0 {
		return fmt.Errorf("-inflight %d: in-flight cap must be >= 0 (0 = queue+workers)", f.inflight)
	}
	if f.cacheSize < 0 {
		return fmt.Errorf("-cache %d: cache size must be >= 0 (0 = default)", f.cacheSize)
	}
	if f.timeout < 0 {
		return fmt.Errorf("-timeout %v: default deadline must be >= 0", f.timeout)
	}
	if f.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout %v: drain bound must be > 0", f.drainTimeout)
	}
	if f.maxNodes < 0 {
		return fmt.Errorf("-max-nodes %d: node cap must be >= 0 (0 = default)", f.maxNodes)
	}
	if f.raceWidth < 0 {
		return fmt.Errorf("-race-width %d: race width must be >= 0 (0 or 1 = sequential)", f.raceWidth)
	}
	if f.overlap < 0 {
		return fmt.Errorf("-overlap %d: reconfiguration overlap must be >= 0 (0 = default)", f.overlap)
	}
	if _, err := chaos.ParseWorkerFault(f.fault, rng.New(1)); err != nil {
		return fmt.Errorf("-fault: %w", err)
	}
	return f.budget.Validate()
}

// config builds the serve.Config, including the optional chaos fault.
func (f flags) config() (serve.Config, error) {
	cfg := serve.Config{
		Workers:        f.workers,
		QueueDepth:     f.queue,
		MaxInFlight:    f.inflight,
		CacheSize:      f.cacheSize,
		DefaultTimeout: f.timeout,
		MaxNodes:       f.maxNodes,
		RaceWidth:      f.raceWidth,
		DefaultOverlap: f.overlap,
		// The unified budget contract: -budget and -deadline set the
		// server-side defaults a request gets when it omits budget /
		// time_budget_ms.
		DefaultBudget:     f.budget.Budget,
		DefaultTimeBudget: f.budget.Deadline,
	}
	wf, err := chaos.ParseWorkerFault(f.fault, rng.New(f.faultSeed))
	if err != nil {
		return cfg, fmt.Errorf("-fault: %w", err)
	}
	if wf != nil {
		cfg.Fault = wf
	}
	return cfg, nil
}

// newFlagSet declares the flags into f; a FlagSet (rather than the global
// flag registry) keeps parsing testable.
func newFlagSet(f *flags) *flag.FlagSet {
	fs := flag.NewFlagSet("ltserve", flag.ContinueOnError)
	fs.StringVar(&f.addr, "addr", "127.0.0.1:8136", `listen address (":0" picks a free port)`)
	fs.IntVar(&f.workers, "workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	fs.IntVar(&f.queue, "queue", 0, "job-queue depth (0 = default 64)")
	fs.IntVar(&f.inflight, "inflight", 0, "max jobs admitted but unfinished (0 = queue+workers)")
	fs.IntVar(&f.cacheSize, "cache", 0, "LRU result-cache entries (0 = default 256)")
	fs.DurationVar(&f.timeout, "timeout", 0, "default per-request deadline (0 = 30s)")
	fs.DurationVar(&f.drainTimeout, "drain-timeout", 30*time.Second, "max wait for accepted jobs on shutdown")
	fs.IntVar(&f.maxNodes, "max-nodes", 0, "largest accepted graph (0 = default 1<<20)")
	fs.IntVar(&f.raceWidth, "race-width", 1, "seeded solver attempts raced per schedule job (<= 1 = sequential)")
	fs.IntVar(&f.overlap, "overlap", 0, "default overlap slots for PATCH reconfigurations (0 = built-in default)")
	fs.StringVar(&f.fault, "fault", "", `chaos worker fault, e.g. "slow=0.1:50ms,fail=0.01" ("" = off)`)
	fs.Uint64Var(&f.faultSeed, "fault-seed", 1, "seed for the chaos worker fault")
	fs.StringVar(&f.readyFile, "ready-file", "", "write the bound address to this file once listening")
	f.budget = budgetflag.Register(fs)
	return fs
}

func run() error {
	var f flags
	fs := newFlagSet(&f)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if err := f.validate(); err != nil {
		return err
	}
	cfg, err := f.config()
	if err != nil {
		return err
	}

	s := serve.New(cfg)
	hs, err := serve.StartHTTP(f.addr, s.Handler())
	if err != nil {
		return err
	}
	fmt.Printf("ltserve: listening on http://%s (healthz, metrics, v1/schedule, v1/schedule/{fp}, v1/experiment)\n", hs.Addr())
	if f.readyFile != "" {
		// Written after the listener is bound, so a watcher that sees the
		// file can immediately connect — the CI smoke test relies on this.
		if err := os.WriteFile(f.readyFile, []byte(hs.Addr()+"\n"), 0o644); err != nil {
			return fmt.Errorf("-ready-file: %w", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("ltserve: %v received, draining (timeout %v)\n", got, f.drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), f.drainTimeout)
	defer cancel()
	// Order matters: drain the service first so new requests see 503 with a
	// live HTTP layer, then stop the listener once accepted work is done.
	if err := s.Shutdown(ctx); err != nil {
		hs.Stop(ctx) //nolint:errcheck // already failing; report the drain error
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Stop(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Println("ltserve: drained cleanly")
	return nil
}
