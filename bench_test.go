// Package repro's root benchmark suite regenerates every experiment table
// of DESIGN.md under testing.B (BenchmarkE1 … BenchmarkE22) and provides
// micro-benchmarks of the core algorithms. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benches use Quick mode with a single trial per point so a
// bench iteration is one full table; cmd/ltbench produces the full-scale
// tables recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/domset"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/solver"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 42, Quick: true, Trials: 1}
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17(b *testing.B) { benchExperiment(b, "E17") }
func BenchmarkE18(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19(b *testing.B) { benchExperiment(b, "E19") }
func BenchmarkE20(b *testing.B) { benchExperiment(b, "E20") }
func BenchmarkE21(b *testing.B) { benchExperiment(b, "E21") }
func BenchmarkE22(b *testing.B) { benchExperiment(b, "E22") }

// benchGraph builds a connected-ish G(n, c·ln n/n) test graph outside the
// timed loop.
func benchGraph(n int) *graph.Graph {
	p := 10 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	return gen.GNP(n, p, rng.New(uint64(n)))
}

func BenchmarkUniformAlgorithm(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := rng.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := core.Uniform(g, 3, core.Options{K: 3, Src: src})
				if s.Lifetime() == 0 {
					b.Fatal("empty schedule")
				}
			}
		})
	}
}

func BenchmarkGeneralAlgorithm(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		g := benchGraph(n)
		batteries := make([]int, n)
		bsrc := rng.New(2)
		for i := range batteries {
			batteries[i] = 1 + bsrc.Intn(8)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := rng.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.General(g, batteries, core.Options{K: 3, Src: src})
			}
		})
	}
}

func BenchmarkFaultTolerantAlgorithm(b *testing.B) {
	g := benchGraph(1024)
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		core.FaultTolerant(g, 4, 2, core.Options{K: 3, Src: src})
	}
}

func BenchmarkScheduleValidate(b *testing.B) {
	g := benchGraph(1024)
	batteries := make([]int, g.N())
	for i := range batteries {
		batteries[i] = 3
	}
	s, err := solver.Solve(instance.New(g, batteries), solver.Spec{Name: solver.NameUniform},
		solver.Options{Tries: 10, Src: rng.New(1)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(g, batteries, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyDominatingSet(b *testing.B) {
	for _, n := range []int{256, 1024} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if set := domset.Greedy(g); set == nil {
					b.Fatal("greedy failed")
				}
			}
		})
	}
}

func BenchmarkGreedyPartition(b *testing.B) {
	g := benchGraph(512)
	for i := 0; i < b.N; i++ {
		domatic.GreedyPartition(g, domatic.GreedyExtractor)
	}
}

func BenchmarkRandomColoring(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := rng.New(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				domatic.RandomColoring(g, 3, src)
			}
		})
	}
}

func BenchmarkLubyMIS(b *testing.B) {
	g := benchGraph(1024)
	src := rng.New(4)
	for i := 0; i < b.N; i++ {
		domset.LubyMIS(g, src)
	}
}

func BenchmarkExactIntegral(b *testing.B) {
	g := gen.GNP(11, 0.4, rng.New(5))
	batteries := make([]int, g.N())
	for i := range batteries {
		batteries[i] = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.Integral(g, batteries, 1)
	}
}

func BenchmarkMinimalDominatingSetEnumeration(b *testing.B) {
	g := gen.GNP(12, 0.35, rng.New(6))
	for i := 0; i < b.N; i++ {
		if sets := exact.MinimalDominatingSets(g, 1); len(sets) == 0 {
			b.Fatal("no sets")
		}
	}
}

func BenchmarkTwoHopMinDegree(b *testing.B) {
	g := benchGraph(4096)
	for i := 0; i < b.N; i++ {
		g.TwoHopMinDegree()
	}
}
