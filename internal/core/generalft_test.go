package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func randomBatteries(n, bMax int, src *rng.Source) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = 1 + src.Intn(bMax)
	}
	return b
}

func TestGeneralFaultTolerantSchedulesAreKDominating(t *testing.T) {
	g := gen.GNP(200, 0.35, rng.New(1))
	src := rng.New(2)
	b := randomBatteries(g.N(), 6, src)
	for k := 1; k <= 3; k++ {
		o := Options{K: 3, Src: rng.New(uint64(10 + k))}
		s := generalFaultTolerantWHPForTest(g, b, k, o, 30)
		if err := s.Validate(g, b, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if ub := GeneralKTolerantUpperBound(g, b, k); s.Lifetime() > ub {
			t.Fatalf("k=%d: lifetime %d exceeds bound %d", k, s.Lifetime(), ub)
		}
	}
}

func TestGeneralFaultTolerantNeverOverdraws(t *testing.T) {
	g := gen.GNP(120, 0.3, rng.New(3))
	src := rng.New(4)
	b := randomBatteries(g.N(), 8, src)
	s := GeneralFaultTolerant(g, b, 2, Options{K: 3, Src: src.Split()})
	for v, u := range s.Usage(g.N()) {
		if u > b[v] {
			t.Fatalf("node %d used %d > battery %d", v, u, b[v])
		}
	}
}

func TestGeneralFaultTolerantK1MatchesGeneralSemantics(t *testing.T) {
	// With k = 1, merging is a no-op: the phase sets equal General's raw
	// slot classes under the same seed.
	g := gen.GNP(80, 0.3, rng.New(5))
	src := rng.New(6)
	b := randomBatteries(g.N(), 4, src)
	raw := General(g, b, Options{K: 3, Src: rng.New(7)})
	merged := GeneralFaultTolerant(g, b, 1, Options{K: 3, Src: rng.New(7)})
	if raw.Lifetime() != merged.Lifetime() {
		t.Fatalf("k=1 lifetimes differ: %d vs %d", raw.Lifetime(), merged.Lifetime())
	}
	for i := range raw.Phases {
		a := append([]int(nil), raw.Phases[i].Set...)
		c := merged.Phases[i].Set
		if len(a) != len(c) {
			t.Fatalf("phase %d sets differ in size", i)
		}
	}
}

func TestGeneralFaultTolerantInfeasibleK(t *testing.T) {
	g := gen.Path(5) // δ+1 = 2
	b := []int{3, 3, 3, 3, 3}
	s := GeneralFaultTolerant(g, b, 3, Options{K: 3, Src: rng.New(8)})
	if s.Lifetime() != 0 {
		t.Fatalf("infeasible k should give empty schedule, got lifetime %d", s.Lifetime())
	}
}

func TestGeneralFaultTolerantPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	GeneralFaultTolerant(gen.Path(3), []int{1, 1, 1}, 0, Options{})
}

func TestFaultTolerantInfeasibleKEmptySchedule(t *testing.T) {
	g := gen.Path(5)
	s := FaultTolerant(g, 4, 3, Options{K: 3, Src: rng.New(9)})
	if s.Lifetime() != 0 {
		t.Fatalf("infeasible uniform k should give empty schedule, got %d", s.Lifetime())
	}
}

func TestGeneralKTolerantUpperBoundHalves(t *testing.T) {
	g := gen.Complete(5)
	b := []int{2, 2, 2, 2, 2}
	if got := GeneralKTolerantUpperBound(g, b, 2); got != 5 {
		t.Fatalf("bound = %d, want 5 (= 10/2)", got)
	}
}
