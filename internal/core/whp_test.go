package core

import (
	"repro/internal/domset"
	"repro/internal/graph"
)

// The WHP retry loop now lives solely in the internal/solver driver, and
// core sits below solver in the import graph, so these tests replay the
// loop locally: up to tries draws, each truncated at its first
// non-truncK-dominating phase, keeping the best and stopping early at
// target. solver's seed-pinned equivalence test asserts the driver matches
// this exact composition draw for draw.
func whpForTest(g *graph.Graph, target, truncK, tries int, generate func() *Schedule) *Schedule {
	ck := domset.NewChecker(g)
	var best *Schedule
	for try := 0; try < tries; try++ {
		s := generate().TruncateInvalidWith(ck, truncK)
		if best == nil || s.Lifetime() > best.Lifetime() {
			best = s
		}
		if best.Lifetime() >= target {
			break
		}
	}
	return best
}

func uniformWHPForTest(g *graph.Graph, b int, opt Options, tries int) *Schedule {
	opt = opt.normalize()
	return whpForTest(g, GuaranteedPhases(g, opt)*b, 1, tries,
		func() *Schedule { return Uniform(g, b, opt) })
}

func generalWHPForTest(g *graph.Graph, b []int, opt Options, tries int) *Schedule {
	opt = opt.normalize()
	return whpForTest(g, GeneralGuaranteedSlots(g, b, opt), 1, tries,
		func() *Schedule { return General(g, b, opt) })
}

func faultTolerantWHPForTest(g *graph.Graph, b, k int, opt Options, tries int) *Schedule {
	opt = opt.normalize()
	return whpForTest(g, FaultTolerantGuarantee(g, b, k, opt), k, tries,
		func() *Schedule { return FaultTolerant(g, b, k, opt) })
}

func generalFaultTolerantWHPForTest(g *graph.Graph, b []int, k int, opt Options, tries int) *Schedule {
	opt = opt.normalize()
	return whpForTest(g, GeneralGuaranteedSlots(g, b, opt)/k, k, tries,
		func() *Schedule { return GeneralFaultTolerant(g, b, k, opt) })
}
