// Package core implements the paper's contribution: randomized, distributed
// approximation algorithms for the Maximum Cluster-Lifetime problem.
//
// A Schedule is a sequence of (dominating set, duration) phases. The three
// algorithms of the paper construct schedules whose lifetime is within
// O(log n) (uniform and k-tolerant cases) resp. O(log(b_max·n)) (general
// case) of the optimum, with high probability:
//
//   - Uniform (Algorithm 1): all batteries equal; one random color per node.
//   - General (Algorithm 2): arbitrary batteries; b_v random colors per node,
//     one time slot per color.
//   - FaultTolerant (Algorithm 3): uniform batteries, every node must see at
//     least k dominators at all times.
//
// The color-class guarantee is probabilistic, so raw schedules may contain
// non-dominating phases; TruncateInvalid extracts the valid prefix (what a
// deployment would actually run) and the WHP wrappers retry until the
// guaranteed prefix materializes.
package core

import (
	"fmt"
	"sort"

	"repro/internal/domset"
	"repro/internal/graph"
)

// Phase is one schedule entry: Set is active for Duration consecutive slots.
type Phase struct {
	Set      []int
	Duration int
}

// Schedule is an ordered sequence of phases. The zero value is the empty
// schedule with lifetime 0.
type Schedule struct {
	Phases []Phase
}

// Lifetime returns the total duration Σ t_i of the schedule.
func (s *Schedule) Lifetime() int {
	total := 0
	for _, p := range s.Phases {
		total += p.Duration
	}
	return total
}

// Usage returns, for each node, the total number of slots it spends in
// active sets.
func (s *Schedule) Usage(n int) []int {
	usage := make([]int, n)
	for _, p := range s.Phases {
		for _, v := range p.Set {
			usage[v] += p.Duration
		}
	}
	return usage
}

// UsagePrefix returns, for each node, the number of slots it spends in
// active sets during the first t slots — the energy a partially executed
// schedule has already drained when a reconfiguration cuts over at time t.
// t at or past Lifetime() is equivalent to Usage.
func (s *Schedule) UsagePrefix(n, t int) []int {
	usage := make([]int, n)
	for _, p := range s.Phases {
		if t <= 0 {
			break
		}
		d := p.Duration
		if d > t {
			d = t
		}
		for _, v := range p.Set {
			usage[v] += d
		}
		t -= p.Duration
	}
	return usage
}

// ActiveAt returns the active set of the slot at the given time in
// [0, Lifetime()), or nil if t is out of range.
func (s *Schedule) ActiveAt(t int) []int {
	if t < 0 {
		return nil
	}
	for _, p := range s.Phases {
		if t < p.Duration {
			return p.Set
		}
		t -= p.Duration
	}
	return nil
}

// Validate checks that s is a feasible solution of the Maximum k-tolerant
// Cluster-Lifetime problem on g with the given battery budgets: every phase
// with positive duration is a k-dominating set, phase durations are
// non-negative, node usage never exceeds the battery, and all node IDs are
// in range. k = 1 is the plain problem.
func (s *Schedule) Validate(g *graph.Graph, batteries []int, k int) error {
	return s.ValidateWith(domset.NewChecker(g), batteries, k)
}

// ValidateWith is Validate against a caller-held Checker, amortizing the
// packed-neighborhood build across many validations of schedules on the same
// graph (the WHP retry loops and experiment sweeps).
func (s *Schedule) ValidateWith(ck *domset.Checker, batteries []int, k int) error {
	g := ck.Graph()
	if len(batteries) != g.N() {
		return fmt.Errorf("core: %d batteries for %d nodes", len(batteries), g.N())
	}
	if k < 1 {
		return fmt.Errorf("core: tolerance k = %d must be >= 1", k)
	}
	usage := make([]int, g.N())
	for i, p := range s.Phases {
		if p.Duration < 0 {
			return fmt.Errorf("core: phase %d has negative duration %d", i, p.Duration)
		}
		if p.Duration == 0 {
			continue
		}
		for _, v := range p.Set {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("core: phase %d contains out-of-range node %d", i, v)
			}
			usage[v] += p.Duration
		}
		if !ck.IsKDominating(p.Set, k, nil) {
			return fmt.Errorf("core: phase %d (duration %d) is not %d-dominating", i, p.Duration, k)
		}
	}
	for v, u := range usage {
		if u > batteries[v] {
			return fmt.Errorf("core: node %d active %d slots but battery is %d", v, u, batteries[v])
		}
	}
	return nil
}

// TruncateInvalid returns the longest prefix of s whose positive-duration
// phases are all k-dominating sets of g. This is the deployment-relevant
// repair for the probabilistic color-class guarantee: the schedule runs
// until the first broken phase and stops.
func (s *Schedule) TruncateInvalid(g *graph.Graph, k int) *Schedule {
	return s.TruncateInvalidWith(domset.NewChecker(g), k)
}

// TruncateInvalidWith is TruncateInvalid against a caller-held Checker.
func (s *Schedule) TruncateInvalidWith(ck *domset.Checker, k int) *Schedule {
	out := &Schedule{}
	for _, p := range s.Phases {
		if p.Duration > 0 && !ck.IsKDominating(p.Set, k, nil) {
			break
		}
		out.Phases = append(out.Phases, p)
	}
	return out
}

// DropInvalid returns a copy of s with every non-k-dominating phase removed
// (rather than truncating at the first). This is the ablation counterpart of
// TruncateInvalid: it assumes a coordinator can skip broken classes.
func (s *Schedule) DropInvalid(g *graph.Graph, k int) *Schedule {
	return s.DropInvalidWith(domset.NewChecker(g), k)
}

// DropInvalidWith is DropInvalid against a caller-held Checker.
func (s *Schedule) DropInvalidWith(ck *domset.Checker, k int) *Schedule {
	out := &Schedule{}
	for _, p := range s.Phases {
		if p.Duration > 0 && !ck.IsKDominating(p.Set, k, nil) {
			continue
		}
		out.Phases = append(out.Phases, p)
	}
	return out
}

// Compact merges consecutive phases with identical sets and removes
// zero-duration phases, preserving the schedule semantics.
func (s *Schedule) Compact() *Schedule {
	out := &Schedule{}
	for _, p := range s.Phases {
		if p.Duration == 0 {
			continue
		}
		if n := len(out.Phases); n > 0 && equalSets(out.Phases[n-1].Set, p.Set) {
			out.Phases[n-1].Duration += p.Duration
			continue
		}
		cp := Phase{Set: append([]int(nil), p.Set...), Duration: p.Duration}
		out.Phases = append(out.Phases, cp)
	}
	return out
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FromPartition builds the schedule that activates each set of the partition
// in order for the given uniform duration, skipping empty sets. Sets are
// defensively copied and sorted.
func FromPartition(partition [][]int, duration int) *Schedule {
	s := &Schedule{}
	for _, set := range partition {
		if len(set) == 0 {
			continue
		}
		cp := append([]int(nil), set...)
		sort.Ints(cp)
		s.Phases = append(s.Phases, Phase{Set: cp, Duration: duration})
	}
	return s
}
