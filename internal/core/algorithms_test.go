package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func opts(seed uint64) Options {
	return Options{K: 3, Src: rng.New(seed)}
}

func TestUniformSchedulesAreFeasible(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		gen.GNP(150, 0.2, src),
		gen.Grid(10, 10),
		gen.Complete(20),
		gen.Path(30),
	}
	const b = 4
	for i, g := range graphs {
		s := Uniform(g, b, opts(uint64(i)))
		// The raw schedule always respects batteries (each node in exactly
		// one class) even if some class fails domination.
		usage := s.Usage(g.N())
		for v, u := range usage {
			if u > b {
				t.Errorf("graph %d: node %d used %d > %d", i, v, u, b)
			}
		}
		trunc := s.TruncateInvalid(g, 1)
		if err := trunc.Validate(g, uniformBatteries(g.N(), b), 1); err != nil {
			t.Errorf("graph %d: truncated schedule invalid: %v", i, err)
		}
	}
}

func TestUniformEveryNodeInExactlyOneClass(t *testing.T) {
	g := gen.GNP(100, 0.3, rng.New(2))
	const b = 2
	s := Uniform(g, b, opts(7))
	usage := s.Usage(g.N())
	for v, u := range usage {
		if u != b {
			t.Fatalf("node %d active %d slots, want exactly %d (one class × b)", v, u, b)
		}
	}
}

func TestUniformWHPReachesGuarantee(t *testing.T) {
	g := gen.GNP(200, 0.4, rng.New(3))
	const b = 3
	o := opts(11)
	s := uniformWHPForTest(g, b, o, 50)
	if err := s.Validate(g, uniformBatteries(g.N(), b), 1); err != nil {
		t.Fatal(err)
	}
	want := GuaranteedPhases(g, o) * b
	if s.Lifetime() < want {
		t.Fatalf("WHP lifetime %d below guarantee %d", s.Lifetime(), want)
	}
	// And never above the Lemma 4.1 optimum bound.
	if ub := UniformUpperBound(g, b); s.Lifetime() > ub {
		t.Fatalf("lifetime %d exceeds upper bound %d", s.Lifetime(), ub)
	}
}

func TestUniformZeroBattery(t *testing.T) {
	g := gen.Path(5)
	s := Uniform(g, 0, opts(1))
	if s.Lifetime() != 0 {
		t.Fatal("b=0 should yield empty schedule")
	}
}

func TestUniformNegativeBatteryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative battery did not panic")
		}
	}()
	Uniform(gen.Path(3), -1, opts(1))
}

func TestUniformApproximationRatioIsLogarithmic(t *testing.T) {
	// Theorem 4.3 sanity check: on a dense G(n,p) the achieved lifetime is
	// within c·ln n of the b(δ+1) upper bound.
	g := gen.GNP(300, 0.35, rng.New(4))
	const b = 2
	o := opts(13)
	s := uniformWHPForTest(g, b, o, 50)
	ub := UniformUpperBound(g, b)
	ratio := float64(ub) / float64(s.Lifetime())
	logn := math.Log(float64(g.N()))
	// The constant is ≈ K (=3) plus rounding loss from the ⌊δ/(K ln n)⌋
	// floor; 5·ln n is a comfortable logarithmic envelope.
	if ratio > 5*logn {
		t.Fatalf("ratio %.2f exceeds 5·ln n = %.2f", ratio, 5*logn)
	}
}

func TestGeneralSchedulesAreFeasible(t *testing.T) {
	src := rng.New(5)
	g := gen.GNP(120, 0.25, src)
	b := make([]int, g.N())
	for i := range b {
		b[i] = 1 + src.Intn(5)
	}
	s := General(g, b, opts(17))
	usage := s.Usage(g.N())
	for v, u := range usage {
		if u > b[v] {
			t.Fatalf("node %d used %d > battery %d", v, u, b[v])
		}
	}
	trunc := s.TruncateInvalid(g, 1)
	if err := trunc.Validate(g, b, 1); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralWHPReachesGuarantee(t *testing.T) {
	src := rng.New(6)
	g := gen.GNP(150, 0.4, src)
	b := make([]int, g.N())
	for i := range b {
		b[i] = 2 + src.Intn(4)
	}
	o := opts(19)
	s := generalWHPForTest(g, b, o, 50)
	if err := s.Validate(g, b, 1); err != nil {
		t.Fatal(err)
	}
	if want := GeneralGuaranteedSlots(g, b, o); s.Lifetime() < want {
		t.Fatalf("WHP lifetime %d below guarantee %d", s.Lifetime(), want)
	}
	if ub := GeneralUpperBound(g, b); s.Lifetime() > ub {
		t.Fatalf("lifetime %d exceeds upper bound %d", s.Lifetime(), ub)
	}
}

func TestGeneralHandlesZeroBatteryNodes(t *testing.T) {
	g := gen.Complete(6)
	b := []int{0, 3, 3, 3, 3, 3}
	s := General(g, b, opts(23))
	if u := s.Usage(g.N())[0]; u != 0 {
		t.Fatalf("zero-battery node active %d slots", u)
	}
	trunc := s.TruncateInvalid(g, 1)
	if err := trunc.Validate(g, b, 1); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralBatteryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched batteries did not panic")
		}
	}()
	General(gen.Path(3), []int{1}, opts(1))
}

func TestGeneralMatchesUniformUpperBoundOnUniformInput(t *testing.T) {
	// With uniform batteries, GeneralUpperBound = Σ_{N+[u]} b = b(δ+1) at a
	// minimum-degree node — consistent with Lemma 4.1.
	g := gen.Grid(6, 6)
	const b = 3
	if got, want := GeneralUpperBound(g, uniformBatteries(g.N(), b)), UniformUpperBound(g, b); got != want {
		t.Fatalf("GeneralUpperBound = %d, UniformUpperBound = %d", got, want)
	}
}

func TestFaultTolerantSchedulesAreKDominating(t *testing.T) {
	g := gen.GNP(150, 0.3, rng.New(7))
	const b = 4
	for k := 1; k <= 3; k++ {
		o := opts(uint64(29 + k))
		s := faultTolerantWHPForTest(g, b, k, o, 50)
		if err := s.Validate(g, uniformBatteries(g.N(), b), k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if ub := KTolerantUpperBound(g, b, k); s.Lifetime() > ub {
			t.Fatalf("k=%d: lifetime %d exceeds bound %d", k, s.Lifetime(), ub)
		}
		// The first b/2 slots come from the everyone-active phase.
		if s.Lifetime() < b/2 {
			t.Fatalf("k=%d: lifetime %d below the b/2 floor", k, s.Lifetime())
		}
	}
}

func TestFaultTolerantLargeKRegime(t *testing.T) {
	// δ/ln n < k: the merged-class part vanishes and the schedule is the
	// everyone-active phase alone — still a valid k-dominating schedule of
	// length ⌊b/2⌋ provided δ+1 > k.
	g := gen.Grid(8, 8) // δ = 2
	const b, k = 4, 3
	s := FaultTolerant(g, b, k, opts(31)).TruncateInvalid(g, k)
	if s.Lifetime() < b/2 {
		t.Fatalf("lifetime %d below b/2 = %d", s.Lifetime(), b/2)
	}
	if err := s.Validate(g, uniformBatteries(g.N(), b), k); err != nil {
		t.Fatal(err)
	}
}

func TestFaultTolerantOddBattery(t *testing.T) {
	g := gen.Complete(10)
	const b, k = 5, 2
	s := FaultTolerant(g, b, k, opts(37))
	if err := s.TruncateInvalid(g, k).Validate(g, uniformBatteries(g.N(), b), k); err != nil {
		t.Fatal(err)
	}
}

func TestFaultTolerantB1HasNoFirstPhase(t *testing.T) {
	// b = 1: ⌊b/2⌋ = 0, so the schedule is only merged classes of duration 1.
	g := gen.Complete(30)
	s := FaultTolerant(g, 1, 2, opts(41))
	for _, p := range s.Phases {
		if p.Duration != 1 {
			t.Fatalf("phase duration %d, want 1", p.Duration)
		}
	}
}

func TestFaultTolerantPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	FaultTolerant(gen.Path(3), 2, 0, opts(1))
}

func TestBoundsKnownValues(t *testing.T) {
	g := gen.Complete(5) // δ = 4
	if got := UniformUpperBound(g, 3); got != 15 {
		t.Errorf("UniformUpperBound(K5, 3) = %d, want 15", got)
	}
	if got := KTolerantUpperBound(g, 3, 2); got != 7 {
		t.Errorf("KTolerantUpperBound(K5, 3, 2) = %d, want 7", got)
	}
	if got := GeneralUpperBound(g, []int{1, 2, 3, 4, 5}); got != 15 {
		t.Errorf("GeneralUpperBound = %d, want 15", got)
	}
	star := gen.Star(5)
	if got := GeneralUpperBound(star, []int{10, 1, 1, 1, 1}); got != 11 {
		t.Errorf("GeneralUpperBound(star) = %d, want 11 (leaf + center)", got)
	}
}

func TestBoundsEmptyGraph(t *testing.T) {
	g := graph.New(0)
	if UniformUpperBound(g, 5) != 0 || GeneralUpperBound(g, nil) != 0 || KTolerantUpperBound(g, 5, 2) != 0 {
		t.Fatal("empty graph bounds should be 0")
	}
}

func TestAlgorithmsNeverBeatExactOptimum(t *testing.T) {
	// On small instances the truncated algorithm lifetime must be ≤ the
	// exact integral optimum (it is a feasible schedule).
	src := rng.New(8)
	for trial := 0; trial < 5; trial++ {
		g := gen.GNP(10, 0.5, src)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + src.Intn(3)
		}
		opt, _, _ := exact.Integral(g, b, 1)
		s := generalWHPForTest(g, b, opts(uint64(50+trial)), 20)
		if s.Lifetime() > opt {
			t.Fatalf("trial %d: algorithm %d beats exact optimum %d", trial, s.Lifetime(), opt)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := gen.GNP(80, 0.2, rng.New(9))
	a := Uniform(g, 3, opts(99))
	b := Uniform(g, 3, opts(99))
	if a.String() != b.String() {
		t.Fatal("Uniform not deterministic for a fixed seed")
	}
}

func TestOptionsDefaults(t *testing.T) {
	// Nil Src and zero K must not panic and must behave like K=3.
	g := gen.Complete(10)
	s := Uniform(g, 2, Options{})
	if s.Lifetime() == 0 {
		t.Fatal("default options produced empty schedule on K10")
	}
}
