package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/rng"
)

// TestUniformFeasibilityProperty: for any seed and battery, the raw
// Algorithm 1 schedule uses each node exactly b slots and its truncation
// validates.
func TestUniformFeasibilityProperty(t *testing.T) {
	g := gen.GNP(60, 0.3, rng.New(77))
	prop := func(seed uint64, bBits uint8) bool {
		b := 1 + int(bBits%5)
		s := Uniform(g, b, Options{K: 3, Src: rng.New(seed)})
		for _, u := range s.Usage(g.N()) {
			if u != b {
				return false
			}
		}
		trunc := s.TruncateInvalid(g, 1)
		return trunc.Validate(g, uniformBatteries(g.N(), b), 1) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGeneralFeasibilityProperty: for any seed and battery spread, the raw
// Algorithm 2 schedule never overdraws any node and truncates to a valid
// schedule no longer than the Lemma 5.1 bound.
func TestGeneralFeasibilityProperty(t *testing.T) {
	g := gen.GNP(50, 0.35, rng.New(78))
	prop := func(seed uint64, spreadBits uint8) bool {
		src := rng.New(seed)
		spread := 1 + int(spreadBits%8)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + src.Intn(spread)
		}
		s := General(g, b, Options{K: 3, Src: src.Split()})
		for v, u := range s.Usage(g.N()) {
			if u > b[v] {
				return false
			}
		}
		trunc := s.TruncateInvalid(g, 1)
		if trunc.Validate(g, b, 1) != nil {
			return false
		}
		return trunc.Lifetime() <= GeneralUpperBound(g, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFaultTolerantBudgetProperty: Algorithm 3 never lets a node exceed its
// uniform battery, for any (seed, b, k).
func TestFaultTolerantBudgetProperty(t *testing.T) {
	g := gen.GNP(60, 0.4, rng.New(79))
	prop := func(seed uint64, bBits, kBits uint8) bool {
		b := 1 + int(bBits%6)
		k := 1 + int(kBits%3)
		s := FaultTolerant(g, b, k, Options{K: 3, Src: rng.New(seed)})
		for _, u := range s.Usage(g.N()) {
			if u > b {
				return false
			}
		}
		trunc := s.TruncateInvalid(g, k)
		return trunc.Validate(g, uniformBatteries(g.N(), b), k) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCompactPreservesSemanticsProperty: compaction never changes lifetime
// or per-node usage.
func TestCompactPreservesSemanticsProperty(t *testing.T) {
	g := gen.GNP(40, 0.3, rng.New(80))
	prop := func(seed uint64) bool {
		s := Uniform(g, 2, Options{K: 1, Src: rng.New(seed)})
		c := s.Compact()
		if c.Lifetime() != s.Lifetime() {
			return false
		}
		a, b := s.Usage(g.N()), c.Usage(g.N())
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
