package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// scheduleJSON is the stable on-disk form of a Schedule.
type scheduleJSON struct {
	Phases []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Set      []int `json:"set"`
	Duration int   `json:"duration"`
}

// WriteJSON serializes the schedule as JSON, the interchange format between
// cmd/ltsched and downstream tools.
func (s *Schedule) WriteJSON(w io.Writer) error {
	out := scheduleJSON{Phases: make([]phaseJSON, len(s.Phases))}
	for i, p := range s.Phases {
		set := p.Set
		if set == nil {
			set = []int{}
		}
		out.Phases[i] = phaseJSON{Set: set, Duration: p.Duration}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a schedule written by WriteJSON, validating basic shape
// (non-negative durations, no structural nonsense); graph-level validation
// remains the caller's job via Validate.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var in scheduleJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding schedule: %w", err)
	}
	s := &Schedule{}
	for i, p := range in.Phases {
		if p.Duration < 0 {
			return nil, fmt.Errorf("core: phase %d has negative duration %d", i, p.Duration)
		}
		for _, v := range p.Set {
			if v < 0 {
				return nil, fmt.Errorf("core: phase %d contains negative node %d", i, v)
			}
		}
		s.Phases = append(s.Phases, Phase{Set: append([]int(nil), p.Set...), Duration: p.Duration})
	}
	return s, nil
}
