package core

import (
	"fmt"
	"math"

	"repro/internal/domatic"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Options configures the randomized algorithms.
type Options struct {
	// K is the color-range constant: nodes draw colors from a range of
	// width (local degree or energy quantity)/(K·ln n). The paper's
	// analysis needs K = 3 for the O(1/n) failure probability; smaller K
	// yields longer raw schedules that fail validation more often
	// (experiment E3 sweeps this trade-off). Zero means 3.
	K float64

	// Src is the randomness source. Nil means a fixed default seed, which
	// keeps casual use deterministic.
	Src *rng.Source
}

func (o Options) normalize() Options {
	if o.K <= 0 {
		o.K = 3
	}
	if o.Src == nil {
		o.Src = rng.New(1)
	}
	return o
}

// Uniform runs Algorithm 1 of the paper on graph g with uniform battery b:
// every node draws one color uniformly from [0, δ²_v/(K ln n)) where δ²_v is
// its two-hop minimum degree, and color class i is scheduled for b slots in
// interval [i·b, (i+1)·b). The returned raw schedule has one phase per color
// class; with probability 1-O(1/n) its first GuaranteedPhases(g, opt) phases
// are dominating sets (Lemma 4.2) and the schedule is then an O(log n)
// approximation (Theorem 4.3). Callers should TruncateInvalid, or resolve
// "uniform" in the internal/solver registry for the full retry loop.
func Uniform(g *graph.Graph, b int, opt Options) *Schedule {
	if b < 0 {
		panic(fmt.Sprintf("core: negative battery %d", b))
	}
	opt = opt.normalize()
	if b == 0 || g.N() == 0 {
		return &Schedule{}
	}
	p := domatic.RandomColoring(g, opt.K, opt.Src)
	return FromPartition(p, b)
}

// GuaranteedPhases returns the number of leading phases of a Uniform or
// FaultTolerant raw schedule that Lemma 4.2 covers: ⌊δ/(K ln n)⌋, at least 1.
func GuaranteedPhases(g *graph.Graph, opt Options) int {
	opt = opt.normalize()
	return domatic.GuaranteedClasses(g, opt.K)
}

// General runs Algorithm 2 of the paper on graph g with per-node batteries
// b: node v computes, via two message exchanges,
//
//	b̂_v  = max_{u∈N+[v]} b_u      τ_v  = Σ_{u∈N+[v]} b_u
//	b̂²_v = max_{u∈N+[v]} b̂_u      τ²_v = min_{u∈N+[v]} τ_u
//
// then draws b_v colors uniformly from [0, τ²_v/(K ln(b̂²_v·n))). The
// schedule activates color class t during slot t. With probability 1-O(1/n)
// the classes up to τ/(K ln(b_max·n)) are dominating (Lemma 5.2) and the
// truncated schedule is an O(log(b_max·n)) approximation (Theorem 5.3).
func General(g *graph.Graph, b []int, opt Options) *Schedule {
	if len(b) != g.N() {
		panic(fmt.Sprintf("core: %d batteries for %d nodes", len(b), g.N()))
	}
	for v, bv := range b {
		if bv < 0 {
			panic(fmt.Sprintf("core: negative battery b[%d] = %d", v, bv))
		}
	}
	opt = opt.normalize()
	n := g.N()
	if n == 0 {
		return &Schedule{}
	}

	// First exchange: b̂_v and τ_v over closed neighborhoods.
	bhat := make([]int, n)
	tau := make([]int, n)
	for v := 0; v < n; v++ {
		bhat[v] = b[v]
		tau[v] = b[v]
		for _, u := range g.Neighbors(v) {
			if b[u] > bhat[v] {
				bhat[v] = b[u]
			}
			tau[v] += b[u]
		}
	}
	// Second exchange: b̂²_v = max of neighbors' b̂, τ²_v = min of τ.
	bhat2 := make([]int, n)
	tau2 := make([]int, n)
	for v := 0; v < n; v++ {
		bhat2[v] = bhat[v]
		tau2[v] = tau[v]
		for _, u := range g.Neighbors(v) {
			if bhat[u] > bhat2[v] {
				bhat2[v] = bhat[u]
			}
			if tau[u] < tau2[v] {
				tau2[v] = tau[u]
			}
		}
	}

	// Color selection: node v is active in slot t iff t ∈ C_v.
	slots := make(map[int][]int)
	maxColor := -1
	for v := 0; v < n; v++ {
		r := GeneralColorRange(tau2[v], bhat2[v], n, opt.K)
		seen := make(map[int]bool, b[v])
		for j := 0; j < b[v]; j++ {
			c := opt.Src.Intn(r)
			if seen[c] {
				continue // duplicate draws collapse: C_v is a set
			}
			seen[c] = true
			slots[c] = append(slots[c], v)
			if c > maxColor {
				maxColor = c
			}
		}
	}

	s := &Schedule{}
	for t := 0; t <= maxColor; t++ {
		s.Phases = append(s.Phases, Phase{Set: slots[t], Duration: 1})
	}
	return s
}

// GeneralColorRange returns the width of the color range a node with
// two-hop quantities τ²_v = tau2 and b̂²_v = bhat2 draws from in
// Algorithm 2: max(1, ⌊τ2/(K·ln(bhat2·n))⌋). Exported so the distributed
// protocol in package distsim computes exactly the same ranges.
func GeneralColorRange(tau2, bhat2, n int, k float64) int {
	arg := float64(bhat2) * float64(n)
	if arg < math.E {
		return maxInt(1, tau2) // degenerate tiny instance: ln ≤ 1
	}
	r := int(float64(tau2) / (k * math.Log(arg)))
	if r < 1 {
		return 1
	}
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GeneralGuaranteedSlots returns the number of leading slots of a General
// raw schedule covered by Lemma 5.2: ⌊τ/(K ln(b_max·n))⌋ with
// τ = min_u Σ_{N+[u]} b_u, at least 1 when any battery is positive.
func GeneralGuaranteedSlots(g *graph.Graph, b []int, opt Options) int {
	opt = opt.normalize()
	n := g.N()
	if n == 0 {
		return 0
	}
	tauMin, bMax := math.MaxInt, 0
	for v := 0; v < n; v++ {
		sum := b[v]
		if b[v] > bMax {
			bMax = b[v]
		}
		for _, u := range g.Neighbors(v) {
			sum += b[u]
		}
		if sum < tauMin {
			tauMin = sum
		}
	}
	if bMax == 0 {
		return 0
	}
	return GeneralColorRange(tauMin, bMax, n, opt.K)
}

// FaultTolerant runs Algorithm 3 of the paper on graph g with uniform
// battery b and tolerance k: every node is active for the first ⌊b/2⌋ slots
// (during which the full node set trivially k-dominates, given δ ≥ k-1);
// afterwards, groups of k consecutive color classes of the Algorithm 1
// coloring are merged and each merged group is active for the remaining
// ⌈b/2⌉ slots. Merged groups are k-dominating whenever each constituent
// class is dominating, so with probability 1-O(1/n) the truncated schedule
// is an O(log n) approximation (Theorem 6.2). Requires δ ≥ k-1 for the
// problem to be feasible at all.
func FaultTolerant(g *graph.Graph, b, k int, opt Options) *Schedule {
	if k < 1 {
		panic(fmt.Sprintf("core: tolerance k = %d must be >= 1", k))
	}
	if b < 0 {
		panic(fmt.Sprintf("core: negative battery %d", b))
	}
	opt = opt.normalize()
	n := g.N()
	if b == 0 || n == 0 {
		return &Schedule{}
	}
	if g.MinDegree()+1 < k {
		// Some node has fewer than k closed neighbors: the k-tolerant
		// problem is infeasible (paper §2 restricts to δ ≥ k-1).
		return &Schedule{}
	}

	s := &Schedule{}
	firstHalf := b / 2
	secondHalf := b - firstHalf
	if firstHalf > 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		s.Phases = append(s.Phases, Phase{Set: all, Duration: firstHalf})
	}

	p := domatic.RandomColoring(g, opt.K, opt.Src)
	// Merge k consecutive classes into one k-dominating candidate each.
	for start := 0; start+k <= len(p); start += k {
		var merged []int
		for c := start; c < start+k; c++ {
			merged = append(merged, p[c]...)
		}
		group := FromPartition([][]int{merged}, secondHalf)
		s.Phases = append(s.Phases, group.Phases...)
	}
	return s
}

// GeneralFaultTolerant addresses the open problem the paper's conclusion
// poses ("an approximation algorithm for the general k-tolerant case"): it
// extends Algorithm 2 with the class-merging trick of Algorithm 3. Nodes
// draw b_v colors exactly as in General; then groups of k consecutive slot
// classes are merged into one phase of duration 1. A merged phase is
// k-dominating whenever its k constituent classes are each dominating, so
// the Lemma 5.2 guarantee yields ⌊τ/(K ln(b_max·n))⌋/k valid phases w.h.p.
// Since the Lemma 5.1/6.1-style optimum bound min_u Σ_{N+[u]} b_u / k also
// shrinks by k, the approximation ratio stays O(log(b_max·n)) for every k —
// matching Theorem 5.3's guarantee for the plain case. This is this
// repository's extension, not a result of the paper; experiment E14
// measures it.
//
// A node appearing in several classes of one merged group serves that phase
// only once, so per-node usage can only shrink relative to General and the
// battery constraint is preserved.
func GeneralFaultTolerant(g *graph.Graph, b []int, k int, opt Options) *Schedule {
	if k < 1 {
		panic(fmt.Sprintf("core: tolerance k = %d must be >= 1", k))
	}
	if g.N() > 0 && g.MinDegree()+1 < k {
		return &Schedule{}
	}
	raw := General(g, b, opt)
	s := &Schedule{}
	for start := 0; start+k <= len(raw.Phases); start += k {
		seen := map[int]bool{}
		var merged []int
		for i := start; i < start+k; i++ {
			for _, v := range raw.Phases[i].Set {
				if !seen[v] {
					seen[v] = true
					merged = append(merged, v)
				}
			}
		}
		group := FromPartition([][]int{merged}, 1)
		s.Phases = append(s.Phases, group.Phases...)
	}
	return s
}

// GeneralKTolerantUpperBound combines Lemmas 5.1 and 6.1: a k-tolerant
// schedule drains at least k budget units per slot from the binding node's
// closed neighborhood, so L_OPT ≤ min_u Σ_{N+[u]} b_w / k.
func GeneralKTolerantUpperBound(g *graph.Graph, b []int, k int) int {
	if k < 1 {
		panic(fmt.Sprintf("core: tolerance k = %d must be >= 1", k))
	}
	return GeneralUpperBound(g, b) / k
}

// FaultTolerantGuarantee returns the w.h.p. lifetime target of
// FaultTolerant that its retry loop stops early at: the ⌊b/2⌋ all-nodes
// prefix plus ⌈b/2⌉ slots for each of the ⌊δ/(K ln n)⌋/k merged groups
// Lemma 4.2 covers.
func FaultTolerantGuarantee(g *graph.Graph, b, k int, opt Options) int {
	groups := GuaranteedPhases(g, opt) / k
	target := b / 2
	if groups > 0 {
		target += groups * (b - b/2)
	}
	return target
}
