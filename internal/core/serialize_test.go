package core

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	g := gen.GNP(40, 0.3, rng.New(1))
	s := uniformWHPForTest(g, 3, Options{K: 3, Src: rng.New(2)}, 10)
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back.String(), s.String())
	}
}

func TestScheduleJSONEmpty(t *testing.T) {
	s := &Schedule{}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Lifetime() != 0 || len(back.Phases) != 0 {
		t.Fatalf("empty schedule round trip = %v", back)
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":          "hello",
		"negative duration": `{"phases":[{"set":[0],"duration":-1}]}`,
		"negative node":     `{"phases":[{"set":[-5],"duration":1}]}`,
		"unknown field":     `{"phases":[],"extra":1}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
