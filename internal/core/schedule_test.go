package core

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func uniformBatteries(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestLifetimeAndUsage(t *testing.T) {
	s := &Schedule{Phases: []Phase{
		{Set: []int{0, 1}, Duration: 2},
		{Set: []int{2}, Duration: 3},
	}}
	if s.Lifetime() != 5 {
		t.Fatalf("lifetime = %d, want 5", s.Lifetime())
	}
	usage := s.Usage(4)
	want := []int{2, 2, 3, 0}
	for i := range want {
		if usage[i] != want[i] {
			t.Fatalf("usage = %v, want %v", usage, want)
		}
	}
}

func TestUsagePrefix(t *testing.T) {
	s := &Schedule{Phases: []Phase{
		{Set: []int{0, 1}, Duration: 2},
		{Set: []int{2}, Duration: 3},
	}}
	cases := []struct {
		t    int
		want []int
	}{
		{-1, []int{0, 0, 0, 0}},
		{0, []int{0, 0, 0, 0}},
		{1, []int{1, 1, 0, 0}},
		{2, []int{2, 2, 0, 0}},
		{3, []int{2, 2, 1, 0}},
		{5, []int{2, 2, 3, 0}},
		{9, []int{2, 2, 3, 0}}, // past the end == Usage
	}
	for _, c := range cases {
		got := s.UsagePrefix(4, c.t)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("UsagePrefix(4, %d) = %v, want %v", c.t, got, c.want)
			}
		}
	}
}

func TestActiveAt(t *testing.T) {
	s := &Schedule{Phases: []Phase{
		{Set: []int{0}, Duration: 2},
		{Set: []int{1}, Duration: 1},
	}}
	cases := []struct {
		t    int
		want []int
	}{
		{0, []int{0}}, {1, []int{0}}, {2, []int{1}}, {3, nil}, {-1, nil},
	}
	for _, c := range cases {
		got := s.ActiveAt(c.t)
		if len(got) != len(c.want) {
			t.Errorf("ActiveAt(%d) = %v, want %v", c.t, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ActiveAt(%d) = %v, want %v", c.t, got, c.want)
			}
		}
	}
}

func TestValidateAcceptsFeasible(t *testing.T) {
	g := gen.Path(3)
	s := &Schedule{Phases: []Phase{
		{Set: []int{1}, Duration: 2},
		{Set: []int{0, 2}, Duration: 1},
	}}
	if err := s.Validate(g, []int{1, 2, 1}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOverBudget(t *testing.T) {
	g := gen.Path(3)
	s := &Schedule{Phases: []Phase{{Set: []int{1}, Duration: 3}}}
	if err := s.Validate(g, []int{1, 2, 1}, 1); err == nil {
		t.Fatal("battery violation accepted")
	}
}

func TestValidateRejectsNonDominating(t *testing.T) {
	g := gen.Path(3)
	s := &Schedule{Phases: []Phase{{Set: []int{0}, Duration: 1}}}
	if err := s.Validate(g, []int{5, 5, 5}, 1); err == nil {
		t.Fatal("non-dominating phase accepted")
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	g := gen.Path(3)
	s := &Schedule{}
	if err := s.Validate(g, []int{1}, 1); err == nil {
		t.Error("battery length mismatch accepted")
	}
	if err := s.Validate(g, []int{1, 1, 1}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	bad := &Schedule{Phases: []Phase{{Set: []int{9}, Duration: 1}}}
	if err := bad.Validate(g, []int{1, 1, 1}, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	neg := &Schedule{Phases: []Phase{{Set: []int{1}, Duration: -1}}}
	if err := neg.Validate(g, []int{1, 1, 1}, 1); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestValidateIgnoresZeroDurationPhases(t *testing.T) {
	g := gen.Path(3)
	s := &Schedule{Phases: []Phase{
		{Set: []int{0}, Duration: 0}, // not dominating, but zero duration
		{Set: []int{1}, Duration: 1},
	}}
	if err := s.Validate(g, []int{1, 1, 1}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestValidateKDominating(t *testing.T) {
	g := gen.Complete(4)
	s := &Schedule{Phases: []Phase{{Set: []int{0, 1}, Duration: 1}}}
	if err := s.Validate(g, uniformBatteries(4, 1), 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, uniformBatteries(4, 1), 3); err == nil {
		t.Fatal("2-node phase accepted as 3-dominating")
	}
}

func TestTruncateInvalid(t *testing.T) {
	g := gen.Path(3)
	s := &Schedule{Phases: []Phase{
		{Set: []int{1}, Duration: 1},
		{Set: []int{0}, Duration: 1}, // broken
		{Set: []int{1}, Duration: 1},
	}}
	trunc := s.TruncateInvalid(g, 1)
	if len(trunc.Phases) != 1 || trunc.Lifetime() != 1 {
		t.Fatalf("truncated = %v", trunc)
	}
	drop := s.DropInvalid(g, 1)
	if len(drop.Phases) != 2 || drop.Lifetime() != 2 {
		t.Fatalf("dropped = %v", drop)
	}
}

func TestCompactMergesAdjacentPhases(t *testing.T) {
	s := &Schedule{Phases: []Phase{
		{Set: []int{0, 1}, Duration: 1},
		{Set: []int{0, 1}, Duration: 2},
		{Set: []int{2}, Duration: 0},
		{Set: []int{1}, Duration: 1},
	}}
	c := s.Compact()
	if len(c.Phases) != 2 {
		t.Fatalf("compacted = %v", c)
	}
	if c.Phases[0].Duration != 3 || c.Phases[1].Duration != 1 {
		t.Fatalf("compacted durations = %v", c)
	}
	if c.Lifetime() != s.Lifetime()-0 {
		t.Fatalf("compaction changed lifetime: %d vs %d", c.Lifetime(), s.Lifetime())
	}
}

func TestFromPartitionSkipsEmptyAndSorts(t *testing.T) {
	s := FromPartition([][]int{{3, 1}, {}, {2}}, 2)
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %v", s.Phases)
	}
	if s.Phases[0].Set[0] != 1 || s.Phases[0].Set[1] != 3 {
		t.Fatalf("first phase not sorted: %v", s.Phases[0].Set)
	}
	if s.Lifetime() != 4 {
		t.Fatalf("lifetime = %d, want 4", s.Lifetime())
	}
}

func TestGanttRendering(t *testing.T) {
	g := gen.Path(3)
	_ = g
	s := &Schedule{Phases: []Phase{
		{Set: []int{1}, Duration: 2},
		{Set: []int{0, 2}, Duration: 1},
	}}
	var sb strings.Builder
	if err := s.Gantt(&sb, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("gantt output:\n%s", out)
	}
	if !strings.Contains(lines[2], "##.") {
		t.Errorf("node 1 row = %q, want ##.", lines[2])
	}
	if !strings.Contains(lines[1], "..#") {
		t.Errorf("node 0 row = %q, want ..#", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	s := &Schedule{Phases: []Phase{
		{Set: []int{0, 2}, Duration: 2},
		{Set: []int{1}, Duration: 1},
	}}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "phase,start,duration,nodes\n0,0,2,0 2\n1,2,1,1\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestStringForm(t *testing.T) {
	s := &Schedule{Phases: []Phase{{Set: []int{0, 1}, Duration: 2}}}
	if got := s.String(); got != "[[0 1]×2]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestEmptyScheduleOnEmptyGraph(t *testing.T) {
	g := graph.New(0)
	s := &Schedule{}
	if err := s.Validate(g, nil, 1); err != nil {
		t.Fatal(err)
	}
	if s.Lifetime() != 0 {
		t.Fatal("empty schedule lifetime non-zero")
	}
}
