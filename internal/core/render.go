package core

import (
	"fmt"
	"io"
	"strings"
)

// Gantt writes an ASCII Gantt chart of the schedule: one row per node,
// one column per time slot, '#' where the node is active. Intended for
// small instances (cmd/ltsched and the examples).
func (s *Schedule) Gantt(w io.Writer, n int) error {
	lifetime := s.Lifetime()
	rows := make([][]byte, n)
	for v := range rows {
		rows[v] = []byte(strings.Repeat(".", lifetime))
	}
	t := 0
	for _, p := range s.Phases {
		for _, v := range p.Set {
			for dt := 0; dt < p.Duration; dt++ {
				rows[v][t+dt] = '#'
			}
		}
		t += p.Duration
	}
	if _, err := fmt.Fprintf(w, "time     %s\n", ruler(lifetime)); err != nil {
		return err
	}
	for v, row := range rows {
		if _, err := fmt.Fprintf(w, "node %-3d %s\n", v, row); err != nil {
			return err
		}
	}
	return nil
}

func ruler(n int) string {
	var sb strings.Builder
	for t := 0; t < n; t++ {
		sb.WriteByte(byte('0' + t%10))
	}
	return sb.String()
}

// WriteCSV emits the schedule as "phase,start,duration,nodes" rows, with
// nodes separated by spaces, for downstream plotting.
func (s *Schedule) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "phase,start,duration,nodes"); err != nil {
		return err
	}
	start := 0
	for i, p := range s.Phases {
		nodes := make([]string, len(p.Set))
		for j, v := range p.Set {
			nodes[j] = fmt.Sprint(v)
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%s\n", i, start, p.Duration, strings.Join(nodes, " ")); err != nil {
			return err
		}
		start += p.Duration
	}
	return nil
}

// String returns a compact textual form like "[{0 2}×2 {1 3 4}×1]".
func (s *Schedule) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, p := range s.Phases {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v×%d", p.Set, p.Duration)
	}
	sb.WriteByte(']')
	return sb.String()
}
