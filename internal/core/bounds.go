package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// UniformUpperBound returns the Lemma 4.1 bound on the optimal uniform
// cluster-lifetime: L_OPT ≤ b(δ+1). A minimum-degree node must be covered
// in every slot by one of its δ+1 closed neighbors, each of which can serve
// at most b slots.
func UniformUpperBound(g *graph.Graph, b int) int {
	if g.N() == 0 {
		return 0
	}
	return b * (g.MinDegree() + 1)
}

// GeneralUpperBound returns the Lemma 5.1 bound on the optimal general
// cluster-lifetime: L_OPT ≤ min_u Σ_{w∈N+[u]} b_w, the minimum energy
// coverage of the network. Every slot drains at least one unit from the
// binding node's closed neighborhood.
func GeneralUpperBound(g *graph.Graph, b []int) int {
	if len(b) != g.N() {
		panic(fmt.Sprintf("core: %d batteries for %d nodes", len(b), g.N()))
	}
	if g.N() == 0 {
		return 0
	}
	best := math.MaxInt
	for v := 0; v < g.N(); v++ {
		sum := b[v]
		for _, u := range g.Neighbors(v) {
			sum += b[u]
		}
		if sum < best {
			best = sum
		}
	}
	return best
}

// KTolerantUpperBound returns the Lemma 6.1 bound on the optimal k-tolerant
// uniform cluster-lifetime: L_OPT ≤ b(δ+1)/k. Every slot drains at least k
// units from a minimum-degree node's closed neighborhood.
func KTolerantUpperBound(g *graph.Graph, b, k int) int {
	if k < 1 {
		panic(fmt.Sprintf("core: tolerance k = %d must be >= 1", k))
	}
	if g.N() == 0 {
		return 0
	}
	return b * (g.MinDegree() + 1) / k
}
