package core

import (
	"strings"
	"testing"
)

// FuzzReadJSON checks the schedule decoder never panics and that accepted
// schedules re-encode losslessly.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"phases":[{"set":[0,1],"duration":2}]}`)
	f.Add(`{"phases":[]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := s.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSON(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip mismatch: %s vs %s", back, s)
		}
	})
}
