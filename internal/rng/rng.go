// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// Reproducibility is a hard requirement for the experiments: every run of an
// experiment with the same seed must produce the same graphs, the same color
// choices, and therefore the same tables. The standard library's math/rand is
// adequate for single streams, but the distributed simulator needs one
// independent stream per node whose values do not depend on the order in
// which nodes are stepped. rng.Source is a SplitMix64 generator: cheap,
// allocation-free, passes BigCrush-level smoke tests for our purposes, and
// splittable via Split, which derives an independent child stream from a
// parent deterministically.
package rng

import "math"

// Source is a deterministic pseudo-random source. The zero value is a valid
// generator seeded with 0; prefer New so that distinct seeds are well mixed.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield streams that
// are independent for all practical purposes because the output function
// mixes the counter through two rounds of 64-bit finalization.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// golden is the SplitMix64 increment (odd, derived from the golden ratio).
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a child Source from s. The child's stream is independent of
// the parent's subsequent outputs: it is seeded from the parent's next output
// mixed with a distinct constant so that Split(); Uint64() and
// Uint64(); Split() do not alias.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x6a09e667f3bcc909}
}

// SplitN derives n child sources, one per index, deterministically.
// Children are pairwise independent streams; child i depends only on the
// parent state at call time and on i.
func (s *Source) SplitN(n int) []*Source {
	base := s.Uint64()
	kids := make([]*Source, n)
	for i := range kids {
		kids[i] = &Source{state: mix(base, uint64(i))}
	}
	return kids
}

// mix combines two words into a well-distributed seed.
func mix(a, b uint64) uint64 {
	z := a + golden*(b+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids division
	// in the common case.
	un := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul128(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// Bool returns a uniformly random boolean.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}
