package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 97, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish sanity test: 10 buckets, 100k samples.
	s := New(123)
	const buckets, samples = 10, 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d: count %d far from expected %.0f", i, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42)
	child := parent.Split()
	// The child stream must not equal the parent continuation.
	divergent := false
	for i := 0; i < 100; i++ {
		if parent.Uint64() != child.Uint64() {
			divergent = true
			break
		}
	}
	if !divergent {
		t.Fatal("child stream mirrors parent stream")
	}
}

func TestSplitNDeterministicAndDistinct(t *testing.T) {
	a := New(42).SplitN(16)
	b := New(42).SplitN(16)
	for i := range a {
		if a[i].Uint64() != b[i].Uint64() {
			t.Fatalf("SplitN child %d not reproducible", i)
		}
	}
	// Distinct children produce distinct first outputs (w.h.p., checked fixed seed).
	seen := map[uint64]int{}
	for i, c := range New(7).SplitN(64) {
		v := c.Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("children %d and %d share first output", i, j)
		}
		seen[v] = i
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(2024)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestMul128AgainstBigComputation(t *testing.T) {
	// Property: for values fitting in 32 bits, hi must be 0 and lo the plain product.
	f := func(a, b uint32) bool {
		hi, lo := mul128(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Known 128-bit case: (2^63)·4 = 2^65 → hi = 2, lo = 0.
	if hi, lo := mul128(1<<63, 4); hi != 2 || lo != 0 {
		t.Errorf("mul128(2^63, 4) = (%d, %d), want (2, 0)", hi, lo)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	// All 6 permutations of 3 elements should appear over many shuffles.
	s := New(31)
	seen := map[[3]int]bool{}
	for i := 0; i < 600; i++ {
		arr := [3]int{0, 1, 2}
		s.Shuffle(3, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		seen[arr] = true
	}
	if len(seen) != 6 {
		t.Errorf("saw %d/6 permutations", len(seen))
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}
