package domset

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestFractionalLocalIsFeasible(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		gen.Path(20),
		gen.Star(15),
		gen.Complete(8),
		gen.Grid(6, 6),
		gen.GNP(100, 0.1, src),
		gen.Circulant(60, 8),
		graph.New(5), // isolated nodes: x_v = 1 each
	}
	for i, g := range graphs {
		x := FractionalLocal(g)
		if !IsFractionalDominating(g, x) {
			t.Errorf("graph %d: fractional solution infeasible", i)
		}
	}
}

func TestFractionalLocalNearOptimalOnRegular(t *testing.T) {
	// On a d-regular graph, x_v = 1/(d+1) for all v: total weight n/(d+1),
	// which matches the LP optimum for vertex-transitive graphs.
	g := gen.Circulant(60, 10)
	x := FractionalLocal(g)
	total := 0.0
	for _, w := range x {
		total += w
	}
	want := 60.0 / 11.0
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("total weight %v, want %v", total, want)
	}
}

func TestFractionalIsolatedNodesWeightOne(t *testing.T) {
	g := graph.New(3)
	for _, w := range FractionalLocal(g) {
		if w != 1 {
			t.Fatalf("isolated node weight %v, want 1", w)
		}
	}
}

func TestIsFractionalDominatingRejects(t *testing.T) {
	g := gen.Path(3)
	if IsFractionalDominating(g, []float64{0.1, 0.1, 0.1}) {
		t.Fatal("infeasible weights accepted")
	}
	if IsFractionalDominating(g, []float64{1}) {
		t.Fatal("wrong-length weights accepted")
	}
}

func TestRoundFractionalAlwaysDominating(t *testing.T) {
	src := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		g := gen.GNP(80, 0.08, src)
		set := LPRoundedDS(g, src)
		if !IsDominating(g, set, nil) {
			t.Fatalf("trial %d: rounded set not dominating", trial)
		}
	}
}

func TestRoundFractionalSizeIsLogFactorOnRegular(t *testing.T) {
	// On a circulant with degree d, |DS| should be O(n ln d / d) — compare
	// against the trivial n and the optimal ~n/(d+1).
	g := gen.Circulant(300, 20)
	src := rng.New(3)
	sizes := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		sizes += len(LPRoundedDS(g, src))
	}
	mean := float64(sizes) / trials
	opt := 300.0 / 21.0
	if mean > 10*opt*math.Log(21) {
		t.Fatalf("mean size %.1f too large vs optimum %.1f", mean, opt)
	}
	if mean < opt {
		t.Fatalf("mean size %.1f below the LP optimum %.1f — impossible", mean, opt)
	}
}

func TestRoundFractionalPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	RoundFractional(gen.Path(3), []float64{1}, 2, rng.New(1))
}

func TestRoundFractionalZeroWeightsRepairedToFullCover(t *testing.T) {
	// All-zero weights are infeasible, but repair still yields a dominating
	// set (every uncovered node self-joins).
	g := gen.Path(5)
	set := RoundFractional(g, make([]float64, 5), 2, rng.New(4))
	if !IsDominating(g, set, nil) {
		t.Fatal("repair failed to produce a dominating set")
	}
}
