package domset

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestIsDominatingBasics(t *testing.T) {
	g := gen.Path(5) // 0-1-2-3-4
	cases := []struct {
		set  []int
		want bool
	}{
		{[]int{1, 3}, true},
		{[]int{0, 2, 4}, true},
		{[]int{2}, false},         // 0 and 4 uncovered
		{[]int{0, 4}, false},      // 2 uncovered
		{[]int{0, 1, 2, 3}, true}, // 4 covered by 3
		{nil, false},
	}
	for _, c := range cases {
		if got := IsDominating(g, c.set, nil); got != c.want {
			t.Errorf("IsDominating(path5, %v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestIsDominatingEmptyGraph(t *testing.T) {
	g := graph.New(0)
	if !IsDominating(g, nil, nil) {
		t.Fatal("empty set should dominate empty graph")
	}
}

func TestIsDominatingWithAlive(t *testing.T) {
	g := gen.Path(5)
	alive := []bool{true, true, false, true, true}
	// With node 2 dead, {1, 3} still dominates the alive nodes.
	if !IsDominating(g, []int{1, 3}, alive) {
		t.Fatal("{1,3} should dominate alive path5 minus node 2")
	}
	// A dead dominator does not count: {2} dead plus {0} covers only 0,1.
	if IsDominating(g, []int{0, 2}, alive) {
		t.Fatal("dead node 2 must not dominate 3 and 4")
	}
}

func TestIsKDominating(t *testing.T) {
	g := gen.Complete(4)
	if !IsKDominating(g, []int{0, 1}, 2, nil) {
		t.Fatal("two nodes of K4 2-dominate everything")
	}
	if IsKDominating(g, []int{0}, 2, nil) {
		t.Fatal("a single node cannot 2-dominate")
	}
	// Node in set counts itself: on K4, {0,1,2} 3-dominates node 0
	// (itself + 1 + 2).
	if !IsKDominating(g, []int{0, 1, 2}, 3, nil) {
		t.Fatal("{0,1,2} should 3-dominate K4")
	}
	if IsKDominating(g, []int{0, 1, 2}, 4, nil) {
		t.Fatal("4-domination impossible with 3 dominators")
	}
}

func TestUndominatedNodes(t *testing.T) {
	g := gen.Path(5)
	und := UndominatedNodes(g, []int{0}, 1, nil)
	want := []int{2, 3, 4}
	if len(und) != len(want) {
		t.Fatalf("undominated = %v, want %v", und, want)
	}
	for i := range want {
		if und[i] != want[i] {
			t.Fatalf("undominated = %v, want %v", und, want)
		}
	}
}

func TestGreedyProducesDominatingSet(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		gen.Path(10),
		gen.Ring(12),
		gen.Star(8),
		gen.Complete(6),
		gen.Grid(5, 5),
		gen.GNP(60, 0.1, src),
		gen.RandomTree(40, src),
	}
	for i, g := range graphs {
		set := Greedy(g)
		if !IsDominating(g, set, nil) {
			t.Errorf("graph %d: greedy set %v not dominating", i, set)
		}
	}
}

func TestGreedyStarIsOptimal(t *testing.T) {
	g := gen.Star(10)
	set := Greedy(g)
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("greedy on star = %v, want [0]", set)
	}
}

func TestGreedyRestrictedInfeasible(t *testing.T) {
	g := gen.Path(3)
	allowed := []bool{true, false, false}
	// Node 2's closed neighborhood {1, 2} is entirely disallowed.
	if set := GreedyRestricted(g, allowed, nil); set != nil {
		t.Fatalf("expected nil for infeasible restriction, got %v", set)
	}
}

func TestGreedyRestrictedRespectsAllowed(t *testing.T) {
	g := gen.Ring(6)
	allowed := []bool{true, false, true, false, true, false}
	set := GreedyRestricted(g, allowed, nil)
	if set == nil {
		t.Fatal("even ring with alternating allowed should be feasible")
	}
	for _, v := range set {
		if !allowed[v] {
			t.Fatalf("disallowed node %d in set %v", v, set)
		}
	}
	if !IsDominating(g, set, nil) {
		t.Fatalf("restricted greedy set %v not dominating", set)
	}
}

func TestGreedyKProducesKDominating(t *testing.T) {
	src := rng.New(2)
	g := gen.GNP(50, 0.25, src)
	for k := 1; k <= 3; k++ {
		if g.MinDegree()+1 < k {
			continue
		}
		set := GreedyK(g, k, nil, nil)
		if set == nil {
			t.Fatalf("k=%d: GreedyK infeasible on δ=%d graph", k, g.MinDegree())
		}
		if !IsKDominating(g, set, k, nil) {
			t.Fatalf("k=%d: set not k-dominating", k)
		}
	}
}

func TestGreedyKInfeasible(t *testing.T) {
	g := gen.Path(4) // leaf has closed neighborhood of size 2
	if set := GreedyK(g, 3, nil, nil); set != nil {
		t.Fatalf("3-domination of a path should be infeasible, got %v", set)
	}
}

func TestGreedyKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	GreedyK(gen.Path(3), 0, nil, nil)
}

func TestLubyMIS(t *testing.T) {
	src := rng.New(3)
	graphs := []*graph.Graph{
		gen.Path(15),
		gen.Ring(20),
		gen.Complete(7),
		gen.Grid(6, 6),
		gen.GNP(80, 0.08, src),
	}
	for i, g := range graphs {
		mis := LubyMIS(g, src)
		if !IsMaximalIndependent(g, mis) {
			t.Errorf("graph %d: Luby result %v not a maximal independent set", i, mis)
		}
	}
}

func TestLubyMISOnEmptyAndIsolated(t *testing.T) {
	src := rng.New(4)
	if mis := LubyMIS(graph.New(0), src); len(mis) != 0 {
		t.Fatal("MIS of empty graph non-empty")
	}
	g := graph.New(5) // all isolated
	mis := LubyMIS(g, src)
	if len(mis) != 5 {
		t.Fatalf("MIS of 5 isolated nodes = %v, want all", mis)
	}
}

func TestLubyMISCompleteGraphHasOneNode(t *testing.T) {
	src := rng.New(5)
	for i := 0; i < 10; i++ {
		mis := LubyMIS(gen.Complete(9), src)
		if len(mis) != 1 {
			t.Fatalf("MIS of K9 = %v, want single node", mis)
		}
	}
}

func TestMinimumExactSmallCases(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		size int
	}{
		{"path4", gen.Path(4), 2},
		{"path7", gen.Path(7), 3},
		{"ring6", gen.Ring(6), 2},
		{"star9", gen.Star(9), 1},
		{"k5", gen.Complete(5), 1},
		{"grid3x3", gen.Grid(3, 3), 3},
	}
	for _, c := range cases {
		set := MinimumExact(c.g, nil, nil)
		if set == nil {
			t.Fatalf("%s: no set found", c.name)
		}
		if !IsDominating(c.g, set, nil) {
			t.Fatalf("%s: exact set %v not dominating", c.name, set)
		}
		if len(set) != c.size {
			t.Errorf("%s: |MDS| = %d, want %d (set %v)", c.name, len(set), c.size, set)
		}
	}
}

func TestMinimumExactNeverBeatenByGreedy(t *testing.T) {
	src := rng.New(6)
	for trial := 0; trial < 20; trial++ {
		g := gen.GNP(18, 0.2, src)
		exact := MinimumExact(g, nil, nil)
		greedy := Greedy(g)
		if exact == nil {
			t.Fatal("exact failed on unrestricted instance")
		}
		if len(exact) > len(greedy) {
			t.Fatalf("trial %d: exact %d > greedy %d", trial, len(exact), len(greedy))
		}
	}
}

func TestMinimumExactInfeasibleRestriction(t *testing.T) {
	g := gen.Path(3)
	allowed := []bool{true, false, false}
	if set := MinimumExact(g, allowed, nil); set != nil {
		t.Fatalf("expected nil, got %v", set)
	}
}

func TestMinimumExactWithAliveSubset(t *testing.T) {
	g := gen.Path(5)
	alive := []bool{true, true, true, false, false}
	set := MinimumExact(g, nil, alive)
	if set == nil || len(set) != 1 || set[0] != 1 {
		t.Fatalf("MDS of alive prefix = %v, want [1]", set)
	}
}

func TestMinimumExactFujitaTrapSize(t *testing.T) {
	// The trap's minimum dominating set is exactly the k a-nodes.
	k := 3
	g, _ := gen.FujitaTrap(k)
	set := MinimumExact(g, nil, nil)
	if len(set) != k {
		t.Fatalf("|MDS| = %d, want %d", len(set), k)
	}
	for i, v := range set {
		if v != 1+i {
			t.Fatalf("MDS = %v, want the a-nodes [1..%d]", set, k)
		}
	}
}

func TestIsIndependent(t *testing.T) {
	g := gen.Path(4)
	if !IsIndependent(g, []int{0, 2}) {
		t.Error("{0,2} independent in path4")
	}
	if IsIndependent(g, []int{0, 1}) {
		t.Error("{0,1} not independent in path4")
	}
	if !IsIndependent(g, nil) {
		t.Error("empty set is independent")
	}
}
