// Package domset implements dominating-set primitives: verifiers for plain
// and fault-tolerant (k-)domination, the classical greedy set-cover
// approximation for minimum dominating sets, a greedy k-dominating set
// builder, an exact branch-and-bound minimum dominating set for small
// graphs, and Luby's randomized maximal independent set (every MIS is a
// dominating set; in unit disk graphs it is a constant-factor approximation,
// as the paper's related-work section recounts).
package domset

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// IsDominating reports whether set is a dominating set of g restricted to
// the nodes for which alive is true (alive == nil means all nodes). A node
// in the set dominates itself. Dead nodes neither need domination nor
// dominate others.
func IsDominating(g *graph.Graph, set []int, alive []bool) bool {
	return IsKDominating(g, set, 1, alive)
}

// IsKDominating reports whether every alive node has at least k dominators
// in its closed neighborhood within set (counting itself if it is in the
// set), considering only alive dominators.
//
// This is the one-shot convenience form; hot loops should hold a Checker
// and call its methods to amortize the scratch buffers across calls.
func IsKDominating(g *graph.Graph, set []int, k int, alive []bool) bool {
	return newSparseChecker(g).IsKDominating(set, k, alive)
}

// UndominatedNodes returns the sorted alive nodes with fewer than k
// dominators in set. Useful for diagnostics and failure-injection reports.
// Hot loops should hold a Checker and use AppendUndominated with a reused
// buffer instead.
func UndominatedNodes(g *graph.Graph, set []int, k int, alive []bool) []int {
	return newSparseChecker(g).AppendUndominated(nil, set, k, alive)
}

// Greedy returns a dominating set via the classical set-cover greedy: it
// repeatedly adds the node that dominates the most not-yet-dominated nodes
// (ties broken by smallest ID). The result is within ln(Δ+1)+1 of the
// minimum dominating set. The returned set is sorted.
func Greedy(g *graph.Graph) []int {
	return GreedyRestricted(g, nil, nil)
}

// GreedyRestricted runs the set-cover greedy where only nodes with
// allowed[v] == true may join the dominating set and only alive nodes need
// to be dominated (nil slices mean "all nodes"). It returns nil if no
// allowed set dominates all alive nodes (e.g. an alive node whose entire
// closed neighborhood is disallowed).
func GreedyRestricted(g *graph.Graph, allowed, alive []bool) []int {
	n := g.N()
	need := make([]bool, n) // nodes still requiring domination
	remaining := 0
	for v := 0; v < n; v++ {
		if alive == nil || alive[v] {
			need[v] = true
			remaining++
		}
	}
	covers := func(v int) int {
		c := 0
		if need[v] {
			c++
		}
		for _, u := range g.Neighbors(v) {
			if need[u] {
				c++
			}
		}
		return c
	}
	var set []int
	for remaining > 0 {
		best, bestCover := -1, 0
		for v := 0; v < n; v++ {
			if allowed != nil && !allowed[v] {
				continue
			}
			if c := covers(v); c > bestCover {
				best, bestCover = v, c
			}
		}
		if best == -1 {
			return nil // some alive node cannot be dominated
		}
		set = append(set, best)
		if need[best] {
			need[best] = false
			remaining--
		}
		for _, u := range g.Neighbors(best) {
			if need[u] {
				need[u] = false
				remaining--
			}
		}
	}
	sort.Ints(set)
	return set
}

// GreedyK returns a k-dominating set greedily: every alive node must end up
// with at least k dominators in its closed neighborhood. Each step adds the
// allowed node that reduces the total residual demand the most. Returns nil
// if infeasible (some node's closed neighborhood has fewer than k allowed
// members).
func GreedyK(g *graph.Graph, k int, allowed, alive []bool) []int {
	if k < 1 {
		panic("domset: k must be >= 1")
	}
	n := g.N()
	demand := make([]int, n)
	total := 0
	for v := 0; v < n; v++ {
		if alive == nil || alive[v] {
			demand[v] = k
			total += k
		}
	}
	inSet := make([]bool, n)
	gain := func(v int) int {
		c := 0
		if demand[v] > 0 {
			c++
		}
		for _, u := range g.Neighbors(v) {
			if demand[u] > 0 {
				c++
			}
		}
		return c
	}
	var set []int
	for total > 0 {
		best, bestGain := -1, 0
		for v := 0; v < n; v++ {
			if inSet[v] || (allowed != nil && !allowed[v]) {
				continue
			}
			if c := gain(v); c > bestGain {
				best, bestGain = v, c
			}
		}
		if best == -1 {
			return nil
		}
		inSet[best] = true
		set = append(set, best)
		if demand[best] > 0 {
			demand[best]--
			total--
		}
		for _, u := range g.Neighbors(best) {
			if demand[u] > 0 {
				demand[u]--
				total--
			}
		}
	}
	sort.Ints(set)
	return set
}

// LubyMIS computes a maximal independent set with Luby's randomized
// algorithm: in each round every live node draws a random priority, joins
// the MIS if it beats all live neighbors, and then it and its neighbors
// leave the contest. Terminates in O(log n) rounds w.h.p. Every MIS is a
// dominating set.
func LubyMIS(g *graph.Graph, src *rng.Source) []int {
	n := g.N()
	state := make([]int8, n) // 0 = competing, 1 = in MIS, -1 = out
	competing := n
	var mis []int
	prio := make([]uint64, n)
	for competing > 0 {
		for v := 0; v < n; v++ {
			if state[v] == 0 {
				prio[v] = src.Uint64()
			}
		}
		// Determine all winners against this round's snapshot before
		// mutating any state, so two adjacent nodes can never both win.
		var winners []int
		for v := 0; v < n; v++ {
			if state[v] != 0 {
				continue
			}
			win := true
			for _, u := range g.Neighbors(v) {
				if state[u] == 0 && (prio[u] > prio[v] || (prio[u] == prio[v] && int(u) < v)) {
					win = false
					break
				}
			}
			if win {
				winners = append(winners, v)
			}
		}
		for _, v := range winners {
			state[v] = 1
			competing--
			mis = append(mis, v)
			for _, u := range g.Neighbors(v) {
				if state[u] == 0 {
					state[u] = -1
					competing--
				}
			}
		}
	}
	sort.Ints(mis)
	return mis
}

// IsIndependent reports whether no two nodes of set are adjacent.
func IsIndependent(g *graph.Graph, set []int) bool {
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for _, u := range g.Neighbors(v) {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependent reports whether set is independent and no node can be
// added while preserving independence (equivalently: independent and
// dominating).
func IsMaximalIndependent(g *graph.Graph, set []int) bool {
	return IsIndependent(g, set) && IsDominating(g, set, nil)
}
