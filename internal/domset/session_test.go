package domset

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

// sessionState extracts the session's view (members, alive) into the plain
// slices the fold path consumes, so both paths can be queried on the
// identical instant.
func sessionState(s *Session, n int) (set []int, alive []bool) {
	set = s.AppendMembers(nil)
	alive = make([]bool, n)
	for v := 0; v < n; v++ {
		alive[v] = s.IsAlive(v)
	}
	return set, alive
}

// checkAgainstFold cross-checks every session query against a fresh
// full-fold Checker on the session's current (set, alive) state.
func checkAgainstFold(t *testing.T, s *Session, ck *Checker, k int, label string) {
	t.Helper()
	n := ck.Graph().N()
	set, alive := sessionState(s, n)

	if got, want := s.IsKDominating(), ck.IsKDominating(set, k, alive); got != want {
		t.Fatalf("%s: IsKDominating = %v, fold path says %v", label, got, want)
	}
	if got, want := s.CoveredCount(), ck.CoveredCount(set, k, alive); got != want {
		t.Fatalf("%s: CoveredCount = %d, fold path says %d", label, got, want)
	}
	wantUndom := ck.AppendUndominated(nil, set, k, alive)
	gotUndom := s.AppendUndominated(nil)
	if len(gotUndom) != len(wantUndom) {
		t.Fatalf("%s: undominated %v, fold path says %v", label, gotUndom, wantUndom)
	}
	for i := range gotUndom {
		if gotUndom[i] != wantUndom[i] {
			t.Fatalf("%s: undominated %v, fold path says %v", label, gotUndom, wantUndom)
		}
	}
	if got, want := s.UndominatedCount(), len(wantUndom); got != want {
		t.Fatalf("%s: UndominatedCount = %d, want %d", label, got, want)
	}
	aliveN := 0
	for _, a := range alive {
		if a {
			aliveN++
		}
	}
	if got := s.AliveCount(); got != aliveN {
		t.Fatalf("%s: AliveCount = %d, want %d", label, got, aliveN)
	}
	for v := 0; v < n; v++ {
		if got, want := s.Dominators(v), naiveDominatorCount(ck.Graph(), set, alive, v); got != want {
			t.Fatalf("%s: Dominators(%d) = %d, naive says %d", label, v, got, want)
		}
	}
}

// TestSessionMatchesFold is the equivalence property of the incremental
// kernel: on random graphs, under random Begin states and random
// Flip/SetAlive sequences, every session query must equal a fresh full-fold
// query on the same (set, alive) state — byte for byte, including the
// sorted undominated list.
func TestSessionMatchesFold(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 30; trial++ {
		n := 1 + src.Intn(70)
		g := gen.GNP(n, 0.15, src)
		ck := NewChecker(g)
		for _, k := range []int{1, 2, 3} {
			var set []int
			for v := 0; v < n; v++ {
				if src.Intn(3) == 0 {
					set = append(set, v)
				}
			}
			if len(set) > 0 {
				set = append(set, set[0]) // duplicate member must collapse
			}
			var alive []bool
			if src.Intn(2) == 0 {
				alive = make([]bool, n)
				for v := range alive {
					alive[v] = src.Intn(5) != 0
				}
			}
			sess := ck.Begin(set, k, alive)
			checkAgainstFold(t, sess, ck, k, "after Begin")
			for step := 0; step < 30; step++ {
				v := src.Intn(n)
				if src.Intn(3) == 0 {
					sess.SetAlive(v, src.Intn(2) == 0)
				} else {
					sess.Flip(v)
				}
				checkAgainstFold(t, sess, ck, k, "after delta")
			}
		}
	}
}

// TestSessionRollback pins the undo stack: state captured at a Mark must be
// reproduced exactly after a Rollback to it, including across nested marks,
// mixed Flip/SetAlive mutations, and repeated speculate/undo cycles.
func TestSessionRollback(t *testing.T) {
	src := rng.New(23)
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.Intn(60)
		g := gen.GNP(n, 0.2, src)
		ck := NewChecker(g)
		k := 1 + src.Intn(2)
		var set []int
		for v := 0; v < n; v++ {
			if src.Intn(2) == 0 {
				set = append(set, v)
			}
		}
		sess := ck.Begin(set, k, nil)

		// Drift to a random base state, then snapshot it.
		for i := 0; i < 10; i++ {
			sess.Flip(src.Intn(n))
		}
		baseSet, baseAlive := sessionState(sess, n)
		baseCovered := sess.CoveredCount()
		mark := sess.Mark()

		for cycle := 0; cycle < 5; cycle++ {
			inner := sess.Mark()
			for i := 0; i < 8; i++ {
				v := src.Intn(n)
				if src.Intn(3) == 0 {
					sess.SetAlive(v, src.Intn(2) == 0)
				} else {
					sess.Flip(v)
				}
			}
			checkAgainstFold(t, sess, ck, k, "speculative state")
			if cycle%2 == 0 {
				sess.Rollback(inner)
			} else {
				sess.Rollback(mark)
			}
		}
		sess.Rollback(mark)

		gotSet, gotAlive := sessionState(sess, n)
		if len(gotSet) != len(baseSet) {
			t.Fatalf("rollback lost members: %v, want %v", gotSet, baseSet)
		}
		for i := range gotSet {
			if gotSet[i] != baseSet[i] {
				t.Fatalf("rollback members %v, want %v", gotSet, baseSet)
			}
		}
		for v := range gotAlive {
			if gotAlive[v] != baseAlive[v] {
				t.Fatalf("rollback alive[%d] = %v, want %v", v, gotAlive[v], baseAlive[v])
			}
		}
		if got := sess.CoveredCount(); got != baseCovered {
			t.Fatalf("rollback CoveredCount = %d, want %d", got, baseCovered)
		}
		checkAgainstFold(t, sess, ck, k, "after rollback")
	}
}

// TestSessionFlipIsItsOwnInverse: flipping the same node twice is a no-op
// on every observable, with or without an interleaved speculative window.
func TestSessionFlipIsItsOwnInverse(t *testing.T) {
	g := gen.GNP(40, 0.2, rng.New(5))
	ck := NewChecker(g)
	set := Greedy(g)
	sess := ck.Begin(set, 1, nil)
	before := sess.CoveredCount()
	for v := 0; v < g.N(); v++ {
		sess.Flip(v)
		sess.Flip(v)
		if got := sess.CoveredCount(); got != before {
			t.Fatalf("double flip of %d moved CoveredCount %d -> %d", v, before, got)
		}
	}
}

// TestSessionDeadMemberContributesNothing pins the alive/member interplay:
// a dead member must not dominate, and membership must survive a
// death/revival round trip.
func TestSessionDeadMemberContributesNothing(t *testing.T) {
	// Path 0-1-2, set {1}: node 1 covers everyone.
	g := gen.Path(3)
	ck := NewChecker(g)
	sess := ck.Begin([]int{1}, 1, nil)
	if !sess.IsKDominating() {
		t.Fatal("center of a path must dominate it")
	}
	sess.SetAlive(1, false)
	if sess.IsKDominating() {
		t.Fatal("a dead dominator still dominates")
	}
	if got := sess.CoveredCount(); got != 0 {
		t.Fatalf("CoveredCount = %d with the only dominator dead, want 0", got)
	}
	if !sess.Contains(1) {
		t.Fatal("death must not revoke membership")
	}
	sess.SetAlive(1, true)
	if !sess.IsKDominating() {
		t.Fatal("revival must restore the member's contribution")
	}
}

// TestSessionValidation pins the contract panics: bad k, short alive mask,
// out-of-range nodes, stale rollback epochs.
func TestSessionValidation(t *testing.T) {
	ck := NewChecker(gen.Path(4))
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Begin k=0", func() { ck.Begin(nil, 0, nil) })
	mustPanic("Begin short alive", func() { ck.Begin(nil, 1, make([]bool, 2)) })
	mustPanic("fold-path short alive", func() { ck.IsKDominating(nil, 1, make([]bool, 2)) })
	mustPanic("free-function short alive", func() { IsKDominating(gen.Path(4), nil, 1, make([]bool, 2)) })
	sess := ck.Begin(nil, 1, nil)
	mustPanic("Flip out of range", func() { sess.Flip(4) })
	mustPanic("stale epoch", func() { sess.Rollback(7) })
	m := sess.Mark()
	sess.Flip(0)
	sess.Commit()
	mustPanic("mark stale after Commit", func() { sess.Rollback(m + 1) })
	if !sess.Contains(0) {
		t.Fatal("Commit must keep state, only clear the log")
	}
}

// TestSessionSparseChecker: Begin works on the rowless sparse checker too —
// the session walks adjacency, not packed rows.
func TestSessionSparseChecker(t *testing.T) {
	g := gen.GNP(30, 0.2, rng.New(3))
	ck := newSparseChecker(g)
	set := Greedy(g)
	sess := ck.Begin(set, 1, nil)
	if got, want := sess.IsKDominating(), IsKDominating(g, set, 1, nil); got != want {
		t.Fatalf("sparse session IsKDominating = %v, want %v", got, want)
	}
	sess.Flip(set[0])
	wantSet := sess.AppendMembers(nil)
	if got, want := sess.CoveredCount(), ck.CoveredCount(wantSet, 1, nil); got != want {
		t.Fatalf("sparse session CoveredCount = %d, want %d", got, want)
	}
}

// TestSessionZeroAllocs is the alloc-regression guard of the incremental
// kernel: after the first Begin has grown the buffers, steady-state
// Begin/Flip/SetAlive/Mark/Rollback/queries must allocate nothing.
func TestSessionZeroAllocs(t *testing.T) {
	g := gen.GNP(300, 0.05, rng.New(9))
	ck := NewChecker(g)
	set := Greedy(g)
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = v%7 != 0
	}
	undom := make([]int, 0, g.N())
	members := make([]int, 0, g.N())
	sess := ck.Begin(set, 2, alive) // warm up: grows the session buffers
	v := set[len(set)/2]
	// Warm the undo log to its steady-state capacity.
	m := sess.Mark()
	for i := 0; i < 64; i++ {
		sess.Flip(i % g.N())
	}
	sess.Rollback(m)

	checks := map[string]func(){
		"Begin": func() { sess = ck.Begin(set, 2, alive) },
		"Flip+queries": func() {
			sess.Flip(v)
			_ = sess.IsKDominating()
			_ = sess.CoveredCount()
			sess.Flip(v)
			sess.Commit() // the non-speculative steady state keeps the log flat
		},
		"SetAlive": func() {
			sess.SetAlive(v, false)
			sess.SetAlive(v, true)
		},
		"speculate+rollback": func() {
			mk := sess.Mark()
			sess.Flip(v)
			sess.SetAlive((v + 1) % g.N(), false)
			sess.Rollback(mk)
		},
		"AppendUndominated": func() { undom = sess.AppendUndominated(undom[:0]) },
		"AppendMembers":     func() { members = sess.AppendMembers(members[:0]) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", name, allocs)
		}
	}
}

// TestCheckerAliveLengthValidation pins the satellite fix: a wrong-length
// alive mask must fail with the domset panic, not a bare out-of-range.
func TestCheckerAliveLengthValidation(t *testing.T) {
	for name, ck := range map[string]*Checker{
		"dense":  NewChecker(gen.Path(5)),
		"sparse": newSparseChecker(gen.Path(5)),
	} {
		for _, bad := range [][]bool{make([]bool, 4), make([]bool, 6)} {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s: alive len %d did not panic", name, len(bad))
					}
					if msg, ok := r.(string); !ok || len(msg) < 6 || msg[:6] != "domset" {
						t.Fatalf("%s: panic %v is not the domset contract message", name, r)
					}
				}()
				ck.CoveredCount([]int{0}, 1, bad)
			}()
		}
		// nil stays "all alive".
		if !ck.IsKDominating([]int{0, 1, 2, 3, 4}, 1, nil) {
			t.Fatalf("%s: nil alive mask rejected", name)
		}
	}
}
