package domset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// FractionalLocal computes a feasible fractional dominating set with purely
// local, constant-round information, in the spirit of the LP-relaxation
// approach of Kuhn & Wattenhofer's constant-time dominating set
// approximation (the paper's reference on the approximation/communication
// trade-off): node v takes
//
//	x_v = max_{u ∈ N+[v]} 1/(δ_u + 1),
//
// which each node computes after a single exchange of degrees. Feasibility:
// for any node v and every u ∈ N+[v], v ∈ N+[u], so x_u ≥ 1/(δ_v+1), and
// summing over the δ_v+1 members of N+[v] gives Σ x_u ≥ 1. On near-regular
// graphs the total weight is close to n/(δ+1), i.e. near the LP optimum.
func FractionalLocal(g *graph.Graph) []float64 {
	n := g.N()
	x := make([]float64, n)
	for v := 0; v < n; v++ {
		best := 1.0 / float64(g.Degree(v)+1)
		for _, u := range g.Neighbors(v) {
			if w := 1.0 / float64(g.Degree(int(u))+1); w > best {
				best = w
			}
		}
		x[v] = best
	}
	return x
}

// IsFractionalDominating reports whether x is a feasible fractional
// dominating set: Σ_{u ∈ N+[v]} x_u ≥ 1 − eps for every node.
func IsFractionalDominating(g *graph.Graph, x []float64) bool {
	if len(x) != g.N() {
		return false
	}
	const eps = 1e-9
	for v := 0; v < g.N(); v++ {
		sum := x[v]
		for _, u := range g.Neighbors(v) {
			sum += x[u]
		}
		if sum < 1-eps {
			return false
		}
	}
	return true
}

// RoundFractional converts a feasible fractional dominating set into an
// integral one by randomized rounding with an O(log Δ) inflation plus local
// repair: node v joins with probability min(1, x_v·ln(Δ+1)·boost); any node
// left uncovered afterwards self-joins. The expected size is
// O(log Δ · Σx + n/Δ^{boost−1}-ish); boost ≤ 0 means 2. The result is always
// a dominating set.
func RoundFractional(g *graph.Graph, x []float64, boost float64, src *rng.Source) []int {
	if len(x) != g.N() {
		panic(fmt.Sprintf("domset: %d weights for %d nodes", len(x), g.N()))
	}
	if boost <= 0 {
		boost = 2
	}
	n := g.N()
	factor := boost * math.Log(float64(g.MaxDegree()+2))
	in := make([]bool, n)
	for v := 0; v < n; v++ {
		p := x[v] * factor
		if p >= 1 || src.Float64() < p {
			in[v] = true
		}
	}
	// Repair: uncovered nodes self-join (purely local decision).
	for v := 0; v < n; v++ {
		covered := in[v]
		if !covered {
			for _, u := range g.Neighbors(v) {
				if in[u] {
					covered = true
					break
				}
			}
		}
		if !covered {
			in[v] = true
		}
	}
	var set []int
	for v, ok := range in {
		if ok {
			set = append(set, v)
		}
	}
	sort.Ints(set)
	return set
}

// LPRoundedDS runs the full constant-round pipeline: local fractional
// solution, randomized rounding, local repair. Two message exchanges worth
// of information (degrees, then join announcements) — the same budget as
// the paper's Algorithm 2.
func LPRoundedDS(g *graph.Graph, src *rng.Source) []int {
	return RoundFractional(g, FractionalLocal(g), 2, src)
}
