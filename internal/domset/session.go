package domset

import (
	"fmt"

	"repro/internal/bitset"
)

// Session is the incremental half of the domination kernel. A Checker
// answers each query by re-folding every candidate row — O(n·Δ/64) words
// per call, paid in full even when the caller changed a single node since
// the last query. A Session pays that fold once, in Begin, and from then on
// maintains the kernel state — exact per-node dominator counters, the alive
// mask, and the undominated set — under single-node deltas in O(deg(v))
// words per Flip/SetAlive, with O(1) coverage queries.
//
// This is the shape of every hot single-delta caller: heal's recruit loop
// (enlist one node, recheck), reconfig's slot-by-slot verification
// (consecutive phases differ in a few members), and local-search refiners
// (speculatively drop one dominator, test, undo). For the speculative case
// the Session keeps an undo log: Mark returns an epoch, Rollback(epoch)
// rewinds every Flip/SetAlive applied since, restoring counters, masks, and
// the undominated set exactly.
//
// Invariants maintained after every operation, matching the fold path's
// contract bit for bit:
//
//	counts[v] = |N+[v] ∩ members ∩ alive|     (exact, not saturated)
//	undom     = { v : alive[v] && counts[v] < k }
//	IsKDominating() == Checker.IsKDominating(members, k, alive)
//
// Dead members contribute nothing (a dead dominator dominates no one);
// dead nodes need no coverage. Duplicate members in Begin's set collapse.
//
// A Checker owns one Session: Begin resets and returns it, so steady-state
// reuse allocates nothing (the property tests pin this). Beginning a new
// session invalidates the previous one. Fold-path Checker queries may be
// interleaved with an active session — they use disjoint scratch — but like
// the Checker itself a Session is not safe for concurrent use.
type Session struct {
	c *Checker
	k int

	counts []int32     // exact dominator count per node
	member *bitset.Set // declared membership (kept even for dead members)
	alive  *bitset.Set // alive mask snapshot, maintained by SetAlive
	undom  *bitset.Set // alive nodes with counts < k
	undomN int
	aliveN int

	log []sessOp // undo log; Mark/Rollback index into it
}

// sessOp is one undoable mutation. Both kinds are self-inverse toggles, so
// rollback replays them in reverse.
type sessOp struct {
	v    int32
	kind uint8
}

const (
	opFlip  uint8 = iota // membership toggle of v
	opAlive              // alive toggle of v
)

// Begin starts (or restarts) an incremental session over the candidate set
// with tolerance k and the given alive mask (nil = all alive). It pays one
// O(Σ deg) batch fold; every subsequent Flip/SetAlive is O(deg(v)) and every
// coverage query O(1). k must be >= 1 — the k = 0 "vacuously dominated"
// convention of the one-shot queries has no meaningful incremental state.
// alive, when non-nil, must hold exactly one flag per node.
func (c *Checker) Begin(set []int, k int, alive []bool) *Session {
	if k < 1 {
		panic(fmt.Sprintf("domset: session tolerance k = %d must be >= 1", k))
	}
	c.checkAlive(alive)
	s := c.session
	if s == nil {
		s = &Session{
			c:      c,
			counts: make([]int32, c.n),
			member: bitset.New(c.n),
			alive:  bitset.New(c.n),
			undom:  bitset.New(c.n),
		}
		c.session = s
	}
	s.k = k
	s.log = s.log[:0]
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.member.Reset()
	s.undom.Reset()

	if alive == nil {
		s.alive.CopyFrom(c.full)
		s.aliveN = c.n
	} else {
		s.alive.Reset()
		s.aliveN = 0
		words := s.alive.Words()
		for v, a := range alive {
			if a {
				words[v>>6] |= 1 << uint(v&63)
				s.aliveN++
			}
		}
	}

	// Batch fold: one pass of counter bumps per alive member's closed
	// neighborhood, then one linear sweep to derive the undominated set.
	for _, v := range set {
		c.checkNode(v)
		if s.member.Test(v) {
			continue // duplicate member collapses
		}
		s.member.Set(v)
		if s.alive.Test(v) {
			s.counts[v]++
			for _, u := range c.g.Neighbors(v) {
				s.counts[u]++
			}
		}
	}
	s.undomN = 0
	aw := s.alive.Words()
	uw := s.undom.Words()
	kk := int32(k)
	for v := 0; v < c.n; v++ {
		if aw[v>>6]&(1<<uint(v&63)) != 0 && s.counts[v] < kk {
			uw[v>>6] |= 1 << uint(v&63)
			s.undomN++
		}
	}
	return s
}

// K returns the session's domination tolerance.
func (s *Session) K() int { return s.k }

// Contains reports whether v is currently a member of the candidate set.
func (s *Session) Contains(v int) bool { return s.member.Test(v) }

// IsAlive reports whether v is currently alive in the session's mask.
func (s *Session) IsAlive(v int) bool { return s.alive.Test(v) }

// Dominators returns v's exact current dominator count
// |N+[v] ∩ members ∩ alive|.
func (s *Session) Dominators(v int) int {
	s.c.checkNode(v)
	return int(s.counts[v])
}

// AliveCount returns the number of alive nodes. O(1).
func (s *Session) AliveCount() int { return s.aliveN }

// IsKDominating reports whether every alive node has at least k alive
// dominators in the current set. O(1).
func (s *Session) IsKDominating() bool { return s.undomN == 0 }

// CoveredCount returns how many alive nodes have at least k alive
// dominators in the current set. O(1).
func (s *Session) CoveredCount() int { return s.aliveN - s.undomN }

// UndominatedCount returns how many alive nodes are under-covered. O(1).
func (s *Session) UndominatedCount() int { return s.undomN }

// AppendUndominated appends the sorted alive under-covered nodes to dst and
// returns the extended slice; with a pre-grown dst it allocates nothing.
func (s *Session) AppendUndominated(dst []int) []int { return s.undom.AppendBits(dst) }

// AppendMembers appends the sorted current candidate set to dst and returns
// the extended slice — the way a refiner extracts its pruned set.
func (s *Session) AppendMembers(dst []int) []int { return s.member.AppendBits(dst) }

// Flip toggles v's membership in the candidate set and updates the kernel
// state in O(deg(v)) words. The mutation is logged: a later Rollback past
// this point restores it (Flip is its own inverse, so flipping twice is
// also an undo).
func (s *Session) Flip(v int) {
	s.c.checkNode(v)
	s.log = append(s.log, sessOp{v: int32(v), kind: opFlip})
	s.applyFlip(v)
}

// SetAlive sets v's alive flag. A node dying withdraws its dominator
// contribution (if a member) and leaves the undominated set (the dead need
// no coverage); a node reviving does the reverse. No-op when the flag
// already matches — only real toggles are logged.
func (s *Session) SetAlive(v int, up bool) {
	s.c.checkNode(v)
	if s.alive.Test(v) == up {
		return
	}
	s.log = append(s.log, sessOp{v: int32(v), kind: opAlive})
	s.applyAlive(v)
}

// Mark returns the current undo epoch. Pass it to Rollback to rewind every
// mutation applied since — the speculative-move primitive.
func (s *Session) Mark() int { return len(s.log) }

// Commit declares the current state the new baseline: it clears the undo
// log without touching the kernel state, making all outstanding marks
// stale. Long-running non-speculative callers (a simulator streaming slot
// deltas, a refiner that kept a move) call this so the log stays bounded
// instead of growing with every Flip for the lifetime of the session.
func (s *Session) Commit() { s.log = s.log[:0] }

// Rollback rewinds the session to the state at Mark() == mark, undoing the
// logged mutations in reverse order. Rolling back to a stale mark (after a
// later Rollback already passed it) panics.
func (s *Session) Rollback(mark int) {
	if mark < 0 || mark > len(s.log) {
		panic(fmt.Sprintf("domset: rollback to epoch %d outside log [0, %d]", mark, len(s.log)))
	}
	for i := len(s.log) - 1; i >= mark; i-- {
		op := s.log[i]
		switch op.kind {
		case opFlip:
			s.applyFlip(int(op.v))
		default:
			s.applyAlive(int(op.v))
		}
	}
	s.log = s.log[:mark]
}

// applyFlip is the unlogged membership toggle.
func (s *Session) applyFlip(v int) {
	nowMember := s.member.Toggle(v)
	if !s.alive.Test(v) {
		return // dead members contribute nothing; counters untouched
	}
	if nowMember {
		s.contribute(v, 1)
	} else {
		s.contribute(v, -1)
	}
}

// applyAlive is the unlogged alive toggle.
func (s *Session) applyAlive(v int) {
	if s.alive.Test(v) {
		// Dying: withdraw the contribution while v still counts as alive
		// (contribute's threshold updates skip dead nodes), then drop v from
		// the covered universe.
		if s.member.Test(v) {
			s.contribute(v, -1)
		}
		s.alive.Clear(v)
		s.aliveN--
		if s.undom.Test(v) {
			s.undom.Clear(v)
			s.undomN--
		}
		return
	}
	// Reviving: v rejoins the covered universe with its current count, then
	// its own membership contribution (if any) is restored.
	s.alive.Set(v)
	s.aliveN++
	if s.counts[v] < int32(s.k) {
		s.undom.Set(v)
		s.undomN++
	}
	if s.member.Test(v) {
		s.contribute(v, 1)
	}
}

// contribute applies d (±1) to the dominator count of every node in v's
// closed neighborhood, maintaining the undominated set across the k
// threshold for alive nodes. O(deg(v)) words. The alive/undom words are
// hoisted out of the per-neighbor work so the inner bump is branch-light —
// this loop IS the cost of a Flip, and the bench pins its speedup over the
// fold path.
func (s *Session) contribute(v int, d int32) {
	kk := int32(s.k)
	aw := s.alive.Words()
	uw := s.undom.Words()
	s.bump(v, d, kk, aw, uw)
	for _, u := range s.c.g.Neighbors(v) {
		s.bump(int(u), d, kk, aw, uw)
	}
}

func (s *Session) bump(u int, d, k int32, aw, uw []uint64) {
	c := s.counts[u] + d
	s.counts[u] = c
	w, bit := u>>6, uint64(1)<<uint(u&63)
	if aw[w]&bit == 0 {
		return // dead nodes need no coverage bookkeeping
	}
	if d > 0 {
		if c == k { // crossed up: now covered
			uw[w] &^= bit
			s.undomN--
		}
	} else if c == k-1 { // crossed down: now under-covered
		uw[w] |= bit
		s.undomN++
	}
}
