package domset

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// naiveDominatorCount is the straight-line reference the Checker is verified
// against: |N+[v] ∩ set ∩ alive| with duplicates collapsed.
func naiveDominatorCount(g *graph.Graph, set []int, alive []bool, v int) int {
	in := make(map[int]bool)
	for _, s := range set {
		if alive == nil || alive[s] {
			in[s] = true
		}
	}
	count := 0
	if in[v] {
		count++
	}
	for _, u := range g.Neighbors(v) {
		if in[int(u)] {
			count++
		}
	}
	return count
}

func naiveUndominated(g *graph.Graph, set []int, k int, alive []bool) []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if alive != nil && !alive[v] {
			continue
		}
		if naiveDominatorCount(g, set, alive, v) < k {
			out = append(out, v)
		}
	}
	return out
}

func naiveDeficit(g *graph.Graph, set []int, k int, alive []bool) int {
	total := 0
	for v := 0; v < g.N(); v++ {
		if alive != nil && !alive[v] {
			continue
		}
		if d := naiveDominatorCount(g, set, alive, v); d < k {
			total += k - d
		}
	}
	return total
}

// TestCheckerMatchesNaive cross-checks the dense kernel, the sparse kernel
// (via the free functions), and a naive reference on random graphs with
// random candidate sets, duplicate members, dead nodes, and k in 1..4.
func TestCheckerMatchesNaive(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		n := 1 + src.Intn(90)
		g := gen.GNP(n, 0.15, src)
		ck := NewChecker(g)
		for rep := 0; rep < 4; rep++ {
			var set []int
			for v := 0; v < n; v++ {
				if src.Intn(3) == 0 {
					set = append(set, v)
				}
			}
			if len(set) > 0 {
				set = append(set, set[0]) // duplicate member must collapse
			}
			var alive []bool
			if src.Intn(2) == 0 {
				alive = make([]bool, n)
				for v := range alive {
					alive[v] = src.Intn(5) != 0
				}
			}
			for k := 1; k <= 4; k++ {
				wantUndom := naiveUndominated(g, set, k, alive)
				wantDom := len(wantUndom) == 0
				wantDef := naiveDeficit(g, set, k, alive)

				if got := ck.IsKDominating(set, k, alive); got != wantDom {
					t.Fatalf("n=%d k=%d: dense IsKDominating = %v, want %v", n, k, got, wantDom)
				}
				if got := IsKDominating(g, set, k, alive); got != wantDom {
					t.Fatalf("n=%d k=%d: sparse IsKDominating = %v, want %v", n, k, got, wantDom)
				}
				aliveN := n
				if alive != nil {
					aliveN = 0
					for _, a := range alive {
						if a {
							aliveN++
						}
					}
				}
				if got := ck.CoveredCount(set, k, alive); got != aliveN-len(wantUndom) {
					t.Fatalf("n=%d k=%d: CoveredCount = %d, want %d", n, k, got, aliveN-len(wantUndom))
				}
				if got := ck.DominatorDeficit(set, k, alive); got != wantDef {
					t.Fatalf("n=%d k=%d: DominatorDeficit = %d, want %d", n, k, got, wantDef)
				}
				got := ck.AppendUndominated(nil, set, k, alive)
				if len(got) != len(wantUndom) {
					t.Fatalf("n=%d k=%d: undominated %v, want %v", n, k, got, wantUndom)
				}
				for i := range got {
					if got[i] != wantUndom[i] {
						t.Fatalf("n=%d k=%d: undominated %v, want %v", n, k, got, wantUndom)
					}
				}
				if free := UndominatedNodes(g, set, k, alive); len(free) != len(wantUndom) {
					t.Fatalf("n=%d k=%d: free UndominatedNodes %v, want %v", n, k, free, wantUndom)
				}
			}
		}
	}
}

func TestCheckerKBelowOne(t *testing.T) {
	g := gen.Path(4)
	ck := NewChecker(g)
	if !ck.IsKDominating(nil, 0, nil) {
		t.Fatal("k=0 must be vacuously dominated (free-function contract)")
	}
	if got := ck.CoveredCount(nil, 0, nil); got != 4 {
		t.Fatalf("k=0 CoveredCount = %d, want 4", got)
	}
	if got := ck.DominatorDeficit(nil, 0, nil); got != 0 {
		t.Fatalf("k=0 deficit = %d, want 0", got)
	}
}

func TestCheckerEmptyGraph(t *testing.T) {
	ck := NewChecker(graph.New(0))
	if !ck.IsKDominating(nil, 1, nil) {
		t.Fatal("empty graph must be vacuously dominated")
	}
	if ck.CoveredCount(nil, 1, nil) != 0 {
		t.Fatal("empty graph covered count must be 0")
	}
}

func TestCheckerPanicsOutOfRange(t *testing.T) {
	ck := NewChecker(gen.Path(3))
	for _, set := range [][]int{{3}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("set %v did not panic", set)
				}
			}()
			ck.IsKDominating(set, 1, nil)
		}()
	}
}

// TestCheckerZeroAllocs is the allocation-regression guard of the kernel:
// after one warm-up call per k (which may grow the level buffers), every
// steady-state query must allocate nothing.
func TestCheckerZeroAllocs(t *testing.T) {
	g := gen.GNP(300, 0.05, rng.New(9))
	ck := NewChecker(g)
	set := Greedy(g)
	if set == nil {
		t.Fatal("greedy failed")
	}
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = v%7 != 0
	}
	undom := make([]int, 0, g.N())
	for _, k := range []int{1, 3} {
		// Warm up: grows ck.levels to k.
		ck.IsKDominating(set, k, alive)
		checks := map[string]func(){
			"IsKDominating":     func() { ck.IsKDominating(set, k, alive) },
			"CoveredCount":      func() { ck.CoveredCount(set, k, alive) },
			"DominatorDeficit":  func() { ck.DominatorDeficit(set, k, alive) },
			"AppendUndominated": func() { undom = ck.AppendUndominated(undom[:0], set, k, alive) },
		}
		for name, fn := range checks {
			if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
				t.Errorf("k=%d: %s allocates %.1f per call, want 0", k, name, allocs)
			}
		}
	}
}

func benchCheckerGraph(n int) (*graph.Graph, []int) {
	p := 10 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	g := gen.GNP(n, p, rng.New(uint64(n)))
	return g, Greedy(g)
}

func BenchmarkCheckerCoveredCount(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		g, set := benchCheckerGraph(n)
		ck := NewChecker(g)
		alive := make([]bool, n)
		for v := range alive {
			alive[v] = true
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ck.CoveredCount(set, 1, alive)
			}
		})
	}
}

func BenchmarkCheckerIsKDominating(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		g, set := benchCheckerGraph(n)
		ck := NewChecker(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ck.IsKDominating(set, 1, nil)
			}
		})
	}
}

func BenchmarkCheckerAppendUndominated(b *testing.B) {
	g, set := benchCheckerGraph(1024)
	ck := NewChecker(g)
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = v%5 != 0
	}
	buf := make([]int, 0, g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = ck.AppendUndominated(buf[:0], set, 2, alive)
	}
}
