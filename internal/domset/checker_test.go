package domset

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// naiveDominatorCount is the straight-line reference the Checker is verified
// against: |N+[v] ∩ set ∩ alive| with duplicates collapsed.
func naiveDominatorCount(g *graph.Graph, set []int, alive []bool, v int) int {
	in := make(map[int]bool)
	for _, s := range set {
		if alive == nil || alive[s] {
			in[s] = true
		}
	}
	count := 0
	if in[v] {
		count++
	}
	for _, u := range g.Neighbors(v) {
		if in[int(u)] {
			count++
		}
	}
	return count
}

func naiveUndominated(g *graph.Graph, set []int, k int, alive []bool) []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if alive != nil && !alive[v] {
			continue
		}
		if naiveDominatorCount(g, set, alive, v) < k {
			out = append(out, v)
		}
	}
	return out
}

func naiveDeficit(g *graph.Graph, set []int, k int, alive []bool) int {
	total := 0
	for v := 0; v < g.N(); v++ {
		if alive != nil && !alive[v] {
			continue
		}
		if d := naiveDominatorCount(g, set, alive, v); d < k {
			total += k - d
		}
	}
	return total
}

// TestCheckerMatchesNaive cross-checks the dense kernel, the sparse kernel
// (via the free functions), and a naive reference on random graphs with
// random candidate sets, duplicate members, dead nodes, and k in 1..4.
func TestCheckerMatchesNaive(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		n := 1 + src.Intn(90)
		g := gen.GNP(n, 0.15, src)
		ck := NewChecker(g)
		for rep := 0; rep < 4; rep++ {
			var set []int
			for v := 0; v < n; v++ {
				if src.Intn(3) == 0 {
					set = append(set, v)
				}
			}
			if len(set) > 0 {
				set = append(set, set[0]) // duplicate member must collapse
			}
			var alive []bool
			if src.Intn(2) == 0 {
				alive = make([]bool, n)
				for v := range alive {
					alive[v] = src.Intn(5) != 0
				}
			}
			for k := 1; k <= 4; k++ {
				wantUndom := naiveUndominated(g, set, k, alive)
				wantDom := len(wantUndom) == 0
				wantDef := naiveDeficit(g, set, k, alive)

				if got := ck.IsKDominating(set, k, alive); got != wantDom {
					t.Fatalf("n=%d k=%d: dense IsKDominating = %v, want %v", n, k, got, wantDom)
				}
				if got := IsKDominating(g, set, k, alive); got != wantDom {
					t.Fatalf("n=%d k=%d: sparse IsKDominating = %v, want %v", n, k, got, wantDom)
				}
				aliveN := n
				if alive != nil {
					aliveN = 0
					for _, a := range alive {
						if a {
							aliveN++
						}
					}
				}
				if got := ck.CoveredCount(set, k, alive); got != aliveN-len(wantUndom) {
					t.Fatalf("n=%d k=%d: CoveredCount = %d, want %d", n, k, got, aliveN-len(wantUndom))
				}
				if got := ck.DominatorDeficit(set, k, alive); got != wantDef {
					t.Fatalf("n=%d k=%d: DominatorDeficit = %d, want %d", n, k, got, wantDef)
				}
				got := ck.AppendUndominated(nil, set, k, alive)
				if len(got) != len(wantUndom) {
					t.Fatalf("n=%d k=%d: undominated %v, want %v", n, k, got, wantUndom)
				}
				for i := range got {
					if got[i] != wantUndom[i] {
						t.Fatalf("n=%d k=%d: undominated %v, want %v", n, k, got, wantUndom)
					}
				}
				if free := UndominatedNodes(g, set, k, alive); len(free) != len(wantUndom) {
					t.Fatalf("n=%d k=%d: free UndominatedNodes %v, want %v", n, k, free, wantUndom)
				}
			}
		}
	}
}

func TestCheckerKBelowOne(t *testing.T) {
	g := gen.Path(4)
	ck := NewChecker(g)
	if !ck.IsKDominating(nil, 0, nil) {
		t.Fatal("k=0 must be vacuously dominated (free-function contract)")
	}
	if got := ck.CoveredCount(nil, 0, nil); got != 4 {
		t.Fatalf("k=0 CoveredCount = %d, want 4", got)
	}
	if got := ck.DominatorDeficit(nil, 0, nil); got != 0 {
		t.Fatalf("k=0 deficit = %d, want 0", got)
	}
}

func TestCheckerEmptyGraph(t *testing.T) {
	ck := NewChecker(graph.New(0))
	if !ck.IsKDominating(nil, 1, nil) {
		t.Fatal("empty graph must be vacuously dominated")
	}
	if ck.CoveredCount(nil, 1, nil) != 0 {
		t.Fatal("empty graph covered count must be 0")
	}
}

func TestCheckerPanicsOutOfRange(t *testing.T) {
	ck := NewChecker(gen.Path(3))
	for _, set := range [][]int{{3}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("set %v did not panic", set)
				}
			}()
			ck.IsKDominating(set, 1, nil)
		}()
	}
}

// TestCheckerZeroAllocs is the allocation-regression guard of the kernel:
// after one warm-up call per k (which may grow the level buffers), every
// steady-state query must allocate nothing.
func TestCheckerZeroAllocs(t *testing.T) {
	g := gen.GNP(300, 0.05, rng.New(9))
	ck := NewChecker(g)
	set := Greedy(g)
	if set == nil {
		t.Fatal("greedy failed")
	}
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = v%7 != 0
	}
	undom := make([]int, 0, g.N())
	for _, k := range []int{1, 3} {
		// Warm up: grows ck.levels to k.
		ck.IsKDominating(set, k, alive)
		checks := map[string]func(){
			"IsKDominating":     func() { ck.IsKDominating(set, k, alive) },
			"CoveredCount":      func() { ck.CoveredCount(set, k, alive) },
			"DominatorDeficit":  func() { ck.DominatorDeficit(set, k, alive) },
			"AppendUndominated": func() { undom = ck.AppendUndominated(undom[:0], set, k, alive) },
		}
		for name, fn := range checks {
			if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
				t.Errorf("k=%d: %s allocates %.1f per call, want 0", k, name, allocs)
			}
		}
	}
}

// TestCheckerParallelFoldMatchesSequential pins the parallel batch fold to
// the sequential one bit for bit: a pooled checker and a plain checker must
// agree on every query, every k, with duplicates, dead nodes, and candidate
// sets on both sides of the parFoldMinWork threshold.
func TestCheckerParallelFoldMatchesSequential(t *testing.T) {
	pool := par.NewPool(4, 16)
	defer pool.Close()
	src := rng.New(11)
	for _, n := range []int{64, 1500, 2048} {
		g := gen.GNP(n, 6.0/float64(n), src)
		seq := NewChecker(g)
		parCk := NewChecker(g)
		parCk.SetPool(pool)
		undomSeq := make([]int, 0, n)
		undomPar := make([]int, 0, n)
		for rep := 0; rep < 6; rep++ {
			var set []int
			for v := 0; v < n; v++ {
				if src.Intn(2) == 0 {
					set = append(set, v)
				}
			}
			if len(set) > 0 {
				set = append(set, set[len(set)/2]) // duplicate must collapse
			}
			var alive []bool
			if rep%2 == 1 {
				alive = make([]bool, n)
				for v := range alive {
					alive[v] = src.Intn(6) != 0
				}
			}
			for k := 1; k <= 3; k++ {
				if got, want := parCk.IsKDominating(set, k, alive), seq.IsKDominating(set, k, alive); got != want {
					t.Fatalf("n=%d k=%d: parallel IsKDominating = %v, sequential %v", n, k, got, want)
				}
				if got, want := parCk.CoveredCount(set, k, alive), seq.CoveredCount(set, k, alive); got != want {
					t.Fatalf("n=%d k=%d: parallel CoveredCount = %d, sequential %d", n, k, got, want)
				}
				if got, want := parCk.DominatorDeficit(set, k, alive), seq.DominatorDeficit(set, k, alive); got != want {
					t.Fatalf("n=%d k=%d: parallel DominatorDeficit = %d, sequential %d", n, k, got, want)
				}
				undomSeq = seq.AppendUndominated(undomSeq[:0], set, k, alive)
				undomPar = parCk.AppendUndominated(undomPar[:0], set, k, alive)
				if len(undomSeq) != len(undomPar) {
					t.Fatalf("n=%d k=%d: parallel undominated %d nodes, sequential %d", n, k, len(undomPar), len(undomSeq))
				}
				for i := range undomSeq {
					if undomSeq[i] != undomPar[i] {
						t.Fatalf("n=%d k=%d: parallel undominated[%d] = %d, sequential %d", n, k, i, undomPar[i], undomSeq[i])
					}
				}
			}
		}
	}
}

// TestCheckerParallelFoldZeroAllocs extends the allocation guard to the
// pooled fold: dispatch reuses prebuilt chunk tasks, so a steady-state
// parallel query must allocate nothing on any goroutine.
func TestCheckerParallelFoldZeroAllocs(t *testing.T) {
	pool := par.NewPool(4, 16)
	defer pool.Close()
	n := 2048
	g := gen.GNP(n, 6.0/float64(n), rng.New(13))
	ck := NewChecker(g)
	ck.SetPool(pool)
	var set []int
	for v := 0; v < n; v += 2 {
		set = append(set, v)
	}
	if len(set)*((n+63)/64) < parFoldMinWork {
		t.Fatalf("test set too small to engage the parallel fold")
	}
	for _, k := range []int{1, 3} {
		ck.IsKDominating(set, k, nil) // warm up: grows ck.levels to k
		if allocs := testing.AllocsPerRun(100, func() { ck.IsKDominating(set, k, nil) }); allocs != 0 {
			t.Errorf("k=%d: parallel IsKDominating allocates %.1f per call, want 0", k, allocs)
		}
	}
}

func benchCheckerGraph(n int) (*graph.Graph, []int) {
	p := 10 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	g := gen.GNP(n, p, rng.New(uint64(n)))
	return g, Greedy(g)
}

func BenchmarkCheckerCoveredCount(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		g, set := benchCheckerGraph(n)
		ck := NewChecker(g)
		alive := make([]bool, n)
		for v := range alive {
			alive[v] = true
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ck.CoveredCount(set, 1, alive)
			}
		})
	}
}

func BenchmarkCheckerIsKDominating(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		g, set := benchCheckerGraph(n)
		ck := NewChecker(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ck.IsKDominating(set, 1, nil)
			}
		})
	}
}

// BenchmarkCheckerFoldParallel compares the sequential batch fold against
// the pooled word-chunk fold on the large kernel case; the parallel variant
// must stay allocation-free (the prebuilt-task contract).
func BenchmarkCheckerFoldParallel(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		g, set := benchCheckerGraph(n)
		for _, workers := range []int{0, 2, 4, 8} {
			ck := NewChecker(g)
			name := fmt.Sprintf("n=%d/seq", n)
			if workers > 0 {
				pool := par.NewPool(workers, 2*workers)
				defer pool.Close()
				ck.SetPool(pool)
				name = fmt.Sprintf("n=%d/workers=%d", n, workers)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ck.CoveredCount(set, 3, nil)
				}
			})
		}
	}
}

func BenchmarkCheckerAppendUndominated(b *testing.B) {
	g, set := benchCheckerGraph(1024)
	ck := NewChecker(g)
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = v%5 != 0
	}
	buf := make([]int, 0, g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = ck.AppendUndominated(buf[:0], set, 2, alive)
	}
}
