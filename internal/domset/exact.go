package domset

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// MinimumExact returns a minimum-cardinality dominating set of g restricted
// to allowed nodes dominating alive nodes (nil means all). It uses
// branch-and-bound on the lowest-ID undominated node: one of the allowed
// members of its closed neighborhood must be in any dominating set, so the
// branching factor is at most Δ+1. Exponential in the worst case — intended
// for the small instances of the exact experiments (n ≲ 60 sparse). Returns
// nil if no allowed dominating set exists.
func MinimumExact(g *graph.Graph, allowed, alive []bool) []int {
	n := g.N()
	mustDominate := make([]bool, n)
	for v := 0; v < n; v++ {
		mustDominate[v] = alive == nil || alive[v]
	}
	mayUse := func(v int) bool { return allowed == nil || allowed[v] }

	// domCount[v] = how many chosen nodes dominate v.
	domCount := make([]int, n)
	inSet := make([]bool, n)
	var best []int
	var current []int

	// feasibility: every must-dominate node needs an allowed closed neighbor.
	for v := 0; v < n; v++ {
		if !mustDominate[v] {
			continue
		}
		ok := mayUse(v)
		if !ok {
			for _, u := range g.Neighbors(v) {
				if mayUse(int(u)) {
					ok = true
					break
				}
			}
		}
		if !ok {
			return nil
		}
	}

	add := func(v int) {
		inSet[v] = true
		current = append(current, v)
		domCount[v]++
		for _, u := range g.Neighbors(v) {
			domCount[u]++
		}
	}
	remove := func(v int) {
		inSet[v] = false
		current = current[:len(current)-1]
		domCount[v]--
		for _, u := range g.Neighbors(v) {
			domCount[u]--
		}
	}

	var rec func()
	rec = func() {
		if best != nil && len(current) >= len(best) {
			return
		}
		// Find the lowest undominated must-dominate node.
		target := -1
		for v := 0; v < n; v++ {
			if mustDominate[v] && domCount[v] == 0 {
				target = v
				break
			}
		}
		if target == -1 {
			best = append([]int(nil), current...)
			return
		}
		// Branch over allowed dominators of target.
		if mayUse(target) && !inSet[target] {
			add(target)
			rec()
			remove(target)
		}
		for _, u := range g.Neighbors(target) {
			v := int(u)
			if mayUse(v) && !inSet[v] {
				add(v)
				rec()
				remove(v)
			}
		}
	}
	rec()
	if best != nil {
		sort.Ints(best)
	}
	return best
}

// MinimumWeightExact returns a k-dominating set of g minimizing the total
// node weight (weights must be non-negative), together with that weight.
// Branch-and-bound on the lowest-ID deficient node; since weights are
// non-negative, any superset of a solution weighs at least as much, so the
// current-weight bound is valid. Exponential; used as the pricing oracle of
// the column-generation LP (package exact). Returns (nil, +Inf) if no
// k-dominating set exists.
func MinimumWeightExact(g *graph.Graph, weights []float64, k int) ([]int, float64) {
	n := g.N()
	if len(weights) != n {
		panic("domset: weight count mismatch")
	}
	if k < 1 {
		panic("domset: k must be >= 1")
	}
	for v := 0; v < n; v++ {
		if weights[v] < 0 {
			panic("domset: negative weight")
		}
		if g.Degree(v)+1 < k {
			return nil, math.Inf(1)
		}
	}

	domCount := make([]int, n)
	inSet := make([]bool, n)
	forbidden := make([]bool, n)
	var current []int
	currentWeight := 0.0
	var best []int
	bestWeight := math.Inf(1)

	var rec func()
	rec = func() {
		if currentWeight >= bestWeight {
			return
		}
		target := -1
		for v := 0; v < n; v++ {
			if domCount[v] < k {
				target = v
				break
			}
		}
		if target == -1 {
			best = append(best[:0:0], current...)
			bestWeight = currentWeight
			return
		}
		// Branch over dominators of target, cheapest first for stronger
		// early incumbents; forbidding tried candidates partitions the
		// solution space so no set is explored twice.
		var cands []int
		if !inSet[target] && !forbidden[target] {
			cands = append(cands, target)
		}
		for _, u := range g.Neighbors(target) {
			if !inSet[u] && !forbidden[u] {
				cands = append(cands, int(u))
			}
		}
		sort.Slice(cands, func(i, j int) bool { return weights[cands[i]] < weights[cands[j]] })
		for _, c := range cands {
			inSet[c] = true
			current = append(current, c)
			currentWeight += weights[c]
			domCount[c]++
			for _, u := range g.Neighbors(c) {
				domCount[u]++
			}
			rec()
			domCount[c]--
			for _, u := range g.Neighbors(c) {
				domCount[u]--
			}
			currentWeight -= weights[c]
			current = current[:len(current)-1]
			inSet[c] = false
			forbidden[c] = true
		}
		for _, c := range cands {
			forbidden[c] = false
		}
	}
	rec()
	if best == nil {
		return nil, math.Inf(1)
	}
	sort.Ints(best)
	return best, bestWeight
}
