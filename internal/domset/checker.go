package domset

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/par"
)

// Checker is the allocation-free domination kernel. It holds word-packed
// closed-neighborhood rows of one graph plus reusable scratch buffers, so
// the per-call coverage decisions that dominate the simulator's hot loops —
// one per slot, per trial, per sweep point — cost zero allocations and run
// as word-wide OR/AND/popcount passes instead of per-node adjacency walks.
//
// The coverage computation is bit-sliced counting: levels[i] is the set of
// nodes with at least i+1 dominators, updated per candidate row with the
// classic carry chain (new carry = level AND row; level OR= row). After all
// candidates are folded in, levels[k-1] is exactly the k-dominated set and
// every query (IsKDominating, CoveredCount, DominatorDeficit, the
// undominated list) is a masked popcount or bit iteration over it.
//
// A Checker is NOT safe for concurrent use: every call rewrites the shared
// scratch. Use one Checker per goroutine (they are cheap relative to the
// executions they serve).
//
// NewChecker precomputes the dense rows in O(n²/64) words of memory —
// 2 MiB for n = 4096 — which is what buys the speed. The free functions of
// this package wrap a rowless sparse checker instead, preserving their old
// one-shot cost profile.
type Checker struct {
	g      *graph.Graph
	n      int
	stride int // words per row

	rows []uint64 // n*stride packed closed neighborhoods; nil in sparse mode

	in     *bitset.Set   // scratch: alive candidate membership (dedup + sparse walk)
	carry  []uint64      // scratch: carry chain of the current row
	levels []*bitset.Set // levels[i]: nodes with >= i+1 dominators; grown on demand
	alive  *bitset.Set   // scratch: packed alive mask
	full   *bitset.Set   // constant: all n bits set

	cands []int // scratch: deduplicated alive candidates of the in-flight fold

	// Parallel-fold state, set by SetPool. chunks holds one descriptor plus
	// one prebuilt pool task per disjoint word range; foldK carries the
	// in-flight fold's k to the workers so dispatch stays allocation-free.
	pool   *par.Pool
	chunks []*foldChunk
	tasks  []func()
	foldK  int
	foldWG sync.WaitGroup

	session *Session // the reusable incremental session; lazily built by Begin
}

// NewChecker returns a dense Checker for g with precomputed packed
// closed-neighborhood rows.
func NewChecker(g *graph.Graph) *Checker {
	c := newSparseChecker(g)
	c.rows = make([]uint64, c.n*c.stride)
	c.carry = make([]uint64, c.stride)
	for v := 0; v < c.n; v++ {
		row := c.rows[v*c.stride : (v+1)*c.stride]
		row[v>>6] |= 1 << uint(v&63)
		for _, u := range g.Neighbors(v) {
			row[u>>6] |= 1 << uint(u&63)
		}
	}
	return c
}

// NewSparseChecker returns a rowless Checker that answers queries by
// walking adjacency lists instead of folding precomputed rows. Sessions
// run entirely on adjacency walks, so a sparse Checker is the right host
// when the caller only wants Begin/Flip incrementality (the grid solver
// keeps five of them) and the O(n²/64) row build plus its memclr would
// dominate the work the checker actually does.
func NewSparseChecker(g *graph.Graph) *Checker { return newSparseChecker(g) }

// newSparseChecker returns a rowless Checker that answers queries by walking
// adjacency lists (the pre-kernel strategy, minus the per-call allocation).
// The free functions of this package use it for one-shot queries where
// building dense rows would cost more than the query itself.
func newSparseChecker(g *graph.Graph) *Checker {
	n := g.N()
	c := &Checker{
		g:      g,
		n:      n,
		stride: bitset.WordsFor(n),
		in:     bitset.New(n),
		alive:  bitset.New(n),
		full:   bitset.New(n),
	}
	c.full.Fill()
	return c
}

// Graph returns the graph the Checker was built for.
func (c *Checker) Graph() *graph.Graph { return c.g }

func (c *Checker) checkNode(v int) {
	if v < 0 || v >= c.n {
		panic(fmt.Sprintf("domset: node %d out of range", v))
	}
}

// checkAlive enforces the alive-mask contract every query shares: nil means
// all nodes alive, and a non-nil mask carries exactly one flag per node. A
// short or long slice used to surface as a bare index-out-of-range somewhere
// inside the fold; now it fails fast with an actionable message.
func (c *Checker) checkAlive(alive []bool) {
	if alive != nil && len(alive) != c.n {
		panic(fmt.Sprintf("domset: %d alive flags for %d nodes", len(alive), c.n))
	}
}

// aliveMask packs alive into the scratch mask and returns it; a nil alive
// means all nodes and returns the precomputed full mask.
func (c *Checker) aliveMask(alive []bool) *bitset.Set {
	if alive == nil {
		return c.full
	}
	c.alive.Reset()
	words := c.alive.Words()
	for v := 0; v < c.n; v++ {
		if alive[v] {
			words[v>>6] |= 1 << uint(v&63)
		}
	}
	return c.alive
}

// parFoldMinWork is the fold size — deduplicated candidates × words per row
// — below which splitting across the pool costs more in handoff than the
// OR/carry passes it saves. Small folds fit in one core's cache and lose to
// the WaitGroup round trip.
const parFoldMinWork = 1 << 13

// foldChunk is one word range [lo, hi) of a parallel fold. state is the
// exactly-once claim: 0 = claimable, 1 = claimed. The dispatcher resets it
// at dispatch time and both the pool task and the dispatcher's steal-back
// loop race to CAS it, so every chunk body runs exactly once no matter
// whether a pool worker ever picks the task up — a fold can never deadlock
// on a busy shared pool, and a stale task left in the queue from an earlier
// fold loses the CAS and degenerates to a no-op.
type foldChunk struct {
	lo, hi int
	state  atomic.Uint32
}

// SetPool attaches a worker pool to the dense batch fold. Folds large enough
// to amortize the handoff (parFoldMinWork) split the row words into one
// contiguous chunk per pool worker; each chunk owns a disjoint word range of
// every level bitset and of the shared carry scratch, so workers never touch
// the same word and the result is bit-for-bit identical to the sequential
// fold. Small folds, k < 1 queries, and the sparse paths stay sequential.
// A nil pool restores the sequential fold.
//
// The pool is borrowed, not owned — Close stays with the caller — and chunks
// no worker picks up are stolen back and run on the calling goroutine, so a
// fold never blocks behind foreign work on a shared pool. As with every
// other Checker path, the pool parallelizes the inside of one call; one
// Checker still serves one goroutine at a time.
func (c *Checker) SetPool(p *par.Pool) {
	c.pool = p
	c.chunks = c.chunks[:0]
	c.tasks = c.tasks[:0]
	if p == nil || c.rows == nil {
		return
	}
	nchunks := p.Workers()
	if nchunks > c.stride {
		nchunks = c.stride
	}
	for i := 0; i < nchunks; i++ {
		ch := &foldChunk{lo: c.stride * i / nchunks, hi: c.stride * (i + 1) / nchunks}
		ch.state.Store(1) // claimable only once a dispatch resets it
		c.chunks = append(c.chunks, ch)
		c.tasks = append(c.tasks, func() { c.runChunk(ch) })
	}
}

// runChunk claims ch and folds its word range; a lost claim means the other
// contender (dispatcher steal-back vs pool worker) owns it, and the claim's
// sequentially consistent CAS orders the fold data prepared before the
// dispatcher's reset ahead of this read even for a stale queued task.
func (c *Checker) runChunk(ch *foldChunk) {
	if !ch.state.CompareAndSwap(0, 1) {
		return
	}
	c.foldRange(ch.lo, ch.hi, c.foldK)
	c.foldWG.Done()
}

// dispatchFold runs the prepared fold (levels reset, c.cands and c.foldK
// set) as one chunk per pool worker. Exactly-once claiming plus the
// steal-back loop make it deadlock-free: if every worker is busy, the
// calling goroutine claims and folds every chunk itself.
func (c *Checker) dispatchFold() {
	c.foldWG.Add(len(c.chunks))
	for i, ch := range c.chunks {
		ch.state.Store(0)
		c.pool.TrySubmit(c.tasks[i]) // rejection is fine: steal-back runs it
	}
	for _, ch := range c.chunks {
		c.runChunk(ch)
	}
	c.foldWG.Wait()
}

// fold computes levels[0..k-1] for the given candidate set: levels[i] ends
// up holding exactly the nodes with at least i+1 alive dominators in their
// closed neighborhood. Duplicate members collapse (a set is a set) and dead
// members are skipped, matching the free functions' contract. Dense mode
// only. With a pool attached (SetPool), large folds run one word-range chunk
// per worker; the result is identical either way.
func (c *Checker) fold(set []int, k int, alive []bool) {
	for len(c.levels) < k {
		c.levels = append(c.levels, bitset.New(c.n))
	}
	for _, lv := range c.levels[:k] {
		lv.Reset()
	}
	c.in.Reset()
	c.cands = c.cands[:0]
	for _, v := range set {
		c.checkNode(v)
		if alive != nil && !alive[v] {
			continue
		}
		if c.in.Test(v) {
			continue
		}
		c.in.Set(v)
		c.cands = append(c.cands, v)
	}
	if len(c.chunks) > 1 && len(c.cands)*c.stride >= parFoldMinWork {
		c.foldK = k
		c.dispatchFold()
		return
	}
	c.foldRange(0, c.stride, k)
}

// foldRange folds every deduplicated candidate (c.cands) into level words
// [lo, hi). Chunks of a parallel fold own disjoint ranges: the carry chain
// is word-local (t = level AND carry; level OR= carry; carry = t), so two
// chunks never read or write the same word of any level or of the shared
// carry scratch, and the per-candidate early exit (no carries pending in
// this range) only skips work that could not have changed the range.
func (c *Checker) foldRange(lo, hi, k int) {
	stride := c.stride
	if k == 1 {
		// Fast path: one OR pass per candidate row.
		lw := c.levels[0].Words()
		for _, v := range c.cands {
			row := c.rows[v*stride : (v+1)*stride]
			for w := lo; w < hi; w++ {
				lw[w] |= row[w]
			}
		}
		return
	}
	carry := c.carry
	for _, v := range c.cands {
		row := c.rows[v*stride : (v+1)*stride]
		copy(carry[lo:hi], row[lo:hi])
		for i := 0; i < k; i++ {
			lw := c.levels[i].Words()
			var pending uint64
			for w := lo; w < hi; w++ {
				t := lw[w] & carry[w]
				lw[w] |= carry[w]
				carry[w] = t
				pending |= t
			}
			if pending == 0 {
				break
			}
		}
	}
}

// fillMembership loads the candidate set into the scratch membership bitset
// (range-checked, alive-filtered, deduplicated). Shared by the sparse paths.
func (c *Checker) fillMembership(set []int, alive []bool) {
	c.in.Reset()
	for _, v := range set {
		c.checkNode(v)
		if alive == nil || alive[v] {
			c.in.Set(v)
		}
	}
}

// dominators returns |N+[v] ∩ set| capped at cap, walking the adjacency
// list with early exit. Sparse mode helper.
func (c *Checker) dominators(v, cap int) int {
	count := 0
	if c.in.Test(v) {
		count++
	}
	if count >= cap {
		return count
	}
	for _, u := range c.g.Neighbors(v) {
		if c.in.Test(int(u)) {
			count++
			if count >= cap {
				break
			}
		}
	}
	return count
}

// IsKDominating reports whether every alive node has at least k alive
// dominators from set in its closed neighborhood. Contract identical to the
// free IsKDominating, with zero allocations in steady state. alive is nil
// (all nodes) or exactly one flag per node.
func (c *Checker) IsKDominating(set []int, k int, alive []bool) bool {
	c.checkAlive(alive)
	if k < 1 {
		// Matches the free function: a demand of zero dominators is always met.
		for _, v := range set {
			c.checkNode(v)
		}
		return true
	}
	if c.rows == nil {
		c.fillMembership(set, alive)
		for v := 0; v < c.n; v++ {
			if alive != nil && !alive[v] {
				continue
			}
			if c.dominators(v, k) < k {
				return false
			}
		}
		return true
	}
	c.fold(set, k, alive)
	return c.aliveMask(alive).SubsetOf(c.levels[k-1])
}

// CoveredCount returns how many alive nodes have at least k alive dominators
// from set in their closed neighborhood. alive is nil (all nodes) or
// exactly one flag per node.
func (c *Checker) CoveredCount(set []int, k int, alive []bool) int {
	c.checkAlive(alive)
	if k < 1 {
		for _, v := range set {
			c.checkNode(v)
		}
		return c.aliveMask(alive).Count()
	}
	if c.rows == nil {
		c.fillMembership(set, alive)
		covered := 0
		for v := 0; v < c.n; v++ {
			if alive != nil && !alive[v] {
				continue
			}
			if c.dominators(v, k) >= k {
				covered++
			}
		}
		return covered
	}
	c.fold(set, k, alive)
	return c.aliveMask(alive).AndCount(c.levels[k-1])
}

// DominatorDeficit returns the total number of missing dominator slots:
// Σ over alive v of max(0, k - |N+[v] ∩ set ∩ alive|). Zero iff set is
// k-dominating. alive is nil (all nodes) or exactly one flag per node.
func (c *Checker) DominatorDeficit(set []int, k int, alive []bool) int {
	c.checkAlive(alive)
	if k < 1 {
		for _, v := range set {
			c.checkNode(v)
		}
		return 0
	}
	if c.rows == nil {
		c.fillMembership(set, alive)
		deficit := 0
		for v := 0; v < c.n; v++ {
			if alive != nil && !alive[v] {
				continue
			}
			if d := c.dominators(v, k); d < k {
				deficit += k - d
			}
		}
		return deficit
	}
	c.fold(set, k, alive)
	am := c.aliveMask(alive)
	deficit := 0
	for _, lv := range c.levels[:k] {
		deficit += am.AndNotCount(lv)
	}
	return deficit
}

// AppendUndominated appends the sorted alive nodes with fewer than k
// dominators to dst and returns the extended slice. Callers reuse one
// backing array across calls (dst[:0]) for an allocation-free hole scan.
// alive is nil (all nodes) or exactly one flag per node.
func (c *Checker) AppendUndominated(dst []int, set []int, k int, alive []bool) []int {
	c.checkAlive(alive)
	if k < 1 {
		for _, v := range set {
			c.checkNode(v)
		}
		return dst
	}
	if c.rows == nil {
		c.fillMembership(set, alive)
		for v := 0; v < c.n; v++ {
			if alive != nil && !alive[v] {
				continue
			}
			if c.dominators(v, k) < k {
				dst = append(dst, v)
			}
		}
		return dst
	}
	c.fold(set, k, alive)
	am := c.aliveMask(alive).Words()
	top := c.levels[k-1].Words()
	for wi, w := range am {
		for m := w &^ top[wi]; m != 0; m &= m - 1 {
			dst = append(dst, wi<<6+bits.TrailingZeros64(m))
		}
	}
	return dst
}
