package heal

import (
	"sort"

	"repro/internal/domset"
	"repro/internal/graph"
)

// RecruitCover is the centralized form of the patch protocol's grant rule
// (recruitNode.pickBidders): for every under-covered node it enlists the
// deficit-many highest-residual idle candidates from the node's closed
// neighborhood, ties to the lower ID. Where the distributed protocol
// discovers bids over a lossy radio, this entry point reads them straight
// from the residual function — it is what a coordinator with a global view
// runs, and it is the repair rung the shard stitcher reuses at tile
// boundaries before escalating to sched.Replan.
//
// sess must be an open session over the current active set (all-alive mask
// or whatever mask the caller scores coverage against); enlisted nodes are
// flipped into it, so the caller's coverage queries see the repair
// immediately. residual(v) reports how many more whole slots v can fund —
// candidates with residual < need are never enlisted. Each recruit is
// reported through emit (which may be nil) before it is flipped.
//
// It returns the recruited nodes in enlistment order and whether every
// uncovered node reached k dominators. A false return leaves the session
// holding the partial repair: callers decide whether to keep it (heal's
// degraded slots do) or escalate.
func RecruitCover(g *graph.Graph, sess *domset.Session, uncovered []int, k, need int, residual func(v int) int, emit func(recruit, uncovered int)) ([]int, bool) {
	var recruited []int
	var cands []int
	ok := true
	for _, v := range uncovered {
		deficit := k - sess.Dominators(v)
		if deficit <= 0 {
			continue // an earlier grant already covered v
		}
		// Bids: idle closed neighbors that can fund `need` more slots.
		cands = cands[:0]
		if !sess.Contains(v) && sess.IsAlive(v) && residual(v) >= need {
			cands = append(cands, v)
		}
		for _, u := range g.Neighbors(v) {
			if !sess.Contains(int(u)) && sess.IsAlive(int(u)) && residual(int(u)) >= need {
				cands = append(cands, int(u))
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			ri, rj := residual(cands[i]), residual(cands[j])
			if ri != rj {
				return ri > rj
			}
			return cands[i] < cands[j]
		})
		if len(cands) > deficit {
			cands = cands[:deficit]
		}
		for _, u := range cands {
			if emit != nil {
				emit(u, v)
			}
			sess.Flip(u)
			recruited = append(recruited, u)
		}
		if len(cands) < deficit {
			ok = false
		}
	}
	return recruited, ok
}
