package heal

import (
	"sort"

	"repro/internal/distsim"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/obs"
)

// The patch protocol is a genuine distributed recruitment round in the
// simulator's synchronous broadcast model, in the spirit of Penso & Barbosa's
// local recruitment of replacement dominators (arXiv:cs/0309040) and the
// local reconfiguration steps of Censor-Hillel & Rabie (arXiv:1810.02106).
// Every quantity a node acts on is locally observable: its own coverage
// deficit (a node hears its dominators), its own residual battery, and
// whether it is currently serving. The protocol costs three logical
// broadcast exchanges:
//
//	help:  under-covered nodes announce how many dominators they miss
//	bid:   idle neighbors with battery answer with their residual energy
//	grant: each under-covered node enlists its highest-residual bidders
//
// A candidate that sees its ID in any grant joins the active set. An
// under-covered node that received no usable bids and has battery of its own
// self-recruits (a purely local decision, like the LP-rounding repair step).
//
// Under a lossy radio any of the three messages can vanish, so the runtime
// retries the protocol with exponential backoff: on attempt a every logical
// message is rebroadcast 2^a consecutive rounds, driving the per-message
// loss probability to loss^(2^a). Retransmissions are real sends — they are
// charged to Stats.Messages, which is how E23 prices repair traffic.

// role is the locally observable state a node enters the protocol with.
type role struct {
	deficit  int  // missing dominators (> 0 means under-covered)
	residual int  // spendable duty budget (0 = cannot volunteer)
	serving  bool // already active this slot
	alive    bool
}

type helpMsg struct {
	need int
}

type bidMsg struct {
	residual int
	id       int
}

type grantMsg struct {
	ids []int // node IDs enlisted by the sender
}

// recruitNode is the per-node distsim program. repeats stretches every
// logical phase to that many broadcast rounds (the backoff mechanism).
type recruitNode struct {
	id      int
	role    role
	repeats int

	round     int // rounds completed
	bids      map[int]int
	granted   map[int]bool
	heardHelp bool

	Recruited bool // enlisted by a neighbor's grant or by self-recruitment
}

func newRecruitNodes(n int, roles []role, repeats int) []*recruitNode {
	nodes := make([]*recruitNode, n)
	for v := range nodes {
		nodes[v] = &recruitNode{id: v, role: roles[v], repeats: repeats}
	}
	return nodes
}

// phase maps the round counter onto the three logical exchanges.
func (r *recruitNode) phase() int { return r.round / r.repeats }

// Start opens the help phase.
func (r *recruitNode) Start() any {
	if !r.role.alive || r.role.deficit <= 0 {
		return nil
	}
	return helpMsg{need: r.role.deficit}
}

// Round advances the stretched three-phase exchange. Phase p's messages are
// broadcast during its rounds and processed as they arrive; decisions fall
// on the first round of the following phase.
func (r *recruitNode) Round(received []any) (any, bool) {
	if !r.role.alive {
		return nil, true
	}
	for _, msg := range received {
		switch m := msg.(type) {
		case helpMsg:
			r.heardHelp = true
		case bidMsg:
			if r.bids == nil {
				r.bids = make(map[int]int)
			}
			r.bids[m.id] = m.residual
		case grantMsg:
			for _, id := range m.ids {
				if id == r.id {
					r.Recruited = true
				}
			}
		}
	}
	r.round++
	switch r.phase() {
	case 0: // still in the help phase: under-covered nodes keep repeating
		if r.role.deficit > 0 {
			return helpMsg{need: r.role.deficit}, false
		}
		return nil, false
	case 1: // bid phase: idle nodes with battery answer heard pleas
		if r.canVolunteer() && r.heardHelp {
			return bidMsg{residual: r.role.residual, id: r.id}, false
		}
		return nil, false
	case 2: // grant phase: under-covered nodes enlist their best bidders
		if r.role.deficit > 0 {
			if ids := r.pickBidders(); len(ids) > 0 {
				return grantMsg{ids: ids}, false
			}
		}
		return nil, false
	default: // protocol over: apply the self-recruitment fallback
		if r.role.deficit > 0 && len(r.bids) == 0 && r.canVolunteer() {
			r.Recruited = true
		}
		return nil, true
	}
}

func (r *recruitNode) canVolunteer() bool {
	return r.role.alive && !r.role.serving && r.role.residual > 0
}

// pickBidders returns the deficit-many highest-residual bidder IDs (ties to
// the lower ID, for determinism).
func (r *recruitNode) pickBidders() []int {
	ids := make([]int, 0, len(r.bids))
	for id := range r.bids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		bi, bj := r.bids[ids[i]], r.bids[ids[j]]
		if bi != bj {
			return bi > bj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > r.role.deficit {
		ids = ids[:r.role.deficit]
	}
	return ids
}

// runPatch executes one recruitment attempt over the current network state.
// serving is the active set of the slot; uncovered the under-k-dominated
// alive nodes. It returns the newly enlisted serviceable nodes and the
// protocol cost.
func runPatch(g *graph.Graph, net *energy.Network, serving []int, uncovered []int, k int, repeats int, radio distsim.Radio, h obs.Hooks) ([]int, distsim.Stats, error) {
	n := g.N()
	inServing := make([]bool, n)
	domCount := make([]int, n)
	for _, v := range serving {
		inServing[v] = true
	}
	for v := 0; v < n; v++ {
		if inServing[v] {
			domCount[v]++
		}
		for _, u := range g.Neighbors(v) {
			if inServing[u] {
				domCount[v]++
			}
		}
	}
	roles := make([]role, n)
	for v := 0; v < n; v++ {
		roles[v] = role{
			residual: spendable(net, v),
			serving:  inServing[v],
			alive:    net.Alive[v],
		}
	}
	for _, v := range uncovered {
		roles[v].deficit = k - domCount[v]
	}
	nodes := newRecruitNodes(n, roles, repeats)
	programs := make([]distsim.Program, n)
	for v := range nodes {
		programs[v] = nodes[v]
	}
	// 3 stretched phases plus the closing decision round, with slack.
	maxRounds := 3*repeats + 2
	stats, err := distsim.Run(g, programs, distsim.Options{MaxRounds: maxRounds, Radio: radio, Hooks: h})
	if err != nil {
		return nil, stats, err
	}
	var recruited []int
	for v, nd := range nodes {
		if nd.Recruited && !inServing[v] && net.CanServe(v) {
			recruited = append(recruited, v)
		}
	}
	return recruited, stats, nil
}

// spendable returns how many whole active slots node v can still fund.
func spendable(net *energy.Network, v int) int {
	if !net.Alive[v] || net.Residual[v] < net.ActiveCost {
		return 0
	}
	return net.Residual[v] / net.ActiveCost
}
