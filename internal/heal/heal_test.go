package heal

import (
	"math"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sensim"
	"repro/internal/solver"
)

// mustSolve runs the registry WHP driver — the path that replaced the
// deleted core.*WHP shims, seed-pinned equivalent to them draw for draw.
func mustSolve(t testing.TB, g *graph.Graph, budgets []int, name string, tries int, src *rng.Source) *core.Schedule {
	t.Helper()
	s, err := solver.Solve(instance.New(g, budgets), solver.Spec{Name: name},
		solver.Options{Tries: tries, Src: src})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// blackoutRadio drops every delivery — the deterministic worst radio, used
// to force the patch rung to fail so escalation must fire.
type blackoutRadio struct{}

func (blackoutRadio) Drop(from, to, round int) bool { return true }

func TestPatchRecruitsHighestResidualNeighbor(t *testing.T) {
	// Square s-a, s-b, a-u, b-u: s serves and covers s, a, b; u is the only
	// hole. Both a (residual 5) and b (residual 2) bid; u must enlist a.
	g := graph.New(4)
	const s, a, b, u = 0, 1, 2, 3
	g.AddEdge(s, a)
	g.AddEdge(s, b)
	g.AddEdge(a, u)
	g.AddEdge(b, u)
	net := energy.NewNetwork(g, []int{1, 5, 2, 0})
	recruited, stats, err := runPatch(g, net, []int{s}, []int{u}, 1, 1, nil, obs.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recruited) != 1 || recruited[0] != a {
		t.Fatalf("recruited %v, want [%d] (the highest-residual bidder)", recruited, a)
	}
	if stats.Rounds == 0 || stats.Messages == 0 {
		t.Fatalf("patch ran as a free lunch: %+v — it must cost real protocol rounds and messages", stats)
	}
}

func TestHealCoversCrashOfSoleServer(t *testing.T) {
	// K4, node 0 serves alone; it crashes at slot 2. The patch protocol
	// must enlist replacements and keep every slot covered.
	g := gen.Complete(4)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 4}}}
	net := energy.NewNetwork(g, energy.Uniform(g, 4))
	plan := chaos.Plan{Crashes: energy.FailurePlan{{Time: 2, Node: 0}}}
	res := Run(net, s, Options{K: 1, Chaos: plan})
	if res.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", res.Deaths)
	}
	if res.FirstViolation != -1 {
		t.Fatalf("FirstViolation = %d, want -1 (patching must close the hole)", res.FirstViolation)
	}
	if res.PatchSuccesses == 0 || res.Recruited == 0 {
		t.Fatalf("no patch recorded: %+v", res)
	}
	if res.AchievedLifetime < s.Lifetime() {
		t.Fatalf("achieved %d < nominal %d despite healing", res.AchievedLifetime, s.Lifetime())
	}
}

func TestPatchRetriesUnderLossyRadio(t *testing.T) {
	// A hole under a very lossy flat radio: the first attempts lose
	// messages, the exponential-backoff rebroadcasts push them through.
	g := gen.Complete(5)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 4}}}
	net := energy.NewNetwork(g, energy.Uniform(g, 5))
	plan := chaos.Merge(
		chaos.Plan{Crashes: energy.FailurePlan{{Time: 1, Node: 0}}},
		chaos.FlatLoss(0.7, rng.New(12)),
	)
	res := Run(net, s, Options{K: 1, Chaos: plan, PatchAttempts: 5, Src: rng.New(3)})
	if res.Protocol.Dropped == 0 {
		t.Fatal("lossy radio dropped nothing — the patch protocol did not run under it")
	}
	if res.Protocol.Messages == 0 || res.PatchAttempts == 0 {
		t.Fatalf("patching left no protocol trace: %+v", res)
	}
	if res.FirstViolation != -1 {
		t.Fatalf("FirstViolation = %d; healing failed under loss: %+v", res.FirstViolation, res)
	}
}

func TestEscalatesToCentralReplan(t *testing.T) {
	// Path 0-1-2, node 1 serves. A battery leak empties node 1 at slot 2
	// while the radio blacks out every patch message; node 2 can still
	// self-recruit (local decision), but node 0 stays uncovered, so the
	// runtime must escalate to a centralized replan over residual budgets,
	// which schedules {0, 2} and keeps the network covered.
	g := gen.Path(3)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1}, Duration: 4}}}
	net := energy.NewNetwork(g, []int{3, 4, 5})
	plan := chaos.Plan{
		Leaks: []chaos.Leak{{Time: 2, Node: 1, Amount: 99}},
		Radio: blackoutRadio{},
	}
	res := Run(net, s, Options{K: 1, Chaos: plan, ReplanAfter: 1})
	if res.Replans == 0 {
		t.Fatalf("no replan escalation recorded: %+v", res)
	}
	if res.FirstViolation != -1 {
		t.Fatalf("FirstViolation = %d, want -1 (replan must restore coverage in-slot)", res.FirstViolation)
	}
	// Slots 0-1 from the schedule, then {0,2} phases from the replan until
	// node 0's or node 2's budget runs dry (3 more slots).
	if res.AchievedLifetime != 5 {
		t.Fatalf("AchievedLifetime = %d, want 5", res.AchievedLifetime)
	}
	if res.DegradedSlots != 0 {
		t.Fatalf("DegradedSlots = %d, want 0", res.DegradedSlots)
	}
}

func TestDegradesGracefully(t *testing.T) {
	// Path 0-1-2: both endpoints crash at slot 1 and the middle node has no
	// battery left to volunteer. No patch, no replan can help; the runtime
	// must keep executing, report the degraded slot, and terminate.
	g := gen.Path(3)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0, 2}, Duration: 2}}}
	net := energy.NewNetwork(g, []int{2, 0, 2})
	plan := chaos.Plan{Crashes: energy.FailurePlan{
		{Time: 1, Node: 0}, {Time: 1, Node: 2},
	}}
	res := Run(net, s, Options{K: 1, Chaos: plan})
	if res.Deaths != 2 {
		t.Fatalf("deaths = %d, want 2", res.Deaths)
	}
	if res.DegradedSlots == 0 {
		t.Fatal("unfixable hole not reported as degraded")
	}
	if res.FirstViolation != 1 {
		t.Fatalf("FirstViolation = %d, want 1", res.FirstViolation)
	}
	if res.AchievedLifetime != 1 {
		t.Fatalf("AchievedLifetime = %d, want 1", res.AchievedLifetime)
	}
	if res.Replans != 0 && res.FirstViolation == -1 {
		t.Fatalf("replanning cannot succeed here: %+v", res)
	}
	if len(res.Coverage) != 2 {
		t.Fatalf("run aborted early: executed %d slots, want the full 2", len(res.Coverage))
	}
}

func TestRunWithoutChaosMatchesScheduleAndHarvests(t *testing.T) {
	// Fault-free healing run: never below full coverage, and at least the
	// nominal lifetime (end-of-schedule replanning may extend it).
	g := gen.GNP(60, 0.2, rng.New(4))
	const b = 3
	s := mustSolve(t, g, energy.Uniform(g, b), "uniform", 30, rng.New(5))
	if s.Lifetime() == 0 {
		t.Skip("degenerate schedule")
	}
	net := energy.NewNetwork(g, energy.Uniform(g, b))
	res := Run(net, s, Options{K: 1})
	if res.FirstViolation != -1 {
		t.Fatalf("violation at %d in a fault-free run", res.FirstViolation)
	}
	if res.AchievedLifetime < s.Lifetime() {
		t.Fatalf("achieved %d < nominal %d without any faults", res.AchievedLifetime, s.Lifetime())
	}
}

func TestHealingBeatsStaticAcceptance(t *testing.T) {
	// The PR acceptance criterion: on a 256-node GNP graph under an
	// identical seeded chaos plan with >= 10 injected crashes, running the
	// SAME 1-tolerant schedule, the self-healing runtime achieves strictly
	// greater lifetime than static execution.
	n := 256
	g := gen.GNP(n, 8*math.Log(float64(n))/float64(n), rng.New(42))
	const b = 4
	// The lifetime-maximal 1-tolerant schedule: a greedy domatic partition
	// run class by class. Its phases are minimal dominating sets with zero
	// redundancy — the schedule that E10 shows falls to a single aimed
	// crash, and the one online healing is for.
	s := core.FromPartition(domatic.GreedyPartition(g, domatic.GreedyExtractor), b)
	if s.Lifetime() == 0 {
		t.Fatal("schedule construction failed")
	}
	plan := chaos.Crashes(g, 24, s.Lifetime(), rng.New(99))
	if plan.CrashCount() < 10 {
		t.Fatalf("chaos plan has %d crashes, want >= 10", plan.CrashCount())
	}

	netStatic := energy.NewNetwork(g, energy.Uniform(g, b))
	static := sensim.Run(netStatic, s, sensim.Options{K: 1, Inject: plan.Injector()})

	netHeal := energy.NewNetwork(g, energy.Uniform(g, b))
	healed := Run(netHeal, s, Options{K: 1, Chaos: plan})

	if static.Deaths < 10 || healed.Deaths < 10 {
		t.Fatalf("crashes not applied: static %d, healed %d deaths", static.Deaths, healed.Deaths)
	}
	if healed.AchievedLifetime <= static.AchievedLifetime {
		t.Fatalf("healing did not pay: static %d >= healed %d (healed: %+v)",
			static.AchievedLifetime, healed.AchievedLifetime, healed)
	}
	if healed.PatchAttempts == 0 {
		t.Fatal("healed run never exercised the patch protocol")
	}
	if healed.Protocol.Messages == 0 {
		t.Fatal("patching sent no messages — not a genuine distributed repair")
	}
}

func TestHealDeterministic(t *testing.T) {
	g := gen.GNP(80, 0.15, rng.New(11))
	const b = 3
	run := func() Result {
		s := mustSolve(t, g, energy.Uniform(g, b), "uniform", 20, rng.New(5))
		net := energy.NewNetwork(g, energy.Uniform(g, b))
		plan := chaos.Merge(
			chaos.Crashes(g, 8, 10, rng.New(17)),
			chaos.FlatLoss(0.3, rng.New(23)),
		)
		return Run(net, s, Options{K: 1, Chaos: plan, Src: rng.New(31)})
	}
	a, b2 := run(), run()
	if a.AchievedLifetime != b2.AchievedLifetime || a.Protocol != b2.Protocol ||
		a.Recruited != b2.Recruited || a.Replans != b2.Replans {
		t.Fatalf("identical seeded runs diverged:\n%+v\n%+v", a, b2)
	}
}

func TestHealTerminatesUnderTotalLoss(t *testing.T) {
	// Degradation edge: the sole server crashes immediately, the patch radio
	// loses every message (Loss = 1), and no survivor has budget to serve —
	// every rung of the ladder fails. Run must terminate with a reported
	// violation instead of panicking or spinning on retries.
	g := gen.Path(2)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 4}}}
	net := energy.NewNetwork(g, []int{4, 0})
	plan := chaos.Plan{Crashes: energy.FailurePlan{{Time: 0, Node: 0}}}
	done := make(chan Result, 1)
	go func() { done <- Run(net, s, Options{K: 1, Chaos: plan, Loss: 1.0, Src: rng.New(3)}) }()
	var res Result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("heal.Run did not terminate under total loss")
	}
	if res.FirstViolation != 0 {
		t.Fatalf("FirstViolation = %d, want 0 (nothing can cover the survivor)", res.FirstViolation)
	}
	if res.AchievedLifetime != 0 {
		t.Fatalf("AchievedLifetime = %d, want 0", res.AchievedLifetime)
	}
	if res.Recruited != 0 {
		t.Fatalf("recruited %d nodes through a radio that drops everything", res.Recruited)
	}
	if res.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", res.Deaths)
	}
}

func TestHealDeadNetworkIsTerminalViolation(t *testing.T) {
	// Regression: a fully dead network used to score cov = 1.0 (0 of 0
	// alive nodes covered) and keep advancing AchievedLifetime. It must be
	// a terminal coverage violation, matching sensim's semantics.
	g := gen.Complete(3)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 6}}}
	net := energy.NewNetwork(g, energy.Uniform(g, 6))
	plan := chaos.Plan{Crashes: energy.FailurePlan{
		{Time: 2, Node: 0}, {Time: 2, Node: 1}, {Time: 2, Node: 2},
	}}
	res := Run(net, s, Options{K: 1, Chaos: plan})
	if res.AchievedLifetime != 2 {
		t.Fatalf("AchievedLifetime = %d, want 2 (slots before the wipeout)", res.AchievedLifetime)
	}
	if res.FirstViolation != 2 {
		t.Fatalf("FirstViolation = %d, want 2 (the dead slot)", res.FirstViolation)
	}
	if n := len(res.Coverage); n != 3 {
		t.Fatalf("run continued %d slots past the wipeout, want termination at slot 2 (3 coverage entries)", n-3+2)
	}
	if last := res.Coverage[2]; last != 0 {
		t.Fatalf("dead slot scored coverage %v, want 0", last)
	}
}
