// Package heal is the self-healing schedule runtime: it executes a
// cluster-lifetime schedule against the energy model the way sensim does,
// but instead of letting the network run degraded after a fault opens a
// coverage hole, it repairs the hole online through a three-rung escalation
// ladder:
//
//  1. local patching — a bounded-retry distributed recruitment protocol
//     (three broadcast exchanges under the lossy radio, retried with
//     exponential backoff) enlists the highest-residual-energy alive
//     neighbor of each under-covered node;
//  2. centralized re-planning — when patching keeps failing, the runtime
//     rebuilds the remaining schedule from the residual budgets of the
//     alive nodes (sched.Replan), as a sink with a global view would;
//  3. graceful degradation — when even a fresh plan cannot cover everyone,
//     the slot executes with partial coverage and is reported, rather than
//     aborting the run.
//
// The paper pre-provisions against failure (Algorithm 3's k-tolerant
// schedules); this package adds the complementary online half, in the
// spirit of distributed self-stabilizing reconfiguration (Censor-Hillel &
// Rabie, arXiv:1810.02106) and local dominator recruitment (Penso &
// Barbosa, arXiv:cs/0309040). Experiment E23 measures what that buys: a
// 1-tolerant schedule plus healing against a statically k-tolerant one
// under the identical chaos plan.
package heal

import (
	"sort"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/domset"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Options configures a self-healing execution. It follows the canonical
// shape documented in package obs: the knobs it shares with sensim.Options
// and distsim.Options carry the same names (K, MaxSlots, Radio, Src), and
// the embedded obs.Hooks carries the tracing sinks.
type Options struct {
	// K is the required domination tolerance per slot (>= 1; 0 means 1).
	K int
	// Chaos is the fault plan injected during execution (zero value = none).
	// Its Radio, when set, also degrades the patch protocol's messages.
	Chaos chaos.Plan
	// Radio, when non-nil, is the patch-protocol medium and takes
	// precedence over Chaos.Radio and Loss; aligned with
	// distsim.Options.Radio.
	Radio distsim.Radio
	// Loss is a flat patch-radio loss probability used when neither Radio
	// nor Chaos.Radio is set.
	Loss float64
	// PatchAttempts bounds the recruitment retries per slot (0 means 3).
	// Attempt a rebroadcasts every protocol message 2^a times.
	PatchAttempts int
	// ReplanAfter is the number of consecutive patch-failure slots that
	// triggers centralized re-planning (0 means 2).
	ReplanAfter int
	// MaxSlots caps the execution (0 means schedule lifetime plus total
	// residual budget — enough for any replan to play out); aligned with
	// sensim.Options.MaxSlots.
	MaxSlots int
	// Src seeds the patch radio fallback (nil = fixed seed).
	Src *rng.Source
	// Hooks carries the observability sinks (obs.Hooks; the promoted Trace
	// field receives slot, crash/leak, patch, recruit, replan, degraded,
	// and protocol round events). The zero value is the no-op default: the
	// slot loop stays allocation-free.
	obs.Hooks
}

func (o Options) normalize(net *energy.Network, s *core.Schedule) Options {
	if o.K < 1 {
		o.K = 1
	}
	if o.PatchAttempts <= 0 {
		o.PatchAttempts = 3
	}
	if o.ReplanAfter <= 0 {
		o.ReplanAfter = 2
	}
	if o.MaxSlots <= 0 {
		o.MaxSlots = s.Lifetime() + net.TotalResidual() + 1
	}
	if o.Src == nil {
		o.Src = rng.New(1)
	}
	return o
}

// Result summarizes a self-healing execution. The coverage bookkeeping
// matches sensim.Result so the two runtimes are directly comparable.
type Result struct {
	// AchievedLifetime is the number of consecutive slots from time 0
	// during which every alive node was k-dominated by serving nodes.
	AchievedLifetime int
	// ScheduleLifetime is the nominal lifetime of the input schedule.
	ScheduleLifetime int
	// Coverage[t] is the fraction of alive nodes k-dominated in slot t.
	Coverage []float64
	// FirstViolation is the first slot that stayed under-covered after the
	// full escalation ladder, or -1.
	FirstViolation int
	// EnergySpent is the total budget units drained (schedule + recruits).
	EnergySpent int
	// Deaths counts chaos-plan crashes applied.
	Deaths int

	// PatchAttempts counts recruitment protocol executions; Retries the
	// attempts beyond the first within a slot; PatchSuccesses the slots
	// whose holes local patching closed; Recruited the nodes enlisted.
	PatchAttempts  int
	Retries        int
	PatchSuccesses int
	Recruited      int
	// Protocol is the aggregate message cost of all patch attempts.
	Protocol distsim.Stats

	// Replans counts centralized re-planning escalations; DegradedSlots the
	// slots that ran with partial coverage after the ladder was exhausted.
	Replans       int
	DegradedSlots int
}

// Run executes schedule s on net with online self-healing. The network is
// mutated: budgets drain, chaos faults apply, recruits spend energy. The
// run continues past the nominal schedule end as long as re-planning over
// residual budgets can still produce covering phases, and past coverage
// violations (degraded slots) until the plan and the replanner are both
// exhausted.
func Run(net *energy.Network, s *core.Schedule, opt Options) Result {
	opt = opt.normalize(net, s)
	res := Result{ScheduleLifetime: s.Lifetime(), FirstViolation: -1}
	g := net.G

	radio := patchRadio(opt)
	inject := opt.Chaos.Injector().WithHooks(opt.Hooks)
	ck := domset.NewChecker(g)
	uncovBuf := make([]int, 0, g.N())

	cur := s
	pos := 0 // slot index within cur
	failStreak := 0
	recruits := map[int]bool{}
	lastPhase := -1

	opt.Emit(obs.RunStart("heal", g.N()))
	for t := 0; t < opt.MaxSlots; t++ {
		opt.Emit(obs.SlotStart(t))
		res.Deaths += inject.Inject(net, t)

		if net.AliveCount() == 0 && g.N() > 0 {
			// Dead network: no recruit or replan can revive anyone, so this
			// is a terminal coverage violation (same semantics as sensim.Run).
			res.Coverage = append(res.Coverage, 0)
			if res.FirstViolation == -1 {
				res.FirstViolation = t
			}
			opt.Emit(obs.SlotEnd(t, 0, 0, 0))
			break
		}

		// Locate the scheduled set; when the plan is exhausted, escalate to
		// the replanner before giving up — the residual budgets may still
		// hold whole covering phases (the squeeze a static run leaves on
		// the table).
		phaseSet, phaseIdx := activeAt(cur, pos)
		if phaseSet == nil {
			next := sched.Replan(g, net.Residual, opt.K, net.Alive)
			if next.Lifetime() == 0 {
				break
			}
			res.Replans++
			opt.Emit(obs.Replan(t, next.Lifetime()))
			cur, pos = next, 0
			recruits = map[int]bool{}
			lastPhase = -1
			phaseSet, phaseIdx = activeAt(cur, pos)
		}
		if phaseIdx != lastPhase {
			// Recruits backstop the phase that was broken when they were
			// enlisted; a fresh phase starts from its own scheduled set.
			recruits = map[int]bool{}
			lastPhase = phaseIdx
		}

		serving := serviceable(net, phaseSet, recruits)
		// One batch fold per slot; every recruit below is an O(deg) Flip
		// instead of a full serviceable+re-fold pass per patch attempt.
		sess := ck.Begin(serving, opt.K, net.Alive)
		uncovBuf = sess.AppendUndominated(uncovBuf[:0])
		uncovered := uncovBuf

		// Rung 1: local patching with exponential backoff.
		if len(uncovered) > 0 {
			for attempt := 0; attempt < opt.PatchAttempts && len(uncovered) > 0; attempt++ {
				res.PatchAttempts++
				if attempt > 0 {
					res.Retries++
				}
				repeats := 1 << attempt
				enlisted, stats, err := runPatch(g, net, serving, uncovered, opt.K, repeats, radio, opt.Hooks)
				res.Protocol.Add(stats)
				opt.Emit(obs.Patch(t, attempt, len(enlisted)))
				if err != nil {
					break
				}
				if len(enlisted) > 0 {
					res.Recruited += len(enlisted)
					for _, v := range enlisted {
						recruits[v] = true
						opt.Emit(obs.Recruit(t, v))
						// runPatch only returns serviceable non-serving nodes,
						// so each one is a single incremental membership delta.
						if !sess.Contains(v) {
							sess.Flip(v)
							serving = append(serving, v)
						}
					}
					uncovBuf = sess.AppendUndominated(uncovBuf[:0])
					uncovered = uncovBuf
				}
			}
			if len(uncovered) == 0 {
				res.PatchSuccesses++
				failStreak = 0
			}
		}

		// Rung 2: centralized re-planning over residual budgets.
		if len(uncovered) > 0 {
			failStreak++
			if failStreak >= opt.ReplanAfter {
				failStreak = 0
				next := sched.Replan(g, net.Residual, opt.K, net.Alive)
				if next.Lifetime() > 0 {
					res.Replans++
					opt.Emit(obs.Replan(t, next.Lifetime()))
					cur, pos = next, 0
					recruits = map[int]bool{}
					phaseSet, lastPhase = activeAt(cur, pos)
					serving = serviceable(net, phaseSet, recruits)
					// A replan swaps the whole set — pay a fresh fold (rare).
					sess = ck.Begin(serving, opt.K, net.Alive)
					uncovBuf = sess.AppendUndominated(uncovBuf[:0])
					uncovered = uncovBuf
				}
			}
		}

		// Rung 3: graceful degradation — the slot still runs.
		if len(uncovered) > 0 {
			res.DegradedSlots++
			opt.Emit(obs.Degraded(t, len(uncovered)))
		}

		served := net.DrainServiceable(serving)
		res.EnergySpent += len(served) * net.ActiveCost
		if len(served) != len(serving) {
			// A serving node could no longer pay for the slot (defensive:
			// nothing mid-slot drains today). DrainServiceable preserves input
			// order, so one merge walk flips the unpaid nodes back out.
			j := 0
			for _, v := range serving {
				if j < len(served) && served[j] == v {
					j++
				} else {
					sess.Flip(v)
				}
			}
		}

		alive := sess.AliveCount()
		covered := sess.CoveredCount()
		cov := 1.0 // only the 0-node network
		dominated := covered == alive
		if alive > 0 {
			cov = float64(covered) / float64(alive)
		} else if g.N() > 0 {
			// Dead non-empty network: "0 of 0 covered" is a coverage
			// violation, not perfect coverage — the vacuous-equality bug PR 2
			// fixed in sensim. Unreachable today thanks to the top-of-loop
			// dead check, but the scoring must not depend on that.
			cov = 0
			dominated = false
		}
		res.Coverage = append(res.Coverage, cov)
		opt.Emit(obs.SlotEnd(t, len(served), alive, cov))
		if dominated {
			if res.FirstViolation == -1 {
				res.AchievedLifetime = t + 1
			}
		} else if res.FirstViolation == -1 {
			res.FirstViolation = t
		}
		if alive == 0 && g.N() > 0 {
			break // terminal: no recruit or replan revives a dead network
		}
		pos++
	}
	opt.Emit(obs.RunEnd("heal", len(res.Coverage), res.AchievedLifetime, res.Deaths))
	return res
}

// activeAt returns the active set and phase index of slot pos in s, or
// (nil, -1) past the end. Zero-duration phases are skipped.
func activeAt(s *core.Schedule, pos int) ([]int, int) {
	for i, p := range s.Phases {
		if pos < p.Duration {
			return p.Set, i
		}
		pos -= p.Duration
	}
	return nil, -1
}

// serviceable merges the scheduled set with the surviving recruits and
// filters both down to nodes that can actually serve the slot.
func serviceable(net *energy.Network, phaseSet []int, recruits map[int]bool) []int {
	var out []int
	seen := make(map[int]bool, len(phaseSet)+len(recruits))
	for _, v := range phaseSet {
		if !seen[v] && net.CanServe(v) {
			seen[v] = true
			out = append(out, v)
		}
	}
	for v := range recruits {
		if !seen[v] && net.CanServe(v) {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// patchRadio picks the radio degrading the recruitment protocol: the
// explicit Options.Radio when set, else the chaos plan's radio, else a
// flat-loss radio for Options.Loss > 0, else a reliable medium.
func patchRadio(opt Options) distsim.Radio {
	if opt.Radio != nil {
		return opt.Radio
	}
	if opt.Chaos.Radio != nil {
		return opt.Chaos.Radio
	}
	if opt.Loss > 0 {
		return chaos.FlatLoss(opt.Loss, opt.Src.Split()).Radio
	}
	return nil
}
