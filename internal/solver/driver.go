package solver

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
)

// ErrCanceled reports that Options.Cancel fired before the driver produced
// a schedule. experiments.ErrCanceled aliases this value, so the serve
// layer's errors.Is checks (and its 504 mapping) see one identity across
// the solver driver and the experiment runner.
var ErrCanceled = errors.New("experiments: run canceled")

// Options configures the Best/Race drivers.
type Options struct {
	// Tries bounds the retry loop of one attempt. <= 0 means 1.
	Tries int
	// Cancel, when non-nil, is polled before every retry; once it reports
	// true the driver stops and returns ErrCanceled. This is the serve
	// path's sticky deadline check.
	Cancel func() bool
	// Hooks receives one obs.Attempt event per retry. The zero value is
	// the free no-op.
	Hooks obs.Hooks
	// Src seeds the randomized solvers. Nil means a fixed default seed
	// (rng.New(1)), matching core.Options.
	Src *rng.Source
	// Pool, when non-nil, supplies the workers Race runs its attempts on
	// (the serve worker pool, typically). Nil makes Race spin up a
	// transient pool sized to the race width.
	Pool *par.Pool
}

// Best resolves spec.Name in the registry and runs the WHP retry loop the
// legacy core.*WHP functions hard-coded per algorithm: up to Tries draws,
// each truncated at its first non-k-dominating phase, keeping the best
// truncated schedule and stopping early once it reaches the solver's
// guaranteed lifetime. The final schedule passes the ValidateWith
// feasibility gate before being returned — a violation there is a solver
// bug and surfaces as an error, never as a bad schedule.
//
// With the same source, tries, and spec, Best reproduces the legacy
// per-algorithm loops draw for draw (the seed-pinned equivalence tests pin
// this byte for byte).
func Best(g *graph.Graph, budgets []int, spec Spec, opt Options) (*core.Schedule, error) {
	sv, err := Resolve(spec.Name)
	if err != nil {
		return nil, err
	}
	spec = spec.normalize()
	if err := sv.Validate(g, budgets, spec); err != nil {
		return nil, err
	}
	tries := opt.Tries
	if tries <= 0 {
		tries = 1
	}
	src := opt.Src
	if src == nil {
		src = rng.New(1)
	}
	target := sv.GuaranteedLifetime(g, budgets, spec)
	truncK := sv.TruncK(spec)
	ck := domset.NewChecker(g)

	var best *core.Schedule
	for try := 0; try < tries; try++ {
		if opt.Cancel != nil && opt.Cancel() {
			return nil, ErrCanceled
		}
		s := sv.Generate(g, budgets, spec, src).TruncateInvalidWith(ck, truncK)
		if best == nil || s.Lifetime() > best.Lifetime() {
			best = s
		}
		opt.Hooks.Emit(obs.Attempt(spec.Name, try, s.Lifetime(), best.Lifetime()))
		if best.Lifetime() >= target {
			break
		}
	}
	if err := best.ValidateWith(ck, budgets, truncK); err != nil {
		return nil, fmt.Errorf("solver: %s produced infeasible schedule: %w", spec.Name, err)
	}
	return best, nil
}

// Race runs width independently seeded Best attempts concurrently and
// returns a deterministic winner: the best lifetime, with the lowest
// attempt index breaking ties. Attempt i draws from the i-th child of
// opt.Src (rng.SplitN), so the outcome depends only on (seed, width, spec,
// tries) — never on goroutine scheduling.
//
// width <= 1 delegates to Best with opt.Src untouched, so a width-1 race
// is bit-identical to the sequential driver. Attempts run on opt.Pool when
// given; a full pool is not an error — the attempt runs inline on the
// calling goroutine instead, so Race never blocks behind foreign work and
// never deadlocks on a busy shared pool.
//
// A fired cancel surfaces as ErrCanceled even when some attempts finished.
func Race(g *graph.Graph, budgets []int, spec Spec, opt Options, width int) (*core.Schedule, error) {
	if width <= 1 {
		return Best(g, budgets, spec, opt)
	}
	// Fail fast (and only once) on unknown names and malformed input
	// instead of spawning width attempts that all reject it.
	sv, err := Resolve(spec.Name)
	if err != nil {
		return nil, err
	}
	nspec := spec.normalize()
	if err := sv.Validate(g, budgets, nspec); err != nil {
		return nil, err
	}

	src := opt.Src
	if src == nil {
		src = rng.New(1)
	}
	children := src.SplitN(width)
	// One lock around the caller's tracer: attempts emit concurrently.
	hooks := obs.Hooks{Trace: obs.Synchronized(opt.Hooks.Trace)}

	results := make([]*core.Schedule, width)
	errs := make([]error, width)
	var wg sync.WaitGroup
	attempt := func(i int) {
		defer wg.Done()
		o := opt
		o.Src = children[i]
		o.Hooks = hooks
		o.Pool = nil
		results[i], errs[i] = Best(g, budgets, spec, o)
	}

	pool := opt.Pool
	transient := pool == nil
	if transient {
		workers := runtime.GOMAXPROCS(0)
		if width < workers {
			workers = width
		}
		pool = par.NewPool(workers, width)
	}
	for i := 0; i < width; i++ {
		wg.Add(1)
		i := i
		if !pool.TrySubmit(func() { attempt(i) }) {
			attempt(i)
		}
	}
	wg.Wait()
	if transient {
		pool.Close()
	}

	var firstErr error
	var best *core.Schedule
	for i := 0; i < width; i++ {
		if errs[i] != nil {
			if errors.Is(errs[i], ErrCanceled) {
				return nil, ErrCanceled
			}
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if best == nil || results[i].Lifetime() > best.Lifetime() {
			best = results[i]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return best, nil
}
