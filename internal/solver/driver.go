package solver

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
)

// ErrCanceled reports that the cancel contract (Options.Cancel or
// Options.Deadline) fired before the driver produced a schedule.
// experiments.ErrCanceled aliases this value, so the serve layer's
// errors.Is checks (and its 504 mapping) see one identity across the
// solver driver and the experiment runner.
var ErrCanceled = errors.New("experiments: run canceled")

// Options configures the Solve driver. It replaces the positional
// parameters the Best/Race signatures used to accumulate: every budget
// knob — retry count, refinement iteration budget, wall-clock deadline,
// cooperative cancel, race width — lives here, so growing the contract
// never changes a signature again.
type Options struct {
	// Tries bounds the WHP retry loop of one attempt. <= 0 means 1.
	Tries int
	// Budget bounds the candidate moves a refinement solver (tabu, anneal)
	// may charge after the base schedule is drawn. <= 0 means
	// DefaultRefineBudget. Non-refining solvers ignore it.
	Budget int
	// Deadline, when non-zero, is the wall-clock bound of the whole solve:
	// once it passes, the WHP loop stops with ErrCanceled and a running
	// refinement returns its best schedule so far (the anytime contract).
	// It composes with Cancel — whichever fires first wins.
	Deadline time.Time
	// Cancel, when non-nil, is polled before every retry and refinement
	// move; once it reports true the WHP loop stops and returns
	// ErrCanceled. This is the serve path's sticky deadline check.
	Cancel func() bool
	// Hooks receives one obs.Attempt event per retry and one obs.Refine
	// event per refinement pass. The zero value is the free no-op.
	Hooks obs.Hooks
	// Src seeds the randomized solvers. Nil means a fixed default seed
	// (rng.New(1)), matching core.Options.
	Src *rng.Source
	// Pool, when non-nil, supplies the workers a raced solve runs its
	// attempts on (the serve worker pool, typically). Nil makes Solve spin
	// up a transient pool sized to the race width.
	Pool *par.Pool
	// RaceWidth is the number of independently seeded attempts Solve races
	// (rng.SplitN children, deterministic winner). <= 1 runs one
	// sequential attempt.
	RaceWidth int
}

// cancelFunc folds Cancel and Deadline into one sticky poll. Nil when
// neither is set, so the hot loop skips the time syscall entirely.
func (o Options) cancelFunc() func() bool {
	cancel := o.Cancel
	if o.Deadline.IsZero() {
		return cancel
	}
	deadline := o.Deadline
	fired := false
	return func() bool {
		if fired {
			return true
		}
		if cancel != nil && cancel() {
			fired = true
			return true
		}
		if !time.Now().Before(deadline) {
			fired = true
			return true
		}
		return false
	}
}

// Solve is the single driver entry point: it resolves spec to its
// effective solver (running the auto portfolio dispatch on the instance's
// structure when spec.Name is "auto"), validates the instance once, and
// runs opt.RaceWidth independently seeded attempts (sequentially for
// width <= 1, concurrently on a pool otherwise), returning a
// deterministic winner — best lifetime, lowest attempt index breaking
// ties.
//
// Each attempt is the WHP retry loop the legacy core.*WHP functions
// hard-coded per algorithm: up to Tries draws, each truncated at its first
// non-k-dominating phase, keeping the best truncated schedule and stopping
// early once it reaches the solver's guaranteed lifetime. When spec.Name
// resolves to a Refiner (tabu, anneal), the attempt composes a pipeline:
// the base solver named by spec.Base (itself resolved through the auto
// dispatch when it says "auto") runs the WHP loop first, then Refine
// improves its schedule under the Budget/Deadline/Cancel contract. The
// final schedule passes the ValidateWith feasibility gate before being
// returned — a violation there is a solver bug and surfaces as an error,
// never as a bad schedule.
//
// With the same source, tries, and spec, a width-1 Solve reproduces the
// legacy per-algorithm loops draw for draw (the seed-pinned equivalence
// tests pin this byte for byte), and attempt i of a raced solve draws from
// the i-th child of opt.Src, so the outcome depends only on (seed, width,
// spec, tries, budget) — never on goroutine scheduling.
func Solve(inst *instance.Instance, spec Spec, opt Options) (*core.Schedule, error) {
	sv, spec, err := Effective(inst, spec)
	if err != nil {
		return nil, err
	}
	if err := sv.Validate(inst, spec); err != nil {
		return nil, err
	}
	if _, ok := sv.(Refiner); !ok && spec.Base != "" {
		return nil, fmt.Errorf("solver: %s is not a refiner; base solver %q is only meaningful with one of %v",
			spec.Name, spec.Base, RefinerNames())
	}
	if opt.RaceWidth <= 1 {
		return solveOne(sv, inst, spec, opt)
	}
	return race(sv, inst, spec, opt)
}

// checkerFor picks the fold kernel for the driver's validation gates.
// A dense row fold costs ~n/64 words per member against ~deg(v) adjacency
// bumps for the rowless walk, so packed rows only pay for themselves when
// the average degree clears the row stride (2m/n > n/64, i.e. 128m > n²);
// below that the O(n²/64) row build plus its memclr is pure overhead on
// the handful of per-phase checks a solve performs.
func checkerFor(g *graph.Graph) *domset.Checker {
	if 128*g.M() < g.N()*g.N() {
		return domset.NewSparseChecker(g)
	}
	return domset.NewChecker(g)
}

// solveOne runs one sequential attempt: the WHP loop, plus the refinement
// stage when sv is a Refiner. spec is normalized and validated.
func solveOne(sv Solver, inst *instance.Instance, spec Spec, opt Options) (*core.Schedule, error) {
	src := opt.Src
	if src == nil {
		src = rng.New(1)
	}
	cancel := opt.cancelFunc()
	ck := checkerFor(inst.Graph)

	rf, refining := sv.(Refiner)
	loopSolver, loopSpec := sv, spec
	if refining {
		// The base solver draws the starting schedule under its own
		// guarantee/truncation contract; the refiner then improves it.
		base, bspec, err := Effective(inst, rf.BaseSpec(spec))
		if err != nil {
			return nil, fmt.Errorf("solver: %s: %w", spec.Name, err)
		}
		loopSolver, loopSpec = base, bspec
	}

	tries := opt.Tries
	if tries <= 0 {
		tries = 1
	}
	target := loopSolver.GuaranteedLifetime(inst, loopSpec)
	loopK := loopSolver.TruncK(inst, loopSpec)

	var best *core.Schedule
	for try := 0; try < tries; try++ {
		if cancel != nil && cancel() {
			return nil, ErrCanceled
		}
		s := loopSolver.Generate(inst, loopSpec, src).TruncateInvalidWith(ck, loopK)
		if best == nil || s.Lifetime() > best.Lifetime() {
			best = s
		}
		opt.Hooks.Emit(obs.Attempt(loopSpec.Name, try, s.Lifetime(), best.Lifetime()))
		if best.Lifetime() >= target {
			break
		}
	}

	truncK := sv.TruncK(inst, spec)
	if refining {
		budget := opt.Budget
		if budget <= 0 {
			budget = DefaultRefineBudget
		}
		best = rf.Refine(inst, best, spec, &Refinement{
			Budget:  budget,
			Cancel:  cancel,
			Src:     src,
			Hooks:   opt.Hooks,
			Checker: ck,
		})
	}
	if err := best.ValidateWith(ck, inst.Budgets, truncK); err != nil {
		return nil, fmt.Errorf("solver: %s produced infeasible schedule: %w", spec.Name, err)
	}
	return best, nil
}

// race runs opt.RaceWidth solveOne attempts concurrently and returns the
// deterministic winner. sv is resolved, spec normalized and validated.
//
// Attempts run on opt.Pool when given; a full pool is not an error — the
// attempt runs inline on the calling goroutine instead, so a raced solve
// never blocks behind foreign work and never deadlocks on a busy shared
// pool. A fired cancel surfaces as ErrCanceled even when some attempts
// finished.
func race(sv Solver, inst *instance.Instance, spec Spec, opt Options) (*core.Schedule, error) {
	width := opt.RaceWidth
	src := opt.Src
	if src == nil {
		src = rng.New(1)
	}
	children := src.SplitN(width)
	// One lock around the caller's tracer: attempts emit concurrently.
	hooks := obs.Hooks{Trace: obs.Synchronized(opt.Hooks.Trace)}

	results := make([]*core.Schedule, width)
	errs := make([]error, width)
	var wg sync.WaitGroup
	attempt := func(i int) {
		defer wg.Done()
		o := opt
		o.Src = children[i]
		o.Hooks = hooks
		o.Pool = nil
		o.RaceWidth = 1
		results[i], errs[i] = solveOne(sv, inst, spec, o)
	}

	pool := opt.Pool
	transient := pool == nil
	if transient {
		workers := runtime.GOMAXPROCS(0)
		if width < workers {
			workers = width
		}
		pool = par.NewPool(workers, width)
	}
	for i := 0; i < width; i++ {
		wg.Add(1)
		i := i
		if !pool.TrySubmit(func() { attempt(i) }) {
			attempt(i)
		}
	}
	wg.Wait()
	if transient {
		pool.Close()
	}

	var firstErr error
	var best *core.Schedule
	for i := 0; i < width; i++ {
		if errs[i] != nil {
			if errors.Is(errs[i], ErrCanceled) {
				return nil, ErrCanceled
			}
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if best == nil || results[i].Lifetime() > best.Lifetime() {
			best = results[i]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return best, nil
}
