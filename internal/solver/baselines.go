package solver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
)

// The deterministic baselines ltsched exposes — greedy, LP relaxation, and
// the branch-and-bound optimum — ride the same driver as the randomized
// algorithms. They ignore the randomness source, and their
// GuaranteedLifetime of 0 makes the driver's early-stop fire after the
// first attempt, so Best costs exactly one generation. Running them
// through Best still buys the shared ValidateWith feasibility gate: an
// infeasible baseline schedule fails loudly instead of being reported.

// exactNodeCap bounds the solvers that enumerate minimal dominating sets
// (exponential in n). The cap matches the gate cmd/ltsched has enforced
// since the baseline was added.
const exactNodeCap = 24

func init() {
	Register(greedySolver{})
	Register(lpSolver{})
	Register(exactSolver{})
}

// greedySolver peels greedy k-dominating phases off the budget vector until
// none remains — the replanning heuristic of the self-healing runtime
// (sched.Replan), exposed as a schedule baseline.
type greedySolver struct{}

func (greedySolver) Name() string { return NameGreedy }

func (greedySolver) Validate(g *graph.Graph, budgets []int, spec Spec) error {
	return validateBudgets(g, budgets, NameGreedy, false)
}

func (greedySolver) GuaranteedLifetime(*graph.Graph, []int, Spec) int { return 0 }

func (greedySolver) TruncK(spec Spec) int { return spec.K }

func (greedySolver) Generate(g *graph.Graph, budgets []int, spec Spec, _ *rng.Source) *core.Schedule {
	return sched.Replan(g, budgets, spec.K, nil)
}

// validateExactSize gates the exponential baselines.
func validateExactSize(g *graph.Graph, name string) error {
	if g.N() > exactNodeCap {
		return fmt.Errorf("solver: %s solver limited to %d nodes (got %d)", name, exactNodeCap, g.N())
	}
	return nil
}

// lpSolver solves the fractional LP relaxation over all minimal
// k-dominating sets and floors the phase durations. Flooring only shrinks
// per-node usage, so the integral schedule inherits feasibility from the
// LP solution while losing at most one slot per set.
type lpSolver struct{}

func (lpSolver) Name() string { return NameLP }

func (lpSolver) Validate(g *graph.Graph, budgets []int, spec Spec) error {
	if err := validateExactSize(g, NameLP); err != nil {
		return err
	}
	return validateBudgets(g, budgets, NameLP, false)
}

func (lpSolver) GuaranteedLifetime(*graph.Graph, []int, Spec) int { return 0 }

func (lpSolver) TruncK(spec Spec) int { return spec.K }

func (lpSolver) Generate(g *graph.Graph, budgets []int, spec Spec, _ *rng.Source) *core.Schedule {
	_, sets, durs, err := exact.Fractional(g, budgets, spec.K)
	if err != nil {
		// The LP can only fail on malformed input, which Validate already
		// rejected; an empty schedule keeps the driver's no-panic contract.
		return &core.Schedule{}
	}
	s := &core.Schedule{}
	for i, set := range sets {
		if d := int(durs[i]); d > 0 {
			s.Phases = append(s.Phases, core.Phase{Set: set, Duration: d})
		}
	}
	return s
}

// exactSolver is the branch-and-bound optimum (exact.Integral).
type exactSolver struct{}

func (exactSolver) Name() string { return NameExact }

func (exactSolver) Validate(g *graph.Graph, budgets []int, spec Spec) error {
	if err := validateExactSize(g, NameExact); err != nil {
		return err
	}
	return validateBudgets(g, budgets, NameExact, false)
}

func (exactSolver) GuaranteedLifetime(*graph.Graph, []int, Spec) int { return 0 }

func (exactSolver) TruncK(spec Spec) int { return spec.K }

func (exactSolver) Generate(g *graph.Graph, budgets []int, spec Spec, _ *rng.Source) *core.Schedule {
	_, sets, durs := exact.Integral(g, budgets, spec.K)
	s := &core.Schedule{}
	for i, set := range sets {
		if durs[i] > 0 {
			s.Phases = append(s.Phases, core.Phase{Set: set, Duration: durs[i]})
		}
	}
	return s
}
