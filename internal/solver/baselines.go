package solver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/sched"
)

// The deterministic baselines ltsched exposes — greedy, LP relaxation, and
// the branch-and-bound optimum — ride the same driver as the randomized
// algorithms. They ignore the randomness source, and their
// GuaranteedLifetime of 0 makes the driver's early-stop fire after the
// first attempt, so a solve costs exactly one generation. Running them
// through the driver still buys the shared ValidateWith feasibility gate:
// an infeasible baseline schedule fails loudly instead of being reported.

// exactNodeCap bounds the solvers that enumerate minimal dominating sets
// (exponential in n). The cap matches the gate cmd/ltsched has enforced
// since the baseline was added, and doubles as the auto portfolio's
// "small enough for exact" threshold.
const exactNodeCap = 24

func init() {
	Register(greedySolver{})
	Register(lpSolver{})
	Register(exactSolver{})
}

// greedySolver peels greedy k-dominating phases off the budget vector until
// none remains — the replanning heuristic of the self-healing runtime
// (sched.Replan), exposed as a schedule baseline.
type greedySolver struct{}

func (greedySolver) Name() string { return NameGreedy }

func (greedySolver) Validate(inst *instance.Instance, spec Spec) error {
	return validateBudgets(inst, NameGreedy, false)
}

func (greedySolver) GuaranteedLifetime(*instance.Instance, Spec) int { return 0 }

func (greedySolver) TruncK(inst *instance.Instance, _ Spec) int { return inst.Tolerance() }

func (greedySolver) Generate(inst *instance.Instance, spec Spec, _ *rng.Source) *core.Schedule {
	return sched.Replan(inst.Graph, inst.Budgets, inst.Tolerance(), nil)
}

// validateExactSize gates the exponential baselines.
func validateExactSize(inst *instance.Instance, name string) error {
	if inst.N() > exactNodeCap {
		return fmt.Errorf("solver: %s solver limited to %d nodes (got %d)", name, exactNodeCap, inst.N())
	}
	return nil
}

// lpSolver solves the fractional LP relaxation over all minimal
// k-dominating sets and floors the phase durations. Flooring only shrinks
// per-node usage, so the integral schedule inherits feasibility from the
// LP solution while losing at most one slot per set.
type lpSolver struct{}

func (lpSolver) Name() string { return NameLP }

func (lpSolver) Validate(inst *instance.Instance, spec Spec) error {
	if err := validateExactSize(inst, NameLP); err != nil {
		return err
	}
	return validateBudgets(inst, NameLP, false)
}

func (lpSolver) GuaranteedLifetime(*instance.Instance, Spec) int { return 0 }

func (lpSolver) TruncK(inst *instance.Instance, _ Spec) int { return inst.Tolerance() }

func (lpSolver) Generate(inst *instance.Instance, spec Spec, _ *rng.Source) *core.Schedule {
	_, sets, durs, err := exact.Fractional(inst.Graph, inst.Budgets, inst.Tolerance())
	if err != nil {
		// The LP can only fail on malformed input, which Validate already
		// rejected; an empty schedule keeps the driver's no-panic contract.
		return &core.Schedule{}
	}
	s := &core.Schedule{}
	for i, set := range sets {
		if d := int(durs[i]); d > 0 {
			s.Phases = append(s.Phases, core.Phase{Set: set, Duration: d})
		}
	}
	return s
}

// exactSolver is the branch-and-bound optimum (exact.Integral).
type exactSolver struct{}

func (exactSolver) Name() string { return NameExact }

func (exactSolver) Validate(inst *instance.Instance, spec Spec) error {
	if err := validateExactSize(inst, NameExact); err != nil {
		return err
	}
	return validateBudgets(inst, NameExact, false)
}

func (exactSolver) GuaranteedLifetime(*instance.Instance, Spec) int { return 0 }

func (exactSolver) TruncK(inst *instance.Instance, _ Spec) int { return inst.Tolerance() }

func (exactSolver) Generate(inst *instance.Instance, spec Spec, _ *rng.Source) *core.Schedule {
	_, sets, durs := exact.Integral(inst.Graph, inst.Budgets, inst.Tolerance())
	s := &core.Schedule{}
	for i, set := range sets {
		if durs[i] > 0 {
			s.Phases = append(s.Phases, core.Phase{Set: set, Duration: durs[i]})
		}
	}
	return s
}
