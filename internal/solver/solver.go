// Package solver is the single home of the paper's execution shape: every
// scheduling algorithm in the repository — the three randomized algorithms
// of the paper, the general k-tolerant extension, and the deterministic
// greedy/LP/exact baselines — registers here behind one Solver interface,
// and one generic driver (Solve) runs the WHP retry loop that used to be
// copied per algorithm: generate a raw schedule, truncate at the first
// non-k-dominating phase, keep the best, stop early once the paper's
// guaranteed lifetime is reached.
//
// Solvers consume a typed instance.Instance — graph, budgets, tolerance,
// and a verified structural classification — rather than a bare
// (g, budgets) pair. That makes structure-aware dispatch a first-class
// registry feature: the "grid" solver reads the instance's certified
// grid/torus embedding, and the "auto" portfolio solver picks a concrete
// algorithm per instance (grid → grid, small → exact, else the configured
// fallback).
//
// Callers resolve algorithms by registry name ("uniform", "general", "ft",
// "generalft", "greedy", "lp", "exact", "grid", "auto", ...); the serve
// layer, cmd/ltsched, and the experiments all go through this registry
// instead of switching on algorithm names themselves.
package solver

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/rng"
)

// Canonical registry names. The paper's algorithms keep the wire names the
// serve layer has used since PR 4; the deterministic baselines take the
// names cmd/ltsched exposes.
const (
	NameUniform   = "uniform"   // Algorithm 1: uniform batteries
	NameGeneral   = "general"   // Algorithm 2: arbitrary batteries
	NameFT        = "ft"        // Algorithm 3: uniform batteries, k-tolerant
	NameGeneralFT = "generalft" // repo extension: arbitrary batteries, k-tolerant
	NameGreedy    = "greedy"    // deterministic greedy baseline (sched.Replan shape)
	NameLP        = "lp"        // LP relaxation with floored phase durations
	NameExact     = "exact"     // branch-and-bound optimum (small graphs only)
	NamePrune     = "prune"     // greedy + per-phase redundancy pruning + extension
	NameTabu      = "tabu"      // anytime refiner: tabu search over a base schedule
	NameAnneal    = "anneal"    // anytime refiner: simulated annealing over a base schedule
	NameGrid      = "grid"      // pattern-based dominating-set tiling on verified grids/tori
	NameAuto      = "auto"      // portfolio dispatch on the instance's structure
)

// Spec selects a registered algorithm and its parameters. The domination
// tolerance is not here — it is a property of the instance
// (instance.Instance.K), not of the algorithm.
type Spec struct {
	// Name is the registry name of the algorithm.
	Name string
	// KConst is the color-range constant of the randomized algorithms.
	// <= 0 means the paper's 3.
	KConst float64
	// Base names the solver whose schedule a refinement solver (tabu,
	// anneal) starts from; empty means greedy. Non-refining solvers reject
	// a non-empty Base.
	Base string
	// Fallback names the solver the auto portfolio dispatches to when no
	// structured fast path applies; empty means greedy. Only auto reads it.
	Fallback string
}

func (s Spec) normalize() Spec {
	if s.KConst <= 0 {
		s.KConst = 3
	}
	return s
}

// coreOptions is the core.Options form of the spec with an explicit source.
func (s Spec) coreOptions(src *rng.Source) core.Options {
	return core.Options{K: s.KConst, Src: src}
}

// Solver is one registered scheduling algorithm. Implementations are
// stateless values: all per-call state (instance, randomness) arrives
// through the method arguments, so one instance serves concurrent callers.
type Solver interface {
	// Name returns the registry name.
	Name() string
	// Validate rejects malformed (instance, spec) combinations with an
	// actionable error — it is the trust boundary that lets the driver
	// guarantee the core constructors never panic. An infeasible-but-well-
	// formed instance (e.g. tolerance above the minimum closed neighborhood)
	// is NOT an error: it yields an empty schedule, matching core.
	Validate(inst *instance.Instance, spec Spec) error
	// GuaranteedLifetime returns the w.h.p. lifetime target of the paper's
	// analysis — the driver's early-stop threshold. Deterministic solvers
	// return 0, which makes the driver accept their first (only meaningful)
	// attempt.
	GuaranteedLifetime(inst *instance.Instance, spec Spec) int
	// TruncK returns the domination tolerance the driver truncates and
	// validates with (the tolerance-1 algorithms pin 1; the k-tolerant
	// ones return the instance's tolerance).
	TruncK(inst *instance.Instance, spec Spec) int
	// Generate produces one raw schedule draw. The driver truncates it at
	// the first non-TruncK-dominating phase.
	Generate(inst *instance.Instance, spec Spec, src *rng.Source) *core.Schedule
}

// nonRefinable is the opt-out capability a solver implements when its
// schedules are deterministic fast-path artifacts that the anytime
// refiners must not be composed onto (the grid tiling solver). The serve
// layer surfaces the rejection as a 400 at decode time.
type nonRefinable interface {
	RefinableBase() bool
}

// refinableBase reports whether sv's schedules may seed a refiner.
func refinableBase(sv Solver) bool {
	if nr, ok := sv.(nonRefinable); ok {
		return nr.RefinableBase()
	}
	return true
}

var (
	regMu    sync.RWMutex
	registry = map[string]Solver{}
)

// Register adds s to the registry. Duplicate names are a programming error
// and panic, mirroring the experiments registry.
func Register(s Solver) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", s.Name()))
	}
	registry[s.Name()] = s
}

// Get returns the solver registered under name.
func Get(name string) (Solver, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Resolve is Get with an actionable error listing the registry contents.
func Resolve(name string) (Solver, error) {
	s, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("solver: unknown algorithm %q (have %v)", name, Names())
	}
	return s, nil
}

// RefinerNames returns the registered names that implement the Refiner
// capability, sorted. The cmds use it to document what -refine accepts.
func RefinerNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var names []string
	for n, s := range registry {
		if _, ok := s.(Refiner); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Effective resolves spec to the solver that will actually generate
// schedules for inst: for a concrete name it is Resolve plus
// normalization; for "auto" it runs the portfolio dispatch on the
// instance's verified structure and returns the chosen concrete solver
// with spec.Name rewritten. Every layer that needs to know what auto
// means on a given instance (the driver, refiner validation, serve's
// decode-time pipeline check, ltsched's reporting) goes through here, so
// the dispatch rule exists exactly once.
func Effective(inst *instance.Instance, spec Spec) (Solver, Spec, error) {
	spec = spec.normalize()
	sv, err := Resolve(spec.Name)
	if err != nil {
		return nil, spec, err
	}
	if spec.Name != NameAuto {
		return sv, spec, nil
	}
	name := autoPick(inst, spec)
	if name == NameAuto {
		return nil, spec, fmt.Errorf("solver: auto fallback must name a concrete algorithm, not %q", NameAuto)
	}
	eff, err := Resolve(name)
	if err != nil {
		return nil, spec, fmt.Errorf("solver: auto fallback: %w", err)
	}
	if _, refiner := eff.(Refiner); refiner {
		return nil, spec, fmt.Errorf("solver: auto fallback %q is a refiner; set it as the refine stage instead", name)
	}
	spec.Name = name
	return eff, spec, nil
}

// Guaranteed returns the w.h.p. lifetime target of the named algorithm on
// this instance — the value the driver stops early at. Exported for layers
// (plan, ltsched) that report the guarantee next to the achieved lifetime.
func Guaranteed(inst *instance.Instance, spec Spec) (int, error) {
	sv, spec, err := Effective(inst, spec)
	if err != nil {
		return 0, err
	}
	if err := sv.Validate(inst, spec); err != nil {
		return 0, err
	}
	return sv.GuaranteedLifetime(inst, spec), nil
}

// validateBudgets is the shape check shared by every solver: one
// non-negative budget per node. needUniform additionally demands all
// entries agree (Algorithms 1 and 3).
func validateBudgets(inst *instance.Instance, name string, needUniform bool) error {
	if len(inst.Budgets) != inst.N() {
		return fmt.Errorf("solver: %s: %d budgets for %d nodes", name, len(inst.Budgets), inst.N())
	}
	for v, b := range inst.Budgets {
		if b < 0 {
			return fmt.Errorf("solver: %s: budgets[%d] = %d must be >= 0", name, v, b)
		}
		if needUniform && b != inst.Budgets[0] {
			return fmt.Errorf("solver: algorithm %q needs uniform batteries, but budgets[%d] = %d != budgets[0] = %d",
				name, v, b, inst.Budgets[0])
		}
	}
	return nil
}

// uniformBudget returns the common per-node budget of a validated uniform
// budget vector (0 on an empty graph).
func uniformBudget(budgets []int) int {
	if len(budgets) == 0 {
		return 0
	}
	return budgets[0]
}
