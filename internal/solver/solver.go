// Package solver is the single home of the paper's execution shape: every
// scheduling algorithm in the repository — the three randomized algorithms
// of the paper, the general k-tolerant extension, and the deterministic
// greedy/LP/exact baselines — registers here behind one Solver interface,
// and one generic driver (Best) runs the WHP retry loop that used to be
// copied per algorithm: generate a raw schedule, truncate at the first
// non-k-dominating phase, keep the best, stop early once the paper's
// guaranteed lifetime is reached.
//
// On top of Best, Race runs R independently seeded attempts concurrently
// (on a par.Pool) and picks a deterministic winner — the restart trick of
// Feige et al. (SICOMP 2002) that the paper's with-high-probability bounds
// are built on: each attempt succeeds with probability 1-O(1/n), so racing
// R attempts trades cores for wall-clock without changing the distribution
// of the best schedule.
//
// Callers resolve algorithms by registry name ("uniform", "general", "ft",
// "generalft", "greedy", "lp", "exact"); the serve layer, cmd/ltsched, and
// the experiments all go through this registry instead of switching on
// algorithm names themselves.
package solver

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Canonical registry names. The paper's algorithms keep the wire names the
// serve layer has used since PR 4; the deterministic baselines take the
// names cmd/ltsched exposes.
const (
	NameUniform   = "uniform"   // Algorithm 1: uniform batteries
	NameGeneral   = "general"   // Algorithm 2: arbitrary batteries
	NameFT        = "ft"        // Algorithm 3: uniform batteries, k-tolerant
	NameGeneralFT = "generalft" // repo extension: arbitrary batteries, k-tolerant
	NameGreedy    = "greedy"    // deterministic greedy baseline (sched.Replan shape)
	NameLP        = "lp"        // LP relaxation with floored phase durations
	NameExact     = "exact"     // branch-and-bound optimum (small graphs only)
	NamePrune     = "prune"     // greedy + per-phase redundancy pruning + extension
	NameTabu      = "tabu"      // anytime refiner: tabu search over a base schedule
	NameAnneal    = "anneal"    // anytime refiner: simulated annealing over a base schedule
)

// Spec selects a registered algorithm and its parameters. The zero values
// of K and KConst normalize to the defaults every layer has always used
// (tolerance 1, color-range constant 3).
type Spec struct {
	// Name is the registry name of the algorithm.
	Name string
	// K is the domination tolerance (>= 1). Only the k-tolerant solvers
	// and the baselines use values above 1. <= 0 means 1.
	K int
	// KConst is the color-range constant of the randomized algorithms.
	// <= 0 means the paper's 3.
	KConst float64
	// Base names the solver whose schedule a refinement solver (tabu,
	// anneal) starts from; empty means greedy. Non-refining solvers reject
	// a non-empty Base.
	Base string
}

func (s Spec) normalize() Spec {
	if s.K <= 0 {
		s.K = 1
	}
	if s.KConst <= 0 {
		s.KConst = 3
	}
	return s
}

// coreOptions is the core.Options form of the spec with an explicit source.
func (s Spec) coreOptions(src *rng.Source) core.Options {
	return core.Options{K: s.KConst, Src: src}
}

// Solver is one registered scheduling algorithm. Implementations are
// stateless values: all per-call state (graph, budgets, randomness) arrives
// through the method arguments, so one instance serves concurrent callers.
type Solver interface {
	// Name returns the registry name.
	Name() string
	// Validate rejects malformed (g, budgets, spec) combinations with an
	// actionable error — it is the trust boundary that lets the driver
	// guarantee the core constructors never panic. An infeasible-but-well-
	// formed instance (e.g. tolerance above the minimum closed neighborhood)
	// is NOT an error: it yields an empty schedule, matching core.
	Validate(g *graph.Graph, budgets []int, spec Spec) error
	// GuaranteedLifetime returns the w.h.p. lifetime target of the paper's
	// analysis — the driver's early-stop threshold. Deterministic solvers
	// return 0, which makes the driver accept their first (only meaningful)
	// attempt.
	GuaranteedLifetime(g *graph.Graph, budgets []int, spec Spec) int
	// TruncK returns the domination tolerance the driver truncates and
	// validates with.
	TruncK(spec Spec) int
	// Generate produces one raw schedule draw. The driver truncates it at
	// the first non-TruncK-dominating phase.
	Generate(g *graph.Graph, budgets []int, spec Spec, src *rng.Source) *core.Schedule
}

var (
	regMu    sync.RWMutex
	registry = map[string]Solver{}
)

// Register adds s to the registry. Duplicate names are a programming error
// and panic, mirroring the experiments registry.
func Register(s Solver) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", s.Name()))
	}
	registry[s.Name()] = s
}

// Get returns the solver registered under name.
func Get(name string) (Solver, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Resolve is Get with an actionable error listing the registry contents.
func Resolve(name string) (Solver, error) {
	s, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("solver: unknown algorithm %q (have %v)", name, Names())
	}
	return s, nil
}

// RefinerNames returns the registered names that implement the Refiner
// capability, sorted. The cmds use it to document what -refine accepts.
func RefinerNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var names []string
	for n, s := range registry {
		if _, ok := s.(Refiner); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Guaranteed returns the w.h.p. lifetime target of the named algorithm on
// this instance — the value the driver stops early at. Exported for layers
// (plan, ltsched) that report the guarantee next to the achieved lifetime.
func Guaranteed(g *graph.Graph, budgets []int, spec Spec) (int, error) {
	sv, err := Resolve(spec.Name)
	if err != nil {
		return 0, err
	}
	spec = spec.normalize()
	if err := sv.Validate(g, budgets, spec); err != nil {
		return 0, err
	}
	return sv.GuaranteedLifetime(g, budgets, spec), nil
}

// validateBudgets is the shape check shared by every solver: one
// non-negative budget per node. needUniform additionally demands all
// entries agree (Algorithms 1 and 3).
func validateBudgets(g *graph.Graph, budgets []int, name string, needUniform bool) error {
	if len(budgets) != g.N() {
		return fmt.Errorf("solver: %s: %d budgets for %d nodes", name, len(budgets), g.N())
	}
	for v, b := range budgets {
		if b < 0 {
			return fmt.Errorf("solver: %s: budgets[%d] = %d must be >= 0", name, v, b)
		}
		if needUniform && b != budgets[0] {
			return fmt.Errorf("solver: algorithm %q needs uniform batteries, but budgets[%d] = %d != budgets[0] = %d",
				name, v, b, budgets[0])
		}
	}
	return nil
}

// uniformBudget returns the common per-node budget of a validated uniform
// budget vector (0 on an empty graph).
func uniformBudget(budgets []int) int {
	if len(budgets) == 0 {
		return 0
	}
	return budgets[0]
}
