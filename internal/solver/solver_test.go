package solver_test

import (
	"errors"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/solver"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.GNP(120, 0.25, rng.New(3))
}

func uniformBudgets(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// inst wraps a graph and budgets in the typed instance every solver call
// consumes now.
func inst(g *graph.Graph, budgets []int) *instance.Instance {
	return instance.New(g, budgets)
}

// legacyWHP replays the retry/truncate/keep-best/early-stop loop the
// deleted core.*WHP shims hard-coded per algorithm, composed from the
// still-exported core primitives.
func legacyWHP(g *graph.Graph, target, truncK, tries int, generate func() *core.Schedule) *core.Schedule {
	ck := domset.NewChecker(g)
	var best *core.Schedule
	for try := 0; try < tries; try++ {
		s := generate().TruncateInvalidWith(ck, truncK)
		if best == nil || s.Lifetime() > best.Lifetime() {
			best = s
		}
		if best.Lifetime() >= target {
			break
		}
	}
	return best
}

// TestSolveReproducesLegacyWHP is the seed-pinned equivalence contract of
// the registry refactor: for every paper algorithm, solver.Solve with a
// fresh source must reproduce the exact schedule the legacy per-algorithm
// retry loop computes with an identically seeded source — byte for byte,
// not just same lifetime.
func TestSolveReproducesLegacyWHP(t *testing.T) {
	g := testGraph(t)
	const b, k, tries, seed = 4, 2, 12, 17

	cases := []struct {
		spec    solver.Spec
		k       int
		budgets []int
		legacy  func() *core.Schedule
	}{
		{solver.Spec{Name: solver.NameUniform}, 1, uniformBudgets(g.N(), b), func() *core.Schedule {
			o := core.Options{Src: rng.New(seed)}
			return legacyWHP(g, core.GuaranteedPhases(g, o)*b, 1, tries,
				func() *core.Schedule { return core.Uniform(g, b, o) })
		}},
		{solver.Spec{Name: solver.NameGeneral}, 1, rampBudgets(g.N()), func() *core.Schedule {
			o := core.Options{Src: rng.New(seed)}
			budgets := rampBudgets(g.N())
			return legacyWHP(g, core.GeneralGuaranteedSlots(g, budgets, o), 1, tries,
				func() *core.Schedule { return core.General(g, budgets, o) })
		}},
		{solver.Spec{Name: solver.NameFT}, k, uniformBudgets(g.N(), b), func() *core.Schedule {
			o := core.Options{Src: rng.New(seed)}
			return legacyWHP(g, core.FaultTolerantGuarantee(g, b, k, o), k, tries,
				func() *core.Schedule { return core.FaultTolerant(g, b, k, o) })
		}},
		{solver.Spec{Name: solver.NameGeneralFT}, k, rampBudgets(g.N()), func() *core.Schedule {
			o := core.Options{Src: rng.New(seed)}
			budgets := rampBudgets(g.N())
			return legacyWHP(g, core.GeneralGuaranteedSlots(g, budgets, o)/k, k, tries,
				func() *core.Schedule { return core.GeneralFaultTolerant(g, budgets, k, o) })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.spec.Name, func(t *testing.T) {
			want := tc.legacy()
			got, err := solver.Solve(inst(g, tc.budgets).WithK(tc.k), tc.spec,
				solver.Options{Tries: tries, Src: rng.New(seed)})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("solver.Solve diverged from legacy loop:\n got lifetime %d (%d phases)\nwant lifetime %d (%d phases)",
					got.Lifetime(), len(got.Phases), want.Lifetime(), len(want.Phases))
			}
			if got.Lifetime() == 0 {
				t.Fatal("fixture produced an empty schedule; equivalence is vacuous")
			}
		})
	}
}

// rampBudgets gives node v battery 2 + v%4: heterogeneous but bounded, the
// shape the general algorithms are for.
func rampBudgets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 2 + i%4
	}
	return out
}

// TestSolveWidthOneSequential pins the delegation contract: RaceWidth <= 1
// hands the parent source directly to the sequential attempt, so racing is
// a pure superset of the sequential driver.
func TestSolveWidthOneSequential(t *testing.T) {
	g := testGraph(t)
	budgets := uniformBudgets(g.N(), 3)
	spec := solver.Spec{Name: solver.NameUniform}
	in := inst(g, budgets)
	want, err := solver.Solve(in, spec, solver.Options{Tries: 8, Src: rng.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{0, 1} {
		got, err := solver.Solve(in, spec,
			solver.Options{Tries: 8, Src: rng.New(5), RaceWidth: width})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Solve(RaceWidth=%d) != sequential: lifetime %d vs %d", width, got.Lifetime(), want.Lifetime())
		}
	}
}

// TestRaceDeterministic pins the racing contract: the winner is a pure
// function of the seed and width — concurrency must not leak into the
// result. Each width is run repeatedly and compared byte for byte.
func TestRaceDeterministic(t *testing.T) {
	g := testGraph(t)
	budgets := rampBudgets(g.N())
	spec := solver.Spec{Name: solver.NameGeneral}
	in := inst(g, budgets)
	for _, width := range []int{2, 4, 7} {
		var want *core.Schedule
		for rep := 0; rep < 3; rep++ {
			got, err := solver.Solve(in, spec,
				solver.Options{Tries: 4, Src: rng.New(29), RaceWidth: width})
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("width %d rep %d diverged: lifetime %d vs %d",
					width, rep, got.Lifetime(), want.Lifetime())
			}
		}
		if want.Lifetime() == 0 {
			t.Fatalf("width %d produced an empty schedule", width)
		}
	}
}

// TestRaceBeatsOrMatchesBest: the race winner can never be worse than any
// single attempt with the same per-child try budget — in particular it is at
// least as good as the first child alone.
func TestRaceBeatsOrMatchesBest(t *testing.T) {
	g := testGraph(t)
	budgets := rampBudgets(g.N())
	spec := solver.Spec{Name: solver.NameGeneral}
	in := inst(g, budgets)
	children := rng.New(29).SplitN(4)
	first, err := solver.Solve(in, spec, solver.Options{Tries: 4, Src: children[0]})
	if err != nil {
		t.Fatal(err)
	}
	raced, err := solver.Solve(in, spec,
		solver.Options{Tries: 4, Src: rng.New(29), RaceWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if raced.Lifetime() < first.Lifetime() {
		t.Fatalf("race winner (lifetime %d) worse than its own first attempt (%d)",
			raced.Lifetime(), first.Lifetime())
	}
}

// TestBestCanceled pins the serve cancellation contract end to end: a fired
// cancel func surfaces as ErrCanceled, which is the same sentinel the
// experiments package re-exports (serve's writeJobError matches on it).
func TestBestCanceled(t *testing.T) {
	g := testGraph(t)
	budgets := uniformBudgets(g.N(), 3)
	_, err := solver.Solve(inst(g, budgets), solver.Spec{Name: solver.NameUniform},
		solver.Options{Tries: 5, Cancel: func() bool { return true }, Src: rng.New(1)})
	if !errors.Is(err, solver.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, experiments.ErrCanceled) {
		t.Fatal("experiments.ErrCanceled no longer aliases solver.ErrCanceled")
	}
}

// TestRaceCanceled fires cancel after the first few attempts are underway:
// the race must report ErrCanceled rather than a partial winner.
func TestRaceCanceled(t *testing.T) {
	g := testGraph(t)
	budgets := uniformBudgets(g.N(), 3)
	var calls atomic.Int64
	cancel := func() bool { return calls.Add(1) > 2 }
	_, err := solver.Solve(inst(g, budgets), solver.Spec{Name: solver.NameUniform},
		solver.Options{Tries: 50, Cancel: cancel, Src: rng.New(1), RaceWidth: 4})
	if !errors.Is(err, solver.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestBestEmitsAttemptEvents checks the obs contract: one EvAttempt per try,
// with the best-so-far monotone nondecreasing and the final best equal to
// the returned schedule's lifetime.
func TestBestEmitsAttemptEvents(t *testing.T) {
	g := testGraph(t)
	budgets := rampBudgets(g.N())
	var mem obs.Memory
	s, err := solver.Solve(inst(g, budgets), solver.Spec{Name: solver.NameGeneral},
		solver.Options{Tries: 6, Src: rng.New(11), Hooks: obs.Hooks{Trace: &mem}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Events) == 0 {
		t.Fatal("no attempt events emitted")
	}
	best := -1
	for i, ev := range mem.Events {
		if ev.Type != obs.EvAttempt {
			t.Fatalf("event %d: unexpected type %v", i, ev.Type)
		}
		if ev.T != i {
			t.Fatalf("event %d: try index %d", i, ev.T)
		}
		if ev.B < best {
			t.Fatalf("best-so-far decreased: %d after %d", ev.B, best)
		}
		best = ev.B
	}
	if best != s.Lifetime() {
		t.Fatalf("final best event says %d, schedule lifetime is %d", best, s.Lifetime())
	}
}

// TestRegistryNames pins the registry contents and Resolve's error shape.
func TestRegistryNames(t *testing.T) {
	want := []string{"anneal", "auto", "exact", "ft", "general", "generalft", "greedy", "grid", "lp", "prune", "tabu", "uniform"}
	got := solver.Names()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Names() not sorted: %v", got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry = %v, want %v", got, want)
	}
	if _, err := solver.Resolve("frob"); err == nil {
		t.Fatal("unknown name resolved")
	}
	for _, name := range got {
		if sv, ok := solver.Get(name); !ok || sv.Name() != name {
			t.Fatalf("Get(%q) = %v, %v", name, sv, ok)
		}
	}
}

// TestValidateRejections spot-checks the shape errors Validate centralizes
// (they were scattered across serve/request.go and the cmds before).
func TestValidateRejections(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		name string
		spec solver.Spec
		in   *instance.Instance
	}{
		{"uniform needs uniform batteries", solver.Spec{Name: solver.NameUniform}, inst(g, rampBudgets(g.N()))},
		{"uniform rejects tolerance", solver.Spec{Name: solver.NameUniform}, inst(g, uniformBudgets(g.N(), 3)).WithK(2)},
		{"budget length mismatch", solver.Spec{Name: solver.NameGeneral}, inst(g, uniformBudgets(g.N()-1, 3))},
		{"negative budget", solver.Spec{Name: solver.NameGeneral}, inst(g, append(uniformBudgets(g.N()-1, 3), -1))},
		{"exact node cap", solver.Spec{Name: solver.NameExact}, inst(g, uniformBudgets(g.N(), 3))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := solver.Solve(tc.in, tc.spec, solver.Options{Tries: 1, Src: rng.New(1)}); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

// TestBaselinesFeasible runs each deterministic baseline on a small graph
// and checks the driver's post-validation accepts the result.
func TestBaselinesFeasible(t *testing.T) {
	g := gen.GNP(18, 0.4, rng.New(9))
	budgets := uniformBudgets(g.N(), 2)
	for _, name := range []string{solver.NameGreedy, solver.NameLP, solver.NameExact, solver.NamePrune} {
		t.Run(name, func(t *testing.T) {
			s, err := solver.Solve(inst(g, budgets), solver.Spec{Name: name},
				solver.Options{Tries: 1, Src: rng.New(1)})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(g, budgets, 1); err != nil {
				t.Fatalf("%s schedule infeasible: %v", name, err)
			}
		})
	}
}

// TestPruneAtLeastGreedy pins the refinement contract: the prune solver is
// greedy plus redundancy pruning plus re-extension over the freed budget,
// so its lifetime can never be below the greedy baseline's.
func TestPruneAtLeastGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := gen.GNP(40, 0.2, rng.New(seed))
		budgets := uniformBudgets(g.N(), 5)
		opt := solver.Options{Tries: 1, Src: rng.New(seed)}
		greedy, err := solver.Solve(inst(g, budgets), solver.Spec{Name: solver.NameGreedy}, opt)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := solver.Solve(inst(g, budgets), solver.Spec{Name: solver.NamePrune}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := pruned.Validate(g, budgets, 1); err != nil {
			t.Fatalf("seed %d: pruned schedule infeasible: %v", seed, err)
		}
		if pruned.Lifetime() < greedy.Lifetime() {
			t.Fatalf("seed %d: prune lifetime %d < greedy %d", seed, pruned.Lifetime(), greedy.Lifetime())
		}
	}
}
