package solver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// The four randomized solvers of the paper (and the repo's general
// k-tolerant extension) adapt the core constructors to the Solver
// interface. Their GuaranteedLifetime/TruncK values are lifted verbatim
// from the legacy core.*WHP loops, so the driver reproduces those loops
// draw for draw — the property the seed-pinned equivalence tests lock in.

func init() {
	Register(uniformSolver{})
	Register(generalSolver{})
	Register(ftSolver{})
	Register(generalFTSolver{})
}

// rejectTolerance is the shared guard for the tolerance-1 algorithms:
// silently handing a 1-dominating schedule to a caller who asked for
// k-tolerance would be a correctness trap, so they reject K > 1 instead.
func rejectTolerance(name string, spec Spec) error {
	if spec.K > 1 {
		return fmt.Errorf("solver: algorithm %q ignores k; use %s or %s for tolerance %d",
			name, NameFT, NameGeneralFT, spec.K)
	}
	return nil
}

// uniformSolver is Algorithm 1 (uniform batteries, tolerance 1).
type uniformSolver struct{}

func (uniformSolver) Name() string { return NameUniform }

func (uniformSolver) Validate(g *graph.Graph, budgets []int, spec Spec) error {
	if err := rejectTolerance(NameUniform, spec); err != nil {
		return err
	}
	return validateBudgets(g, budgets, NameUniform, true)
}

func (uniformSolver) GuaranteedLifetime(g *graph.Graph, budgets []int, spec Spec) int {
	return core.GuaranteedPhases(g, spec.coreOptions(nil)) * uniformBudget(budgets)
}

func (uniformSolver) TruncK(Spec) int { return 1 }

func (uniformSolver) Generate(g *graph.Graph, budgets []int, spec Spec, src *rng.Source) *core.Schedule {
	return core.Uniform(g, uniformBudget(budgets), spec.coreOptions(src))
}

// generalSolver is Algorithm 2 (arbitrary batteries, tolerance 1).
type generalSolver struct{}

func (generalSolver) Name() string { return NameGeneral }

func (generalSolver) Validate(g *graph.Graph, budgets []int, spec Spec) error {
	if err := rejectTolerance(NameGeneral, spec); err != nil {
		return err
	}
	return validateBudgets(g, budgets, NameGeneral, false)
}

func (generalSolver) GuaranteedLifetime(g *graph.Graph, budgets []int, spec Spec) int {
	return core.GeneralGuaranteedSlots(g, budgets, spec.coreOptions(nil))
}

func (generalSolver) TruncK(Spec) int { return 1 }

func (generalSolver) Generate(g *graph.Graph, budgets []int, spec Spec, src *rng.Source) *core.Schedule {
	return core.General(g, budgets, spec.coreOptions(src))
}

// ftSolver is Algorithm 3 (uniform batteries, k-tolerant).
type ftSolver struct{}

func (ftSolver) Name() string { return NameFT }

func (ftSolver) Validate(g *graph.Graph, budgets []int, spec Spec) error {
	return validateBudgets(g, budgets, NameFT, true)
}

func (ftSolver) GuaranteedLifetime(g *graph.Graph, budgets []int, spec Spec) int {
	return core.FaultTolerantGuarantee(g, uniformBudget(budgets), spec.K, spec.coreOptions(nil))
}

func (ftSolver) TruncK(spec Spec) int { return spec.K }

func (ftSolver) Generate(g *graph.Graph, budgets []int, spec Spec, src *rng.Source) *core.Schedule {
	return core.FaultTolerant(g, uniformBudget(budgets), spec.K, spec.coreOptions(src))
}

// generalFTSolver is the repo's general k-tolerant extension (see
// core.GeneralFaultTolerant; measured by experiment E14).
type generalFTSolver struct{}

func (generalFTSolver) Name() string { return NameGeneralFT }

func (generalFTSolver) Validate(g *graph.Graph, budgets []int, spec Spec) error {
	return validateBudgets(g, budgets, NameGeneralFT, false)
}

func (generalFTSolver) GuaranteedLifetime(g *graph.Graph, budgets []int, spec Spec) int {
	return core.GeneralGuaranteedSlots(g, budgets, spec.coreOptions(nil)) / spec.K
}

func (generalFTSolver) TruncK(spec Spec) int { return spec.K }

func (generalFTSolver) Generate(g *graph.Graph, budgets []int, spec Spec, src *rng.Source) *core.Schedule {
	return core.GeneralFaultTolerant(g, budgets, spec.K, spec.coreOptions(src))
}
