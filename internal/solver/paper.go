package solver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/rng"
)

// The four randomized solvers of the paper (and the repo's general
// k-tolerant extension) adapt the core constructors to the Solver
// interface. Their GuaranteedLifetime/TruncK values are lifted verbatim
// from the legacy core.*WHP loops, so the driver reproduces those loops
// draw for draw — the property the seed-pinned equivalence tests lock in.

func init() {
	Register(uniformSolver{})
	Register(generalSolver{})
	Register(ftSolver{})
	Register(generalFTSolver{})
}

// rejectTolerance is the shared guard for the tolerance-1 algorithms:
// silently handing a 1-dominating schedule to a caller who asked for
// k-tolerance would be a correctness trap, so they reject K > 1 instead.
func rejectTolerance(name string, inst *instance.Instance) error {
	if inst.Tolerance() > 1 {
		return fmt.Errorf("solver: algorithm %q ignores k; use %s or %s for tolerance %d",
			name, NameFT, NameGeneralFT, inst.Tolerance())
	}
	return nil
}

// uniformSolver is Algorithm 1 (uniform batteries, tolerance 1).
type uniformSolver struct{}

func (uniformSolver) Name() string { return NameUniform }

func (uniformSolver) Validate(inst *instance.Instance, spec Spec) error {
	if err := rejectTolerance(NameUniform, inst); err != nil {
		return err
	}
	return validateBudgets(inst, NameUniform, true)
}

func (uniformSolver) GuaranteedLifetime(inst *instance.Instance, spec Spec) int {
	return core.GuaranteedPhases(inst.Graph, spec.coreOptions(nil)) * uniformBudget(inst.Budgets)
}

func (uniformSolver) TruncK(*instance.Instance, Spec) int { return 1 }

func (uniformSolver) Generate(inst *instance.Instance, spec Spec, src *rng.Source) *core.Schedule {
	return core.Uniform(inst.Graph, uniformBudget(inst.Budgets), spec.coreOptions(src))
}

// generalSolver is Algorithm 2 (arbitrary batteries, tolerance 1).
type generalSolver struct{}

func (generalSolver) Name() string { return NameGeneral }

func (generalSolver) Validate(inst *instance.Instance, spec Spec) error {
	if err := rejectTolerance(NameGeneral, inst); err != nil {
		return err
	}
	return validateBudgets(inst, NameGeneral, false)
}

func (generalSolver) GuaranteedLifetime(inst *instance.Instance, spec Spec) int {
	return core.GeneralGuaranteedSlots(inst.Graph, inst.Budgets, spec.coreOptions(nil))
}

func (generalSolver) TruncK(*instance.Instance, Spec) int { return 1 }

func (generalSolver) Generate(inst *instance.Instance, spec Spec, src *rng.Source) *core.Schedule {
	return core.General(inst.Graph, inst.Budgets, spec.coreOptions(src))
}

// ftSolver is Algorithm 3 (uniform batteries, k-tolerant).
type ftSolver struct{}

func (ftSolver) Name() string { return NameFT }

func (ftSolver) Validate(inst *instance.Instance, spec Spec) error {
	return validateBudgets(inst, NameFT, true)
}

func (ftSolver) GuaranteedLifetime(inst *instance.Instance, spec Spec) int {
	return core.FaultTolerantGuarantee(inst.Graph, uniformBudget(inst.Budgets), inst.Tolerance(), spec.coreOptions(nil))
}

func (ftSolver) TruncK(inst *instance.Instance, _ Spec) int { return inst.Tolerance() }

func (ftSolver) Generate(inst *instance.Instance, spec Spec, src *rng.Source) *core.Schedule {
	return core.FaultTolerant(inst.Graph, uniformBudget(inst.Budgets), inst.Tolerance(), spec.coreOptions(src))
}

// generalFTSolver is the repo's general k-tolerant extension (see
// core.GeneralFaultTolerant; measured by experiment E14).
type generalFTSolver struct{}

func (generalFTSolver) Name() string { return NameGeneralFT }

func (generalFTSolver) Validate(inst *instance.Instance, spec Spec) error {
	return validateBudgets(inst, NameGeneralFT, false)
}

func (generalFTSolver) GuaranteedLifetime(inst *instance.Instance, spec Spec) int {
	return core.GeneralGuaranteedSlots(inst.Graph, inst.Budgets, spec.coreOptions(nil)) / inst.Tolerance()
}

func (generalFTSolver) TruncK(inst *instance.Instance, _ Spec) int { return inst.Tolerance() }

func (generalFTSolver) Generate(inst *instance.Instance, spec Spec, src *rng.Source) *core.Schedule {
	return core.GeneralFaultTolerant(inst.Graph, inst.Budgets, inst.Tolerance(), spec.coreOptions(src))
}
