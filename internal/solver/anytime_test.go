package solver

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
)

// hetInstance is the refiner workbench: a moderately dense GNP graph with
// heterogeneous batteries in [1, 20]. With uniform batteries the greedy
// baseline already sits on the min-degree bottleneck bound and local search
// has nothing to rebalance; battery skew is where move-based repair pays.
func hetInstance(t testing.TB, n int, seed uint64) *instance.Instance {
	t.Helper()
	src := rng.New(seed)
	p := 6 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	g := gen.GNP(n, p, src.Split())
	bsrc := src.Split()
	budgets := make([]int, n)
	for v := range budgets {
		budgets[v] = 1 + bsrc.Intn(20)
	}
	return instance.New(g, budgets)
}

// TestRefineDeterministic pins the seed contract of the refiners: the same
// (seed, budget) pair must reproduce a byte-identical schedule, and the
// result must validate under the driver's feasibility gate (Solve already
// gates internally; DeepEqual catches any nondeterminism in move order,
// policy state, or snapshotting).
func TestRefineDeterministic(t *testing.T) {
	in := hetInstance(t, 96, 11)
	for _, name := range []string{NameTabu, NameAnneal} {
		spec := Spec{Name: name, Base: NameGreedy}
		solveOnce := func() *core.Schedule {
			s, err := Solve(in, spec,
				Options{Tries: 3, Budget: 5000, Src: rng.New(42)})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return s
		}
		a, b := solveOnce(), solveOnce()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed+budget produced different schedules:\n%v\nvs\n%v", name, a, b)
		}
	}
}

// TestRefineNeverWorseThanBase is the anytime floor: whatever the budget,
// the refined schedule's lifetime is >= the greedy base it starts from
// (the engine returns its best snapshot, and the start is the first one).
func TestRefineNeverWorseThanBase(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		in := hetInstance(t, 64, seed)
		base, err := Solve(in, Spec{Name: NameGreedy}, Options{Src: rng.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{NameTabu, NameAnneal} {
			for _, budget := range []int{1, 100, 4000} {
				s, err := Solve(in, Spec{Name: name, Base: NameGreedy},
					Options{Tries: 1, Budget: budget, Src: rng.New(seed)})
				if err != nil {
					t.Fatalf("%s seed=%d budget=%d: %v", name, seed, budget, err)
				}
				if s.Lifetime() < base.Lifetime() {
					t.Errorf("%s seed=%d budget=%d: refined lifetime %d < base %d",
						name, seed, budget, s.Lifetime(), base.Lifetime())
				}
			}
		}
	}
}

// TestRefineImprovesFixture pins that the refiners actually buy lifetime on
// an instance with known slack: the seed-7 heterogeneous GNP instance, where
// both policies beat the greedy baseline at a 50k budget. A regression that
// silently turns the move engine into a no-op fails here.
func TestRefineImprovesFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-move refinement is slow")
	}
	in := hetInstance(t, 128, 7)
	base, err := Solve(in, Spec{Name: NameGreedy}, Options{Src: rng.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{NameTabu, NameAnneal} {
		s, err := Solve(in, Spec{Name: name, Base: NameGreedy},
			Options{Tries: 1, Budget: 50000, Src: rng.New(1)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Lifetime() <= base.Lifetime() {
			t.Errorf("%s: refined lifetime %d did not improve on greedy %d",
				name, s.Lifetime(), base.Lifetime())
		}
	}
}

// TestRefineMovesPreserveDomination is the white-box property test of the
// move engine: after every accepted move the live session must still be
// k-dominating, and its incremental state must agree with a from-scratch
// fold over the same member set — i.e. the Mark/Rollback bookkeeping leaves
// no residue. The observe hook fires inside refinePhase after each commit.
func TestRefineMovesPreserveDomination(t *testing.T) {
	for _, k := range []int{1, 2} {
		in := hetInstance(t, 48, uint64(13+k)).WithK(k)
		g, budgets := in.Graph, in.Budgets
		base, err := Solve(in, Spec{Name: NameGreedy}, Options{Src: rng.New(2)})
		if err != nil {
			t.Fatal(err)
		}
		ck := domset.NewChecker(g)
		fold := domset.NewChecker(g) // independent kernel for the cross-check
		moves := 0
		observe := func(sess *domset.Session) {
			moves++
			if !sess.IsKDominating() {
				t.Fatalf("k=%d: accepted move %d left a non-dominating set", k, moves)
			}
			members := sess.AppendMembers(nil)
			if !fold.IsKDominating(members, k, nil) {
				t.Fatalf("k=%d: session says k-dominating but a fresh fold over %v disagrees",
					k, members)
			}
		}
		rc := &Refinement{Budget: 3000, Src: rng.New(3), Checker: ck}
		out := refineSchedule(in, base, rc, NameTabu, newTabuPolicy(g.N(), 3000), observe)
		if moves == 0 {
			t.Fatalf("k=%d: the property test observed no accepted moves; fixture too easy", k)
		}
		if err := out.ValidateWith(domset.NewChecker(g), budgets, k); err != nil {
			t.Fatalf("k=%d: refined schedule invalid: %v", k, err)
		}
	}
}

// TestRefineCancelReturnsBestSoFar pins the anytime contract at the Refiner
// layer: a cancel that fires immediately returns the start schedule (the
// best seen), not an error and never something worse.
func TestRefineCancelReturnsBestSoFar(t *testing.T) {
	in := hetInstance(t, 64, 3)
	g, budgets := in.Graph, in.Budgets
	base, err := Solve(in, Spec{Name: NameGreedy}, Options{Src: rng.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{NameTabu, NameAnneal} {
		sv, err := Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		rf, ok := sv.(Refiner)
		if !ok {
			t.Fatalf("%s does not implement Refiner", name)
		}
		out := rf.Refine(in, base, Spec{Name: name, Base: NameGreedy}.normalize(),
			&Refinement{Budget: 50000, Cancel: func() bool { return true }, Src: rng.New(1)})
		if out.Lifetime() != base.Lifetime() {
			t.Errorf("%s: canceled-at-once refinement returned lifetime %d, want the start's %d",
				name, out.Lifetime(), base.Lifetime())
		}

		// A cancel firing after a bounded number of polls must still yield a
		// feasible schedule no worse than the start.
		polls := 0
		out = rf.Refine(in, base, Spec{Name: name, Base: NameGreedy}.normalize(),
			&Refinement{Budget: 50000, Cancel: func() bool { polls++; return polls > 500 }, Src: rng.New(1)})
		if out.Lifetime() < base.Lifetime() {
			t.Errorf("%s: mid-flight cancel returned lifetime %d < start %d",
				name, out.Lifetime(), base.Lifetime())
		}
		if err := out.ValidateWith(domset.NewChecker(g), budgets, 1); err != nil {
			t.Errorf("%s: mid-flight cancel schedule invalid: %v", name, err)
		}
	}
}

// TestRefineSpecRejections pins the composition rules of the redesigned
// driver: refiners do not stack, bases must exist, and only refiners accept
// a base at all.
func TestRefineSpecRejections(t *testing.T) {
	in := hetInstance(t, 16, 1)
	cases := []struct {
		name string
		spec Spec
	}{
		{"nested refiner", Spec{Name: NameTabu, Base: NameAnneal}},
		{"unknown base", Spec{Name: NameAnneal, Base: "nope"}},
		{"base on plain solver", Spec{Name: NameGreedy, Base: NameUniform}},
		{"base on randomized solver", Spec{Name: NameUniform, Base: NameGreedy}},
	}
	for _, tc := range cases {
		if _, err := Solve(in, tc.spec, Options{Src: rng.New(1)}); err == nil {
			t.Errorf("%s: Solve(%+v) succeeded, want error", tc.name, tc.spec)
		}
	}
}

// TestRefineEmitsRefineEvents pins the observability side: one obs.Refine
// event per improvement pass, tagged with the refiner's name.
func TestRefineEmitsRefineEvents(t *testing.T) {
	in := hetInstance(t, 48, 5)
	var tap refineTap
	_, err := Solve(in, Spec{Name: NameAnneal, Base: NameGreedy},
		Options{Tries: 1, Budget: 2000, Src: rng.New(1), Hooks: obs.Hooks{Trace: &tap}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tap.names) == 0 {
		t.Fatal("no refine events emitted")
	}
	for _, name := range tap.names {
		if name != NameAnneal {
			t.Fatalf("refine event named %q, want %q", name, NameAnneal)
		}
	}
}

// refineTap collects the Name field of every obs.Refine event it sees.
type refineTap struct{ names []string }

func (r *refineTap) Emit(ev obs.Event) {
	if ev.Type == obs.EvRefine {
		r.names = append(r.names, ev.Name)
	}
}
