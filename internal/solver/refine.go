package solver

import (
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/sched"
)

// pruneSolver is the first refinement pass registered behind the solver
// contract: it generates the greedy baseline schedule and then runs the
// sched.Squeeze pipeline over it — every phase is pruned to a minimal
// k-dominating subset by speculatively dropping redundant dominators on the
// domination kernel's incremental session (Flip, test, Rollback), and the
// freed budget is re-extended into additional phases. The lifetime is
// therefore >= greedy's by construction, which the registry test pins.
//
// It is deliberately minimal — a proof of the metaheuristic shape ROADMAP
// item 2 wants (local-search refiners running speculative moves against the
// session API) rather than a full local search.
type pruneSolver struct{}

func init() { Register(pruneSolver{}) }

func (pruneSolver) Name() string { return NamePrune }

func (pruneSolver) Validate(inst *instance.Instance, spec Spec) error {
	return validateBudgets(inst, NamePrune, false)
}

func (pruneSolver) GuaranteedLifetime(*instance.Instance, Spec) int { return 0 }

func (pruneSolver) TruncK(inst *instance.Instance, _ Spec) int { return inst.Tolerance() }

func (pruneSolver) Generate(inst *instance.Instance, spec Spec, _ *rng.Source) *core.Schedule {
	base := sched.Replan(inst.Graph, inst.Budgets, inst.Tolerance(), nil)
	return sched.Squeeze(inst.Graph, base, inst.Budgets, inst.Tolerance())
}
