// The auto portfolio solver: registry-level dispatch on the instance's
// verified structure. It is the second consumer of the typed instance
// model — callers (serve's `algorithm: "auto"`, ltsched/ltsim `-alg
// auto`) stop choosing algorithms per graph shape and let the
// classification decide:
//
//   - a certified Grid (or a Torus with both dimensions divisible by 5,
//     where the pattern closes seamlessly) at tolerance 1 routes to the
//     pattern-tiling "grid" solver;
//   - an instance small enough for the branch-and-bound optimum
//     (n <= exactNodeCap) routes to "exact";
//   - everything else routes to Spec.Fallback (default "greedy").
//
// The dispatch lives in Effective (solver.go) so the driver, refiner
// validation, and the serve layer all see one rule; autoSolver itself
// only adapts that rule to the Solver interface for registry uniformity.
package solver

import (
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/rng"
)

func init() { Register(autoSolver{}) }

// autoPick is the portfolio rule: the concrete registry name auto
// resolves to on this instance. Deterministic in the instance's Meta, so
// the same graph always dispatches the same way (which is what lets the
// serve layer cache auto requests under the requested name).
func autoPick(inst *instance.Instance, spec Spec) string {
	m := inst.Meta()
	// Grids always route to the tiling. Tori only when both dimensions are
	// divisible by 5: the diagonal pattern then closes seamlessly and the
	// rotation reaches the full 5b; on other tori the wrap seam leaks in
	// every translate and the repaired rotation can fall just short of the
	// greedy baseline, so the portfolio leaves those to the fallback.
	if inst.Tolerance() == 1 && (m.Class == instance.Grid ||
		(m.Class == instance.Torus && m.Rows%5 == 0 && m.Cols%5 == 0)) {
		return NameGrid
	}
	if inst.N() <= exactNodeCap {
		return NameExact
	}
	if spec.Fallback != "" {
		return spec.Fallback
	}
	return NameGreedy
}

// autoSolver adapts the portfolio to the Solver interface by delegating
// every method to the effective solver. The driver never actually calls
// these — Solve runs Effective up front and works with the concrete
// solver — but registry uniformity (Names, Resolve, serve's algorithm
// listing) wants a real entry.
type autoSolver struct{}

func (autoSolver) Name() string { return NameAuto }

func (autoSolver) Validate(inst *instance.Instance, spec Spec) error {
	eff, espec, err := Effective(inst, spec)
	if err != nil {
		return err
	}
	return eff.Validate(inst, espec)
}

func (autoSolver) GuaranteedLifetime(inst *instance.Instance, spec Spec) int {
	eff, espec, err := Effective(inst, spec)
	if err != nil {
		return 0
	}
	return eff.GuaranteedLifetime(inst, espec)
}

func (autoSolver) TruncK(inst *instance.Instance, spec Spec) int {
	eff, espec, err := Effective(inst, spec)
	if err != nil {
		return inst.Tolerance()
	}
	return eff.TruncK(inst, espec)
}

func (autoSolver) Generate(inst *instance.Instance, spec Spec, src *rng.Source) *core.Schedule {
	eff, espec, err := Effective(inst, spec)
	if err != nil {
		return &core.Schedule{} // Validate rejects this before any driver call
	}
	return eff.Generate(inst, espec, src)
}
