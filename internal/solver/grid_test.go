package solver_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/solver"
)

// gridInst builds a rows×cols grid instance with uniform budget b. No hint:
// the classifier must certify the structure from the graph alone.
func gridInst(rows, cols, b int) *instance.Instance {
	g := gen.Grid(rows, cols)
	return instance.New(g, uniformBudgets(g.N(), b))
}

// TestGridScheduleFeasibleAndStrong: on certified grids and tori the grid
// solver's phase-rotated tiling must be feasible (every phase dominates,
// usage within budgets — core.Schedule.Validate checks both) and at least
// as long-lived as the greedy baseline, which is what the tiling exists to
// beat by construction (five near-disjoint dominating translates).
func TestGridScheduleFeasibleAndStrong(t *testing.T) {
	cases := []struct {
		name string
		in   *instance.Instance
	}{
		{"grid 7x9", gridInst(7, 9, 6)},
		{"grid 12x12", gridInst(12, 12, 4)},
		{"torus 10x10", instance.New(gen.Torus(10, 10), uniformBudgets(100, 5))},
		{"torus 15x20", instance.New(gen.Torus(15, 20), uniformBudgets(300, 4))},
	}
	for _, tc := range cases {
		s, err := solver.Solve(tc.in, solver.Spec{Name: solver.NameGrid}, solver.Options{Src: rng.New(1)})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := s.Validate(tc.in.Graph, tc.in.Budgets, 1); err != nil {
			t.Fatalf("%s: infeasible schedule: %v", tc.name, err)
		}
		greedy, err := solver.Solve(tc.in, solver.Spec{Name: solver.NameGreedy}, solver.Options{Src: rng.New(1)})
		if err != nil {
			t.Fatalf("%s: greedy: %v", tc.name, err)
		}
		if s.Lifetime() < greedy.Lifetime() {
			t.Errorf("%s: grid lifetime %d < greedy %d", tc.name, s.Lifetime(), greedy.Lifetime())
		}
	}
}

// TestGridFallsBackOffGrid: requesting "grid" on a non-grid instance (or a
// k-tolerant one) must degrade to greedy recruitment, not fail or emit an
// invalid tiling.
func TestGridFallsBackOffGrid(t *testing.T) {
	gnp := instance.New(gen.GNP(60, 0.2, rng.New(7)), uniformBudgets(60, 4))
	s, err := solver.Solve(gnp, solver.Spec{Name: solver.NameGrid}, solver.Options{Src: rng.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(gnp.Graph, gnp.Budgets, 1); err != nil {
		t.Fatalf("off-grid fallback infeasible: %v", err)
	}

	tolerant := gridInst(8, 8, 4).WithK(2)
	s2, err := solver.Solve(tolerant, solver.Spec{Name: solver.NameGrid}, solver.Options{Src: rng.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(tolerant.Graph, tolerant.Budgets, 2); err != nil {
		t.Fatalf("k=2 fallback infeasible: %v", err)
	}
}

// TestAutoDispatch pins the portfolio rule at every branch: a certified
// grid (or mod-5 torus, where the pattern closes seamlessly) at tolerance 1
// → grid; leaky tori stay on the fallback; small instances → exact;
// everything else → the configured fallback (default greedy). The rule must
// also be what Effective reports, since serve and the CLIs surface that
// name.
func TestAutoDispatch(t *testing.T) {
	big := gridInst(50, 50, 3)
	cases := []struct {
		name string
		in   *instance.Instance
		spec solver.Spec
		want string
	}{
		{"50x50 grid", big, solver.Spec{Name: solver.NameAuto}, solver.NameGrid},
		{"mod-5 torus", instance.New(gen.Torus(10, 10), uniformBudgets(100, 3)), solver.Spec{Name: solver.NameAuto}, solver.NameGrid},
		{"leaky torus stays on fallback", instance.New(gen.Torus(9, 9), uniformBudgets(81, 3)), solver.Spec{Name: solver.NameAuto}, solver.NameGreedy},
		{"small ring", instance.New(gen.Ring(12), uniformBudgets(12, 2)), solver.Spec{Name: solver.NameAuto}, solver.NameExact},
		{"gnp default fallback", instance.New(gen.GNP(80, 0.15, rng.New(5)), uniformBudgets(80, 3)), solver.Spec{Name: solver.NameAuto}, solver.NameGreedy},
		{"gnp configured fallback", instance.New(gen.GNP(80, 0.15, rng.New(5)), uniformBudgets(80, 3)), solver.Spec{Name: solver.NameAuto, Fallback: solver.NameGeneral}, solver.NameGeneral},
		{"grid at k=2 skips tiling", gridInst(10, 10, 3).WithK(2), solver.Spec{Name: solver.NameAuto}, solver.NameGreedy},
	}
	for _, tc := range cases {
		_, eff, err := solver.Effective(tc.in, tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if eff.Name != tc.want {
			t.Errorf("%s: auto dispatched to %q, want %q", tc.name, eff.Name, tc.want)
		}
	}
}

// TestAutoSolvesLikeDispatchTarget: an auto solve must be feasible and, on
// structured instances, match the dispatch target's deterministic output.
func TestAutoSolvesLikeDispatchTarget(t *testing.T) {
	in := gridInst(20, 20, 4)
	auto, err := solver.Solve(in, solver.Spec{Name: solver.NameAuto}, solver.Options{Src: rng.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := solver.Solve(in, solver.Spec{Name: solver.NameGrid}, solver.Options{Src: rng.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Lifetime() != direct.Lifetime() {
		t.Fatalf("auto lifetime %d != grid lifetime %d on the same grid", auto.Lifetime(), direct.Lifetime())
	}
	if err := auto.Validate(in.Graph, in.Budgets, 1); err != nil {
		t.Fatalf("auto schedule infeasible: %v", err)
	}
}

// TestRefineRejectsGridFastPath: the grid tiling opts out of refiner
// composition, and the rejection must fire at Validate time — including
// when the non-refinable base is only reached through auto's dispatch — so
// the serve layer can turn it into a decode-time 400.
func TestRefineRejectsGridFastPath(t *testing.T) {
	gridIn := gridInst(15, 15, 3)
	for _, base := range []string{solver.NameGrid, solver.NameAuto} {
		sv, err := solver.Resolve(solver.NameTabu)
		if err != nil {
			t.Fatal(err)
		}
		err = sv.Validate(gridIn, solver.Spec{Name: solver.NameTabu, Base: base})
		if err == nil {
			t.Fatalf("refine over base %q accepted on a grid", base)
		}
		if !strings.Contains(err.Error(), "non-refinable") {
			t.Fatalf("base %q: error %q does not name the non-refinable fast path", base, err)
		}
	}

	// Off-grid, auto resolves to a refinable solver and the pipeline is fine.
	gnp := instance.New(gen.GNP(80, 0.15, rng.New(9)), uniformBudgets(80, 3))
	sv, err := solver.Resolve(solver.NameTabu)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Validate(gnp, solver.Spec{Name: solver.NameTabu, Base: solver.NameAuto}); err != nil {
		t.Fatalf("refine over auto→greedy rejected off-grid: %v", err)
	}
}

// TestAutoGridBeatsUniformOn50x50 is the PR's acceptance benchmark in test
// form. Uniform on a grid is bimodal. With its default color range the WHP
// guarantee (δ = 2) is a single color class, so its schedule is pinned at
// lifetime b: the first draw attains the guarantee and the solver stops
// instantly with a schedule less than half as long-lived as the tiling's —
// no retry budget changes that. The only configuration under which uniform
// even attempts a comparable lifetime is an aggressive color range
// (KConst < 1 asks for more classes per the paper's δ̂/(K ln n) count), and
// there every random class fails domination: the whole retry budget runs
// and delivers nothing. The tiling reads the grid's 5-class partition off
// the certified embedding in one deterministic pass, so auto must beat the
// searching arm on wall clock AND strictly on lifetime, while also
// matching-or-beating the instant arm's lifetime. The pinned headline
// margin (≥10x) lives in BENCH_PR10.json; the test asserts a generous 3x
// so slow CI machines stay green. Arms take the best of three runs (each
// auto run classifies a fresh instance, the cost a real request pays;
// graph construction is outside the clock), so a cold cache or GC pause
// cannot flip the comparison.
func TestAutoGridBeatsUniformOn50x50(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const uniformTries = 300
	g := gen.Grid(50, 50)
	budgets := uniformBudgets(g.N(), 3)
	minOf3 := func(f func()) time.Duration {
		best := time.Duration(1) << 62
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}

	var auto *core.Schedule
	var in *instance.Instance
	autoT := minOf3(func() {
		in = instance.New(g, budgets)
		var err error
		auto, err = solver.Solve(in, solver.Spec{Name: solver.NameAuto}, solver.Options{Src: rng.New(11)})
		if err != nil {
			t.Fatal(err)
		}
	})
	if err := auto.Validate(in.Graph, in.Budgets, 1); err != nil {
		t.Fatalf("auto schedule infeasible: %v", err)
	}

	instant, err := solver.Solve(in, solver.Spec{Name: solver.NameUniform},
		solver.Options{Tries: uniformTries, Src: rng.New(11)})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Lifetime() < instant.Lifetime() {
		t.Fatalf("auto lifetime %d < uniform's instant %d", auto.Lifetime(), instant.Lifetime())
	}

	var search *core.Schedule
	searchT := minOf3(func() {
		var err error
		search, err = solver.Solve(in, solver.Spec{Name: solver.NameUniform, KConst: 0.25},
			solver.Options{Tries: uniformTries, Src: rng.New(11)})
		if err != nil {
			t.Fatal(err)
		}
	})
	if auto.Lifetime() <= search.Lifetime() {
		t.Fatalf("auto lifetime %d does not beat uniform's %d-try search (%d)",
			auto.Lifetime(), uniformTries, search.Lifetime())
	}
	if autoT*3 > searchT {
		t.Fatalf("auto took %v, uniform search (K=0.25, tries=%d) %v; want at least 3x faster",
			autoT, uniformTries, searchT)
	}
}
