// The grid solver: pattern-based dominating-set tiling for instances
// whose structure detection certified a grid or torus embedding. It is
// the first consumer of the typed instance model's Meta — orders of
// magnitude faster than the WHP retry loop on those instances, because it
// never searches: the dominating sets are read off the embedding.
//
// The pattern is the classic one (used by Fata, Smith & Sundaram,
// "Distributed Dominating Sets on Grids"): the diagonal 5-coloring
// class(r, c) = (r + 2c) mod 5 partitions the infinite grid into five
// disjoint perfect dominating sets — every cell is adjacent (in the
// 4-neighborhood, including itself) to exactly one cell of each class.
// On a finite grid the pattern leaks at the boundary (a torus leaks at
// the wrap seam unless both dimensions are ≡ 0 mod 5), so each translate
// is repaired by greedily covering its undominated cells with the
// richest-residual closed neighbor. The schedule phase-rotates across the
// five repaired translates — each phase runs as long as its weakest
// member's residual battery allows — and finally pours any leftover
// budget into greedy phases, so the lifetime approaches 5b on uniform
// budget b (within a boundary-repair term) against the n/5-node optimum
// per phase.
package solver

import (
	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/sched"
)

const gridTranslates = 5

func init() { Register(gridSolver{}) }

// gridSolver is the registry adapter. Off-grid instances (or k-tolerant
// ones — the 5-coloring is a 1-domination pattern) fall back to the
// greedy baseline, so "grid" is always safe to request; the auto
// portfolio only routes to it when the fast path actually applies.
type gridSolver struct{}

func (gridSolver) Name() string { return NameGrid }

func (gridSolver) Validate(inst *instance.Instance, spec Spec) error {
	return validateBudgets(inst, NameGrid, false)
}

func (gridSolver) GuaranteedLifetime(*instance.Instance, Spec) int { return 0 }

func (gridSolver) TruncK(inst *instance.Instance, _ Spec) int { return inst.Tolerance() }

// RefinableBase opts the grid solver out of refiner composition: its
// schedules are deterministic pattern tilings already within a boundary
// term of optimal, and the anytime refiners' swap moves would only churn
// them. The serve layer turns this into a decode-time 400 for
// refine+grid pipelines.
func (gridSolver) RefinableBase() bool { return false }

func (gridSolver) Generate(inst *instance.Instance, spec Spec, _ *rng.Source) *core.Schedule {
	m := inst.Meta()
	if (m.Class == instance.Grid || m.Class == instance.Torus) && inst.Tolerance() == 1 {
		return gridSchedule(inst, m)
	}
	return sched.Replan(inst.Graph, inst.Budgets, inst.Tolerance(), nil)
}

// gridSchedule builds the phase-rotated 5-translate schedule from the
// instance's certified embedding. Deterministic: no randomness anywhere.
//
// Each phase runs ONE slot of one translate: long phases would let the
// boundary repairs — which borrow cells from the other four translates —
// drain whole neighborhoods before their own translate gets a turn, and a
// single unrepairable hole voids an entire translate. Slot-by-slot
// rotation spreads the repair drain one unit at a time across the
// richest-residual neighbors, so the rotation degrades at the very end of
// the battery horizon instead of collapsing after the first translate.
func gridSchedule(inst *instance.Instance, m *instance.Meta) *core.Schedule {
	g := inst.Graph
	n := g.N()
	residual := append([]int(nil), inst.Budgets...)
	class := make([]int8, n)
	for v := 0; v < n; v++ {
		r, c := int(m.Coords[v])/m.Cols, int(m.Coords[v])%m.Cols
		class[v] = int8((r + 2*c) % gridTranslates)
	}

	s := &core.Schedule{}

	// One persistent incremental session per translate (a Checker owns a
	// single session, hence five checkers): the initial O(n+m) fold is
	// paid once per translate, and each cycle only flips the handful of
	// cells that died or got rebalanced — O(changes · deg), not O(n+m).
	// Sparse checkers: sessions run on adjacency walks, and the dense
	// row build would cost more than the whole rotation.
	type translate struct {
		sess    *domset.Session
		repairs []int // current off-class members, rebalanced every cycle
		dead    bool  // an unrepairable hole is permanent: residuals only fall
	}
	ts := make([]translate, gridTranslates)
	set := make([]int, 0, n/gridTranslates+4)
	for t := range ts {
		set = set[:0]
		for v := 0; v < n; v++ {
			if class[v] == int8(t) && residual[v] > 0 {
				set = append(set, v)
			}
		}
		ts[t].sess = domset.NewSparseChecker(g).Begin(set, 1, nil)
	}

	var members, holes []int
	// repair covers every undominated cell with the richest-residual
	// non-member of its closed neighborhood, spreading the boundary drain
	// across translates; false means some hole's neighborhood is fully
	// drained and the translate is unusable.
	repair := func(tr *translate) bool {
		holes = tr.sess.AppendUndominated(holes[:0])
		for _, v := range holes {
			if tr.sess.Dominators(v) > 0 {
				continue // an earlier repair covered it
			}
			best, bestR := -1, 0
			if residual[v] > 0 && !tr.sess.Contains(v) {
				best, bestR = v, residual[v]
			}
			for _, w32 := range g.Neighbors(v) {
				if w := int(w32); !tr.sess.Contains(w) && residual[w] > bestR {
					best, bestR = w, residual[w]
				}
			}
			if best == -1 {
				return false
			}
			tr.sess.Flip(best)
			tr.repairs = append(tr.repairs, best)
		}
		return tr.sess.IsKDominating()
	}

	for progressed := true; progressed; {
		progressed = false
		for t := range ts {
			tr := &ts[t]
			if tr.dead {
				continue
			}
			// Another translate's repairs may have drained our members
			// since our last turn; drop them before covering holes.
			members = tr.sess.AppendMembers(members[:0])
			for _, v := range members {
				if residual[v] <= 0 {
					tr.sess.Flip(v)
				}
			}
			if !repair(tr) {
				tr.dead = true
				continue
			}
			members = tr.sess.AppendMembers(members[:0])
			if len(members) == 0 {
				tr.dead = true
				continue
			}
			for _, v := range members {
				residual[v]--
			}
			s.Phases = append(s.Phases, core.Phase{
				Set: append([]int(nil), members...), Duration: 1,
			})
			progressed = true
			// Drop drained members, then release surviving repairs so the
			// next cycle re-picks the richest boundary neighbors instead
			// of grinding the same cells down.
			for _, v := range members {
				if residual[v] == 0 {
					tr.sess.Flip(v)
				}
			}
			for _, v := range tr.repairs {
				if tr.sess.Contains(v) {
					tr.sess.Flip(v)
				}
			}
			tr.repairs = tr.repairs[:0]
		}
	}

	// Pour whatever the rotation left behind (boundary-repair residue,
	// uneven budgets) into greedy phases — but only when the surviving
	// cells can still dominate at all. A dominating set needs at least
	// n/(Δ+1) nodes, and the rotation usually drains well below that, so
	// the size bound short-circuits the O(n+m) dominating-set check (which
	// itself short-circuits an unconditional Replan costing more than the
	// whole rotation).
	set = set[:0]
	maxDeg := 0
	for v := 0; v < n; v++ {
		if residual[v] > 0 {
			set = append(set, v)
		}
		if d := len(g.Neighbors(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if len(set)*(maxDeg+1) >= n && domset.IsKDominating(g, set, 1, nil) {
		if rest := sched.Replan(g, residual, 1, nil); len(rest.Phases) > 0 {
			s.Phases = append(s.Phases, rest.Phases...)
		}
	}
	return s
}
