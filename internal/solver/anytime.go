// Anytime local-search refiners: registry solvers that start from another
// solver's schedule and improve it under a deterministic candidate-move
// budget. This is ROADMAP item 2, unblocked by the PR 7 incremental
// domination kernel: every candidate move is a speculative
// Flip/IsKDominating probe on a domset.Session — O(deg) to try, O(deg) to
// undo via Mark/Rollback — instead of the full re-fold a trial copy pays.
//
// The move set, per phase of the schedule:
//
//   - removal: drop a redundant dominator, refunding duration x 1 battery;
//   - swap: replace a battery-scarce dominator with a rich non-member that
//     can afford the slot (the stepwise feasibility-preserving exchange of
//     the reconfiguration literature);
//   - extension: after each pass, pour the refunded budget back into
//     lifetime — greedy phases over the residual (sched.Extend's shape),
//     then stretch existing phases as far as their weakest member allows.
//
// tabu and anneal share the engine and differ only in the acceptance
// policy: tabu admits non-worsening swaps and holds recently-removed nodes
// out for a tenure; anneal accepts worsening swaps with probability
// exp(-delta/T) under a budget-indexed geometric cooling schedule. Both
// return the best schedule seen, so the refined lifetime is >= the starting
// lifetime by construction, and both draw every random choice from the
// caller's rng.Source — same seed + same budget means a byte-identical
// schedule.
package solver

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
)

// DefaultRefineBudget is the candidate-move budget a refiner runs under
// when Options.Budget is unset. Moves cost O(deg), so the default keeps
// unconfigured refinement in the same cost band as a WHP retry loop.
const DefaultRefineBudget = 20000

// Refiner is the anytime capability a registered solver may implement on
// top of Solver: the driver then composes a "base + refine" pipeline —
// the WHP retry loop runs the base solver named by Spec.Base first, and
// Refine improves its schedule under the Refinement contract.
type Refiner interface {
	Solver
	// BaseSpec returns the spec of the base solver Refine starts from,
	// derived from the refiner's own spec (empty Base means greedy).
	BaseSpec(spec Spec) Spec
	// Refine improves start under rc's budget contract and returns the
	// best schedule seen — never worse than start. A fired rc.Cancel stops
	// the search and returns that best (the anytime contract); it is not
	// an error at this layer.
	Refine(inst *instance.Instance, start *core.Schedule, spec Spec, rc *Refinement) *core.Schedule
}

// Refinement is the budget contract the driver hands to Refiner.Refine.
type Refinement struct {
	// Budget bounds the candidate moves the search may charge. <= 0 means
	// DefaultRefineBudget.
	Budget int
	// Cancel, when non-nil, is the sticky wall-clock/cooperative poll;
	// once it fires the search returns its best schedule so far.
	Cancel func() bool
	// Src drives every random choice. Nil means rng.New(1).
	Src *rng.Source
	// Hooks receives one obs.Refine event per improvement pass.
	Hooks obs.Hooks
	// Checker, when non-nil, is the shared domination kernel over the
	// instance's graph (the driver reuses its own). Nil allocates one.
	Checker *domset.Checker
}

// movePolicy is the acceptance policy that distinguishes tabu from anneal.
// The engine proposes; the policy disposes.
type movePolicy interface {
	// admitAdd reports whether u may (re)enter a dominating set at
	// iteration it — the tabu check.
	admitAdd(u, it int) bool
	// noteLeave records that v left a set at iteration it.
	noteLeave(v, it int)
	// acceptSwap decides a feasible swap with scarcity delta d (< 0
	// improves the battery balance).
	acceptSwap(d float64, it int, src *rng.Source) bool
}

// tabuPolicy holds each removed node out of the dominating sets for a
// fixed tenure of iterations, preventing remove/re-add cycling, and admits
// only non-worsening swaps.
type tabuPolicy struct {
	tenure int
	until  []int // per-node iteration before which re-adding is tabu
}

func newTabuPolicy(n, _ int) movePolicy {
	return &tabuPolicy{tenure: 7 + n/32, until: make([]int, n)}
}

func (p *tabuPolicy) admitAdd(u, it int) bool { return it >= p.until[u] }
func (p *tabuPolicy) noteLeave(v, it int)     { p.until[v] = it + p.tenure }
func (p *tabuPolicy) acceptSwap(d float64, _ int, _ *rng.Source) bool { return d <= 0 }

// annealPolicy accepts worsening swaps with probability exp(-d/T), cooling
// T geometrically from t0 to t1 as the iteration count approaches the
// budget — so the cooling schedule is indexed by spent budget, not wall
// clock, and a fixed (seed, budget) pair replays identically.
type annealPolicy struct {
	t0, t1 float64
	budget int
}

func newAnnealPolicy(_, budget int) movePolicy {
	return &annealPolicy{t0: 0.2, t1: 0.005, budget: budget}
}

func (p *annealPolicy) admitAdd(int, int) bool { return true }
func (p *annealPolicy) noteLeave(int, int)     {}
func (p *annealPolicy) acceptSwap(d float64, it int, src *rng.Source) bool {
	if d <= 0 {
		return true
	}
	t := p.t0 * math.Pow(p.t1/p.t0, float64(it)/float64(p.budget))
	return src.Float64() < math.Exp(-d/t)
}

// anytimeSolver adapts the shared engine to the registry contract, once
// per policy.
type anytimeSolver struct {
	nm     string
	policy func(n, budget int) movePolicy
}

func init() {
	Register(anytimeSolver{nm: NameTabu, policy: newTabuPolicy})
	Register(anytimeSolver{nm: NameAnneal, policy: newAnnealPolicy})
}

func (s anytimeSolver) Name() string { return s.nm }

func (s anytimeSolver) BaseSpec(spec Spec) Spec {
	base := spec.Base
	if base == "" {
		base = NameGreedy
	}
	return Spec{Name: base, KConst: spec.KConst, Fallback: spec.Fallback}
}

// Validate resolves the base solver through the auto portfolio dispatch,
// so a base of "auto" is checked against what auto actually picks on this
// instance — and rejected when that pick is a non-refinable fast path
// (the grid tiling solver): refining a deterministic pattern schedule is
// a pipeline error the serve layer must surface at decode time, not a
// cache-keyed solve attempt.
func (s anytimeSolver) Validate(inst *instance.Instance, spec Spec) error {
	if err := validateBudgets(inst, s.nm, false); err != nil {
		return err
	}
	base, bspec, err := Effective(inst, s.BaseSpec(spec))
	if err != nil {
		return fmt.Errorf("solver: %s: invalid base: %w", s.nm, err)
	}
	if _, nested := base.(Refiner); nested {
		return fmt.Errorf("solver: %s: base solver %q is itself a refiner; refiners do not stack", s.nm, bspec.Name)
	}
	if !refinableBase(base) {
		return fmt.Errorf("solver: %s: base solver %q is a non-refinable fast path (its schedules are deterministic pattern tilings); drop the refine stage or pick a refinable base", s.nm, bspec.Name)
	}
	return base.Validate(inst, bspec)
}

// GuaranteedLifetime is 0: refiners carry no w.h.p. bound of their own
// (the base loop early-stops on the base solver's guarantee instead).
func (s anytimeSolver) GuaranteedLifetime(*instance.Instance, Spec) int { return 0 }

func (s anytimeSolver) TruncK(inst *instance.Instance, _ Spec) int { return inst.Tolerance() }

// Generate makes the refiner usable as a plain Solver (one base draw plus
// a default-budget refinement); the driver normally intercepts before this
// and runs the base WHP loop + Refine pipeline itself.
func (s anytimeSolver) Generate(inst *instance.Instance, spec Spec, src *rng.Source) *core.Schedule {
	base, bspec, err := Effective(inst, s.BaseSpec(spec))
	if err != nil {
		return &core.Schedule{} // Validate rejects this before the driver gets here
	}
	ck := domset.NewChecker(inst.Graph)
	start := base.Generate(inst, bspec, src).TruncateInvalidWith(ck, base.TruncK(inst, bspec))
	return s.Refine(inst, start, spec, &Refinement{Src: src, Checker: ck})
}

func (s anytimeSolver) Refine(inst *instance.Instance, start *core.Schedule, spec Spec, rc *Refinement) *core.Schedule {
	budget := rc.Budget
	if budget <= 0 {
		budget = DefaultRefineBudget
	}
	return refineSchedule(inst, start, rc, s.nm, s.policy(inst.N(), budget), nil)
}

// refineState is the mutable search state: the working schedule as
// parallel set/duration slices plus the per-node residual budgets, kept
// incrementally consistent across moves so no pass ever recomputes usage.
type refineState struct {
	sets     [][]int
	durs     []int
	residual []int
	it       int // candidate moves charged so far
	budget   int
	cancel   func() bool
}

func (st *refineState) exhausted() bool {
	return st.it >= st.budget || (st.cancel != nil && st.cancel())
}

func (st *refineState) lifetime() int {
	total := 0
	for _, d := range st.durs {
		total += d
	}
	return total
}

// snapshot clones the working schedule (dropping zero-duration phases).
func (st *refineState) snapshot() *core.Schedule {
	out := &core.Schedule{}
	for p, set := range st.sets {
		if st.durs[p] <= 0 || len(set) == 0 {
			continue
		}
		out.Phases = append(out.Phases, core.Phase{
			Set:      append([]int(nil), set...),
			Duration: st.durs[p],
		})
	}
	return out
}

// refineSchedule is the engine shared by tabu and anneal. observe, when
// non-nil, fires with the live session after every accepted in-phase move
// — the property-test hook asserting accepted moves preserve k-domination.
func refineSchedule(inst *instance.Instance, start *core.Schedule,
	rc *Refinement, name string, pol movePolicy, observe func(*domset.Session)) *core.Schedule {
	g, budgets := inst.Graph, inst.Budgets
	src := rc.Src
	if src == nil {
		src = rng.New(1)
	}
	ck := rc.Checker
	if ck == nil {
		ck = domset.NewChecker(g)
	}
	budget := rc.Budget
	if budget <= 0 {
		budget = DefaultRefineBudget
	}
	k := inst.Tolerance()

	st := &refineState{
		durs:     make([]int, 0, len(start.Phases)),
		residual: append([]int(nil), budgets...),
		budget:   budget,
		cancel:   rc.Cancel,
	}
	for _, p := range start.Phases {
		st.sets = append(st.sets, append([]int(nil), p.Set...))
		st.durs = append(st.durs, p.Duration)
		for _, v := range p.Set {
			st.residual[v] -= p.Duration
		}
	}
	for _, r := range st.residual {
		if r < 0 {
			// The start overdraws a battery — not a schedule this search
			// can reason about incrementally. Hand it back untouched; the
			// driver's ValidateWith gate reports it.
			return start
		}
	}

	best := st.snapshot()
	bestLife := best.Lifetime()

	for pass := 0; !st.exhausted(); pass++ {
		for p := range st.sets {
			if st.exhausted() {
				break
			}
			st.refinePhase(g, ck, k, p, pol, src, observe)
		}
		st.extend(g, ck, k)
		st.stretch()
		if life := st.lifetime(); life > bestLife {
			best = st.snapshot()
			bestLife = life
		}
		rc.Hooks.Emit(obs.Refine(name, pass, st.lifetime(), bestLife))
	}
	return best
}

// refinePhase runs one removal sweep and one swap sweep over phase p on a
// fresh incremental session. Every probe — accepted or rejected — charges
// one unit of budget.
func (st *refineState) refinePhase(g *graph.Graph, ck *domset.Checker, k, p int,
	pol movePolicy, src *rng.Source, observe func(*domset.Session)) {
	if st.durs[p] <= 0 || len(st.sets[p]) == 0 {
		return
	}
	sess := ck.Begin(st.sets[p], k, nil)
	if !sess.IsKDominating() {
		return // defensive: the driver only refines validated schedules
	}
	dur := st.durs[p]

	// Removal sweep: members in random order, so successive passes explore
	// different minimal subsets (the fixed degree order of sched.Minimalize
	// always lands on the same one).
	order := sess.AppendMembers(nil)
	src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, v := range order {
		if st.exhausted() {
			break
		}
		st.it++
		m := sess.Mark()
		sess.Flip(v)
		if sess.IsKDominating() {
			sess.Commit()
			pol.noteLeave(v, st.it)
			st.residual[v] += dur
			if observe != nil {
				observe(sess)
			}
		} else {
			sess.Rollback(m)
		}
	}

	// Swap sweep: move the slot's load off battery-scarce dominators onto
	// rich non-members that can afford it. Feasibility is checked by the
	// session (flip out, flip in, probe, rollback on failure); desirability
	// by the policy on the scarcity delta.
	cur := sess.AppendMembers(nil)
	attempts := 2 * len(cur)
	if attempts < 8 {
		attempts = 8
	}
	for a := 0; a < attempts && !st.exhausted(); a++ {
		st.it++
		if len(cur) == 0 || g.N() <= 1 {
			break
		}
		vi := src.Intn(len(cur))
		v := cur[vi]
		u := src.Intn(g.N())
		if u == v || sess.Contains(u) || st.residual[u] < dur || !pol.admitAdd(u, st.it) {
			continue
		}
		// After the swap, u serves this slot at residual[u]-dur while v is
		// freed back to residual[v]+dur; prefer the assignment that leaves
		// the serving node richer.
		d := scarcity(st.residual[u]-dur) - scarcity(st.residual[v]+dur)
		if !pol.acceptSwap(d, st.it, src) {
			continue
		}
		m := sess.Mark()
		sess.Flip(v)
		sess.Flip(u)
		if !sess.IsKDominating() {
			sess.Rollback(m)
			continue
		}
		sess.Commit()
		pol.noteLeave(v, st.it)
		st.residual[v] += dur
		st.residual[u] -= dur
		cur[vi] = u
		if observe != nil {
			observe(sess)
		}
	}

	st.sets[p] = sess.AppendMembers(st.sets[p][:0])
}

// scarcity is the pressure of leaving a node at residual budget r: high
// when the battery is nearly drained, vanishing when plentiful.
func scarcity(r int) float64 { return 1 / float64(1+r) }

// extend pours refunded budget back into lifetime: greedy k-dominating
// phases over the nodes with positive residual, each running as long as
// its weakest member allows (sched.Extend's loop, kept local so the
// engine's residual bookkeeping stays incremental). One budget unit per
// extraction attempt.
func (st *refineState) extend(g *graph.Graph, ck *domset.Checker, k int) {
	n := g.N()
	for !st.exhausted() {
		st.it++
		allowed := make([]bool, n)
		any := false
		for v, r := range st.residual {
			if r > 0 {
				allowed[v] = true
				any = true
			}
		}
		if !any {
			return
		}
		set := domset.GreedyK(g, k, allowed, nil)
		if set == nil {
			return
		}
		dur := -1
		for _, v := range set {
			if dur == -1 || st.residual[v] < dur {
				dur = st.residual[v]
			}
		}
		if dur <= 0 {
			return
		}
		for _, v := range set {
			st.residual[v] -= dur
		}
		st.sets = append(st.sets, set)
		st.durs = append(st.durs, dur)
	}
}

// stretch lengthens existing phases by whatever their weakest member still
// has — the residue extend could not turn into a full new phase.
func (st *refineState) stretch() {
	for p, set := range st.sets {
		if st.exhausted() {
			return
		}
		if st.durs[p] <= 0 || len(set) == 0 {
			continue
		}
		d := -1
		for _, v := range set {
			if d == -1 || st.residual[v] < d {
				d = st.residual[v]
			}
		}
		if d <= 0 {
			continue
		}
		st.it++
		st.durs[p] += d
		for _, v := range set {
			st.residual[v] -= d
		}
	}
}
