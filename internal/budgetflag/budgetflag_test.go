package budgetflag

import (
	"bytes"
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/solver"
)

// newSet returns a silent FlagSet wired through Register, the way every cmd
// installs the budget contract.
func newSet() (*flag.FlagSet, *Flags) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	return fs, Register(fs)
}

func TestParseCanonicalFlags(t *testing.T) {
	fs, f := newSet()
	if err := fs.Parse([]string{"-budget", "5000", "-deadline", "250ms"}); err != nil {
		t.Fatal(err)
	}
	if f.Budget != 5000 || f.Deadline != 250*time.Millisecond {
		t.Fatalf("parsed %+v, want budget 5000 deadline 250ms", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
}

func TestDefaultsAreZero(t *testing.T) {
	fs, f := newSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Budget != 0 || f.Deadline != 0 {
		t.Fatalf("defaults %+v, want zero budget and deadline", f)
	}
	var opt solver.Options
	f.Apply(&opt, time.Now())
	if opt.Budget != 0 || !opt.Deadline.IsZero() {
		t.Fatalf("zero contract stamped %+v, want untouched options", opt)
	}
}

// TestLegacySpellingsRejectWithRedirect: the ad-hoc spellings older tools
// use must fail the parse with a pointer to the canonical flag, not fall
// through as "flag provided but not defined".
func TestLegacySpellingsRejectWithRedirect(t *testing.T) {
	cases := []struct {
		args []string
		want string // canonical flag the error must point at
	}{
		{[]string{"-iters", "100"}, "-budget"},
		{[]string{"-iterations", "100"}, "-budget"},
		{[]string{"-time-budget", "1s"}, "-deadline"},
		{[]string{"-time-limit", "1s"}, "-deadline"},
		{[]string{"-budget-ms", "100"}, "-budget"},
		{[]string{"-deadline-ms", "100"}, "-deadline"},
	}
	for _, tc := range cases {
		fs, _ := newSet()
		err := fs.Parse(tc.args)
		if err == nil {
			t.Errorf("%v: accepted", tc.args)
			continue
		}
		if strings.Contains(err.Error(), "not defined") {
			t.Errorf("%v: fell through to an undefined-flag error: %v", tc.args, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: error %q does not redirect to %s", tc.args, err, tc.want)
		}
	}
}

func TestValidateRejectsNegatives(t *testing.T) {
	if err := (&Flags{Budget: -1}).Validate(); err == nil || !strings.Contains(err.Error(), "-budget") {
		t.Errorf("negative budget: err = %v", err)
	}
	if err := (&Flags{Deadline: -time.Second}).Validate(); err == nil || !strings.Contains(err.Error(), "-deadline") {
		t.Errorf("negative deadline: err = %v", err)
	}
}

// TestApplyDeadlineInteraction: the iteration budget lands verbatim, and a
// non-zero deadline becomes the absolute bound now + Deadline — independent
// knobs, so setting one never disturbs the other.
func TestApplyDeadlineInteraction(t *testing.T) {
	now := time.Unix(1000, 0)
	var opt solver.Options
	(&Flags{Budget: 42}).Apply(&opt, now)
	if opt.Budget != 42 || !opt.Deadline.IsZero() {
		t.Fatalf("budget-only contract stamped %+v", opt)
	}

	opt = solver.Options{}
	(&Flags{Deadline: 3 * time.Second}).Apply(&opt, now)
	if opt.Budget != 0 || !opt.Deadline.Equal(now.Add(3*time.Second)) {
		t.Fatalf("deadline-only contract stamped %+v", opt)
	}

	// Re-applying overwrites the budget but leaves a previously stamped
	// deadline alone when the new contract has none: callers re-stamp with
	// the same Flags value, so zero means "no opinion", not "clear".
	(&Flags{Budget: 7}).Apply(&opt, now.Add(time.Minute))
	if opt.Budget != 7 || !opt.Deadline.Equal(now.Add(3*time.Second)) {
		t.Fatalf("re-applied contract stamped %+v", opt)
	}
}
