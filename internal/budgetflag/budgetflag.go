// Package budgetflag is the single parser of the solver budget contract
// across the cmds: ltsched, ltsim, ltserve, and ltbench all accept the same
// two flags — -budget (refinement candidate-move budget, in iterations) and
// -deadline (wall-clock budget, as a Go duration) — registered through one
// helper, so the spelling, defaults, and help text can never drift apart
// again. The ad-hoc spellings older tools in this space use (-iters,
// -iterations, -time-budget, -time-limit, -budget-ms, -deadline-ms) are
// registered as rejection stubs that fail parsing with a pointer to the
// canonical flag instead of being silently unknown.
package budgetflag

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/solver"
)

// Flags is the parsed budget contract of one cmd invocation.
type Flags struct {
	// Budget is the candidate-move budget of the refinement solvers
	// (tabu, anneal). 0 means the solver default; ignored by non-refining
	// algorithms.
	Budget int
	// Deadline is the wall-clock budget of one solve. 0 means none.
	Deadline time.Duration
}

// Register installs -budget and -deadline on fs and returns the value
// struct they parse into, alongside rejection stubs for the legacy
// spellings.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Budget, "budget", 0,
		"refinement iteration budget for tabu/anneal solvers (0 = solver default)")
	fs.DurationVar(&f.Deadline, "deadline", 0,
		"wall-clock budget per solve, e.g. 200ms or 2s (0 = none)")
	for _, r := range []rejected{
		{"iters", "-budget"},
		{"iterations", "-budget"},
		{"time-budget", "-deadline"},
		{"time-limit", "-deadline"},
		{"budget-ms", "-budget (iterations) or -deadline (wall clock)"},
		{"deadline-ms", "-deadline (a duration, e.g. 200ms)"},
	} {
		fs.Var(r, r.old, fmt.Sprintf("rejected; use %s", r.use))
	}
	return f
}

// rejected is a flag.Value that always fails with a redirect, so a user
// reaching for a familiar ad-hoc spelling gets the canonical one instead of
// "flag provided but not defined".
type rejected struct{ old, use string }

func (r rejected) String() string { return "" }
func (r rejected) Set(string) error {
	return fmt.Errorf("-%s is not a flag of this tool; use %s", r.old, r.use)
}

// Validate rejects negative values with actionable errors.
func (f *Flags) Validate() error {
	if f.Budget < 0 {
		return fmt.Errorf("-budget %d must be >= 0 (0 = solver default)", f.Budget)
	}
	if f.Deadline < 0 {
		return fmt.Errorf("-deadline %v must be >= 0 (0 = none)", f.Deadline)
	}
	return nil
}

// Apply stamps the contract into opt: the iteration budget directly, and a
// non-zero deadline as the absolute wall-clock bound now + Deadline.
func (f *Flags) Apply(opt *solver.Options, now time.Time) {
	opt.Budget = f.Budget
	if f.Deadline > 0 {
		opt.Deadline = now.Add(f.Deadline)
	}
}
