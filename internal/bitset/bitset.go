// Package bitset implements dense word-packed bit sets over [0, n). It is
// the storage layer of the allocation-free domination kernel (package
// domset): closed neighborhoods, candidate memberships, and coverage levels
// are all Sets, so a coverage decision is a handful of word-wide AND/OR/
// popcount passes instead of a per-node adjacency walk.
//
// All binary operations require both operands to have the same length and
// maintain the invariant that bits at positions >= Len() are zero, so Count
// and word-level comparisons never need tail masking.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-length bit set over positions [0, Len()). The zero value is
// an empty zero-length set; use New for anything useful.
type Set struct {
	words []uint64
	n     int
}

// WordsFor returns the number of 64-bit words a set of length n occupies.
func WordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// New returns a set of length n with all bits clear. It panics if n < 0.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{words: make([]uint64, WordsFor(n)), n: n}
}

// Len returns the length of the set (number of addressable positions).
func (s *Set) Len() int { return s.n }

// Words exposes the backing words for kernel loops. Bits >= Len() must be
// kept zero by callers that write through this slice.
func (s *Set) Words() []uint64 { return s.words }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: position %d out of range [0, %d)", i, s.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Toggle flips bit i and reports whether it is set afterwards — the
// single-word membership flip of the incremental domination session.
func (s *Set) Toggle(i int) bool {
	s.check(i)
	s.words[i>>6] ^= 1 << uint(i&63)
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Reset clears every bit. The compiler lowers the loop to memclr, so a reset
// costs O(n/64) with no allocation — the reuse primitive of the kernel.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit in [0, Len()), keeping tail bits zero.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
}

// maskTail zeroes the bits of the last word at positions >= n.
func (s *Set) maskTail() {
	if rem := s.n & 63; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits (population count).
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

func (s *Set) sameLen(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: length mismatch %d != %d", s.n, o.n))
	}
}

// CopyFrom overwrites s with the contents of o.
func (s *Set) CopyFrom(o *Set) {
	s.sameLen(o)
	copy(s.words, o.words)
}

// UnionWith sets s to s ∪ o — the union-into-scratch primitive.
func (s *Set) UnionWith(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s to s ∩ o.
func (s *Set) IntersectWith(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndNot sets s to s \ o.
func (s *Set) AndNot(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// AndCount returns |s ∩ o| without modifying either set.
func (s *Set) AndCount(o *Set) int {
	s.sameLen(o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// AndNotCount returns |s \ o| without modifying either set.
func (s *Set) AndNotCount(o *Set) int {
	s.sameLen(o)
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(s.words[i] &^ w)
	}
	return c
}

// SubsetOf reports whether s ⊆ o, short-circuiting on the first word with a
// bit of s outside o.
func (s *Set) SubsetOf(o *Set) bool {
	s.sameLen(o)
	for i, w := range o.words {
		if s.words[i]&^w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o have the same length and bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendBits appends the positions of the set bits to dst in ascending order
// and returns the extended slice. With a pre-grown dst this allocates
// nothing.
func (s *Set) AppendBits(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			dst = append(dst, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}
