package bitset

import (
	"testing"
)

func TestSetClearTest(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		s := New(n)
		for i := 0; i < n; i++ {
			if s.Test(i) {
				t.Fatalf("n=%d: fresh set has bit %d", n, i)
			}
		}
		s.Set(0)
		s.Set(n - 1)
		if !s.Test(0) || !s.Test(n-1) {
			t.Fatalf("n=%d: boundary bits not set", n)
		}
		want := 2
		if n == 1 {
			want = 1 // bit 0 and bit n-1 coincide
		}
		if got := s.Count(); got != want {
			t.Fatalf("n=%d: count = %d, want %d", n, got, want)
		}
		s.Clear(n - 1)
		if s.Test(n-1) || s.Count() != want-1 {
			t.Fatalf("n=%d: clear failed", n)
		}
	}
}

func TestToggle(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		s := New(n)
		ref := make([]bool, n)
		for i := 0; i < 4*n; i++ {
			v := (i * 7) % n
			ref[v] = !ref[v]
			if got := s.Toggle(v); got != ref[v] {
				t.Fatalf("n=%d: Toggle(%d) = %v, want %v", n, v, got, ref[v])
			}
			if s.Test(v) != ref[v] {
				t.Fatalf("n=%d: Test(%d) after toggle = %v, want %v", n, v, s.Test(v), ref[v])
			}
		}
		count := 0
		for _, b := range ref {
			if b {
				count++
			}
		}
		if got := s.Count(); got != count {
			t.Fatalf("n=%d: count after toggles = %d, want %d", n, got, count)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Set(10) },
		func() { s.Set(-1) },
		func() { s.Test(10) },
		func() { s.Clear(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	a.UnionWith(b)
}

func TestFillMasksTail(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Fatalf("n=%d: Fill count = %d, want %d", n, got, n)
		}
		if n > 0 && !s.Test(n-1) {
			t.Fatalf("n=%d: last bit not set after Fill", n)
		}
	}
}

func TestResetAndAny(t *testing.T) {
	s := New(100)
	if s.Any() {
		t.Fatal("fresh set reports Any")
	}
	s.Set(77)
	if !s.Any() {
		t.Fatal("set with a bit reports empty")
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset left bits behind")
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := New(130), New(130)
	for _, i := range []int{0, 5, 64, 99, 129} {
		a.Set(i)
	}
	for _, i := range []int{5, 64, 100} {
		b.Set(i)
	}
	if got := a.AndCount(b); got != 2 {
		t.Fatalf("AndCount = %d, want 2", got)
	}
	if got := a.AndNotCount(b); got != 3 {
		t.Fatalf("AndNotCount = %d, want 3", got)
	}

	u := New(130)
	u.CopyFrom(a)
	u.UnionWith(b)
	if u.Count() != 6 {
		t.Fatalf("union count = %d, want 6", u.Count())
	}
	if !a.SubsetOf(u) || !b.SubsetOf(u) {
		t.Fatal("operands not subsets of their union")
	}
	if u.SubsetOf(a) {
		t.Fatal("union wrongly a subset of one operand")
	}

	i := New(130)
	i.CopyFrom(a)
	i.IntersectWith(b)
	if i.Count() != 2 || !i.Test(5) || !i.Test(64) {
		t.Fatalf("intersection wrong: count=%d", i.Count())
	}

	d := New(130)
	d.CopyFrom(a)
	d.AndNot(b)
	if d.Count() != 3 || d.Test(5) || !d.Test(129) {
		t.Fatalf("difference wrong: count=%d", d.Count())
	}
}

func TestForEachAndAppendBits(t *testing.T) {
	s := New(200)
	want := []int{0, 1, 63, 64, 65, 128, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: %v, want %v", got, want)
		}
	}
	app := s.AppendBits(make([]int, 0, 8))
	if len(app) != len(want) {
		t.Fatalf("AppendBits = %v, want %v", app, want)
	}
	for i := range want {
		if app[i] != want[i] {
			t.Fatalf("AppendBits = %v, want %v", app, want)
		}
	}
}

func TestEqual(t *testing.T) {
	a, b := New(70), New(70)
	if !a.Equal(b) {
		t.Fatal("fresh equal-length sets differ")
	}
	a.Set(69)
	if a.Equal(b) {
		t.Fatal("differing sets report equal")
	}
	b.Set(69)
	if !a.Equal(b) {
		t.Fatal("same sets report unequal")
	}
	if a.Equal(New(71)) {
		t.Fatal("different lengths report equal")
	}
}

func TestZeroLength(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Count() != 0 || s.Any() {
		t.Fatal("zero-length set misbehaves")
	}
	s.Reset()
	s.Fill()
	if s.Count() != 0 {
		t.Fatal("Fill on zero-length set set bits")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
