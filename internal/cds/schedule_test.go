package cds

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestScheduleIsConnectedBackbone(t *testing.T) {
	src := rng.New(1)
	g, _ := gen.RandomUDG(120, 10, 2.6, src)
	if !g.Connected() {
		t.Skip("unlucky disconnected deployment")
	}
	const b = 3
	s := Schedule(g, b)
	if s.Lifetime() == 0 {
		t.Fatal("no connected backbone schedule at all")
	}
	if err := ValidateSchedule(g, s, b); err != nil {
		t.Fatal(err)
	}
	// It is also a plain valid schedule.
	batteries := make([]int, g.N())
	for i := range batteries {
		batteries[i] = b
	}
	if err := s.Validate(g, batteries, 1); err != nil {
		t.Fatal(err)
	}
}

func TestValidateScheduleRejectsDisconnectedPhase(t *testing.T) {
	g := gen.Path(5)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1, 3}, Duration: 1}}}
	if err := ValidateSchedule(g, s, 5); err == nil {
		t.Fatal("disconnected dominating phase accepted")
	}
}

func TestValidateScheduleRejectsOverBudget(t *testing.T) {
	g := gen.Star(4)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 3}}}
	if err := ValidateSchedule(g, s, 2); err == nil {
		t.Fatal("budget violation accepted")
	}
}

func TestValidateScheduleAcceptsZeroDurationJunk(t *testing.T) {
	g := gen.Path(4)
	s := &core.Schedule{Phases: []core.Phase{
		{Set: []int{0}, Duration: 0}, // invalid set but zero duration
		{Set: []int{1, 2}, Duration: 1},
	}}
	if err := ValidateSchedule(g, s, 2); err != nil {
		t.Fatal(err)
	}
}
