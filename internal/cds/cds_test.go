package cds

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestIsConnectedDominating(t *testing.T) {
	g := gen.Path(5)
	if !IsConnectedDominating(g, []int{1, 2, 3}) {
		t.Error("{1,2,3} is a CDS of P5")
	}
	if IsConnectedDominating(g, []int{1, 3}) {
		t.Error("{1,3} dominates P5 but is disconnected")
	}
	if IsConnectedDominating(g, []int{1}) {
		t.Error("{1} does not dominate P5")
	}
	if !IsConnectedDominating(gen.Star(6), []int{0}) {
		t.Error("star center is a singleton CDS")
	}
}

func TestGrowthProducesCDS(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		gen.Path(12),
		gen.Ring(15),
		gen.Star(9),
		gen.Complete(7),
		gen.Grid(5, 6),
		gen.RandomTree(40, src),
	}
	for i, g := range graphs {
		set := Growth(g, nil)
		if set == nil {
			t.Fatalf("graph %d: Growth returned nil on connected graph", i)
		}
		if !IsConnectedDominating(g, set) {
			t.Fatalf("graph %d: %v not a CDS", i, set)
		}
	}
}

func TestGrowthSingleNode(t *testing.T) {
	if set := Growth(graph.New(1), nil); len(set) != 1 {
		t.Fatalf("singleton CDS = %v", set)
	}
}

func TestGrowthDisconnectedReturnsNil(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if set := Growth(g, nil); set != nil {
		t.Fatalf("disconnected graph yielded CDS %v", set)
	}
}

func TestGrowthRespectsAllowed(t *testing.T) {
	g := gen.Path(5)
	allowed := []bool{false, true, true, true, false}
	set := Growth(g, allowed)
	if set == nil {
		t.Fatal("interior of P5 should form an allowed CDS")
	}
	for _, v := range set {
		if !allowed[v] {
			t.Fatalf("disallowed node %d in CDS %v", v, set)
		}
	}
	// Infeasible restriction: leaves cannot be dominated.
	bad := []bool{true, false, true, false, true}
	if set := Growth(g, bad); set != nil {
		t.Fatalf("expected nil for infeasible restriction, got %v", set)
	}
}

func TestConnectRepairsDisconnectedDS(t *testing.T) {
	g := gen.Path(5)
	set := Connect(g, []int{1, 3}, nil)
	if set == nil {
		t.Fatal("Connect failed")
	}
	if !IsConnectedDominating(g, set) {
		t.Fatalf("%v not a CDS after repair", set)
	}
	// Must contain the original dominators.
	found := map[int]bool{}
	for _, v := range set {
		found[v] = true
	}
	if !found[1] || !found[3] {
		t.Fatalf("repair dropped original dominators: %v", set)
	}
}

func TestConnectAlreadyConnectedIsNoop(t *testing.T) {
	g := gen.Path(5)
	set := Connect(g, []int{1, 2, 3}, nil)
	if len(set) != 3 {
		t.Fatalf("no-op repair changed the set: %v", set)
	}
}

func TestConnectRejectsNonDominating(t *testing.T) {
	g := gen.Path(5)
	if set := Connect(g, []int{0}, nil); set != nil {
		t.Fatalf("non-dominating input accepted: %v", set)
	}
}

func TestConnectBlockedConnectors(t *testing.T) {
	g := gen.Path(5)
	// {1,3} needs node 2 as connector, but 2 is disallowed.
	allowed := []bool{true, true, false, true, true}
	if set := Connect(g, []int{1, 3}, allowed); set != nil {
		t.Fatalf("expected nil when connectors blocked, got %v", set)
	}
}

func TestGreedyConnectedPartition(t *testing.T) {
	g := gen.Complete(8)
	p := GreedyConnectedPartition(g)
	if err := p.Verify(g); err != nil {
		t.Fatal(err)
	}
	if len(p) != 8 {
		t.Fatalf("K8 connected partition has %d sets, want 8 singletons", len(p))
	}
	for _, set := range p {
		if !IsConnectedDominating(g, set) {
			t.Fatalf("class %v not connected", set)
		}
	}
}

func TestConnectedPartitionNeverLargerThanPlain(t *testing.T) {
	// Connectivity is an extra constraint: the greedy connected partition
	// can never contain more sets than the plain greedy partition bound δ+1,
	// and each of its sets must be a CDS.
	src := rng.New(2)
	for trial := 0; trial < 5; trial++ {
		g := gen.GNP(30, 0.35, src)
		if !g.Connected() {
			continue
		}
		p := GreedyConnectedPartition(g)
		if len(p) > g.MinDegree()+1 {
			t.Fatalf("trial %d: %d connected sets exceed δ+1 = %d", trial, len(p), g.MinDegree()+1)
		}
		for _, set := range p {
			if !IsConnectedDominating(g, set) {
				t.Fatalf("trial %d: non-CDS class %v", trial, set)
			}
		}
	}
}

func TestGrowthCDSIsReasonablySmall(t *testing.T) {
	// Sanity on approximation quality: on a star, Growth must pick just the
	// center; on a path of n nodes a CDS has n-2 nodes (all interior).
	if set := Growth(gen.Star(20), nil); len(set) != 1 {
		t.Fatalf("star CDS = %v, want center only", set)
	}
	if set := Growth(gen.Path(10), nil); len(set) != 8 {
		t.Fatalf("P10 CDS size = %d, want 8", len(set))
	}
}
