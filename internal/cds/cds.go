// Package cds explores the open problem the paper's conclusion poses:
// lifetime maximization for *connected* dominating sets (the structure
// routing backbones need). It implements two CDS constructions —
//
//   - Growth: the Guha–Khuller-style greedy that grows a connected tree,
//     always adding the frontier node covering the most uncovered nodes, and
//   - Connect: any dominating set repaired into a connected one by adding
//     BFS connector paths —
//
// plus a greedy connected-domatic partition (disjoint CDSs extracted until
// exhaustion) and its lifetime schedule. Experiment E11 measures how much
// lifetime the connectivity requirement costs; the paper conjectures the
// problem is fundamentally harder, and indeed the greedy connected partition
// consistently finds far fewer sets than the unconstrained one.
package cds

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/domset"
	"repro/internal/graph"
)

// IsConnectedDominating reports whether set is a dominating set of g whose
// induced subgraph is connected. The empty set qualifies only for the empty
// graph; a singleton is connected by definition.
func IsConnectedDominating(g *graph.Graph, set []int) bool {
	if !domset.IsDominating(g, set, nil) {
		return false
	}
	if len(set) <= 1 {
		return true
	}
	sub, _ := g.InducedSubgraph(set)
	return sub.Connected()
}

// Growth returns a connected dominating set of g built by greedy tree
// growth: seed at an allowed node of maximum degree, then repeatedly attach
// the allowed frontier node (neighbor of the current tree) that dominates
// the most not-yet-dominated nodes. Returns nil if g is not connected, has
// no nodes, or the allowed nodes cannot dominate g. allowed == nil allows
// every node.
func Growth(g *graph.Graph, allowed []bool) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	if n == 1 {
		if allowed == nil || allowed[0] {
			return []int{0}
		}
		return nil
	}
	if !g.Connected() {
		return nil
	}
	mayUse := func(v int) bool { return allowed == nil || allowed[v] }

	// Seed: allowed node with maximum degree.
	seed := -1
	for v := 0; v < n; v++ {
		if mayUse(v) && (seed == -1 || g.Degree(v) > g.Degree(seed)) {
			seed = v
		}
	}
	if seed == -1 {
		return nil
	}

	inTree := make([]bool, n)
	dominated := make([]bool, n)
	remaining := n
	addToTree := func(v int) {
		inTree[v] = true
		if !dominated[v] {
			dominated[v] = true
			remaining--
		}
		for _, u := range g.Neighbors(v) {
			if !dominated[u] {
				dominated[u] = true
				remaining--
			}
		}
	}
	addToTree(seed)
	tree := []int{seed}

	for remaining > 0 {
		// Frontier: allowed neighbors of the tree not yet in it.
		best, bestGain := -1, -1
		for _, tv := range tree {
			for _, u := range g.Neighbors(tv) {
				v := int(u)
				if inTree[v] || !mayUse(v) {
					continue
				}
				gain := 0
				if !dominated[v] {
					gain++
				}
				for _, w := range g.Neighbors(v) {
					if !dominated[w] {
						gain++
					}
				}
				if gain > bestGain || (gain == bestGain && v < best) {
					best, bestGain = v, gain
				}
			}
		}
		if best == -1 {
			return nil // frontier exhausted but nodes remain undominated
		}
		addToTree(best)
		tree = append(tree, best)
	}
	sort.Ints(tree)
	return tree
}

// Connect repairs a dominating set into a connected one by inserting
// BFS connector paths through allowed nodes. It returns nil if g is
// disconnected, the input is not dominating, or no allowed connectors exist.
func Connect(g *graph.Graph, set []int, allowed []bool) []int {
	n := g.N()
	if n == 0 || !domset.IsDominating(g, set, nil) || !g.Connected() {
		return nil
	}
	mayUse := func(v int) bool { return allowed == nil || allowed[v] }
	in := make([]bool, n)
	for _, v := range set {
		in[v] = true
	}
	out := append([]int(nil), set...)

	for {
		comp := componentsWithin(g, in)
		if len(comp) <= 1 {
			break
		}
		// BFS from component 0 through allowed (or already-chosen) nodes to
		// any node of another component; add the interior path nodes.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -2 // unvisited
		}
		var queue []int
		for _, v := range comp[0] {
			parent[v] = -1
			queue = append(queue, v)
		}
		target := -1
		for len(queue) > 0 && target == -1 {
			v := queue[0]
			queue = queue[1:]
			for _, uu := range g.Neighbors(v) {
				u := int(uu)
				if parent[u] != -2 {
					continue
				}
				if !in[u] && !mayUse(u) {
					continue
				}
				parent[u] = v
				if in[u] {
					target = u
					break
				}
				queue = append(queue, u)
			}
		}
		if target == -1 {
			return nil // connectors unavailable
		}
		for v := parent[target]; v != -1 && !in[v]; v = parent[v] {
			in[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// componentsWithin returns the connected components of the subgraph induced
// by the marked nodes, as slices of original node IDs.
func componentsWithin(g *graph.Graph, in []bool) [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if !in[s] || seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, u := range g.Neighbors(comp[i]) {
				if in[u] && !seen[u] {
					seen[u] = true
					comp = append(comp, int(u))
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// GrowthExtractor adapts Growth to the domatic.Extractor interface so
// domatic.GreedyPartition can extract disjoint connected dominating sets.
func GrowthExtractor(g *graph.Graph, allowed []bool) []int {
	return Growth(g, allowed)
}

// GreedyConnectedPartition returns pairwise disjoint connected dominating
// sets extracted greedily until no further one exists — the natural greedy
// for the maximum connected-domatic partition the paper leaves open.
func GreedyConnectedPartition(g *graph.Graph) domatic.Partition {
	return domatic.GreedyPartition(g, GrowthExtractor)
}

// Schedule builds the maximum-lifetime CDS schedule the greedy connected
// partition supports under a uniform battery b: each connected class is
// active for b slots. The result answers the operational form of the
// paper's §7 open problem (a routing backbone at every instant).
func Schedule(g *graph.Graph, b int) *core.Schedule {
	return core.FromPartition(GreedyConnectedPartition(g), b)
}

// ValidateSchedule checks that every positive-duration phase of s is a
// *connected* dominating set of g and that per-node usage respects the
// uniform battery b. This is the connected-backbone analogue of
// core.Schedule.Validate.
func ValidateSchedule(g *graph.Graph, s *core.Schedule, b int) error {
	usage := make([]int, g.N())
	for i, p := range s.Phases {
		if p.Duration < 0 {
			return fmt.Errorf("cds: phase %d has negative duration", i)
		}
		if p.Duration == 0 {
			continue
		}
		if !IsConnectedDominating(g, p.Set) {
			return fmt.Errorf("cds: phase %d is not a connected dominating set", i)
		}
		for _, v := range p.Set {
			usage[v] += p.Duration
		}
	}
	for v, u := range usage {
		if u > b {
			return fmt.Errorf("cds: node %d active %d slots, battery %d", v, u, b)
		}
	}
	return nil
}
