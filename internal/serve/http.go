package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies before JSON decoding: a graph of
// MaxNodes nodes fits comfortably, anything bigger is rejected with 413 by
// MaxBytesReader before it can balloon memory.
const maxBodyBytes = 64 << 20

// Handler returns the service mux:
//
//	GET   /healthz               liveness + drain state (503 while draining)
//	GET   /metrics               obs.Registry snapshot (same registry as the
//	                             service counters — one scrape shows everything)
//	POST  /v1/schedule           compute (or fetch) a schedule; ?async via body
//	PATCH /v1/schedule/{fp}      apply a live graph delta against the cached
//	                             schedule for graph fingerprint fp: plans a
//	                             verified overlap transition and invalidates
//	                             the superseded entries
//	POST  /v1/experiment         run a registered experiment
//	GET   /v1/jobs/{key}         poll an async job
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.cfg.Registry)
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("PATCH /v1/schedule/{fp}", s.handlePatch)
	mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleJob)
	return mux
}

// response is the HTTP envelope around a Result: the immutable cached
// payload plus per-delivery metadata.
type response struct {
	*Result
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort over HTTP
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.Draining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	s.mu.Lock()
	pending := len(s.pending)
	s.mu.Unlock()
	writeJSON(w, status, map[string]any{
		"status":      state,
		"queue_depth": s.pool.QueueLen(),
		"pending":     pending,
	})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "decoding request: %v", err)
		return false
	}
	return true
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !s.decode(w, r, &req) {
		return
	}
	inst, err := req.resolve(s.cfg.MaxNodes)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge errTooLarge
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "%v", err)
		return
	}
	key := req.key(inst)
	run := func(cancel func() bool) (*Result, error) {
		width := s.cfg.RaceWidth
		if width > 1 {
			s.met.solverRaced.Inc()
		} else {
			s.met.solverSequential.Inc()
		}
		hooks := obs.Hooks{Trace: attemptTracer{s.met.solverAttempts}}
		defs := SolveDefaults{Budget: s.cfg.DefaultBudget, TimeBudget: s.cfg.DefaultTimeBudget}
		if req.Shards > 1 {
			sched, part, err := s.solveSharded(inst, &req, defs, hooks, cancel)
			if err != nil {
				return nil, err
			}
			return scheduleResult(key, &req, inst, sched, part, defs)
		}
		sched, err := Solve(inst, &req, width, defs, hooks, cancel)
		if err != nil {
			return nil, err
		}
		return scheduleResult(key, &req, inst, sched, nil, defs)
	}
	s.dispatch(w, r, key, "schedule",
		timeoutFromMS(req.TimeoutMS, s.cfg.DefaultTimeout), req.Async, run)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	if !s.decode(w, r, &req) {
		return
	}
	id, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := req.key(id)
	run := func(cancel func() bool) (*Result, error) {
		table, err := experiments.Run(id, experiments.Config{
			Seed:   req.Seed,
			Trials: req.Trials,
			Quick:  req.Quick,
			Cancel: cancel,
		})
		if err != nil {
			return nil, err
		}
		return experimentResult(key, id, table)
	}
	s.dispatch(w, r, key, "experiment",
		timeoutFromMS(req.TimeoutMS, s.cfg.DefaultTimeout), req.Async, run)
}

// dispatch is the shared tail of both POST endpoints: admission, then either
// the async 202 or a bounded wait for the (possibly coalesced) job.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request,
	key, kind string, timeout time.Duration, async bool,
	run func(cancel func() bool) (*Result, error)) {

	res, j, coalesced, status := s.admit(key, kind, timeout, run)
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After",
			strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		writeError(w, status, "server at capacity; retry later")
		return
	case http.StatusServiceUnavailable:
		writeError(w, status, "server is draining; not accepting new work")
		return
	}
	if res != nil {
		writeJSON(w, http.StatusOK, response{Result: res, Cached: true})
		return
	}
	if async {
		writeJSON(w, http.StatusAccepted, map[string]string{
			"key":    key,
			"kind":   kind,
			"status": "accepted",
			"poll":   "/v1/jobs/" + key,
		})
		return
	}

	// Synchronous wait, bounded by the caller's own patience: the job keeps
	// its deadline either way, so an abandoned wait does not abandon the
	// computation (it finishes and fills the cache).
	ctx, cancelWait := context.WithTimeout(r.Context(), timeout)
	defer cancelWait()
	select {
	case <-j.done:
		if j.err != nil {
			s.writeJobError(w, j.err)
			return
		}
		writeJSON(w, http.StatusOK, response{Result: j.result, Coalesced: coalesced})
	case <-ctx.Done():
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{
			"error": "deadline exceeded waiting for result",
			"key":   key,
			"poll":  "/v1/jobs/" + key,
		})
	}
}

// writeJobError maps a failed job onto HTTP: cancellation (the
// experiments.ErrCanceled contract) is the caller's deadline → 504;
// everything else — including injected chaos worker faults — is a server
// failure → 500.
func (s *Server) writeJobError(w http.ResponseWriter, err error) {
	if errors.Is(err, experiments.ErrCanceled) {
		writeError(w, http.StatusGatewayTimeout, "%v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	state, kind, res, ok := s.jobStatus(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no job or cached result under key %s", key)
		return
	}
	if res != nil {
		writeJSON(w, http.StatusOK, response{Result: res, Cached: true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"key": key, "kind": kind, "status": state})
}

// ObsMux is the observability-only mux for processes that are not the
// scheduling service but still want the standard endpoints (ltsim's
// -obs-addr): /healthz always reports ok, /metrics serves the registry
// snapshot, and the root path keeps serving the full snapshot for
// compatibility with the pre-serve ltsim endpoint.
func ObsMux(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", reg)
	mux.Handle("/", reg)
	return mux
}

// HTTPServer pairs a bound listener with an http.Server so every binary
// gets the same lifecycle: StartHTTP binds and serves in the background
// (":0" picks a free port — Addr tells you which), Stop shuts down
// gracefully within ctx and hard-closes on expiry.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartHTTP binds addr and serves h until Stop.
func StartHTTP(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: h}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Stop
	return s, nil
}

// Addr returns the bound address (host:port), useful with ":0".
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Stop gracefully shuts the HTTP layer down: stop accepting connections,
// wait for in-flight handlers up to ctx, then hard-close stragglers.
func (s *HTTPServer) Stop(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	return err
}
