package serve

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/reconfig"
	"repro/internal/shard"
	"repro/internal/solver"
)

// scheduleCtx is the solved instance retained next to a cached schedule
// Result: everything the PATCH endpoint needs to plan a transition without
// re-parsing or re-solving. It is immutable once attached — a patch builds a
// fresh ctx for its own result rather than mutating the base's, which is what
// makes concurrent PATCHes against the same fingerprint well-defined (both
// apply to the same base; last cache write wins).
type scheduleCtx struct {
	// inst is the typed solve instance the schedule was computed for (graph,
	// budgets, tolerance, structure metadata).
	inst      *instance.Instance
	algorithm string
	seed      uint64
	tries     int
	sched     *core.Schedule
	// spec and budget are the resolved solver spec and refinement budget the
	// schedule was computed with — what a sharded re-solve must replay for
	// untouched shards to hit the compositional cache.
	spec   solver.Spec
	budget int
	// part, when non-nil, is the partition the schedule was stitched from;
	// PATCH rebases it through the delta mapping and re-solves only the
	// shards the delta touched.
	part *shard.Partition
}

// PatchRequest is the body of PATCH /v1/schedule/{fingerprint}: a live graph
// delta to apply against a cached schedule, and how to plan the transition.
type PatchRequest struct {
	// Delta is the typed graph/budget change (graph.Delta wire format).
	Delta graph.Delta `json:"delta"`
	// At is the slot of the running schedule the transition takes over from;
	// slots [0, At) are treated as already spent when computing residuals.
	At int `json:"at"`
	// Overlap is the requested overlap window in slots. Omitted means the
	// server's DefaultOverlap; an explicit 0 requests a pure swap.
	Overlap *int `json:"overlap,omitempty"`
	// Algorithm disambiguates when several cached schedules share the
	// fingerprint: only entries solved by this algorithm are considered.
	Algorithm string `json:"algorithm,omitempty"`
	// Solver names the registry algorithm for the incoming schedule; empty
	// means greedy recruitment (the only solver that understands per-node
	// residual budgets natively).
	Solver    string `json:"solver,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Tries     int    `json:"tries,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	Async     bool   `json:"async,omitempty"`
}

func (r *PatchRequest) seedOrDefault() uint64 {
	if r.Seed == 0 {
		return 1
	}
	return r.Seed
}

func (r *PatchRequest) triesOrDefault() int {
	if r.Tries <= 0 {
		return 30
	}
	return r.Tries
}

// key returns the canonical cache/coalescing key of the patch: the prior
// fingerprint, the resolved overlap, the full delta, and the solver
// parameters. Delivery options are excluded, mirroring Request.key, so a
// retried PATCH coalesces with (or hits the cached result of) the original.
func (r *PatchRequest) key(fp string, overlap int) string {
	h := graph.NewHasher().
		String("kind", "reconfig").
		String("fp", fp).
		String("alg", r.Algorithm).
		Int("at", r.At).
		Int("overlap", overlap).
		String("solver", r.Solver).
		Uint64("seed", r.seedOrDefault()).
		Int("tries", r.triesOrDefault())
	return r.Delta.HashInto(h).Sum()
}

// handlePatch serves PATCH /v1/schedule/{fp}: it resolves the cached base
// schedule by graph fingerprint, plans a verified zero-downtime transition
// for the delta (internal/reconfig), invalidates every cache entry of the
// superseded graph, and caches the transition under the patch key — indexed
// by the post-delta fingerprint, so further deltas can chain onto it.
//
// The patch key is checked against the cache before the fingerprint lookup:
// a completed PATCH invalidates its own base, so an idempotent retry must be
// answered from the patch result itself, not by re-resolving a base that is
// no longer cached.
func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	var req PatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.At < 0 {
		writeError(w, http.StatusBadRequest, "at = %d must be >= 0", req.At)
		return
	}
	if req.Overlap != nil && *req.Overlap < 0 {
		writeError(w, http.StatusBadRequest, "overlap = %d must be >= 0", *req.Overlap)
		return
	}
	if req.Tries < 0 {
		writeError(w, http.StatusBadRequest, "tries = %d must be >= 0", req.Tries)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "timeout_ms = %d must be >= 0", req.TimeoutMS)
		return
	}
	if req.Solver != "" {
		if _, err := solver.Resolve(req.Solver); err != nil {
			writeError(w, http.StatusBadRequest, "solver: %v", err)
			return
		}
	}
	overlap := s.cfg.DefaultOverlap
	if req.Overlap != nil {
		overlap = *req.Overlap
	}
	key := req.key(fp, overlap)

	s.mu.Lock()
	if cached, ok := s.cache.get(key); ok {
		s.met.requests.Inc()
		s.met.cacheHits.Inc()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, response{Result: cached, Cached: true})
		return
	}
	candidates := s.cache.byFingerprint(fp)
	s.mu.Unlock()

	base, errStatus, errMsg := selectBase(candidates, fp, req.Algorithm)
	if base == nil {
		writeError(w, errStatus, "%s", errMsg)
		return
	}
	ctx := base.ctx
	n := ctx.inst.N()
	if req.At > ctx.sched.Lifetime() {
		writeError(w, http.StatusBadRequest,
			"at = %d is past the schedule's lifetime %d", req.At, ctx.sched.Lifetime())
		return
	}
	residual := make([]int, n)
	for v, used := range ctx.sched.UsagePrefix(n, req.At) {
		residual[v] = ctx.inst.Budgets[v] - used
	}
	// Validate the delta up front so malformed requests are 400s at the door,
	// not job failures; the plan itself re-applies it.
	g2, _, _, err := req.Delta.Apply(ctx.inst.Graph, residual)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if g2.N() > s.cfg.MaxNodes {
		writeError(w, http.StatusRequestEntityTooLarge,
			"delta grows the graph to %d nodes, exceeding the service cap of %d", g2.N(), s.cfg.MaxNodes)
		return
	}

	run := func(cancel func() bool) (*Result, error) {
		// Sharded base: re-solve through the partition instead of the
		// reconfig solver ladder. The delta's mapping rebases the partition;
		// untouched shards keep their local instances, hence their
		// content-addressed keys, hence hit the cache — a single-tile delta
		// re-solves exactly one shard.
		var incoming *core.Schedule
		var part2 *shard.Partition
		if ctx.part != nil {
			g2, budgets2, mapping, err := req.Delta.Apply(ctx.inst.Graph, residual)
			if err != nil {
				return nil, err
			}
			part2 = ctx.part.Rebase(g2, mapping)
			// The post-delta parent instance: same tolerance, and the prior
			// structure hint rides along as classification trial ordering.
			parent2 := instance.New(g2, budgets2).
				WithK(ctx.inst.Tolerance()).WithHint(ctx.inst.Hint())
			opt := s.shardOptions(ctx.spec, ctx.seed, ctx.tries, ctx.budget,
				time.Time{}, obs.Hooks{}, cancel)
			solved, err := shard.SolveShards(parent2, part2, opt)
			if err != nil {
				return nil, err
			}
			st, err := s.stitchCounted(parent2, part2, solved, obs.Hooks{})
			if err != nil {
				return nil, err
			}
			incoming = st.Schedule
		}
		// The pre-delta instance at the cutover: residual budgets under the
		// same graph, sharing the already-computed structure metadata.
		p, err := reconfig.Compute(ctx.inst.WithBudgets(residual), reconfig.Request{
			Old:      ctx.sched,
			At:       req.At,
			Delta:    req.Delta,
			Overlap:  overlap,
			Solver:   req.Solver,
			Seed:     req.seedOrDefault(),
			Tries:    req.triesOrDefault(),
			Cancel:   cancel,
			Incoming: incoming,
		})
		if err != nil {
			return nil, err
		}
		s.met.reconfigs.Inc()
		if p.Degraded {
			s.met.reconfigDegraded.Inc()
		}
		if p.Violation {
			s.met.reconfigViolations.Inc()
		}
		s.met.overlapEnergy.Add(uint64(p.OverlapEnergy))
		// The base graph no longer exists: every schedule cached for it —
		// including the base itself — is stale. The patch result survives
		// because completion caches it after this runs, under the new
		// fingerprint.
		dropped := s.invalidateFingerprint(fp)
		s.met.invalidated.Add(uint64(dropped))
		return patchResult(key, fp, &req, overlap, ctx, p, dropped, part2)
	}
	s.dispatch(w, r, key, "reconfig",
		timeoutFromMS(req.TimeoutMS, s.cfg.DefaultTimeout), req.Async, run)
}

// selectBase picks the cached schedule a PATCH applies to: exactly one
// patchable entry under the fingerprint, optionally filtered by algorithm.
// Zero candidates is 404 (nothing cached for that graph — or it was already
// superseded); several is 409, with the algorithms listed so the client can
// disambiguate.
func selectBase(candidates []*Result, fp, algorithm string) (*Result, int, string) {
	var matches []*Result
	for _, res := range candidates {
		if res.ctx == nil {
			continue
		}
		if algorithm != "" && res.Algorithm != algorithm {
			continue
		}
		matches = append(matches, res)
	}
	switch len(matches) {
	case 0:
		return nil, http.StatusNotFound,
			fmt.Sprintf("no cached schedule for fingerprint %s (it may have been evicted or superseded by an earlier delta)", fp)
	case 1:
		return matches[0], 0, ""
	}
	algs := make([]string, 0, len(matches))
	seen := make(map[string]bool, len(matches))
	for _, res := range matches {
		if !seen[res.Algorithm] {
			seen[res.Algorithm] = true
			algs = append(algs, res.Algorithm)
		}
	}
	sort.Strings(algs)
	return nil, http.StatusConflict,
		fmt.Sprintf("fingerprint %s has %d cached schedules (algorithms: %s); disambiguate with \"algorithm\" or distinct request parameters",
			fp, len(matches), strings.Join(algs, ", "))
}

// patchResult renders a computed transition plan into the cached Result,
// carrying a fresh scheduleCtx for the post-delta instance so subsequent
// PATCHes can chain onto the new fingerprint.
func patchResult(key, priorFP string, req *PatchRequest, overlap int,
	base *scheduleCtx, p *reconfig.Plan, invalidated int, part *shard.Partition) (*Result, error) {
	sched := p.Schedule()
	res, err := scheduleJSON(sched)
	if err != nil {
		return nil, err
	}
	algorithm := req.Solver
	if algorithm == "" {
		algorithm = solver.NameGreedy
	}
	ctx := &scheduleCtx{
		inst:      instance.New(p.Graph, p.Budgets).WithK(base.inst.Tolerance()).WithHint(base.inst.Hint()),
		algorithm: algorithm,
		seed:      req.seedOrDefault(),
		tries:     req.triesOrDefault(),
		sched:     sched,
	}
	if part != nil {
		// A sharded base stays sharded: the next PATCH rebases this
		// partition in turn, and replaying the base's solver parameters is
		// what keeps untouched shards hitting the compositional cache.
		ctx.part = part
		ctx.spec = base.spec
		ctx.budget = base.budget
		ctx.seed = base.seed
		ctx.tries = base.tries
		ctx.algorithm = base.algorithm
		algorithm = base.algorithm
	}
	newFP := p.Graph.Fingerprint()
	return &Result{
		Key:              key,
		Kind:             "reconfig",
		Algorithm:        algorithm,
		Lifetime:         sched.Lifetime(),
		Phases:           len(sched.Phases),
		Schedule:         res,
		Fingerprint:      hex.EncodeToString(newFP[:]),
		PriorFingerprint: priorFP,
		Overlap:          p.Overlap,
		OverlapEnergy:    p.OverlapEnergy,
		Degraded:         p.Degraded,
		Violation:        p.Violation,
		Invalidated:      invalidated,
		Mapping:          p.Mapping,
		ctx:              ctx,
	}, nil
}
