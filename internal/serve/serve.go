// Package serve is the lifetime-scheduling service: a long-running HTTP/JSON
// layer that admits schedule and experiment requests, deduplicates and caches
// them, and computes them on a bounded worker pool. The paper's algorithms
// are cheap randomized routines (two message exchanges per node), so the
// engineering problem at serving scale is not the solver but the request
// path; this package is that path:
//
//   - a bounded job queue drained by a fixed worker pool (par.Pool) — never
//     one goroutine per request;
//   - single-flight request coalescing: identical concurrent requests share
//     one computation, keyed by the canonical request hash (graph.Hasher:
//     graph structure + budgets + algorithm + params + seed);
//   - an LRU result cache over the same keys, so a repeated request is a
//     lookup, not a recomputation;
//   - explicit backpressure: when the queue or the in-flight cap is full,
//     admission fails with 429 + Retry-After instead of queueing unboundedly;
//   - per-request deadlines wired into the repository's cancellation
//     convention (a sticky cancel func polled by the solver, surfacing
//     experiments.ErrCanceled), so an in-flight request past its deadline
//     stops burning a worker;
//   - graceful drain: Shutdown stops admission (503) and waits until every
//     accepted job has finished — accepted work is never dropped;
//   - first-class observability: every admission outcome, cache hit ratio,
//     queue depth, and end-to-end latency lands in an obs.Registry served on
//     the same mux as /healthz.
//
// cmd/ltserve wires this into a binary; docs/SERVICE.md documents the API
// and semantics.
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/reconfig"
)

// FaultInjector is the chaos hook of the serving layer: when configured, it
// is invoked once per job right before the computation starts, and may sleep
// (slow worker) or return an error (failing worker). chaos.WorkerFault is
// the seeded implementation; tests may install gates of their own.
type FaultInjector interface {
	Invoke(key string) error
}

// Config configures a Server. The zero value serves with sensible defaults.
type Config struct {
	// Workers is the worker-pool size — the hard cap on concurrently
	// computing jobs. <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the jobs accepted but not yet picked up by a
	// worker. A full queue rejects admission with 429. <= 0 means 64.
	QueueDepth int
	// MaxInFlight caps jobs admitted but not yet finished (queued plus
	// running); beyond it admission returns 429. <= 0 means
	// QueueDepth + Workers (the natural capacity).
	MaxInFlight int
	// CacheSize is the LRU result-cache capacity in entries. <= 0 means 256.
	CacheSize int
	// DefaultTimeout is the per-request deadline when the request does not
	// carry one. <= 0 means 30s.
	DefaultTimeout time.Duration
	// MaxNodes rejects requests whose graph exceeds this node count with
	// 413 before any work happens. <= 0 means 1<<20.
	MaxNodes int
	// RetryAfter is the hint returned with 429 responses. <= 0 means 1s.
	RetryAfter time.Duration
	// RaceWidth is the number of independently seeded solver attempts each
	// schedule job races concurrently (solver.Options.RaceWidth); the winner
	// is deterministic, so responses and cache keys are unaffected. <= 1 runs
	// the sequential driver.
	RaceWidth int
	// DefaultOverlap is the overlap window (in slots) a PATCH request gets
	// when it does not specify one. <= 0 means reconfig.DefaultOverlap; a
	// per-request explicit 0 (pure swap) is still expressible through
	// PatchRequest.Overlap.
	DefaultOverlap int
	// DefaultBudget is the refinement move budget a schedule request gets
	// when it asks for refinement without a budget of its own. <= 0 defers
	// to the solver default.
	DefaultBudget int
	// DefaultTimeBudget is the wall-clock solve budget a schedule request
	// gets when it does not carry time_budget_ms. <= 0 means none. Unlike
	// DefaultTimeout (which fails the request), an expired time budget
	// truncates refinement to the best schedule found so far.
	DefaultTimeBudget time.Duration
	// Fault, when non-nil, degrades every worker invocation (see
	// FaultInjector). Nil injects nothing.
	Fault FaultInjector
	// Registry receives the service metrics; nil creates a private one.
	// The same registry is served on /metrics.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = c.QueueDepth + c.Workers
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RaceWidth <= 0 {
		c.RaceWidth = 1
	}
	if c.DefaultOverlap <= 0 {
		c.DefaultOverlap = reconfig.DefaultOverlap
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the scheduling service. Create one with New, expose
// Server.Handler over HTTP (StartHTTP), and Shutdown to drain.
type Server struct {
	cfg      Config
	met      *metrics
	pool     *par.Pool
	cache    *lruCache
	draining atomic.Bool

	mu      sync.Mutex
	pending map[string]*job // keyed jobs admitted but not finished
}

// job is one admitted computation. Between admission and completion it lives
// in Server.pending under its key, which is what makes coalescing work: a
// second request for the same key attaches to the existing job instead of
// enqueueing a new one.
type job struct {
	key      string
	kind     string // "schedule" | "experiment"
	enqueued time.Time
	deadline time.Time
	run      func(cancel func() bool) (*Result, error)

	state string // "queued" | "running"; guarded by Server.mu

	// result and err are written exactly once, before done is closed.
	result *Result
	err    error
	done   chan struct{}
}

// New builds a Server from cfg and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		met:     newMetrics(cfg.Registry),
		pool:    par.NewPool(cfg.Workers, cfg.QueueDepth),
		cache:   newLRUCache(cfg.CacheSize),
		pending: make(map[string]*job),
	}
	return s
}

// Registry returns the metrics registry the server reports into (the one
// served on /metrics).
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// Draining reports whether Shutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit runs the admission pipeline for one request: cache lookup, coalesce
// onto a pending job, or enqueue a fresh one. Exactly one of the return
// values is meaningful: a non-nil cached Result, a job to wait on (with
// coalesced saying whether it was shared), or a non-zero HTTP status
// (429 queue/in-flight full, 503 draining).
func (s *Server) admit(key, kind string, timeout time.Duration,
	run func(cancel func() bool) (*Result, error)) (res *Result, j *job, coalesced bool, status int) {

	s.met.requests.Inc()
	if s.draining.Load() {
		s.met.rejectedDraining.Inc()
		return nil, nil, false, 503
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Cache and pending map are consulted under one lock so a key cannot
	// slip between them: completion stores to the cache before unlinking
	// the pending entry.
	if cached, ok := s.cache.get(key); ok {
		s.met.cacheHits.Inc()
		return cached, nil, false, 0
	}
	if existing := s.pending[key]; existing != nil {
		s.met.coalesced.Inc()
		return nil, existing, true, 0
	}
	s.met.cacheMisses.Inc()
	if len(s.pending) >= s.cfg.MaxInFlight {
		s.met.rejectedInFlight.Inc()
		return nil, nil, false, 429
	}
	now := time.Now()
	nj := &job{
		key:      key,
		kind:     kind,
		enqueued: now,
		deadline: now.Add(timeout),
		run:      run,
		state:    "queued",
		done:     make(chan struct{}),
	}
	if !s.pool.TrySubmit(func() { s.execute(nj) }) {
		s.met.rejectedQueueFull.Inc()
		return nil, nil, false, 429
	}
	s.pending[key] = nj
	s.met.admitted.Inc()
	s.met.pending.Set(int64(len(s.pending)))
	s.met.queueDepth.Set(int64(s.pool.QueueLen()))
	return nil, nj, false, 0
}

// execute runs one job on a pool worker: deadline check, fault injection,
// the computation itself, then completion bookkeeping (cache fill, pending
// unlink, metrics, waiter wake-up).
func (s *Server) execute(j *job) {
	s.met.queueWaitMS.Observe(msSince(j.enqueued))
	s.met.queueDepth.Set(int64(s.pool.QueueLen()))
	s.mu.Lock()
	j.state = "running"
	s.mu.Unlock()
	s.met.running.Add(1)
	defer s.met.running.Add(-1)

	// The sticky cancel contract of experiments.Config.Cancel: once the
	// deadline passes it reports true forever after.
	cancel := func() bool { return !time.Now().Before(j.deadline) }

	var res *Result
	var err error
	switch {
	case cancel():
		// Expired while queued: don't start at all.
		err = experiments.ErrCanceled
	default:
		if s.cfg.Fault != nil {
			if ferr := s.cfg.Fault.Invoke(j.key); ferr != nil {
				s.met.workerFaults.Inc()
				err = ferr
			}
		}
		if err == nil && cancel() {
			// A slow-worker fault may have eaten the whole budget.
			err = experiments.ErrCanceled
		}
		if err == nil {
			start := time.Now()
			res, err = j.run(cancel)
			if res != nil {
				res.SolveMS = msSince(start)
			}
			s.met.solveMS.Observe(msSince(start))
		}
	}

	switch {
	case err == nil:
		s.met.completed.Inc()
	case errors.Is(err, experiments.ErrCanceled):
		s.met.canceled.Inc()
	default:
		s.met.failed.Inc()
	}

	s.mu.Lock()
	if err == nil {
		s.cache.add(j.key, res)
	}
	delete(s.pending, j.key)
	s.met.pending.Set(int64(len(s.pending)))
	s.mu.Unlock()

	j.result, j.err = res, err
	close(j.done)
	s.met.latencyMS.Observe(msSince(j.enqueued))
}

// Shutdown drains the server: admission starts returning 503 immediately,
// and Shutdown blocks until every accepted job (queued or running) has
// finished, or ctx expires. Accepted jobs are never dropped — that is the
// contract load balancers rely on when they see /healthz flip to draining.
// On ctx expiry the remaining jobs keep running on the pool until done, but
// Shutdown stops waiting and returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.pool.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// invalidateFingerprint drops every cached result computed for the graph
// with the given fingerprint and returns how many were removed. It is called
// from inside reconfig run closures — safe because execute runs jobs without
// holding mu — and its ordering against completion is what keeps PATCH
// results durable: the run invalidates the prior fingerprint first, then
// completion caches the patch result under the new fingerprint.
func (s *Server) invalidateFingerprint(fp string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.invalidate(fp)
}

// jobStatus returns the lifecycle state of the job under key: a pending
// state ("queued" or "running") with its kind, a cached result, or neither.
func (s *Server) jobStatus(key string) (state, kind string, res *Result, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.pending[key]; j != nil {
		return j.state, j.kind, nil, true
	}
	if cached, found := s.cache.get(key); found {
		return "done", cached.Kind, cached, true
	}
	return "", "", nil, false
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// ErrWorkerFault re-exports the chaos sentinel so HTTP mapping and clients
// of this package don't need to import chaos directly.
var ErrWorkerFault = chaos.ErrWorkerFault
