package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/solver"
)

// ring returns the cycle graph C_n as a wire spec.
func ring(n int) GraphSpec {
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	return GraphSpec{N: n, Edges: edges}
}

func scheduleBody(t *testing.T, req Request) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func post(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	h.ServeHTTP(w, r)
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// counter reads a service counter by name.
func counter(s *Server, name string) uint64 {
	return s.Registry().Counter(name).Value()
}

// cacheLen reads the result-cache size under the server lock.
func cacheLen(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// waitCounter polls until the counter reaches want or the deadline passes.
func waitCounter(t *testing.T, s *Server, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if counter(s, name) >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s = %d, want >= %d", name, counter(s, name), want)
}

// gateFault blocks every worker invocation until released — the test's
// handle on "a job is in flight right now".
type gateFault struct {
	entered chan string   // receives the job key at invocation (if non-nil)
	release chan struct{} // close to let all invocations proceed
}

func (g *gateFault) Invoke(key string) error {
	if g.entered != nil {
		g.entered <- key
	}
	<-g.release
	return nil
}

func decodeResponse(t *testing.T, w *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("response %q: %v", w.Body.String(), err)
	}
	return m
}

func TestScheduleEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	req := Request{Graph: ring(8), Algorithm: AlgUniform, Battery: 3, Seed: 7}
	w := post(h, "/v1/schedule", scheduleBody(t, req))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("first request reported cached")
	}
	if resp.Lifetime < 3 {
		t.Fatalf("lifetime %d < battery 3 (C_8 admits at least one dominating phase)", resp.Lifetime)
	}
	// The returned schedule must be feasible on the requested instance.
	sched, err := core.ReadJSON(bytes.NewReader(resp.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := req.resolve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(inst.Graph, inst.Budgets, 1); err != nil {
		t.Fatalf("served schedule infeasible: %v", err)
	}

	// A repeated identical request is a cache hit with the same payload.
	w2 := post(h, "/v1/schedule", scheduleBody(t, req))
	if w2.Code != http.StatusOK {
		t.Fatalf("repeat status %d", w2.Code)
	}
	m := decodeResponse(t, w2)
	if m["cached"] != true {
		t.Fatalf("repeat request not served from cache: %v", m)
	}
	if got, want := counter(s, "serve.cache_hits"), uint64(1); got != want {
		t.Fatalf("serve.cache_hits = %d, want %d", got, want)
	}

	// A different seed is a different key: miss, fresh computation.
	req.Seed = 8
	w3 := post(h, "/v1/schedule", scheduleBody(t, req))
	if m := decodeResponse(t, w3); m["cached"] == true {
		t.Fatal("different seed served from cache")
	}
	if got := counter(s, "serve.cache_misses"); got != 2 {
		t.Fatalf("serve.cache_misses = %d, want 2", got)
	}
}

func TestIdenticalConcurrentRequestsCoalesce(t *testing.T) {
	gate := &gateFault{entered: make(chan string, 1), release: make(chan struct{})}
	s := New(Config{Workers: 1, Fault: gate})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	const clients = 8
	body := scheduleBody(t, Request{Graph: ring(10), Algorithm: AlgUniform, Battery: 4, Seed: 3})
	var wg sync.WaitGroup
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = post(h, "/v1/schedule", body).Code
		}(i)
	}
	<-gate.entered // the single computation is running and blocked
	// Wait until every other client has been admitted as a coalescer.
	waitCounter(t, s, "serve.coalesced", clients-1)
	close(gate.release)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("client %d got status %d", i, code)
		}
	}
	if got := counter(s, "serve.admitted"); got != 1 {
		t.Fatalf("serve.admitted = %d, want 1 (one computation for %d clients)", got, clients)
	}
	if got := counter(s, "serve.completed"); got != 1 {
		t.Fatalf("serve.completed = %d, want 1", got)
	}
	if got := counter(s, "serve.coalesced"); got != clients-1 {
		t.Fatalf("serve.coalesced = %d, want %d", got, clients-1)
	}
	if got := counter(s, "serve.cache_misses"); got != 1 {
		t.Fatalf("serve.cache_misses = %d, want 1", got)
	}
}

func TestQueueOverflowReturns429(t *testing.T) {
	gate := &gateFault{entered: make(chan string, 8), release: make(chan struct{})}
	// One worker, one queue slot, in-flight cap out of the way: the third
	// distinct job must overflow the queue.
	s := New(Config{Workers: 1, QueueDepth: 1, MaxInFlight: 100, Fault: gate})
	defer s.Shutdown(context.Background())
	defer close(gate.release) // before Shutdown (LIFO) so the drain can finish
	h := s.Handler()

	mk := func(seed uint64) []byte {
		return scheduleBody(t, Request{Graph: ring(6), Algorithm: AlgUniform, Battery: 2, Seed: seed, Async: true})
	}
	if w := post(h, "/v1/schedule", mk(1)); w.Code != http.StatusAccepted {
		t.Fatalf("job 1 status %d", w.Code)
	}
	<-gate.entered // job 1 occupies the worker, not a queue slot
	if w := post(h, "/v1/schedule", mk(2)); w.Code != http.StatusAccepted {
		t.Fatalf("job 2 status %d", w.Code)
	}
	w := post(h, "/v1/schedule", mk(3))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow job status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := counter(s, "serve.rejected_queue_full"); got != 1 {
		t.Fatalf("serve.rejected_queue_full = %d, want 1", got)
	}
}

func TestInFlightCapReturns429(t *testing.T) {
	gate := &gateFault{entered: make(chan string, 8), release: make(chan struct{})}
	s := New(Config{Workers: 1, QueueDepth: 8, MaxInFlight: 1, Fault: gate})
	defer s.Shutdown(context.Background())
	defer close(gate.release) // before Shutdown (LIFO) so the drain can finish
	h := s.Handler()

	mk := func(seed uint64) []byte {
		return scheduleBody(t, Request{Graph: ring(6), Algorithm: AlgUniform, Battery: 2, Seed: seed, Async: true})
	}
	if w := post(h, "/v1/schedule", mk(1)); w.Code != http.StatusAccepted {
		t.Fatalf("job 1 status %d", w.Code)
	}
	<-gate.entered
	if w := post(h, "/v1/schedule", mk(2)); w.Code != http.StatusTooManyRequests {
		t.Fatalf("in-flight overflow status %d, want 429", w.Code)
	}
	if got := counter(s, "serve.rejected_inflight"); got != 1 {
		t.Fatalf("serve.rejected_inflight = %d, want 1", got)
	}
}

func TestDeadlineCancelsInFlightJob(t *testing.T) {
	gate := &gateFault{entered: make(chan string, 1), release: make(chan struct{})}
	s := New(Config{Workers: 1, Fault: gate})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	body := scheduleBody(t, Request{Graph: ring(6), Algorithm: AlgUniform, Battery: 2, Seed: 1, TimeoutMS: 30})
	w := post(h, "/v1/schedule", body)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	// The worker is still stuck in the fault; once it proceeds, the solver's
	// first cancel poll must fire and the job must count as canceled — the
	// experiments.ErrCanceled contract.
	close(gate.release)
	waitCounter(t, s, "serve.canceled", 1)
	if got := counter(s, "serve.completed"); got != 0 {
		t.Fatalf("serve.completed = %d for a canceled job", got)
	}
	if cacheLen(s) != 0 {
		t.Fatal("canceled job left a cache entry")
	}
}

// TestCancellationErrorSurfaces pins, white box, that a job past its
// deadline finishes with experiments.ErrCanceled — not a timeout wrapper,
// not a success.
func TestCancellationErrorSurfaces(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ran := false
	_, j, _, status := s.admit("k1", "schedule", -time.Second, // deadline already passed
		func(cancel func() bool) (*Result, error) {
			ran = true
			return &Result{}, nil
		})
	if status != 0 || j == nil {
		t.Fatalf("admit failed: status %d", status)
	}
	<-j.done
	if !errors.Is(j.err, experiments.ErrCanceled) {
		t.Fatalf("job error = %v, want experiments.ErrCanceled", j.err)
	}
	if ran {
		t.Fatal("expired job still ran the computation")
	}
}

func TestDrainFinishesAcceptedJobsAndRejectsNew(t *testing.T) {
	gate := &gateFault{entered: make(chan string, 8), release: make(chan struct{})}
	s := New(Config{Workers: 1, QueueDepth: 4, Fault: gate})
	h := s.Handler()

	mk := func(seed uint64) Request {
		return Request{Graph: ring(8), Algorithm: AlgUniform, Battery: 3, Seed: seed, Async: true}
	}
	keys := make([]string, 2)
	for i := range keys {
		w := post(h, "/v1/schedule", scheduleBody(t, mk(uint64(i+1))))
		if w.Code != http.StatusAccepted {
			t.Fatalf("job %d status %d", i, w.Code)
		}
		keys[i] = decodeResponse(t, w)["key"].(string)
	}
	<-gate.entered // job 0 running, job 1 queued

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	// Admission must flip to 503 immediately (healthz too), while the two
	// accepted jobs keep their claim.
	waitDraining := time.Now().Add(5 * time.Second)
	for !s.Draining() && time.Now().Before(waitDraining) {
		time.Sleep(time.Millisecond)
	}
	if w := post(h, "/v1/schedule", scheduleBody(t, mk(99))); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("admission during drain: status %d, want 503", w.Code)
	}
	if w := get(h, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", w.Code)
	}
	if got := counter(s, "serve.rejected_draining"); got != 1 {
		t.Fatalf("serve.rejected_draining = %d, want 1", got)
	}

	close(gate.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// No accepted job was dropped: both results are served from the cache.
	if got := counter(s, "serve.completed"); got != 2 {
		t.Fatalf("serve.completed = %d, want 2 (accepted jobs must finish)", got)
	}
	for i, key := range keys {
		w := get(h, "/v1/jobs/"+key)
		if w.Code != http.StatusOK {
			t.Fatalf("job %d lost during drain: status %d", i, w.Code)
		}
		if m := decodeResponse(t, w); m["cached"] != true {
			t.Fatalf("job %d not served from cache after drain: %v", i, m)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	gate := &gateFault{entered: make(chan string, 1), release: make(chan struct{})}
	s := New(Config{Workers: 1, Fault: gate})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	if w := get(h, "/v1/jobs/nonexistent"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", w.Code)
	}
	w := post(h, "/v1/schedule", scheduleBody(t,
		Request{Graph: ring(8), Algorithm: AlgFT, Battery: 4, K: 2, Seed: 5, Async: true}))
	if w.Code != http.StatusAccepted {
		t.Fatalf("async submit status %d: %s", w.Code, w.Body.String())
	}
	key := decodeResponse(t, w)["key"].(string)

	<-gate.entered
	if m := decodeResponse(t, get(h, "/v1/jobs/"+key)); m["status"] != "running" {
		t.Fatalf("in-flight job status %v, want running", m["status"])
	}
	close(gate.release)
	waitCounter(t, s, "serve.completed", 1)
	m := decodeResponse(t, get(h, "/v1/jobs/"+key))
	if m["cached"] != true || m["kind"] != "schedule" {
		t.Fatalf("finished job = %v", m)
	}
	if m["lifetime"].(float64) <= 0 {
		t.Fatalf("k=2-tolerant schedule on C_8 with b=4 has lifetime %v", m["lifetime"])
	}
}

func TestWorkerFaultFailsJob(t *testing.T) {
	s := New(Config{Workers: 1, Fault: chaos.NewWorkerFault(0, 1, 0, rng.New(3))})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	w := post(h, "/v1/schedule", scheduleBody(t,
		Request{Graph: ring(6), Algorithm: AlgUniform, Battery: 2, Seed: 1}))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", w.Code, w.Body.String())
	}
	if got := counter(s, "serve.worker_faults"); got != 1 {
		t.Fatalf("serve.worker_faults = %d, want 1", got)
	}
	if got := counter(s, "serve.failed"); got != 1 {
		t.Fatalf("serve.failed = %d, want 1", got)
	}
	if cacheLen(s) != 0 {
		t.Fatal("failed job left a cache entry")
	}
}

func TestExperimentEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	body, _ := json.Marshal(ExperimentRequest{ID: "e1", Quick: true, Trials: 1, Seed: 11})
	w := post(h, "/v1/experiment", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	m := decodeResponse(t, w)
	if m["kind"] != "experiment" || m["experiment"] != "E1" {
		t.Fatalf("response %v", m)
	}
	if table, _ := m["table"].(string); table == "" {
		t.Fatal("empty rendered table")
	}
	if w2 := post(h, "/v1/experiment", body); decodeResponse(t, w2)["cached"] != true {
		t.Fatal("repeated experiment not cached")
	}

	bad, _ := json.Marshal(ExperimentRequest{ID: "E999"})
	if w := post(h, "/v1/experiment", bad); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown experiment status %d, want 400", w.Code)
	}
}

func TestRequestValidation(t *testing.T) {
	s := New(Config{Workers: 1, MaxNodes: 100})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	cases := []struct {
		name string
		req  Request
		want int
	}{
		{"unknown algorithm", Request{Graph: ring(4), Algorithm: "frob"}, 400},
		{"self loop", Request{Graph: GraphSpec{N: 2, Edges: [][2]int{{1, 1}}}, Algorithm: AlgUniform}, 400},
		{"duplicate edge", Request{Graph: GraphSpec{N: 3, Edges: [][2]int{{0, 1}, {1, 0}}}, Algorithm: AlgUniform}, 400},
		{"out of range edge", Request{Graph: GraphSpec{N: 2, Edges: [][2]int{{0, 5}}}, Algorithm: AlgUniform}, 400},
		{"negative battery", Request{Graph: ring(4), Algorithm: AlgUniform, Battery: -1}, 400},
		{"battery length", Request{Graph: ring(4), Algorithm: AlgGeneral, Batteries: []int{1, 2}}, 400},
		{"non-uniform for uniform", Request{Graph: ring(3), Algorithm: AlgUniform, Batteries: []int{1, 2, 1}}, 400},
		{"k on plain algorithm", Request{Graph: ring(4), Algorithm: AlgUniform, Battery: 2, K: 2}, 400},
		{"unknown refiner", Request{Graph: ring(4), Algorithm: AlgUniform, Battery: 2, Refine: "frob"}, 400},
		{"refine by plain solver", Request{Graph: ring(4), Algorithm: AlgUniform, Battery: 2, Refine: AlgGeneral}, 400},
		{"stacked refiner", Request{Graph: ring(4), Algorithm: solver.NameAnneal, Battery: 2, Refine: solver.NameTabu}, 400},
		{"negative budget", Request{Graph: ring(4), Algorithm: AlgUniform, Battery: 2, Budget: -1}, 400},
		{"negative time budget", Request{Graph: ring(4), Algorithm: AlgUniform, Battery: 2, TimeBudgetMS: -1}, 400},
		{"too many nodes", Request{Graph: GraphSpec{N: 101}, Algorithm: AlgUniform, Battery: 1}, 413},
	}
	for _, c := range cases {
		if w := post(h, "/v1/schedule", scheduleBody(t, c.req)); w.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, w.Code, c.want, w.Body.String())
		}
	}
	if w := post(h, "/v1/schedule", []byte("{not json")); w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", w.Code)
	}
	// None of the rejects should have touched the queue.
	if got := counter(s, "serve.admitted"); got != 0 {
		t.Errorf("serve.admitted = %d after pure rejects", got)
	}
}

// TestScheduleRefineRequest exercises the budgeted-refinement surface of the
// schedule endpoint: refine= composes a refinement solver over the base
// algorithm, the refined lifetime never drops below the unrefined one, and
// refine/budget/time_budget_ms are part of the cache key, so refined and
// plain requests for the same instance do not share entries.
func TestScheduleRefineRequest(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	// Heterogeneous batteries: with a uniform budget the greedy base already
	// sits on the min-degree bottleneck bound and refinement has no slack.
	batteries := []int{4, 1, 3, 2, 5, 1, 2, 6, 1, 3, 2, 4}
	base := Request{Graph: ring(12), Algorithm: solver.NameGreedy, Batteries: batteries, Seed: 5}
	w := post(h, "/v1/schedule", scheduleBody(t, base))
	if w.Code != http.StatusOK {
		t.Fatalf("base status %d: %s", w.Code, w.Body.String())
	}
	var plain response
	if err := json.Unmarshal(w.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}

	refined := base
	refined.Refine = solver.NameTabu
	refined.Budget = 2000
	w = post(h, "/v1/schedule", scheduleBody(t, refined))
	if w.Code != http.StatusOK {
		t.Fatalf("refined status %d: %s", w.Code, w.Body.String())
	}
	var out response
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("refined request served from the plain request's cache entry")
	}
	if out.Lifetime < plain.Lifetime {
		t.Fatalf("refined lifetime %d < unrefined %d (anytime floor broken)",
			out.Lifetime, plain.Lifetime)
	}
	// The refined schedule must still be feasible on the requested instance.
	sched, err := core.ReadJSON(bytes.NewReader(out.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := refined.resolve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(inst.Graph, inst.Budgets, 1); err != nil {
		t.Fatalf("served refined schedule infeasible: %v", err)
	}

	// An identical refined request is a cache hit; a different budget is not.
	if m := decodeResponse(t, post(h, "/v1/schedule", scheduleBody(t, refined))); m["cached"] != true {
		t.Fatalf("repeated refined request not served from cache: %v", m)
	}
	bumped := refined
	bumped.Budget = 4000
	if m := decodeResponse(t, post(h, "/v1/schedule", scheduleBody(t, bumped))); m["cached"] == true {
		t.Fatal("different budget served from cache")
	}

	// A tiny time budget truncates refinement to the best schedule so far —
	// it must not fail the request, unlike timeout_ms.
	trunc := refined
	trunc.TimeBudgetMS = 1
	w = post(h, "/v1/schedule", scheduleBody(t, trunc))
	if w.Code != http.StatusOK {
		t.Fatalf("time-budgeted status %d: %s", w.Code, w.Body.String())
	}
	if m := decodeResponse(t, w); int(m["lifetime"].(float64)) < plain.Lifetime {
		t.Fatalf("time-budgeted lifetime %v < unrefined %d", m["lifetime"], plain.Lifetime)
	}
}

// TestScheduleAutoRequest pins the service surface of the portfolio: an
// algorithm:"auto" request on a grid runs the dispatch and answers with a
// feasible schedule, the response and cache key carry the literal name
// "auto" (so repeats hit the cache without re-running classification), and
// stacking refine over an auto that resolves to the non-refinable grid fast
// path is rejected at decode time as a 400 — before any job is enqueued —
// while the same stack off-grid (auto → greedy) is accepted.
func TestScheduleAutoRequest(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	req := Request{Graph: gridSpec(6, 7), Algorithm: AlgAuto, Battery: 3, Seed: 9}
	w := post(h, "/v1/schedule", scheduleBody(t, req))
	if w.Code != http.StatusOK {
		t.Fatalf("auto status %d: %s", w.Code, w.Body.String())
	}
	var resp response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != AlgAuto {
		t.Fatalf("response algorithm %q, want the literal %q", resp.Algorithm, AlgAuto)
	}
	sched, err := core.ReadJSON(bytes.NewReader(resp.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := req.resolve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(inst.Graph, inst.Budgets, 1); err != nil {
		t.Fatalf("served auto schedule infeasible: %v", err)
	}
	// The tiling's rotation must clear the single-phase floor b = 3.
	if resp.Lifetime <= 3 {
		t.Fatalf("auto lifetime %d on a 6x7 grid does not beat one dominating phase", resp.Lifetime)
	}
	if m := decodeResponse(t, post(h, "/v1/schedule", scheduleBody(t, req))); m["cached"] != true {
		t.Fatalf("repeated auto request not served from cache: %v", m)
	}

	refined := req
	refined.Refine = solver.NameTabu
	w = post(h, "/v1/schedule", scheduleBody(t, refined))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("refine over auto→grid: status %d, want 400 (%s)", w.Code, w.Body.String())
	}
	if admitted := counter(s, "serve.admitted"); admitted != 1 {
		t.Fatalf("serve.admitted = %d after the decode-time reject, want 1 (the reject must not enqueue)", admitted)
	}

	offGrid := Request{Graph: ring(30), Algorithm: AlgAuto, Battery: 3, Refine: solver.NameTabu, Seed: 9}
	if w := post(h, "/v1/schedule", scheduleBody(t, offGrid)); w.Code != http.StatusOK {
		t.Fatalf("refine over auto→greedy off-grid: status %d (%s)", w.Code, w.Body.String())
	}
}

func TestHealthzAndMetricsShareTheMux(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	if w := get(h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	post(h, "/v1/schedule", scheduleBody(t,
		Request{Graph: ring(5), Algorithm: AlgUniform, Battery: 2, Seed: 2}))
	w := get(h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	var snaps []obs.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snaps); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, sn := range snaps {
		found[sn.Name] = true
	}
	for _, name := range []string{"serve.requests", "serve.admitted", "serve.latency_ms", "serve.queue_depth"} {
		if !found[name] {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
}

// TestRealHTTPServer runs the full stack — StartHTTP, a real TCP port, the
// service mux, graceful Stop — as close to ltserve as a unit test gets.
func TestRealHTTPServer(t *testing.T) {
	s := New(Config{Workers: 2})
	hs, err := StartHTTP("127.0.0.1:0", s.Handler())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + hs.Addr()

	body := scheduleBody(t, Request{Graph: ring(12), Algorithm: AlgGeneral,
		Batteries: []int{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}, Seed: 9})
	resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Lifetime < 1 {
		t.Fatalf("lifetime %d", out.Lifetime)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still reachable after Stop")
	}
}

// TestMetricsAccounting pins the admission-outcome identity documented on
// the metrics struct over a mixed workload.
func TestMetricsAccounting(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	for seed := uint64(1); seed <= 5; seed++ {
		body := scheduleBody(t, Request{Graph: ring(7), Algorithm: AlgUniform, Battery: 2, Seed: seed})
		post(h, "/v1/schedule", body) // miss
		post(h, "/v1/schedule", body) // hit
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	requests := counter(s, "serve.requests")
	accounted := counter(s, "serve.cache_hits") + counter(s, "serve.coalesced") +
		counter(s, "serve.admitted") + counter(s, "serve.rejected_queue_full") +
		counter(s, "serve.rejected_inflight") + counter(s, "serve.rejected_draining")
	if requests != accounted {
		t.Fatalf("serve.requests = %d but outcomes sum to %d", requests, accounted)
	}
	if got := counter(s, "serve.admitted"); got != counter(s, "serve.completed") {
		t.Fatalf("admitted %d != completed %d after drain", got, counter(s, "serve.completed"))
	}
}

// TestRaceWidthSolverMetrics pins the racing execution path of the service:
// with RaceWidth > 1 each executed schedule job increments serve.solver_raced
// (never serve.solver_sequential), WHP attempts are counted through the
// EvAttempt hook, and the racing knob stays invisible on the wire — the
// request succeeds with a feasible schedule exactly like the sequential
// server's, and cache hits skip the solver counters entirely.
func TestRaceWidthSolverMetrics(t *testing.T) {
	s := New(Config{Workers: 2, RaceWidth: 3})
	h := s.Handler()
	body := scheduleBody(t, Request{Graph: ring(9), Algorithm: AlgUniform, Battery: 2, Tries: 4})
	if w := post(h, "/v1/schedule", body); w.Code != http.StatusOK {
		t.Fatalf("raced schedule request: %d %s", w.Code, w.Body.String())
	}
	if w := post(h, "/v1/schedule", body); w.Code != http.StatusOK { // cache hit
		t.Fatalf("cached schedule request: %d %s", w.Code, w.Body.String())
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := counter(s, "serve.solver_raced"); got != 1 {
		t.Fatalf("serve.solver_raced = %d, want 1 (one executed job, one cache hit)", got)
	}
	if got := counter(s, "serve.solver_sequential"); got != 0 {
		t.Fatalf("serve.solver_sequential = %d on a racing server", got)
	}
	// 3 raced attempt streams, up to 4 tries each; at least one attempt ran.
	attempts := counter(s, "serve.solver_attempts")
	if attempts < 1 || attempts > 12 {
		t.Fatalf("serve.solver_attempts = %d, want in [1, 12]", attempts)
	}

	seq := New(Config{Workers: 1})
	hs := seq.Handler()
	if w := post(hs, "/v1/schedule", body); w.Code != http.StatusOK {
		t.Fatalf("sequential schedule request: %d %s", w.Code, w.Body.String())
	}
	if err := seq.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := counter(seq, "serve.solver_sequential"); got != 1 {
		t.Fatalf("serve.solver_sequential = %d, want 1", got)
	}
	if got := counter(seq, "serve.solver_raced"); got != 0 {
		t.Fatalf("serve.solver_raced = %d on a sequential server", got)
	}
}
