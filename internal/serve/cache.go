package serve

import "container/list"

// lruCache is the result cache: a plain LRU over canonical request keys,
// plus a secondary index from graph fingerprint to the entries computed for
// that graph — what lets the PATCH endpoint invalidate exactly the entries a
// live graph delta staled, and nothing else. Results are immutable once
// stored (handlers add per-response envelope fields outside the Result), so
// entries are shared, never copied. The cache has its own methods but no own
// lock — Server.admit and completion consult it under Server.mu so cache,
// index, and pending-job state stay coherent.
type lruCache struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	// byFP indexes cached entry keys by Result.Fingerprint. Results without
	// a fingerprint (experiments) are not indexed.
	byFP map[string]map[string]bool
}

type lruEntry struct {
	key string
	res *Result
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
		byFP:     make(map[string]map[string]bool),
	}
}

// get returns the cached result for key and marks it most recently used.
func (c *lruCache) get(key string) (*Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// add stores res under key, evicting the least recently used entry when the
// cache is at capacity. Re-adding an existing key refreshes its value and
// recency (and re-indexes it if the fingerprint changed).
func (c *lruCache) add(key string, res *Result) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		entry := el.Value.(*lruEntry)
		c.unindex(entry)
		entry.res = res
		c.index(key, res)
		return
	}
	for c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		entry := oldest.Value.(*lruEntry)
		delete(c.items, entry.key)
		c.unindex(entry)
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	c.index(key, res)
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.ll.Len() }

func (c *lruCache) index(key string, res *Result) {
	if res == nil || res.Fingerprint == "" {
		return
	}
	keys := c.byFP[res.Fingerprint]
	if keys == nil {
		keys = make(map[string]bool, 1)
		c.byFP[res.Fingerprint] = keys
	}
	keys[key] = true
}

func (c *lruCache) unindex(entry *lruEntry) {
	if entry.res == nil || entry.res.Fingerprint == "" {
		return
	}
	keys := c.byFP[entry.res.Fingerprint]
	delete(keys, entry.key)
	if len(keys) == 0 {
		delete(c.byFP, entry.res.Fingerprint)
	}
}

// byFingerprint returns the cached results computed for the graph with the
// given fingerprint, without touching recency.
func (c *lruCache) byFingerprint(fp string) []*Result {
	keys := c.byFP[fp]
	if len(keys) == 0 {
		return nil
	}
	out := make([]*Result, 0, len(keys))
	for key := range keys {
		if el, ok := c.items[key]; ok {
			out = append(out, el.Value.(*lruEntry).res)
		}
	}
	return out
}

// invalidate removes every entry computed for the graph with the given
// fingerprint and returns how many were dropped — the surgical invalidation
// behind PATCH: entries for other graphs are untouched.
func (c *lruCache) invalidate(fp string) int {
	keys := c.byFP[fp]
	if len(keys) == 0 {
		return 0
	}
	n := 0
	for key := range keys {
		if el, ok := c.items[key]; ok {
			c.ll.Remove(el)
			delete(c.items, key)
			n++
		}
	}
	delete(c.byFP, fp)
	return n
}
