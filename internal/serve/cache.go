package serve

import "container/list"

// lruCache is the result cache: a plain LRU over canonical request keys.
// Results are immutable once stored (handlers add per-response envelope
// fields outside the Result), so entries are shared, never copied. The
// cache has its own methods but no own lock — Server.admit and completion
// consult it under Server.mu so cache and pending-job state stay coherent.
type lruCache struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	res *Result
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key and marks it most recently used.
func (c *lruCache) get(key string) (*Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// add stores res under key, evicting the least recently used entry when the
// cache is at capacity. Re-adding an existing key refreshes its value and
// recency.
func (c *lruCache) add(key string, res *Result) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).res = res
		return
	}
	for c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.ll.Len() }
