package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/solver"
)

func patchBody(t *testing.T, req PatchRequest) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func patch(h http.Handler, fp string, body []byte) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPatch, "/v1/schedule/"+fp, bytes.NewReader(body))
	h.ServeHTTP(w, r)
	return w
}

// solveRing posts a schedule request for C_n and returns the decoded
// response, fingerprint included.
func solveRing(t *testing.T, h http.Handler, n int, req Request) response {
	t.Helper()
	req.Graph = ring(n)
	w := post(h, "/v1/schedule", scheduleBody(t, req))
	if w.Code != http.StatusOK {
		t.Fatalf("schedule status %d: %s", w.Code, w.Body.String())
	}
	var resp response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fingerprint == "" {
		t.Fatal("schedule result carries no fingerprint")
	}
	return resp
}

// growDelta appends one node with the given budget, wired to nodes 0 and n/2
// of the pre-delta graph.
func growDelta(n, budget int) graph.Delta {
	return graph.Delta{
		AddNodes:   1,
		NewBudgets: []int{budget},
		AddEdges:   [][2]int{{0, n}, {n / 2, n}},
	}
}

func TestPatchEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	base := solveRing(t, h, 8, Request{Algorithm: AlgUniform, Battery: 5, Seed: 7})

	w := patch(h, base.Fingerprint, patchBody(t, PatchRequest{Delta: growDelta(8, 5), At: 1}))
	if w.Code != http.StatusOK {
		t.Fatalf("patch status %d: %s", w.Code, w.Body.String())
	}
	var resp response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "reconfig" {
		t.Fatalf("kind = %q, want reconfig", resp.Kind)
	}
	if resp.PriorFingerprint != base.Fingerprint {
		t.Fatalf("prior fingerprint %q != base %q", resp.PriorFingerprint, base.Fingerprint)
	}
	if resp.Fingerprint == base.Fingerprint || resp.Fingerprint == "" {
		t.Fatalf("post-delta fingerprint %q must differ from the base", resp.Fingerprint)
	}
	if resp.Violation {
		t.Fatal("transition reported a violation on a feasible instance")
	}
	if resp.Lifetime <= 0 {
		t.Fatalf("transition lifetime %d, want > 0", resp.Lifetime)
	}
	if resp.Overlap != 2 {
		t.Fatalf("overlap %d, want the default 2", resp.Overlap)
	}
	if len(resp.Mapping) != 8 {
		t.Fatalf("mapping length %d, want 8 pre-delta nodes", len(resp.Mapping))
	}
	// The transition schedule must be feasible on the post-delta instance
	// against the residual budgets (battery 5 minus 1 spent slot for the
	// nodes the old schedule had awake).
	sched, err := core.ReadJSON(bytes.NewReader(resp.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	g2 := graph.NewFromEdges(9, append(ring(8).Edges, [2]int{0, 8}, [2]int{4, 8}))
	usage := sched.Usage(9)
	for v, u := range usage {
		if u > 5 {
			t.Fatalf("node %d scheduled for %d slots, budget is at most 5", v, u)
		}
	}
	if err := sched.Validate(g2, []int{5, 5, 5, 5, 5, 5, 5, 5, 5}, 1); err != nil {
		t.Fatalf("transition schedule infeasible on the post-delta graph: %v", err)
	}

	// The patch invalidated every entry of the superseded graph: the original
	// schedule request is a cache miss again.
	if got := counter(s, "serve.invalidated"); got < 1 {
		t.Fatalf("serve.invalidated = %d, want >= 1", got)
	}
	w2 := post(h, "/v1/schedule", scheduleBody(t, Request{Graph: ring(8), Algorithm: AlgUniform, Battery: 5, Seed: 7}))
	if m := decodeResponse(t, w2); m["cached"] == true {
		t.Fatal("superseded schedule still served from cache after PATCH")
	}
	if got := counter(s, "serve.reconfigs"); got != 1 {
		t.Fatalf("serve.reconfigs = %d, want 1", got)
	}
}

func TestPatchIdempotentRetry(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	base := solveRing(t, h, 6, Request{Algorithm: AlgUniform, Battery: 2, Seed: 1})
	body := patchBody(t, PatchRequest{Delta: growDelta(6, 2), At: 0})

	w := patch(h, base.Fingerprint, body)
	if w.Code != http.StatusOK {
		t.Fatalf("patch status %d: %s", w.Code, w.Body.String())
	}
	// The completed patch invalidated its own base, so a retry cannot find
	// the base entry — it must be answered from the cached patch result.
	w2 := patch(h, base.Fingerprint, body)
	if w2.Code != http.StatusOK {
		t.Fatalf("retry status %d: %s", w2.Code, w2.Body.String())
	}
	m := decodeResponse(t, w2)
	if m["cached"] != true {
		t.Fatalf("retried PATCH not served from cache: %v", m)
	}
	if got := counter(s, "serve.reconfigs"); got != 1 {
		t.Fatalf("serve.reconfigs = %d after a retry, want 1 (no recomputation)", got)
	}
	// The admission identity still holds with the manual hit accounting of
	// the early cache check.
	total := counter(s, "serve.cache_hits") + counter(s, "serve.coalesced") +
		counter(s, "serve.admitted") + counter(s, "serve.rejected_queue_full") +
		counter(s, "serve.rejected_inflight") + counter(s, "serve.rejected_draining")
	if got := counter(s, "serve.requests"); got != total {
		t.Fatalf("serve.requests = %d, outcome sum = %d", got, total)
	}
}

func TestPatchChains(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	base := solveRing(t, h, 8, Request{Algorithm: AlgUniform, Battery: 4, Seed: 2})
	w := patch(h, base.Fingerprint, patchBody(t, PatchRequest{Delta: growDelta(8, 4), At: 0}))
	if w.Code != http.StatusOK {
		t.Fatalf("first patch status %d: %s", w.Code, w.Body.String())
	}
	var first response
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	// A second delta addresses the post-delta fingerprint: the patch result
	// itself is the new patchable base.
	w2 := patch(h, first.Fingerprint, patchBody(t, PatchRequest{
		Delta: graph.Delta{RemoveNodes: []int{8}}, At: 0,
	}))
	if w2.Code != http.StatusOK {
		t.Fatalf("chained patch status %d: %s", w2.Code, w2.Body.String())
	}
	var second response
	if err := json.Unmarshal(w2.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if second.PriorFingerprint != first.Fingerprint {
		t.Fatalf("chained prior %q, want %q", second.PriorFingerprint, first.Fingerprint)
	}
	if second.Fingerprint != base.Fingerprint {
		t.Fatalf("removing the added node must restore the original fingerprint: %q != %q",
			second.Fingerprint, base.Fingerprint)
	}
}

func TestPatchUnknownFingerprint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()
	w := patch(h, "deadbeef", patchBody(t, PatchRequest{Delta: growDelta(4, 1)}))
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", w.Code, w.Body.String())
	}
}

func TestPatchAmbiguousFingerprint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	base := solveRing(t, h, 8, Request{Algorithm: AlgUniform, Battery: 3, Seed: 5})
	other := solveRing(t, h, 8, Request{Algorithm: solver.NameGreedy, Battery: 3, Seed: 5})
	if other.Fingerprint != base.Fingerprint {
		t.Fatalf("same graph, different fingerprints: %q vs %q", base.Fingerprint, other.Fingerprint)
	}

	body := patchBody(t, PatchRequest{Delta: growDelta(8, 3), At: 0})
	if w := patch(h, base.Fingerprint, body); w.Code != http.StatusConflict {
		t.Fatalf("ambiguous patch status %d, want 409: %s", w.Code, w.Body.String())
	}
	// Naming the algorithm disambiguates.
	disamb := patchBody(t, PatchRequest{Delta: growDelta(8, 3), At: 0, Algorithm: AlgUniform})
	if w := patch(h, base.Fingerprint, disamb); w.Code != http.StatusOK {
		t.Fatalf("disambiguated patch status %d: %s", w.Code, w.Body.String())
	}
}

func TestPatchValidation(t *testing.T) {
	s := New(Config{Workers: 1, MaxNodes: 8})
	defer s.Shutdown(context.Background())
	h := s.Handler()
	base := solveRing(t, h, 8, Request{Algorithm: AlgUniform, Battery: 3, Seed: 9})

	neg := -1
	cases := []struct {
		name string
		req  PatchRequest
		want int
	}{
		{"negative at", PatchRequest{At: -1}, http.StatusBadRequest},
		{"negative overlap", PatchRequest{Overlap: &neg}, http.StatusBadRequest},
		{"negative tries", PatchRequest{Tries: -1}, http.StatusBadRequest},
		{"negative timeout", PatchRequest{TimeoutMS: -1}, http.StatusBadRequest},
		{"unknown solver", PatchRequest{Solver: "nope"}, http.StatusBadRequest},
		{"at past lifetime", PatchRequest{At: 1000}, http.StatusBadRequest},
		{"bad delta", PatchRequest{Delta: graph.Delta{RemoveNodes: []int{99}}}, http.StatusBadRequest},
		{"grows past cap", PatchRequest{Delta: growDelta(8, 3)}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		w := patch(h, base.Fingerprint, patchBody(t, tc.req))
		if w.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, w.Code, tc.want, w.Body.String())
		}
	}
	// None of the rejections consumed the base: a valid patch still works.
	if w := patch(h, base.Fingerprint, patchBody(t, PatchRequest{
		Delta: graph.Delta{RemoveEdges: [][2]int{{0, 1}}, AddEdges: [][2]int{{0, 2}}},
	})); w.Code != http.StatusOK {
		t.Fatalf("valid patch after rejections: status %d: %s", w.Code, w.Body.String())
	}
}
