package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/shard"
	"repro/internal/solver"
)

// Algorithm names accepted by the schedule endpoint. The service accepts
// every name in the internal/solver registry; these aliases of the paper
// algorithms' registry names are kept for callers of the Go API.
const (
	AlgUniform   = solver.NameUniform   // Algorithm 1: uniform batteries
	AlgGeneral   = solver.NameGeneral   // Algorithm 2: arbitrary batteries
	AlgFT        = solver.NameFT        // Algorithm 3: uniform batteries, k-tolerant
	AlgGeneralFT = solver.NameGeneralFT // repo extension: arbitrary batteries, k-tolerant
	AlgGrid      = solver.NameGrid      // pattern tiling on certified grid/torus instances
	AlgAuto      = solver.NameAuto      // portfolio: structure detection picks the solver
)

// GraphSpec is the wire form of a network graph: a node count and an
// undirected edge list. Unlike the internal constructors it validates
// rather than panics — it is the trust boundary of the service.
type GraphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// build validates the spec (node range, self-loops, duplicate edges, the
// maxNodes cap) and constructs the graph.
func (gs GraphSpec) build(maxNodes int) (*graph.Graph, error) {
	if gs.N < 0 {
		return nil, fmt.Errorf("graph.n = %d must be >= 0", gs.N)
	}
	if gs.N > maxNodes {
		return nil, errTooLarge{fmt.Sprintf("graph.n = %d exceeds the service cap of %d nodes", gs.N, maxNodes)}
	}
	// Duplicate detection keys on a packed uint64 rather than a [2]int:
	// integer keys hash several times faster, and this map is the single
	// hottest allocation on the request path (paid on cache hits too).
	seen := make(map[uint64]bool, len(gs.Edges))
	for i, e := range gs.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= gs.N || v < 0 || v >= gs.N {
			return nil, fmt.Errorf("edge %d {%d,%d}: endpoint out of range [0, %d)", i, u, v, gs.N)
		}
		if u == v {
			return nil, fmt.Errorf("edge %d: self-loop at node %d", i, u)
		}
		if u > v {
			u, v = v, u
		}
		packed := uint64(u)<<32 | uint64(v)
		if seen[packed] {
			return nil, fmt.Errorf("edge %d: duplicate edge {%d,%d}", i, u, v)
		}
		seen[packed] = true
	}
	return graph.NewFromEdges(gs.N, gs.Edges), nil
}

// errTooLarge marks a request rejected for size (HTTP 413) rather than
// shape (HTTP 400).
type errTooLarge struct{ msg string }

func (e errTooLarge) Error() string { return e.msg }

// Request is a schedule request: a graph, per-node duty budgets, and
// algorithm parameters. Delivery options (TimeoutMS, Async) are not part of
// the canonical cache key — two clients asking for the same schedule with
// different patience share one computation and one cache entry.
type Request struct {
	Graph     GraphSpec `json:"graph"`
	Algorithm string    `json:"algorithm"`
	// Battery is the uniform per-node budget; Batteries, when non-empty,
	// gives per-node budgets instead (required length N). The uniform
	// algorithms (uniform, ft) accept Batteries only if all entries agree.
	Battery   int     `json:"battery,omitempty"`
	Batteries []int   `json:"batteries,omitempty"`
	K         int     `json:"k,omitempty"`      // domination tolerance; default 1
	KConst    float64 `json:"kconst,omitempty"` // color-range constant; default 3
	Seed      uint64  `json:"seed,omitempty"`   // randomness seed; default 1
	Tries     int     `json:"tries,omitempty"`  // WHP retry budget; default 30
	// Refine names a refinement solver ("tabu", "anneal") to run on top of
	// Algorithm's schedule; empty means no refinement. Budget bounds the
	// refiner's candidate moves (0 = solver default), and TimeBudgetMS is the
	// wall-clock solve budget — unlike TimeoutMS it does not fail the request
	// but truncates refinement to the best schedule found so far. All three
	// change the response, so they are part of the cache key.
	Refine       string `json:"refine,omitempty"`
	Budget       int    `json:"budget,omitempty"`
	TimeBudgetMS int    `json:"time_budget_ms,omitempty"`
	// Shards > 1 partitions the graph (internal/shard), solves every shard
	// independently against the server's compositional shard cache, and
	// stitches the results with boundary repair. 0 or 1 solves whole.
	// Partitioner names the strategy; service graphs arrive as edge lists
	// with no coordinates, so only "bfs" (the default) is accepted. Both
	// change the response, so both are part of the cache key.
	Shards      int    `json:"shards,omitempty"`
	Partitioner string `json:"partitioner,omitempty"`
	TimeoutMS   int    `json:"timeout_ms,omitempty"` // per-request deadline; default server-side
	Async       bool   `json:"async,omitempty"`      // 202 + poll /v1/jobs/{key} instead of waiting
}

func (r *Request) k() int {
	if r.K <= 0 {
		return 1
	}
	return r.K
}

func (r *Request) kconst() float64 {
	if r.KConst <= 0 {
		return 3
	}
	return r.KConst
}

func (r *Request) seed() uint64 {
	if r.Seed == 0 {
		return 1
	}
	return r.Seed
}

func (r *Request) tries() int {
	if r.Tries <= 0 {
		return 30
	}
	return r.Tries
}

func (r *Request) budget(fallback int) int {
	if r.Budget <= 0 {
		return fallback
	}
	return r.Budget
}

// spec is the solver.Spec the request resolves to: the algorithm itself, or
// — when Refine is set — the refiner with the algorithm as its base. The
// domination tolerance is not spec material anymore: it lives on the typed
// instance resolve builds.
func (r *Request) spec() solver.Spec {
	s := solver.Spec{Name: r.Algorithm, KConst: r.kconst()}
	if r.Refine != "" {
		s.Name = r.Refine
		s.Base = r.Algorithm
	}
	return s
}

func timeoutFromMS(ms int, fallback time.Duration) time.Duration {
	if ms <= 0 {
		return fallback
	}
	return time.Duration(ms) * time.Millisecond
}

// resolve validates the request and returns the typed instance it
// describes: the built graph under the normalized per-node budget vector
// (uniform scalars expanded) and the domination tolerance, which is what
// both the solver and the canonical key consume. The algorithm name
// resolves through the internal/solver registry, and the solver's own
// Validate supplies the shape checks (budget-vector length and signs,
// uniformity for the uniform algorithms, tolerance restrictions, node caps
// for the exponential baselines) — all surfaced as client errors. For
// algorithm "auto" that validation runs the portfolio dispatch at decode
// time, so a refine stage stacked on an auto that resolves to a
// non-refinable fast path (the grid solver) is a 400 here, before any job
// is enqueued.
func (r *Request) resolve(maxNodes int) (*instance.Instance, error) {
	if _, ok := solver.Get(r.Algorithm); !ok {
		return nil, fmt.Errorf("unknown algorithm %q (have %s)",
			r.Algorithm, strings.Join(solver.Names(), ", "))
	}
	if r.Refine != "" && !isRefiner(r.Refine) {
		return nil, fmt.Errorf("refine = %q is not a refinement solver (have %s)",
			r.Refine, strings.Join(solver.RefinerNames(), ", "))
	}
	sv, _ := solver.Get(r.spec().Name)
	if r.K < 0 {
		return nil, fmt.Errorf("k = %d must be >= 1", r.K)
	}
	if r.KConst < 0 {
		return nil, fmt.Errorf("kconst = %v must be > 0", r.KConst)
	}
	if r.Tries < 0 {
		return nil, fmt.Errorf("tries = %d must be >= 0", r.Tries)
	}
	if r.Budget < 0 {
		return nil, fmt.Errorf("budget = %d must be >= 0", r.Budget)
	}
	if r.TimeBudgetMS < 0 {
		return nil, fmt.Errorf("time_budget_ms = %d must be >= 0", r.TimeBudgetMS)
	}
	if r.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms = %d must be >= 0", r.TimeoutMS)
	}
	if r.Shards < 0 {
		return nil, fmt.Errorf("shards = %d must be >= 0", r.Shards)
	}
	switch r.Partitioner {
	case "", "bfs":
	case "geom":
		return nil, fmt.Errorf("partitioner = %q needs node coordinates, which edge-list requests do not carry; use \"bfs\"", r.Partitioner)
	default:
		return nil, fmt.Errorf("unknown partitioner %q (have %s)",
			r.Partitioner, strings.Join(shard.Partitioners(), ", "))
	}
	g, err := r.Graph.build(maxNodes)
	if err != nil {
		return nil, err
	}

	budgets := make([]int, g.N())
	switch {
	case len(r.Batteries) > 0:
		if len(r.Batteries) != g.N() {
			return nil, fmt.Errorf("%d batteries for %d nodes", len(r.Batteries), g.N())
		}
		for v, b := range r.Batteries {
			if b < 0 {
				return nil, fmt.Errorf("batteries[%d] = %d must be >= 0", v, b)
			}
			budgets[v] = b
		}
	default:
		if r.Battery < 0 {
			return nil, fmt.Errorf("battery = %d must be >= 0", r.Battery)
		}
		for v := range budgets {
			budgets[v] = r.Battery
		}
	}
	inst := instance.New(g, budgets).WithK(r.k())
	// The effective solver's Validate supplies the shape checks; a refiner's
	// Validate also resolves and validates its base algorithm (running the
	// auto dispatch if the base says so).
	if err := sv.Validate(inst, r.spec()); err != nil {
		return nil, err
	}
	return inst, nil
}

// isRefiner reports whether name is a registered refinement solver.
func isRefiner(name string) bool {
	for _, n := range solver.RefinerNames() {
		if n == name {
			return true
		}
	}
	return false
}

// key returns the canonical cache/coalescing key of the request: the
// graph.Hasher sum over graph structure, normalized budgets, algorithm, and
// parameters. Delivery options are deliberately excluded. Requests for
// "auto" key on the literal name "auto", not on the solver the portfolio
// dispatches to — the dispatch is deterministic in the graph (which the key
// hashes in full), so the entry can never go stale, and an explicit request
// for the concrete solver stays a distinct cache line.
func (r *Request) key(inst *instance.Instance) string {
	return graph.NewHasher().
		String("kind", "schedule").
		Graph("graph", inst.Graph).
		Ints("budgets", inst.Budgets).
		String("alg", r.Algorithm).
		String("refine", r.Refine).
		Int("k", r.k()).
		Float("kconst", r.kconst()).
		Uint64("seed", r.seed()).
		Int("tries", r.tries()).
		Int("budget", r.Budget).
		Int("time_budget_ms", r.TimeBudgetMS).
		Int("shards", r.Shards).
		String("partitioner", r.Partitioner).
		Sum()
}

// ExperimentRequest asks the service to run one registered experiment
// (internal/experiments) with the given configuration. The per-request
// deadline is wired into experiments.Config.Cancel, so a run past its
// deadline stops between trials and surfaces experiments.ErrCanceled.
type ExperimentRequest struct {
	ID        string `json:"id"`
	Seed      uint64 `json:"seed,omitempty"`
	Trials    int    `json:"trials,omitempty"`
	Quick     bool   `json:"quick,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	Async     bool   `json:"async,omitempty"`
}

func (r *ExperimentRequest) resolve() (string, error) {
	id := strings.ToUpper(strings.TrimSpace(r.ID))
	if _, ok := experiments.Get(id); !ok {
		return "", fmt.Errorf("unknown experiment %q (have %v)", r.ID, experiments.IDs())
	}
	if r.Trials < 0 {
		return "", fmt.Errorf("trials = %d must be >= 0", r.Trials)
	}
	if r.TimeoutMS < 0 {
		return "", fmt.Errorf("timeout_ms = %d must be >= 0", r.TimeoutMS)
	}
	return id, nil
}

func (r *ExperimentRequest) key(id string) string {
	quick := 0
	if r.Quick {
		quick = 1
	}
	return graph.NewHasher().
		String("kind", "experiment").
		String("id", id).
		Uint64("seed", r.Seed).
		Int("trials", r.Trials).
		Int("quick", quick).
		Sum()
}

// Result is the cached, immutable outcome of one computation. Schedule
// results carry the schedule in the cmd/ltsched interchange format;
// experiment results carry the rendered table; reconfig results carry the
// transition schedule plus the delta bookkeeping (fingerprints, mapping,
// overlap cost). Per-response metadata (cached, coalesced) lives in the HTTP
// envelope, not here, so one Result can serve many responses.
type Result struct {
	Key        string          `json:"key"`
	Kind       string          `json:"kind"` // "schedule" | "experiment" | "reconfig"
	Algorithm  string          `json:"algorithm,omitempty"`
	Lifetime   int             `json:"lifetime,omitempty"`
	Phases     int             `json:"phases,omitempty"`
	Schedule   json.RawMessage `json:"schedule,omitempty"`
	Experiment string          `json:"experiment,omitempty"`
	Table      string          `json:"table,omitempty"`
	SolveMS    float64         `json:"solve_ms"`

	// Fingerprint is the hex graph fingerprint the schedule was computed
	// for — the address PATCH /v1/schedule/{fingerprint} patches against and
	// the key the cache's invalidation index groups by. Empty on experiment
	// results.
	Fingerprint string `json:"fingerprint,omitempty"`
	// The reconfig fields below are set only on Kind == "reconfig" results.
	// PriorFingerprint is the fingerprint the delta was applied to;
	// Fingerprint above is the post-delta one (chained PATCHes address it).
	PriorFingerprint string `json:"prior_fingerprint,omitempty"`
	Overlap          int    `json:"overlap,omitempty"`        // achieved overlap window, slots
	OverlapEnergy    int    `json:"overlap_energy,omitempty"` // extra slots charged to outgoing nodes
	Degraded         bool   `json:"degraded,omitempty"`       // shorter window or solver fallback
	Violation        bool   `json:"violation,omitempty"`      // domination could not be preserved
	Invalidated      int    `json:"invalidated,omitempty"`    // cache entries dropped for the prior fingerprint
	Mapping          []int  `json:"mapping,omitempty"`        // old→new node IDs, -1 = removed

	// ctx carries the solved instance (graph, budgets, schedule) alongside
	// the wire payload so a PATCH against this result's fingerprint can plan
	// a transition without re-parsing anything. Unexported: never serialized,
	// immutable once set.
	ctx *scheduleCtx
	// shardSched is set only on Kind == "shard" entries: one shard's cached
	// schedule under its content-addressed key (see shardCache). These
	// entries carry no Fingerprint on purpose — fingerprint invalidation
	// must never drop them.
	shardSched *core.Schedule
}
