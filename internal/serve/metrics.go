package serve

import "repro/internal/obs"

// LatencyBounds is the bucket layout (milliseconds) of the service latency
// histograms: sub-millisecond cache hits through multi-second experiment
// runs.
var LatencyBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// metrics is the service's obs surface, resolved once at construction so the
// request path pays atomic adds, not registry lookups. Every admission
// outcome is counted exactly once per request:
//
//	serve.requests = serve.cache_hits + serve.coalesced + serve.admitted
//	               + serve.rejected_* ,
//	serve.admitted = serve.completed + serve.canceled + serve.failed
//	               (once the server is drained),
//
// which is what the end-to-end tests assert behavior against.
//
// The serve.solver_* group observes the solver driver under each schedule
// job: serve.solver_attempts counts WHP retries across all jobs and race
// attempts (via the driver's obs.EvAttempt hook), while exactly one of
// serve.solver_sequential / serve.solver_raced increments per executed
// schedule job, keyed on whether the configured race width exceeds 1.
type metrics struct {
	requests          *obs.Counter
	admitted          *obs.Counter
	cacheHits         *obs.Counter
	cacheMisses       *obs.Counter
	coalesced         *obs.Counter
	rejectedQueueFull *obs.Counter
	rejectedInFlight  *obs.Counter
	rejectedDraining  *obs.Counter
	completed         *obs.Counter
	canceled          *obs.Counter
	failed            *obs.Counter
	workerFaults      *obs.Counter
	solverAttempts    *obs.Counter
	solverSequential  *obs.Counter
	solverRaced       *obs.Counter

	// The serve.reconfig_* group observes PATCH /v1/schedule/{fp}:
	// serve.reconfigs counts executed reconfig jobs, of which
	// serve.reconfig_degraded fell short of the request (shorter overlap or
	// solver fallback) and serve.reconfig_violations lost domination;
	// serve.overlap_energy accumulates the residual slots charged to outgoing
	// dominators, and serve.invalidated the cache entries dropped because
	// their graph was superseded by a delta.
	reconfigs          *obs.Counter
	reconfigDegraded   *obs.Counter
	reconfigViolations *obs.Counter
	invalidated        *obs.Counter
	overlapEnergy      *obs.Counter

	// The serve.shard_* group observes sharded solves (Request.Shards > 1):
	// serve.shard_solves counts per-shard solver runs, serve.shard_cache_hits
	// the shards answered from the compositional cache instead — after a
	// PATCH whose delta touched one tile, exactly one solve and shards-1 hits.
	// serve.shard_repairs and serve.shard_replans count the stitcher's
	// boundary recruitments and shard replan escalations.
	shardSolves    *obs.Counter
	shardCacheHits *obs.Counter
	shardRepairs   *obs.Counter
	shardReplans   *obs.Counter

	queueDepth *obs.Gauge
	running    *obs.Gauge
	pending    *obs.Gauge

	latencyMS   *obs.Histogram
	queueWaitMS *obs.Histogram
	solveMS     *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		requests:          reg.Counter("serve.requests"),
		admitted:          reg.Counter("serve.admitted"),
		cacheHits:         reg.Counter("serve.cache_hits"),
		cacheMisses:       reg.Counter("serve.cache_misses"),
		coalesced:         reg.Counter("serve.coalesced"),
		rejectedQueueFull: reg.Counter("serve.rejected_queue_full"),
		rejectedInFlight:  reg.Counter("serve.rejected_inflight"),
		rejectedDraining:  reg.Counter("serve.rejected_draining"),
		completed:         reg.Counter("serve.completed"),
		canceled:          reg.Counter("serve.canceled"),
		failed:            reg.Counter("serve.failed"),
		workerFaults:      reg.Counter("serve.worker_faults"),
		solverAttempts:    reg.Counter("serve.solver_attempts"),
		solverSequential:  reg.Counter("serve.solver_sequential"),
		solverRaced:       reg.Counter("serve.solver_raced"),

		reconfigs:          reg.Counter("serve.reconfigs"),
		reconfigDegraded:   reg.Counter("serve.reconfig_degraded"),
		reconfigViolations: reg.Counter("serve.reconfig_violations"),
		invalidated:        reg.Counter("serve.invalidated"),
		overlapEnergy:      reg.Counter("serve.overlap_energy"),

		shardSolves:    reg.Counter("serve.shard_solves"),
		shardCacheHits: reg.Counter("serve.shard_cache_hits"),
		shardRepairs:   reg.Counter("serve.shard_repairs"),
		shardReplans:   reg.Counter("serve.shard_replans"),
		queueDepth:     reg.Gauge("serve.queue_depth"),
		running:        reg.Gauge("serve.running"),
		pending:        reg.Gauge("serve.pending"),
		latencyMS:      reg.Histogram("serve.latency_ms", LatencyBounds),
		queueWaitMS:    reg.Histogram("serve.queue_wait_ms", LatencyBounds),
		solveMS:        reg.Histogram("serve.solve_ms", LatencyBounds),
	}
}

// attemptTracer is the obs hook handed to the solver driver: it counts
// every WHP retry into serve.solver_attempts. The racing driver serializes
// emissions, and obs.Counter is atomic anyway.
type attemptTracer struct{ c *obs.Counter }

func (a attemptTracer) Emit(ev obs.Event) {
	if ev.Type == obs.EvAttempt {
		a.c.Inc()
	}
}
