package serve

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Solve computes a feasible schedule for the request: the WHP retry loop of
// the core algorithms (generate a raw schedule, truncate at the first
// non-k-dominating phase, keep the best, stop early at the paper's
// guarantee) with the service's cancellation contract threaded through —
// cancel is the sticky deadline check of experiments.Config.Cancel, polled
// before every retry, and a fired cancel surfaces experiments.ErrCanceled.
// This mirrors core.UniformWHP et al., which cannot be interrupted
// mid-budget.
func Solve(g *graph.Graph, budgets []int, req *Request, cancel func() bool) (*core.Schedule, error) {
	opt := core.Options{K: req.kconst(), Src: rng.New(req.seed())}
	k := req.k()
	uniform := 0
	if g.N() > 0 {
		uniform = budgets[0]
	}

	var generate func() *core.Schedule
	var target, truncK int
	switch req.Algorithm {
	case AlgUniform:
		target = core.GuaranteedPhases(g, opt) * uniform
		truncK = 1
		generate = func() *core.Schedule { return core.Uniform(g, uniform, opt) }
	case AlgGeneral:
		target = core.GeneralGuaranteedSlots(g, budgets, opt)
		truncK = 1
		generate = func() *core.Schedule { return core.General(g, budgets, opt) }
	case AlgFT:
		groups := core.GuaranteedPhases(g, opt) / k
		target = uniform / 2
		if groups > 0 {
			target += groups * (uniform - uniform/2)
		}
		truncK = k
		generate = func() *core.Schedule { return core.FaultTolerant(g, uniform, k, opt) }
	case AlgGeneralFT:
		target = core.GeneralGuaranteedSlots(g, budgets, opt) / k
		truncK = k
		generate = func() *core.Schedule { return core.GeneralFaultTolerant(g, budgets, k, opt) }
	default:
		return nil, fmt.Errorf("serve: unvalidated algorithm %q", req.Algorithm)
	}

	ck := domset.NewChecker(g)
	best := &core.Schedule{}
	for try := 0; try < req.tries(); try++ {
		if cancel() {
			return nil, experiments.ErrCanceled
		}
		s := generate().TruncateInvalidWith(ck, truncK)
		if s.Lifetime() > best.Lifetime() {
			best = s
		}
		if best.Lifetime() >= target {
			break
		}
	}
	// The service never hands out an infeasible schedule: a violation here
	// is a bug, not a client error, and fails the job loudly.
	if err := best.ValidateWith(ck, budgets, truncK); err != nil {
		return nil, fmt.Errorf("serve: produced infeasible schedule: %w", err)
	}
	return best, nil
}

// scheduleResult renders a solved schedule into the immutable cached Result.
func scheduleResult(key string, req *Request, s *core.Schedule) (*Result, error) {
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("serve: encoding schedule: %w", err)
	}
	return &Result{
		Key:       key,
		Kind:      "schedule",
		Algorithm: req.Algorithm,
		Lifetime:  s.Lifetime(),
		Phases:    len(s.Phases),
		Schedule:  bytes.TrimSpace(buf.Bytes()),
	}, nil
}

// experimentResult renders a finished experiment table into a Result.
func experimentResult(key, id string, t *experiments.Table) (*Result, error) {
	var buf strings.Builder
	if err := t.Render(&buf); err != nil {
		return nil, fmt.Errorf("serve: rendering table: %w", err)
	}
	return &Result{
		Key:        key,
		Kind:       "experiment",
		Experiment: id,
		Table:      buf.String(),
	}, nil
}
