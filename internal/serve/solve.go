package serve

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/solver"
)

// SolveDefaults carries the server-side budget defaults into Solve: the
// refinement move budget and wall-clock solve budget a request gets when it
// does not carry its own. The zero value defers to the solver's defaults
// (budget) and no deadline (time budget).
type SolveDefaults struct {
	Budget     int
	TimeBudget time.Duration
}

// Solve computes a feasible schedule for the request through the solver
// registry: the request's spec resolves to a registered solver — the
// algorithm itself, or a refiner stacked on it when the request asks for
// refinement — and the generic driver runs the retry/truncate/keep-best/
// early-stop loop with the service's cancellation contract threaded through.
// cancel is the sticky deadline check of experiments.Config.Cancel, polled
// before every retry, and a fired cancel surfaces experiments.ErrCanceled;
// a time budget (request time_budget_ms, or the server default) instead
// becomes a solver deadline, which truncates refinement to the best schedule
// found so far rather than failing. Options.RaceWidth > 1 races that many
// independently seeded attempts concurrently with a deterministic winner;
// <= 1 is the sequential driver. The driver validates the final schedule
// before returning, so the service never hands out an infeasible one.
//
// Race attempts run on a transient per-call pool, never on the service's
// worker pool: Solve itself executes on a pool worker, and re-submitting
// the attempts to the same pool would deadlock once every worker blocks
// waiting for attempts that sit queued behind the blocked workers.
func Solve(inst *instance.Instance, req *Request, width int,
	defs SolveDefaults, hooks obs.Hooks, cancel func() bool) (*core.Schedule, error) {
	opt := solver.Options{
		Tries:     req.tries(),
		Budget:    req.budget(defs.Budget),
		Cancel:    cancel,
		Hooks:     hooks,
		Src:       rng.New(req.seed()),
		RaceWidth: width,
	}
	if tb := timeoutFromMS(req.TimeBudgetMS, defs.TimeBudget); tb > 0 {
		opt.Deadline = time.Now().Add(tb)
	}
	return solver.Solve(inst, req.spec(), opt)
}

// shardCache adapts the server's LRU to shard.Cache. Entries are Kind
// "shard" Results keyed by the content-addressed shard key and carry no
// graph fingerprint, so PATCH's fingerprint invalidation never touches
// them — deliberately: a delta gives the shards it touched new keys (their
// local instances changed), while untouched shards keep their keys and hit.
// Invalidation is thereby exactly "entries whose shard changed", with no
// bookkeeping; stale keys simply age out of the LRU.
type shardCache struct{ s *Server }

func (c shardCache) Get(key string) (*core.Schedule, bool) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	res, ok := c.s.cache.get(key)
	if !ok || res.shardSched == nil {
		return nil, false
	}
	return res.shardSched, true
}

func (c shardCache) Put(key string, sched *core.Schedule) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	c.s.cache.add(key, &Result{Key: key, Kind: "shard", shardSched: sched})
}

// shardOptions assembles the shard.Options of a server-side sharded solve:
// the per-shard solves run on a transient pool (the job itself occupies a
// serve worker; see Solve on why re-entering the service pool is off the
// table), consult the server's compositional cache, and count into the
// serve.shard_* metrics via the solve/hit events they emit.
func (s *Server) shardOptions(spec solver.Spec, seed uint64, tries, budget int,
	deadline time.Time, hooks obs.Hooks, cancel func() bool) shard.Options {
	return shard.Options{
		Spec: spec,
		Solver: solver.Options{
			Tries:    tries,
			Budget:   budget,
			Deadline: deadline,
			Cancel:   cancel,
		},
		Seed:          seed,
		TransientPool: true,
		Cache:         shardCache{s},
		Hooks:         hooks,
	}
}

// solveSharded is the sharded counterpart of Solve: partition, per-shard
// solve against the compositional cache, stitch with boundary repair. It
// returns the partition alongside the schedule so the result's ctx can
// rebase it when a PATCH arrives.
func (s *Server) solveSharded(inst *instance.Instance, req *Request,
	defs SolveDefaults, hooks obs.Hooks, cancel func() bool) (*core.Schedule, *shard.Partition, error) {
	p, err := shard.ByName(req.Partitioner, inst.Graph, nil, req.Shards, req.seed())
	if err != nil {
		return nil, nil, err
	}
	var deadline time.Time
	if tb := timeoutFromMS(req.TimeBudgetMS, defs.TimeBudget); tb > 0 {
		deadline = time.Now().Add(tb)
	}
	opt := s.shardOptions(req.spec(), req.seed(), req.tries(), req.budget(defs.Budget),
		deadline, hooks, cancel)
	solved, err := shard.SolveShards(inst, p, opt)
	if err != nil {
		return nil, nil, err
	}
	st, err := s.stitchCounted(inst, p, solved, hooks)
	if err != nil {
		return nil, nil, err
	}
	return st.Schedule, p, nil
}

// stitchCounted runs shard.Stitch and folds the outcome into the
// serve.shard_* metrics.
func (s *Server) stitchCounted(inst *instance.Instance, p *shard.Partition,
	solved []*shard.ShardResult, hooks obs.Hooks) (*shard.Stitched, error) {
	for _, sr := range solved {
		if sr.Cached {
			s.met.shardCacheHits.Inc()
		} else {
			s.met.shardSolves.Inc()
		}
	}
	st, err := shard.Stitch(inst, p, solved, hooks)
	if err != nil {
		return nil, err
	}
	s.met.shardRepairs.Add(uint64(st.Repairs))
	s.met.shardReplans.Add(uint64(st.Replans))
	return st, nil
}

// scheduleJSON renders a schedule into the cmd/ltsched interchange format.
func scheduleJSON(s *core.Schedule) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("serve: encoding schedule: %w", err)
	}
	return json.RawMessage(bytes.TrimSpace(buf.Bytes())), nil
}

// scheduleResult renders a solved schedule into the immutable cached Result,
// stamping the graph fingerprint and retaining the solved instance (ctx) so
// the result is addressable — and patchable — by PATCH /v1/schedule/{fp}.
func scheduleResult(key string, req *Request, inst *instance.Instance,
	s *core.Schedule, part *shard.Partition, defs SolveDefaults) (*Result, error) {
	raw, err := scheduleJSON(s)
	if err != nil {
		return nil, err
	}
	fp := inst.Graph.Fingerprint()
	return &Result{
		Key:         key,
		Kind:        "schedule",
		Algorithm:   req.Algorithm,
		Lifetime:    s.Lifetime(),
		Phases:      len(s.Phases),
		Schedule:    raw,
		Fingerprint: hex.EncodeToString(fp[:]),
		ctx: &scheduleCtx{
			inst:      inst,
			algorithm: req.Algorithm,
			seed:      req.seed(),
			tries:     req.tries(),
			sched:     s,
			spec:      req.spec(),
			budget:    req.budget(defs.Budget),
			part:      part,
		},
	}, nil
}

// experimentResult renders a finished experiment table into a Result.
func experimentResult(key, id string, t *experiments.Table) (*Result, error) {
	var buf strings.Builder
	if err := t.Render(&buf); err != nil {
		return nil, fmt.Errorf("serve: rendering table: %w", err)
	}
	return &Result{
		Key:        key,
		Kind:       "experiment",
		Experiment: id,
		Table:      buf.String(),
	}, nil
}
