package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/graph"
	"repro/internal/solver"
)

// gridSpec returns the w×h grid graph as a wire spec — the canonical
// instance with thin shard seams.
func gridSpec(w, h int) GraphSpec {
	var edges [][2]int
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, [2]int{id(x, y), id(x+1, y)})
			}
			if y+1 < h {
				edges = append(edges, [2]int{id(x, y), id(x, y+1)})
			}
		}
	}
	return GraphSpec{N: w * h, Edges: edges}
}

func TestScheduleShardedEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	req := Request{Graph: gridSpec(8, 8), Algorithm: solver.NameGreedy, Battery: 4, Shards: 4}
	w := post(h, "/v1/schedule", scheduleBody(t, req))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Lifetime <= 0 {
		t.Fatalf("sharded lifetime %d, want > 0", resp.Lifetime)
	}
	solves := counter(s, "serve.shard_solves")
	if solves < 2 {
		t.Fatalf("shard_solves = %d after a %d-shard solve", solves, req.Shards)
	}
	if hits := counter(s, "serve.shard_cache_hits"); hits != 0 {
		t.Fatalf("shard_cache_hits = %d on a cold cache", hits)
	}

	// The whole request is cached under its canonical key: a repeat is a
	// cache hit and runs no shard work at all.
	w = post(h, "/v1/schedule", scheduleBody(t, req))
	var again response
	if err := json.Unmarshal(w.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical sharded request missed the result cache")
	}
	if got := counter(s, "serve.shard_solves"); got != solves {
		t.Fatalf("repeat request re-solved shards (%d -> %d)", solves, got)
	}

	// A different shard count is a different request key AND different shard
	// keys (the partition changed), so it solves fresh.
	req2 := req
	req2.Shards = 2
	w = post(h, "/v1/schedule", scheduleBody(t, req2))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := counter(s, "serve.shard_solves"); got <= solves {
		t.Fatalf("different shard count did not solve fresh (%d -> %d)", solves, got)
	}
}

func TestScheduleShardValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	for _, tc := range []struct {
		name string
		mut  func(*Request)
	}{
		{"geom partitioner without coordinates", func(r *Request) { r.Shards = 2; r.Partitioner = "geom" }},
		{"unknown partitioner", func(r *Request) { r.Shards = 2; r.Partitioner = "metis" }},
	} {
		req := Request{Graph: ring(8), Algorithm: solver.NameGreedy, Battery: 3}
		tc.mut(&req)
		w := post(h, "/v1/schedule", scheduleBody(t, req))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, w.Code, w.Body.String())
		}
	}
}

// TestPatchShardedResolvesOneShard is the compositional-caching acceptance
// check: after a sharded solve, a delta interior to one tile re-solves
// exactly that shard — every other shard's schedule is served from the
// content-addressed cache, which fingerprint invalidation never touches.
func TestPatchShardedResolvesOneShard(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	req := Request{Graph: gridSpec(8, 8), Algorithm: solver.NameGreedy, Battery: 4, Shards: 4}
	w := post(h, "/v1/schedule", scheduleBody(t, req))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var base response
	if err := json.Unmarshal(w.Body.Bytes(), &base); err != nil {
		t.Fatal(err)
	}

	// Reach under the HTTP surface for the retained partition to find a
	// node interior to one shard (a delta there touches no halo).
	s.mu.Lock()
	res, ok := s.cache.get(base.Key)
	s.mu.Unlock()
	if !ok || res.ctx == nil || res.ctx.part == nil {
		t.Fatal("sharded result did not retain its partition")
	}
	part := res.ctx.part
	nShards := len(part.Shards)
	if nShards < 2 {
		t.Fatalf("partition has %d shards; need >= 2", nShards)
	}
	victim := -1
	for v := 0; v < res.ctx.inst.N(); v++ {
		if len(part.Touched(res.ctx.inst.Graph, []int{v})) == 1 {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Fatal("no interior node in any shard")
	}

	solves0 := counter(s, "serve.shard_solves")
	hits0 := counter(s, "serve.shard_cache_hits")

	w = patch(h, base.Fingerprint, patchBody(t, PatchRequest{
		Delta: graph.Delta{RemoveNodes: []int{victim}},
		At:    0,
	}))
	if w.Code != http.StatusOK {
		t.Fatalf("patch status %d: %s", w.Code, w.Body.String())
	}
	var resp response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "reconfig" {
		t.Fatalf("kind = %q, want reconfig", resp.Kind)
	}
	if resp.Violation {
		t.Fatal("sharded patch reported a violation on a feasible instance")
	}
	if resp.Lifetime <= 0 {
		t.Fatalf("transition lifetime %d, want > 0", resp.Lifetime)
	}

	if got := counter(s, "serve.shard_solves") - solves0; got != 1 {
		t.Fatalf("interior single-node delta re-solved %d shards, want exactly 1", got)
	}
	if got := counter(s, "serve.shard_cache_hits") - hits0; got != uint64(nShards-1) {
		t.Fatalf("%d shard cache hits on patch, want %d (all untouched shards)", got, nShards-1)
	}

	// The patch result stays sharded: a second interior delta against the
	// new fingerprint repeats the trick.
	s.mu.Lock()
	res2, ok := s.cache.get(resp.Key)
	s.mu.Unlock()
	if !ok || res2.ctx == nil || res2.ctx.part == nil {
		t.Fatal("patch result did not retain a rebased partition")
	}
}
