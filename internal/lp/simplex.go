// Package lp implements a dense-tableau primal simplex solver for linear
// programs in the canonical packing form
//
//	maximize    c·x
//	subject to  A x ≤ b,  x ≥ 0,  with b ≥ 0.
//
// The restriction b ≥ 0 means the all-slack basis is feasible and no Phase I
// is required; every LP the repository solves (fractional Maximum
// Cluster-Lifetime: pack dominating sets against battery budgets) has this
// form. Pivoting uses Bland's rule, which precludes cycling at the cost of
// speed — fine for the instance sizes of the exact experiments.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnbounded is returned when the LP has unbounded objective value.
var ErrUnbounded = errors.New("lp: unbounded objective")

const eps = 1e-9

// Problem is a packing LP: maximize c·x subject to a·x ≤ b, x ≥ 0.
// All entries of b must be non-negative. Construct with NewProblem.
type Problem struct {
	c []float64
	a [][]float64
	b []float64
}

// NewProblem builds a Problem with the given objective c, constraint matrix
// a (rows are constraints), and right-hand side b. It validates dimensions
// and the b ≥ 0 requirement.
func NewProblem(c []float64, a [][]float64, b []float64) (*Problem, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("lp: %d constraint rows but %d bounds", len(a), len(b))
	}
	for i, row := range a {
		if len(row) != len(c) {
			return nil, fmt.Errorf("lp: row %d has %d entries, want %d", i, len(row), len(c))
		}
	}
	for i, v := range b {
		if v < 0 {
			return nil, fmt.Errorf("lp: negative bound b[%d] = %v (packing form requires b >= 0)", i, v)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("lp: non-finite bound b[%d] = %v", i, v)
		}
	}
	return &Problem{c: c, a: a, b: b}, nil
}

// Solution is the result of Solve: the optimal objective value, an optimal
// assignment X, and the dual values Y (one per constraint; at optimum these
// are the bottom-row coefficients under the slack columns). The duals drive
// the column-generation pricing in package exact.
type Solution struct {
	Value float64
	X     []float64
	Y     []float64
}

// Solve runs the simplex method and returns an optimal solution.
// It returns ErrUnbounded if the objective is unbounded above.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.b) // constraints
	n := len(p.c) // variables

	// Tableau layout: rows 0..m-1 are constraints, row m is the objective.
	// Columns 0..n-1 are original variables, n..n+m-1 slacks, n+m is RHS.
	width := n + m + 1
	t := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, width)
		copy(t[i], p.a[i])
		t[i][n+i] = 1
		t[i][width-1] = p.b[i]
	}
	t[m] = make([]float64, width)
	for j, v := range p.c {
		t[m][j] = -v // maximize: negate into the bottom row
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	for iter := 0; ; iter++ {
		if iter > 50000 {
			return nil, errors.New("lp: iteration limit exceeded")
		}
		// Bland's rule: entering variable = lowest index with negative
		// reduced cost.
		col := -1
		for j := 0; j < n+m; j++ {
			if t[m][j] < -eps {
				col = j
				break
			}
		}
		if col == -1 {
			break // optimal
		}
		// Ratio test; Bland tie-break on lowest basis index.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][col] > eps {
				ratio := t[i][width-1] / t[i][col]
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (row == -1 || basis[i] < basis[row])) {
					bestRatio = ratio
					row = i
				}
			}
		}
		if row == -1 {
			return nil, ErrUnbounded
		}
		pivot(t, row, col)
		basis[row] = col
	}

	sol := &Solution{X: make([]float64, n), Y: make([]float64, m)}
	for i, bi := range basis {
		if bi < n {
			sol.X[bi] = t[i][width-1]
		}
	}
	for i := 0; i < m; i++ {
		sol.Y[i] = t[m][n+i]
	}
	sol.Value = t[m][width-1]
	return sol, nil
}

func pivot(t [][]float64, row, col int) {
	pv := t[row][col]
	for j := range t[row] {
		t[row][j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[row][j]
		}
	}
}
