package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func solveOK(t *testing.T, c []float64, a [][]float64, b []float64) *Solution {
	t.Helper()
	p, err := NewProblem(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSimpleTwoVariable(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → optimum at (4, 0), value 12.
	sol := solveOK(t, []float64{3, 2}, [][]float64{{1, 1}, {1, 3}}, []float64{4, 6})
	if math.Abs(sol.Value-12) > 1e-6 {
		t.Fatalf("value = %v, want 12", sol.Value)
	}
	if math.Abs(sol.X[0]-4) > 1e-6 || math.Abs(sol.X[1]) > 1e-6 {
		t.Fatalf("x = %v, want (4, 0)", sol.X)
	}
}

func TestClassicDiet(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 → (3, 1.5), value 21.
	sol := solveOK(t, []float64{5, 4}, [][]float64{{6, 4}, {1, 2}}, []float64{24, 6})
	if math.Abs(sol.Value-21) > 1e-6 {
		t.Fatalf("value = %v, want 21", sol.Value)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Beale's classic cycling example (scaled): Bland's rule must terminate.
	c := []float64{0.75, -150, 0.02, -6}
	a := [][]float64{
		{0.25, -60, -0.04, 9},
		{0.5, -90, -0.02, 3},
		{0, 0, 1, 0},
	}
	b := []float64{0, 0, 1}
	sol := solveOK(t, c, a, b)
	if math.Abs(sol.Value-0.05) > 1e-6 {
		t.Fatalf("value = %v, want 0.05", sol.Value)
	}
}

func TestDualValues(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6: dual optimum y = (3, 0)
	// with dual objective 4·3 + 6·0 = 12 = primal value (strong duality).
	sol := solveOK(t, []float64{3, 2}, [][]float64{{1, 1}, {1, 3}}, []float64{4, 6})
	if math.Abs(sol.Y[0]-3) > 1e-6 || math.Abs(sol.Y[1]) > 1e-6 {
		t.Fatalf("duals = %v, want (3, 0)", sol.Y)
	}
	dualObj := 4*sol.Y[0] + 6*sol.Y[1]
	if math.Abs(dualObj-sol.Value) > 1e-6 {
		t.Fatalf("strong duality violated: dual %v vs primal %v", dualObj, sol.Value)
	}
}

func TestDualFeasibilityProperty(t *testing.T) {
	// On random packing LPs the duals must be (near) non-negative and
	// satisfy strong duality.
	src := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		n := 2 + src.Intn(5)
		m := 1 + src.Intn(5)
		c := make([]float64, n)
		for j := range c {
			c[j] = src.Float64() * 10
		}
		a := make([][]float64, m+1)
		b := make([]float64, m+1)
		for i := 0; i < m; i++ {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = src.Float64() * 5
			}
			b[i] = src.Float64() * 20
		}
		sum := make([]float64, n)
		for j := range sum {
			sum[j] = 1
		}
		a[m], b[m] = sum, 100 // boundedness
		p, err := NewProblem(c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		dualObj := 0.0
		for i, y := range sol.Y {
			if y < -1e-7 {
				t.Fatalf("trial %d: negative dual y[%d] = %v", trial, i, y)
			}
			dualObj += b[i] * y
		}
		if math.Abs(dualObj-sol.Value) > 1e-5*(1+math.Abs(sol.Value)) {
			t.Fatalf("trial %d: dual %v vs primal %v", trial, dualObj, sol.Value)
		}
	}
}

func TestUnbounded(t *testing.T) {
	// max x with no binding constraint on x.
	p, err := NewProblem([]float64{1, 0}, [][]float64{{0, 1}}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestZeroObjective(t *testing.T) {
	sol := solveOK(t, []float64{0, 0}, [][]float64{{1, 1}}, []float64{3})
	if sol.Value != 0 {
		t.Fatalf("value = %v, want 0", sol.Value)
	}
}

func TestNoConstraintsZeroOptimal(t *testing.T) {
	// With no constraints and a positive objective the LP is unbounded.
	p, err := NewProblem([]float64{1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	// Negative objective: optimum 0 at x = 0.
	p2, err := NewProblem([]float64{-1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := p2.Solve()
	if err != nil || sol.Value != 0 {
		t.Fatalf("sol = %v err = %v, want value 0", sol, err)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewProblem([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("row width mismatch accepted")
	}
	if _, err := NewProblem([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if _, err := NewProblem([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := NewProblem([]float64{1}, [][]float64{{1}}, []float64{math.NaN()}); err == nil {
		t.Error("NaN bound accepted")
	}
}

func TestSolutionFeasibilityProperty(t *testing.T) {
	// Property: on random packing LPs, the returned solution is feasible and
	// its objective value matches c·x.
	src := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.Intn(6)
		m := 1 + src.Intn(6)
		c := make([]float64, n)
		for j := range c {
			c[j] = src.Float64() * 10
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = src.Float64() * 5
			}
			b[i] = src.Float64() * 20
		}
		// Ensure boundedness: add a row constraining the sum of all x.
		sum := make([]float64, n)
		for j := range sum {
			sum[j] = 1
		}
		a = append(a, sum)
		b = append(b, 100)

		p, err := NewProblem(c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dot := 0.0
		for j, x := range sol.X {
			if x < -1e-7 {
				t.Fatalf("trial %d: negative x[%d] = %v", trial, j, x)
			}
			dot += c[j] * x
		}
		if math.Abs(dot-sol.Value) > 1e-6*(1+math.Abs(sol.Value)) {
			t.Fatalf("trial %d: c·x = %v but Value = %v", trial, dot, sol.Value)
		}
		for i := 0; i < len(a); i++ {
			lhs := 0.0
			for j := range sol.X {
				lhs += a[i][j] * sol.X[j]
			}
			if lhs > b[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, lhs, b[i])
			}
		}
	}
}

func TestKnapsackRelaxation(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 100, 10a+4b+5c <= 600, 2a+2b+6c <= 300
	// Known optimum ≈ 733.33 at (33.33, 66.67, 0).
	sol := solveOK(t,
		[]float64{10, 6, 4},
		[][]float64{{1, 1, 1}, {10, 4, 5}, {2, 2, 6}},
		[]float64{100, 600, 300})
	if math.Abs(sol.Value-2200.0/3) > 1e-4 {
		t.Fatalf("value = %v, want %v", sol.Value, 2200.0/3)
	}
}
