package bench

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/solver"
)

// memCache is the minimal shard.Cache: a mutex map. The warm-cache case
// below measures the compositional-caching win, and the cache itself must
// not be the interesting cost.
type memCache struct {
	mu sync.Mutex
	m  map[string]*core.Schedule
}

func (c *memCache) Get(key string) (*core.Schedule, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[key]
	return s, ok
}

func (c *memCache) Put(key string, s *core.Schedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = s
}

// runShardCases benchmarks the PR 9 partition-solve-stitch pipeline on the
// instance class it exists for: a large unit-disk graph under greedy
// recruitment. The whole-graph solve is the reference case; the sharded
// cases run the full pipeline — geometric partition, per-shard solves on a
// transient pool, boundary-repair stitch — and carry the whole-graph time
// as their baseline, so Speedup is the end-to-end wall-clock win (bounded
// by min(shards, cores) and eroded by the stitch). The cache=warm case
// re-runs the 4-shard pipeline with every per-shard schedule already
// cached — the serving path's cost for a repeated or single-tile-delta
// request — against the cold 4-shard run as baseline: Speedup there is
// what content addressing saves when nothing (or almost nothing) changed.
func runShardCases(quick bool) []Case {
	n := 2048
	if quick {
		n = 512
	}
	radius := 2.0 * math.Sqrt(math.Log(float64(n))/float64(n))
	g, pts := gen.RandomUDG(n, 1, radius, rng.New(9))
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = 8
	}
	spec := solver.Spec{Name: solver.NameGreedy}
	in := instance.New(g, budgets)

	whole := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(in, spec,
				solver.Options{Tries: 1, Src: rng.New(9)}); err != nil {
				b.Fatalf("solver.Solve: %v", err)
			}
		}
	})
	wholeNs := float64(whole.NsPerOp())

	pipeline := func(p *shard.Partition, cache shard.Cache) {
		solved, err := shard.SolveShards(in, p, shard.Options{
			Spec: spec, Seed: 9, TransientPool: true, Cache: cache,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: SolveShards: %v", err))
		}
		if _, err := shard.Stitch(in, p, solved, obs.Hooks{}); err != nil {
			panic(fmt.Sprintf("bench: Stitch: %v", err))
		}
	}
	partition := func(shards int) *shard.Partition {
		p, err := shard.Geometric(g, pts, shards)
		if err != nil {
			panic(fmt.Sprintf("bench: Geometric(%d): %v", shards, err))
		}
		return p
	}

	cases := []Case{toCase(fmt.Sprintf("shard/whole/n=%d", n), whole, 0)}
	var coldNs4 float64
	for _, shards := range []int{4, 16} {
		p := partition(shards)
		cold := run(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipeline(p, nil)
			}
		})
		if shards == 4 {
			coldNs4 = float64(cold.NsPerOp())
		}
		cases = append(cases, toCase(
			fmt.Sprintf("shard/stitch/shards=%d/n=%d", shards, n), cold, wholeNs))
	}

	p4 := partition(4)
	cache := &memCache{m: make(map[string]*core.Schedule)}
	pipeline(p4, cache) // fill every per-shard key
	warm := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipeline(p4, cache)
		}
	})
	cases = append(cases, toCase(
		fmt.Sprintf("shard/stitch/shards=4/cache=warm/n=%d", n), warm, coldNs4))
	return cases
}

// runFoldParCases benchmarks the parallel row-fold of domset.Checker (PR 9):
// the same dense CoveredCount fold, sequential versus chunked across a
// worker pool via SetPool. The fixture is sized so the fold clears the
// parFoldMinWork gate (candidates × row words); below it SetPool
// deliberately stays sequential and there would be nothing to measure.
// Speedup is the fold-level parallel win — sublinear in workers, since the
// membership fill and the final popcount stay on the calling goroutine, and
// (like solver/Solve/race) ≈ 1.0 on a single-core runner, where SetPool
// builds one chunk and the fold stays sequential by construction.
func runFoldParCases(quick bool) []Case {
	n := 4096
	if quick {
		n = 1024
	}
	inst := newKernelInstance(n, []int{2})
	set := inst.sets[2]

	seq := domset.NewChecker(inst.g)
	seq.CoveredCount(set, 2, inst.alive) // warm scratch
	serial := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.CoveredCount(set, 2, inst.alive)
		}
	})

	pool := par.NewPool(runtime.GOMAXPROCS(0), 2*runtime.GOMAXPROCS(0))
	defer pool.Close()
	pck := domset.NewChecker(inst.g)
	pck.SetPool(pool)
	pck.CoveredCount(set, 2, inst.alive)
	parl := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pck.CoveredCount(set, 2, inst.alive)
		}
	})
	return []Case{
		toCase(fmt.Sprintf("kernel/FoldPar/n=%d/k=2", n), parl, float64(serial.NsPerOp())),
	}
}
