// Package bench is the repository's performance trajectory: a fixed suite of
// kernel microbenchmarks and end-to-end runs whose results are serialized to
// BENCH_<PR>.json files at the repo root, one per performance-relevant PR, so
// speedups and regressions are visible across the stacked-PR history.
//
// The kernel cases benchmark the allocation-free domset.Checker against
// frozen copies of the pre-Checker implementations (the []bool-allocating
// adjacency walks that shipped before PR 2), yielding an honest speedup
// figure that later refactors cannot silently erode: the baselines live here,
// not in the packages they came from.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/domset"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/reconfig"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sensim"
	"repro/internal/serve"
	"repro/internal/solver"
)

// Schema identifies the BENCH_*.json layout; bump on breaking changes.
const Schema = "repro-bench/v1"

// Case is one benchmark result. BaselineNsPerOp and Speedup are zero for
// cases without a frozen pre-change baseline (the end-to-end runs).
type Case struct {
	Name            string  `json:"name"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// Report is the top-level BENCH_*.json document.
type Report struct {
	Schema      string  `json:"schema"`
	PR          string  `json:"pr"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Quick       bool    `json:"quick"`
	GeneratedAt string  `json:"generated_at"`
	Cases       []Case  `json:"cases"`
	Curves      []Curve `json:"curves,omitempty"`
}

// CurvePoint is one point of a lifetime-vs-budget refinement curve: the mean
// schedule lifetime over the trials when the refiner runs under that move
// budget.
type CurvePoint struct {
	Budget   int     `json:"budget"`
	Lifetime float64 `json:"lifetime"`
}

// Curve is the anytime-quality trajectory of one refiner on one graph
// family: lifetime as a function of move budget, alongside the schedules it
// must beat — the unrefined base it starts from, the prune post-pass, and
// the paper's WHP algorithm. Monotone Points that clear BaseLifetime are the
// refinement acceptance datum of PR 8, the quality-side counterpart of the
// timing Cases.
type Curve struct {
	Family        string       `json:"family"`
	Refiner       string       `json:"refiner"`
	Base          string       `json:"base"`
	BaseLifetime  float64      `json:"base_lifetime"`
	PruneLifetime float64      `json:"prune_lifetime"`
	WHPLifetime   float64      `json:"whp_lifetime"`
	Points        []CurvePoint `json:"points"`
}

// baselineCoveredCount is the frozen pre-PR-2 sensim.coveredCount: it
// allocates a fresh membership slice per call and walks adjacency lists.
// Kept verbatim modulo taking g/alive instead of a Network and filtering
// dead members (the original's caller passed only alive nodes, so the filter
// was implicit). Do not "optimize" it — its cost IS the datum.
func baselineCoveredCount(g *graph.Graph, serving []int, k int, alive []bool) int {
	in := make([]bool, g.N())
	for _, v := range serving {
		if alive == nil || alive[v] {
			in[v] = true
		}
	}
	covered := 0
	for v := 0; v < g.N(); v++ {
		if alive != nil && !alive[v] {
			continue
		}
		count := 0
		if in[v] {
			count++
		}
		for _, u := range g.Neighbors(v) {
			if in[u] {
				count++
				if count >= k {
					break
				}
			}
		}
		if count >= k {
			covered++
		}
	}
	return covered
}

// baselineIsKDominating is the frozen pre-PR-2 domset.IsKDominating.
func baselineIsKDominating(g *graph.Graph, set []int, k int, alive []bool) bool {
	in := make([]bool, g.N())
	for _, v := range set {
		if v < 0 || v >= g.N() {
			panic(fmt.Sprintf("domset: node %d out of range", v))
		}
		if alive == nil || alive[v] {
			in[v] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		if alive != nil && !alive[v] {
			continue
		}
		count := 0
		if in[v] {
			count++
		}
		for _, u := range g.Neighbors(v) {
			if in[u] {
				count++
				if count >= k {
					break
				}
			}
		}
		if count < k {
			return false
		}
	}
	return true
}

// kernelInstance is a shared fixture: a connected-ish GNP graph with a
// greedy k-dominating set per benchmarked k and an all-alive mask. The sets
// are genuinely k-dominating so the verifier answers true and neither
// implementation can exit early — the hot-loop workload (validating the
// valid phases of a schedule), measured apples to apples.
type kernelInstance struct {
	g     *graph.Graph
	sets  map[int][]int
	alive []bool
}

func newKernelInstance(n int, ks []int) kernelInstance {
	p := 10 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	g := gen.GNP(n, p, rng.New(uint64(n)))
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	sets := make(map[int][]int, len(ks))
	for _, k := range ks {
		set := domset.GreedyK(g, k, nil, nil)
		if set == nil {
			panic(fmt.Sprintf("bench: no %d-dominating set on the n=%d fixture", k, n))
		}
		sets[k] = set
	}
	return kernelInstance{g: g, sets: sets, alive: alive}
}

func run(fn func(b *testing.B)) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
}

func toCase(name string, r testing.BenchmarkResult, baseline float64) Case {
	c := Case{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if baseline > 0 && c.NsPerOp > 0 {
		c.BaselineNsPerOp = baseline
		c.Speedup = baseline / c.NsPerOp
	}
	return c
}

// Run executes the fixed suite. quick shrinks graph sizes and experiment
// sweeps so CI smoke jobs finish in seconds.
func Run(quick bool) Report {
	rep := Report{
		Schema:      Schema,
		PR:          "PR10",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Quick:       quick,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	sizes := []int{1024, 4096}
	if quick {
		sizes = []int{256}
	}
	ks := []int{1, 2}
	for _, n := range sizes {
		inst := newKernelInstance(n, ks)
		ck := domset.NewChecker(inst.g)
		for _, k := range ks {
			set := inst.sets[k]
			ck.CoveredCount(set, k, inst.alive) // warm scratch
			base := run(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baselineCoveredCount(inst.g, set, k, inst.alive)
				}
			})
			opt := run(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ck.CoveredCount(set, k, inst.alive)
				}
			})
			rep.Cases = append(rep.Cases,
				toCase(fmt.Sprintf("kernel/CoveredCount/n=%d/k=%d", n, k), opt, float64(base.NsPerOp())))

			base = run(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baselineIsKDominating(inst.g, set, k, inst.alive)
				}
			})
			opt = run(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ck.IsKDominating(set, k, inst.alive)
				}
			})
			rep.Cases = append(rep.Cases,
				toCase(fmt.Sprintf("kernel/IsKDominating/n=%d/k=%d", n, k), opt, float64(base.NsPerOp())))

			// kernel/Flip: the single-node-delta workload of PR 7. The
			// baseline is the CURRENT fold path — what a one-node change
			// used to cost (full O(n·Δ/64) re-fold per query). The measured
			// arm is one O(deg) Flip plus one O(1) coverage query per op;
			// the flipped node alternates in and out of the set across
			// iterations, so every op is exactly one membership delta —
			// the heal/reconfig/prune access pattern.
			sess := ck.Begin(set, k, inst.alive)
			v := set[len(set)/2]
			foldDelta := run(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ck.CoveredCount(set, k, inst.alive)
				}
			})
			flip := run(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sess.Flip(v)
					sess.CoveredCount()
					sess.Commit() // non-speculative caller: keep the log bounded
				}
				if !sess.Contains(v) {
					sess.Flip(v) // leave the fixture set intact for the next case
				}
			})
			rep.Cases = append(rep.Cases,
				toCase(fmt.Sprintf("kernel/Flip/n=%d/k=%d", n, k), flip, float64(foldDelta.NsPerOp())))
		}
	}

	rep.Cases = append(rep.Cases, runFoldParCases(quick)...)
	rep.Cases = append(rep.Cases, runSolverCases(quick)...)
	rep.Cases = append(rep.Cases, runGridCases(quick)...)
	refineCases, curves := runRefineCases(quick)
	rep.Cases = append(rep.Cases, refineCases...)
	rep.Curves = curves
	rep.Cases = append(rep.Cases, runSensimCases(quick)...)
	rep.Cases = append(rep.Cases, runServeCases(quick)...)
	rep.Cases = append(rep.Cases, runReconfigCases(quick)...)
	rep.Cases = append(rep.Cases, runShardCases(quick)...)
	rep.Cases = append(rep.Cases, runExperimentCase(quick))
	return rep
}

// runRefineCases benchmarks the PR 8 anytime refiners in both dimensions.
// The timing Cases measure one full refined solve (base draw + the whole
// move budget) against the plain greedy baseline it starts from — like
// solver/prune, Speedup is an overhead ratio and values far below 1 are the
// expected price of the extra work. The Curves record the quality side:
// mean lifetime at three move budgets per refiner per family, with the
// greedy/prune/WHP reference lifetimes on the same instances. Instances use
// heterogeneous batteries in [1, 2b]: with uniform batteries greedy already
// sits on the min-degree bottleneck bound and local search has nothing to
// rebalance.
func runRefineCases(quick bool) ([]Case, []Curve) {
	n := 128
	budgets := []int{2000, 10000, 50000}
	trials := 5
	if quick {
		n, budgets, trials = 64, []int{500, 2000, 8000}, 3
	}
	const b = 10

	families := []struct {
		name  string
		build func(src *rng.Source) *graph.Graph
	}{
		{"gnp", func(src *rng.Source) *graph.Graph {
			return gen.GNP(n, 6*math.Log(float64(n))/float64(n), src)
		}},
		{"udg", func(src *rng.Source) *graph.Graph {
			g, _ := gen.RandomUDG(n, 1, 2.0*math.Sqrt(math.Log(float64(n))/float64(n)), src)
			return g
		}},
	}

	buildInstance := func(fam int, trial int) (*graph.Graph, []int, *rng.Source) {
		src := rng.New(uint64(8000 + 100*fam + trial))
		g := families[fam].build(src.Split())
		bsrc := src.Split()
		bt := make([]int, g.N())
		for v := range bt {
			bt[v] = 1 + bsrc.Intn(2*b)
		}
		return g, bt, src
	}
	meanLifetime := func(fam int, spec solver.Spec, budget int) float64 {
		total := 0.0
		for trial := 0; trial < trials; trial++ {
			g, bt, src := buildInstance(fam, trial)
			s, err := solver.Solve(instance.New(g, bt), spec,
				solver.Options{Tries: 10, Budget: budget, Src: src})
			if err != nil {
				panic(fmt.Sprintf("bench: refine %s: %v", spec.Name, err))
			}
			total += float64(s.Lifetime())
		}
		return total / float64(trials)
	}

	var curves []Curve
	for fam := range families {
		base := meanLifetime(fam, solver.Spec{Name: solver.NameGreedy}, 0)
		prune := meanLifetime(fam, solver.Spec{Name: solver.NamePrune}, 0)
		whp := meanLifetime(fam, solver.Spec{Name: solver.NameGeneral}, 0)
		for _, refiner := range []string{solver.NameTabu, solver.NameAnneal} {
			c := Curve{
				Family: families[fam].name, Refiner: refiner, Base: solver.NameGreedy,
				BaseLifetime: base, PruneLifetime: prune, WHPLifetime: whp,
			}
			for _, budget := range budgets {
				spec := solver.Spec{Name: refiner, Base: solver.NameGreedy}
				c.Points = append(c.Points, CurvePoint{
					Budget: budget, Lifetime: meanLifetime(fam, spec, budget),
				})
			}
			curves = append(curves, c)
		}
	}

	// Timing: one refined solve per op at the largest budget on the first
	// family's first instance, against the greedy base draw alone.
	g, bt, _ := buildInstance(0, 0)
	in := instance.New(g, bt)
	maxBudget := budgets[len(budgets)-1]
	greedyRun := run(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			if _, err := solver.Solve(in, solver.Spec{Name: solver.NameGreedy},
				solver.Options{Tries: 1, Src: rng.New(uint64(i) + 1)}); err != nil {
				tb.Fatalf("solver.Solve(greedy): %v", err)
			}
		}
	})
	cases := make([]Case, 0, 2)
	for _, refiner := range []string{solver.NameTabu, solver.NameAnneal} {
		r := run(func(tb *testing.B) {
			for i := 0; i < tb.N; i++ {
				if _, err := solver.Solve(in,
					solver.Spec{Name: refiner, Base: solver.NameGreedy},
					solver.Options{Tries: 1, Budget: maxBudget, Src: rng.New(uint64(i) + 1)}); err != nil {
					tb.Fatalf("solver.Solve(%s): %v", refiner, err)
				}
			}
		})
		cases = append(cases, toCase(
			fmt.Sprintf("solver/refine=%s/budget=%d/n=%d", refiner, maxBudget, n),
			r, float64(greedyRun.NsPerOp())))
	}
	return cases, curves
}

// runSolverCases benchmarks the PR 5 solver driver in its two execution
// modes on a workload where the retry loop genuinely retries: Algorithm 1
// with the aggressive color-range constant K=0.5 on a dense graph targets
// far more phases than a coloring usually validates, so the w.h.p. target is
// unattainable and every try runs (with the paper's K=3 the first attempt
// hits the guarantee and there is nothing to race). A sequential Solve
// with 32 tries versus a width-4 race of 8 tries per attempt stream:
// total attempt work is equal by construction, so the raced case carries
// the sequential time as its baseline and its Speedup field is the
// wall-clock win from racing — bounded by min(4, cores), so on a
// single-core runner it degenerates to ≈ 1.0 minus the transient-pool
// overhead, which is itself worth tracking.
func runSolverCases(quick bool) []Case {
	n := 128
	if quick {
		n = 96
	}
	g := gen.GNP(n, 8*math.Log(float64(n))/float64(n), rng.New(5))
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = 8
	}
	spec := solver.Spec{Name: solver.NameUniform, KConst: 0.5}
	in := instance.New(g, budgets)
	seq := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(in, spec,
				solver.Options{Tries: 32, Src: rng.New(uint64(i) + 1)}); err != nil {
				b.Fatalf("solver.Solve: %v", err)
			}
		}
	})
	raced := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(in, spec,
				solver.Options{Tries: 8, Src: rng.New(uint64(i) + 1), RaceWidth: 4}); err != nil {
				b.Fatalf("solver.Solve(race): %v", err)
			}
		}
	})
	seqNs := float64(seq.NsPerOp())

	// solver/prune: the PR 7 refinement pass (greedy + per-phase speculative
	// pruning on the incremental session + re-extension) against the plain
	// greedy baseline it refines. Speedup here is an overhead ratio — the
	// refiner does strictly more work than greedy, so values below 1 are
	// expected; the datum tracks how cheap the session keeps that work.
	pruneBudgets := make([]int, n)
	for i := range pruneBudgets {
		pruneBudgets[i] = 8
	}
	pruneIn := instance.New(g, pruneBudgets)
	greedyRun := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(pruneIn, solver.Spec{Name: solver.NameGreedy},
				solver.Options{Tries: 1, Src: rng.New(uint64(i) + 1)}); err != nil {
				b.Fatalf("solver.Solve(greedy): %v", err)
			}
		}
	})
	pruneRun := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(pruneIn, solver.Spec{Name: solver.NamePrune},
				solver.Options{Tries: 1, Src: rng.New(uint64(i) + 1)}); err != nil {
				b.Fatalf("solver.Solve(prune): %v", err)
			}
		}
	})

	return []Case{
		toCase(fmt.Sprintf("solver/Solve/tries=32/n=%d", n), seq, 0),
		toCase(fmt.Sprintf("solver/Solve/race=4/tries=8/n=%d", n), raced, seqNs),
		toCase(fmt.Sprintf("solver/prune/n=%d", n), pruneRun, float64(greedyRun.NsPerOp())),
	}
}

// runGridCases benchmarks the PR 10 structured-instance path on the 50×50
// grid (quick: 20×20), uniform battery 3: the structure-detection pass
// alone, and the auto portfolio end to end (classify + dispatch + tile +
// driver validation; a fresh Instance per op, so every op pays the
// classification a real request pays).
//
// The grid-vs-uniform acceptance datum is the auto case's baseline pair.
// Uniform on a grid is bimodal: with the default color range its WHP
// guarantee (δ = 2) is one color class, so the first draw hits lifetime b
// and the solver stops instantly — fast, but less than half the tiling's
// lifetime, and no retry budget improves it. The only configuration that
// even attempts a comparable lifetime is an aggressive color range
// (KConst = 0.25 asks for more classes), and there every random class
// fails domination: all 300 tries run and deliver lifetime 0. That
// searching arm is the honest "uniform chasing equal-or-better lifetime"
// wall clock, and auto's Speedup against it is the pinned ≥10x headline
// (observed ~30-40x; lifetimes on the full-scale instance: auto 7,
// uniform-instant 3, uniform-search 0). The instant arm is recorded as its
// own case for transparency. greedy — auto's off-grid fallback, lifetime 6
// here — is the second baseline pair, pinning what dispatch-on-structure
// saves against the solver auto would otherwise run.
func runGridCases(quick bool) []Case {
	side := 50
	if quick {
		side = 20
	}
	g := gen.Grid(side, side)
	budgets := make([]int, g.N())
	for i := range budgets {
		budgets[i] = 3
	}
	in := instance.New(g, budgets)

	classify := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			instance.Classify(g, instance.Hint{})
		}
	})
	auto := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(instance.New(g, budgets), solver.Spec{Name: solver.NameAuto},
				solver.Options{Src: rng.New(uint64(i) + 1)}); err != nil {
				b.Fatalf("solver.Solve(auto): %v", err)
			}
		}
	})
	instant := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(in, solver.Spec{Name: solver.NameUniform},
				solver.Options{Tries: 300, Src: rng.New(uint64(i) + 1)}); err != nil {
				b.Fatalf("solver.Solve(uniform): %v", err)
			}
		}
	})
	search := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(in, solver.Spec{Name: solver.NameUniform, KConst: 0.25},
				solver.Options{Tries: 300, Src: rng.New(uint64(i) + 1)}); err != nil {
				b.Fatalf("solver.Solve(uniform search): %v", err)
			}
		}
	})
	greedy := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(in, solver.Spec{Name: solver.NameGreedy},
				solver.Options{Tries: 1, Src: rng.New(uint64(i) + 1)}); err != nil {
				b.Fatalf("solver.Solve(greedy): %v", err)
			}
		}
	})

	n := g.N()
	return []Case{
		toCase(fmt.Sprintf("instance/Classify/grid=%dx%d", side, side), classify, 0),
		toCase(fmt.Sprintf("solver/uniform/grid=%dx%d/instant", side, side), instant, 0),
		toCase(fmt.Sprintf("solver/auto/grid=%dx%d/vs=uniform-search/n=%d", side, side, n),
			auto, float64(search.NsPerOp())),
		toCase(fmt.Sprintf("solver/auto/grid=%dx%d/vs=greedy-fallback/n=%d", side, side, n),
			auto, float64(greedy.NsPerOp())),
	}
}

// runServeCases benchmarks the serving request path end to end (HTTP decode,
// admission, solve, encode) in its three regimes: a cache miss computes, a
// cache hit skips the solve, and eight identical concurrent requests
// coalesce onto one computation. The workload is chosen so the solve
// actually dominates the path: a 2-tolerant general schedule on a sparse
// graph, where the WHP target is rarely attainable and all 30 tries run
// (the easy workloads early-exit after one try and the path degenerates to
// JSON handling, which the cache cannot avoid — every request re-validates
// and re-hashes its graph to derive the key). The hit and coalesce cases
// Baselines: the hit case carries one miss (Speedup = miss cost avoided per
// request), the coalesce case carries eight misses — the work its batch of
// eight requests would have cost without single-flight — so Speedup above 1
// is the coalescing win.
func runServeCases(quick bool) []Case {
	n := 128
	if quick {
		n = 96
	}
	src := rng.New(5)
	g := gen.GNP(n, 2*math.Log(float64(n))/float64(n), src)
	spec := serve.GraphSpec{N: n}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				spec.Edges = append(spec.Edges, [2]int{v, int(u)})
			}
		}
	}
	body := func(seed uint64) []byte {
		b, err := json.Marshal(serve.Request{
			Graph: spec, Algorithm: serve.AlgGeneralFT, K: 2, Battery: 32, Seed: seed, Tries: 30,
		})
		if err != nil {
			panic(err)
		}
		return b
	}
	post := func(h http.Handler, payload []byte) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(payload)))
		if w.Code != http.StatusOK {
			panic(fmt.Sprintf("bench: serve returned %d: %s", w.Code, w.Body.String()))
		}
	}

	// Cache miss: a fresh seed every iteration defeats both cache and
	// coalescing, so every request pays the full solve.
	sMiss := serve.New(serve.Config{CacheSize: 4})
	hMiss := sMiss.Handler()
	miss := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(hMiss, body(uint64(i)+1))
		}
	})
	sMiss.Shutdown(context.Background()) //nolint:errcheck // bench teardown
	missNs := float64(miss.NsPerOp())

	// Cache hit: the identical request repeated; after the first fill every
	// iteration is an LRU lookup.
	sHit := serve.New(serve.Config{})
	hHit := sHit.Handler()
	warm := body(1)
	post(hHit, warm)
	hit := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(hHit, warm)
		}
	})
	sHit.Shutdown(context.Background()) //nolint:errcheck // bench teardown

	// Coalesce: eight concurrent identical requests per iteration, with a
	// per-iteration seed so the batch always misses the cache — the eight
	// answers share one computation.
	sCo := serve.New(serve.Config{CacheSize: 4})
	hCo := sCo.Handler()
	coalesce := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			payload := body(uint64(i) + 1)
			var wg sync.WaitGroup
			for c := 0; c < 8; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					post(hCo, payload)
				}()
			}
			wg.Wait()
		}
	})
	sCo.Shutdown(context.Background()) //nolint:errcheck // bench teardown

	return []Case{
		toCase(fmt.Sprintf("serve/schedule/cache=miss/n=%d", n), miss, 0),
		toCase(fmt.Sprintf("serve/schedule/cache=hit/n=%d", n), hit, missNs),
		toCase(fmt.Sprintf("serve/schedule/coalesce=8/n=%d", n), coalesce, 8*missNs),
	}
}

// runReconfigCases benchmarks the PR 6 reconfiguration path at three depths.
// The kernel pair: graph.Delta.Apply (a node swap — remove, re-add, rewire —
// the per-change rebuild cost every reconfiguration pays) and
// reconfig.Compute (the full transition planner: apply the delta, solve the
// incoming schedule, verify every slot, charge the overlap). The service
// pair: PATCH /v1/schedule/{fp} end to end, miss versus hit. The patch delta
// removes and re-adds the same edge, so the post-delta fingerprint equals
// the prior one and the chain of patch results stays addressable across
// iterations; the miss server runs with a single-entry cache so each
// completed patch replaces the last and the fingerprint always resolves to
// exactly one base. The hit case carries the miss cost as its baseline —
// Speedup is the planner work a retried PATCH avoids.
func runReconfigCases(quick bool) []Case {
	n := 128
	if quick {
		n = 96
	}
	src := rng.New(6)
	g := gen.GNP(n, 8*math.Log(float64(n))/float64(n), src)
	budgets := make([]int, n)
	for i := range budgets {
		budgets[i] = 8
	}
	swap := graph.Delta{
		RemoveNodes: []int{n - 1},
		AddNodes:    1,
		NewBudgets:  []int{8},
		AddEdges:    [][2]int{{0, n - 1}, {1, n - 1}, {2, n - 1}},
	}
	apply := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := swap.Apply(g, budgets); err != nil {
				b.Fatalf("Delta.Apply: %v", err)
			}
		}
	})

	old := sched.Replan(g, budgets, 1, nil)
	at := 2
	if old.Lifetime() <= at {
		panic(fmt.Sprintf("bench: reconfig fixture lifetime %d too short", old.Lifetime()))
	}
	residual := make([]int, n)
	for v, used := range old.UsagePrefix(n, at) {
		residual[v] = budgets[v] - used
	}
	compute := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reconfig.Compute(instance.New(g, residual), reconfig.Request{
				Old: old, At: at, Delta: swap,
				Overlap: 2, Seed: uint64(i) + 1, Tries: 8,
			}); err != nil {
				b.Fatalf("reconfig.Compute: %v", err)
			}
		}
	})

	spec := serve.GraphSpec{N: n}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				spec.Edges = append(spec.Edges, [2]int{v, int(u)})
			}
		}
	}
	solveBody, err := json.Marshal(serve.Request{
		Graph: spec, Algorithm: serve.AlgUniform, Battery: 8, Seed: 1, Tries: 8,
	})
	if err != nil {
		panic(err)
	}
	if len(g.Neighbors(0)) == 0 {
		panic("bench: reconfig fixture has an isolated node 0")
	}
	e := [2]int{0, int(g.Neighbors(0)[0])}
	patchBody := func(seed uint64) []byte {
		b, err := json.Marshal(serve.PatchRequest{
			Delta: graph.Delta{RemoveEdges: [][2]int{e}, AddEdges: [][2]int{e}},
			Seed:  seed, Tries: 8,
		})
		if err != nil {
			panic(err)
		}
		return b
	}
	do := func(h http.Handler, method, path string, payload []byte) []byte {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(method, path, bytes.NewReader(payload)))
		if w.Code != http.StatusOK {
			panic(fmt.Sprintf("bench: %s %s returned %d: %s", method, path, w.Code, w.Body.String()))
		}
		return w.Body.Bytes()
	}
	fingerprint := func(raw []byte) string {
		var res struct {
			Fingerprint string `json:"fingerprint"`
		}
		if err := json.Unmarshal(raw, &res); err != nil || res.Fingerprint == "" {
			panic(fmt.Sprintf("bench: schedule response carries no fingerprint: %v", err))
		}
		return res.Fingerprint
	}

	// Miss: a fresh seed per iteration forces a new plan; the edge-swap delta
	// keeps the fingerprint fixed and the single-entry cache keeps the base
	// unique, so every iteration pays Compute plus the invalidation sweep.
	sMiss := serve.New(serve.Config{CacheSize: 1})
	hMiss := sMiss.Handler()
	fp := fingerprint(do(hMiss, http.MethodPost, "/v1/schedule", solveBody))
	miss := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			do(hMiss, http.MethodPatch, "/v1/schedule/"+fp, patchBody(uint64(i)+1))
		}
	})
	sMiss.Shutdown(context.Background()) //nolint:errcheck // bench teardown
	missNs := float64(miss.NsPerOp())

	// Hit: the identical PATCH retried; after the warm-up every iteration is
	// answered by the early cache check under the patch key.
	sHit := serve.New(serve.Config{})
	hHit := sHit.Handler()
	fpHit := fingerprint(do(hHit, http.MethodPost, "/v1/schedule", solveBody))
	warm := patchBody(1)
	do(hHit, http.MethodPatch, "/v1/schedule/"+fpHit, warm)
	hit := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			do(hHit, http.MethodPatch, "/v1/schedule/"+fpHit, warm)
		}
	})
	sHit.Shutdown(context.Background()) //nolint:errcheck // bench teardown

	return []Case{
		toCase(fmt.Sprintf("reconfig/DeltaApply/n=%d", n), apply, 0),
		toCase(fmt.Sprintf("reconfig/Compute/overlap=2/n=%d", n), compute, 0),
		toCase(fmt.Sprintf("serve/patch/cache=miss/n=%d", n), miss, 0),
		toCase(fmt.Sprintf("serve/patch/cache=hit/n=%d", n), hit, missNs),
	}
}

// runSensimCases benchmarks a full sensim.Run execution: a general-algorithm
// schedule on a GNP network, rebuilt (cheaply) every iteration because Run
// drains it.
// It reports three cases: the plain run (obs off, the instrumented-but-idle
// hot path), the same run with a metrics sink attached, and the same run
// with a trace sink consuming every event. The obs=on cases carry the obs=off
// time as their baseline, so their Speedup field is the overhead ratio
// (1.0 = free; 0.5 = tracing doubled the runtime).
func runSensimCases(quick bool) []Case {
	n := 512
	if quick {
		n = 128
	}
	src := rng.New(42)
	g := gen.GNP(n, 8*math.Log(float64(n))/float64(n), src)
	b := make([]int, n)
	for i := range b {
		b[i] = 4 + src.Intn(4)
	}
	s, err := solver.Solve(instance.New(g, b), solver.Spec{Name: solver.NameGeneral},
		solver.Options{Tries: 5, Src: rng.New(7)})
	if err != nil {
		panic(fmt.Sprintf("bench: general fixture: %v", err))
	}
	off := run(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			net := energy.NewNetwork(g, b)
			sensim.Run(net, s, sensim.Options{K: 1})
		}
	})
	reg := obs.NewRegistry()
	metricsHooks := obs.Hooks{Trace: obs.NewMetricsSink(reg)}
	withMetrics := run(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			net := energy.NewNetwork(g, b)
			sensim.Run(net, s, sensim.Options{K: 1, Hooks: metricsHooks})
		}
	})
	var sink discardTracer
	traceHooks := obs.Hooks{Trace: &sink}
	withTrace := run(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			net := energy.NewNetwork(g, b)
			sensim.Run(net, s, sensim.Options{K: 1, Hooks: traceHooks})
		}
	})
	offNs := float64(off.NsPerOp())
	return []Case{
		toCase(fmt.Sprintf("e2e/sensim.Run/obs=off/n=%d", n), off, 0),
		toCase(fmt.Sprintf("e2e/sensim.Run/obs=metrics/n=%d", n), withMetrics, offNs),
		toCase(fmt.Sprintf("e2e/sensim.Run/obs=trace/n=%d", n), withTrace, offNs),
	}
}

// discardTracer counts events and drops them — the cheapest possible
// non-nil sink, isolating the emission cost itself.
type discardTracer struct{ events uint64 }

func (d *discardTracer) Emit(obs.Event) { d.events++ }

// runExperimentCase times one full experiment table (E1, the paper's
// Figure 1 reproduction) — the coarsest end-to-end signal in the suite.
func runExperimentCase(quick bool) Case {
	cfg := experiments.Config{Seed: 42, Quick: true}
	if !quick {
		cfg.Trials = 5
	}
	r := run(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Run("E1", cfg); err != nil {
				b.Fatalf("E1: %v", err)
			}
		}
	})
	return toCase("e2e/experiment/E1", r, 0)
}
