package bench

import (
	"strings"
	"testing"

	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/rng"
)

// TestBaselinesAgreeWithChecker pins the benchmark's honesty: the frozen
// baselines and the optimized kernel must compute identical answers, so the
// reported speedup compares like with like.
func TestBaselinesAgreeWithChecker(t *testing.T) {
	src := rng.New(21)
	for trial := 0; trial < 20; trial++ {
		n := 1 + src.Intn(80)
		g := gen.GNP(n, 0.12, src)
		ck := domset.NewChecker(g)
		var set []int
		for v := 0; v < n; v++ {
			if src.Intn(3) == 0 {
				set = append(set, v)
			}
		}
		var alive []bool
		if src.Intn(2) == 0 {
			alive = make([]bool, n)
			for v := range alive {
				alive[v] = src.Intn(5) != 0
			}
		}
		for k := 1; k <= 3; k++ {
			if got, want := ck.CoveredCount(set, k, alive), baselineCoveredCount(g, set, k, alive); got != want {
				t.Fatalf("n=%d k=%d: CoveredCount %d, baseline %d", n, k, got, want)
			}
			if got, want := ck.IsKDominating(set, k, alive), baselineIsKDominating(g, set, k, alive); got != want {
				t.Fatalf("n=%d k=%d: IsKDominating %v, baseline %v", n, k, got, want)
			}
		}
	}
}

// TestRunQuickProducesReport smoke-tests the suite end to end at quick
// scale: every case must have run at least one iteration, the kernel cases
// must carry baselines, and the Checker cases must be allocation-free.
func TestRunQuickProducesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite is slow")
	}
	rep := Run(true)
	if rep.Schema != Schema || rep.PR != "PR10" || !rep.Quick {
		t.Fatalf("bad report header: schema=%s pr=%s quick=%v", rep.Schema, rep.PR, rep.Quick)
	}
	if len(rep.Cases) == 0 {
		t.Fatal("no cases")
	}
	// The refinement curves are PR 8's quality datum: one per refiner per
	// family, monotone in budget (the driver keeps the best snapshot), and
	// never below the base schedule they start from.
	if len(rep.Curves) != 4 {
		t.Fatalf("got %d curves, want 4 (tabu/anneal × gnp/udg)", len(rep.Curves))
	}
	for _, c := range rep.Curves {
		if len(c.Points) == 0 {
			t.Fatalf("curve %s/%s has no points", c.Family, c.Refiner)
		}
		prev := c.BaseLifetime
		for _, p := range c.Points {
			if p.Lifetime < prev {
				t.Fatalf("curve %s/%s not monotone: %v after %v at budget %d",
					c.Family, c.Refiner, p.Lifetime, prev, p.Budget)
			}
			prev = p.Lifetime
		}
	}
	var obsOff, obsMetrics *Case
	var patchMiss, patchHit *Case
	var flip, prune *Case
	var shardCold, shardWarm *Case
	var autoSearch *Case
	for i, c := range rep.Cases {
		if c.Iterations <= 0 || c.NsPerOp <= 0 {
			t.Fatalf("case %s did not run: %+v", c.Name, c)
		}
		if len(c.Name) > 7 && c.Name[:7] == "kernel/" {
			if c.BaselineNsPerOp <= 0 {
				t.Fatalf("kernel case %s has no baseline", c.Name)
			}
			if c.AllocsPerOp != 0 {
				t.Fatalf("kernel case %s allocates %d/op, want 0", c.Name, c.AllocsPerOp)
			}
		}
		if strings.Contains(c.Name, "obs=off") {
			obsOff = &rep.Cases[i]
		}
		if strings.Contains(c.Name, "obs=metrics") {
			obsMetrics = &rep.Cases[i]
		}
		if strings.Contains(c.Name, "patch/cache=miss") {
			patchMiss = &rep.Cases[i]
		}
		if strings.Contains(c.Name, "patch/cache=hit") {
			patchHit = &rep.Cases[i]
		}
		if strings.Contains(c.Name, "kernel/Flip") && flip == nil {
			flip = &rep.Cases[i]
		}
		if strings.Contains(c.Name, "solver/prune") {
			prune = &rep.Cases[i]
		}
		if strings.Contains(c.Name, "shard/stitch/shards=4/cache=warm") {
			shardWarm = &rep.Cases[i]
		} else if strings.Contains(c.Name, "shard/stitch/shards=4") {
			shardCold = &rep.Cases[i]
		}
		if strings.Contains(c.Name, "solver/auto/") && strings.Contains(c.Name, "vs=uniform-search") {
			autoSearch = &rep.Cases[i]
		}
	}
	if autoSearch == nil {
		t.Fatal("solver/auto vs uniform-search case missing from the suite")
	}
	// The PR 10 acceptance datum: auto's deterministic classify + tile pass
	// must beat uniform's searching configuration, which burns its whole
	// retry budget. The full-scale report pins ~36x; even at quick scale
	// the margin is an order of magnitude, so plain "faster" is safe here.
	if autoSearch.BaselineNsPerOp <= 0 {
		t.Fatal("auto case has no uniform-search baseline")
	}
	if autoSearch.NsPerOp >= autoSearch.BaselineNsPerOp {
		t.Fatalf("auto on a grid (%v ns/op) not faster than uniform search (%v ns/op)",
			autoSearch.NsPerOp, autoSearch.BaselineNsPerOp)
	}
	if flip == nil {
		t.Fatal("kernel/Flip cases missing from the suite")
	}
	if prune == nil {
		t.Fatal("solver/prune case missing from the suite")
	}
	// The Flip case's baseline is a full re-fold of the same state: the
	// incremental delta must beat it even at quick scale (n = 256).
	if flip.NsPerOp >= flip.BaselineNsPerOp {
		t.Fatalf("session Flip (%v ns/op) not faster than a full re-fold (%v ns/op)",
			flip.NsPerOp, flip.BaselineNsPerOp)
	}
	if shardCold == nil || shardWarm == nil {
		t.Fatal("shard pipeline cases missing from the suite")
	}
	// The warm case carries the cold 4-shard run as baseline: with every
	// per-shard schedule content-addressed in the cache, the pipeline is
	// reduced to key hashing plus the stitch, which must beat re-solving.
	if shardWarm.BaselineNsPerOp != shardCold.NsPerOp {
		t.Fatalf("shard warm baseline %v, want cold time %v",
			shardWarm.BaselineNsPerOp, shardCold.NsPerOp)
	}
	if shardWarm.NsPerOp >= shardCold.NsPerOp {
		t.Fatalf("warm shard pipeline (%v ns/op) not faster than cold (%v ns/op)",
			shardWarm.NsPerOp, shardCold.NsPerOp)
	}
	if obsOff == nil || obsMetrics == nil {
		t.Fatal("obs overhead cases missing from the suite")
	}
	if patchMiss == nil || patchHit == nil {
		t.Fatal("reconfig PATCH cases missing from the suite")
	}
	// The hit case carries the miss cost as baseline: a retried PATCH must
	// skip the planner entirely, so the cached path has to be faster.
	if patchHit.BaselineNsPerOp != patchMiss.NsPerOp {
		t.Fatalf("patch hit baseline %v, want miss time %v",
			patchHit.BaselineNsPerOp, patchMiss.NsPerOp)
	}
	if patchHit.NsPerOp >= patchMiss.NsPerOp {
		t.Fatalf("cached PATCH (%v ns/op) not faster than a miss (%v ns/op)",
			patchHit.NsPerOp, patchMiss.NsPerOp)
	}
	// The obs=on cases carry the obs=off time as baseline, so Speedup is the
	// overhead ratio. Attaching a metrics sink must not change the run's
	// allocation profile — the hot path observes through pre-resolved
	// pointers.
	if obsMetrics.BaselineNsPerOp != obsOff.NsPerOp {
		t.Fatalf("obs=metrics baseline %v, want obs=off time %v",
			obsMetrics.BaselineNsPerOp, obsOff.NsPerOp)
	}
	if obsMetrics.AllocsPerOp != obsOff.AllocsPerOp {
		t.Fatalf("metrics sink changed allocs/op: off %d, metrics %d",
			obsOff.AllocsPerOp, obsMetrics.AllocsPerOp)
	}
}
