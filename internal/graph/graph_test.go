package graph

import (
	"strings"
	"testing"
)

// path returns the path graph P_n: 0-1-2-…-(n-1).
func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph reports n=%d m=%d", g.N(), g.M())
	}
	if g.MinDegree() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph degree stats non-zero")
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	g.AddEdge(3, 0)
	if g.M() != 3 {
		t.Fatalf("m = %d, want 3", g.M())
	}
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {0, 3}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if g.HasEdge(2, 3) {
		t.Error("phantom edge {2,3}")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(2, 1)
	nbrs := g.Neighbors(2)
	want := []int32{0, 1, 3, 4}
	if len(nbrs) != len(want) {
		t.Fatalf("neighbors = %v", nbrs)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nbrs, want)
		}
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestDuplicateEdgePanics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate edge did not panic")
		}
	}()
	g.AddEdge(1, 0)
}

func TestAddEdgeIfAbsent(t *testing.T) {
	g := New(3)
	if !g.AddEdgeIfAbsent(0, 1) {
		t.Fatal("first insert failed")
	}
	if g.AddEdgeIfAbsent(1, 0) {
		t.Fatal("duplicate insert reported success")
	}
	if g.AddEdgeIfAbsent(2, 2) {
		t.Fatal("self-loop insert reported success")
	}
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1", g.M())
	}
}

func TestDegreeStats(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	if d := g.Degree(0); d != 1 {
		t.Errorf("deg(0) = %d", d)
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("deg(1) = %d", d)
	}
	if g.MinDegree() != 1 || g.MaxDegree() != 2 {
		t.Errorf("δ=%d Δ=%d, want 1, 2", g.MinDegree(), g.MaxDegree())
	}
	if avg := g.AverageDegree(); avg != 1.5 {
		t.Errorf("avg degree = %v, want 1.5", avg)
	}
	hist := g.DegreeHistogram()
	if hist[1] != 2 || hist[2] != 2 {
		t.Errorf("degree histogram = %v", hist)
	}
}

func TestTwoHopMinDegree(t *testing.T) {
	// Star K_{1,3}: center 0 has degree 3, leaves degree 1.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	d2 := g.TwoHopMinDegree()
	// Center: min(3, 1,1,1) = 1. Leaf: min(1, 3) = 1.
	for v, d := range d2 {
		if d != 1 {
			t.Errorf("δ²(%d) = %d, want 1", v, d)
		}
	}
	// Path 0-1-2-3-4: δ² of middle node 2 is min(2,2,2)=2.
	p := path(5)
	d2 = p.TwoHopMinDegree()
	if d2[2] != 2 {
		t.Errorf("path δ²(2) = %d, want 2", d2[2])
	}
	if d2[1] != 1 { // neighbor 0 has degree 1
		t.Errorf("path δ²(1) = %d, want 1", d2[1])
	}
}

func TestClosedNeighborhood(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 0)
	g.AddEdge(2, 4)
	got := g.ClosedNeighborhood(2)
	want := []int32{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("N+[2] = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("N+[2] = %v, want %v", got, want)
		}
	}
	// Isolated node: just itself.
	if nb := g.ClosedNeighborhood(1); len(nb) != 1 || nb[0] != 1 {
		t.Fatalf("N+[1] = %v, want [1]", nb)
	}
	// Node larger than all neighbors.
	if nb := g.ClosedNeighborhood(4); len(nb) != 2 || nb[0] != 2 || nb[1] != 4 {
		t.Fatalf("N+[4] = %v, want [2 4]", nb)
	}
}

func TestBFSAndConnectivity(t *testing.T) {
	g := path(4)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if !g.Connected() {
		t.Error("path should be connected")
	}
	g2 := New(4)
	g2.AddEdge(0, 1)
	g2.AddEdge(2, 3)
	if g2.Connected() {
		t.Error("two components reported connected")
	}
	d := g2.BFS(0)
	if d[2] != -1 || d[3] != -1 {
		t.Errorf("unreachable distances = %v", d)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 1 || len(comps[2]) != 2 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
	if comps[1][0] != 3 {
		t.Fatalf("singleton component should be {3}: %v", comps[1])
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(0, 4)
	sub, orig := g.InducedSubgraph([]int{0, 1, 4})
	if sub.N() != 3 {
		t.Fatalf("sub n = %d", sub.N())
	}
	if sub.M() != 2 { // edges {0,1} and {0,4}
		t.Fatalf("sub m = %d, want 2", sub.M())
	}
	if orig[0] != 0 || orig[1] != 1 || orig[2] != 4 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodes(t *testing.T) {
	g := path(5)
	h, orig := g.RemoveNodes([]int{2})
	if h.N() != 4 || h.M() != 2 {
		t.Fatalf("after removal n=%d m=%d, want 4, 2", h.N(), h.M())
	}
	if h.Connected() {
		t.Fatal("removing middle of path should disconnect")
	}
	// orig must skip node 2.
	want := []int{0, 1, 3, 4}
	for i, v := range want {
		if orig[i] != v {
			t.Fatalf("orig = %v, want %v", orig, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := path(3)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("mutating clone affected original")
	}
	if g.M() != 2 || c.M() != 3 {
		t.Fatalf("edge counts: g=%d c=%d", g.M(), c.M())
	}
}

func TestEdgesIteration(t *testing.T) {
	g := path(4)
	var got [][2]int
	g.Edges(func(u, v int) { got = append(got, [2]int{u, v}) })
	if len(got) != 3 {
		t.Fatalf("edges = %v", got)
	}
	for _, e := range got {
		if e[0] >= e[1] {
			t.Errorf("edge %v not ordered u < v", e)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := path(6)
	g.AddEdge(0, 5)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", h.N(), h.M(), g.N(), g.M())
	}
	g.Edges(func(u, v int) {
		if !h.HasEdge(u, v) {
			t.Errorf("round trip lost edge {%d,%d}", u, v)
		}
	})
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":    "0 1\n",
		"no header at all":  "# only comments\n",
		"self loop":         "n 3\n1 1\n",
		"duplicate":         "n 3\n0 1\n1 0\n",
		"out of range":      "n 2\n0 5\n",
		"malformed":         "n 2\n0 1 2\n",
		"bad count":         "n -3\n",
		"duplicate header":  "n 2\nn 2\n",
		"non-numeric point": "n 2\na b\n",
	}
	for name, input := range cases {
		if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected parse error for %q", name, input)
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nn 3\n# another\n0 2\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := path(3)
	// Corrupt adjacency directly: make it asymmetric.
	g.adj[0] = append(g.adj[0], 2)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric adjacency")
	}
}

func TestNewFromEdgesMatchesIncremental(t *testing.T) {
	edges := [][2]int{{0, 3}, {1, 2}, {0, 1}, {2, 3}, {1, 3}}
	fast := NewFromEdges(5, edges)
	slow := New(5)
	for _, e := range edges {
		slow.AddEdge(e[0], e[1])
	}
	if err := fast.Validate(); err != nil {
		t.Fatal(err)
	}
	if fast.M() != slow.M() || fast.N() != slow.N() {
		t.Fatalf("size mismatch: fast %v vs slow %v", fast, slow)
	}
	slow.Edges(func(u, v int) {
		if !fast.HasEdge(u, v) {
			t.Errorf("fast graph missing edge {%d,%d}", u, v)
		}
	})
}

func TestNewFromEdgesRejectsSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop accepted")
		}
	}()
	NewFromEdges(3, [][2]int{{1, 1}})
}

func TestNewFromEdgesRejectsDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate accepted")
		}
	}()
	NewFromEdges(3, [][2]int{{0, 1}, {1, 0}})
}

func TestNewFromEdgesEmpty(t *testing.T) {
	g := NewFromEdges(4, nil)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("empty build: %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	g := path(3)
	if got := g.String(); got != "graph{n=3 m=2 δ=1 Δ=2}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAverageDegreeEmpty(t *testing.T) {
	if New(0).AverageDegree() != 0 {
		t.Fatal("empty graph average degree non-zero")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 5) },
		func() { g.Neighbors(-1) },
		func() { g.Degree(7) },
		func() { g.BFS(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}
