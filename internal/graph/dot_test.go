package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, "demo", []int{1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"graph \"demo\" {",
		"0 -- 1;",
		"1 -- 2;",
		"1 [style=filled",
		"3;", // isolated node still rendered
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaultName(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, New(1), "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "graph \"G\"") {
		t.Fatalf("default name missing:\n%s", sb.String())
	}
}
