package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList checks that arbitrary input never panics the parser and
// that successfully parsed graphs always validate and round-trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# comment\nn 0\n")
	f.Add("n 2\n0 1")
	f.Add("")
	f.Add("n 5\n4 0\n# x\n\n3 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, input)
		}
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed size: %v vs %v", back, g)
		}
	})
}
