package graph

import (
	"math/rand"
	"testing"
)

// randomEdgeList draws a simple random edge list over n nodes.
func randomEdgeList(n int, p float64, r *rand.Rand) [][2]int {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return edges
}

// TestFingerprintStableAcrossEdgeOrderings is the property test of the
// canonical hash contract: the same edge list, presented in any order, with
// either endpoint orientation, built through either construction path, must
// fingerprint identically. (Isomorphism-insensitivity — relabeled node IDs —
// is explicitly out of scope.)
func TestFingerprintStableAcrossEdgeOrderings(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(40)
		edges := randomEdgeList(n, 0.2, r)
		want := NewFromEdges(n, edges).Fingerprint()

		for rep := 0; rep < 5; rep++ {
			shuffled := append([][2]int(nil), edges...)
			r.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			// Randomly flip endpoint orientation: {u,v} and {v,u} are the
			// same undirected edge.
			for i := range shuffled {
				if r.Intn(2) == 0 {
					shuffled[i][0], shuffled[i][1] = shuffled[i][1], shuffled[i][0]
				}
			}
			if got := NewFromEdges(n, shuffled).Fingerprint(); got != want {
				t.Fatalf("trial %d rep %d: fingerprint changed under edge reordering", trial, rep)
			}
			// AddEdge insertion path in shuffled order.
			g := New(n)
			for _, e := range shuffled {
				g.AddEdge(e[0], e[1])
			}
			if got := g.Fingerprint(); got != want {
				t.Fatalf("trial %d rep %d: fingerprint differs across construction paths", trial, rep)
			}
		}
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	base := NewFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	cases := map[string]*Graph{
		"extra node":     NewFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		"missing edge":   NewFromEdges(4, [][2]int{{0, 1}, {1, 2}}),
		"different edge": NewFromEdges(4, [][2]int{{0, 1}, {1, 2}, {1, 3}}),
		"empty":          New(4),
	}
	want := base.Fingerprint()
	for name, g := range cases {
		if g.Fingerprint() == want {
			t.Errorf("%s: fingerprint collides with base graph", name)
		}
	}
}

// TestHasherKeyComponents pins that every request-key component —
// budgets, algorithm, parameters, seed — perturbs the sum, and that equal
// inputs agree.
func TestHasherKeyComponents(t *testing.T) {
	g := NewFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	key := func(g *Graph, budgets []int, alg string, k int, kc float64, seed uint64) string {
		return NewHasher().
			Graph("graph", g).
			Ints("budgets", budgets).
			String("alg", alg).
			Int("k", k).
			Float("kconst", kc).
			Uint64("seed", seed).
			Sum()
	}
	base := key(g, []int{3, 3, 3, 3, 3}, "uniform", 1, 3, 7)
	if again := key(g.Clone(), []int{3, 3, 3, 3, 3}, "uniform", 1, 3, 7); again != base {
		t.Fatal("identical requests produced different keys")
	}
	variants := map[string]string{
		"budgets": key(g, []int{3, 3, 3, 3, 4}, "uniform", 1, 3, 7),
		"alg":     key(g, []int{3, 3, 3, 3, 3}, "general", 1, 3, 7),
		"k":       key(g, []int{3, 3, 3, 3, 3}, "uniform", 2, 3, 7),
		"kconst":  key(g, []int{3, 3, 3, 3, 3}, "uniform", 1, 2.5, 7),
		"seed":    key(g, []int{3, 3, 3, 3, 3}, "uniform", 1, 3, 8),
		"graph":   key(NewFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}), []int{3, 3, 3, 3, 3}, "uniform", 1, 3, 7),
	}
	seen := map[string]string{base: "base"}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestHasherFraming pins the anti-concatenation property: moving bytes
// between adjacent fields must change the sum.
func TestHasherFraming(t *testing.T) {
	a := NewHasher().String("x", "ab").String("y", "c").Sum()
	b := NewHasher().String("x", "a").String("y", "bc").Sum()
	if a == b {
		t.Fatal("field framing does not prevent concatenation collisions")
	}
	if NewHasher().Ints("v", nil).Sum() == NewHasher().Sum() {
		t.Fatal("absent field indistinguishable from empty slice")
	}
}
