package graph

import "fmt"

// BudgetUpdate revises the duty budget of one surviving node, addressed in
// the pre-delta ID space.
type BudgetUpdate struct {
	Node   int `json:"node"`
	Budget int `json:"budget"`
}

// Delta is a typed, serializable change to a deployed network: edges and
// nodes disappear, fresh nodes join, and duty budgets are revised. It is the
// wire format of the live-reconfiguration API (PATCH /v1/schedule in
// internal/serve) and the input of the transition planner (internal/reconfig),
// so unlike the graph constructors it validates rather than panics — a Delta
// crosses the trust boundary.
//
// Apply performs the steps in a fixed order, and the ID spaces of the fields
// follow from it:
//
//  1. RemoveEdges (pre-delta IDs) are deleted;
//  2. RemoveNodes (pre-delta IDs) are deleted with their incident edges, and
//     the survivors are renumbered compactly in their original order;
//  3. AddNodes fresh isolated nodes are appended, taking the next IDs after
//     the survivors (a survivor's post-delta ID is its rank among survivors;
//     added node i gets ID survivors+i);
//  4. AddEdges (post-delta IDs) are inserted;
//  5. budgets carry over to survivors, added nodes get NewBudgets (zero when
//     omitted), then SetBudgets (pre-delta IDs) revises surviving nodes.
//
// The zero Delta is the identity: Apply returns a structural copy.
type Delta struct {
	// RemoveEdges lists undirected edges to delete, in pre-delta IDs. Every
	// listed edge must exist; listing one twice is an error.
	RemoveEdges [][2]int `json:"remove_edges,omitempty"`
	// RemoveNodes lists nodes to delete (with their incident edges), in
	// pre-delta IDs. Duplicates are an error.
	RemoveNodes []int `json:"remove_nodes,omitempty"`
	// AddNodes is the number of fresh nodes appended after the survivors.
	AddNodes int `json:"add_nodes,omitempty"`
	// NewBudgets, when non-empty, gives the initial budgets of the added
	// nodes (length must equal AddNodes). Empty means zero budgets.
	NewBudgets []int `json:"new_budgets,omitempty"`
	// AddEdges lists undirected edges to insert, in post-delta IDs (so added
	// nodes can be wired in). Self-loops, duplicates, and edges that already
	// exist are errors.
	AddEdges [][2]int `json:"add_edges,omitempty"`
	// SetBudgets revises the budgets of surviving nodes, addressed in
	// pre-delta IDs. Updating a removed node or the same node twice is an
	// error.
	SetBudgets []BudgetUpdate `json:"set_budgets,omitempty"`
}

// Empty reports whether d is the identity delta.
func (d Delta) Empty() bool {
	return len(d.RemoveEdges) == 0 && len(d.RemoveNodes) == 0 &&
		d.AddNodes == 0 && len(d.AddEdges) == 0 && len(d.SetBudgets) == 0
}

// packEdge keys an undirected edge for duplicate detection (u < v after
// normalization; node IDs fit in 32 bits by construction of the graph layer).
func packEdge(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// Apply validates d against g and the pre-delta budget vector and returns the
// post-delta graph, the post-delta budget vector, and the old→new ID mapping
// (mapping[v] is v's post-delta ID, or -1 when v was removed). g and budgets
// are never mutated; on error all three results are nil.
//
// The fingerprint contract: Apply builds the result through the same
// canonical constructor a from-scratch build uses, so the post-delta graph's
// Fingerprint equals that of a graph freshly constructed with the same node
// count and edge set — the property the serving layer's cache invalidation
// keys on, pinned by the randomized-sequence property test.
func (d Delta) Apply(g *Graph, budgets []int) (*Graph, []int, []int, error) {
	if g == nil {
		return nil, nil, nil, fmt.Errorf("graph: delta: nil graph")
	}
	n := g.N()
	if len(budgets) != n {
		return nil, nil, nil, fmt.Errorf("graph: delta: %d budgets for %d nodes", len(budgets), n)
	}
	if d.AddNodes < 0 {
		return nil, nil, nil, fmt.Errorf("graph: delta: add_nodes = %d must be >= 0", d.AddNodes)
	}
	if len(d.NewBudgets) != 0 && len(d.NewBudgets) != d.AddNodes {
		return nil, nil, nil, fmt.Errorf("graph: delta: %d new_budgets for %d added nodes",
			len(d.NewBudgets), d.AddNodes)
	}
	for i, b := range d.NewBudgets {
		if b < 0 {
			return nil, nil, nil, fmt.Errorf("graph: delta: new_budgets[%d] = %d must be >= 0", i, b)
		}
	}

	removed := make([]bool, n)
	for _, v := range d.RemoveNodes {
		if v < 0 || v >= n {
			return nil, nil, nil, fmt.Errorf("graph: delta: remove_nodes: node %d out of range [0, %d)", v, n)
		}
		if removed[v] {
			return nil, nil, nil, fmt.Errorf("graph: delta: remove_nodes: node %d listed twice", v)
		}
		removed[v] = true
	}

	dropEdge := make(map[uint64]bool, len(d.RemoveEdges))
	for i, e := range d.RemoveEdges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, nil, nil, fmt.Errorf("graph: delta: remove_edges[%d] {%d,%d}: endpoint out of range [0, %d)", i, u, v, n)
		}
		if u == v {
			return nil, nil, nil, fmt.Errorf("graph: delta: remove_edges[%d]: self-loop at node %d", i, u)
		}
		if !g.HasEdge(u, v) {
			return nil, nil, nil, fmt.Errorf("graph: delta: remove_edges[%d]: edge {%d,%d} does not exist", i, u, v)
		}
		key := packEdge(u, v)
		if dropEdge[key] {
			return nil, nil, nil, fmt.Errorf("graph: delta: remove_edges[%d]: edge {%d,%d} listed twice", i, u, v)
		}
		dropEdge[key] = true
	}

	// Survivors keep their relative order; added nodes take the next IDs.
	mapping := make([]int, n)
	survivors := 0
	for v := 0; v < n; v++ {
		if removed[v] {
			mapping[v] = -1
			continue
		}
		mapping[v] = survivors
		survivors++
	}
	n2 := survivors + d.AddNodes

	// Carry the surviving edges over, minus the explicit removals.
	edges := make([][2]int, 0, g.M()+len(d.AddEdges))
	present := make(map[uint64]bool, g.M()+len(d.AddEdges))
	g.Edges(func(u, v int) {
		if removed[u] || removed[v] || dropEdge[packEdge(u, v)] {
			return
		}
		nu, nv := mapping[u], mapping[v]
		edges = append(edges, [2]int{nu, nv})
		present[packEdge(nu, nv)] = true
	})
	for i, e := range d.AddEdges {
		u, v := e[0], e[1]
		if u < 0 || u >= n2 || v < 0 || v >= n2 {
			return nil, nil, nil, fmt.Errorf("graph: delta: add_edges[%d] {%d,%d}: endpoint out of post-delta range [0, %d)", i, u, v, n2)
		}
		if u == v {
			return nil, nil, nil, fmt.Errorf("graph: delta: add_edges[%d]: self-loop at node %d", i, u)
		}
		key := packEdge(u, v)
		if present[key] {
			return nil, nil, nil, fmt.Errorf("graph: delta: add_edges[%d]: edge {%d,%d} already present", i, u, v)
		}
		present[key] = true
		edges = append(edges, [2]int{u, v})
	}

	budgets2 := make([]int, n2)
	for v := 0; v < n; v++ {
		if mapping[v] >= 0 {
			budgets2[mapping[v]] = budgets[v]
		}
	}
	for i := 0; i < d.AddNodes; i++ {
		if len(d.NewBudgets) > 0 {
			budgets2[survivors+i] = d.NewBudgets[i]
		}
	}
	seenUpdate := make(map[int]bool, len(d.SetBudgets))
	for i, up := range d.SetBudgets {
		if up.Node < 0 || up.Node >= n {
			return nil, nil, nil, fmt.Errorf("graph: delta: set_budgets[%d]: node %d out of range [0, %d)", i, up.Node, n)
		}
		if removed[up.Node] {
			return nil, nil, nil, fmt.Errorf("graph: delta: set_budgets[%d]: node %d is removed by this delta", i, up.Node)
		}
		if seenUpdate[up.Node] {
			return nil, nil, nil, fmt.Errorf("graph: delta: set_budgets[%d]: node %d updated twice", i, up.Node)
		}
		if up.Budget < 0 {
			return nil, nil, nil, fmt.Errorf("graph: delta: set_budgets[%d]: budget %d must be >= 0", i, up.Budget)
		}
		seenUpdate[up.Node] = true
		budgets2[mapping[up.Node]] = up.Budget
	}

	// Everything is validated: the canonical constructor cannot panic, and
	// building through it is what keeps Fingerprint consistent with a
	// from-scratch construction.
	return NewFromEdges(n2, edges), budgets2, mapping, nil
}

// HashInto mixes the delta into h as a canonical key component: every field
// is labeled and length-framed (via the Hasher contract), so two distinct
// deltas produce distinct key material and the serving layer can cache
// reconfiguration results under Hasher sums like every other request.
func (d Delta) HashInto(h *Hasher) *Hasher {
	pairs := func(label string, ps [][2]int) {
		flat := make([]int, 0, 2*len(ps))
		for _, p := range ps {
			flat = append(flat, p[0], p[1])
		}
		h.Ints(label, flat)
	}
	pairs("delta.remove_edges", d.RemoveEdges)
	h.Ints("delta.remove_nodes", d.RemoveNodes)
	h.Int("delta.add_nodes", d.AddNodes)
	h.Ints("delta.new_budgets", d.NewBudgets)
	pairs("delta.add_edges", d.AddEdges)
	updates := make([]int, 0, 2*len(d.SetBudgets))
	for _, up := range d.SetBudgets {
		updates = append(updates, up.Node, up.Budget)
	}
	h.Ints("delta.set_budgets", updates)
	return h
}
