package graph

import (
	"testing"
	"testing/quick"
)

// TestRandomEdgeInsertionInvariants: inserting an arbitrary simple edge set
// keeps the graph valid, with degree sum equal to 2M.
func TestRandomEdgeInsertionInvariants(t *testing.T) {
	prop := func(pairs []uint16) bool {
		const n = 32
		g := New(n)
		for _, p := range pairs {
			u := int(p>>8) % n
			v := int(p&0xff) % n
			g.AddEdgeIfAbsent(u, v)
		}
		if g.Validate() != nil {
			return false
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTwoHopMinLowerBoundsProperty: δ²_v ≤ δ_v always, and
// min_v δ²_v == δ (the two-hop minimum can never undercut the global
// minimum by more than reaching it).
func TestTwoHopMinLowerBoundsProperty(t *testing.T) {
	prop := func(pairs []uint16) bool {
		const n = 24
		g := New(n)
		for _, p := range pairs {
			g.AddEdgeIfAbsent(int(p>>8)%n, int(p&0xff)%n)
		}
		d2 := g.TwoHopMinDegree()
		min2 := d2[0]
		for v := 0; v < n; v++ {
			if d2[v] > g.Degree(v) {
				return false
			}
			if d2[v] < min2 {
				min2 = d2[v]
			}
		}
		return min2 == g.MinDegree()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBFSTriangleInequalityProperty: BFS distances satisfy
// |d(s,u) - d(s,v)| <= 1 across every edge {u,v}.
func TestBFSTriangleInequalityProperty(t *testing.T) {
	prop := func(pairs []uint16, srcBits uint8) bool {
		const n = 20
		g := New(n)
		for _, p := range pairs {
			g.AddEdgeIfAbsent(int(p>>8)%n, int(p&0xff)%n)
		}
		dist := g.BFS(int(srcBits) % n)
		ok := true
		g.Edges(func(u, v int) {
			du, dv := dist[u], dist[v]
			if (du == -1) != (dv == -1) {
				ok = false
			} else if du != -1 && abs(du-dv) > 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
