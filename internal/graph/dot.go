package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT emits the graph in Graphviz DOT format for visualization.
// highlight, if non-nil, marks a node set (e.g. a dominating set) with a
// filled style.
func WriteDOT(w io.Writer, g *Graph, name string, highlight []int) error {
	if name == "" {
		name = "G"
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	marked := make(map[int]bool, len(highlight))
	for _, v := range highlight {
		marked[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if marked[v] {
			if _, err := fmt.Fprintf(bw, "  %d [style=filled, fillcolor=gray];\n", v); err != nil {
				return err
			}
		} else if g.Degree(v) == 0 {
			// Isolated nodes would otherwise not appear at all.
			if _, err := fmt.Fprintf(bw, "  %d;\n", v); err != nil {
				return err
			}
		}
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
	})
	if werr != nil {
		return werr
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
