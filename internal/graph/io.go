package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a plain text format:
//
//	# comment lines start with '#'
//	n <N>
//	<u> <v>        (one edge per line, u < v)
//
// The format round-trips through ReadEdgeList and is what cmd/graphgen emits.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// HintPrefix is the comment prefix under which edge lists may carry a
// structure hint ("# hint: grid 8 8"). ReadEdgeList skips it like any
// other comment; ReadEdgeListHinted surfaces the payload.
const HintPrefix = "# hint:"

// ReadEdgeList parses the format written by WriteEdgeList. Blank lines and
// lines starting with '#' are ignored. The "n <N>" header must precede all
// edges.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g, _, err := ReadEdgeListHinted(r)
	return g, err
}

// ReadEdgeListHinted is ReadEdgeList plus the structure hint: when the
// stream carries a "# hint: <payload>" comment (cmd/graphgen tags its
// grid/torus/udg families), the trimmed payload of the first such line is
// returned alongside the graph. The hint is free-form advice for
// instance.ParseHint — this layer does not interpret it.
func ReadEdgeListHinted(r io.Reader) (*Graph, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	hint := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if hint == "" && strings.HasPrefix(line, HintPrefix) {
				hint = strings.TrimSpace(strings.TrimPrefix(line, HintPrefix))
			}
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if g != nil {
				return nil, "", fmt.Errorf("graph: line %d: duplicate node-count header", lineNo)
			}
			if len(fields) != 2 {
				return nil, "", fmt.Errorf("graph: line %d: malformed header %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, "", fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			g = New(n)
			continue
		}
		if g == nil {
			return nil, "", fmt.Errorf("graph: line %d: edge before \"n <N>\" header", lineNo)
		}
		if len(fields) != 2 {
			return nil, "", fmt.Errorf("graph: line %d: malformed edge %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, "", fmt.Errorf("graph: line %d: bad endpoint %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, "", fmt.Errorf("graph: line %d: bad endpoint %q", lineNo, fields[1])
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return nil, "", fmt.Errorf("graph: line %d: endpoint out of range in %q", lineNo, line)
		}
		if u == v {
			return nil, "", fmt.Errorf("graph: line %d: self-loop %d", lineNo, u)
		}
		if !g.AddEdgeIfAbsent(u, v) {
			return nil, "", fmt.Errorf("graph: line %d: duplicate edge {%d,%d}", lineNo, u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	if g == nil {
		return nil, "", fmt.Errorf("graph: missing \"n <N>\" header")
	}
	return g, hint, nil
}
