package graph

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

// buildRandom returns a random simple graph on n nodes with roughly m edges.
func buildRandom(n, m int, src *rng.Source) *Graph {
	g := New(n)
	for i := 0; i < m; i++ {
		u, v := src.Intn(n), src.Intn(n)
		g.AddEdgeIfAbsent(u, v)
	}
	return g
}

// shadow is an independent model of the delta semantics: a node count plus a
// packed edge set, mutated by plain map operations rather than through the
// graph layer. The property test checks Delta.Apply against it.
type shadow struct {
	n     int
	edges map[uint64]bool
}

func shadowOf(g *Graph) *shadow {
	s := &shadow{n: g.N(), edges: make(map[uint64]bool, g.M())}
	g.Edges(func(u, v int) { s.edges[packEdge(u, v)] = true })
	return s
}

// apply mutates the shadow by the delta's documented semantics, implemented
// from the spec rather than sharing code with Delta.Apply.
func (s *shadow) apply(d Delta) {
	for _, e := range d.RemoveEdges {
		delete(s.edges, packEdge(e[0], e[1]))
	}
	removed := make(map[int]bool, len(d.RemoveNodes))
	for _, v := range d.RemoveNodes {
		removed[v] = true
	}
	mapping := make([]int, s.n)
	next := 0
	for v := 0; v < s.n; v++ {
		if removed[v] {
			mapping[v] = -1
			continue
		}
		mapping[v] = next
		next++
	}
	moved := make(map[uint64]bool, len(s.edges))
	for key := range s.edges {
		u, v := int(key>>32), int(key&0xffffffff)
		if removed[u] || removed[v] {
			continue
		}
		moved[packEdge(mapping[u], mapping[v])] = true
	}
	s.edges = moved
	s.n = next + d.AddNodes
	for _, e := range d.AddEdges {
		s.edges[packEdge(e[0], e[1])] = true
	}
}

// graph rebuilds a Graph from scratch out of the shadow state.
func (s *shadow) graph() *Graph {
	edges := make([][2]int, 0, len(s.edges))
	for key := range s.edges {
		edges = append(edges, [2]int{int(key >> 32), int(key & 0xffffffff)})
	}
	return NewFromEdges(s.n, edges)
}

// randomDelta draws a valid delta against g: edge and node removals sampled
// from the live structure, added nodes wired to random survivors.
func randomDelta(g *Graph, src *rng.Source) Delta {
	var d Delta
	n := g.N()

	var all [][2]int
	g.Edges(func(u, v int) { all = append(all, [2]int{u, v}) })
	for _, i := range src.Perm(len(all)) {
		if len(d.RemoveEdges) >= 2 {
			break
		}
		d.RemoveEdges = append(d.RemoveEdges, all[i])
	}

	if n > 2 {
		for _, v := range src.Perm(n) {
			if len(d.RemoveNodes) >= 2 {
				break
			}
			d.RemoveNodes = append(d.RemoveNodes, v)
		}
	}
	survivors := n - len(d.RemoveNodes)

	d.AddNodes = src.Intn(3)
	for i := 0; i < d.AddNodes; i++ {
		d.NewBudgets = append(d.NewBudgets, src.Intn(5))
	}
	// Wire each added node to up to two distinct survivors: added nodes start
	// isolated, so these edges cannot collide with carried-over ones.
	for i := 0; i < d.AddNodes && survivors > 0; i++ {
		newID := survivors + i
		for _, t := range src.Perm(survivors)[:min(2, survivors)] {
			d.AddEdges = append(d.AddEdges, [2]int{t, newID})
		}
	}

	removed := make(map[int]bool, len(d.RemoveNodes))
	for _, v := range d.RemoveNodes {
		removed[v] = true
	}
	for _, v := range src.Perm(n) {
		if len(d.SetBudgets) >= 2 {
			break
		}
		if !removed[v] {
			d.SetBudgets = append(d.SetBudgets, BudgetUpdate{Node: v, Budget: src.Intn(9)})
		}
	}
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestDeltaFingerprintProperty is the randomized-sequence property test of
// the issue: after every delta in a random sequence, the applied graph's
// fingerprint must equal the fingerprint of a graph rebuilt from scratch out
// of an independently maintained model of the same mutations.
func TestDeltaFingerprintProperty(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 6 + src.Intn(20)
		g := buildRandom(n, 3*n, src)
		budgets := make([]int, g.N())
		for v := range budgets {
			budgets[v] = src.Intn(6)
		}
		sh := shadowOf(g)
		for step := 0; step < 5; step++ {
			d := randomDelta(g, src)
			g2, budgets2, mapping, err := d.Apply(g, budgets)
			if err != nil {
				t.Fatalf("trial %d step %d: Apply: %v (delta %+v)", trial, step, err, d)
			}
			if err := g2.Validate(); err != nil {
				t.Fatalf("trial %d step %d: invalid result graph: %v", trial, step, err)
			}
			sh.apply(d)
			rebuilt := sh.graph()
			if g2.Fingerprint() != rebuilt.Fingerprint() {
				t.Fatalf("trial %d step %d: fingerprint mismatch: applied %v vs rebuilt %v",
					trial, step, g2, rebuilt)
			}
			if len(mapping) != g.N() || len(budgets2) != g2.N() {
				t.Fatalf("trial %d step %d: mapping len %d (want %d), budgets len %d (want %d)",
					trial, step, len(mapping), g.N(), len(budgets2), g2.N())
			}
			g, budgets = g2, budgets2
		}
	}
}

func TestDeltaApplySemantics(t *testing.T) {
	// Path 0-1-2-3 plus node 4 isolated.
	g := NewFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	budgets := []int{10, 11, 12, 13, 14}
	d := Delta{
		RemoveEdges: [][2]int{{1, 2}},
		RemoveNodes: []int{0},
		AddNodes:    2,
		NewBudgets:  []int{7, 8},
		// Post-delta IDs: survivors 1,2,3,4 → 0,1,2,3; added → 4,5.
		AddEdges:   [][2]int{{3, 4}, {4, 5}},
		SetBudgets: []BudgetUpdate{{Node: 3, Budget: 99}}, // pre-delta ID 3 → post-delta ID 2
	}
	g2, budgets2, mapping, err := d.Apply(g, budgets)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	wantMapping := []int{-1, 0, 1, 2, 3}
	for v, m := range mapping {
		if m != wantMapping[v] {
			t.Fatalf("mapping = %v, want %v", mapping, wantMapping)
		}
	}
	if g2.N() != 6 || g2.M() != 3 {
		t.Fatalf("got %v, want n=6 m=3", g2)
	}
	for _, e := range [][2]int{{1, 2}, {3, 4}, {4, 5}} { // old {2,3} edge is {1,2} now
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v in %v", e, g2)
		}
	}
	wantBudgets := []int{11, 12, 99, 14, 7, 8}
	for v, b := range budgets2 {
		if b != wantBudgets[v] {
			t.Fatalf("budgets2 = %v, want %v", budgets2, wantBudgets)
		}
	}
	// Inputs untouched.
	if g.N() != 5 || g.M() != 3 || budgets[3] != 13 {
		t.Fatalf("inputs mutated: %v %v", g, budgets)
	}
}

func TestDeltaApplyIdentity(t *testing.T) {
	g := buildRandom(12, 30, rng.New(3))
	budgets := make([]int, 12)
	g2, budgets2, mapping, err := Delta{}.Apply(g, budgets)
	if err != nil {
		t.Fatalf("identity Apply: %v", err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Fatal("identity delta changed the fingerprint")
	}
	for v, m := range mapping {
		if m != v {
			t.Fatalf("identity mapping[%d] = %d", v, m)
		}
	}
	if len(budgets2) != len(budgets) {
		t.Fatalf("identity budgets length %d", len(budgets2))
	}
	if !(Delta{}).Empty() {
		t.Fatal("zero delta not Empty")
	}
	if (Delta{AddNodes: 1}).Empty() {
		t.Fatal("non-zero delta reported Empty")
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	g := NewFromEdges(4, [][2]int{{0, 1}, {1, 2}})
	budgets := []int{1, 1, 1, 1}
	cases := []struct {
		name string
		d    Delta
		bud  []int
		want string
	}{
		{"budget length", Delta{}, []int{1}, "budgets for"},
		{"negative add_nodes", Delta{AddNodes: -1}, budgets, "add_nodes"},
		{"new_budgets length", Delta{AddNodes: 2, NewBudgets: []int{1}}, budgets, "new_budgets for"},
		{"negative new_budget", Delta{AddNodes: 1, NewBudgets: []int{-1}}, budgets, "new_budgets[0]"},
		{"remove node range", Delta{RemoveNodes: []int{4}}, budgets, "out of range"},
		{"remove node twice", Delta{RemoveNodes: []int{1, 1}}, budgets, "listed twice"},
		{"remove edge range", Delta{RemoveEdges: [][2]int{{0, 9}}}, budgets, "out of range"},
		{"remove edge loop", Delta{RemoveEdges: [][2]int{{2, 2}}}, budgets, "self-loop"},
		{"remove edge missing", Delta{RemoveEdges: [][2]int{{0, 3}}}, budgets, "does not exist"},
		{"remove edge twice", Delta{RemoveEdges: [][2]int{{0, 1}, {1, 0}}}, budgets, "listed twice"},
		{"add edge range", Delta{AddEdges: [][2]int{{0, 4}}}, budgets, "out of post-delta range"},
		{"add edge loop", Delta{AddEdges: [][2]int{{3, 3}}}, budgets, "self-loop"},
		{"add edge present", Delta{AddEdges: [][2]int{{0, 1}}}, budgets, "already present"},
		{"add edge twice", Delta{AddEdges: [][2]int{{0, 3}, {3, 0}}}, budgets, "already present"},
		{"set budget range", Delta{SetBudgets: []BudgetUpdate{{Node: 7}}}, budgets, "out of range"},
		{"set budget removed", Delta{RemoveNodes: []int{2}, SetBudgets: []BudgetUpdate{{Node: 2}}}, budgets, "removed by this delta"},
		{"set budget twice", Delta{SetBudgets: []BudgetUpdate{{Node: 1, Budget: 2}, {Node: 1, Budget: 3}}}, budgets, "updated twice"},
		{"set budget negative", Delta{SetBudgets: []BudgetUpdate{{Node: 1, Budget: -2}}}, budgets, "must be >= 0"},
	}
	for _, tc := range cases {
		_, _, _, err := tc.d.Apply(g, tc.bud)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, _, _, err := (Delta{}).Apply(nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestDeltaHashInto(t *testing.T) {
	sum := func(d Delta) string { return d.HashInto(NewHasher()).Sum() }
	a := Delta{RemoveNodes: []int{1}, AddNodes: 2}
	if sum(a) != sum(a) {
		t.Fatal("HashInto not deterministic")
	}
	variants := []Delta{
		{},
		{RemoveNodes: []int{1}},
		{RemoveNodes: []int{1}, AddNodes: 2},
		{RemoveEdges: [][2]int{{0, 1}}},
		{AddEdges: [][2]int{{0, 1}}},
		{AddNodes: 2, NewBudgets: []int{1, 2}},
		{SetBudgets: []BudgetUpdate{{Node: 0, Budget: 1}}},
		{SetBudgets: []BudgetUpdate{{Node: 1, Budget: 0}}},
	}
	seen := map[string]int{}
	for i, d := range variants {
		s := sum(d)
		if j, dup := seen[s]; dup {
			t.Fatalf("variants %d and %d hash identically", i, j)
		}
		seen[s] = i
	}
}
