package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Fingerprint returns the canonical SHA-256 hash of the graph structure: the
// node count, edge count, and the sorted undirected edge list. Because the
// adjacency lists are kept sorted, two graphs over the same node set with the
// same edge set fingerprint identically no matter the order edges were
// inserted or listed, and distinct structures differ (up to SHA-256
// collisions). Node IDs are part of the structure: isomorphic graphs with
// different labelings fingerprint differently by design — the serving layer
// caches by concrete instance, not by isomorphism class.
func (g *Graph) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	hashGraph(h, g)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func hashGraph(h hash.Hash, g *Graph) {
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	g.Edges(func(u, v int) {
		put(uint64(u))
		put(uint64(v))
	})
}

// Hasher accumulates a canonical request key: a graph structure plus labeled
// scalar and slice parameters (budgets, algorithm name, tolerance, seed, …).
// Every field is framed with its label and a length prefix, so adjacent
// fields cannot collide by concatenation ("ab"+"c" vs "a"+"bc") and a nil
// slice is distinct from an empty one is distinct from an absent one. The
// serving layer (internal/serve) keys its result cache and request
// coalescing on Hasher sums.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher returns an empty Hasher.
func NewHasher() *Hasher {
	return &Hasher{h: sha256.New()}
}

func (s *Hasher) frame(label string, kind byte, payloadLen int) {
	s.putUint(uint64(len(label)))
	s.h.Write([]byte(label))
	s.h.Write([]byte{kind})
	s.putUint(uint64(payloadLen))
}

func (s *Hasher) putUint(v uint64) {
	binary.LittleEndian.PutUint64(s.buf[:], v)
	s.h.Write(s.buf[:])
}

// Graph mixes in the canonical structure hash of g under the given label.
func (s *Hasher) Graph(label string, g *Graph) *Hasher {
	s.frame(label, 'g', g.N())
	hashGraph(s.h, g)
	return s
}

// String mixes in a labeled string.
func (s *Hasher) String(label, v string) *Hasher {
	s.frame(label, 's', len(v))
	s.h.Write([]byte(v))
	return s
}

// Int mixes in a labeled int.
func (s *Hasher) Int(label string, v int) *Hasher {
	s.frame(label, 'i', 1)
	s.putUint(uint64(v))
	return s
}

// Uint64 mixes in a labeled uint64 (seeds).
func (s *Hasher) Uint64(label string, v uint64) *Hasher {
	s.frame(label, 'u', 1)
	s.putUint(v)
	return s
}

// Float mixes in a labeled float64 by its IEEE-754 bits, so every distinct
// value (including -0 vs +0 and NaN payloads) is a distinct key component.
func (s *Hasher) Float(label string, v float64) *Hasher {
	s.frame(label, 'f', 1)
	s.putUint(math.Float64bits(v))
	return s
}

// Ints mixes in a labeled int slice in order, length-prefixed.
func (s *Hasher) Ints(label string, vs []int) *Hasher {
	s.frame(label, 'I', len(vs))
	for _, v := range vs {
		s.putUint(uint64(v))
	}
	return s
}

// Sum returns the accumulated key as a hex string. The Hasher must not be
// used after Sum.
func (s *Hasher) Sum() string {
	return hex.EncodeToString(s.h.Sum(nil))
}
