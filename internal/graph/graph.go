// Package graph implements the undirected network graph model of the paper:
// nodes are vertices, an edge {u,v} means u and v are within communication
// range of each other. Edges are undirected (the paper assumes link-level
// acknowledgements make links symmetric).
//
// The representation is a compact adjacency list with sorted neighbor
// slices. Node IDs are dense integers in [0, N). The package also provides
// the degree statistics the algorithms consume: per-node degree δ_v, global
// minimum degree δ and maximum degree Δ, and the two-hop minimum degree
// δ²_v = min_{u ∈ N+[v]} δ_u that Algorithm 1 computes with one message
// exchange.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph over nodes 0..N()-1. The zero value is
// an empty graph; use New or a builder from package gen.
type Graph struct {
	adj [][]int32 // sorted neighbor lists
	m   int       // number of edges
}

// New returns an empty graph with n isolated nodes. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([][]int32, n)}
}

// NewFromEdges builds a graph in O(n + m log Δ): it buckets all edges per
// node first and sorts each adjacency list once, instead of the O(Δ) insert
// per edge that AddEdge pays. Self-loops and duplicate edges are rejected
// with a panic, matching AddEdge's contract. Generators use this fast path.
func NewFromEdges(n int, edges [][2]int) *Graph {
	g := New(n)
	deg := make([]int, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			panic(fmt.Sprintf("graph: self-loop at node %d", u))
		}
		g.checkNode(u)
		g.checkNode(v)
		deg[u]++
		deg[v]++
	}
	for v, d := range deg {
		g.adj[v] = make([]int32, 0, d)
	}
	for _, e := range edges {
		g.adj[e[0]] = append(g.adj[e[0]], int32(e[1]))
		g.adj[e[1]] = append(g.adj[e[1]], int32(e[0]))
	}
	for v := range g.adj {
		s := g.adj[v]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				panic(fmt.Sprintf("graph: duplicate edge {%d, %d}", v, s[i]))
			}
		}
	}
	g.m = len(edges)
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate edges
// are rejected with a panic: the network model is a simple graph and silent
// deduplication would hide generator bugs.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	g.checkNode(u)
	g.checkNode(v)
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge {%d, %d}", u, v))
	}
	g.adj[u] = insertSorted(g.adj[u], int32(v))
	g.adj[v] = insertSorted(g.adj[v], int32(u))
	g.m++
}

// AddEdgeIfAbsent inserts {u, v} unless it already exists or u == v.
// It reports whether the edge was added. Generators that may propose the
// same pair twice (e.g. G(n,m) sampling) use this instead of AddEdge.
func (g *Graph) AddEdgeIfAbsent(u, v int) bool {
	if u == v {
		return false
	}
	g.checkNode(u)
	g.checkNode(v)
	if g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = insertSorted(g.adj[u], int32(v))
	g.adj[v] = insertSorted(g.adj[v], int32(u))
	g.m++
	return true
}

func (g *Graph) checkNode(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", v, len(g.adj)))
	}
}

func insertSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	s := g.adj[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= int32(v) })
	return i < len(s) && s[i] == int32(v)
}

// Neighbors returns the sorted open neighborhood N(v). The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	g.checkNode(v)
	return g.adj[v]
}

// Degree returns δ_v = |N(v)|.
func (g *Graph) Degree(v int) int {
	g.checkNode(v)
	return len(g.adj[v])
}

// MinDegree returns δ = min_v δ_v, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, nbrs := range g.adj[1:] {
		if len(nbrs) < min {
			min = len(nbrs)
		}
	}
	return min
}

// MaxDegree returns Δ = max_v δ_v, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// TwoHopMinDegree returns δ²_v = min_{u ∈ N+[v]} δ_u for every node: the
// quantity each node learns after a single exchange of degrees with its
// neighbors (line 3 of Algorithm 1 in the paper).
func (g *Graph) TwoHopMinDegree() []int {
	out := make([]int, len(g.adj))
	for v, nbrs := range g.adj {
		min := len(nbrs)
		for _, u := range nbrs {
			if d := len(g.adj[u]); d < min {
				min = d
			}
		}
		out[v] = min
	}
	return out
}

// ClosedNeighborhood returns N+[v] = N(v) ∪ {v} as a sorted fresh slice.
func (g *Graph) ClosedNeighborhood(v int) []int32 {
	g.checkNode(v)
	out := make([]int32, 0, len(g.adj[v])+1)
	inserted := false
	for _, u := range g.adj[v] {
		if !inserted && int32(v) < u {
			out = append(out, int32(v))
			inserted = true
		}
		out = append(out, u)
	}
	if !inserted {
		out = append(out, int32(v))
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int32, len(g.adj)), m: g.m}
	for v, nbrs := range g.adj {
		c.adj[v] = append([]int32(nil), nbrs...)
	}
	return c
}

// Edges calls fn once per undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u, nbrs := range g.adj {
		for _, w := range nbrs {
			if int32(u) < w {
				fn(u, int(w))
			}
		}
	}
}

// InducedSubgraph returns the subgraph induced by the given nodes together
// with the mapping from new IDs to original IDs. Duplicate nodes panic.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	idx := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, v := range nodes {
		g.checkNode(v)
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("graph: duplicate node %d in induced subgraph", v))
		}
		idx[v] = i
		orig[i] = v
	}
	sub := New(len(nodes))
	for i, v := range nodes {
		for _, u := range g.adj[v] {
			if j, ok := idx[int(u)]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, orig
}

// RemoveNodes returns a copy of g with the given nodes (and incident edges)
// deleted, plus the new-ID → old-ID mapping. Used by failure injection.
func (g *Graph) RemoveNodes(dead []int) (*Graph, []int) {
	isDead := make([]bool, len(g.adj))
	for _, v := range dead {
		g.checkNode(v)
		isDead[v] = true
	}
	keep := make([]int, 0, len(g.adj))
	for v := range g.adj {
		if !isDead[v] {
			keep = append(keep, v)
		}
	}
	return g.InducedSubgraph(keep)
}

// BFS runs a breadth-first search from src and returns the distance slice
// (-1 for unreachable nodes).
func (g *Graph) BFS(src int) []int {
	g.checkNode(src)
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, int(u))
			}
		}
	}
	return dist
}

// Connected reports whether g is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as slices of node IDs, each
// sorted, in order of smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	for s := range g.adj {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, u := range g.adj[comp[i]] {
				if !seen[u] {
					seen[u] = true
					comp = append(comp, int(u))
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Validate checks internal invariants (sorted, symmetric, simple adjacency)
// and returns an error describing the first violation. Generators call this
// in tests.
func (g *Graph) Validate() error {
	count := 0
	for v, nbrs := range g.adj {
		for i, u := range nbrs {
			if int(u) < 0 || int(u) >= len(g.adj) {
				return fmt.Errorf("node %d: neighbor %d out of range", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("node %d: self-loop", v)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("node %d: neighbors not strictly sorted at %d", v, i)
			}
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("edge {%d,%d} not symmetric", v, u)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("edge count %d does not match adjacency size %d", g.m, count)
	}
	return nil
}

// DegreeHistogram returns hist where hist[d] is the number of nodes of
// degree d, for d up to Δ.
func (g *Graph) DegreeHistogram() []int {
	hist := make([]int, g.MaxDegree()+1)
	for _, nbrs := range g.adj {
		hist[len(nbrs)]++
	}
	return hist
}

// AverageDegree returns 2M/N, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d δ=%d Δ=%d}", g.N(), g.M(), g.MinDegree(), g.MaxDegree())
}
