// Package domatic implements domatic partitions — collections of pairwise
// disjoint dominating sets — which the paper turns into cluster-lifetime
// schedules. It provides:
//
//   - the randomized coloring at the heart of the paper's Algorithm 1 (each
//     node picks a color in a range governed by its two-hop minimum degree;
//     with the right range every color class is dominating w.h.p.),
//   - the greedy partition (repeatedly extract a dominating set from unused
//     nodes) whose approximation ratio Feige et al. bound by O(√n log n) and
//     whose Ω(√n) worst case the FujitaTrap family witnesses,
//   - an exact domatic-number solver by backtracking for small graphs, and
//   - the structural bounds δ+1 (upper) and ≈(δ+1)/ln Δ (Feige et al. lower).
//
// Note that the maximum number of pairwise disjoint dominating sets equals
// the classical domatic number: leftover nodes can always be folded into an
// existing dominating set without breaking domination.
package domatic

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Partition is a collection of pairwise disjoint node sets, each intended to
// be a dominating set.
type Partition [][]int

// Verify checks that p consists of pairwise disjoint dominating sets of g.
// It returns nil on success and a descriptive error otherwise.
func (p Partition) Verify(g *graph.Graph) error {
	used := make([]bool, g.N())
	for i, set := range p {
		for _, v := range set {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("domatic: set %d contains out-of-range node %d", i, v)
			}
			if used[v] {
				return fmt.Errorf("domatic: node %d appears in more than one set", v)
			}
			used[v] = true
		}
		if !domset.IsDominating(g, set, nil) {
			return fmt.Errorf("domatic: set %d is not dominating", i)
		}
	}
	return nil
}

// UpperBound returns δ+1, the classical upper bound on the domatic number:
// a minimum-degree node has only δ+1 closed neighbors to be dominated by,
// and disjoint dominating sets must each take one.
func UpperBound(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	return g.MinDegree() + 1
}

// FeigeLowerBound returns the Feige–Halldórsson–Kortsarz–Srinivasan
// existential lower bound (1-o(1))(δ+1)/ln Δ, evaluated without the o(1)
// term, as a float. For Δ <= 1 (no meaningful ln) it returns δ+1.
func FeigeLowerBound(g *graph.Graph) float64 {
	d := g.MaxDegree()
	if d <= 1 {
		return float64(g.MinDegree() + 1)
	}
	return float64(g.MinDegree()+1) / math.Log(float64(d))
}

// Extractor produces a dominating set of g using only allowed nodes, or nil
// if none exists. domset.GreedyRestricted and domset.MinimumExact (wrapped)
// are the two extractors the experiments compare.
type Extractor func(g *graph.Graph, allowed []bool) []int

// GreedyExtractor adapts the set-cover greedy to the Extractor interface.
func GreedyExtractor(g *graph.Graph, allowed []bool) []int {
	return domset.GreedyRestricted(g, allowed, nil)
}

// MinimumExtractor adapts the exact branch-and-bound minimum dominating set.
// Exponential; use on small graphs only. This is the "pick a minimum
// dominating set each round" greedy the Fujita lower bound defeats.
func MinimumExtractor(g *graph.Graph, allowed []bool) []int {
	return domset.MinimumExact(g, allowed, nil)
}

// ConstrainedExtractor is a scarcity-aware dominating-set extractor in the
// spirit of the "most constrained – minimally constraining" heuristic of
// Slijepčević & Potkonjak (the paper's reference on disjoint set covers):
// each step adds the allowed node whose closed neighborhood covers the
// uncovered nodes with the fewest remaining allowed dominators, weighting an
// uncovered node u by 1/|allowed dominators of u|. Intuitively it reserves
// plentiful dominators for later sets, which tends to extract more disjoint
// dominating sets than the plain coverage greedy on irregular graphs.
func ConstrainedExtractor(g *graph.Graph, allowed []bool) []int {
	n := g.N()
	need := make([]bool, n)
	remaining := n
	for v := range need {
		need[v] = true
	}
	// supply[u] = number of allowed nodes in N+[u] (how scarce u's
	// domination options are).
	supply := make([]int, n)
	for u := 0; u < n; u++ {
		if allowed == nil || allowed[u] {
			supply[u]++
		}
		for _, w := range g.Neighbors(u) {
			if allowed == nil || allowed[w] {
				supply[u]++
			}
		}
		if need[u] && supply[u] == 0 {
			return nil
		}
	}
	weight := func(v int) float64 {
		total := 0.0
		if need[v] {
			total += 1 / float64(supply[v])
		}
		for _, u := range g.Neighbors(v) {
			if need[u] {
				total += 1 / float64(supply[u])
			}
		}
		return total
	}
	var set []int
	for remaining > 0 {
		best, bestW := -1, 0.0
		for v := 0; v < n; v++ {
			if allowed != nil && !allowed[v] {
				continue
			}
			if w := weight(v); w > bestW {
				best, bestW = v, w
			}
		}
		if best == -1 {
			return nil
		}
		set = append(set, best)
		if need[best] {
			need[best] = false
			remaining--
		}
		for _, u := range g.Neighbors(best) {
			if need[u] {
				need[u] = false
				remaining--
			}
		}
	}
	sort.Ints(set)
	return set
}

// GreedyPartition repeatedly extracts a dominating set from the not-yet-used
// nodes until no further dominating set exists, and returns the resulting
// partition. With GreedyExtractor this is the natural greedy algorithm whose
// approximation ratio Feige et al. bound by O(√n log n).
func GreedyPartition(g *graph.Graph, extract Extractor) Partition {
	allowed := make([]bool, g.N())
	for i := range allowed {
		allowed[i] = true
	}
	var p Partition
	for {
		set := extract(g, allowed)
		if set == nil {
			return p
		}
		for _, v := range set {
			if !allowed[v] {
				panic(fmt.Sprintf("domatic: extractor reused node %d", v))
			}
			allowed[v] = false
		}
		p = append(p, set)
	}
}

// UniformColorRange returns the width of the color range a node with
// two-hop minimum degree d2 draws from in Algorithm 1:
// max(1, ⌊d2/(k·ln n)⌋). Exported so the distributed protocol in package
// distsim computes byte-for-byte the same ranges as the centralized code.
func UniformColorRange(d2, n int, k float64) int {
	if n <= 1 {
		return 1
	}
	r := int(float64(d2) / (k * math.Log(float64(n))))
	if r < 1 {
		return 1
	}
	return r
}

// RandomColoring performs the randomized coloring underlying the paper's
// Algorithm 1: node v draws a uniform color in [0, R_v) where
// R_v = max(1, ⌊δ²_v / (K ln n)⌋) and δ²_v = min_{u ∈ N+[v]} δ_u is the
// two-hop minimum degree. It returns the color classes (one slice per color,
// indexed 0..maxColor). With K = 3, all classes with index below
// δ/(K ln n) are dominating with probability 1 - O(1/n) (paper Lemma 4.2).
//
// Classes are *candidate* dominating sets: callers must verify (or use
// ValidPrefix) because the guarantee is probabilistic.
func RandomColoring(g *graph.Graph, k float64, src *rng.Source) Partition {
	if k <= 0 {
		panic("domatic: coloring constant K must be positive")
	}
	n := g.N()
	if n == 0 {
		return nil
	}
	d2 := g.TwoHopMinDegree()
	colors := make([]int, n)
	maxColor := 0
	for v := 0; v < n; v++ {
		colors[v] = src.Intn(UniformColorRange(d2[v], n, k))
		if colors[v] > maxColor {
			maxColor = colors[v]
		}
	}
	p := make(Partition, maxColor+1)
	for v, c := range colors {
		p[c] = append(p[c], v)
	}
	return p
}

// RandomColoringGlobal is the ablation counterpart of RandomColoring: every
// node draws from the same range [0, δ/(k ln n)) governed by the *global*
// minimum degree δ instead of the local two-hop minimum δ²_v. It carries the
// same Lemma 4.2 guarantee but forgoes the extra classes high-degree regions
// could sustain — experiment E13 quantifies the difference on irregular
// graphs. Computing δ needs global information, so this variant is not
// achievable in a constant number of communication rounds.
func RandomColoringGlobal(g *graph.Graph, k float64, src *rng.Source) Partition {
	if k <= 0 {
		panic("domatic: coloring constant K must be positive")
	}
	n := g.N()
	if n == 0 {
		return nil
	}
	r := UniformColorRange(g.MinDegree(), n, k)
	p := make(Partition, r)
	maxColor := 0
	for v := 0; v < n; v++ {
		c := src.Intn(r)
		if c > maxColor {
			maxColor = c
		}
		p[c] = append(p[c], v)
	}
	return p[:maxColor+1]
}

// GuaranteedClasses returns the number of leading color classes that
// Lemma 4.2 guarantees to be dominating w.h.p. after RandomColoring with
// constant k: max(1, ⌊δ/(k ln n)⌋). Classes above this index are drawn only
// by nodes whose two-hop minimum degree exceeds δ and carry no guarantee.
func GuaranteedClasses(g *graph.Graph, k float64) int {
	n := g.N()
	if n <= 1 {
		return 1
	}
	r := int(float64(g.MinDegree()) / (k * math.Log(float64(n))))
	if r < 1 {
		return 1
	}
	return r
}

// ValidPrefix returns the number of leading classes of p that are dominating
// sets of g: the usable schedule prefix after a randomized coloring.
func ValidPrefix(g *graph.Graph, p Partition) int {
	for i, set := range p {
		if !domset.IsDominating(g, set, nil) {
			return i
		}
	}
	return len(p)
}

// CountDominating returns how many classes of p are dominating sets of g
// (not necessarily a prefix).
func CountDominating(g *graph.Graph, p Partition) int {
	count := 0
	for _, set := range p {
		if domset.IsDominating(g, set, nil) {
			count++
		}
	}
	return count
}
