package domatic

import (
	"math"
	"testing"

	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestVerifyAcceptsPlanted(t *testing.T) {
	g, planted := gen.PlantedDomatic(24, 4, 10, rng.New(1))
	if err := Partition(planted).Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsOverlap(t *testing.T) {
	g := gen.Complete(4)
	p := Partition{{0, 1}, {1, 2}}
	if err := p.Verify(g); err == nil {
		t.Fatal("overlapping sets passed verification")
	}
}

func TestVerifyRejectsNonDominating(t *testing.T) {
	g := gen.Path(5)
	p := Partition{{0}} // leaves 2,3,4 uncovered
	if err := p.Verify(g); err == nil {
		t.Fatal("non-dominating set passed verification")
	}
}

func TestVerifyRejectsOutOfRange(t *testing.T) {
	g := gen.Path(3)
	if err := (Partition{{7}}).Verify(g); err == nil {
		t.Fatal("out-of-range node passed verification")
	}
}

func TestUpperBound(t *testing.T) {
	if ub := UpperBound(gen.Complete(5)); ub != 5 {
		t.Errorf("K5 upper bound = %d, want 5", ub)
	}
	if ub := UpperBound(gen.Path(5)); ub != 2 {
		t.Errorf("P5 upper bound = %d, want 2", ub)
	}
	if ub := UpperBound(graph.New(0)); ub != 0 {
		t.Errorf("empty upper bound = %d, want 0", ub)
	}
}

func TestFeigeLowerBound(t *testing.T) {
	g := gen.Complete(10) // δ = Δ = 9
	want := 10 / math.Log(9)
	if got := FeigeLowerBound(g); math.Abs(got-want) > 1e-9 {
		t.Errorf("Feige bound on K10 = %v, want %v", got, want)
	}
	// Δ <= 1: falls back to δ+1.
	if got := FeigeLowerBound(gen.Path(2)); got != 2 {
		t.Errorf("Feige bound on K2 = %v, want 2", got)
	}
}

func TestGreedyPartitionCompleteGraph(t *testing.T) {
	g := gen.Complete(6)
	p := GreedyPartition(g, GreedyExtractor)
	if err := p.Verify(g); err != nil {
		t.Fatal(err)
	}
	if len(p) != 6 { // every singleton dominates K6
		t.Fatalf("greedy on K6 found %d sets, want 6", len(p))
	}
}

func TestGreedyPartitionRespectsUpperBound(t *testing.T) {
	src := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(40, 0.3, src)
		p := GreedyPartition(g, GreedyExtractor)
		if err := p.Verify(g); err != nil {
			t.Fatal(err)
		}
		if len(p) > UpperBound(g) {
			t.Fatalf("greedy found %d sets > upper bound %d", len(p), UpperBound(g))
		}
	}
}

func TestGreedyPartitionFindsAtLeastOneSet(t *testing.T) {
	// Any non-empty graph admits at least the all-nodes dominating set, and
	// greedy's first extraction always succeeds.
	g := gen.Path(7)
	p := GreedyPartition(g, GreedyExtractor)
	if len(p) < 1 {
		t.Fatal("greedy found no dominating set at all")
	}
}

func TestGreedyMinimumCollapsesOnFujitaTrap(t *testing.T) {
	// The heart of experiment E7: greedy-with-minimum-DS finds exactly 2
	// sets while the planted partition proves the domatic number is >= k.
	for _, k := range []int{3, 4} {
		g, planted := gen.FujitaTrap(k)
		p := GreedyPartition(g, MinimumExtractor)
		if err := p.Verify(g); err != nil {
			t.Fatal(err)
		}
		if len(p) != 2 {
			t.Fatalf("k=%d: greedy-min found %d sets, want exactly 2", k, len(p))
		}
		if len(planted) != k {
			t.Fatalf("planted partition has %d sets, want %d", len(planted), k)
		}
	}
}

func TestRandomColoringClassesArePartition(t *testing.T) {
	src := rng.New(3)
	g := gen.GNP(200, 0.2, src)
	p := RandomColoring(g, 3, src)
	seen := make([]bool, g.N())
	for _, class := range p {
		for _, v := range class {
			if seen[v] {
				t.Fatalf("node %d in two classes", v)
			}
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("node %d unassigned", v)
		}
	}
}

func TestRandomColoringDenseGraphGuaranteedPrefix(t *testing.T) {
	// Lemma 4.2: the first ⌊δ/(3 ln n)⌋ classes are dominating w.h.p.
	// Classes above that index carry no guarantee (only nodes with larger
	// two-hop minimum degree draw them).
	src := rng.New(4)
	g := gen.GNP(300, 0.5, src)
	p := RandomColoring(g, 3, src)
	guaranteed := GuaranteedClasses(g, 3)
	if guaranteed < 2 {
		t.Fatalf("test graph too sparse: guarantee is only %d classes", guaranteed)
	}
	if got := ValidPrefix(g, p); got < guaranteed {
		t.Errorf("valid prefix %d below guaranteed %d (of %d classes)", got, guaranteed, len(p))
	}
}

func TestRandomColoringLowDegreeSingleClass(t *testing.T) {
	// On a path, δ²/(3 ln n) < 1, so everyone picks color 0: one class,
	// which is the whole node set and trivially dominating.
	src := rng.New(5)
	g := gen.Path(50)
	p := RandomColoring(g, 3, src)
	if len(p) != 1 {
		t.Fatalf("path coloring produced %d classes, want 1", len(p))
	}
	if ValidPrefix(g, p) != 1 {
		t.Fatal("the all-nodes class must be dominating")
	}
}

func TestRandomColoringPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 did not panic")
		}
	}()
	RandomColoring(gen.Path(3), 0, rng.New(1))
}

func TestRandomColoringSingleNode(t *testing.T) {
	p := RandomColoring(graph.New(1), 3, rng.New(1))
	if len(p) != 1 || len(p[0]) != 1 {
		t.Fatalf("singleton coloring = %v", p)
	}
}

func TestValidPrefixAndCount(t *testing.T) {
	g := gen.Complete(4)
	p := Partition{{0}, {}, {1}, {2, 3}} // second class empty → not dominating
	if got := ValidPrefix(g, p); got != 1 {
		t.Errorf("ValidPrefix = %d, want 1", got)
	}
	if got := CountDominating(g, p); got != 3 {
		t.Errorf("CountDominating = %d, want 3", got)
	}
}

func TestExactDomaticNumberKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K4", gen.Complete(4), 4},
		{"K2", gen.Complete(2), 2},
		{"P2", gen.Path(2), 2},
		{"P4", gen.Path(4), 2},
		{"P5", gen.Path(5), 2},
		{"C3", gen.Ring(3), 3},
		{"C4", gen.Ring(4), 2},
		{"C5", gen.Ring(5), 2},
		{"C6", gen.Ring(6), 3}, // classes {0,3},{1,4},{2,5}
		{"star5", gen.Star(5), 2},
		{"singleton", graph.New(1), 1},
		{"two isolated", graph.New(2), 1},
		// Classes {0,5}, {1,4}, {2,3} witness d=3 on the 2×3 grid; δ+1=3
		// caps it there.
		{"grid2x3", gen.Grid(2, 3), 3},
	}
	for _, c := range cases {
		if got := ExactDomaticNumber(c.g); got != c.want {
			t.Errorf("%s: domatic number = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestExactPartitionIsValid(t *testing.T) {
	g := gen.Ring(6)
	p := ExactPartition(g, 3)
	if p == nil {
		t.Fatal("C6 should have a 3-partition")
	}
	if err := p.Verify(g); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, set := range p {
		total += len(set)
	}
	if total != 6 {
		t.Fatalf("partition covers %d of 6 nodes", total)
	}
}

func TestExactPartitionInfeasible(t *testing.T) {
	if p := ExactPartition(gen.Path(4), 3); p != nil {
		t.Fatalf("P4 has no 3-partition, got %v", p)
	}
}

func TestExactPartitionD1(t *testing.T) {
	p := ExactPartition(gen.Path(3), 1)
	if p == nil || len(p) != 1 || len(p[0]) != 3 {
		t.Fatalf("d=1 partition = %v", p)
	}
}

func TestExactMatchesPlantedLowerBound(t *testing.T) {
	src := rng.New(6)
	g, planted := gen.PlantedDomatic(12, 3, 4, src)
	d := ExactDomaticNumber(g)
	if d < len(planted) {
		t.Fatalf("exact %d below planted certificate %d", d, len(planted))
	}
	if d > UpperBound(g) {
		t.Fatalf("exact %d above δ+1 = %d", d, UpperBound(g))
	}
}

func TestGreedyNeverExceedsExact(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 8; trial++ {
		g := gen.GNP(14, 0.35, src)
		exact := ExactDomaticNumber(g)
		greedy := GreedyPartition(g, GreedyExtractor)
		if len(greedy) > exact {
			t.Fatalf("trial %d: greedy %d > exact %d", trial, len(greedy), exact)
		}
	}
}

func TestPartitionClassesAreDominatingProperty(t *testing.T) {
	// Property: every class of an ExactPartition is a dominating set
	// (random small instances).
	src := rng.New(8)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(10, 0.5, src)
		d := ExactDomaticNumber(g)
		p := ExactPartition(g, d)
		if p == nil {
			t.Fatalf("trial %d: no partition at exact d=%d", trial, d)
		}
		for i, set := range p {
			if !domset.IsDominating(g, set, nil) {
				t.Fatalf("trial %d: class %d of exact partition not dominating", trial, i)
			}
		}
	}
}

func TestExactDomaticNumberCompleteBipartite(t *testing.T) {
	// K_{a,b}: domatic number min(a,b) for a,b >= 2, and 2 for stars.
	cases := []struct{ a, b, want int }{
		{1, 1, 2}, {1, 4, 2}, {2, 2, 2}, {2, 5, 2}, {3, 3, 3}, {3, 4, 3},
	}
	for _, c := range cases {
		g := gen.CompleteBipartite(c.a, c.b)
		if got := ExactDomaticNumber(g); got != c.want {
			t.Errorf("K(%d,%d): domatic = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExactDomaticNumberHypercube(t *testing.T) {
	// Q3 has domatic number 4 (perfect domination by two antipodal codes
	// twice over); Q2 = C4 has 2.
	if got := ExactDomaticNumber(gen.Hypercube(2)); got != 2 {
		t.Errorf("Q2 domatic = %d, want 2", got)
	}
	if got := ExactDomaticNumber(gen.Hypercube(3)); got != 4 {
		t.Errorf("Q3 domatic = %d, want 4", got)
	}
}
