package domatic

import (
	"testing"

	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestConstrainedExtractorProducesDominatingSet(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(40, 0.2, src)
		set := ConstrainedExtractor(g, nil)
		if set == nil {
			t.Fatal("unrestricted extraction failed")
		}
		if !domset.IsDominating(g, set, nil) {
			t.Fatalf("trial %d: %v not dominating", trial, set)
		}
	}
}

func TestConstrainedExtractorRespectsAllowed(t *testing.T) {
	g := gen.Ring(8)
	allowed := make([]bool, 8)
	for _, v := range []int{0, 2, 4, 6} {
		allowed[v] = true
	}
	set := ConstrainedExtractor(g, allowed)
	if set == nil {
		t.Fatal("even ring restriction should be feasible")
	}
	for _, v := range set {
		if !allowed[v] {
			t.Fatalf("disallowed node %d in %v", v, set)
		}
	}
}

func TestConstrainedExtractorInfeasible(t *testing.T) {
	g := gen.Path(3)
	allowed := []bool{true, false, false}
	if set := ConstrainedExtractor(g, allowed); set != nil {
		t.Fatalf("expected nil, got %v", set)
	}
}

func TestConstrainedPartitionValid(t *testing.T) {
	src := rng.New(2)
	g := gen.GNP(60, 0.3, src)
	p := GreedyPartition(g, ConstrainedExtractor)
	if err := p.Verify(g); err != nil {
		t.Fatal(err)
	}
	if len(p) > UpperBound(g) {
		t.Fatalf("%d sets exceed δ+1 = %d", len(p), UpperBound(g))
	}
	if len(p) == 0 {
		t.Fatal("no sets extracted")
	}
}

func TestConstrainedPreservesScarceDominatorsOnStarOfStars(t *testing.T) {
	// Two hubs each privately dominate a group of leaves; leaves can only be
	// dominated by their hub or themselves. The scarcity-aware extractor
	// must not waste both hubs in one set.
	g := gen.Star(5) // hub 0, leaves 1..4
	p := GreedyPartition(g, ConstrainedExtractor)
	if err := p.Verify(g); err != nil {
		t.Fatal(err)
	}
	// δ+1 = 2 caps the partition; both extractors reach 2 on a star.
	if len(p) != 2 {
		t.Fatalf("star partition has %d sets, want 2", len(p))
	}
}
