package domatic

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestRandomColoringGlobalMatchesLocalOnRegularGraphs(t *testing.T) {
	// On a regular graph δ²_v = δ for every node, so the local and global
	// variants draw from identical ranges and produce the same number of
	// classes in expectation; here we check the range widths directly.
	g := gen.Circulant(120, 40)
	src := rng.New(1)
	local := RandomColoring(g, 3, src)
	global := RandomColoringGlobal(g, 3, rng.New(1))
	want := UniformColorRange(g.MinDegree(), g.N(), 3)
	if len(local) > want || len(global) > want {
		t.Fatalf("classes local=%d global=%d exceed range width %d", len(local), len(global), want)
	}
}

func TestRandomColoringGlobalIsPartition(t *testing.T) {
	g := gen.GNP(150, 0.3, rng.New(2))
	p := RandomColoringGlobal(g, 3, rng.New(3))
	seen := make([]bool, g.N())
	for _, class := range p {
		for _, v := range class {
			if seen[v] {
				t.Fatalf("node %d colored twice", v)
			}
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("node %d uncolored", v)
		}
	}
}

func TestRandomColoringGlobalPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 did not panic")
		}
	}()
	RandomColoringGlobal(gen.Path(3), 0, rng.New(1))
}

func TestRandomColoringGlobalEmptyGraph(t *testing.T) {
	if p := RandomColoringGlobal(graph.New(0), 3, rng.New(1)); p != nil {
		t.Fatalf("empty graph coloring = %v", p)
	}
}

func TestGuaranteedClassesEdgeCases(t *testing.T) {
	if got := GuaranteedClasses(graph.New(1), 3); got != 1 {
		t.Fatalf("single node guarantee = %d, want 1", got)
	}
	if got := GuaranteedClasses(graph.New(0), 3); got != 1 {
		t.Fatalf("empty graph guarantee = %d, want 1", got)
	}
	if got := GuaranteedClasses(gen.Path(100), 3); got != 1 {
		t.Fatalf("sparse guarantee = %d, want 1 (δ=1)", got)
	}
	// Dense: K50 has δ = 49, ln 50 ≈ 3.9 → ⌊49/11.7⌋ = 4.
	if got := GuaranteedClasses(gen.Complete(50), 3); got != 4 {
		t.Fatalf("K50 guarantee = %d, want 4", got)
	}
}

func TestExactDomaticNumberIsolatedNodeForcesOne(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2) // node 3 isolated
	if d := ExactDomaticNumber(g); d != 1 {
		t.Fatalf("domatic number with isolated node = %d, want 1", d)
	}
}

// TestColoringPartitionProperty uses testing/quick over seeds: for any seed,
// RandomColoring must produce a partition of all nodes whose classes each
// stay within the node-specific range widths.
func TestColoringPartitionProperty(t *testing.T) {
	g := gen.GNP(80, 0.25, rng.New(9))
	d2 := g.TwoHopMinDegree()
	prop := func(seed uint64) bool {
		p := RandomColoring(g, 3, rng.New(seed))
		count := 0
		for c, class := range p {
			for _, v := range class {
				count++
				if c >= UniformColorRange(d2[v], g.N(), 3) {
					return false // node drew a color outside its range
				}
			}
		}
		return count == g.N()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGreedyPartitionDisjointProperty: for arbitrary seeds/densities the
// greedy partition is always verified disjoint-and-dominating.
func TestGreedyPartitionDisjointProperty(t *testing.T) {
	prop := func(seed uint64, denseBits uint8) bool {
		p := 0.1 + float64(denseBits%64)/100.0
		g := gen.GNP(24, p, rng.New(seed))
		part := GreedyPartition(g, GreedyExtractor)
		return part.Verify(g) == nil && len(part) <= UpperBound(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
