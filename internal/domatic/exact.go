package domatic

import "repro/internal/graph"

// ExactDomaticNumber computes the domatic number of g by backtracking:
// the largest d such that the nodes can be colored with d colors where every
// closed neighborhood contains all d colors. Exponential in the worst case;
// intended for graphs with n ≲ 25. For the empty graph it returns 0; any
// graph with an isolated node has domatic number 1.
func ExactDomaticNumber(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	// Search downward from the δ+1 upper bound; the first feasible d wins.
	for d := UpperBound(g); d >= 2; d-- {
		if p := ExactPartition(g, d); p != nil {
			return d
		}
	}
	return 1 // the set of all nodes is always dominating
}

// ExactPartition returns a domatic partition of g into exactly d dominating
// sets, or nil if none exists. Every node is assigned to one of the d sets;
// the partition is valid iff every closed neighborhood sees all d colors.
func ExactPartition(g *graph.Graph, d int) Partition {
	n := g.N()
	if d < 1 || n == 0 {
		return nil
	}
	if d == 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return Partition{all}
	}
	if UpperBound(g) < d {
		return nil
	}

	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	// colorCount[v][c] = how many nodes of N+[v] currently have color c.
	colorCount := make([][]int, n)
	for v := range colorCount {
		colorCount[v] = make([]int, d)
	}
	// unassigned[v] = how many nodes of N+[v] are still uncolored.
	unassigned := make([]int, n)
	for v := 0; v < n; v++ {
		unassigned[v] = g.Degree(v) + 1
	}
	// missing[v] = how many of the d colors are absent from N+[v].
	missing := make([]int, n)
	for v := range missing {
		missing[v] = d
	}

	closed := func(v int) []int {
		out := []int{v}
		for _, u := range g.Neighbors(v) {
			out = append(out, int(u))
		}
		return out
	}

	assign := func(v, c int) bool {
		colors[v] = c
		ok := true
		for _, w := range closed(v) {
			if colorCount[w][c] == 0 {
				missing[w]--
			}
			colorCount[w][c]++
			unassigned[w]--
			// Prune: w can never see all colors if even coloring every
			// remaining closed neighbor with a distinct missing color falls
			// short.
			if missing[w] > unassigned[w] {
				ok = false
			}
		}
		return ok
	}
	unassign := func(v, c int) {
		for _, w := range closed(v) {
			colorCount[w][c]--
			if colorCount[w][c] == 0 {
				missing[w]++
			}
			unassigned[w]++
		}
		colors[v] = -1
	}

	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		// Symmetry breaking: node v may only open color classes 0..v
		// (the first node must take color 0, etc.).
		limit := d
		if v+1 < limit {
			limit = v + 1
		}
		for c := 0; c < limit; c++ {
			if assign(v, c) && rec(v+1) {
				return true
			}
			unassign(v, c)
		}
		return false
	}
	if !rec(0) {
		return nil
	}
	p := make(Partition, d)
	for v, c := range colors {
		p[c] = append(p[c], v)
	}
	return p
}
