package sensim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/solver"
)

// mustSolve resolves name in the solver registry and runs the WHP driver —
// the registry path that replaced the deleted core.*WHP shims, seed-pinned
// equivalent to them draw for draw.
func mustSolve(t testing.TB, g *graph.Graph, budgets []int, name string, k, tries int, src *rng.Source) *core.Schedule {
	t.Helper()
	s, err := solver.Solve(instance.New(g, budgets).WithK(k), solver.Spec{Name: name},
		solver.Options{Tries: tries, Src: src})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func uniformVec(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}
