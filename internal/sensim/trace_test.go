package sensim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TestGoldenTrace pins the exact JSONL trace of a small, fully determined
// run: a 3-node path, a literal two-phase schedule, one chaos crash and one
// leak. Any change to the event schema, the emission order, or the JSONL
// encoding shows up here as a byte-level diff.
func TestGoldenTrace(t *testing.T) {
	g := graph.NewFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	s := &core.Schedule{Phases: []core.Phase{
		{Set: []int{0, 2}, Duration: 2},
		{Set: []int{1}, Duration: 1},
	}}
	plan := chaos.Plan{
		Crashes: []energy.Failure{{Time: 1, Node: 2}},
		Leaks:   []chaos.Leak{{Time: 0, Node: 1, Amount: 1}},
	}
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	h := obs.Hooks{Trace: jsonl}
	net := energy.NewNetwork(g, []int{2, 2, 2})
	Run(net, s, Options{K: 1, Inject: plan.Injector().WithHooks(h), Hooks: h})
	if err := jsonl.Err(); err != nil {
		t.Fatalf("jsonl sink: %v", err)
	}

	const golden = `{"e":"run_start","name":"sensim","nodes":3}
{"e":"slot_start","t":0}
{"e":"leak","t":0,"node":1,"amount":1}
{"e":"slot_end","t":0,"served":2,"alive":3,"cov":1}
{"e":"slot_start","t":1}
{"e":"crash","t":1,"node":2}
{"e":"slot_end","t":1,"served":1,"alive":2,"cov":1}
{"e":"slot_start","t":2}
{"e":"slot_end","t":2,"served":1,"alive":2,"cov":1}
{"e":"run_end","name":"sensim","slots":3,"achieved":3,"deaths":1}
`
	if got := buf.String(); got != golden {
		t.Fatalf("trace diverged from golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestObsAllocNeutral pins the instrumentation cost of Run at the
// allocation level: attaching no hooks and attaching a metrics sink must
// both leave the per-run allocation count exactly where it was — the
// emission path builds no event payloads when tracing is off, and the
// metrics sink observes through pre-resolved pointers.
func TestObsAllocNeutral(t *testing.T) {
	src := rng.New(5)
	n := 64
	g := gen.GNP(n, 6*math.Log(float64(n))/float64(n), src.Split())
	b := make([]int, n)
	for i := range b {
		b[i] = 3
	}
	s := mustSolve(t, g, b, "general", 1, 10, src.Split())
	measure := func(h obs.Hooks) float64 {
		return testing.AllocsPerRun(20, func() {
			net := energy.NewNetwork(g, b)
			Run(net, s, Options{K: 1, Hooks: h})
		})
	}
	off := measure(obs.Hooks{})
	on := measure(obs.Hooks{Trace: obs.NewMetricsSink(obs.NewRegistry())})
	if on != off {
		t.Fatalf("metrics sink changed allocations per run: off %v, on %v", off, on)
	}
}

// TestTraceDeterministicUnderChaos runs the same seeded schedule + chaos
// plan twice and demands byte-identical JSONL traces — the reproducibility
// contract -trace advertises.
func TestTraceDeterministicUnderChaos(t *testing.T) {
	trace := func() []byte {
		src := rng.New(99)
		n := 48
		g := gen.GNP(n, 6*math.Log(float64(n))/float64(n), src.Split())
		b := make([]int, n)
		for i := range b {
			b[i] = 3 + src.Intn(3)
		}
		s := mustSolve(t, g, b, "general", 1, 10, src.Split())
		plan := chaos.Merge(
			chaos.Crashes(g, 8, 6, src.Split()),
			chaos.LeakSpikes(g, 6, 2, 6, src.Split()),
		)
		var buf bytes.Buffer
		jsonl := obs.NewJSONL(&buf)
		h := obs.Hooks{Trace: jsonl}
		net := energy.NewNetwork(g, b)
		Run(net, s, Options{K: 1, Inject: plan.Injector().WithHooks(h), Hooks: h})
		if err := jsonl.Err(); err != nil {
			t.Fatalf("jsonl sink: %v", err)
		}
		return buf.Bytes()
	}
	a, b := trace(), trace()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds produced different traces")
	}
}
