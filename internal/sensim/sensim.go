// Package sensim executes cluster-lifetime schedules slot by slot against
// the energy model, measuring what the paper's theorems promise on paper:
// the *achieved* network lifetime — the number of slots during which every
// alive node is dominated by alive, energy-positive active nodes — together
// with coverage traces and energy accounting. It also drives the
// data-gathering workload of the examples: in every covered slot each alive
// node's sensor reading reaches an active clusterhead.
package sensim

import (
	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Result summarizes one schedule execution.
type Result struct {
	// AchievedLifetime is the number of consecutive slots from time 0 during
	// which coverage held (every alive node k-dominated by serving nodes).
	AchievedLifetime int
	// ScheduleLifetime is the nominal lifetime of the executed schedule.
	ScheduleLifetime int
	// Coverage[t] is the fraction of alive nodes that were k-dominated in
	// slot t. len(Coverage) == number of slots actually executed.
	Coverage []float64
	// EnergySpent is the total budget units drained across all nodes.
	EnergySpent int
	// ReportsDelivered counts node-slots in which an alive node was
	// dominated (its sensor reading reached a clusterhead).
	ReportsDelivered int
	// FirstViolation is the slot of the first coverage violation, or -1.
	FirstViolation int
	// Deaths is the number of failure-plan crashes applied.
	Deaths int
}

// Injector applies per-slot faults to the network at the start of slot t and
// returns the number of nodes it killed. chaos.Plan's Injector satisfies
// this, giving Run access to the full unified fault taxonomy (crashes,
// regional blackouts, battery leaks) without this package depending on the
// chaos framework.
type Injector interface {
	Inject(net *energy.Network, t int) int
}

// Options configures an execution. It follows the canonical shape
// documented in package obs: common knobs (K, MaxSlots) share their names
// with heal.Options, and the embedded obs.Hooks carries the tracing sinks.
type Options struct {
	// K is the required domination tolerance per slot (>= 1).
	K int
	// Failures is the crash plan applied during execution (may be nil).
	Failures energy.FailurePlan
	// Inject, if non-nil, is invoked at the start of every slot after the
	// Failures plan, typically with a chaos.Plan injector. Its kills count
	// toward Result.Deaths.
	Inject Injector
	// StopAtViolation stops execution at the first uncovered slot rather
	// than running the schedule to completion.
	StopAtViolation bool
	// MaxSlots caps the slots executed (0 = run the whole schedule);
	// aligned with heal.Options.MaxSlots.
	MaxSlots int
	// Hooks carries the observability sinks (obs.Hooks; the promoted Trace
	// field receives slot, death, and run events). The zero value is the
	// no-op default: the slot loop stays allocation-free.
	obs.Hooks
}

// Run executes schedule s on the network until the schedule ends (or the
// first violation, if requested). The network is mutated: budgets drain and
// failures are applied. Nodes that are dead or out of budget are silently
// excluded from the active set (they cannot serve), exactly as a deployment
// would experience.
//
// A fully dead network is a terminal coverage violation: crashed nodes never
// revive, so the slot in which the last node dies is recorded with coverage
// 0, FirstViolation is set (if not already), and the run stops — lifetime
// never accrues past the death of the network. (Earlier versions scored the
// empty network as "vacuously covered", which let a chaos plan that kills
// everyone *improve* the reported lifetime.)
//
// When opt.Hooks carries a tracer, Run emits run_start/run_end, per-slot
// slot_start/slot_end (serving count, alive count, coverage), and death
// events; with the zero Hooks the instrumentation is a nil check per
// emission and the slot loop allocates nothing extra.
func Run(net *energy.Network, s *core.Schedule, opt Options) Result {
	if opt.K < 1 {
		opt.K = 1
	}
	res := Result{ScheduleLifetime: s.Lifetime(), FirstViolation: -1}
	plan := append(energy.FailurePlan(nil), opt.Failures...)
	plan.Sort()
	ck := domset.NewChecker(net.G)
	next := 0
	t := 0
	// Hoisted so the hot loop skips Event construction entirely when tracing
	// is off — the nil check inside Emit alone still pays for building the
	// event argument first.
	traced := opt.Enabled()
	opt.Emit(obs.RunStart("sensim", net.G.N()))
	finish := func() Result {
		opt.Emit(obs.RunEnd("sensim", len(res.Coverage), res.AchievedLifetime, res.Deaths))
		return res
	}

	for _, phase := range s.Phases {
		for dt := 0; dt < phase.Duration; dt++ {
			if opt.MaxSlots > 0 && t >= opt.MaxSlots {
				return finish()
			}
			if traced {
				opt.Emit(obs.SlotStart(t))
			}
			// Apply crashes scheduled for this slot.
			for next < len(plan) && plan[next].Time <= t {
				if net.Alive[plan[next].Node] {
					net.Kill(plan[next].Node)
					res.Deaths++
					if traced {
						opt.Emit(obs.Death(t, plan[next].Node))
					}
				}
				next++
			}
			if opt.Inject != nil {
				res.Deaths += opt.Inject.Inject(net, t)
			}
			// Serving set: the scheduled nodes that are alive and have
			// budget; the rest are silently excluded (they cannot serve),
			// exactly as a deployment would experience.
			serving := net.DrainServiceable(phase.Set)
			res.EnergySpent += len(serving) * net.ActiveCost

			alive := net.AliveCount()
			if alive == 0 && net.G.N() > 0 {
				// Dead network: terminal violation, stop the run.
				res.Coverage = append(res.Coverage, 0)
				if res.FirstViolation == -1 {
					res.FirstViolation = t
				}
				opt.Emit(obs.SlotEnd(t, 0, 0, 0))
				return finish()
			}
			covered := ck.CoveredCount(serving, opt.K, net.Alive)
			cov := 1.0 // only the 0-node network
			if alive > 0 {
				cov = float64(covered) / float64(alive)
			}
			res.Coverage = append(res.Coverage, cov)
			res.ReportsDelivered += covered
			if traced {
				opt.Emit(obs.SlotEnd(t, len(serving), alive, cov))
			}
			if covered == alive {
				if res.FirstViolation == -1 {
					res.AchievedLifetime = t + 1
				}
			} else if res.FirstViolation == -1 {
				res.FirstViolation = t
				if opt.StopAtViolation {
					return finish()
				}
			}
			t++
		}
	}
	return finish()
}

// NaiveAllOn returns the baseline schedule with every node active in every
// slot until the uniform budget b runs out: lifetime exactly b. This is the
// "no scheduling" strawman every partition-based schedule must beat.
func NaiveAllOn(n, b int) *core.Schedule {
	if n == 0 || b == 0 {
		return &core.Schedule{}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return &core.Schedule{Phases: []core.Phase{{Set: all, Duration: b}}}
}

// Verify re-checks a claimed coverage trace against first principles: the
// achieved lifetime equals the index of the first sub-1 coverage entry (or
// the trace length). This also holds under the dead-network semantics: the
// slot in which the network dies is recorded as coverage 0, so it is the
// first sub-1 entry, matches FirstViolation, and ends the trace. Used by
// tests as a cross-check on Run's bookkeeping.
func Verify(res Result) bool {
	for t, c := range res.Coverage {
		if c < 1 {
			return res.AchievedLifetime == t && res.FirstViolation == t
		}
	}
	return res.AchievedLifetime == len(res.Coverage) && res.FirstViolation == -1
}

// AdversarialPlan returns the cheapest schedule-aware attack within the kill
// budget: it scans the schedule's phases in order and, at the first phase in
// which the victim node is served by at most `budget` nodes, kills exactly
// those servers at time 0. It returns nil if every phase is too redundant —
// for a k-dominating schedule this is guaranteed whenever budget < k, which
// is precisely the Theorem 6.2 fault-tolerance property.
func AdversarialPlan(g *graph.Graph, s *core.Schedule, victim, budget int) energy.FailurePlan {
	closed := map[int]bool{victim: true}
	for _, u := range g.Neighbors(victim) {
		closed[int(u)] = true
	}
	for _, p := range s.Phases {
		if p.Duration == 0 {
			continue
		}
		var servers []int
		for _, v := range p.Set {
			if closed[v] {
				servers = append(servers, v)
			}
		}
		if len(servers) > 0 && len(servers) <= budget {
			var plan energy.FailurePlan
			for _, v := range servers {
				plan = append(plan, energy.Failure{Time: 0, Node: v})
			}
			return plan
		}
	}
	return nil
}

// ResidualDominationHorizon returns how many additional slots of coverage
// are information-theoretically possible for the network in its current
// state: the Lemma 5.1 bound min over alive u of Σ residual budget in
// N+[u] ∩ alive, divided by k. Dead nodes need no coverage.
func ResidualDominationHorizon(net *energy.Network, k int) int {
	if k < 1 {
		k = 1
	}
	g := net.G
	best := -1
	for v := 0; v < g.N(); v++ {
		if !net.Alive[v] {
			continue
		}
		sum := net.Residual[v] // v itself passed the alive guard above
		for _, u := range g.Neighbors(v) {
			if net.Alive[u] {
				sum += net.Residual[u]
			}
		}
		if best == -1 || sum < best {
			best = sum
		}
	}
	if best < 0 {
		return 0
	}
	return best / k
}
