package sensim

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/gen"
)

// allOn returns the naive everyone-active schedule over n nodes for b slots.
func allOn(n, b int) *core.Schedule { return NaiveAllOn(n, b) }

func TestRunFailureAtSlotZero(t *testing.T) {
	// A crash at time 0 applies before the first slot's coverage check:
	// killing a path endpoint's only potential dominators at slot 0 must
	// yield FirstViolation == 0 and AchievedLifetime == 0.
	g := gen.Path(3)
	net := energy.NewNetwork(g, energy.Uniform(g, 2))
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1}, Duration: 2}}}
	plan := energy.FailurePlan{{Time: 0, Node: 1}}
	res := Run(net, s, Options{K: 1, Failures: plan})
	if res.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", res.Deaths)
	}
	if res.FirstViolation != 0 {
		t.Fatalf("FirstViolation = %d, want 0", res.FirstViolation)
	}
	if res.AchievedLifetime != 0 {
		t.Fatalf("AchievedLifetime = %d, want 0", res.AchievedLifetime)
	}
	if !Verify(res) {
		t.Fatal("result fails Verify")
	}
}

func TestRunWholeNetworkCrashPlan(t *testing.T) {
	// A plan crashing every node mid-run is a terminal coverage violation:
	// the death slot is recorded with coverage 0, FirstViolation points at
	// it, the lifetime stops accruing, and the run ends (crashed nodes never
	// revive, so executing further slots would only repeat the violation).
	g := gen.Complete(6)
	net := energy.NewNetwork(g, energy.Uniform(g, 4))
	s := allOn(6, 4)
	var plan energy.FailurePlan
	for v := 0; v < 6; v++ {
		plan = append(plan, energy.Failure{Time: 1, Node: v})
	}
	res := Run(net, s, Options{K: 1, Failures: plan})
	if res.Deaths != 6 {
		t.Fatalf("deaths = %d, want 6", res.Deaths)
	}
	if len(res.Coverage) != 2 {
		t.Fatalf("executed %d slots, want 2 (run must stop at the death slot)", len(res.Coverage))
	}
	if res.Coverage[1] != 0 {
		t.Fatalf("death slot coverage = %v, want 0", res.Coverage[1])
	}
	if res.FirstViolation != 1 {
		t.Fatalf("FirstViolation = %d, want 1 (the slot the network died)", res.FirstViolation)
	}
	if res.AchievedLifetime != 1 {
		t.Fatalf("AchievedLifetime = %d, want 1 (only slot 0 was covered)", res.AchievedLifetime)
	}
	if !Verify(res) {
		t.Fatal("result fails Verify")
	}
}

func TestRunChaosKillsAllNodesMidSchedule(t *testing.T) {
	// The PR 2 regression: a chaos plan that kills every node mid-schedule
	// must be reported as a violation at the death slot — not as a
	// "vacuously covered" run whose lifetime keeps growing.
	g := gen.Complete(5)
	net := energy.NewNetwork(g, energy.Uniform(g, 6))
	s := allOn(5, 6)
	var crashes energy.FailurePlan
	for v := 0; v < 5; v++ {
		crashes = append(crashes, energy.Failure{Time: 3, Node: v})
	}
	plan := chaos.Plan{Crashes: crashes}
	res := Run(net, s, Options{K: 1, Inject: plan.Injector()})
	if res.Deaths != 5 {
		t.Fatalf("deaths = %d, want 5", res.Deaths)
	}
	if res.FirstViolation != 3 {
		t.Fatalf("FirstViolation = %d, want 3 (the death slot)", res.FirstViolation)
	}
	if res.AchievedLifetime != 3 {
		t.Fatalf("AchievedLifetime = %d, want 3 — lifetime must stop accruing at network death", res.AchievedLifetime)
	}
	if len(res.Coverage) != 4 || res.Coverage[3] != 0 {
		t.Fatalf("coverage trace %v, want 4 entries ending in 0", res.Coverage)
	}
	if !Verify(res) {
		t.Fatal("result fails Verify")
	}
}

func TestRunKLargerThanAnyNeighborhood(t *testing.T) {
	// K = 5 on a path (max closed neighborhood 3): coverage is impossible
	// from slot 0. Run must terminate, set FirstViolation = 0, and achieve
	// lifetime 0 — not panic or loop.
	g := gen.Path(4)
	net := energy.NewNetwork(g, energy.Uniform(g, 3))
	s := allOn(4, 3)
	res := Run(net, s, Options{K: 5})
	if res.FirstViolation != 0 {
		t.Fatalf("FirstViolation = %d, want 0", res.FirstViolation)
	}
	if res.AchievedLifetime != 0 {
		t.Fatalf("AchievedLifetime = %d, want 0", res.AchievedLifetime)
	}
	if len(res.Coverage) != 3 {
		t.Fatalf("executed %d slots, want full 3", len(res.Coverage))
	}
}

func TestRunChaosInjector(t *testing.T) {
	// The chaos injector path: a crash and a battery leak delivered through
	// Options.Inject must shape the run exactly like inline failures.
	g := gen.Path(3)
	net := energy.NewNetwork(g, energy.Uniform(g, 4))
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1}, Duration: 4}}}
	plan := chaos.Merge(
		chaos.Plan{Crashes: energy.FailurePlan{{Time: 2, Node: 0}}},
		chaos.Plan{Leaks: []chaos.Leak{{Time: 1, Node: 1, Amount: 2}}},
	)
	res := Run(net, s, Options{K: 1, Inject: plan.Injector()})
	if res.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1 (injector crash)", res.Deaths)
	}
	// Node 1 starts with 4, serves slot 0 (3 left), leaks 2 at slot 1
	// (1 left), serves slot 1 (0 left), cannot serve slots 2-3.
	if res.FirstViolation != 2 {
		t.Fatalf("FirstViolation = %d, want 2 (leak drained the server)", res.FirstViolation)
	}
	if res.AchievedLifetime != 2 {
		t.Fatalf("AchievedLifetime = %d, want 2", res.AchievedLifetime)
	}
}
