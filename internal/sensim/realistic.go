package sensim

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Model is a realistic per-slot energy model, generalizing the paper's
// abstraction. The paper counts only dominating-duty slots against the
// budget b_v (implicitly: sleep is free and data delivery is paid from a
// separately reserved budget). Model makes those costs explicit so the
// abstraction gap can be measured (experiment E18).
type Model struct {
	ActiveCost int // energy per slot spent awake as a clusterhead
	SleepCost  int // energy per slot spent sleeping (idle drain)
	TxCost     int // energy per aggregation-tree transmission (charged to the sender)
}

// DutyEquivalent returns the paper-model duty budget corresponding to a
// total battery under this model, ignoring sleep and delivery costs:
// ⌊battery/ActiveCost⌋.
func (m Model) DutyEquivalent(battery int) int {
	if m.ActiveCost <= 0 {
		return battery
	}
	return battery / m.ActiveCost
}

// RealisticResult reports a battery-drain execution.
type RealisticResult struct {
	// AchievedLifetime counts the leading slots with full coverage of alive
	// nodes.
	AchievedLifetime int
	// FirstViolation is the first uncovered slot, or -1.
	FirstViolation int
	// Deaths counts nodes that ran out of battery during the run.
	Deaths int
	// EnergySpent sums all charges.
	EnergySpent int
	// SlotsExecuted is the number of slots simulated.
	SlotsExecuted int
}

// RunRealistic executes the schedule under the battery-drain model: every
// alive node pays SleepCost per slot, active clusterheads pay ActiveCost
// instead, and each aggregation-tree transmission needed to deliver the
// slot's data to the sink charges TxCost to the transmitting node (relay
// nodes wake up to forward — the realistic cost the paper's reserved-budget
// argument hides). Nodes whose battery is exhausted die and neither serve
// nor need coverage. tree may be nil to skip delivery accounting.
//
// As in Run, a fully dead network is a terminal coverage violation: the slot
// that finds no node alive sets FirstViolation (if unset) and ends the run.
func RunRealistic(g *graph.Graph, s *core.Schedule, batteries []int, m Model, tree *agg.Tree) RealisticResult {
	return RunRealisticObs(g, s, batteries, m, tree, obs.Hooks{})
}

// RunRealisticObs is RunRealistic with observability attached: slot, death,
// and run events flow to h exactly as in Run (battery exhaustion emits
// death events). The zero Hooks makes it identical to RunRealistic.
func RunRealisticObs(g *graph.Graph, s *core.Schedule, batteries []int, m Model, tree *agg.Tree, h obs.Hooks) RealisticResult {
	if len(batteries) != g.N() {
		panic(fmt.Sprintf("sensim: %d batteries for %d nodes", len(batteries), g.N()))
	}
	if m.ActiveCost < m.SleepCost {
		panic("sensim: ActiveCost below SleepCost makes no physical sense")
	}
	res := RealisticResult{FirstViolation: -1}
	battery := append([]int(nil), batteries...)
	alive := make([]bool, g.N())
	aliveCount := 0
	for v := range alive {
		// Nodes starting at 0 battery count as dead, not deaths.
		alive[v] = battery[v] > 0
		if alive[v] {
			aliveCount++
		}
	}

	// Hoisted so the hot loop skips Event construction entirely when tracing
	// is off (see sensim.Run).
	traced := h.Enabled()
	curT := 0
	charge := func(v, amount int) {
		if amount <= 0 || !alive[v] {
			return
		}
		if amount > battery[v] {
			amount = battery[v]
		}
		battery[v] -= amount
		res.EnergySpent += amount
		if battery[v] == 0 {
			alive[v] = false
			aliveCount--
			res.Deaths++
			if traced {
				h.Emit(obs.Death(curT, v))
			}
		}
	}

	ck := domset.NewChecker(g)
	inServing := bitset.New(g.N())
	sent := bitset.New(g.N())
	serving := make([]int, 0, g.N())

	h.Emit(obs.RunStart("sensim.realistic", g.N()))
	finish := func() RealisticResult {
		h.Emit(obs.RunEnd("sensim.realistic", res.SlotsExecuted, res.AchievedLifetime, res.Deaths))
		return res
	}
	t := 0
	for _, phase := range s.Phases {
		for dt := 0; dt < phase.Duration; dt++ {
			curT = t
			if traced {
				h.Emit(obs.SlotStart(t))
			}
			if aliveCount == 0 && g.N() > 0 {
				// Dead network: terminal violation, stop the run.
				if res.FirstViolation == -1 {
					res.FirstViolation = t
				}
				res.SlotsExecuted++
				h.Emit(obs.SlotEnd(t, 0, 0, 0))
				return finish()
			}
			// Serving set: scheduled, alive, able to pay a full active slot.
			serving = serving[:0]
			inServing.Reset()
			for _, v := range phase.Set {
				if alive[v] && battery[v] >= m.ActiveCost {
					serving = append(serving, v)
					inServing.Set(v)
				}
			}
			// Coverage check before charging (the slot's service happens
			// while the energy is still there).
			covered := ck.CoveredCount(serving, 1, alive)
			cov := 1.0
			if aliveCount > 0 {
				cov = float64(covered) / float64(aliveCount)
			}
			if traced {
				h.Emit(obs.SlotEnd(t, len(serving), aliveCount, cov))
			}
			if covered == aliveCount {
				if res.FirstViolation == -1 {
					res.AchievedLifetime = t + 1
				}
			} else if res.FirstViolation == -1 {
				res.FirstViolation = t
			}
			// Charges.
			for v := 0; v < g.N(); v++ {
				if !alive[v] {
					continue
				}
				if inServing.Test(v) {
					charge(v, m.ActiveCost)
				} else {
					charge(v, m.SleepCost)
				}
			}
			if tree != nil && m.TxCost > 0 {
				sent.Reset()
				chargeDelivery(tree, serving, alive, m.TxCost, charge, sent)
			}
			t++
			res.SlotsExecuted++
		}
	}
	return finish()
}

// chargeDelivery charges TxCost to every distinct transmitting node on the
// union of root paths from the serving clusterheads (in-network
// aggregation: each tree edge fires once). sent is caller-owned scratch,
// reset before the call.
func chargeDelivery(tree *agg.Tree, serving []int, alive []bool, txCost int, charge func(v, amount int), sent *bitset.Set) {
	for _, s := range serving {
		for v := s; v != tree.Sink && !sent.Test(v); v = tree.Parent[v] {
			sent.Set(v)
			if alive[v] {
				charge(v, txCost)
			}
		}
	}
}
