package sensim

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/graph"
)

// Model is a realistic per-slot energy model, generalizing the paper's
// abstraction. The paper counts only dominating-duty slots against the
// budget b_v (implicitly: sleep is free and data delivery is paid from a
// separately reserved budget). Model makes those costs explicit so the
// abstraction gap can be measured (experiment E18).
type Model struct {
	ActiveCost int // energy per slot spent awake as a clusterhead
	SleepCost  int // energy per slot spent sleeping (idle drain)
	TxCost     int // energy per aggregation-tree transmission (charged to the sender)
}

// DutyEquivalent returns the paper-model duty budget corresponding to a
// total battery under this model, ignoring sleep and delivery costs:
// ⌊battery/ActiveCost⌋.
func (m Model) DutyEquivalent(battery int) int {
	if m.ActiveCost <= 0 {
		return battery
	}
	return battery / m.ActiveCost
}

// RealisticResult reports a battery-drain execution.
type RealisticResult struct {
	// AchievedLifetime counts the leading slots with full coverage of alive
	// nodes.
	AchievedLifetime int
	// FirstViolation is the first uncovered slot, or -1.
	FirstViolation int
	// Deaths counts nodes that ran out of battery during the run.
	Deaths int
	// EnergySpent sums all charges.
	EnergySpent int
	// SlotsExecuted is the number of slots simulated.
	SlotsExecuted int
}

// RunRealistic executes the schedule under the battery-drain model: every
// alive node pays SleepCost per slot, active clusterheads pay ActiveCost
// instead, and each aggregation-tree transmission needed to deliver the
// slot's data to the sink charges TxCost to the transmitting node (relay
// nodes wake up to forward — the realistic cost the paper's reserved-budget
// argument hides). Nodes whose battery is exhausted die and neither serve
// nor need coverage. tree may be nil to skip delivery accounting.
func RunRealistic(g *graph.Graph, s *core.Schedule, batteries []int, m Model, tree *agg.Tree) RealisticResult {
	if len(batteries) != g.N() {
		panic(fmt.Sprintf("sensim: %d batteries for %d nodes", len(batteries), g.N()))
	}
	if m.ActiveCost < m.SleepCost {
		panic("sensim: ActiveCost below SleepCost makes no physical sense")
	}
	res := RealisticResult{FirstViolation: -1}
	battery := append([]int(nil), batteries...)
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = battery[v] > 0
	}
	for v, a := range alive {
		if !a && batteries[v] <= 0 {
			_ = v // nodes starting at 0 battery count as dead, not deaths
		}
	}

	charge := func(v, amount int) {
		if amount <= 0 || !alive[v] {
			return
		}
		if amount > battery[v] {
			amount = battery[v]
		}
		battery[v] -= amount
		res.EnergySpent += amount
		if battery[v] == 0 {
			alive[v] = false
			res.Deaths++
		}
	}

	t := 0
	for _, phase := range s.Phases {
		for dt := 0; dt < phase.Duration; dt++ {
			// Serving set: scheduled, alive, able to pay a full active slot.
			var serving []int
			for _, v := range phase.Set {
				if alive[v] && battery[v] >= m.ActiveCost {
					serving = append(serving, v)
				}
			}
			// Coverage check before charging (the slot's service happens
			// while the energy is still there).
			covered := coveredCountAlive(g, alive, serving)
			aliveCount := 0
			for _, a := range alive {
				if a {
					aliveCount++
				}
			}
			if covered == aliveCount {
				if res.FirstViolation == -1 {
					res.AchievedLifetime = t + 1
				}
			} else if res.FirstViolation == -1 {
				res.FirstViolation = t
			}
			// Charges.
			inServing := make(map[int]bool, len(serving))
			for _, v := range serving {
				inServing[v] = true
			}
			for v := 0; v < g.N(); v++ {
				if !alive[v] {
					continue
				}
				if inServing[v] {
					charge(v, m.ActiveCost)
				} else {
					charge(v, m.SleepCost)
				}
			}
			if tree != nil && m.TxCost > 0 {
				chargeDelivery(tree, serving, alive, m.TxCost, charge)
			}
			t++
			res.SlotsExecuted++
		}
	}
	return res
}

// chargeDelivery charges TxCost to every distinct transmitting node on the
// union of root paths from the serving clusterheads (in-network
// aggregation: each tree edge fires once).
func chargeDelivery(tree *agg.Tree, serving []int, alive []bool, txCost int, charge func(v, amount int)) {
	sent := map[int]bool{}
	for _, s := range serving {
		for v := s; v != tree.Sink && !sent[v]; v = tree.Parent[v] {
			sent[v] = true
			if alive[v] {
				charge(v, txCost)
			}
		}
	}
}

// coveredCountAlive counts alive nodes with at least one serving closed
// neighbor.
func coveredCountAlive(g *graph.Graph, alive []bool, serving []int) int {
	in := make([]bool, g.N())
	for _, v := range serving {
		in[v] = true
	}
	covered := 0
	for v := 0; v < g.N(); v++ {
		if !alive[v] {
			continue
		}
		ok := in[v]
		if !ok {
			for _, u := range g.Neighbors(v) {
				if in[u] {
					ok = true
					break
				}
			}
		}
		if ok {
			covered++
		}
	}
	return covered
}
