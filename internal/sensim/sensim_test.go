package sensim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestRunPerfectSchedule(t *testing.T) {
	// P3, b=2: {1}×2 then {0,2}×2 → achieved lifetime 4, no violation.
	g := gen.Path(3)
	net := energy.NewNetwork(g, energy.Uniform(g, 2))
	s := &core.Schedule{Phases: []core.Phase{
		{Set: []int{1}, Duration: 2},
		{Set: []int{0, 2}, Duration: 2},
	}}
	res := Run(net, s, Options{K: 1})
	if res.AchievedLifetime != 4 {
		t.Fatalf("achieved = %d, want 4", res.AchievedLifetime)
	}
	if res.FirstViolation != -1 {
		t.Fatalf("violation at %d, want none", res.FirstViolation)
	}
	if res.EnergySpent != 6 {
		t.Fatalf("energy = %d, want 6", res.EnergySpent)
	}
	if res.ReportsDelivered != 4*3 {
		t.Fatalf("reports = %d, want 12", res.ReportsDelivered)
	}
	if !Verify(res) {
		t.Fatal("result fails self-verification")
	}
}

func TestRunDetectsViolation(t *testing.T) {
	g := gen.Path(3)
	net := energy.NewNetwork(g, energy.Uniform(g, 5))
	s := &core.Schedule{Phases: []core.Phase{
		{Set: []int{1}, Duration: 1},
		{Set: []int{0}, Duration: 1}, // leaves node 2 uncovered
		{Set: []int{1}, Duration: 1},
	}}
	res := Run(net, s, Options{K: 1})
	if res.AchievedLifetime != 1 {
		t.Fatalf("achieved = %d, want 1", res.AchievedLifetime)
	}
	if res.FirstViolation != 1 {
		t.Fatalf("violation at %d, want 1", res.FirstViolation)
	}
	if len(res.Coverage) != 3 {
		t.Fatalf("coverage trace length %d, want 3 (ran to completion)", len(res.Coverage))
	}
	if !Verify(res) {
		t.Fatal("result fails self-verification")
	}
}

func TestRunStopAtViolation(t *testing.T) {
	g := gen.Path(3)
	net := energy.NewNetwork(g, energy.Uniform(g, 5))
	s := &core.Schedule{Phases: []core.Phase{
		{Set: []int{0}, Duration: 3}, // uncovered from slot 0
	}}
	res := Run(net, s, Options{K: 1, StopAtViolation: true})
	if len(res.Coverage) != 1 || res.FirstViolation != 0 {
		t.Fatalf("res = %+v, want stop after slot 0", res)
	}
}

func TestRunOutOfBudgetNodesStopServing(t *testing.T) {
	// Node 1 has budget 1 but is scheduled for 3 slots: from slot 1 on it
	// cannot serve and coverage collapses.
	g := gen.Path(3)
	net := energy.NewNetwork(g, []int{5, 1, 5})
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1}, Duration: 3}}}
	res := Run(net, s, Options{K: 1})
	if res.AchievedLifetime != 1 {
		t.Fatalf("achieved = %d, want 1", res.AchievedLifetime)
	}
	if res.EnergySpent != 1 {
		t.Fatalf("energy = %d, want 1", res.EnergySpent)
	}
}

func TestRunWithFailures(t *testing.T) {
	// K4 with schedule {0}×2; node 0 dies at slot 1 → slot 1 uncovered.
	g := gen.Complete(4)
	net := energy.NewNetwork(g, energy.Uniform(g, 5))
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 2}}}
	res := Run(net, s, Options{
		K:        1,
		Failures: energy.FailurePlan{{Time: 1, Node: 0}},
	})
	if res.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", res.Deaths)
	}
	if res.AchievedLifetime != 1 || res.FirstViolation != 1 {
		t.Fatalf("achieved %d violation %d, want 1 and 1", res.AchievedLifetime, res.FirstViolation)
	}
}

func TestRunKTolerantSurvivesFailure(t *testing.T) {
	// K4 with a 2-dominating schedule {0,1}×2; node 0 dies at slot 1.
	// Coverage at k=1 still holds via node 1.
	g := gen.Complete(4)
	net := energy.NewNetwork(g, energy.Uniform(g, 5))
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0, 1}, Duration: 2}}}
	res := Run(net, s, Options{
		K:        1,
		Failures: energy.FailurePlan{{Time: 1, Node: 0}},
	})
	if res.FirstViolation != -1 {
		t.Fatalf("violation at %d, want none (redundancy should absorb the death)", res.FirstViolation)
	}
	if res.AchievedLifetime != 2 {
		t.Fatalf("achieved = %d, want 2", res.AchievedLifetime)
	}
}

func TestRunDeadNodesNeedNoCoverage(t *testing.T) {
	// P3: node 2 dies at slot 0; {0} then dominates the alive subgraph
	// {0, 1}.
	g := gen.Path(3)
	net := energy.NewNetwork(g, energy.Uniform(g, 5))
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 1}}}
	res := Run(net, s, Options{
		K:        1,
		Failures: energy.FailurePlan{{Time: 0, Node: 2}},
	})
	if res.FirstViolation != -1 {
		t.Fatalf("violation at %d, want none", res.FirstViolation)
	}
}

func TestRunKDominationRequirement(t *testing.T) {
	g := gen.Complete(4)
	net := energy.NewNetwork(g, energy.Uniform(g, 5))
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 1}}}
	res := Run(net, s, Options{K: 2})
	if res.FirstViolation != 0 {
		t.Fatal("single server cannot 2-dominate; expected immediate violation")
	}
}

func TestNaiveAllOn(t *testing.T) {
	s := NaiveAllOn(3, 2)
	if s.Lifetime() != 2 {
		t.Fatalf("lifetime = %d, want 2", s.Lifetime())
	}
	g := gen.Path(3)
	net := energy.NewNetwork(g, energy.Uniform(g, 2))
	res := Run(net, s, Options{K: 1})
	if res.AchievedLifetime != 2 || res.FirstViolation != -1 {
		t.Fatalf("naive run: %+v", res)
	}
	if s := NaiveAllOn(0, 5); s.Lifetime() != 0 {
		t.Fatal("empty naive schedule should have lifetime 0")
	}
}

func TestEndToEndUniformAlgorithmExecution(t *testing.T) {
	// The full pipeline: Algorithm 1 schedule executed on the energy model
	// achieves exactly its nominal lifetime.
	g := gen.GNP(150, 0.3, rng.New(1))
	const b = 3
	s := mustSolve(t, g, energy.Uniform(g, b), "uniform", 1, 50, rng.New(2))
	net := energy.NewNetwork(g, energy.Uniform(g, b))
	res := Run(net, s, Options{K: 1})
	if res.AchievedLifetime != s.Lifetime() {
		t.Fatalf("achieved %d != nominal %d", res.AchievedLifetime, s.Lifetime())
	}
	if res.FirstViolation != -1 {
		t.Fatalf("violation at %d", res.FirstViolation)
	}
}

func TestResidualDominationHorizon(t *testing.T) {
	g := gen.Path(3)
	net := energy.NewNetwork(g, []int{1, 2, 1})
	// min closed-neighborhood residual: node 0 → 1+2 = 3; node 2 → 2+1 = 3;
	// node 1 → 4. Horizon = 3.
	if h := ResidualDominationHorizon(net, 1); h != 3 {
		t.Fatalf("horizon = %d, want 3", h)
	}
	if h := ResidualDominationHorizon(net, 2); h != 1 {
		t.Fatalf("k=2 horizon = %d, want 1", h)
	}
	net.Kill(0)
	// Alive nodes 1, 2: node 2's alive closed nbhd = {1,2} → 3.
	if h := ResidualDominationHorizon(net, 1); h != 3 {
		t.Fatalf("post-death horizon = %d, want 3", h)
	}
	net.Kill(1)
	net.Kill(2)
	if h := ResidualDominationHorizon(net, 1); h != 0 {
		t.Fatalf("all-dead horizon = %d, want 0", h)
	}
}

func TestResidualDominationHorizonMatchesBruteForce(t *testing.T) {
	// Property test: the horizon must equal a from-scratch recomputation of
	// the Lemma 5.1 bound — min over alive v of the summed residual budget in
	// N+[v] ∩ alive, divided by k — on random graphs with random budgets and
	// random dead subsets (including the everyone-dead network).
	brute := func(net *energy.Network, k int) int {
		if k < 1 {
			k = 1
		}
		best := -1
		for v := 0; v < net.G.N(); v++ {
			if !net.Alive[v] {
				continue
			}
			sum := 0
			closed := append([]int32{int32(v)}, net.G.Neighbors(v)...)
			for _, u := range closed {
				if net.Alive[u] {
					sum += net.Residual[u]
				}
			}
			if best == -1 || sum < best {
				best = sum
			}
		}
		if best < 0 {
			return 0
		}
		return best / k
	}
	src := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + src.Intn(60)
		g := gen.GNP(n, 0.1, src)
		b := make([]int, n)
		for i := range b {
			b[i] = src.Intn(6)
		}
		net := energy.NewNetwork(g, b)
		// Kill a random subset; the last trials kill everyone.
		for v := 0; v < n; v++ {
			if src.Intn(4) == 0 || trial >= 45 {
				net.Kill(v)
			}
		}
		for k := 1; k <= 3; k++ {
			want := brute(net, k)
			if got := ResidualDominationHorizon(net, k); got != want {
				t.Fatalf("trial %d n=%d k=%d: horizon %d, want %d", trial, n, k, got, want)
			}
		}
	}
}

func TestAchievedNeverExceedsResidualHorizon(t *testing.T) {
	// Property: achieved lifetime ≤ initial ResidualDominationHorizon
	// (Lemma 5.1 in executable form).
	src := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(40, 0.2, src)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + src.Intn(4)
		}
		net := energy.NewNetwork(g, b)
		horizon := ResidualDominationHorizon(net, 1)
		s := mustSolve(t, g, b, "general", 1, 10, rng.New(uint64(100+trial)))
		res := Run(net, s, Options{K: 1})
		if res.AchievedLifetime > horizon {
			t.Fatalf("trial %d: achieved %d > horizon %d", trial, res.AchievedLifetime, horizon)
		}
	}
}
