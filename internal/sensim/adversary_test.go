package sensim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestAdversarialPlanBreaksSingleServerPhase(t *testing.T) {
	// P3 schedule {1}×2: node 0's only server is node 1 → budget 1 breaks it.
	g := gen.Path(3)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1}, Duration: 2}}}
	plan := AdversarialPlan(g, s, 0, 1)
	if len(plan) != 1 || plan[0].Node != 1 {
		t.Fatalf("plan = %v, want kill node 1", plan)
	}
	net := energy.NewNetwork(g, energy.Uniform(g, 5))
	res := Run(net, s, Options{K: 1, Failures: plan})
	if res.FirstViolation != 0 {
		t.Fatalf("violation at %v, want 0", res.FirstViolation)
	}
}

func TestAdversarialPlanRespectsBudget(t *testing.T) {
	// K4 schedule {0,1,2}×1: victim 3 has 3 servers; budget 2 cannot break.
	g := gen.Complete(4)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0, 1, 2}, Duration: 1}}}
	if plan := AdversarialPlan(g, s, 3, 2); plan != nil {
		t.Fatalf("plan = %v, want nil (phase too redundant)", plan)
	}
	if plan := AdversarialPlan(g, s, 3, 3); len(plan) != 3 {
		t.Fatalf("plan = %v, want all 3 servers", plan)
	}
}

func TestAdversarialPlanSkipsLaterRedundantPhases(t *testing.T) {
	// First phase has 2 servers of the victim, second has 1: with budget 1
	// the plan targets the second phase's server.
	g := gen.Complete(4)
	s := &core.Schedule{Phases: []core.Phase{
		{Set: []int{0, 1}, Duration: 1},
		{Set: []int{2}, Duration: 1},
	}}
	plan := AdversarialPlan(g, s, 3, 1)
	if len(plan) != 1 || plan[0].Node != 2 {
		t.Fatalf("plan = %v, want kill node 2", plan)
	}
}

func TestKToleranceTheoremViaAdversary(t *testing.T) {
	// Property behind E10: a k-dominating schedule has no phase with fewer
	// than k servers of any node, so AdversarialPlan with budget k-1 is nil
	// for every victim.
	g := gen.GNP(120, 0.4, rng.New(1))
	const b, k = 4, 3
	s := mustSolve(t, g, uniformVec(g.N(), b), "ft", k, 30, rng.New(2))
	if s.Lifetime() == 0 {
		t.Skip("no schedule materialized")
	}
	for victim := 0; victim < g.N(); victim += 7 {
		if plan := AdversarialPlan(g, s, victim, k-1); plan != nil {
			t.Fatalf("victim %d: budget %d broke a %d-dominating schedule: %v",
				victim, k-1, k, plan)
		}
	}
}

func TestGreedyPartitionFallsToAdversary(t *testing.T) {
	// The complementary property: a lifetime-maximal 1-dominating schedule
	// almost always has a 1-server phase for a minimum-degree victim.
	g := gen.GNP(120, 0.4, rng.New(3))
	p := domatic.GreedyPartition(g, domatic.GreedyExtractor)
	s := core.FromPartition(p, 2)
	victim := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) < g.Degree(victim) {
			victim = v
		}
	}
	plan := AdversarialPlan(g, s, victim, 1)
	if plan == nil {
		t.Skip("this instance happens to double-cover the victim everywhere")
	}
	net := energy.NewNetwork(g, energy.Uniform(g, 2))
	res := Run(net, s, Options{K: 1, Failures: plan})
	if res.FirstViolation == -1 {
		t.Fatal("adversarial kill of the sole server did not break coverage")
	}
}
