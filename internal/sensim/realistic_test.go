package sensim

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestRealisticMatchesDutyModelAtZeroSleepCost(t *testing.T) {
	// With SleepCost = 0, TxCost = 0 and ActiveCost = 1, the battery-drain
	// model is exactly the paper's duty model.
	g := gen.GNP(100, 0.3, rng.New(1))
	const b = 3
	s := mustSolve(t, g, uniformVec(g.N(), b), "uniform", 1, 20, rng.New(2))
	batteries := make([]int, g.N())
	for i := range batteries {
		batteries[i] = b
	}
	res := RunRealistic(g, s, batteries, Model{ActiveCost: 1}, nil)
	if res.AchievedLifetime != s.Lifetime() {
		t.Fatalf("achieved %d != nominal %d at zero overhead", res.AchievedLifetime, s.Lifetime())
	}
	if res.FirstViolation != -1 {
		t.Fatalf("violation at %d", res.FirstViolation)
	}
	if res.Deaths != 0 {
		// Exactly exhausting a battery kills the node, but the schedule has
		// already moved past it; deaths may occur at the very end. Accept
		// both, but coverage must have held throughout (checked above).
		t.Logf("%d nodes ended exactly empty", res.Deaths)
	}
}

func TestRealisticSleepDrainShortensLifetime(t *testing.T) {
	// With idle drain, sleeping nodes burn battery too, so a long schedule
	// (here: a greedy domatic partition, many classes each sleeping through
	// all the others) dies earlier than its nominal lifetime.
	g := gen.GNP(100, 0.3, rng.New(3))
	const b = 4
	p := domatic.GreedyPartition(g, domatic.GreedyExtractor)
	s := core.FromPartition(p, b)
	if s.Lifetime() < 5*b {
		t.Skip("partition too small to observe drain")
	}
	batteries := make([]int, g.N())
	for i := range batteries {
		batteries[i] = 10 * b // active cost 10 → duty-equivalent budget b
	}
	noDrain := RunRealistic(g, s, batteries, Model{ActiveCost: 10}, nil)
	drain := RunRealistic(g, s, batteries, Model{ActiveCost: 10, SleepCost: 5}, nil)
	if noDrain.AchievedLifetime != s.Lifetime() {
		t.Fatalf("no-drain achieved %d != nominal %d", noDrain.AchievedLifetime, s.Lifetime())
	}
	if drain.AchievedLifetime >= noDrain.AchievedLifetime {
		t.Fatalf("50%% idle drain did not shorten lifetime: %d vs %d",
			drain.AchievedLifetime, noDrain.AchievedLifetime)
	}
	if drain.Deaths == 0 {
		t.Fatal("idle drain killed nobody — accounting broken")
	}
}

func TestRealisticTxCostCharges(t *testing.T) {
	// Path 0-1-2-3 with sink 0; schedule {1, 2}×1 (dominating). Delivery
	// with aggregation uses tree edges 2→1 and 1→0: TxCost charged once to
	// node 2 and once to node 1.
	g := gen.Path(4)
	tree, err := agg.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1, 2}, Duration: 1}}}
	batteries := []int{10, 10, 10, 10}
	res := RunRealistic(g, s, batteries, Model{ActiveCost: 1, TxCost: 2}, tree)
	// Charges: nodes 1, 2 active (1 each) + tx (2 each) = 6.
	if res.EnergySpent != 6 {
		t.Fatalf("energy spent = %d, want 6", res.EnergySpent)
	}
	if res.AchievedLifetime != 1 {
		t.Fatalf("achieved = %d, want 1", res.AchievedLifetime)
	}
}

func TestRealisticDeadNodesStopServing(t *testing.T) {
	// Node 1 can afford one active slot at cost 2 with battery 3 (second
	// slot unaffordable) → coverage collapses at slot 1.
	g := gen.Path(3)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1}, Duration: 3}}}
	res := RunRealistic(g, s, []int{9, 3, 9}, Model{ActiveCost: 2}, nil)
	if res.AchievedLifetime != 1 {
		t.Fatalf("achieved = %d, want 1", res.AchievedLifetime)
	}
	if res.FirstViolation != 1 {
		t.Fatalf("violation at %d, want 1", res.FirstViolation)
	}
}

func TestRealisticPanicsOnNonsenseModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ActiveCost < SleepCost did not panic")
		}
	}()
	RunRealistic(gen.Path(2), &core.Schedule{}, []int{1, 1}, Model{ActiveCost: 1, SleepCost: 2}, nil)
}

func TestDutyEquivalent(t *testing.T) {
	if got := (Model{ActiveCost: 10}).DutyEquivalent(45); got != 4 {
		t.Fatalf("duty equivalent = %d, want 4", got)
	}
	if got := (Model{}).DutyEquivalent(7); got != 7 {
		t.Fatalf("zero-cost duty equivalent = %d, want 7", got)
	}
}
