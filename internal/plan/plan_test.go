package plan

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func deployment(n int, side float64, seed uint64) []geom.Point {
	return geom.UniformDeployment(n, side, rng.New(seed))
}

func TestBuildUniform(t *testing.T) {
	p, err := Build(Spec{
		Points:    deployment(150, 10, 1),
		Radius:    3,
		Batteries: []int{4},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Algorithm, "Algorithm 1") {
		t.Fatalf("algorithm = %q, want Algorithm 1", p.Algorithm)
	}
	if p.Schedule.Lifetime() < 4 {
		t.Fatalf("lifetime %d below the trivial b", p.Schedule.Lifetime())
	}
	if p.Schedule.Lifetime() > p.UpperBound {
		t.Fatal("lifetime beats the bound")
	}
	var sb strings.Builder
	if err := p.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lifetime:") {
		t.Fatalf("report missing lifetime:\n%s", sb.String())
	}
}

func TestBuildGeneral(t *testing.T) {
	src := rng.New(2)
	pts := deployment(120, 9, 3)
	batteries := make([]int, len(pts))
	for i := range batteries {
		batteries[i] = 2 + src.Intn(5)
	}
	p, err := Build(Spec{Points: pts, Radius: 3, Batteries: batteries, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Algorithm, "Algorithm 2") {
		t.Fatalf("algorithm = %q, want Algorithm 2", p.Algorithm)
	}
}

func TestBuildKTolerant(t *testing.T) {
	p, err := Build(Spec{
		Points:    deployment(200, 8, 4),
		Radius:    3,
		Batteries: []int{4},
		Tolerance: 2,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Algorithm, "Algorithm 3") {
		t.Fatalf("algorithm = %q, want Algorithm 3", p.Algorithm)
	}
	if err := p.Schedule.Validate(p.Graph, p.Batteries, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSqueeze(t *testing.T) {
	spec := Spec{
		Points:    deployment(150, 8, 5),
		Radius:    3,
		Batteries: []int{4},
		Seed:      13,
	}
	raw, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Squeeze = true
	squeezed, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if squeezed.Schedule.Lifetime() < raw.Schedule.Lifetime() {
		t.Fatalf("squeeze shortened the plan: %d vs %d",
			squeezed.Schedule.Lifetime(), raw.Schedule.Lifetime())
	}
	if !strings.Contains(squeezed.Algorithm, "squeeze") {
		t.Fatalf("algorithm label %q missing squeeze marker", squeezed.Algorithm)
	}
}

func TestBuildErrors(t *testing.T) {
	pts := deployment(20, 5, 6)
	cases := map[string]Spec{
		"no nodes":             {Radius: 1, Batteries: []int{1}},
		"bad radius":           {Points: pts, Radius: 0, Batteries: []int{1}},
		"no batteries":         {Points: pts, Radius: 2},
		"negative battery":     {Points: pts, Radius: 2, Batteries: []int{-1}},
		"battery len mismatch": {Points: pts, Radius: 2, Batteries: []int{1, 2}},
		"tolerance infeasible": {Points: pts, Radius: 0.01, Batteries: []int{2}, Tolerance: 3},
	}
	for name, spec := range cases {
		if _, err := Build(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildNonUniformToleranceRejected(t *testing.T) {
	pts := deployment(30, 5, 7)
	b := make([]int, len(pts))
	for i := range b {
		b[i] = 1 + i%3
	}
	if _, err := Build(Spec{Points: pts, Radius: 3, Batteries: b, Tolerance: 2}); err == nil {
		t.Fatal("non-uniform batteries with k > 1 accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := Spec{Points: deployment(100, 8, 8), Radius: 3, Batteries: []int{3}, Seed: 21}
	a, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatal("plans differ for identical specs")
	}
}
