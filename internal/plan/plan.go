// Package plan is the high-level facade a deployment engineer would use:
// hand it node positions, a radio range and battery budgets, and it returns
// a validated cluster-lifetime plan — graph, schedule, bounds, guarantees —
// choosing the right algorithm from the paper automatically (uniform /
// general / k-tolerant) and optionally squeezing extra lifetime with the
// centralized post-pass.
package plan

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/solver"
)

// Spec describes the deployment and the scheduling requirements.
type Spec struct {
	// Points are the node positions; the communication graph is their unit
	// disk graph at Radius.
	Points []geom.Point
	// Radius is the radio range (> 0).
	Radius float64
	// Batteries are per-node duty budgets. A single-element slice is
	// broadcast to all nodes.
	Batteries []int
	// Tolerance is the required number of clusterheads per neighborhood
	// (>= 1). Values above 1 demand uniform batteries.
	Tolerance int
	// K is the color-range constant (0 = the paper's 3).
	K float64
	// Seed makes the plan reproducible.
	Seed uint64
	// Retries bounds the WHP retry loop (0 = 30).
	Retries int
	// Squeeze applies the centralized Minimalize+Extend post-pass,
	// trading the paper's locality for lifetime.
	Squeeze bool
}

// Plan is a validated scheduling plan.
type Plan struct {
	Graph      *graph.Graph
	Batteries  []int
	Schedule   *core.Schedule
	Algorithm  string // which of the paper's algorithms was used
	UpperBound int    // Lemma 4.1/5.1/6.1 bound on any schedule
	Guaranteed int    // w.h.p. lifetime guarantee of the raw algorithm
	Tolerance  int
}

// Build computes a plan. The returned schedule is always feasible (it is
// validated before returning; a validation failure is a bug and surfaces as
// an error, never as a bad plan).
func Build(spec Spec) (*Plan, error) {
	n := len(spec.Points)
	if n == 0 {
		return nil, fmt.Errorf("plan: no nodes")
	}
	if spec.Radius <= 0 {
		return nil, fmt.Errorf("plan: radius %v must be positive", spec.Radius)
	}
	if spec.Tolerance < 1 {
		spec.Tolerance = 1
	}
	if spec.Retries <= 0 {
		spec.Retries = 30
	}

	batteries, uniform, err := normalizeBatteries(spec.Batteries, n)
	if err != nil {
		return nil, err
	}
	if spec.Tolerance > 1 && !uniform {
		return nil, fmt.Errorf("plan: tolerance %d requires uniform batteries (paper's Algorithm 3)", spec.Tolerance)
	}

	g := gen.UDG(spec.Points, spec.Radius)
	if g.MinDegree()+1 < spec.Tolerance {
		return nil, fmt.Errorf("plan: some node has only %d closed neighbors; tolerance %d is infeasible",
			g.MinDegree()+1, spec.Tolerance)
	}

	src := rng.New(spec.Seed)
	p := &Plan{Graph: g, Batteries: batteries, Tolerance: spec.Tolerance}

	// Pick the paper algorithm by registry name; the solver driver owns the
	// retry/truncate/keep-best loop and the w.h.p. guarantee computation.
	// The typed instance carries the tolerance and a UDG structure hint —
	// the deployment geometry is known here, so classification gets it for
	// free.
	in := instance.New(g, batteries).WithHint(instance.Hint{Family: "udg"})
	sspec := solver.Spec{Name: solver.NameGeneral, KConst: spec.K}
	switch {
	case spec.Tolerance > 1:
		p.Algorithm = "Algorithm 3 (k-tolerant uniform)"
		sspec.Name = solver.NameFT
		in = in.WithK(spec.Tolerance)
		p.UpperBound = core.KTolerantUpperBound(g, batteries[0], spec.Tolerance)
	case uniform:
		p.Algorithm = "Algorithm 1 (uniform)"
		sspec.Name = solver.NameUniform
		p.UpperBound = core.UniformUpperBound(g, batteries[0])
	default:
		p.Algorithm = "Algorithm 2 (general)"
		p.UpperBound = core.GeneralUpperBound(g, batteries)
	}
	s, err := solver.Solve(in, sspec,
		solver.Options{Tries: spec.Retries, Src: src})
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	p.Schedule = s
	if p.Guaranteed, err = solver.Guaranteed(in, sspec); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}

	if spec.Squeeze {
		p.Schedule = sched.Squeeze(g, p.Schedule, batteries, spec.Tolerance)
		p.Algorithm += " + squeeze"
	}
	if err := p.Schedule.Validate(g, batteries, spec.Tolerance); err != nil {
		return nil, fmt.Errorf("plan: internal error, produced schedule invalid: %w", err)
	}
	return p, nil
}

func normalizeBatteries(b []int, n int) ([]int, bool, error) {
	switch len(b) {
	case 0:
		return nil, false, fmt.Errorf("plan: no batteries given")
	case 1:
		if b[0] < 0 {
			return nil, false, fmt.Errorf("plan: negative battery %d", b[0])
		}
		out := make([]int, n)
		for i := range out {
			out[i] = b[0]
		}
		return out, true, nil
	case n:
		uniform := true
		for _, v := range b {
			if v < 0 {
				return nil, false, fmt.Errorf("plan: negative battery %d", v)
			}
			if v != b[0] {
				uniform = false
			}
		}
		return append([]int(nil), b...), uniform, nil
	default:
		return nil, false, fmt.Errorf("plan: %d batteries for %d nodes", len(b), n)
	}
}

// WriteReport renders a human-readable plan summary.
func (p *Plan) WriteReport(w io.Writer) error {
	lifetime := p.Schedule.Lifetime()
	frac := 0.0
	if p.UpperBound > 0 {
		frac = float64(lifetime) / float64(p.UpperBound)
	}
	_, err := fmt.Fprintf(w,
		"deployment: %v\nalgorithm:  %s\ntolerance:  %d-dominating per slot\n"+
			"lifetime:   %d slots (%d phases)\nupper bound: %d slots (%.0f%% attained)\n"+
			"guaranteed: ≥ %d slots w.h.p. before retries\n",
		p.Graph, p.Algorithm, p.Tolerance,
		lifetime, len(p.Schedule.Phases), p.UpperBound, 100*frac, p.Guaranteed)
	return err
}
