// Package geom provides the 2-D geometry substrate for unit disk graph
// construction: point sets, uniform random deployments, and a grid-bucket
// spatial index that answers radius queries in expected O(1) per reported
// neighbor. The paper's motivating network family is the unit disk graph
// (UDG): nodes are points in the plane and an edge exists iff the Euclidean
// distance is at most the communication radius.
package geom

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance (avoids Sqrt in comparisons).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// UniformDeployment scatters n points uniformly at random in the
// side×side square.
func UniformDeployment(n int, side float64, src *rng.Source) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: src.Float64() * side, Y: src.Float64() * side}
	}
	return pts
}

// ClusteredDeployment scatters n points around k uniformly placed cluster
// centers with Gaussian spread sigma, clamped into the side×side square.
// This models the non-uniform sensor deployments (e.g. air-dropped clusters)
// that make per-node degree δ_v vary widely — the regime where Algorithm 1's
// use of the local 2-hop minimum degree matters.
func ClusteredDeployment(n, k int, side, sigma float64, src *rng.Source) []Point {
	if k <= 0 {
		panic("geom: ClusteredDeployment needs k >= 1")
	}
	centers := UniformDeployment(k, side, src)
	pts := make([]Point, n)
	for i := range pts {
		c := centers[src.Intn(k)]
		pts[i] = Point{
			X: clamp(c.X+src.NormFloat64()*sigma, 0, side),
			Y: clamp(c.Y+src.NormFloat64()*sigma, 0, side),
		}
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GridIndex is a uniform-grid spatial index over a point set with a fixed
// query radius. Cells have side length equal to the radius, so a radius
// query inspects at most the 3×3 block of cells around the query point.
type GridIndex struct {
	pts    []Point
	radius float64
	cell   float64
	cols   int
	rows   int
	bucket map[int][]int32 // cell id -> point indices
}

// NewGridIndex builds an index over pts for queries at exactly radius.
// It panics if radius <= 0.
func NewGridIndex(pts []Point, radius float64) *GridIndex {
	if radius <= 0 {
		panic(fmt.Sprintf("geom: non-positive radius %v", radius))
	}
	idx := &GridIndex{
		pts:    pts,
		radius: radius,
		cell:   radius,
		bucket: make(map[int][]int32),
	}
	maxX, maxY := 0.0, 0.0
	for _, p := range pts {
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	idx.cols = int(maxX/idx.cell) + 1
	idx.rows = int(maxY/idx.cell) + 1
	for i, p := range pts {
		id := idx.cellID(p)
		idx.bucket[id] = append(idx.bucket[id], int32(i))
	}
	return idx
}

func (g *GridIndex) cellID(p Point) int {
	cx := int(p.X / g.cell)
	cy := int(p.Y / g.cell)
	return cy*g.cols + cx
}

// Within returns the indices of all points within radius of pts[i],
// excluding i itself. Order is unspecified.
func (g *GridIndex) Within(i int) []int32 {
	p := g.pts[i]
	r2 := g.radius * g.radius
	cx := int(p.X / g.cell)
	cy := int(p.Y / g.cell)
	var out []int32
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || y < 0 || x >= g.cols || y >= g.rows {
				continue
			}
			for _, j := range g.bucket[y*g.cols+x] {
				if int(j) != i && p.Dist2(g.pts[j]) <= r2 {
					out = append(out, j)
				}
			}
		}
	}
	return out
}
