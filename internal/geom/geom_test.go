package geom

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.Dist(q); d != 5 {
		t.Fatalf("dist = %v, want 5", d)
	}
	if d2 := p.Dist2(q); d2 != 25 {
		t.Fatalf("dist2 = %v, want 25", d2)
	}
}

func TestUniformDeploymentBounds(t *testing.T) {
	src := rng.New(1)
	pts := UniformDeployment(500, 10, src)
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 10 || p.Y < 0 || p.Y >= 10 {
			t.Fatalf("point %v outside square", p)
		}
	}
}

func TestClusteredDeploymentBounds(t *testing.T) {
	src := rng.New(2)
	pts := ClusteredDeployment(300, 5, 10, 0.5, src)
	for _, p := range pts {
		if p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 10 {
			t.Fatalf("point %v outside square", p)
		}
	}
}

func TestClusteredDeploymentPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	ClusteredDeployment(10, 0, 1, 0.1, rng.New(1))
}

// bruteWithin is the O(n) reference for GridIndex.Within.
func bruteWithin(pts []Point, i int, r float64) []int32 {
	var out []int32
	for j, q := range pts {
		if j != i && pts[i].Dist(q) <= r {
			out = append(out, int32(j))
		}
	}
	return out
}

func TestGridIndexMatchesBruteForce(t *testing.T) {
	src := rng.New(3)
	for _, n := range []int{1, 2, 10, 200} {
		pts := UniformDeployment(n, 5, src)
		const r = 0.8
		idx := NewGridIndex(pts, r)
		for i := range pts {
			got := idx.Within(i)
			want := bruteWithin(pts, i, r)
			sortInt32(got)
			sortInt32(want)
			if len(got) != len(want) {
				t.Fatalf("n=%d i=%d: got %v want %v", n, i, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("n=%d i=%d: got %v want %v", n, i, got, want)
				}
			}
		}
	}
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func TestGridIndexBoundaryDistance(t *testing.T) {
	// Two points at exactly the radius must be neighbors (<=, not <).
	pts := []Point{{0, 0}, {1, 0}}
	idx := NewGridIndex(pts, 1)
	if got := idx.Within(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Within(0) = %v, want [1]", got)
	}
	// Slightly beyond radius: not neighbors.
	pts2 := []Point{{0, 0}, {1 + 1e-9, 0}}
	idx2 := NewGridIndex(pts2, 1)
	if got := idx2.Within(0); len(got) != 0 {
		t.Fatalf("Within(0) = %v, want empty", got)
	}
}

func TestGridIndexPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("radius 0 did not panic")
		}
	}()
	NewGridIndex([]Point{{0, 0}}, 0)
}

func TestGridIndexCoincidentPoints(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {1, 1}}
	idx := NewGridIndex(pts, 0.5)
	for i := range pts {
		if got := idx.Within(i); len(got) != 2 {
			t.Fatalf("Within(%d) = %v, want 2 coincident neighbors", i, got)
		}
	}
}

func TestGridIndexDeterministicAcrossSeeds(t *testing.T) {
	a := UniformDeployment(50, 3, rng.New(11))
	b := UniformDeployment(50, 3, rng.New(11))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("deployment not reproducible for the same seed")
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	src := rng.New(9)
	for i := 0; i < 100; i++ {
		p := Point{src.Float64() * 100, src.Float64() * 100}
		q := Point{src.Float64() * 100, src.Float64() * 100}
		if math.Abs(p.Dist(q)-q.Dist(p)) > 1e-12 {
			t.Fatalf("distance asymmetric for %v, %v", p, q)
		}
		if p.Dist(p) != 0 {
			t.Fatalf("self distance non-zero for %v", p)
		}
	}
}
