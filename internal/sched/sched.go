// Package sched provides schedule post-processors that squeeze additional
// lifetime out of any feasible schedule — the engineering layer a deployment
// would put on top of the paper's randomized algorithms:
//
//   - Minimalize prunes each phase to a minimal k-dominating subset, freeing
//     battery without shortening the schedule;
//   - Extend appends greedily extracted dominating sets over the residual
//     batteries until none exists;
//   - Squeeze = Minimalize + Extend, the full pipeline.
//
// Experiment E17 measures how much lifetime these recover on top of
// Algorithms 1 and 2. All post-processors are centralized: they trade the
// paper's locality for lifetime, quantifying the price of distribution.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
)

// Minimalize returns a copy of s in which every phase is pruned to a
// minimal k-dominating subset (dropping members whose removal preserves
// k-domination, highest-degree-last so well-connected nodes are kept).
// The lifetime is unchanged; the per-node usage can only decrease.
func Minimalize(g *graph.Graph, s *core.Schedule, k int) *core.Schedule {
	if k < 1 {
		panic(fmt.Sprintf("sched: tolerance k = %d must be >= 1", k))
	}
	out := &core.Schedule{}
	ck := domset.NewChecker(g)
	for _, p := range s.Phases {
		pruned := minimalizeSet(ck, p.Set, k)
		out.Phases = append(out.Phases, core.Phase{Set: pruned, Duration: p.Duration})
	}
	return out
}

// minimalizeSet removes redundant members of a k-dominating set. Members
// are considered for removal in increasing degree order, so high-degree
// nodes (which cover many others) survive. The returned slice is freshly
// allocated and sorted.
//
// Each removal is a speculative Flip on the checker's incremental session —
// O(deg(candidate)) to try and O(deg) to undo — instead of the full
// re-fold per candidate the trial-copy approach paid.
func minimalizeSet(ck *domset.Checker, set []int, k int) []int {
	g := ck.Graph()
	sess := ck.Begin(set, k, nil)
	if !sess.IsKDominating() {
		// Not dominating to begin with (possible for raw randomized
		// schedules): leave untouched — Validate/Truncate is the caller's
		// tool for that.
		return append([]int(nil), set...)
	}
	order := append([]int(nil), set...)
	sort.Slice(order, func(i, j int) bool { return g.Degree(order[i]) < g.Degree(order[j]) })
	for _, candidate := range order {
		if !sess.Contains(candidate) {
			continue // duplicate member already handled
		}
		m := sess.Mark()
		sess.Flip(candidate)
		if !sess.IsKDominating() {
			sess.Rollback(m)
		} else {
			sess.Commit() // removal kept: the log must not accumulate it
		}
	}
	return sess.AppendMembers(nil)
}

// Extend appends phases to s while the residual batteries still admit a
// k-dominating set: each appended phase is a greedy k-dominating set over
// nodes with remaining budget, run for as many slots as its weakest member
// allows. The result is feasible whenever s was.
func Extend(g *graph.Graph, s *core.Schedule, batteries []int, k int) *core.Schedule {
	if len(batteries) != g.N() {
		panic(fmt.Sprintf("sched: %d batteries for %d nodes", len(batteries), g.N()))
	}
	if k < 1 {
		panic(fmt.Sprintf("sched: tolerance k = %d must be >= 1", k))
	}
	out := &core.Schedule{Phases: append([]core.Phase(nil), s.Phases...)}
	residual := make([]int, g.N())
	copy(residual, batteries)
	usage := s.Usage(g.N())
	for v := range residual {
		residual[v] -= usage[v]
		if residual[v] < 0 {
			panic(fmt.Sprintf("sched: schedule overdraws node %d", v))
		}
	}
	appendGreedyPhases(g, out, residual, k, nil)
	return out
}

// appendGreedyPhases repeatedly extracts a greedy k-dominating set over the
// nodes with positive residual (restricted to alive nodes when alive is
// non-nil — dead nodes can neither serve nor need coverage) and appends it
// as a phase running as long as its weakest member allows. residual is
// consumed in place.
func appendGreedyPhases(g *graph.Graph, out *core.Schedule, residual []int, k int, alive []bool) {
	for {
		allowed := make([]bool, g.N())
		any := false
		for v, r := range residual {
			if r > 0 && (alive == nil || alive[v]) {
				allowed[v] = true
				any = true
			}
		}
		if !any {
			return
		}
		set := domset.GreedyK(g, k, allowed, alive)
		if set == nil {
			return
		}
		// Run the new phase as long as its weakest member allows.
		dur := -1
		for _, v := range set {
			if dur == -1 || residual[v] < dur {
				dur = residual[v]
			}
		}
		if dur <= 0 {
			return
		}
		for _, v := range set {
			residual[v] -= dur
		}
		out.Phases = append(out.Phases, core.Phase{Set: set, Duration: dur})
	}
}

// Replan builds a fresh schedule for a degraded network from scratch: greedy
// k-dominating phases over the residual budgets, where only alive nodes may
// serve and only alive nodes need coverage. This is the centralized
// escalation step of the self-healing runtime (package heal) — what a sink
// with a global view would broadcast after local patching gives up. It
// returns an empty schedule when the residual network admits no k-dominating
// set at all.
func Replan(g *graph.Graph, residual []int, k int, alive []bool) *core.Schedule {
	if len(residual) != g.N() {
		panic(fmt.Sprintf("sched: %d residuals for %d nodes", len(residual), g.N()))
	}
	if k < 1 {
		panic(fmt.Sprintf("sched: tolerance k = %d must be >= 1", k))
	}
	out := &core.Schedule{}
	rem := append([]int(nil), residual...)
	appendGreedyPhases(g, out, rem, k, alive)
	return out
}

// Squeeze is the full post-processing pipeline: prune every phase to a
// minimal set, then extend over the freed plus unused budget.
func Squeeze(g *graph.Graph, s *core.Schedule, batteries []int, k int) *core.Schedule {
	return Extend(g, Minimalize(g, s, k), batteries, k)
}
