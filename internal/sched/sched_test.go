package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/gen"
	"repro/internal/rng"
)

func uniformB(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// The WHP retry loop lives in the internal/solver driver, which sched (a
// solver dependency) cannot import from its tests; these fixtures replay it
// locally over the core primitives.
func whpFixture(g *graph.Graph, target, truncK, tries int, generate func() *core.Schedule) *core.Schedule {
	ck := domset.NewChecker(g)
	var best *core.Schedule
	for try := 0; try < tries; try++ {
		s := generate().TruncateInvalidWith(ck, truncK)
		if best == nil || s.Lifetime() > best.Lifetime() {
			best = s
		}
		if best.Lifetime() >= target {
			break
		}
	}
	return best
}

func uniformWHPFixture(g *graph.Graph, b int, opt core.Options, tries int) *core.Schedule {
	return whpFixture(g, core.GuaranteedPhases(g, opt)*b, 1, tries,
		func() *core.Schedule { return core.Uniform(g, b, opt) })
}

func faultTolerantWHPFixture(g *graph.Graph, b, k int, opt core.Options, tries int) *core.Schedule {
	return whpFixture(g, core.FaultTolerantGuarantee(g, b, k, opt), k, tries,
		func() *core.Schedule { return core.FaultTolerant(g, b, k, opt) })
}

func TestMinimalizePreservesLifetimeAndValidity(t *testing.T) {
	g := gen.GNP(100, 0.25, rng.New(1))
	const b = 3
	s := uniformWHPFixture(g, b, core.Options{K: 3, Src: rng.New(2)}, 20)
	m := Minimalize(g, s, 1)
	if m.Lifetime() != s.Lifetime() {
		t.Fatalf("minimalize changed lifetime: %d vs %d", m.Lifetime(), s.Lifetime())
	}
	if err := m.Validate(g, uniformB(g.N(), b), 1); err != nil {
		t.Fatal(err)
	}
	// Usage can only go down.
	before, after := s.Usage(g.N()), m.Usage(g.N())
	for v := range before {
		if after[v] > before[v] {
			t.Fatalf("node %d usage grew: %d -> %d", v, before[v], after[v])
		}
	}
	// And should go down somewhere on a dense graph (classes are fat).
	saved := 0
	for v := range before {
		saved += before[v] - after[v]
	}
	if saved == 0 {
		t.Error("minimalize freed no budget on a dense graph — suspicious")
	}
}

func TestMinimalizeKeepsPhasesKDominating(t *testing.T) {
	g := gen.Complete(10)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0, 1, 2, 3, 4}, Duration: 1}}}
	m := Minimalize(g, s, 2)
	if err := m.Validate(g, uniformB(10, 5), 2); err != nil {
		t.Fatal(err)
	}
	if len(m.Phases[0].Set) != 2 {
		t.Fatalf("minimal 2-dominating subset of K10 phase = %v, want size 2", m.Phases[0].Set)
	}
}

func TestMinimalizeLeavesNonDominatingPhasesAlone(t *testing.T) {
	g := gen.Path(5)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 1}}}
	m := Minimalize(g, s, 1)
	if len(m.Phases[0].Set) != 1 || m.Phases[0].Set[0] != 0 {
		t.Fatalf("non-dominating phase altered: %v", m.Phases[0].Set)
	}
}

func TestExtendFromEmptySchedule(t *testing.T) {
	g := gen.Path(3)
	s := Extend(g, &core.Schedule{}, []int{2, 2, 2}, 1)
	// Optimal is 4 ({1}×2 then {0,2}×2); greedy extension reaches it here.
	if s.Lifetime() != 4 {
		t.Fatalf("extended lifetime = %d, want 4", s.Lifetime())
	}
	if err := s.Validate(g, []int{2, 2, 2}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestExtendNeverShortens(t *testing.T) {
	g := gen.GNP(60, 0.3, rng.New(3))
	const b = 3
	s := uniformWHPFixture(g, b, core.Options{K: 3, Src: rng.New(4)}, 20)
	e := Extend(g, s, uniformB(g.N(), b), 1)
	if e.Lifetime() < s.Lifetime() {
		t.Fatalf("extend shortened: %d -> %d", s.Lifetime(), e.Lifetime())
	}
	if err := e.Validate(g, uniformB(g.N(), b), 1); err != nil {
		t.Fatal(err)
	}
}

func TestExtendPanicsOnOverdrawnInput(t *testing.T) {
	g := gen.Path(3)
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{1}, Duration: 5}}}
	defer func() {
		if recover() == nil {
			t.Fatal("overdrawn schedule did not panic")
		}
	}()
	Extend(g, s, []int{1, 1, 1}, 1)
}

func TestSqueezeBeatsRawSchedule(t *testing.T) {
	// On a dense graph the randomized schedule leaves most budget unused;
	// Squeeze must recover a significant amount.
	g := gen.GNP(150, 0.3, rng.New(5))
	const b = 4
	raw := uniformWHPFixture(g, b, core.Options{K: 3, Src: rng.New(6)}, 20)
	sq := Squeeze(g, raw, uniformB(g.N(), b), 1)
	if err := sq.Validate(g, uniformB(g.N(), b), 1); err != nil {
		t.Fatal(err)
	}
	if sq.Lifetime() < 2*raw.Lifetime() {
		t.Fatalf("squeeze gained too little: %d -> %d", raw.Lifetime(), sq.Lifetime())
	}
	if ub := core.UniformUpperBound(g, b); sq.Lifetime() > ub {
		t.Fatalf("squeezed lifetime %d beats the Lemma 4.1 bound %d", sq.Lifetime(), ub)
	}
}

func TestSqueezeKTolerant(t *testing.T) {
	g := gen.GNP(120, 0.4, rng.New(7))
	const b, k = 4, 2
	raw := faultTolerantWHPFixture(g, b, k, core.Options{K: 3, Src: rng.New(8)}, 20)
	sq := Squeeze(g, raw, uniformB(g.N(), b), k)
	if err := sq.Validate(g, uniformB(g.N(), b), k); err != nil {
		t.Fatal(err)
	}
	if sq.Lifetime() < raw.Lifetime() {
		t.Fatalf("squeeze shortened k-tolerant schedule: %d -> %d", raw.Lifetime(), sq.Lifetime())
	}
}

func TestSqueezeBadArgsPanics(t *testing.T) {
	g := gen.Path(3)
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	Squeeze(g, &core.Schedule{}, []int{1, 1, 1}, 0)
}

func TestReplanZeroAliveNodes(t *testing.T) {
	// Degradation edge: a fully dead network must yield an empty schedule —
	// no panic, no spin — since nobody can serve and nobody needs coverage.
	g := gen.GNP(20, 0.3, rng.New(6))
	residual := uniformB(20, 5)
	alive := make([]bool, 20)
	s := Replan(g, residual, 1, alive)
	if s.Lifetime() != 0 || len(s.Phases) != 0 {
		t.Fatalf("all-dead Replan produced %v", s)
	}
	// Same with tolerance above 1 and zero residuals.
	if s := Replan(g, make([]int, 20), 2, nil); s.Lifetime() != 0 {
		t.Fatalf("zero-residual Replan produced %v", s)
	}
}
