package reconfig

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Change is one scheduled live reconfiguration: at slot At (global simulated
// time), Delta is applied to the network as it then stands. Delta node IDs
// are in the network's CURRENT ID space at that moment — i.e. the post-delta
// space of the previous change — which is what a live operator issuing
// PATCHes against the running service observes.
type Change struct {
	At    int
	Delta graph.Delta
}

// SimOptions configures Simulate.
type SimOptions struct {
	// K is the domination tolerance. <= 0 means 1.
	K int
	// Overlap is the overlap window requested from the planner at every
	// change; 0 simulates naive re-solve-and-swap.
	Overlap int
	// Solver names the incoming-schedule algorithm ("" = greedy).
	Solver string
	// Tries and Seed drive the planner's randomized solvers and the
	// wake-loss draws.
	Tries int
	Seed  uint64
	// WakeLoss is the probability a node that was asleep when a new schedule
	// was installed misses its first scheduled wake-up (it is informed by
	// the retry and serves from its next slot on). Nodes awake at install
	// time — the overlap contributors in particular — and nodes the delta
	// just provisioned learn the schedule immediately. 0 disables the model.
	WakeLoss float64
	// Chaos injects crashes and battery leaks. Node IDs are in the ORIGINAL
	// graph's ID space; events whose node has been removed by a delta are
	// dropped.
	Chaos chaos.Plan
	// MaxSlots caps the simulation. <= 0 means initial lifetime plus total
	// budget plus one — enough that any feasible plan can run out.
	MaxSlots int
	// Hooks receives slot, death, wake-miss, and reconfig events.
	Hooks obs.Hooks
}

// SimResult summarizes a simulated run under live reconfigurations.
type SimResult struct {
	// ScheduleLifetime is the nominal lifetime: initial schedule slots spent
	// before the first change plus every transition plan's full length.
	ScheduleLifetime int
	// AchievedLifetime is the last slot index (exclusive) up to which every
	// slot k-dominated the then-alive nodes.
	AchievedLifetime int
	// CoveredSlots counts all dominated slots, contiguous or not.
	CoveredSlots int
	// Slots is how many slots were simulated.
	Slots int
	// FirstViolation is the first undominated slot, or -1.
	FirstViolation int
	// EnergySpent is total battery drained; OverlapEnergy the share charged
	// to overlap contributors by the planner.
	EnergySpent   int
	OverlapEnergy int
	// Reconfigs, DegradedTransitions, ViolatedTransitions count the planner
	// outcomes; WakeMisses the nodes that slept through an install;
	// Deaths the nodes lost to chaos or battery exhaustion.
	Reconfigs           int
	DegradedTransitions int
	ViolatedTransitions int
	WakeMisses          int
	Deaths              int
}

// Simulate executes s on g slot by slot, applying the chaos plan and the
// scheduled changes, and measures what coverage actually survives. At each
// change it asks Compute for a transition plan (with opt.Overlap), installs
// it, and — this is the part naive swapping gets wrong — makes every node
// that was asleep at install time miss its first wake-up with probability
// WakeLoss. Overlap windows keep the outgoing set awake across exactly those
// first slots, so the planner's extra energy buys insurance against the
// misses; Overlap = 0 reproduces the naive re-solve-and-swap baseline under
// identical seeded churn.
func Simulate(g *graph.Graph, s *core.Schedule, budgets []int, events []Change, opt SimOptions) (SimResult, error) {
	if g == nil || s == nil {
		return SimResult{}, fmt.Errorf("reconfig: simulate: nil graph or schedule")
	}
	if len(budgets) != g.N() {
		return SimResult{}, fmt.Errorf("reconfig: simulate: %d budgets for %d nodes", len(budgets), g.N())
	}
	if opt.WakeLoss < 0 || opt.WakeLoss >= 1 {
		return SimResult{}, fmt.Errorf("reconfig: simulate: wake loss %v outside [0, 1)", opt.WakeLoss)
	}
	k := opt.K
	if k <= 0 {
		k = 1
	}

	res := SimResult{FirstViolation: -1}
	cur := s
	pos := 0 // position within cur's timeline
	curG := g
	residual := append([]int(nil), budgets...)
	var alive []bool // nil until the first death
	ck := domset.NewChecker(curG)
	// The coverage session lives across slots: consecutive slots usually run
	// the same phase set, so membership is synced by flipping the symmetric
	// difference against the previous slot (O(changed · deg)) instead of
	// re-folding every row. Deaths stream in through SetAlive.
	sess := ck.Begin(nil, k, nil)
	serving := make([]int, 0, curG.N())     // reused slot buffer
	prevServing := make([]int, 0, curG.N()) // members currently in sess
	inNew := make([]bool, curG.N())         // scratch for the set diff

	// origIdx maps original node IDs (the chaos plan's space) to current
	// IDs, composed through every delta; -1 = removed.
	origIdx := make([]int, g.N())
	for v := range origIdx {
		origIdx[v] = v
	}

	maxSlots := opt.MaxSlots
	if maxSlots <= 0 {
		total := 0
		for _, b := range budgets {
			total += b
		}
		maxSlots = s.Lifetime() + total + 1
	}
	res.ScheduleLifetime = s.Lifetime()

	wakeSrc := rng.New(opt.Seed ^ 0x77616b65) // independent of solver seeds
	var informed []bool                       // per current node; nil = everyone has the schedule
	nextCrash, nextLeak := 0, 0
	nextEvent := 0

	ensureAlive := func() []bool {
		if alive == nil {
			alive = make([]bool, curG.N())
			for i := range alive {
				alive[i] = true
			}
		}
		return alive
	}

	for t := 0; t < maxSlots; t++ {
		// Chaos due at t, remapped from original IDs; events on removed
		// nodes are dropped.
		for nextCrash < len(opt.Chaos.Crashes) && opt.Chaos.Crashes[nextCrash].Time <= t {
			ev := opt.Chaos.Crashes[nextCrash]
			nextCrash++
			if ev.Node < 0 || ev.Node >= len(origIdx) || origIdx[ev.Node] < 0 {
				continue
			}
			v := origIdx[ev.Node]
			if a := ensureAlive(); a[v] {
				a[v] = false
				sess.SetAlive(v, false)
				res.Deaths++
				opt.Hooks.Emit(obs.Crash(t, v))
			}
		}
		for nextLeak < len(opt.Chaos.Leaks) && opt.Chaos.Leaks[nextLeak].Time <= t {
			ev := opt.Chaos.Leaks[nextLeak]
			nextLeak++
			if ev.Node < 0 || ev.Node >= len(origIdx) || origIdx[ev.Node] < 0 {
				continue
			}
			v := origIdx[ev.Node]
			residual[v] -= ev.Amount
			if residual[v] < 0 {
				residual[v] = 0
			}
			opt.Hooks.Emit(obs.Leak(t, v, ev.Amount))
		}

		// Scheduled reconfigurations due at t.
		for nextEvent < len(events) && events[nextEvent].At <= t {
			change := events[nextEvent]
			nextEvent++
			p, err := Compute(instance.New(curG, residual).WithK(k), Request{
				Old:     cur,
				At:      pos,
				Alive:   alive,
				Delta:   change.Delta,
				Overlap: opt.Overlap,
				Solver:  opt.Solver,
				Seed:    opt.Seed + uint64(res.Reconfigs)*7919,
				Tries:   opt.Tries,
				Hooks:   opt.Hooks,
			})
			if err != nil {
				return res, fmt.Errorf("reconfig: simulate: change at t=%d: %w", change.At, err)
			}
			res.Reconfigs++
			if p.Degraded {
				res.DegradedTransitions++
			}
			if p.Violation {
				res.ViolatedTransitions++
			}
			res.OverlapEnergy += p.OverlapEnergy
			res.ScheduleLifetime += p.Lifetime() - (cur.Lifetime() - pos)

			// Who is awake right now learns the new schedule immediately, and
			// nodes the delta just provisioned arrive carrying it; every
			// sleeping survivor risks missing its first wake-up.
			informed = make([]bool, p.Graph.N())
			survivors := 0
			for _, m := range p.Mapping {
				if m >= 0 {
					survivors++
				}
			}
			for v := survivors; v < p.Graph.N(); v++ {
				informed[v] = true
			}
			for _, v := range cur.ActiveAt(pos) {
				if v >= 0 && v < len(p.Mapping) && p.Mapping[v] >= 0 {
					informed[p.Mapping[v]] = true
				}
			}

			// Compose the original-ID index with the delta's mapping.
			for ov, v := range origIdx {
				if v < 0 {
					continue
				}
				origIdx[ov] = p.Mapping[v]
			}

			curG = p.Graph
			residual = append([]int(nil), p.Budgets...)
			alive = p.Alive
			cur = p.Schedule()
			pos = 0
			ck = domset.NewChecker(curG)
			// New graph, new node space: restart the session (one fold per
			// reconfig, not per slot) and reset the diff scratch.
			sess = ck.Begin(nil, k, alive)
			prevServing = prevServing[:0]
			inNew = make([]bool, curG.N())
		}

		intended := cur.ActiveAt(pos)
		if intended == nil {
			break // schedule exhausted
		}
		opt.Hooks.Emit(obs.SlotStart(t))

		// Serve the slot: scheduled nodes that are alive, funded, and (post
		// install) informed. An uninformed node misses this slot with
		// probability WakeLoss but is informed either way afterwards. The
		// alive check comes first: a dead node cannot wake at all, so it must
		// not consume a wake-loss draw or count as a WakeMiss (it used to,
		// which both inflated WakeMisses and shifted the RNG stream for the
		// survivors).
		serving = serving[:0]
		for _, v := range intended {
			if alive != nil && !alive[v] {
				continue
			}
			if informed != nil && !informed[v] {
				informed[v] = true
				if opt.WakeLoss > 0 && wakeSrc.Float64() < opt.WakeLoss {
					res.WakeMisses++
					opt.Hooks.Emit(obs.WakeMiss(t, v))
					continue
				}
			}
			if residual[v] < 1 {
				continue
			}
			residual[v]--
			res.EnergySpent++
			serving = append(serving, v)
		}

		// Sync the session to this slot's serving set by symmetric
		// difference — usually empty when the phase carries over.
		for _, v := range serving {
			inNew[v] = true
		}
		for _, v := range prevServing {
			if !inNew[v] {
				sess.Flip(v)
			}
		}
		for _, v := range serving {
			inNew[v] = false
			if !sess.Contains(v) {
				sess.Flip(v)
			}
		}
		prevServing = append(prevServing[:0], serving...)
		sess.Commit() // nothing speculates here: don't let the log grow per slot

		na := sess.AliveCount()
		covered := sess.CoveredCount()
		// A dead non-empty network is a violation, not "0 of 0 covered":
		// vacuous equality used to inflate CoveredSlots and AchievedLifetime.
		// The slot loop still continues — a later delta can provision fresh
		// alive nodes, and CoveredSlots counts non-contiguous coverage.
		dominated := covered == na && (na > 0 || curG.N() == 0)
		if dominated {
			res.CoveredSlots++
			if res.FirstViolation == -1 {
				res.AchievedLifetime = t + 1
			}
		} else if res.FirstViolation == -1 {
			res.FirstViolation = t
		}
		cov := 0.0
		if na > 0 {
			cov = float64(covered) / float64(na)
		}
		opt.Hooks.Emit(obs.SlotEnd(t, len(serving), na, cov))

		res.Slots = t + 1
		pos++
	}
	return res, nil
}
