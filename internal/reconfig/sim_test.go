package reconfig

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestSimulateQuietRunMatchesSchedule(t *testing.T) {
	g := graph.NewFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	budgets := []int{5, 5, 5}
	s := sched.Replan(g, budgets, 1, nil)
	res, err := Simulate(g, s, budgets, nil, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := s.Lifetime()
	if res.AchievedLifetime != want || res.CoveredSlots != want || res.FirstViolation != -1 {
		t.Fatalf("quiet run: %+v, want achieved=covered=%d, no violation", res, want)
	}
	usage := s.Usage(3)
	spent := 0
	for _, u := range usage {
		spent += u
	}
	if res.EnergySpent != spent {
		t.Fatalf("energy spent %d, want %d", res.EnergySpent, spent)
	}
	if res.Reconfigs != 0 || res.WakeMisses != 0 || res.OverlapEnergy != 0 {
		t.Fatalf("quiet run recorded reconfig activity: %+v", res)
	}
}

func TestSimulateAppliesChangesAndChaos(t *testing.T) {
	g := gen.GNP(20, 0.3, rng.New(9))
	budgets := make([]int, 20)
	for v := range budgets {
		budgets[v] = 6
	}
	s := sched.Replan(g, budgets, 1, nil)
	events := []Change{
		{At: 2, Delta: randomValidDelta(g, rng.New(1))},
	}
	mem := &obs.Memory{}
	res, err := Simulate(g, s, budgets, events, SimOptions{
		Overlap: 2,
		Chaos: chaos.Plan{
			Crashes: energy.FailurePlan{{Time: 1, Node: 3}},
			Leaks:   []chaos.Leak{{Time: 3, Node: 5, Amount: 2}},
		},
		Hooks: obs.Hooks{Trace: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs != 1 {
		t.Fatalf("reconfigs = %d, want 1", res.Reconfigs)
	}
	if res.Deaths != 1 || mem.Count(obs.EvCrash) != 1 {
		t.Fatalf("deaths = %d, crash events = %d, want 1 each", res.Deaths, mem.Count(obs.EvCrash))
	}
	if mem.Count(obs.EvLeak) != 1 || mem.Count(obs.EvReconfig) != 1 {
		t.Fatalf("leak events = %d, reconfig events = %d, want 1 each",
			mem.Count(obs.EvLeak), mem.Count(obs.EvReconfig))
	}
	if res.Slots == 0 || res.CoveredSlots == 0 {
		t.Fatalf("nothing simulated: %+v", res)
	}
}

func TestSimulateChaosOnRemovedNodeDropped(t *testing.T) {
	// The delta removes node 3 (the highest ID is n-1 = 3); a later crash of
	// original node 3 must be dropped, not mis-target its replacement.
	g := graph.NewFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	budgets := []int{6, 6, 6, 6}
	s := sched.Replan(g, budgets, 1, nil)
	events := []Change{{At: 1, Delta: graph.Delta{
		RemoveNodes: []int{3},
		AddNodes:    1,
		NewBudgets:  []int{6},
		AddEdges:    [][2]int{{0, 3}, {2, 3}},
	}}}
	res, err := Simulate(g, s, budgets, events, SimOptions{
		Chaos: chaos.Plan{Crashes: energy.FailurePlan{{Time: 4, Node: 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deaths != 0 {
		t.Fatalf("crash of a removed original node must be dropped, got %d deaths", res.Deaths)
	}
}

func TestSimulateValidation(t *testing.T) {
	g := graph.NewFromEdges(2, [][2]int{{0, 1}})
	s := sched.Replan(g, []int{2, 2}, 1, nil)
	if _, err := Simulate(nil, s, nil, nil, SimOptions{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Simulate(g, nil, []int{2, 2}, nil, SimOptions{}); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := Simulate(g, s, []int{2}, nil, SimOptions{}); err == nil {
		t.Error("short budgets accepted")
	}
	if _, err := Simulate(g, s, []int{2, 2}, nil, SimOptions{WakeLoss: 1.5}); err == nil {
		t.Error("wake loss 1.5 accepted")
	}
	if _, err := Simulate(g, s, []int{2, 2}, nil, SimOptions{WakeLoss: -0.1}); err == nil {
		t.Error("negative wake loss accepted")
	}
}

// TestSimulatePlannedBeatsNaive is the E24 claim at test scale: under
// identical seeded churn and wake loss, overlap-planned reconfiguration
// achieves at least the lifetime (slots until first lost slot) of naive
// re-solve-and-swap in every scenario, and strictly more in aggregate —
// naive installs lose their first slots to wake misses, while the overlap
// window keeps the outgoing dominators awake across exactly those slots.
func TestSimulatePlannedBeatsNaive(t *testing.T) {
	plannedTotal, naiveTotal := 0, 0
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed * 101)
		g := gen.GNP(40, 0.15, src)
		budgets := make([]int, 40)
		for v := range budgets {
			budgets[v] = 14
		}
		s := sched.Replan(g, budgets, 1, nil)
		// Changes are generated against the evolving ID space, but
		// randomValidDelta only needs N, which every change preserves.
		esrc := rng.New(seed * 777)
		events := []Change{
			{At: 3, Delta: randomValidDelta(g, esrc)},
			{At: 6, Delta: randomValidDelta(g, esrc)},
			{At: 9, Delta: randomValidDelta(g, esrc)},
		}
		plan := chaos.Plan{Crashes: energy.FailurePlan{
			{Time: 4, Node: int(seed) % 40},
			{Time: 8, Node: int(seed*13) % 40},
		}}
		run := func(overlap int) SimResult {
			res, err := Simulate(g, s, budgets, events, SimOptions{
				Overlap:  overlap,
				Seed:     seed,
				WakeLoss: 0.6,
				Chaos:    plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		planned := run(2)
		naive := run(0)
		if planned.Reconfigs != 3 || naive.Reconfigs != 3 {
			t.Fatalf("seed %d: reconfigs planned=%d naive=%d, want 3", seed, planned.Reconfigs, naive.Reconfigs)
		}
		if naive.OverlapEnergy != 0 {
			t.Fatalf("seed %d: naive arm charged overlap energy %d", seed, naive.OverlapEnergy)
		}
		if planned.AchievedLifetime < naive.AchievedLifetime {
			t.Errorf("seed %d: planned lifetime %d < naive %d", seed, planned.AchievedLifetime, naive.AchievedLifetime)
		}
		plannedTotal += planned.AchievedLifetime
		naiveTotal += naive.AchievedLifetime
	}
	if plannedTotal <= naiveTotal {
		t.Fatalf("aggregate achieved lifetime: planned %d <= naive %d", plannedTotal, naiveTotal)
	}
}

func TestSimulateDeadNetworkNotCovered(t *testing.T) {
	// Regression: once every node was dead, covered == na held vacuously
	// (0 == 0), so CoveredSlots and AchievedLifetime kept growing for the
	// rest of the schedule. A dead non-empty network must score as a
	// violation.
	g := gen.Complete(3)
	budgets := []int{5, 5, 5}
	s := sched.Replan(g, budgets, 1, nil)
	res, err := Simulate(g, s, budgets, nil, SimOptions{
		Chaos: chaos.Plan{Crashes: energy.FailurePlan{
			{Time: 2, Node: 0}, {Time: 2, Node: 1}, {Time: 2, Node: 2},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deaths != 3 {
		t.Fatalf("deaths = %d, want 3", res.Deaths)
	}
	if res.AchievedLifetime != 2 {
		t.Fatalf("AchievedLifetime = %d, want 2 (slots before the wipeout)", res.AchievedLifetime)
	}
	if res.FirstViolation != 2 {
		t.Fatalf("FirstViolation = %d, want 2", res.FirstViolation)
	}
	if res.CoveredSlots != 2 {
		t.Fatalf("CoveredSlots = %d, want 2 — dead slots must not count as covered", res.CoveredSlots)
	}
}

func TestSimulateDeadNodesSkipWakeDraws(t *testing.T) {
	// Regression: the informed/wake-loss check ran before the alive check,
	// so a dead scheduled node consumed a wake-loss RNG draw and could count
	// a WakeMiss. Path 0-1-2: the install at t=1 leaves nodes 0 and 2 asleep
	// (uninformed); both crash at t=2, before their phase starts. When their
	// phase arrives they are dead — no draw, no WakeMiss, whatever the seed.
	g := gen.Path(3)
	budgets := []int{6, 6, 6}
	s := sched.Replan(g, budgets, 1, nil)
	events := []Change{{At: 1, Delta: graph.Delta{}}}
	res, err := Simulate(g, s, budgets, events, SimOptions{
		WakeLoss: 0.9,
		Seed:     7,
		Chaos: chaos.Plan{Crashes: energy.FailurePlan{
			{Time: 2, Node: 0}, {Time: 2, Node: 2},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs != 1 || res.Deaths != 2 {
		t.Fatalf("reconfigs = %d, deaths = %d, want 1 and 2", res.Reconfigs, res.Deaths)
	}
	if res.WakeMisses != 0 {
		t.Fatalf("WakeMisses = %d, want 0 — only dead nodes were ever uninformed at their slot", res.WakeMisses)
	}
	// Control arm: with nobody crashing, the same uninformed nodes do reach
	// their slots and the wake-loss model must fire — proving the arm above
	// exercises the informed path rather than passing vacuously.
	ctl, err := Simulate(g, s, budgets, events, SimOptions{WakeLoss: 0.9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.WakeMisses == 0 {
		t.Fatal("control arm recorded no wake misses — the regression test is vacuous")
	}
}
