package reconfig

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/solver"
)

// assertInvariant is the slot-by-slot acceptance check of the issue: every
// positive-duration phase the planner emitted must k-dominate the alive
// nodes, and cumulative usage must stay within the plan's budgets. It runs
// on every plan, degraded or not — a truncated violation plan's surviving
// prefix must still hold the invariant.
func assertInvariant(t *testing.T, p *Plan, k int) {
	t.Helper()
	ck := domset.NewChecker(p.Graph)
	usage := make([]int, p.Graph.N())
	for i, ph := range p.Phases {
		if ph.Duration <= 0 {
			t.Fatalf("phase %d has duration %d", i, ph.Duration)
		}
		if !ck.IsKDominating(ph.Set, k, p.Alive) {
			t.Fatalf("phase %d set %v is not %d-dominating (alive %v)", i, ph.Set, k, p.Alive)
		}
		for _, v := range ph.Set {
			usage[v] += ph.Duration
			if usage[v] > p.Budgets[v] {
				t.Fatalf("phase %d overdraws node %d: usage %d > budget %d",
					i, v, usage[v], p.Budgets[v])
			}
		}
	}
}

func TestComputeCleanOverlap(t *testing.T) {
	// Path 0-1-2; node 1 dominates alone. The delta adds a pendant node 3 on
	// node 0, so the incoming schedule must re-cover while the outgoing
	// dominator {1} stays awake through the overlap window.
	g := graph.NewFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	budgets := []int{5, 5, 5}
	s := sched.Replan(g, budgets, 1, nil)
	if s.Lifetime() == 0 {
		t.Fatal("no initial schedule")
	}
	at := 1
	residual := make([]int, 3)
	used := s.UsagePrefix(3, at)
	for v := range residual {
		residual[v] = budgets[v] - used[v]
	}
	outgoing := s.ActiveAt(at)

	mem := &obs.Memory{}
	p, err := Compute(instance.New(g, residual), Request{
		Old: s, At: at,
		Delta: graph.Delta{
			AddNodes:   1,
			NewBudgets: []int{5},
			AddEdges:   [][2]int{{0, 3}},
		},
		Overlap: 2,
		Hooks:   obs.Hooks{Trace: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Violation || p.Degraded {
		t.Fatalf("want clean plan, got degraded=%v violation=%v", p.Degraded, p.Violation)
	}
	if p.Overlap != 2 {
		t.Fatalf("overlap = %d, want 2", p.Overlap)
	}
	if p.Graph.N() != 4 || len(p.Budgets) != 4 {
		t.Fatalf("post-delta world n=%d budgets=%v", p.Graph.N(), p.Budgets)
	}
	assertInvariant(t, p, 1)

	// The outgoing dominators must be awake throughout the overlap window.
	slot := 0
	for _, ph := range p.Phases {
		for d := 0; d < ph.Duration && slot < p.Overlap; d++ {
			for _, o := range outgoing {
				found := false
				for _, v := range ph.Set {
					if v == p.Mapping[o] {
						found = true
					}
				}
				if !found {
					t.Fatalf("overlap slot %d set %v misses outgoing node %d", slot, ph.Set, o)
				}
			}
			slot++
		}
	}
	if mem.Count(obs.EvReconfig) != 1 {
		t.Fatalf("want 1 reconfig event, got %d", mem.Count(obs.EvReconfig))
	}
	if ev := mem.Events[len(mem.Events)-1]; ev.Name != "clean" || ev.A != p.Overlap || ev.B != p.OverlapEnergy {
		t.Fatalf("reconfig event %+v does not match plan", ev)
	}
}

func TestComputeDegradedLadder(t *testing.T) {
	// Star: center 0 serves first; the delta zeroes the center's remaining
	// budget, so no outgoing node can pay for any overlap and the ladder
	// bottoms out at a pure swap, flagged degraded.
	g := graph.NewFromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	budgets := []int{10, 3, 3, 3, 3}
	s := sched.Replan(g, budgets, 1, nil)
	at := 2
	residual := budgets // center still has 8 left, but the delta zeroes it
	mem := &obs.Memory{}
	p, err := Compute(instance.New(g, residual), Request{
		Old: s, At: at,
		Delta:   graph.Delta{SetBudgets: []graph.BudgetUpdate{{Node: 0, Budget: 0}}},
		Overlap: 2,
		Hooks:   obs.Hooks{Trace: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Violation {
		t.Fatal("unexpected violation")
	}
	if !p.Degraded || p.Overlap != 0 {
		t.Fatalf("want degraded pure swap, got degraded=%v overlap=%d", p.Degraded, p.Overlap)
	}
	if p.Lifetime() == 0 {
		t.Fatal("leaves can still serve; want a non-empty swap schedule")
	}
	assertInvariant(t, p, 1)
	if ev := mem.Events[len(mem.Events)-1]; ev.Name != "degraded" {
		t.Fatalf("want degraded event, got %+v", ev)
	}
}

func TestComputeSolverFallback(t *testing.T) {
	// A non-greedy solver with an alive mask cannot run through the WHP
	// driver; the planner falls back to Replan and flags the plan degraded.
	g := graph.NewFromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	s := sched.Replan(g, []int{4, 4, 4}, 1, nil)
	p, err := Compute(instance.New(g, []int{4, 4, 4}), Request{
		Old: s, At: 0,
		Alive:  []bool{true, true, true},
		Solver: solver.NameUniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Violation || !p.Degraded {
		t.Fatalf("want degraded fallback, got degraded=%v violation=%v", p.Degraded, p.Violation)
	}
	if p.Lifetime() == 0 {
		t.Fatal("fallback produced no schedule")
	}
	assertInvariant(t, p, 1)
}

func TestComputeSolverPrimary(t *testing.T) {
	// Uniform budgets, no alive mask, pure swap: the requested randomized
	// solver runs as the primary and the plan is clean.
	g := gen.GNP(24, 0.3, rng.New(5))
	budgets := make([]int, 24)
	for v := range budgets {
		budgets[v] = 6
	}
	s := sched.Replan(g, budgets, 1, nil)
	p, err := Compute(instance.New(g, budgets), Request{
		Old: s, At: 0,
		Solver: solver.NameUniform, Seed: 11, Tries: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Violation || p.Degraded {
		t.Fatalf("want clean primary-solver plan, got degraded=%v violation=%v", p.Degraded, p.Violation)
	}
	assertInvariant(t, p, 1)
}

func TestComputeViolationWhenInfeasible(t *testing.T) {
	g := graph.NewFromEdges(2, [][2]int{{0, 1}})
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 1}}}
	mem := &obs.Memory{}
	p, err := Compute(instance.New(g, []int{0, 0}), Request{
		Old: s, At: 1,
		Overlap: 2,
		Hooks:   obs.Hooks{Trace: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Violation || len(p.Phases) != 0 {
		t.Fatalf("exhausted network must flag a violation: %+v", p)
	}
	if ev := mem.Events[len(mem.Events)-1]; ev.Name != "violation" {
		t.Fatalf("want violation event, got %+v", ev)
	}
}

func TestComputeVacuousWhenAllDead(t *testing.T) {
	g := graph.NewFromEdges(2, [][2]int{{0, 1}})
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 1}}}
	p, err := Compute(instance.New(g, []int{3, 3}), Request{
		Old: s, At: 0,
		Alive:   []bool{false, false},
		Overlap: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Violation {
		t.Fatal("no alive node needs coverage; empty plan is not a violation")
	}
	if len(p.Phases) != 0 {
		t.Fatalf("want empty plan, got %v", p.Phases)
	}
}

func TestComputeRequestErrors(t *testing.T) {
	g := graph.NewFromEdges(2, [][2]int{{0, 1}})
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 2}}}
	ok := Request{Old: s, At: 0}
	residual := []int{1, 1}
	cases := []struct {
		name string
		mut  func(*Request)
		res  []int // instance budgets override (nil = residual)
		want string
	}{
		{"nil old", func(r *Request) { r.Old = nil }, nil, "nil old schedule"},
		{"negative at", func(r *Request) { r.At = -1 }, nil, "must be >= 0"},
		{"negative overlap", func(r *Request) { r.Overlap = -1 }, nil, "overlap"},
		{"alive length", func(r *Request) { r.Alive = []bool{true} }, nil, "alive flags"},
		{"unknown solver", func(r *Request) { r.Solver = "nope" }, nil, "unknown algorithm"},
		{"bad delta", func(r *Request) { r.Delta = graph.Delta{RemoveNodes: []int{9}} }, nil, "out of range"},
		{"bad residual", func(r *Request) {}, []int{1}, "budgets for"},
	}
	for _, tc := range cases {
		req := ok
		tc.mut(&req)
		res := residual
		if tc.res != nil {
			res = tc.res
		}
		_, err := Compute(instance.New(g, res), req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := Compute(nil, ok); err == nil || !strings.Contains(err.Error(), "nil instance") {
		t.Errorf("nil instance: err = %v, want substring %q", err, "nil instance")
	}
}

func TestComputeCancel(t *testing.T) {
	g := graph.NewFromEdges(2, [][2]int{{0, 1}})
	s := &core.Schedule{Phases: []core.Phase{{Set: []int{0}, Duration: 2}}}
	_, err := Compute(instance.New(g, []int{1, 1}), Request{
		Old: s, At: 0,
		Cancel: func() bool { return true },
	})
	if err != solver.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// randomValidDelta builds a delta that is valid against g by construction:
// drop the highest-ID node, add a replacement wired to random survivors, and
// revise one surviving budget.
func randomValidDelta(g *graph.Graph, src *rng.Source) graph.Delta {
	n := g.N()
	if n < 4 {
		return graph.Delta{}
	}
	d := graph.Delta{
		RemoveNodes: []int{n - 1},
		AddNodes:    1,
		NewBudgets:  []int{1 + src.Intn(5)},
	}
	// Post-delta: survivors keep IDs 0..n-2, the added node is n-1 again and
	// starts isolated, so edges to it cannot collide.
	for _, v := range src.Perm(n - 1)[:3] {
		d.AddEdges = append(d.AddEdges, [2]int{v, n - 1})
	}
	d.SetBudgets = []graph.BudgetUpdate{{Node: src.Intn(n - 1), Budget: src.Intn(6)}}
	return d
}

// TestInvariantAcrossRandomTransitions is the acceptance-criteria test:
// across randomized graphs, deltas, cutover points, alive masks, overlap
// requests, and solver choices — including every degraded path — domination
// is never lost in any phase the planner emits.
func TestInvariantAcrossRandomTransitions(t *testing.T) {
	src := rng.New(42)
	solvers := []string{"", solver.NameGreedy, solver.NameUniform, solver.NameGeneral}
	for trial := 0; trial < 40; trial++ {
		n := 8 + src.Intn(24)
		g := gen.GNP(n, 0.25, src.Split())
		budgets := make([]int, n)
		for v := range budgets {
			budgets[v] = 1 + src.Intn(6)
		}
		k := 1
		if trial%5 == 4 {
			k = 2
		}
		s := sched.Replan(g, budgets, k, nil)
		at := src.Intn(s.Lifetime() + 2)
		used := s.UsagePrefix(n, at)
		residual := make([]int, n)
		for v := range residual {
			residual[v] = budgets[v] - used[v]
		}
		var alive []bool
		if trial%3 == 1 {
			alive = make([]bool, n)
			for v := range alive {
				alive[v] = src.Float64() > 0.15
			}
		}
		req := Request{
			Old: s, At: at, Alive: alive,
			Delta:   randomValidDelta(g, src),
			Overlap: src.Intn(4),
			Solver:  solvers[trial%len(solvers)],
			Seed:    uint64(trial), Tries: 5,
		}
		p, err := Compute(instance.New(g, residual).WithK(k), req)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertInvariant(t, p, k)
		if p.Overlap > req.Overlap {
			t.Fatalf("trial %d: achieved overlap %d exceeds requested %d", trial, p.Overlap, req.Overlap)
		}
		if !p.Violation && !p.Degraded && p.Overlap < req.Overlap {
			t.Fatalf("trial %d: shrunk overlap %d < %d not flagged degraded", trial, p.Overlap, req.Overlap)
		}
	}
}
