// Package reconfig plans zero-downtime schedule transitions for dynamic
// graphs: given a running schedule at time t, a typed graph/budget delta
// (graph.Delta), and the residual energies the old schedule has left behind,
// Compute produces a transition plan whose first slots are overlap windows —
// the outgoing dominator set stays awake alongside the incoming schedule, its
// extra slots charged against residual budgets — so domination is never lost
// across the cutover even when sleeping nodes miss the install (the wake-loss
// model of Simulate).
//
// The planner degrades gracefully instead of failing: when budgets cannot
// afford the requested overlap it walks a ladder of shorter windows down to a
// pure swap, and when the requested solver cannot run on the degraded
// instance (non-uniform residuals, dead nodes) it falls back to the same
// greedy recruitment `heal` escalates to (sched.Replan). Every emitted plan
// is verified slot by slot with domset.Checker before it is returned; a plan
// that would lose domination is truncated and flagged as a violation rather
// than handed out silently.
//
// This is the repo's answer to ROADMAP open item 4, in the spirit of
// Censor-Hillel & Rabie's reconfiguration schedules (arXiv:1810.02106):
// transitions that preserve the invariant at every intermediate step, not
// just at the endpoints.
package reconfig

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/solver"
)

// DefaultOverlap is the overlap window (in slots) the service layer requests
// when the client does not specify one: long enough that a node missing one
// wake-up is still covered by the outgoing set, short enough to cost little
// residual energy.
const DefaultOverlap = 2

// Request describes one reconfiguration: the running schedule, where it is,
// what changes, and how the incoming schedule should be computed.
type Request struct {
	// Old is the running schedule, in pre-delta node IDs.
	Old *core.Schedule
	// At is the slot (0-based, in Old's timeline) the transition plan takes
	// over from; slots [0, At) of Old are already spent. At past Old's
	// lifetime means the old schedule is exhausted — nothing is awake to
	// overlap with.
	At int
	// Alive, when non-nil, marks pre-delta nodes that are still up. Nodes
	// added by the delta are always alive.
	Alive []bool
	// Delta is the structural/budget change to apply.
	Delta graph.Delta
	// Overlap is the requested overlap window in slots; the planner degrades
	// to shorter windows when residuals cannot pay for it. 0 requests a pure
	// swap; negative is an error.
	Overlap int
	// Solver names the registry algorithm for the incoming schedule. Empty
	// means solver.NameGreedy. Algorithms that cannot run on the post-delta
	// instance (non-uniform residuals, dead nodes) fall back to
	// sched.Replan, flagging the plan degraded.
	Solver string
	// Incoming, when non-nil, is a precomputed incoming schedule for the
	// post-delta instance (post-delta node IDs), and the solver ladder is
	// skipped entirely — this is how the sharded serving path re-solves only
	// the shards a delta touched and hands the stitched result in. The
	// overlap ladder still runs: contributors are the outgoing nodes that
	// can afford extra awake slots beyond what Incoming already charges
	// them, and the assembled plan is verified slot by slot as usual.
	Incoming *core.Schedule
	// Seed, Tries drive the randomized solvers; ignored by greedy.
	Seed  uint64
	Tries int
	// Cancel, polled between ladder rungs and solver retries, aborts with
	// solver.ErrCanceled.
	Cancel func() bool
	// Hooks receives one obs.Reconfig event per Compute call.
	Hooks obs.Hooks
}

// Plan is a verified transition: the post-delta world plus the schedule that
// carries it, whose leading Overlap slots keep the affordable part of the
// outgoing set awake alongside the incoming sets.
type Plan struct {
	// Graph and Budgets are the post-delta instance the plan runs on;
	// Budgets are residual capacities at the moment of cutover, and the
	// plan's total usage never exceeds them.
	Graph   *graph.Graph
	Budgets []int
	// Alive marks post-delta nodes that are up (nil = all).
	Alive []bool
	// Mapping is the old→new node ID mapping of the delta (-1 = removed),
	// for carrying per-node state across the transition.
	Mapping []int
	// Phases is the transition schedule, in post-delta IDs.
	Phases []core.Phase
	// Overlap is the achieved overlap window in slots (<= requested).
	Overlap int
	// OverlapEnergy is the total extra slots charged to outgoing nodes that
	// were kept awake beyond what the incoming schedule asked of them.
	OverlapEnergy int
	// Degraded reports that the plan fell short of the request: a shorter
	// overlap window than asked, or a fallback from the requested solver to
	// greedy recruitment.
	Degraded bool
	// Violation reports that domination could not be preserved: the ladder
	// bottomed out with no feasible incoming schedule for a network that
	// still has alive nodes (Phases is then empty), or slot-by-slot
	// verification truncated the plan.
	Violation bool
}

// Schedule wraps the transition phases as a core.Schedule.
func (p *Plan) Schedule() *core.Schedule { return &core.Schedule{Phases: p.Phases} }

// Lifetime returns the transition schedule's total duration.
func (p *Plan) Lifetime() int { return p.Schedule().Lifetime() }

// mode is the obs.Reconfig outcome label.
func (p *Plan) mode() string {
	switch {
	case p.Violation:
		return "violation"
	case p.Degraded:
		return "degraded"
	}
	return "clean"
}

// Compute plans the transition. The algorithm:
//
//  1. Apply the delta, producing the post-delta graph, residual budgets, and
//     ID mapping; remap the alive mask (added nodes are alive).
//  2. The outgoing set O is the old schedule's active set at slot At,
//     remapped and filtered to alive survivors.
//  3. Walk the overlap ladder w = Overlap … 0: the members of O that can
//     afford w extra slots are the contributors; charge them w upfront,
//     solve the incoming schedule against the charged residuals, and if one
//     exists, union the contributors into its first w slots. Charging before
//     solving is what makes the union feasible: overlap usage plus incoming
//     usage cannot exceed the residual budget.
//  4. Verify the assembled plan slot by slot with domset.Checker (every
//     positive phase k-dominates the alive nodes, usage within budgets);
//     truncate and flag a violation if verification ever fails.
//  5. If even w = 0 admits no incoming schedule, the plan is empty — a
//     violation unless no alive node remains to need coverage.
//
// Errors are reserved for malformed requests (bad delta, unknown solver,
// negative overlap) and cancellation; infeasibility is reported in the Plan,
// mirroring how core treats infeasible-but-well-formed instances.
//
// inst is the pre-delta instance at the moment of cutover: its Budgets are
// the residual energies the old schedule has left behind (typically
// original budgets minus Old.UsagePrefix(n, At)), and its tolerance is the
// domination requirement the transition must preserve. The delta's budget
// updates revise those residuals.
func Compute(inst *instance.Instance, req Request) (*Plan, error) {
	if inst == nil {
		return nil, fmt.Errorf("reconfig: nil instance")
	}
	if req.Old == nil {
		return nil, fmt.Errorf("reconfig: nil old schedule")
	}
	if req.At < 0 {
		return nil, fmt.Errorf("reconfig: at = %d must be >= 0", req.At)
	}
	if req.Overlap < 0 {
		return nil, fmt.Errorf("reconfig: overlap = %d must be >= 0", req.Overlap)
	}
	g := inst.Graph
	if g != nil && req.Alive != nil && len(req.Alive) != g.N() {
		return nil, fmt.Errorf("reconfig: %d alive flags for %d nodes", len(req.Alive), g.N())
	}
	k := inst.Tolerance()
	solverName := req.Solver
	if solverName == "" {
		solverName = solver.NameGreedy
	}
	if _, err := solver.Resolve(solverName); err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}

	g2, budgets2, mapping, err := req.Delta.Apply(g, inst.Budgets)
	if err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}

	var alive2 []bool
	if req.Alive != nil {
		alive2 = make([]bool, g2.N())
		for i := range alive2 {
			alive2[i] = true // added nodes
		}
		for v, m := range mapping {
			if m >= 0 {
				alive2[m] = req.Alive[v]
			}
		}
	}

	// The outgoing set: whoever the old schedule has awake at the cutover
	// slot, remapped into the new ID space and filtered to alive survivors.
	var outgoing []int
	for _, v := range req.Old.ActiveAt(req.At) {
		if v < 0 || v >= len(mapping) || mapping[v] < 0 {
			continue
		}
		nv := mapping[v]
		if alive2 != nil && !alive2[nv] {
			continue
		}
		outgoing = append(outgoing, nv)
	}
	sort.Ints(outgoing)

	plan := &Plan{Graph: g2, Budgets: budgets2, Alive: alive2, Mapping: mapping}
	ck := domset.NewChecker(g2)

	// With a precomputed incoming schedule, a contributor's headroom is what
	// its budget leaves beyond the incoming schedule's own charge.
	var preUsage []int
	if req.Incoming != nil {
		preUsage = req.Incoming.Usage(g2.N())
	}

	fellBack := false
	for w := req.Overlap; w >= 0; w-- {
		if req.Cancel != nil && req.Cancel() {
			return nil, solver.ErrCanceled
		}
		// Contributors: outgoing nodes that can afford w extra awake slots.
		var contributors []int
		for _, v := range outgoing {
			headroom := budgets2[v]
			if preUsage != nil {
				headroom -= preUsage[v]
			}
			if headroom >= w {
				contributors = append(contributors, v)
			}
		}
		if w > 0 && len(contributors) == 0 {
			continue
		}
		charged := append([]int(nil), budgets2...)
		for _, v := range contributors {
			charged[v] -= w
		}

		incoming, fb := req.Incoming, false
		if incoming == nil {
			var err error
			incoming, fb, err = solveIncoming(g2, charged, k, inst.Hint(), alive2, solverName, req)
			if err != nil {
				return nil, err
			}
		}
		if incoming.Lifetime() == 0 {
			continue
		}
		fellBack = fellBack || fb

		achieved := w
		if lt := incoming.Lifetime(); achieved > lt {
			achieved = lt
		}
		plan.Phases, plan.OverlapEnergy = weave(incoming, contributors, achieved)
		plan.Overlap = achieved
		plan.Degraded = fellBack || achieved < req.Overlap
		break
	}

	if plan.Phases == nil {
		// Ladder exhausted: no incoming schedule even as a pure swap. If
		// nobody alive remains, the empty plan is vacuously fine; otherwise
		// domination is lost and we say so.
		plan.Violation = aliveCount(g2, alive2) > 0
	} else if bad := verifyIndex(ck, plan.Phases, budgets2, k, alive2); bad >= 0 {
		// Safety net: construction should make this unreachable, but a plan
		// that loses domination must never leave this package unflagged.
		plan.Phases = plan.Phases[:bad]
		plan.Violation = true
	}

	req.Hooks.Emit(obs.Reconfig(req.At, plan.Overlap, plan.OverlapEnergy, plan.mode()))
	return plan, nil
}

// solveIncoming computes the incoming schedule against the charged residual
// budgets. The greedy path is sched.Replan — the only solver that understands
// per-node residuals and alive masks natively. Registry solvers run through
// the WHP driver when the instance allows it; when it does not (dead nodes,
// or the solver rejects the charged budget shape), the planner falls back to
// Replan and reports the fallback so the plan is flagged degraded.
func solveIncoming(g *graph.Graph, charged []int, k int, hint instance.Hint,
	alive []bool, name string, req Request) (*core.Schedule, bool, error) {
	if name != solver.NameGreedy && alive == nil {
		// The pre-delta hint rides along as classification trial ordering
		// only; the post-delta instance re-verifies from scratch.
		post := instance.New(g, charged).WithK(k).WithHint(hint)
		spec := solver.Spec{Name: name}
		opt := solver.Options{
			Tries:  req.Tries,
			Cancel: req.Cancel,
			Hooks:  req.Hooks,
			Src:    rng.New(req.Seed),
		}
		s, err := solver.Solve(post, spec, opt)
		if err == solver.ErrCanceled {
			return nil, false, err
		}
		if err == nil && s.Lifetime() > 0 {
			return s, false, nil
		}
		// Validation rejections (uniform-budget solvers on charged
		// residuals) and empty draws degrade to greedy recruitment.
	}
	fellBack := name != solver.NameGreedy
	return sched.Replan(g, charged, k, alive), fellBack, nil
}

// weave unions the contributors into the first overlap slots of the incoming
// schedule, splitting phases at the window boundary, and returns the
// transition phases plus the exact overlap energy: every slot in the window
// charges one unit to each contributor the incoming set did not already
// schedule (members of the incoming set pay through its own usage).
func weave(incoming *core.Schedule, contributors []int, overlap int) ([]core.Phase, int) {
	phases := make([]core.Phase, 0, len(incoming.Phases)+1)
	energy := 0
	remaining := overlap
	for _, p := range incoming.Phases {
		if p.Duration <= 0 {
			continue
		}
		d := p.Duration
		if remaining > 0 {
			od := d
			if od > remaining {
				od = remaining
			}
			merged, extra := unionSet(p.Set, contributors)
			phases = append(phases, core.Phase{Set: merged, Duration: od})
			energy += od * extra
			remaining -= od
			d -= od
		}
		if d > 0 {
			phases = append(phases, core.Phase{Set: p.Set, Duration: d})
		}
	}
	return phases, energy
}

// unionSet returns the sorted union of a phase set and the contributors,
// plus how many contributors were not already in the set.
func unionSet(set, contributors []int) ([]int, int) {
	in := make(map[int]bool, len(set))
	out := append([]int(nil), set...)
	for _, v := range set {
		in[v] = true
	}
	extra := 0
	for _, v := range contributors {
		if !in[v] {
			out = append(out, v)
			extra++
		}
	}
	sort.Ints(out)
	return out, extra
}

// verifyIndex checks the plan slot by slot: every positive-duration phase
// must k-dominate the alive nodes and cumulative usage must stay within
// budgets. It returns the index of the first offending phase, or -1.
//
// Consecutive phases of an overlap ladder differ only in the contributor
// tail, so instead of a full fold per phase the check keeps one incremental
// session and flips the symmetric difference between phases — O(changed
// nodes · deg) per step after the first fold.
func verifyIndex(ck *domset.Checker, phases []core.Phase, budgets []int, k int, alive []bool) int {
	usage := make([]int, len(budgets))
	inNext := make([]bool, len(budgets))
	var sess *domset.Session
	var members []int
	for i, p := range phases {
		if p.Duration < 0 {
			return i
		}
		if p.Duration == 0 {
			continue
		}
		// Range-check before touching inNext/session with these IDs.
		for _, v := range p.Set {
			if v < 0 || v >= len(budgets) {
				return i
			}
			usage[v] += p.Duration
			if usage[v] > budgets[v] {
				return i
			}
		}
		if sess == nil {
			sess = ck.Begin(p.Set, k, alive)
		} else {
			for _, v := range p.Set {
				inNext[v] = true
			}
			members = sess.AppendMembers(members[:0])
			for _, v := range members {
				if !inNext[v] {
					sess.Flip(v)
				}
			}
			for _, v := range p.Set {
				inNext[v] = false
				if !sess.Contains(v) {
					sess.Flip(v)
				}
			}
			sess.Commit() // forward-only walk: no rollback, keep the log flat
		}
		if !sess.IsKDominating() {
			return i
		}
	}
	return -1
}

// aliveCount returns how many nodes are up (all, when alive is nil).
func aliveCount(g *graph.Graph, alive []bool) int {
	if alive == nil {
		return g.N()
	}
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	return n
}
