package exact

import (
	"math"
	"testing"

	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/rng"
)

func TestMinimumWeightExactMatchesCardinalityCase(t *testing.T) {
	// Unit weights: the minimum-weight DS is a minimum-cardinality DS.
	src := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(12, 0.3, src)
		w := make([]float64, g.N())
		for i := range w {
			w[i] = 1
		}
		set, weight := domset.MinimumWeightExact(g, w, 1)
		card := domset.MinimumExact(g, nil, nil)
		if int(math.Round(weight)) != len(card) || len(set) != len(card) {
			t.Fatalf("trial %d: weighted min %v (%.1f) vs cardinality min %d",
				trial, set, weight, len(card))
		}
		if !domset.IsDominating(g, set, nil) {
			t.Fatalf("trial %d: weighted result not dominating", trial)
		}
	}
}

func TestMinimumWeightExactPrefersCheapNodes(t *testing.T) {
	// Star: center weight 10, leaves weight 1 each. For a star with 4
	// leaves, the all-leaves set costs 4 < 10, so the center is avoided.
	g := gen.Star(5)
	w := []float64{10, 1, 1, 1, 1}
	set, weight := domset.MinimumWeightExact(g, w, 1)
	if weight != 4 || len(set) != 4 {
		t.Fatalf("set %v weight %.1f, want the 4 leaves at weight 4", set, weight)
	}
}

func TestMinimumWeightExactInfeasibleK(t *testing.T) {
	g := gen.Path(3)
	set, weight := domset.MinimumWeightExact(g, []float64{1, 1, 1}, 5)
	if set != nil || !math.IsInf(weight, 1) {
		t.Fatalf("infeasible k should yield (nil, +Inf), got (%v, %v)", set, weight)
	}
}

func TestColumnGenerationMatchesFullEnumeration(t *testing.T) {
	// On small graphs the CG optimum must equal the full-enumeration LP.
	src := rng.New(2)
	for trial := 0; trial < 8; trial++ {
		g := gen.GNP(10, 0.35, src)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + src.Intn(3)
		}
		full, _, _, err := Fractional(g, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		cg, _, _, iters, err := FractionalCG(g, b, 1, 500)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(full-cg) > 1e-5*(1+full) {
			t.Fatalf("trial %d: full %v vs CG %v (%d iters)", trial, full, cg, iters)
		}
	}
}

func TestColumnGenerationKTolerant(t *testing.T) {
	g := gen.Complete(6)
	b := []int{2, 2, 2, 2, 2, 2}
	full, _, _, err := Fractional(g, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	cg, _, _, _, err := FractionalCG(g, b, 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-cg) > 1e-6 {
		t.Fatalf("k=2: full %v vs CG %v", full, cg)
	}
}

func TestColumnGenerationScalesBeyondEnumeration(t *testing.T) {
	// n = 40 is far beyond what full minimal-DS enumeration handles; CG
	// must converge and respect the combinatorial bound.
	src := rng.New(3)
	g := gen.GNP(40, 0.2, src)
	b := make([]int, g.N())
	for i := range b {
		b[i] = 2
	}
	val, cols, durs, iters, err := FractionalCG(g, b, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=40: LP value %.3f with %d columns in %d iterations", val, len(cols), iters)
	// Combinatorial bound: min energy coverage.
	bound := math.Inf(1)
	for v := 0; v < g.N(); v++ {
		sum := b[v]
		for _, u := range g.Neighbors(v) {
			sum += b[u]
		}
		if f := float64(sum); f < bound {
			bound = f
		}
	}
	if val > bound+1e-6 {
		t.Fatalf("LP value %v exceeds energy-coverage bound %v", val, bound)
	}
	if val < float64(2) { // at least the trivial all-nodes schedule
		t.Fatalf("LP value %v below the trivial lifetime 2", val)
	}
	// The returned durations must form a feasible fractional schedule.
	usage := make([]float64, g.N())
	for j, col := range cols {
		for _, v := range col {
			usage[v] += durs[j]
		}
	}
	for v, u := range usage {
		if u > float64(b[v])+1e-6 {
			t.Fatalf("node %d fractional usage %v exceeds battery %d", v, u, b[v])
		}
	}
}

func TestColumnGenerationZeroBatteries(t *testing.T) {
	g := gen.Path(4)
	val, _, _, _, err := FractionalCG(g, []int{0, 0, 0, 0}, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if val != 0 {
		t.Fatalf("zero batteries gave value %v", val)
	}
}

func TestFractionalBoundFallsBack(t *testing.T) {
	// With a 1-iteration cap on a graph that needs more, FractionalBound
	// must fall back to the combinatorial bound rather than fail.
	g := gen.GNP(20, 0.3, rng.New(4))
	b := make([]int, g.N())
	for i := range b {
		b[i] = 2
	}
	got := FractionalBound(g, b, 1, 1)
	if got <= 0 {
		t.Fatalf("bound = %v", got)
	}
}
