// Package exact computes optimal solutions to the Maximum Cluster-Lifetime
// problem on small instances, giving the experiments a ground truth to
// measure approximation ratios against (the paper proves O(log n) ratios but
// never exhibits optima; we can, for small n).
//
// The pipeline: enumerate all *minimal* k-dominating sets (an optimal
// schedule never benefits from a non-minimal set — shrinking a set preserves
// feasibility), then
//
//   - Fractional: solve the packing LP  max Σ t_D  s.t.  Σ_{D∋v} t_D ≤ b_v,
//     t ≥ 0 — an upper bound on the integral optimum and the natural
//     continuous-time relaxation;
//   - Integral: branch-and-bound over integer slot allocations, pruned by
//     the residual energy-coverage bound of Lemma 5.1.
//
// Everything here is exponential by design; callers keep n small (≲ 20).
package exact

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/lp"
)

// MinimalDominatingSets enumerates every minimal k-dominating set of g.
// A set is minimal if removing any member breaks k-domination. The
// enumeration branches on the first deficient node, forbidding
// earlier-tried candidates so each set is produced at most once;
// non-minimal leaves are filtered out.
func MinimalDominatingSets(g *graph.Graph, k int) [][]int {
	if k < 1 {
		panic("exact: k must be >= 1")
	}
	n := g.N()
	if n == 0 {
		return [][]int{{}}
	}
	// Infeasible if some closed neighborhood is smaller than k.
	for v := 0; v < n; v++ {
		if g.Degree(v)+1 < k {
			return nil
		}
	}

	domCount := make([]int, n)
	inSet := make([]bool, n)
	forbidden := make([]bool, n)
	var current []int
	var out [][]int

	isKDominatingWithout := func(skip int) bool {
		for v := 0; v < n; v++ {
			c := domCount[v]
			if v == skip || int32Contains(g.Neighbors(v), int32(skip)) {
				c--
			}
			if c < k {
				return false
			}
		}
		return true
	}

	record := func() {
		for _, v := range current {
			if isKDominatingWithout(v) {
				return // not minimal
			}
		}
		out = append(out, append([]int(nil), current...))
	}

	var rec func()
	rec = func() {
		// First deficient node.
		target := -1
		for v := 0; v < n; v++ {
			if domCount[v] < k {
				target = v
				break
			}
		}
		if target == -1 {
			record()
			return
		}
		// Candidates: closed neighborhood, unforbidden, not already in.
		var cands []int
		if !inSet[target] && !forbidden[target] {
			cands = append(cands, target)
		}
		for _, u := range g.Neighbors(target) {
			if !inSet[u] && !forbidden[u] {
				cands = append(cands, int(u))
			}
		}
		for _, c := range cands {
			inSet[c] = true
			current = append(current, c)
			domCount[c]++
			for _, u := range g.Neighbors(c) {
				domCount[u]++
			}
			rec()
			domCount[c]--
			for _, u := range g.Neighbors(c) {
				domCount[u]--
			}
			current = current[:len(current)-1]
			inSet[c] = false
			forbidden[c] = true
		}
		for _, c := range cands {
			forbidden[c] = false
		}
	}
	rec()
	for _, s := range out {
		sort.Ints(s)
	}
	sort.Slice(out, func(i, j int) bool { return lessIntSlice(out[i], out[j]) })
	return out
}

func int32Contains(s []int32, v int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Fractional solves the continuous-time Maximum k-tolerant Cluster-Lifetime
// relaxation: the maximum total duration of a fractional schedule over
// minimal k-dominating sets subject to battery budgets b. It returns the
// optimal value and the per-set durations aligned with the returned sets.
// If no k-dominating set exists the lifetime is 0.
func Fractional(g *graph.Graph, b []int, k int) (float64, [][]int, []float64, error) {
	if len(b) != g.N() {
		return 0, nil, nil, fmt.Errorf("exact: %d batteries for %d nodes", len(b), g.N())
	}
	sets := MinimalDominatingSets(g, k)
	if len(sets) == 0 {
		return 0, nil, nil, nil
	}
	c := make([]float64, len(sets))
	for i := range c {
		c[i] = 1
	}
	a := make([][]float64, g.N())
	bounds := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		if b[v] < 0 {
			return 0, nil, nil, fmt.Errorf("exact: negative battery b[%d] = %d", v, b[v])
		}
		row := make([]float64, len(sets))
		for j, set := range sets {
			for _, u := range set {
				if u == v {
					row[j] = 1
					break
				}
			}
		}
		a[v] = row
		bounds[v] = float64(b[v])
	}
	prob, err := lp.NewProblem(c, a, bounds)
	if err != nil {
		return 0, nil, nil, err
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, nil, nil, err
	}
	return sol.Value, sets, sol.X, nil
}

// Integral computes the exact integral Maximum k-tolerant Cluster-Lifetime:
// the longest schedule with integer slot counts per dominating set. It
// returns the optimal lifetime and one optimal schedule as (set, duration)
// pairs with positive durations.
func Integral(g *graph.Graph, b []int, k int) (int, [][]int, []int) {
	if len(b) != g.N() {
		panic(fmt.Sprintf("exact: %d batteries for %d nodes", len(b), g.N()))
	}
	sets := MinimalDominatingSets(g, k)
	if len(sets) == 0 {
		return 0, nil, nil
	}
	n := g.N()
	residual := make([]int, n)
	copy(residual, b)

	// Per-node closed-neighborhood lists for the Lemma 5.1 bound.
	closed := make([][]int, n)
	for v := 0; v < n; v++ {
		cn := []int{v}
		for _, u := range g.Neighbors(v) {
			cn = append(cn, int(u))
		}
		closed[v] = cn
	}
	coverageBound := func() int {
		best := -1
		for v := 0; v < n; v++ {
			sum := 0
			for _, u := range closed[v] {
				sum += residual[u]
			}
			if best == -1 || sum < best {
				best = sum
			}
		}
		if best < 0 {
			best = 0
		}
		// Lemma 6.1 refinement: with k-domination each slot drains >= k
		// units from the binding neighborhood.
		return best / k
	}

	bestVal := 0
	bestAlloc := make([]int, len(sets))
	alloc := make([]int, len(sets))

	// Seed the search with a greedy incumbent: walk the sets once,
	// allocating each its maximum feasible duration. This gives the
	// branch-and-bound a strong lower bound immediately, which the
	// coverage-bound pruning then cuts against.
	greedyVal := 0
	greedyAlloc := make([]int, len(sets))
	for i, set := range sets {
		t := -1
		for _, v := range set {
			if t == -1 || residual[v] < t {
				t = residual[v]
			}
		}
		if t > 0 {
			greedyAlloc[i] = t
			greedyVal += t
			for _, v := range set {
				residual[v] -= t
			}
		}
	}
	for i, t := range greedyAlloc {
		for _, v := range sets[i] {
			residual[v] += t
		}
	}
	bestVal = greedyVal
	copy(bestAlloc, greedyAlloc)

	var rec func(idx, lifetime int)
	rec = func(idx, lifetime int) {
		if lifetime > bestVal {
			bestVal = lifetime
			copy(bestAlloc, alloc)
		}
		if idx == len(sets) {
			return
		}
		if lifetime+coverageBound() <= bestVal {
			return
		}
		// Maximum slots this set can run given residual batteries.
		maxT := -1
		for _, v := range sets[idx] {
			if maxT == -1 || residual[v] < maxT {
				maxT = residual[v]
			}
		}
		// Try larger allocations first for earlier strong incumbents.
		for t := maxT; t >= 0; t-- {
			for _, v := range sets[idx] {
				residual[v] -= t
			}
			alloc[idx] = t
			rec(idx+1, lifetime+t)
			alloc[idx] = 0
			for _, v := range sets[idx] {
				residual[v] += t
			}
		}
	}
	rec(0, 0)

	var outSets [][]int
	var outDur []int
	for i, t := range bestAlloc {
		if t > 0 {
			outSets = append(outSets, sets[i])
			outDur = append(outDur, t)
		}
	}
	return bestVal, outSets, outDur
}
