package exact

import (
	"math"
	"testing"

	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMinimalDominatingSetsPath3(t *testing.T) {
	// P3 = 0-1-2. Minimal dominating sets: {1}, {0,2}.
	sets := MinimalDominatingSets(gen.Path(3), 1)
	if len(sets) != 2 {
		t.Fatalf("sets = %v, want 2 sets", sets)
	}
	if len(sets[0]) != 2 || sets[0][0] != 0 || sets[0][1] != 2 {
		t.Errorf("sets = %v, want [[0 2] [1]]", sets)
	}
	if len(sets[1]) != 1 || sets[1][0] != 1 {
		t.Errorf("sets = %v, want [[0 2] [1]]", sets)
	}
}

func TestMinimalDominatingSetsCompleteGraph(t *testing.T) {
	// Every singleton of K4 is a minimal dominating set; nothing else is
	// minimal.
	sets := MinimalDominatingSets(gen.Complete(4), 1)
	if len(sets) != 4 {
		t.Fatalf("K4 has %d minimal DS, want 4: %v", len(sets), sets)
	}
	for _, s := range sets {
		if len(s) != 1 {
			t.Fatalf("non-singleton minimal set %v in K4", s)
		}
	}
}

func TestMinimalDominatingSetsAllMinimalAndDominating(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(10, 0.3, src)
		sets := MinimalDominatingSets(g, 1)
		if len(sets) == 0 {
			t.Fatal("every graph has at least one minimal dominating set")
		}
		seen := map[string]bool{}
		for _, s := range sets {
			if !domset.IsDominating(g, s, nil) {
				t.Fatalf("trial %d: %v not dominating", trial, s)
			}
			// Minimality: removing any element breaks domination.
			for i := range s {
				reduced := append(append([]int(nil), s[:i]...), s[i+1:]...)
				if domset.IsDominating(g, reduced, nil) {
					t.Fatalf("trial %d: %v not minimal (drop %d)", trial, s, s[i])
				}
			}
			key := ""
			for _, v := range s {
				key += string(rune('a'+v)) + ","
			}
			if seen[key] {
				t.Fatalf("trial %d: duplicate set %v", trial, s)
			}
			seen[key] = true
		}
	}
}

func TestMinimalDominatingSetsExhaustive(t *testing.T) {
	// Cross-check against brute-force subset enumeration on tiny graphs.
	src := rng.New(2)
	for trial := 0; trial < 8; trial++ {
		g := gen.GNP(8, 0.35, src)
		want := bruteMinimalSets(g, 1)
		got := MinimalDominatingSets(g, 1)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d minimal sets, brute force says %d", trial, len(got), len(want))
		}
	}
}

func TestMinimalKDominatingSets(t *testing.T) {
	g := gen.Complete(4)
	sets := MinimalDominatingSets(g, 2)
	// Minimal 2-dominating sets of K4 are exactly the 6 pairs.
	if len(sets) != 6 {
		t.Fatalf("K4 2-dominating minimal sets = %v, want all 6 pairs", sets)
	}
	for _, s := range sets {
		if !domset.IsKDominating(g, s, 2, nil) {
			t.Fatalf("%v not 2-dominating", s)
		}
	}
}

func TestMinimalDominatingSetsInfeasibleK(t *testing.T) {
	if sets := MinimalDominatingSets(gen.Path(4), 3); sets != nil {
		t.Fatalf("3-domination of P4 should be infeasible, got %v", sets)
	}
}

// bruteMinimalSets enumerates all subsets (n <= ~16) and keeps minimal
// k-dominating ones.
func bruteMinimalSets(g *graph.Graph, k int) [][]int {
	n := g.N()
	var out [][]int
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		if !domset.IsKDominating(g, set, k, nil) {
			continue
		}
		minimal := true
		for i := range set {
			reduced := append(append([]int(nil), set[:i]...), set[i+1:]...)
			if domset.IsKDominating(g, reduced, k, nil) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, set)
		}
	}
	return out
}

// figure1 reconstructs the instance of the paper's Figure 1: 7 nodes,
// non-uniform batteries, optimal lifetime exactly 6, and the optimum is
// achieved by a (2-node, 2 slots), (3-node, 1 slot), (2-node, 3 slots)
// phase structure. Node 6 plays the role of the node that cannot be covered
// after time 6: its closed neighborhood {4, 5, 6} carries exactly 6 units.
func figure1() (*graph.Graph, []int) {
	g := graph.New(7)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {3, 4}, {4, 5}, {4, 6}, {5, 6}} {
		g.AddEdge(e[0], e[1])
	}
	b := []int{3, 2, 1, 1, 2, 3, 1}
	return g, b
}

func TestFigure1IntegralOptimumIsSix(t *testing.T) {
	g, b := figure1()
	val, sets, durs := Integral(g, b, 1)
	if val != 6 {
		t.Fatalf("integral optimum = %d, want 6", val)
	}
	// Returned schedule must be feasible: per-node usage within battery.
	used := make([]int, g.N())
	for i, set := range sets {
		if !domset.IsDominating(g, set, nil) {
			t.Fatalf("schedule set %v not dominating", set)
		}
		for _, v := range set {
			used[v] += durs[i]
		}
	}
	for v, u := range used {
		if u > b[v] {
			t.Fatalf("node %d used %d > battery %d", v, u, b[v])
		}
	}
}

func TestFigure1FractionalMatchesIntegral(t *testing.T) {
	g, b := figure1()
	val, _, _, err := Fractional(g, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-6) > 1e-6 {
		t.Fatalf("fractional optimum = %v, want 6", val)
	}
}

func TestFigure1BindingNeighborhood(t *testing.T) {
	g, b := figure1()
	// Lemma 5.1: L_OPT <= min_u Σ_{N+[u]} b = 6, attained at node 6.
	min := -1
	for v := 0; v < g.N(); v++ {
		sum := b[v]
		for _, u := range g.Neighbors(v) {
			sum += b[u]
		}
		if min == -1 || sum < min {
			min = sum
		}
	}
	if min != 6 {
		t.Fatalf("minimum energy coverage = %d, want 6", min)
	}
}

func TestIntegralUniformPath(t *testing.T) {
	// P3 with b=2 everywhere: {1} twice and {0,2} twice → lifetime 4.
	g := gen.Path(3)
	val, _, _ := Integral(g, []int{2, 2, 2}, 1)
	if val != 4 {
		t.Fatalf("P3 uniform b=2 optimum = %d, want 4", val)
	}
}

func TestIntegralZeroBatteries(t *testing.T) {
	g := gen.Path(3)
	val, sets, _ := Integral(g, []int{0, 0, 0}, 1)
	if val != 0 || sets != nil {
		t.Fatalf("zero batteries yield lifetime %d (%v), want 0", val, sets)
	}
}

func TestIntegralCompleteGraphUniform(t *testing.T) {
	// K4 with b=1: each singleton for 1 slot → lifetime 4 = b(δ+1).
	val, _, _ := Integral(gen.Complete(4), []int{1, 1, 1, 1}, 1)
	if val != 4 {
		t.Fatalf("K4 b=1 optimum = %d, want 4", val)
	}
}

func TestIntegralKToleranceHalvesCompleteGraph(t *testing.T) {
	// K4, b=1, k=2: pairs for 1 slot each, two disjoint pairs → lifetime 2.
	val, _, _ := Integral(gen.Complete(4), []int{1, 1, 1, 1}, 2)
	if val != 2 {
		t.Fatalf("K4 b=1 k=2 optimum = %d, want 2", val)
	}
}

func TestFractionalAtLeastIntegral(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 6; trial++ {
		g := gen.GNP(9, 0.4, src)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + src.Intn(3)
		}
		iv, _, _ := Integral(g, b, 1)
		fv, _, _, err := Fractional(g, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if fv < float64(iv)-1e-6 {
			t.Fatalf("trial %d: fractional %v < integral %d", trial, fv, iv)
		}
	}
}

func TestIntegralRespectsLemma51Bound(t *testing.T) {
	src := rng.New(4)
	for trial := 0; trial < 6; trial++ {
		g := gen.GNP(9, 0.4, src)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + src.Intn(4)
		}
		val, _, _ := Integral(g, b, 1)
		bound := math.MaxInt
		for v := 0; v < g.N(); v++ {
			sum := b[v]
			for _, u := range g.Neighbors(v) {
				sum += b[u]
			}
			if sum < bound {
				bound = sum
			}
		}
		if val > bound {
			t.Fatalf("trial %d: optimum %d exceeds Lemma 5.1 bound %d", trial, val, bound)
		}
	}
}

func TestFractionalBatteryMismatch(t *testing.T) {
	if _, _, _, err := Fractional(gen.Path(3), []int{1}, 1); err == nil {
		t.Fatal("battery length mismatch accepted")
	}
}

func TestFractionalNegativeBattery(t *testing.T) {
	if _, _, _, err := Fractional(gen.Path(3), []int{1, -1, 1}, 1); err == nil {
		t.Fatal("negative battery accepted")
	}
}
