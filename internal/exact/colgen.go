package exact

import (
	"fmt"
	"math"

	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/lp"
)

// FractionalCG solves the fractional Maximum k-tolerant Cluster-Lifetime LP
// by column generation, avoiding the exponential enumeration of all minimal
// dominating sets that Fractional needs:
//
//	restricted master:  max Σ t_D  s.t.  Σ_{D∋v} t_D ≤ b_v  over known sets
//	pricing oracle:     min-weight k-dominating set under the duals y;
//	                    a set with weight < 1 is an improving column.
//
// LP duality certifies optimality when no column prices below 1. The pricing
// oracle is exponential in the worst case but — with cheapest-first
// branch-and-bound — handles the n ≈ 40–80 sparse instances the experiments
// use, an order of magnitude beyond full enumeration. Returns the optimal
// value, the generated sets, their durations, and the iteration count.
func FractionalCG(g *graph.Graph, b []int, k int, maxIters int) (float64, [][]int, []float64, int, error) {
	n := g.N()
	if len(b) != n {
		return 0, nil, nil, 0, fmt.Errorf("exact: %d batteries for %d nodes", len(b), n)
	}
	for v, bv := range b {
		if bv < 0 {
			return 0, nil, nil, 0, fmt.Errorf("exact: negative battery b[%d] = %d", v, bv)
		}
	}
	if maxIters <= 0 {
		maxIters = 1000
	}
	// Initial column: any k-dominating set (greedy); none → lifetime 0.
	first := domset.GreedyK(g, k, nil, nil)
	if first == nil {
		return 0, nil, nil, 0, nil
	}
	columns := [][]int{first}

	const eps = 1e-7
	for iter := 1; ; iter++ {
		if iter > maxIters {
			return 0, nil, nil, iter, fmt.Errorf("exact: column generation hit the %d-iteration cap", maxIters)
		}
		sol, err := solveMaster(g, b, columns)
		if err != nil {
			return 0, nil, nil, iter, err
		}
		// Pricing: the reduced cost of column D is 1 - Σ_{v∈D} y_v.
		// Clamp float noise: duals of a packing LP are ≥ 0 in exact
		// arithmetic.
		duals := make([]float64, n)
		for i, y := range sol.Y {
			if y > 0 {
				duals[i] = y
			}
		}
		newCol, weight := domset.MinimumWeightExact(g, duals, k)
		if weight >= 1-eps {
			return sol.Value, columns, sol.X, iter, nil
		}
		columns = append(columns, newCol)
	}
}

func solveMaster(g *graph.Graph, b []int, columns [][]int) (*lp.Solution, error) {
	n := g.N()
	c := make([]float64, len(columns))
	for i := range c {
		c[i] = 1
	}
	a := make([][]float64, n)
	bounds := make([]float64, n)
	for v := 0; v < n; v++ {
		row := make([]float64, len(columns))
		for j, col := range columns {
			for _, u := range col {
				if u == v {
					row[j] = 1
					break
				}
			}
		}
		a[v] = row
		bounds[v] = float64(b[v])
	}
	prob, err := lp.NewProblem(c, a, bounds)
	if err != nil {
		return nil, err
	}
	return prob.Solve()
}

// FractionalBound returns the best available upper bound on the integral
// optimum: the column-generation LP value when it converges within
// maxIters, else the combinatorial Lemma 5.1/6.1 bound.
func FractionalBound(g *graph.Graph, b []int, k, maxIters int) float64 {
	if val, _, _, _, err := FractionalCG(g, b, k, maxIters); err == nil {
		return val
	}
	best := math.Inf(1)
	for v := 0; v < g.N(); v++ {
		sum := b[v]
		for _, u := range g.Neighbors(v) {
			sum += b[u]
		}
		if f := float64(sum); f < best {
			best = f
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best / float64(k)
}
