package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// generalWHPFixture replays the WHP retry loop (now owned by the
// internal/solver driver, unreachable from exact's tests without a cycle)
// over the core primitives.
func generalWHPFixture(g *graph.Graph, b []int, opt core.Options, tries int) *core.Schedule {
	ck := domset.NewChecker(g)
	target := core.GeneralGuaranteedSlots(g, b, opt)
	var best *core.Schedule
	for try := 0; try < tries; try++ {
		s := core.General(g, b, opt).TruncateInvalidWith(ck, 1)
		if best == nil || s.Lifetime() > best.Lifetime() {
			best = s
		}
		if best.Lifetime() >= target {
			break
		}
	}
	return best
}

// TestOptimalityChainProperty verifies the fundamental inequality chain on
// random instances:
//
//	algorithm ≤ integral OPT ≤ fractional LP OPT ≤ Lemma 5.1 bound
func TestOptimalityChainProperty(t *testing.T) {
	prop := func(seed uint64, bBits uint8) bool {
		src := rng.New(seed)
		g := gen.GNP(9, 0.4, src)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + int(bBits%3) + src.Intn(2)
		}
		integral, _, _ := Integral(g, b, 1)
		fractional, _, _, err := Fractional(g, b, 1)
		if err != nil {
			return false
		}
		bound := core.GeneralUpperBound(g, b)
		alg := generalWHPFixture(g, b, core.Options{K: 3, Src: src.Split()}, 10)
		return float64(alg.Lifetime()) <= float64(integral)+1e-9 &&
			float64(integral) <= fractional+1e-6 &&
			fractional <= float64(bound)+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestColumnGenerationAgreesWithEnumerationProperty: CG and full enumeration
// solve the same LP.
func TestColumnGenerationAgreesWithEnumerationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		g := gen.GNP(8, 0.45, src)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + src.Intn(3)
		}
		full, _, _, err := Fractional(g, b, 1)
		if err != nil {
			return false
		}
		cg, _, _, _, err := FractionalCG(g, b, 1, 300)
		if err != nil {
			return false
		}
		diff := full - cg
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-5*(1+full)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestIntegralScheduleFeasibilityProperty: the schedule the exact solver
// returns always validates.
func TestIntegralScheduleFeasibilityProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		g := gen.GNP(8, 0.4, src)
		b := make([]int, g.N())
		for i := range b {
			b[i] = 1 + src.Intn(3)
		}
		val, sets, durs := Integral(g, b, 1)
		s := &core.Schedule{}
		for i := range sets {
			s.Phases = append(s.Phases, core.Phase{Set: sets[i], Duration: durs[i]})
		}
		return s.Lifetime() == val && s.Validate(g, b, 1) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
