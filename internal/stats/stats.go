// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics with confidence intervals, medians,
// histograms, and least-squares fits (used to check that measured
// approximation ratios grow like ln n).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes the Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean: 1.96·std/√n. Zero for samples of size < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f]", s.Mean, s.CI95(), s.Min, s.Max)
}

// Ints converts an int slice to float64 for Summarize.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics if the slices differ in length or have fewer than 2 points, and
// returns slope 0 on degenerate (constant-x) input.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: %d x-values but %d y-values", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: need at least 2 points for a fit")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Histogram counts xs into `bins` equal-width buckets spanning [min, max].
// Values at max land in the last bucket. A constant sample (max == min, so
// the bucket width is zero) lands entirely in bucket 0: the degenerate range
// [min, min] collapses to the first bucket, matching where min itself falls
// in any non-degenerate histogram. It panics for bins < 1 or an empty
// sample.
func Histogram(xs []float64, bins int) []int {
	if bins < 1 {
		panic("stats: bins must be >= 1")
	}
	s := Summarize(xs)
	counts := make([]int, bins)
	width := (s.Max - s.Min) / float64(bins)
	for _, x := range xs {
		i := 0
		if width > 0 {
			i = int((x - s.Min) / width)
			if i >= bins {
				i = bins - 1
			}
		}
		counts[i]++
	}
	return counts
}
