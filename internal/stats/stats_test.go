package stats

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Median, 3) {
		t.Fatalf("median = %v, want 3", s.Median)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if !almost(s.Std, math.Sqrt(2.5)) {
		t.Fatalf("std = %v, want %v", s.Std, math.Sqrt(2.5))
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if !almost(s.Median, 2.5) {
		t.Fatalf("median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Std != 0 || s.CI95() != 0 || s.Median != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample did not panic")
		}
	}()
	Summarize(nil)
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	want := 1.96 * s.Std / 2 // sqrt(4) = 2
	if !almost(s.CI95(), want) {
		t.Fatalf("ci = %v, want %v", s.CI95(), want)
	}
}

func TestInts(t *testing.T) {
	xs := Ints([]int{1, 2, 3})
	if len(xs) != 3 || xs[2] != 3.0 {
		t.Fatalf("Ints = %v", xs)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 2x + 1 exactly.
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	slope, intercept := LinearFit(x, y)
	if !almost(slope, 2) || !almost(intercept, 1) {
		t.Fatalf("fit = (%v, %v), want (2, 1)", slope, intercept)
	}
}

func TestLinearFitDegenerateX(t *testing.T) {
	slope, intercept := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if slope != 0 || !almost(intercept, 2) {
		t.Fatalf("degenerate fit = (%v, %v)", slope, intercept)
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	// Buckets are half-open: 0.5 lands in the second of two [0,1] buckets.
	h := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if h[0] != 2 || h[1] != 3 {
		t.Fatalf("histogram = %v", h)
	}
	// x == Max lands in the last bucket, not a phantom bucket past the end.
	h = Histogram([]float64{0, 1, 2, 3, 4}, 4)
	if h[3] != 2 {
		t.Fatalf("x==Max histogram = %v, want counts[3]=2 (3 and 4)", h)
	}
}

func TestHistogramConstantSample(t *testing.T) {
	// Constant sample: the width-0 range [5,5] collapses to bucket 0 —
	// where min falls in every non-degenerate histogram — not the last
	// bucket.
	h := Histogram([]float64{5, 5, 5}, 3)
	if h[0] != 3 || h[1] != 0 || h[2] != 0 {
		t.Fatalf("constant histogram = %v, want [3 0 0]", h)
	}
	// Single value, single bucket: both rules agree.
	h = Histogram([]float64{-2}, 1)
	if h[0] != 1 {
		t.Fatalf("single-value histogram = %v, want [1]", h)
	}
}

func TestHistogramPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bins=0 did not panic")
		}
	}()
	Histogram([]float64{1}, 0)
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 1, 1})
	if got := s.String(); got != "1.000 ± 0.000 [1.000, 1.000]" {
		t.Fatalf("String() = %q", got)
	}
}
