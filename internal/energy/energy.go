// Package energy models the battery and failure semantics the paper's
// introduction describes: nodes are battery powered; a node in the active
// mode drains its dominating-duty budget (one unit per slot by default)
// while sleeping nodes spend nothing; and node failure "is an event of
// non-negligible probability" — the motivation for the k-tolerant variant.
//
// The budget b_v tracked here is, as in the paper, the energy a node may
// spend *serving in dominating sets*, not its total battery: deployments
// reserve the remainder for data delivery to the sink.
package energy

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Network is the mutable energy state of a deployment.
type Network struct {
	G          *graph.Graph
	Residual   []int  // remaining dominating-duty budget per node
	Alive      []bool // false once a node has crashed
	ActiveCost int    // budget units drained per active slot (default 1)
}

// NewNetwork returns a fresh network over g with the given initial budgets,
// all nodes alive, and the default active cost of 1 unit per slot.
func NewNetwork(g *graph.Graph, budgets []int) *Network {
	if len(budgets) != g.N() {
		panic(fmt.Sprintf("energy: %d budgets for %d nodes", len(budgets), g.N()))
	}
	net := &Network{
		G:          g,
		Residual:   append([]int(nil), budgets...),
		Alive:      make([]bool, g.N()),
		ActiveCost: 1,
	}
	for i := range net.Alive {
		net.Alive[i] = true
	}
	return net
}

// Uniform returns a budget slice with the same value for every node of g.
func Uniform(g *graph.Graph, b int) []int {
	out := make([]int, g.N())
	for i := range out {
		out[i] = b
	}
	return out
}

// CanServe reports whether node v is alive and has budget for one more
// active slot.
func (n *Network) CanServe(v int) bool {
	return n.Alive[v] && n.Residual[v] >= n.ActiveCost
}

// Drain charges one active slot to every node in set. It returns an error
// naming the first node that is dead, out of budget, or listed twice (a
// repeated member used to be double-charged silently; an active set is a
// set, so duplicates now fail validation); on error no charges are applied.
func (n *Network) Drain(set []int) error {
	seen := make(map[int]bool, len(set))
	for _, v := range set {
		if v < 0 || v >= len(n.Residual) {
			return fmt.Errorf("energy: node %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("energy: node %d scheduled twice in one slot", v)
		}
		seen[v] = true
		if !n.Alive[v] {
			return fmt.Errorf("energy: dead node %d scheduled", v)
		}
		if n.Residual[v] < n.ActiveCost {
			return fmt.Errorf("energy: node %d out of budget", v)
		}
	}
	for _, v := range set {
		n.Residual[v] -= n.ActiveCost
	}
	return nil
}

// DrainServiceable is the tolerant variant of Drain a degraded deployment
// needs: it charges one active slot to every node of set that can actually
// serve (alive, in range, with budget, not yet charged this call) and skips
// the rest instead of failing. It returns the sorted-input-order subset that
// was charged — the set that truly served the slot. Duplicates are charged
// once.
func (n *Network) DrainServiceable(set []int) []int {
	var served []int
	seen := make(map[int]bool, len(set))
	for _, v := range set {
		if v < 0 || v >= len(n.Residual) || seen[v] || !n.CanServe(v) {
			continue
		}
		seen[v] = true
		n.Residual[v] -= n.ActiveCost
		served = append(served, v)
	}
	return served
}

// Kill marks node v as crashed. Killing a dead node is a no-op.
func (n *Network) Kill(v int) {
	n.Alive[v] = false
}

// AliveCount returns the number of alive nodes.
func (n *Network) AliveCount() int {
	c := 0
	for _, a := range n.Alive {
		if a {
			c++
		}
	}
	return c
}

// TotalResidual returns the summed remaining budget of alive nodes.
func (n *Network) TotalResidual() int {
	total := 0
	for v, a := range n.Alive {
		if a {
			total += n.Residual[v]
		}
	}
	return total
}

// Failure is a scheduled crash: node Node dies at the start of slot Time.
type Failure struct {
	Time int
	Node int
}

// FailurePlan is a time-ordered list of crashes.
type FailurePlan []Failure

// Sort orders the plan by time (stable on node ID).
func (p FailurePlan) Sort() {
	sort.SliceStable(p, func(i, j int) bool {
		if p[i].Time != p[j].Time {
			return p[i].Time < p[j].Time
		}
		return p[i].Node < p[j].Node
	})
}

// RandomFailures draws a plan that kills `count` distinct random nodes at
// uniform times in [0, horizon).
func RandomFailures(g *graph.Graph, count, horizon int, src *rng.Source) FailurePlan {
	if count > g.N() {
		count = g.N()
	}
	perm := src.Perm(g.N())
	plan := make(FailurePlan, 0, count)
	for _, v := range perm[:count] {
		plan = append(plan, Failure{Time: src.Intn(maxInt(1, horizon)), Node: v})
	}
	plan.Sort()
	return plan
}

// NeighborhoodFailures kills, for each chosen victim neighborhood, up to
// perNbhd nodes from a random closed neighborhood — the adversarial pattern
// that distinguishes k-tolerant schedules (which survive any k-1 deaths per
// neighborhood) from plain ones.
func NeighborhoodFailures(g *graph.Graph, neighborhoods, perNbhd, horizon int, src *rng.Source) FailurePlan {
	var plan FailurePlan
	killed := make(map[int]bool)
	for i := 0; i < neighborhoods; i++ {
		center := src.Intn(g.N())
		cn := g.ClosedNeighborhood(center)
		picks := 0
		for _, idx := range src.Perm(len(cn)) {
			if picks >= perNbhd {
				break
			}
			v := int(cn[idx])
			if !killed[v] {
				killed[v] = true
				plan = append(plan, Failure{Time: src.Intn(maxInt(1, horizon)), Node: v})
				picks++
			}
		}
	}
	plan.Sort()
	return plan
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
