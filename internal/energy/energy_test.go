package energy

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestNewNetworkDefaults(t *testing.T) {
	g := gen.Path(4)
	net := NewNetwork(g, []int{1, 2, 3, 4})
	if net.AliveCount() != 4 {
		t.Fatal("not all nodes alive initially")
	}
	if net.TotalResidual() != 10 {
		t.Fatalf("total residual = %d, want 10", net.TotalResidual())
	}
	if net.ActiveCost != 1 {
		t.Fatalf("default active cost = %d, want 1", net.ActiveCost)
	}
}

func TestNewNetworkCopiesBudgets(t *testing.T) {
	g := gen.Path(2)
	budgets := []int{5, 5}
	net := NewNetwork(g, budgets)
	budgets[0] = 0
	if net.Residual[0] != 5 {
		t.Fatal("network aliased caller's budget slice")
	}
}

func TestNewNetworkSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	NewNetwork(gen.Path(3), []int{1})
}

func TestUniformBudgets(t *testing.T) {
	g := gen.Path(3)
	b := Uniform(g, 7)
	for _, v := range b {
		if v != 7 {
			t.Fatalf("budgets = %v", b)
		}
	}
}

func TestDrainAndCanServe(t *testing.T) {
	g := gen.Path(3)
	net := NewNetwork(g, []int{2, 1, 0})
	if !net.CanServe(0) || !net.CanServe(1) || net.CanServe(2) {
		t.Fatal("CanServe wrong on fresh network")
	}
	if err := net.Drain([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if net.Residual[0] != 1 || net.Residual[1] != 0 {
		t.Fatalf("residuals = %v", net.Residual)
	}
	if net.CanServe(1) {
		t.Fatal("exhausted node still serves")
	}
	if err := net.Drain([]int{1}); err == nil {
		t.Fatal("drain of exhausted node accepted")
	}
}

func TestDrainIsAtomic(t *testing.T) {
	g := gen.Path(3)
	net := NewNetwork(g, []int{2, 0, 2})
	if err := net.Drain([]int{0, 1}); err == nil {
		t.Fatal("expected error")
	}
	if net.Residual[0] != 2 {
		t.Fatal("failed drain partially applied")
	}
}

func TestDrainRejectsDeadAndOutOfRange(t *testing.T) {
	g := gen.Path(3)
	net := NewNetwork(g, Uniform(g, 5))
	net.Kill(1)
	if err := net.Drain([]int{1}); err == nil {
		t.Fatal("dead node drain accepted")
	}
	if err := net.Drain([]int{7}); err == nil {
		t.Fatal("out-of-range drain accepted")
	}
}

func TestKillIdempotent(t *testing.T) {
	g := gen.Path(3)
	net := NewNetwork(g, Uniform(g, 1))
	net.Kill(0)
	net.Kill(0)
	if net.AliveCount() != 2 {
		t.Fatalf("alive = %d, want 2", net.AliveCount())
	}
	// TotalResidual ignores dead nodes.
	if net.TotalResidual() != 2 {
		t.Fatalf("residual = %d, want 2", net.TotalResidual())
	}
}

func TestFailurePlanSort(t *testing.T) {
	p := FailurePlan{{Time: 5, Node: 1}, {Time: 1, Node: 9}, {Time: 1, Node: 2}}
	p.Sort()
	if p[0].Node != 2 || p[1].Node != 9 || p[2].Node != 1 {
		t.Fatalf("sorted plan = %v", p)
	}
}

func TestRandomFailures(t *testing.T) {
	g := gen.Grid(5, 5)
	src := rng.New(1)
	plan := RandomFailures(g, 8, 20, src)
	if len(plan) != 8 {
		t.Fatalf("plan has %d entries, want 8", len(plan))
	}
	seen := map[int]bool{}
	for _, f := range plan {
		if f.Time < 0 || f.Time >= 20 {
			t.Fatalf("failure time %d out of horizon", f.Time)
		}
		if seen[f.Node] {
			t.Fatalf("node %d killed twice", f.Node)
		}
		seen[f.Node] = true
	}
	// Requesting more failures than nodes clamps.
	if p := RandomFailures(gen.Path(3), 10, 5, src); len(p) != 3 {
		t.Fatalf("clamped plan has %d entries", len(p))
	}
}

func TestNeighborhoodFailures(t *testing.T) {
	g := gen.Grid(6, 6)
	src := rng.New(2)
	plan := NeighborhoodFailures(g, 3, 2, 10, src)
	if len(plan) == 0 || len(plan) > 6 {
		t.Fatalf("plan size %d unexpected", len(plan))
	}
	seen := map[int]bool{}
	for _, f := range plan {
		if seen[f.Node] {
			t.Fatalf("node %d killed twice", f.Node)
		}
		seen[f.Node] = true
	}
}

func TestDrainRejectsDuplicates(t *testing.T) {
	// Regression: a repeated member of set used to be double-charged
	// silently; an active set is a set, so Drain must reject it atomically.
	g := gen.Path(3)
	net := NewNetwork(g, Uniform(g, 5))
	if err := net.Drain([]int{1, 0, 1}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	for v, r := range net.Residual {
		if r != 5 {
			t.Fatalf("node %d charged (%d) despite rejected set", v, r)
		}
	}
	if err := net.Drain([]int{0, 1}); err != nil {
		t.Fatalf("duplicate-free set rejected: %v", err)
	}
}

func TestDrainServiceable(t *testing.T) {
	g := gen.Path(5)
	net := NewNetwork(g, []int{2, 0, 1, 2, 2})
	net.Kill(3)
	served := net.DrainServiceable([]int{0, 1, 2, 3, 4, 0, 7, -1})
	want := []int{0, 2, 4}
	if len(served) != len(want) {
		t.Fatalf("served %v, want %v", served, want)
	}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served %v, want %v", served, want)
		}
	}
	// Node 0 appeared twice but is charged once; dead/empty/out-of-range
	// members are skipped without effect.
	if net.Residual[0] != 1 || net.Residual[1] != 0 || net.Residual[2] != 0 {
		t.Fatalf("unexpected residuals %v", net.Residual)
	}
	if net.Residual[3] != 2 {
		t.Fatal("dead node was charged")
	}
}

func TestDrainServiceableEmpty(t *testing.T) {
	g := gen.Path(2)
	net := NewNetwork(g, Uniform(g, 0))
	if served := net.DrainServiceable([]int{0, 1}); served != nil {
		t.Fatalf("zero-budget network served %v", served)
	}
}
