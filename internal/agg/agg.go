// Package agg implements the data-aggregation substrate the paper's problem
// statement motivates: the duty budget b_v is deliberately *less* than the
// node's full battery so that the remainder can pay for delivering the
// gathered data to an information sink, "for example by collectively
// constructing a data aggregation tree" (paper, §2). The package builds
// BFS aggregation trees and accounts for the transmissions a slot's
// clusterheads need to push their aggregates to the sink.
package agg

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// Tree is a rooted spanning tree of a connected graph, oriented toward the
// sink (the root).
type Tree struct {
	Sink   int
	Parent []int // Parent[root] = -1
	depth  []int
}

// NewBFSTree builds a breadth-first spanning tree of g rooted at sink, the
// standard minimum-hop aggregation tree. It fails if g is disconnected or
// the sink is out of range.
func NewBFSTree(g *graph.Graph, sink int) (*Tree, error) {
	n := g.N()
	if sink < 0 || sink >= n {
		return nil, fmt.Errorf("agg: sink %d out of range [0, %d)", sink, n)
	}
	parent := make([]int, n)
	depth := make([]int, n)
	for i := range parent {
		parent[i] = -2
		depth[i] = -1
	}
	parent[sink] = -1
	depth[sink] = 0
	queue := []int{sink}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if parent[u] == -2 {
				parent[u] = v
				depth[u] = depth[v] + 1
				queue = append(queue, int(u))
			}
		}
	}
	for v, p := range parent {
		if p == -2 {
			return nil, fmt.Errorf("agg: node %d unreachable from sink %d", v, sink)
		}
	}
	return &Tree{Sink: sink, Parent: parent, depth: depth}, nil
}

// Depth returns the hop distance from v to the sink.
func (t *Tree) Depth(v int) int { return t.depth[v] }

// MaxDepth returns the tree height.
func (t *Tree) MaxDepth() int {
	max := 0
	for _, d := range t.depth {
		if d > max {
			max = d
		}
	}
	return max
}

// PathToSink returns the node sequence from v to the sink, inclusive.
func (t *Tree) PathToSink(v int) []int {
	var path []int
	for v != -1 {
		path = append(path, v)
		v = t.Parent[v]
	}
	return path
}

// DeliveryCost returns the number of tree-edge transmissions needed to
// deliver one aggregate from every source to the sink with in-network
// aggregation: intermediate nodes merge incoming aggregates, so the cost is
// the number of distinct tree edges on the union of the sources' root
// paths (the Steiner tree of sources ∪ {sink} within the tree).
func (t *Tree) DeliveryCost(sources []int) int {
	used := bitset.New(len(t.Parent))
	cost := 0
	for _, s := range sources {
		for v := s; v != t.Sink && !used.Test(v); v = t.Parent[v] {
			used.Set(v)
			cost++
		}
	}
	return cost
}

// Validate checks tree invariants against the underlying graph: every
// non-root parent pointer follows a real edge and depths decrease by one
// toward the sink.
func (t *Tree) Validate(g *graph.Graph) error {
	if len(t.Parent) != g.N() {
		return fmt.Errorf("agg: tree covers %d nodes, graph has %d", len(t.Parent), g.N())
	}
	for v, p := range t.Parent {
		if v == t.Sink {
			if p != -1 {
				return fmt.Errorf("agg: sink %d has parent %d", v, p)
			}
			continue
		}
		if p < 0 || p >= g.N() {
			return fmt.Errorf("agg: node %d has invalid parent %d", v, p)
		}
		if !g.HasEdge(v, p) {
			return fmt.Errorf("agg: tree edge {%d,%d} not in graph", v, p)
		}
		if t.depth[v] != t.depth[p]+1 {
			return fmt.Errorf("agg: node %d depth %d but parent depth %d", v, t.depth[v], t.depth[p])
		}
	}
	return nil
}
