package agg

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBFSTreeOnPath(t *testing.T) {
	g := gen.Path(5)
	tree, err := NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if tree.Depth(v) != v {
			t.Errorf("depth(%d) = %d, want %d", v, tree.Depth(v), v)
		}
	}
	if tree.MaxDepth() != 4 {
		t.Errorf("max depth = %d, want 4", tree.MaxDepth())
	}
	path := tree.PathToSink(4)
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestBFSTreeRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	if _, err := NewBFSTree(g, 0); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBFSTreeRejectsBadSink(t *testing.T) {
	if _, err := NewBFSTree(gen.Path(3), 7); err == nil {
		t.Fatal("out-of-range sink accepted")
	}
}

func TestDeliveryCostWithAggregation(t *testing.T) {
	// Path 0-1-2-3-4, sink 0. Sources {4}: cost 4 edges. Sources {4, 3}:
	// still 4 (3's path is a prefix of 4's). Sources {2, 4}: 4.
	g := gen.Path(5)
	tree, err := NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := tree.DeliveryCost([]int{4}); c != 4 {
		t.Errorf("cost({4}) = %d, want 4", c)
	}
	if c := tree.DeliveryCost([]int{4, 3}); c != 4 {
		t.Errorf("cost({4,3}) = %d, want 4 (aggregation)", c)
	}
	if c := tree.DeliveryCost([]int{2, 4}); c != 4 {
		t.Errorf("cost({2,4}) = %d, want 4", c)
	}
	if c := tree.DeliveryCost(nil); c != 0 {
		t.Errorf("cost(∅) = %d, want 0", c)
	}
	if c := tree.DeliveryCost([]int{0}); c != 0 {
		t.Errorf("cost({sink}) = %d, want 0", c)
	}
}

func TestDeliveryCostStarBranches(t *testing.T) {
	// Star with sink at center: each leaf costs its own edge; no sharing.
	g := gen.Star(6)
	tree, err := NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := tree.DeliveryCost([]int{1, 2, 3}); c != 3 {
		t.Errorf("cost = %d, want 3", c)
	}
}

func TestBFSTreeOnRandomGraphs(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(60, 0.15, src)
		if !g.Connected() {
			continue
		}
		sink := src.Intn(g.N())
		tree, err := NewBFSTree(g, sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(g); err != nil {
			t.Fatal(err)
		}
		// BFS depths must equal graph distances.
		dist := g.BFS(sink)
		for v := 0; v < g.N(); v++ {
			if tree.Depth(v) != dist[v] {
				t.Fatalf("depth(%d) = %d, BFS distance %d", v, tree.Depth(v), dist[v])
			}
		}
	}
}

func TestDeliveryCostBounds(t *testing.T) {
	// Cost of all nodes as sources = n-1 tree edges exactly.
	src := rng.New(2)
	g := gen.GNP(40, 0.2, src)
	if !g.Connected() {
		t.Skip("unlucky disconnected instance")
	}
	tree, err := NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	if c := tree.DeliveryCost(all); c != g.N()-1 {
		t.Fatalf("cost(all) = %d, want %d", c, g.N()-1)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := gen.Path(4)
	tree, err := NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong node count.
	bad := &Tree{Sink: 0, Parent: []int{-1, 0}}
	if err := bad.Validate(g); err == nil {
		t.Error("node-count mismatch accepted")
	}
	// Sink with a parent.
	p := append([]int(nil), tree.Parent...)
	p[0] = 1
	if err := (&Tree{Sink: 0, Parent: p, depth: []int{0, 1, 2, 3}}).Validate(g); err == nil {
		t.Error("sink with parent accepted")
	}
	// Parent not an edge.
	p2 := append([]int(nil), tree.Parent...)
	p2[3] = 0 // no edge 3-0 in P4
	if err := (&Tree{Sink: 0, Parent: p2, depth: []int{0, 1, 2, 3}}).Validate(g); err == nil {
		t.Error("non-edge parent accepted")
	}
	// Out-of-range parent.
	p3 := append([]int(nil), tree.Parent...)
	p3[2] = 9
	if err := (&Tree{Sink: 0, Parent: p3, depth: []int{0, 1, 2, 3}}).Validate(g); err == nil {
		t.Error("out-of-range parent accepted")
	}
	// Wrong depth.
	if err := (&Tree{Sink: 0, Parent: tree.Parent, depth: []int{0, 1, 1, 3}}).Validate(g); err == nil {
		t.Error("bad depth accepted")
	}
}
