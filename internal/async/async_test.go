package async

import (
	"testing"

	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSimultaneousWakeupAllDominators(t *testing.T) {
	// Everyone wakes at 0 and hears nothing during the window: everyone
	// self-elects. The result is the (maximal) dominating set of all nodes.
	g := gen.Path(5)
	res, err := Run(g, Config{Listen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dominators) != 5 {
		t.Fatalf("dominators = %v, want all 5", res.Dominators)
	}
	if !domset.IsDominating(g, res.Dominators, nil) {
		t.Fatal("result not dominating")
	}
}

func TestStaggeredWakeupYieldsSparseDominators(t *testing.T) {
	// With wake-ups spread over a window much longer than Listen, early
	// dominators suppress their later-waking neighbors.
	g := gen.Complete(20)
	wake := make([]int, 20)
	for i := range wake {
		wake[i] = i * 5 // strictly staggered
	}
	res, err := Run(g, Config{Listen: 3, WakeTimes: wake})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dominators) != 1 || res.Dominators[0] != 0 {
		t.Fatalf("dominators = %v, want just the first waker", res.Dominators)
	}
	for v := 1; v < 20; v++ {
		if res.States[v] != Dominated {
			t.Fatalf("node %d state %v, want dominated", v, res.States[v])
		}
	}
}

func TestAlwaysDominatingAfterStabilization(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		g := gen.GNP(80, 0.1, src)
		wake := StaggeredWakeTimes(g.N(), 30, src)
		res, err := Run(g, Config{Listen: 4, WakeTimes: wake})
		if err != nil {
			t.Fatal(err)
		}
		if !domset.IsDominating(g, res.Dominators, nil) {
			t.Fatalf("trial %d: dominators %v not dominating", trial, res.Dominators)
		}
		// No node may remain asleep or listening at the horizon.
		for v, s := range res.States {
			if s == Asleep || s == Listening {
				t.Fatalf("trial %d: node %d still %v at horizon", trial, v, s)
			}
		}
	}
}

func TestDominatedNodesHaveDominatorNeighbor(t *testing.T) {
	src := rng.New(2)
	g := gen.GNP(60, 0.15, src)
	wake := StaggeredWakeTimes(g.N(), 25, src)
	res, err := Run(g, Config{Listen: 3, WakeTimes: wake})
	if err != nil {
		t.Fatal(err)
	}
	isDom := map[int]bool{}
	for _, v := range res.Dominators {
		isDom[v] = true
	}
	for v, s := range res.States {
		if s != Dominated {
			continue
		}
		ok := false
		for _, u := range g.Neighbors(v) {
			if isDom[int(u)] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("dominated node %d has no dominator neighbor", v)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := Run(g, Config{Listen: 0}); err == nil {
		t.Error("listen=0 accepted")
	}
	if _, err := Run(g, Config{Listen: 2, WakeTimes: []int{1}}); err == nil {
		t.Error("wake-time length mismatch accepted")
	}
	if _, err := Run(g, Config{Listen: 2, WakeTimes: []int{0, -1, 0}}); err == nil {
		t.Error("negative wake time accepted")
	}
}

func TestStabilizationTimeBound(t *testing.T) {
	// Stabilization happens by maxWake + Listen in this collision-free
	// model.
	src := rng.New(3)
	g := gen.GNP(50, 0.2, src)
	wake := StaggeredWakeTimes(g.N(), 20, src)
	maxWake := 0
	for _, w := range wake {
		if w > maxWake {
			maxWake = w
		}
	}
	res, err := Run(g, Config{Listen: 5, WakeTimes: wake, Horizon: maxWake + 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.StabilizedAt > maxWake+5 {
		t.Fatalf("stabilized at %d, bound is %d", res.StabilizedAt, maxWake+5)
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(graph.New(0), Config{Listen: 1})
	if err != nil || len(res.Dominators) != 0 {
		t.Fatalf("empty run: %v, %v", res, err)
	}
}

func TestStaggeredWakeTimesRange(t *testing.T) {
	src := rng.New(4)
	w := StaggeredWakeTimes(100, 10, src)
	for _, v := range w {
		if v < 0 || v >= 10 {
			t.Fatalf("wake time %d out of [0, 10)", v)
		}
	}
	// spread <= 1: all zeros.
	for _, v := range StaggeredWakeTimes(5, 1, src) {
		if v != 0 {
			t.Fatal("spread 1 should yield all-zero wake times")
		}
	}
}

func TestBeaconAccounting(t *testing.T) {
	// Single node: wakes at 0, listens 2 slots, becomes dominator at slot 1,
	// beacons from slot 2 on. Horizon 5 → beacons at slots 2, 3, 4 = 3.
	g := graph.New(1)
	res, err := Run(g, Config{Listen: 2, Horizon: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Beacons != 3 {
		t.Fatalf("beacons = %d, want 3", res.Beacons)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		Asleep:    "asleep",
		Listening: "listening",
		Dominator: "dominator",
		Dominated: "dominated",
		State(9):  "state(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
