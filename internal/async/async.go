// Package async simulates the unstructured-network scenario of the paper's
// related work (Kuhn, Moscibroda & Wattenhofer, MOBICOM 2004): nodes wake up
// asynchronously, without a global clock and without knowing their
// neighbors, and must organize a dominating set on the fly — the setting in
// which dominating-set clustering bootstraps the MAC layer itself.
//
// The simulator is event-driven: each node has a wake-up time; once awake it
// executes a simple beacon protocol in its own local time. The protocol
// implemented here is a simplified (collision-free) variant of the
// wake-up clustering idea:
//
//   - an awake node listens for `listen` local slots; if it hears a
//     dominator beacon from a neighbor during that window it becomes
//     dominated and stays silent;
//   - otherwise it declares itself dominator and beacons every slot from
//     then on.
//
// The resulting dominator set is always a dominating set of the awake nodes
// once every node has finished its listening window, and on unit disk
// graphs its density is within a constant factor of optimal in expectation.
// Experiment E19 measures stabilization time and dominator counts under
// staggered wake-ups.
package async

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// State is a node's role in the asynchronous protocol.
type State int8

const (
	// Asleep nodes have not woken yet: they neither hear nor send.
	Asleep State = iota
	// Listening nodes are in their initial listening window.
	Listening
	// Dominator nodes beacon every slot.
	Dominator
	// Dominated nodes heard a dominator beacon and went passive.
	Dominated
)

// String names the state for logs and test failures.
func (s State) String() string {
	switch s {
	case Asleep:
		return "asleep"
	case Listening:
		return "listening"
	case Dominator:
		return "dominator"
	case Dominated:
		return "dominated"
	default:
		return fmt.Sprintf("state(%d)", int8(s))
	}
}

// Config parameterizes a simulation.
type Config struct {
	// Listen is the length of the listening window in slots (>= 1).
	Listen int
	// WakeTimes gives each node's wake-up slot. Nil means all wake at 0.
	WakeTimes []int
	// Horizon is the number of slots to simulate. Zero means
	// max(WakeTimes) + Listen + 1, the stabilization horizon.
	Horizon int
}

// Result reports a finished simulation.
type Result struct {
	// Final states per node.
	States []State
	// Dominators is the sorted dominator set at the horizon.
	Dominators []int
	// StabilizedAt is the first slot from which the dominator set no longer
	// changed, relative to slot 0.
	StabilizedAt int
	// Beacons is the total number of beacon transmissions sent.
	Beacons int
}

// Run simulates the protocol on g.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	n := g.N()
	if cfg.Listen < 1 {
		return nil, fmt.Errorf("async: listening window %d must be >= 1", cfg.Listen)
	}
	wake := cfg.WakeTimes
	if wake == nil {
		wake = make([]int, n)
	}
	if len(wake) != n {
		return nil, fmt.Errorf("async: %d wake times for %d nodes", len(wake), n)
	}
	maxWake := 0
	for v, w := range wake {
		if w < 0 {
			return nil, fmt.Errorf("async: negative wake time for node %d", v)
		}
		if w > maxWake {
			maxWake = w
		}
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = maxWake + cfg.Listen + 1
	}

	states := make([]State, n)
	res := &Result{}
	lastChange := 0
	for t := 0; t < horizon; t++ {
		// Wake-ups at the start of the slot.
		for v := 0; v < n; v++ {
			if states[v] == Asleep && wake[v] <= t {
				states[v] = Listening
			}
		}
		// Dominators beacon; listeners that hear one become dominated.
		// (Collision-free model: hearing any one beacon suffices.)
		heard := make([]bool, n)
		for v := 0; v < n; v++ {
			if states[v] == Dominator {
				res.Beacons++
				for _, u := range g.Neighbors(v) {
					heard[u] = true
				}
			}
		}
		for v := 0; v < n; v++ {
			if states[v] == Listening {
				if heard[v] {
					states[v] = Dominated
					lastChange = t + 1
				} else if t-wake[v]+1 >= cfg.Listen {
					// Listening window expired without hearing a beacon.
					states[v] = Dominator
					lastChange = t + 1
				}
			}
		}
	}
	res.States = states
	for v, s := range states {
		if s == Dominator {
			res.Dominators = append(res.Dominators, v)
		}
	}
	sort.Ints(res.Dominators)
	res.StabilizedAt = lastChange
	return res, nil
}

// StaggeredWakeTimes draws independent uniform wake-up times in
// [0, spread) — the adversary-free staggered deployment scenario.
func StaggeredWakeTimes(n, spread int, src *rng.Source) []int {
	out := make([]int, n)
	if spread <= 1 {
		return out
	}
	for i := range out {
		out[i] = src.Intn(spread)
	}
	return out
}
