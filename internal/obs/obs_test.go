package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1})
	for _, v := range []float64{0, 0.25, 0.5, 0.75, 1, 2} {
		h.Observe(v)
	}
	want := []uint64{1, 2, 2, 1} // (-inf,0], (0,0.5], (0.5,1], overflow
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 4.5 {
		t.Fatalf("sum = %g, want 4.5", h.Sum())
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("second Counter lookup returned a different instance")
	}
	if reg.Histogram("h", []float64{1}) != reg.Histogram("h", []float64{1, 2}) {
		t.Fatal("second Histogram lookup returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch accepted")
		}
	}()
	reg.Gauge("x")
}

func TestRegistrySnapshotSortedAndServed(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Gauge("a.level").Set(-1)
	reg.Histogram("c.cov", CoverageBounds).Observe(0.5)
	snaps := reg.Snapshot()
	if len(snaps) != 3 || snaps[0].Name != "a.level" || snaps[1].Name != "b.count" || snaps[2].Name != "c.cov" {
		t.Fatalf("snapshot not name-sorted: %+v", snaps)
	}
	var sb strings.Builder
	if err := reg.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "b.count") || !strings.Contains(sb.String(), "count=1") {
		t.Fatalf("summary missing metrics:\n%s", sb.String())
	}

	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"name": "c.cov"`) {
		t.Fatalf("HTTP snapshot wrong: %d %s", rec.Code, rec.Body.String())
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty Tee should be nil")
	}
	var m Memory
	if Tee(nil, &m) != Tracer(&m) {
		t.Fatal("single-sink Tee should return the sink itself")
	}
	var m2 Memory
	tee := Tee(&m, &m2)
	tee.Emit(SlotStart(0))
	if len(m.Events) != 1 || len(m2.Events) != 1 {
		t.Fatalf("Tee did not fan out: %d/%d", len(m.Events), len(m2.Events))
	}
}

func TestMetricsSinkAggregates(t *testing.T) {
	reg := NewRegistry()
	sink := NewMetricsSink(reg)
	h := Hooks{Trace: sink}
	h.Emit(RunStart("sensim", 4))
	h.Emit(SlotEnd(0, 2, 4, 1))
	h.Emit(SlotEnd(1, 2, 3, 0.5))
	h.Emit(Death(1, 3))
	h.Emit(Crash(1, 2))
	h.Emit(Leak(1, 0, 2))
	h.Emit(Round(0, 12, 3))
	h.Emit(Patch(1, 0, 1))
	h.Emit(Recruit(1, 1))
	h.Emit(Replan(2, 5))
	h.Emit(Degraded(2, 1))
	h.Emit(TrialEnd("E1", 0))
	checks := map[string]uint64{
		"sim.runs": 1, "sim.slots": 2, "sim.deaths": 1,
		"chaos.crashes": 1, "chaos.leaks": 1,
		"net.rounds": 1, "net.messages": 12, "net.dropped": 3,
		"heal.patch_attempts": 1, "heal.recruits": 1, "heal.replans": 1,
		"heal.degraded_slots": 1, "exp.trials": 1,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("sim.alive").Value(); got != 3 {
		t.Errorf("sim.alive = %d, want 3", got)
	}
	if got := reg.Histogram("sim.coverage", CoverageBounds).Count(); got != 2 {
		t.Errorf("coverage count = %d, want 2", got)
	}
}

func TestJSONLEncoding(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{RunStart("sensim", 7), `{"e":"run_start","name":"sensim","nodes":7}`},
		{RunEnd("heal", 10, 8, 2), `{"e":"run_end","name":"heal","slots":10,"achieved":8,"deaths":2}`},
		{SlotStart(3), `{"e":"slot_start","t":3}`},
		{SlotEnd(3, 2, 7, 6.0/7), `{"e":"slot_end","t":3,"served":2,"alive":7,"cov":0.8571428571428571}`},
		{Death(4, 12), `{"e":"death","t":4,"node":12}`},
		{Crash(4, 12), `{"e":"crash","t":4,"node":12}`},
		{Leak(4, 2, 3), `{"e":"leak","t":4,"node":2,"amount":3}`},
		{Round(1, 24, 5), `{"e":"round","round":1,"sent":24,"dropped":5}`},
		{Patch(5, 1, 2), `{"e":"patch","t":5,"attempt":1,"enlisted":2}`},
		{Recruit(5, 9), `{"e":"recruit","t":5,"node":9}`},
		{Replan(6, 4), `{"e":"replan","t":6,"lifetime":4}`},
		{Degraded(6, 3), `{"e":"degraded","t":6,"uncovered":3}`},
		{TrialStart("E23", 2), `{"e":"trial_start","name":"E23","trial":2}`},
		{TrialEnd("E23", 2), `{"e":"trial_end","name":"E23","trial":2}`},
		{Reconfig(9, 2, 6, "clean"), `{"e":"reconfig","name":"clean","t":9,"overlap":2,"energy":6}`},
		{Reconfig(9, 0, 0, "degraded"), `{"e":"reconfig","name":"degraded","t":9,"overlap":0,"energy":0}`},
		{WakeMiss(10, 4), `{"e":"wake_miss","t":10,"node":4}`},
	}
	for _, c := range cases {
		if got := string(AppendJSON(nil, c.ev)); got != c.want {
			t.Errorf("AppendJSON(%v):\n got %s\nwant %s", c.ev.Type, got, c.want)
		}
	}
}

func TestJSONLSinkWritesLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.Emit(SlotStart(0))
	sink.Emit(SlotEnd(0, 1, 2, 1))
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	want := "{\"e\":\"slot_start\",\"t\":0}\n{\"e\":\"slot_end\",\"t\":0,\"served\":1,\"alive\":2,\"cov\":1}\n"
	if buf.String() != want {
		t.Fatalf("sink wrote:\n%swant:\n%s", buf.String(), want)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "fail" }

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONL(failWriter{})
	sink.Emit(SlotStart(0))
	sink.Emit(SlotStart(1))
	if sink.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

// The allocation pins: the instrumented runtimes stay allocation-free per
// slot/round when tracing is off (zero Hooks) and when aggregating into
// metrics. These are the obs half of the acceptance criterion; the runtime
// halves live in the sensim/distsim tests.
func TestAllocFreeHotPaths(t *testing.T) {
	var c Counter
	if a := testing.AllocsPerRun(1000, c.Inc); a != 0 {
		t.Errorf("Counter.Inc allocates %v/op", a)
	}
	var g Gauge
	if a := testing.AllocsPerRun(1000, func() { g.Set(3) }); a != 0 {
		t.Errorf("Gauge.Set allocates %v/op", a)
	}
	h := NewHistogram(CoverageBounds)
	if a := testing.AllocsPerRun(1000, func() { h.Observe(0.7) }); a != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", a)
	}
	var off Hooks
	if a := testing.AllocsPerRun(1000, func() { off.Emit(SlotEnd(1, 2, 3, 0.5)) }); a != 0 {
		t.Errorf("no-op Hooks.Emit allocates %v/op", a)
	}
	sink := NewMetricsSink(NewRegistry())
	on := Hooks{Trace: sink}
	if a := testing.AllocsPerRun(1000, func() { on.Emit(SlotEnd(1, 2, 3, 0.5)) }); a != 0 {
		t.Errorf("MetricsSink emit allocates %v/op", a)
	}
	jsonl := NewJSONL(&bytes.Buffer{})
	warm := Hooks{Trace: jsonl}
	warm.Emit(SlotEnd(100000, 1000, 1000, 0.123456789))
	// bytes.Buffer grows, so only the encoder itself is pinned here.
	if a := testing.AllocsPerRun(1000, func() {
		_ = AppendJSON(jsonl.buf[:0], SlotEnd(1, 2, 3, 0.5))
	}); a != 0 {
		t.Errorf("AppendJSON into warm buffer allocates %v/op", a)
	}
}

func TestMemoryCount(t *testing.T) {
	var m Memory
	m.Emit(SlotStart(0))
	m.Emit(SlotEnd(0, 1, 1, 1))
	m.Emit(SlotStart(1))
	if m.Count(EvSlotStart) != 2 || m.Count(EvSlotEnd) != 1 || m.Count(EvDeath) != 0 {
		t.Fatalf("counts wrong: %+v", m.Events)
	}
}
