package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are rejected at compile time by the unsigned
// type — counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. An observation lands in the first
// bucket whose upper bound is >= the value; values above every bound land in
// the implicit overflow bucket. Observe is allocation-free (a linear scan
// over the bounds plus three atomic adds), which is what lets the runtimes
// observe per-slot coverage on the hot path.
type Histogram struct {
	bounds  []float64 // immutable after construction, strictly increasing
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. It panics on an empty or unsorted bound list: a histogram's shape
// is part of the metric's contract, so a malformed one is a programming
// error, not a runtime condition.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d", i))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (the returned slice is shared; do
// not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Buckets returns a copy of the per-bucket counts; the last entry is the
// overflow bucket.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Snapshot is a point-in-time reading of one metric, the unit of the
// registry's JSON and text renderings.
type Snapshot struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"` // "counter" | "gauge" | "histogram"
	Value   float64   `json:"value,omitempty"`
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// Registry is a named collection of metrics. Get-or-create accessors make
// wiring cheap: the first lookup registers the metric, later lookups return
// the same instance. Lookups take a mutex, so callers on hot paths hold on
// to the returned metric instead of re-resolving it per event (as
// MetricsSink does).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it if needed.
// It panics if the name is already taken by a different metric kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a counter", name))
		}
		return c
	}
	c := &Counter{}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a gauge", name))
		}
		return g
	}
	g := &Gauge{}
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds if needed. The bounds of an already registered histogram
// win; they are part of its identity.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
		}
		return h
	}
	h := NewHistogram(bounds)
	r.metrics[name] = h
	return h
}

// Snapshot returns a point-in-time reading of every metric, sorted by name.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Snapshot, 0, len(names))
	for _, name := range names {
		switch m := r.metrics[name].(type) {
		case *Counter:
			out = append(out, Snapshot{Name: name, Kind: "counter", Value: float64(m.Value())})
		case *Gauge:
			out = append(out, Snapshot{Name: name, Kind: "gauge", Value: float64(m.Value())})
		case *Histogram:
			out = append(out, Snapshot{
				Name: name, Kind: "histogram",
				Count: m.Count(), Sum: m.Sum(),
				Bounds: m.Bounds(), Buckets: m.Buckets(),
			})
		}
	}
	r.mu.Unlock()
	return out
}

// WriteSummary renders the registry as aligned "name value" text lines, the
// shape ltsim -metrics prints after a run.
func (r *Registry) WriteSummary(w io.Writer) error {
	snaps := r.Snapshot()
	width := 0
	for _, s := range snaps {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range snaps {
		var err error
		switch s.Kind {
		case "histogram":
			mean := 0.0
			if s.Count > 0 {
				mean = s.Sum / float64(s.Count)
			}
			_, err = fmt.Fprintf(w, "%-*s  count=%d sum=%g mean=%.4f buckets=%v\n",
				width, s.Name, s.Count, s.Sum, mean, s.Buckets)
		default:
			_, err = fmt.Fprintf(w, "%-*s  %g\n", width, s.Name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP serves the registry as a JSON snapshot (an expvar-style live
// metrics endpoint): an array of Snapshot objects sorted by name. Wire it
// with http.Serve(listener, registry) — every path serves the same
// document.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Snapshot()) //nolint:errcheck // best-effort over HTTP
}

// MetricsSink is a Tracer that aggregates the event stream into a Registry:
// counters for slots, deaths, crashes, leaks, rounds, messages, patches,
// recruits, replans, degraded slots, and trials, plus a coverage histogram.
// Emit resolves every metric once at construction, so the per-event cost is
// a switch and one or two atomic adds — zero allocations (pinned by tests).
type MetricsSink struct {
	slots, deaths, crashes, leaks *Counter
	rounds, messages, dropped     *Counter
	patches, recruits, replans    *Counter
	degraded, trials, runs        *Counter
	alive                         *Gauge
	coverage                      *Histogram
}

// CoverageBounds is the bucket layout of the coverage histogram: full
// coverage lands in the overflow bucket, everything below in the partial
// buckets.
var CoverageBounds = []float64{0, 0.25, 0.5, 0.75, 0.999}

// NewMetricsSink registers the standard runtime metrics in reg and returns
// the aggregating tracer.
func NewMetricsSink(reg *Registry) *MetricsSink {
	return &MetricsSink{
		slots:    reg.Counter("sim.slots"),
		deaths:   reg.Counter("sim.deaths"),
		crashes:  reg.Counter("chaos.crashes"),
		leaks:    reg.Counter("chaos.leaks"),
		rounds:   reg.Counter("net.rounds"),
		messages: reg.Counter("net.messages"),
		dropped:  reg.Counter("net.dropped"),
		patches:  reg.Counter("heal.patch_attempts"),
		recruits: reg.Counter("heal.recruits"),
		replans:  reg.Counter("heal.replans"),
		degraded: reg.Counter("heal.degraded_slots"),
		trials:   reg.Counter("exp.trials"),
		runs:     reg.Counter("sim.runs"),
		alive:    reg.Gauge("sim.alive"),
		coverage: reg.Histogram("sim.coverage", CoverageBounds),
	}
}

// Emit implements Tracer.
func (m *MetricsSink) Emit(ev Event) {
	switch ev.Type {
	case EvRunStart:
		m.runs.Inc()
	case EvSlotEnd:
		m.slots.Inc()
		m.alive.Set(int64(ev.B))
		m.coverage.Observe(ev.F)
	case EvDeath:
		m.deaths.Inc()
	case EvCrash:
		m.crashes.Inc()
	case EvLeak:
		m.leaks.Inc()
	case EvRound:
		m.rounds.Inc()
		m.messages.Add(uint64(ev.A))
		m.dropped.Add(uint64(ev.B))
	case EvPatch:
		m.patches.Inc()
	case EvRecruit:
		m.recruits.Inc()
	case EvReplan:
		m.replans.Inc()
	case EvDegraded:
		m.degraded.Inc()
	case EvTrialEnd:
		m.trials.Inc()
	}
}
