package obs

import (
	"io"
	"strconv"
)

// JSONL is the offline-analysis sink: one JSON object per event, one event
// per line, written in the order emitted. The encoding is hand-rolled over
// a reused buffer, so it is deterministic byte for byte — two runs with the
// same seed produce identical trace files (the property the determinism
// tests pin) — and allocation-free once the buffer has grown to the longest
// line.
//
// Only the fields meaningful for the event type are encoded; the per-type
// field names are documented in docs/OBSERVABILITY.md. Example lines:
//
//	{"e":"slot_end","t":3,"served":2,"alive":7,"cov":0.857142857142857}
//	{"e":"crash","t":4,"node":12}
type JSONL struct {
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL returns a sink writing to w. Write errors are sticky: the first
// one is retained (see Err) and later events are dropped.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, buf: make([]byte, 0, 128)}
}

// Emit implements Tracer.
func (s *JSONL) Emit(ev Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendJSON(s.buf[:0], ev)
	s.buf = append(s.buf, '\n')
	_, s.err = s.w.Write(s.buf)
}

// Err returns the first write error, if any. Callers should check it after
// the run: Emit cannot report failure to the runtime mid-execution.
func (s *JSONL) Err() error { return s.err }

// AppendJSON appends the canonical single-line JSON encoding of ev to dst
// and returns the extended slice. Exported so tests can assert the exact
// bytes and so other sinks can reuse the encoding.
func AppendJSON(dst []byte, ev Event) []byte {
	dst = append(dst, `{"e":"`...)
	dst = append(dst, ev.Type.String()...)
	dst = append(dst, '"')
	if ev.Name != "" {
		dst = append(dst, `,"name":`...)
		dst = strconv.AppendQuote(dst, ev.Name)
	}
	switch ev.Type {
	case EvRunStart:
		dst = appendInt(dst, "nodes", ev.A)
	case EvRunEnd:
		dst = appendInt(dst, "slots", ev.T)
		dst = appendInt(dst, "achieved", ev.A)
		dst = appendInt(dst, "deaths", ev.B)
	case EvSlotStart:
		dst = appendInt(dst, "t", ev.T)
	case EvSlotEnd:
		dst = appendInt(dst, "t", ev.T)
		dst = appendInt(dst, "served", ev.A)
		dst = appendInt(dst, "alive", ev.B)
		dst = appendFloat(dst, "cov", ev.F)
	case EvDeath, EvCrash, EvRecruit:
		dst = appendInt(dst, "t", ev.T)
		dst = appendInt(dst, "node", ev.Node)
	case EvLeak:
		dst = appendInt(dst, "t", ev.T)
		dst = appendInt(dst, "node", ev.Node)
		dst = appendInt(dst, "amount", ev.A)
	case EvRound:
		dst = appendInt(dst, "round", ev.T)
		dst = appendInt(dst, "sent", ev.A)
		dst = appendInt(dst, "dropped", ev.B)
	case EvPatch:
		dst = appendInt(dst, "t", ev.T)
		dst = appendInt(dst, "attempt", ev.A)
		dst = appendInt(dst, "enlisted", ev.B)
	case EvReplan:
		dst = appendInt(dst, "t", ev.T)
		dst = appendInt(dst, "lifetime", ev.A)
	case EvDegraded:
		dst = appendInt(dst, "t", ev.T)
		dst = appendInt(dst, "uncovered", ev.A)
	case EvTrialStart, EvTrialEnd:
		dst = appendInt(dst, "trial", ev.T)
	case EvAttempt:
		dst = appendInt(dst, "try", ev.T)
		dst = appendInt(dst, "lifetime", ev.A)
		dst = appendInt(dst, "best", ev.B)
	case EvRefine:
		dst = appendInt(dst, "pass", ev.T)
		dst = appendInt(dst, "lifetime", ev.A)
		dst = appendInt(dst, "best", ev.B)
	case EvReconfig:
		dst = appendInt(dst, "t", ev.T)
		dst = appendInt(dst, "overlap", ev.A)
		dst = appendInt(dst, "energy", ev.B)
	case EvWakeMiss:
		dst = appendInt(dst, "t", ev.T)
		dst = appendInt(dst, "node", ev.Node)
	}
	return append(dst, '}')
}

func appendInt(dst []byte, key string, v int) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	return strconv.AppendInt(dst, int64(v), 10)
}

func appendFloat(dst []byte, key string, v float64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}
