// Package obs is the observability layer shared by every runtime in the
// repository: a lightweight metrics surface (counters, gauges, fixed-bucket
// histograms with an allocation-free hot path) plus a Tracer interface that
// receives typed per-round events — slot start/end, coverage, deaths,
// messages sent/dropped, heal patches, chaos injections — and fans them out
// to pluggable sinks (a JSONL file sink for offline analysis, an in-memory
// sink for tests, a metrics sink that aggregates events into a Registry).
//
// The paper's claims are all quantitative (lifetime slots, coverage
// fractions, message rounds), and related reconfiguration work
// (Censor-Hillel & Rabie, arXiv:1810.02106) reasons about per-round progress
// measures; this package exposes exactly those quantities so experiments can
// assert them instead of re-deriving them from Result structs.
//
// # Hooks: the canonical Options shape
//
// Every runtime Options struct (sensim.Options, heal.Options,
// distsim.Options) embeds a Hooks value, so observability is wired the same
// way everywhere:
//
//	sensim.Options{K: 1, Hooks: obs.Hooks{Trace: sink}}
//	distsim.Options{MaxRounds: 10, Radio: r, Hooks: obs.Hooks{Trace: sink}}
//
// The zero Hooks is the no-op default: emitting through it costs a single
// nil check and zero allocations, which is what keeps instrumented hot
// paths allocation-free when tracing is off (pinned by AllocsPerRun tests).
// Common runtime knobs use one canonical name across packages — K
// (domination tolerance), MaxSlots/MaxRounds (execution cap), Radio
// (unreliable-medium model), Src (seeded randomness) — documented here once
// instead of three times; see docs/OBSERVABILITY.md for the full schema.
package obs

import "sync"

// EventType identifies the kind of a trace event. The String form is the
// "e" field of the JSONL encoding.
type EventType uint8

const (
	// EvNone is the zero EventType; it is never emitted by the runtimes.
	EvNone EventType = iota
	// EvRunStart opens a runtime execution: Name = runtime label,
	// A = node count.
	EvRunStart
	// EvRunEnd closes a runtime execution: Name = runtime label, T = slots
	// (or rounds) executed, A = achieved lifetime, B = deaths.
	EvRunEnd
	// EvSlotStart opens energy-simulator slot T.
	EvSlotStart
	// EvSlotEnd closes slot T: A = serving nodes, B = alive nodes,
	// F = coverage fraction.
	EvSlotEnd
	// EvDeath reports a battery/failure-plan death of Node at slot T.
	EvDeath
	// EvCrash reports a chaos-plan crash of Node applied at slot T.
	EvCrash
	// EvLeak reports a chaos battery leak at slot T: Node, A = amount.
	EvLeak
	// EvRound closes message-passing round T: A = messages sent,
	// B = messages dropped by the radio.
	EvRound
	// EvPatch reports a heal recruitment attempt at slot T: A = attempt
	// index within the slot (0-based), B = nodes enlisted by the attempt.
	EvPatch
	// EvRecruit reports Node joining the active set at slot T.
	EvRecruit
	// EvReplan reports a centralized re-plan at slot T: A = the new
	// schedule's nominal lifetime.
	EvReplan
	// EvDegraded reports slot T running under-covered after the full
	// escalation ladder: A = uncovered node count.
	EvDegraded
	// EvTrialStart opens experiment trial T of the experiment Name.
	EvTrialStart
	// EvTrialEnd closes experiment trial T of the experiment Name.
	EvTrialEnd
	// EvAttempt reports one retry of the solver WHP driver: Name = solver
	// name, T = attempt index (0-based), A = the attempt's truncated
	// lifetime, B = the best lifetime so far.
	EvAttempt
	// EvRefine reports one improvement pass of an anytime refinement
	// solver: Name = refiner name, T = pass index (0-based), A = the
	// working schedule's lifetime after the pass, B = the best lifetime
	// seen so far.
	EvRefine
	// EvReconfig reports a reconfiguration transition planned at slot T:
	// Name = outcome mode ("clean", "degraded", or "violation"),
	// A = achieved overlap slots, B = overlap energy charged.
	EvReconfig
	// EvWakeMiss reports Node sleeping through its first scheduled wake-up
	// after a live schedule install at slot T (dissemination loss).
	EvWakeMiss
	// EvShard reports one stage of a sharded solve. Name = stage ("solve"
	// for a per-shard solve, "hit" for a shard-cache hit, "repair" for a
	// boundary recruitment, "replan" for a shard replan escalation,
	// "truncate" for a stitch giving up at T). Node = shard index (-1 for
	// whole-partition stages), T = stitch time slot where meaningful,
	// A/B = stage-specific payload (see the Shard constructor).
	EvShard
)

var eventNames = [...]string{
	EvNone:       "none",
	EvRunStart:   "run_start",
	EvRunEnd:     "run_end",
	EvSlotStart:  "slot_start",
	EvSlotEnd:    "slot_end",
	EvDeath:      "death",
	EvCrash:      "crash",
	EvLeak:       "leak",
	EvRound:      "round",
	EvPatch:      "patch",
	EvRecruit:    "recruit",
	EvReplan:     "replan",
	EvDegraded:   "degraded",
	EvTrialStart: "trial_start",
	EvTrialEnd:   "trial_end",
	EvAttempt:    "attempt",
	EvRefine:     "refine",
	EvReconfig:   "reconfig",
	EvWakeMiss:   "wake_miss",
	EvShard:      "shard",
}

// String returns the JSONL name of the event type.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return "unknown"
}

// Event is one typed trace record. It is a flat value type — no pointers,
// no slices — so emitting one allocates nothing. The meaning of T, Node, A,
// B, and F depends on Type (see the EventType constants); unused fields are
// zero, with Node = -1 when no node is involved.
type Event struct {
	Type EventType
	Name string  // runtime or experiment label (run/trial events only)
	T    int     // slot or round index
	Node int     // node ID, -1 when not applicable
	A, B int     // type-specific integers
	F    float64 // type-specific float (coverage)
}

// Constructors, one per event type, so call sites read like the schema.

// RunStart opens a runtime execution trace.
func RunStart(name string, nodes int) Event {
	return Event{Type: EvRunStart, Name: name, Node: -1, A: nodes}
}

// RunEnd closes a runtime execution trace.
func RunEnd(name string, slots, achieved, deaths int) Event {
	return Event{Type: EvRunEnd, Name: name, T: slots, Node: -1, A: achieved, B: deaths}
}

// SlotStart opens slot t.
func SlotStart(t int) Event { return Event{Type: EvSlotStart, T: t, Node: -1} }

// SlotEnd closes slot t with its serving/alive counts and coverage.
func SlotEnd(t, served, alive int, coverage float64) Event {
	return Event{Type: EvSlotEnd, T: t, Node: -1, A: served, B: alive, F: coverage}
}

// Death records a failure-plan or battery death.
func Death(t, node int) Event { return Event{Type: EvDeath, T: t, Node: node} }

// Crash records a chaos-plan crash.
func Crash(t, node int) Event { return Event{Type: EvCrash, T: t, Node: node} }

// Leak records a chaos battery leak.
func Leak(t, node, amount int) Event {
	return Event{Type: EvLeak, T: t, Node: node, A: amount}
}

// Round closes a message-passing round.
func Round(round, sent, dropped int) Event {
	return Event{Type: EvRound, T: round, Node: -1, A: sent, B: dropped}
}

// Patch records a heal recruitment attempt.
func Patch(t, attempt, enlisted int) Event {
	return Event{Type: EvPatch, T: t, Node: -1, A: attempt, B: enlisted}
}

// Recruit records a node enlisted into the active set.
func Recruit(t, node int) Event { return Event{Type: EvRecruit, T: t, Node: node} }

// Replan records a centralized re-plan escalation.
func Replan(t, lifetime int) Event {
	return Event{Type: EvReplan, T: t, Node: -1, A: lifetime}
}

// Degraded records a slot that ran under-covered.
func Degraded(t, uncovered int) Event {
	return Event{Type: EvDegraded, T: t, Node: -1, A: uncovered}
}

// TrialStart opens experiment trial i.
func TrialStart(name string, i int) Event {
	return Event{Type: EvTrialStart, Name: name, T: i, Node: -1}
}

// TrialEnd closes experiment trial i.
func TrialEnd(name string, i int) Event {
	return Event{Type: EvTrialEnd, Name: name, T: i, Node: -1}
}

// Attempt reports one retry of the solver WHP driver.
func Attempt(name string, try, lifetime, best int) Event {
	return Event{Type: EvAttempt, Name: name, T: try, Node: -1, A: lifetime, B: best}
}

// Refine reports one improvement pass of an anytime refinement solver.
func Refine(name string, pass, lifetime, best int) Event {
	return Event{Type: EvRefine, Name: name, T: pass, Node: -1, A: lifetime, B: best}
}

// Reconfig reports a planned reconfiguration transition. mode is "clean"
// (requested overlap achieved, primary solver), "degraded" (reduced overlap
// or Replan fallback), or "violation" (domination provably lost).
func Reconfig(t, overlap, energy int, mode string) Event {
	return Event{Type: EvReconfig, Name: mode, T: t, Node: -1, A: overlap, B: energy}
}

// WakeMiss reports a node missing its first wake-up after a live install.
func WakeMiss(t, node int) Event { return Event{Type: EvWakeMiss, T: t, Node: node} }

// Shard reports one stage of a sharded solve. stage is "solve" (shard solved
// fresh, A = schedule lifetime), "hit" (shard served from the compositional
// cache, A = schedule lifetime), "repair" (boundary recruitment at slot t,
// A = recruited node, B = uncovered node it covers), "replan" (escalation at
// slot t, A = the replanned tail's lifetime), or "truncate" (stitch gave up
// at slot t, A = uncovered node count). shard is the shard index, -1 for
// whole-partition stages.
func Shard(stage string, shard, t, a, b int) Event {
	return Event{Type: EvShard, Name: stage, T: t, Node: shard, A: a, B: b}
}

// Tracer receives the event stream of an instrumented execution. Emit is
// called synchronously from the runtime hot path, so implementations should
// be cheap; the provided sinks (JSONL, Memory, MetricsSink) all are.
type Tracer interface {
	Emit(Event)
}

// Hooks is the observability field every runtime Options embeds. The zero
// value is the no-op default: tracing off, one branch per emission, zero
// allocations.
type Hooks struct {
	// Trace receives every event the instrumented runtime emits; nil
	// disables tracing.
	Trace Tracer
}

// Emit forwards ev to the tracer, if any. With a nil tracer this is a
// single branch and never allocates — the property the AllocsPerRun tests
// pin.
func (h Hooks) Emit(ev Event) {
	if h.Trace != nil {
		h.Trace.Emit(ev)
	}
}

// Enabled reports whether a tracer is attached, for callers that want to
// skip building expensive event payloads entirely.
func (h Hooks) Enabled() bool { return h.Trace != nil }

// Tee fans events out to every non-nil tracer. It returns nil when no
// tracer remains (so the result can be stored directly in Hooks.Trace), and
// the tracer itself when only one remains (no indirection on the hot path).
func Tee(tracers ...Tracer) Tracer {
	live := make(multiTracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiTracer []Tracer

func (m multiTracer) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// Synchronized wraps t so concurrent Emit calls are serialized by a mutex —
// for handing a single-writer sink (JSONL, Memory) to parallel producers
// such as experiment trials. Nil in, nil out, so it composes with Tee and
// the Hooks zero value.
func Synchronized(t Tracer) Tracer {
	if t == nil {
		return nil
	}
	return &syncTracer{t: t}
}

type syncTracer struct {
	mu sync.Mutex
	t  Tracer
}

func (s *syncTracer) Emit(ev Event) {
	s.mu.Lock()
	s.t.Emit(ev)
	s.mu.Unlock()
}

// Memory is the in-memory test sink: it records every event in order.
type Memory struct {
	Events []Event
}

// Emit appends ev to the record.
func (m *Memory) Emit(ev Event) { m.Events = append(m.Events, ev) }

// Count returns how many recorded events have the given type.
func (m *Memory) Count(t EventType) int {
	n := 0
	for _, ev := range m.Events {
		if ev.Type == t {
			n++
		}
	}
	return n
}
