package instance

import (
	"testing"

	"repro/internal/gen"
)

func uniform(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestInstanceBasics(t *testing.T) {
	g := gen.Grid(4, 4)
	in := New(g, uniform(16, 3))
	if in.N() != 16 || in.Tolerance() != 1 {
		t.Fatalf("N=%d tolerance=%d", in.N(), in.Tolerance())
	}
	if in.WithK(2).Tolerance() != 2 {
		t.Fatalf("WithK(2) tolerance = %d", in.Tolerance())
	}
	if in.WithK(0).Tolerance() != 1 || in.WithK(-3).Tolerance() != 1 {
		t.Fatal("non-positive K must read as tolerance 1")
	}
}

func TestMetaCached(t *testing.T) {
	in := New(gen.Grid(5, 5), uniform(25, 2))
	m1 := in.Meta()
	m2 := in.Meta()
	if m1 != m2 {
		t.Fatal("Meta must be computed once and cached")
	}
	if m1.Class != Grid {
		t.Fatalf("5x5 grid classified as %v", m1.Class)
	}
}

func TestWithBudgetsSharesMeta(t *testing.T) {
	in := New(gen.Grid(5, 5), uniform(25, 2)).WithK(1)
	m := in.Meta()
	out := in.WithBudgets(uniform(25, 7))
	if out.Meta() != m {
		t.Fatal("WithBudgets must carry the computed Meta over")
	}
	if out.Budgets[0] != 7 || in.Budgets[0] != 2 {
		t.Fatal("WithBudgets must not alias the parent's budgets")
	}
}

func TestDerive(t *testing.T) {
	parent := New(gen.Grid(6, 6), uniform(36, 3)).WithK(2)
	if parent.Meta().Class != Grid {
		t.Fatal("parent should verify as grid")
	}
	// A rectangular tile of the grid re-verifies as a grid.
	nodes := []int{0, 1, 2, 6, 7, 8, 12, 13, 14} // 3x3 corner tile
	sub, _ := parent.Graph.InducedSubgraph(nodes)
	child := Derive(parent, sub, uniform(9, 3))
	if child.K != 2 {
		t.Fatalf("child K = %d, want inherited 2", child.K)
	}
	if child.Hint().Family != "grid" {
		t.Fatalf("child hint family = %q, want grid", child.Hint().Family)
	}
	if child.Meta().Class != Grid {
		t.Fatalf("3x3 tile classified as %v", child.Meta().Class)
	}
	// An irregular subgraph honestly lands off-grid.
	irr, _ := parent.Graph.InducedSubgraph([]int{0, 1, 2, 3, 6, 7, 12, 18, 19, 20})
	if c := Derive(parent, irr, uniform(10, 3)).Meta().Class; c == Grid || c == Torus {
		t.Fatalf("irregular tile classified as %v", c)
	}
	// A UDG parent propagates the udg hint.
	udgParent := New(gen.Grid(4, 4), uniform(16, 1)).WithHint(Hint{Family: "udg"})
	udgChild := Derive(udgParent, sub, uniform(9, 1))
	if !udgChild.Meta().UDG {
		t.Fatal("udg hint must propagate to derived children")
	}
}
