// Package instance is the typed problem-instance model — the single
// currency of the solve path. An Instance bundles the graph, the per-node
// battery budgets, and the domination tolerance K that every layer used to
// pass around as a bare (g, budgets, k) triple, and carries a lazily
// computed structural classification (Meta) so structure-aware solvers can
// dispatch on what kind of instance they are looking at instead of
// re-deriving it per call.
//
// Classification never trusts its inputs: generator hints (a graphgen
// edge-list comment, a parent shard's class) only steer which embeddings
// Classify tries first — every grid/torus claim is verified edge-for-edge
// before it lands in Meta, so a hinted lie degrades to Generic instead of
// a wrong fast path.
package instance

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
)

// Class is the verified structural family of an instance's graph.
type Class int

const (
	// Generic is the default: no special structure was verified.
	Generic Class = iota
	// Grid is the rows×cols grid graph with 4-neighborhoods (both
	// dimensions >= 2), up to node relabeling.
	Grid
	// Torus is the rows×cols grid with wraparound (both dimensions >= 3),
	// up to node relabeling.
	Torus
	// Tree is a connected acyclic graph (this includes paths, so a 1×n
	// "grid" classifies as Tree, not Grid).
	Tree
)

// String returns the class name the service and CLIs report.
func (c Class) String() string {
	switch c {
	case Grid:
		return "grid"
	case Torus:
		return "torus"
	case Tree:
		return "tree"
	default:
		return "generic"
	}
}

// Meta is the structure-detection result cached on an Instance. The
// Class/Rows/Cols/Coords fields are verified facts; UDG is a propagated
// generator hint (unit-disk membership has no cheap certificate).
type Meta struct {
	// Class is the verified structural family.
	Class Class
	// Rows, Cols are the grid/torus dimensions when Class is Grid or
	// Torus; zero otherwise.
	Rows, Cols int
	// Coords maps node id -> row*Cols + col for Grid/Torus classes: the
	// embedding the verifier certified. Nil otherwise.
	Coords []int32
	// UDG records a unit-disk-graph hint propagated from a generator.
	UDG bool
	// MinDeg, MaxDeg, AvgDeg, Density are degree statistics.
	MinDeg, MaxDeg int
	AvgDeg         float64
	Density        float64
	// Degeneracy is the graph degeneracy (max over the peeling order of
	// the minimum degree at removal time).
	Degeneracy int
	// Connected and Acyclic are the usual graph facts (Acyclic counts
	// forests: m == n - #components).
	Connected bool
	Acyclic   bool
}

// String renders the classification the way the CLIs report it, e.g.
// "grid 50x50" or "tree".
func (m *Meta) String() string {
	if m == nil {
		return Generic.String()
	}
	switch m.Class {
	case Grid, Torus:
		return fmt.Sprintf("%s %dx%d", m.Class, m.Rows, m.Cols)
	default:
		return m.Class.String()
	}
}

// Hint is unverified structural advice handed to the classifier — from a
// generator (graphgen tags its edge lists), or from a parent instance when
// a shard derives a child. Classify uses it only to order its trials.
type Hint struct {
	// Family is the advised family: "grid", "torus", "udg", or "".
	Family string
	// Rows, Cols are the advised dimensions for grid/torus families
	// (0 when unknown).
	Rows, Cols int
}

// String renders the hint in the form ParseHint reads ("grid 8 8",
// "torus 5 10", "udg"). Empty for the zero hint.
func (h Hint) String() string {
	switch h.Family {
	case "grid", "torus":
		return fmt.Sprintf("%s %d %d", h.Family, h.Rows, h.Cols)
	case "":
		return ""
	default:
		return h.Family
	}
}

// ParseHint parses a hint string as emitted by Hint.String (and embedded
// in graphgen edge-list comments). Unknown or malformed hints come back as
// the zero Hint — a hint is advice, never an error.
func ParseHint(s string) Hint {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Hint{}
	}
	switch fields[0] {
	case "grid", "torus":
		h := Hint{Family: fields[0]}
		if len(fields) >= 3 {
			r, err1 := strconv.Atoi(fields[1])
			c, err2 := strconv.Atoi(fields[2])
			if err1 == nil && err2 == nil && r > 0 && c > 0 {
				h.Rows, h.Cols = r, c
			}
		}
		return h
	case "udg":
		return Hint{Family: "udg"}
	default:
		return Hint{}
	}
}

// Instance is a typed problem instance: the graph, the per-node budgets,
// the domination tolerance, and a lazily computed structural
// classification. Instances are passed by pointer — the Meta cache makes
// the value non-copyable — and are immutable after construction except
// for the WithK/WithHint builder calls.
type Instance struct {
	// Graph is the communication graph.
	Graph *graph.Graph
	// Budgets is the per-node battery vector (len == Graph.N()).
	Budgets []int
	// K is the domination tolerance. <= 0 reads as 1 (Tolerance).
	K int

	hint     Hint
	metaOnce sync.Once
	meta     *Meta
}

// New returns an instance over g with the given budgets and tolerance 1.
func New(g *graph.Graph, budgets []int) *Instance {
	return &Instance{Graph: g, Budgets: budgets}
}

// WithK sets the domination tolerance and returns the instance (builder
// style: instance.New(g, b).WithK(2)).
func (in *Instance) WithK(k int) *Instance {
	in.K = k
	return in
}

// WithHint attaches unverified structural advice for the classifier. It
// must be called before the first Meta() read to have any effect.
func (in *Instance) WithHint(h Hint) *Instance {
	in.hint = h
	return in
}

// Hint returns the attached structural advice (zero when none).
func (in *Instance) Hint() Hint { return in.hint }

// N returns the node count.
func (in *Instance) N() int { return in.Graph.N() }

// Tolerance returns the effective domination tolerance: max(1, K).
func (in *Instance) Tolerance() int {
	if in.K < 1 {
		return 1
	}
	return in.K
}

// Meta returns the structural classification, computing it on first use
// and caching it for the lifetime of the instance. Safe for concurrent
// callers.
func (in *Instance) Meta() *Meta {
	in.metaOnce.Do(func() {
		in.meta = Classify(in.Graph, in.hint)
	})
	return in.meta
}

// WithBudgets returns a new instance sharing this instance's graph,
// tolerance, hint, and (already computed) classification, with a
// different budget vector. This is the cheap path for layers that re-solve
// the same graph under residual budgets (reconfig, refinement restarts):
// structure depends only on the graph, so the Meta cache carries over.
func (in *Instance) WithBudgets(budgets []int) *Instance {
	out := &Instance{Graph: in.Graph, Budgets: budgets, K: in.K, hint: in.hint}
	if in.meta != nil {
		out.metaOnce.Do(func() { out.meta = in.meta })
	}
	return out
}

// Derive builds a child instance (a shard's local subgraph, a post-delta
// graph) from a parent: the child inherits the parent's tolerance and a
// downgraded structural hint — a parent verified as Grid/Torus advises the
// child to try that family first, and a UDG hint propagates as-is — but
// the child is classified from scratch on its own graph, so a rectangular
// shard of a grid re-verifies as a grid while an irregular one honestly
// lands on Generic.
func Derive(parent *Instance, sub *graph.Graph, budgets []int) *Instance {
	child := New(sub, budgets).WithK(parent.K)
	h := parent.hint
	if parent.meta != nil {
		switch {
		case parent.meta.Class == Grid:
			h.Family, h.Rows, h.Cols = "grid", 0, 0
		case parent.meta.Class == Torus:
			h.Family, h.Rows, h.Cols = "torus", 0, 0
		case parent.meta.UDG:
			h.Family, h.Rows, h.Cols = "udg", 0, 0
		}
	}
	return child.WithHint(h)
}
