package instance

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// relabel returns an isomorphic copy of g with node ids permuted by perm
// (perm[old] = new).
func relabel(g *graph.Graph, perm []int) *graph.Graph {
	var edges [][2]int
	g.Edges(func(u, v int) {
		edges = append(edges, [2]int{perm[u], perm[v]})
	})
	return graph.NewFromEdges(g.N(), edges)
}

func TestClassifyGrid(t *testing.T) {
	for _, d := range []struct{ rows, cols int }{
		{2, 2}, {2, 3}, {2, 7}, {3, 3}, {3, 5}, {4, 4}, {5, 8}, {7, 7}, {10, 4}, {12, 17},
	} {
		g := gen.Grid(d.rows, d.cols)
		m := Classify(g, Hint{})
		if m.Class != Grid {
			t.Fatalf("%dx%d grid classified as %v", d.rows, d.cols, m.Class)
		}
		if m.Rows*m.Cols != d.rows*d.cols || m.Rows+m.Cols != d.rows+d.cols {
			t.Fatalf("%dx%d grid reported as %dx%d", d.rows, d.cols, m.Rows, m.Cols)
		}
		if len(m.Coords) != g.N() {
			t.Fatalf("%dx%d grid: %d coords for %d nodes", d.rows, d.cols, len(m.Coords), g.N())
		}
	}
}

func TestClassifyTorus(t *testing.T) {
	for _, d := range []struct{ rows, cols int }{
		{3, 3}, {3, 4}, {3, 5}, {4, 4}, {4, 6}, {5, 5}, {5, 10}, {6, 7},
	} {
		g := gen.Torus(d.rows, d.cols)
		m := Classify(g, Hint{})
		if m.Class != Torus {
			t.Fatalf("%dx%d torus classified as %v", d.rows, d.cols, m.Class)
		}
		if m.Rows*m.Cols != d.rows*d.cols {
			t.Fatalf("%dx%d torus reported as %dx%d", d.rows, d.cols, m.Rows, m.Cols)
		}
	}
}

// TestClassifyRelabelInvariant: classification is a graph property, so an
// arbitrary relabeling of the node ids must not change the Class or the
// dimension multiset.
func TestClassifyRelabelInvariant(t *testing.T) {
	src := rng.New(7)
	graphs := map[string]*graph.Graph{
		"grid5x8":  gen.Grid(5, 8),
		"grid2x9":  gen.Grid(2, 9),
		"torus4x5": gen.Torus(4, 5),
		"torus3x6": gen.Torus(3, 6),
		"tree":     gen.RandomTree(40, src.Split()),
		"gnp":      gen.GNP(60, 0.12, src.Split()),
		"ring":     gen.Ring(30),
	}
	for name, g := range graphs {
		want := Classify(g, Hint{})
		for trial := 0; trial < 5; trial++ {
			perm := src.Perm(g.N())
			got := Classify(relabel(g, perm), Hint{})
			if got.Class != want.Class {
				t.Fatalf("%s trial %d: class %v after relabel, want %v", name, trial, got.Class, want.Class)
			}
			if got.Rows*got.Cols != want.Rows*want.Cols || got.Rows+got.Cols != want.Rows+want.Cols {
				t.Fatalf("%s trial %d: dims %dx%d after relabel, want %dx%d",
					name, trial, got.Rows, got.Cols, want.Rows, want.Cols)
			}
		}
	}
}

// TestClassifyGNPNeverGrid is the false-positive property test: across
// many seeded GNP draws (including sizes that factor like plausible
// grids), none may classify as Grid or Torus.
func TestClassifyGNPNeverGrid(t *testing.T) {
	src := rng.New(11)
	for _, n := range []int{16, 20, 25, 36, 40, 49, 64} {
		for _, p := range []float64{0.05, 0.1, 0.2, 0.4} {
			for trial := 0; trial < 10; trial++ {
				g := gen.GNP(n, p, src.Split())
				m := Classify(g, Hint{})
				if m.Class == Grid || m.Class == Torus {
					t.Fatalf("GNP(n=%d, p=%.2f) trial %d classified as %v", n, p, trial, m.Class)
				}
			}
		}
	}
}

// TestClassifyHintedLieDegrades: a wrong hint must not flip the verified
// class — hints order trials, verification decides.
func TestClassifyHintedLieDegrades(t *testing.T) {
	src := rng.New(3)
	g := gen.GNP(25, 0.3, src)
	if m := Classify(g, Hint{Family: "grid", Rows: 5, Cols: 5}); m.Class == Grid || m.Class == Torus {
		t.Fatalf("GNP with a lying grid hint classified as %v", m.Class)
	}
	grid := gen.Grid(4, 6)
	if m := Classify(grid, Hint{Family: "torus", Rows: 4, Cols: 6}); m.Class != Grid {
		t.Fatalf("grid with a lying torus hint classified as %v", m.Class)
	}
}

// TestClassifyGenCorpus sweeps the generator families and pins exactly
// which ones may come back Grid/Torus: only the actual grid and torus
// generators (plus their isomorphs — Ring(4) is the 2x2 grid, and
// circulant/complete shapes that happen to be tori are checked by
// verification, not by name).
func TestClassifyGenCorpus(t *testing.T) {
	src := rng.New(5)
	cases := []struct {
		name      string
		g         *graph.Graph
		wantClass Class
	}{
		{"gnp", gen.GNP(50, 0.15, src.Split()), Generic},
		{"path", gen.Path(20), Tree},
		{"star", gen.Star(20), Tree},
		{"tree", gen.RandomTree(30, src.Split()), Tree},
		{"caterpillar", gen.Caterpillar(10, 3), Tree},
		{"ring", gen.Ring(12), Generic},
		{"complete", gen.Complete(8), Generic},
		{"circulant", gen.Circulant(16, 6), Generic},
		{"grid", gen.Grid(6, 9), Grid},
		{"torus", gen.Torus(5, 6), Torus},
		{"grid1xn", gen.Grid(1, 9), Tree}, // a path, honestly
	}
	for _, c := range cases {
		if m := Classify(c.g, Hint{}); m.Class != c.wantClass {
			t.Errorf("%s: classified %v, want %v", c.name, m.Class, c.wantClass)
		}
	}
	udg, _ := gen.RandomUDG(80, 9, 1.6, src.Split())
	m := Classify(udg, Hint{Family: "udg"})
	if !m.UDG {
		t.Error("udg hint not propagated to Meta.UDG")
	}
	if m.Class == Grid || m.Class == Torus {
		t.Errorf("random UDG classified as %v", m.Class)
	}
}

func TestClassifyStats(t *testing.T) {
	g := gen.Grid(4, 5)
	m := Classify(g, Hint{})
	if !m.Connected || m.Acyclic {
		t.Fatalf("grid stats wrong: connected=%v acyclic=%v", m.Connected, m.Acyclic)
	}
	if m.MinDeg != 2 || m.MaxDeg != 4 {
		t.Fatalf("grid degree stats wrong: min=%d max=%d", m.MinDeg, m.MaxDeg)
	}
	if m.Degeneracy != 2 {
		t.Fatalf("grid degeneracy = %d, want 2", m.Degeneracy)
	}
	if d := Classify(gen.RandomTree(25, rng.New(1)), Hint{}).Degeneracy; d != 1 {
		t.Fatalf("tree degeneracy = %d, want 1", d)
	}
	if d := Classify(gen.Complete(7), Hint{}).Degeneracy; d != 6 {
		t.Fatalf("K7 degeneracy = %d, want 6", d)
	}
}

func TestHintRoundTrip(t *testing.T) {
	for _, h := range []Hint{
		{Family: "grid", Rows: 8, Cols: 9},
		{Family: "torus", Rows: 5, Cols: 5},
		{Family: "udg"},
		{},
	} {
		got := ParseHint(h.String())
		if got != h {
			t.Errorf("round trip %q: got %+v, want %+v", h.String(), got, h)
		}
	}
	if h := ParseHint("grid x y"); h.Family != "grid" || h.Rows != 0 {
		t.Errorf("malformed dims should parse as dimensionless grid hint, got %+v", h)
	}
	if h := ParseHint("wobble 3"); h != (Hint{}) {
		t.Errorf("unknown hint should be zero, got %+v", h)
	}
}

func TestCoordsConsistent(t *testing.T) {
	// The certified embedding must map to distinct cells whose induced
	// adjacency is exactly the grid's.
	g := relabel(gen.Grid(6, 7), rng.New(9).Perm(42))
	m := Classify(g, Hint{})
	if m.Class != Grid {
		t.Fatalf("relabeled 6x7 grid classified as %v", m.Class)
	}
	seen := map[int32]bool{}
	for v, p := range m.Coords {
		if p < 0 || int(p) >= m.Rows*m.Cols || seen[p] {
			t.Fatalf("node %d: bad or duplicate coord %d", v, p)
		}
		seen[p] = true
	}
}

func ExampleClassify() {
	m := Classify(gen.Grid(8, 12), Hint{})
	fmt.Printf("%v %dx%d\n", m.Class, m.Rows, m.Cols)
	// Output: grid 8x12
}
