package instance

import (
	"repro/internal/graph"
)

// Classify runs the structure-detection pass over g: grid and torus
// recognition by degree-sequence gating plus an explicit coordinate
// embedding that is verified edge-for-edge, tree detection, and the
// degree/density/degeneracy statistics. hint (possibly zero) only orders
// the embedding trials — a wrong hint cannot produce a wrong Class,
// because every positive classification is certified by full adjacency
// verification. Cost is O(n + m) for the gates and statistics and
// O(n + m) per embedding trial, with a constant number of trials.
func Classify(g *graph.Graph, hint Hint) *Meta {
	n := g.N()
	m := &Meta{
		MinDeg: g.MinDegree(),
		MaxDeg: g.MaxDegree(),
		AvgDeg: g.AverageDegree(),
		UDG:    hint.Family == "udg",
	}
	comps := componentCount(g)
	m.Connected = comps <= 1
	if n > 1 {
		m.Density = float64(2*g.M()) / float64(n*(n-1))
	}
	m.Degeneracy = degeneracy(g)
	m.Acyclic = g.M() == n-comps

	if rows, cols, coords := detectGrid(g, hint, m.Connected); coords != nil {
		m.Class, m.Rows, m.Cols, m.Coords = Grid, rows, cols, coords
		return m
	}
	if rows, cols, coords := detectTorus(g, hint, m.Connected); coords != nil {
		m.Class, m.Rows, m.Cols, m.Coords = Torus, rows, cols, coords
		return m
	}
	if m.Connected && m.Acyclic && n > 0 {
		m.Class = Tree
	}
	return m
}

// componentCount counts connected components with one unsorted BFS sweep —
// Classify needs only the count (connectivity, the acyclicity identity
// m == n - components), never the component contents, so the per-component
// slices and sorting of graph.Components would be pure overhead here.
func componentCount(g *graph.Graph) int {
	n := g.N()
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	comps := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		comps++
		seen[s] = true
		queue = append(queue[:0], s)
		for i := 0; i < len(queue); i++ {
			for _, u := range g.Neighbors(queue[i]) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, int(u))
				}
			}
		}
	}
	return comps
}

// degeneracy computes the graph degeneracy by the standard linear-time
// peeling: repeatedly remove a minimum-degree node; the answer is the
// largest degree seen at removal time. The implementation is the
// Batagelj–Zaveršnik array form: nodes counting-sorted by degree into vert,
// with bin[d] the start of the degree-d block, so each peel is an O(1) swap
// instead of a bucket append (no churn, no stale entries).
func degeneracy(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	bin := make([]int, maxDeg+1)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		bin[d], start = start, start+bin[d]
	}
	vert := make([]int, n)
	pos := make([]int, n)
	next := append([]int(nil), bin...)
	for v := 0; v < n; v++ {
		p := next[deg[v]]
		next[deg[v]]++
		vert[p], pos[v] = v, p
	}
	k := 0
	for i := 0; i < n; i++ {
		v := vert[i]
		if deg[v] > k {
			k = deg[v]
		}
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if deg[w] > deg[v] {
				// Swap w to the front of its degree block, advance the
				// block start past it, and drop its degree by one.
				dw, pw := deg[w], pos[w]
				ps := bin[dw]
				u := vert[ps]
				if u != w {
					vert[ps], vert[pw] = w, u
					pos[w], pos[u] = ps, pw
				}
				bin[dw]++
				deg[w]--
			}
		}
	}
	return k
}

// dims is one (rows, cols) candidate for an embedding trial.
type dims struct{ rows, cols int }

// detectGrid recognizes rows×cols grid graphs (both dimensions >= 2)
// under arbitrary node relabeling. The degree histogram gates cheaply and
// pins the dimensions: a grid has exactly four degree-2 corners,
// 2(rows+cols)-8 degree-3 border nodes, and (rows-2)(cols-2) degree-4
// interior nodes, so rows+cols and rows*cols are both known and the
// dimensions are the roots of one quadratic. The embedding fill then
// assigns coordinates outward from a corner, and verify certifies every
// edge, so a non-grid can never pass.
func detectGrid(g *graph.Graph, hint Hint, connected bool) (int, int, []int32) {
	n := g.N()
	if n < 4 || !connected {
		return 0, 0, nil
	}
	// Degree gate: count degrees; only 2/3/4 allowed, exactly 4 corners.
	var d2, d3, d4 int
	corner := -1
	for v := 0; v < n; v++ {
		switch g.Degree(v) {
		case 2:
			d2++
			corner = v
		case 3:
			d3++
		case 4:
			d4++
		default:
			return 0, 0, nil
		}
	}
	if d2 != 4 || d2+d3+d4 != n {
		return 0, 0, nil
	}
	// rows+cols = (d3+8)/2, rows*cols = n; solve the quadratic over the
	// integers.
	if (d3+8)%2 != 0 {
		return 0, 0, nil
	}
	s := (d3 + 8) / 2
	r1, r2, ok := intRoots(s, n)
	if !ok || r1 < 2 {
		return 0, 0, nil
	}
	if d4 != (r1-2)*(r2-2) {
		return 0, 0, nil
	}
	trials := []dims{{r1, r2}}
	if r1 != r2 {
		trials = append(trials, dims{r2, r1})
	}
	// A matching hint is redundant (dimensions are pinned by the
	// histogram) but promotes its orientation to the first trial.
	if hint.Family == "grid" && hint.Rows >= 2 && hint.Cols >= 2 &&
		hint.Rows*hint.Cols == n && hint.Rows+hint.Cols == s && hint.Rows != r1 {
		trials[0], trials[1] = trials[1], trials[0]
	}
	nbrs := g.Neighbors(corner)
	for _, t := range trials {
		for swap := 0; swap < 2; swap++ {
			a, b := int(nbrs[0]), int(nbrs[1])
			if swap == 1 {
				a, b = b, a
			}
			if coords := fillGrid(g, t.rows, t.cols, corner, a, b); coords != nil {
				return t.rows, t.cols, coords
			}
		}
	}
	return 0, 0, nil
}

// intRoots returns the integer roots (r1 <= r2) of x^2 - s*x + p = 0.
func intRoots(s, p int) (int, int, bool) {
	disc := s*s - 4*p
	if disc < 0 {
		return 0, 0, false
	}
	q := isqrt(disc)
	if q*q != disc || (s-q)%2 != 0 {
		return 0, 0, false
	}
	return (s - q) / 2, (s + q) / 2, true
}

func isqrt(x int) int {
	if x < 0 {
		return 0
	}
	r := 0
	for r*r <= x {
		r++
	}
	return r - 1
}

// fillGrid attempts the coordinate embedding with corner at (0,0),
// a at (0,1), b at (1,0): rows 0 and 1 are filled left to right in
// lockstep (each new top cell pins the cell below it via a unique-common-
// neighbor constraint), then rows 2.. fill row-major with the generic
// rule (r,c) = the unique unassigned common neighbor of (r-1,c) and
// (r,c-1). Any ambiguity or miss fails the trial; success is certified by
// verifyEmbedding.
func fillGrid(g *graph.Graph, rows, cols, corner, a, b int) []int32 {
	n := g.N()
	if rows < 2 || cols < 2 || rows*cols != n {
		return nil
	}
	coords := make([]int32, n)
	for i := range coords {
		coords[i] = -1
	}
	cell := make([]int32, n) // row*cols+col -> node
	for i := range cell {
		cell[i] = -1
	}
	assign := func(r, c, v int) bool {
		if coords[v] != -1 || cell[r*cols+c] != -1 {
			return false
		}
		coords[v] = int32(r*cols + c)
		cell[r*cols+c] = int32(v)
		return true
	}
	assigned := func(v int) bool { return coords[v] != -1 }
	if !assign(0, 0, corner) || !assign(0, 1, a) || !assign(1, 0, b) {
		return nil
	}
	// (1,1): unique common neighbor of a and b besides the corner.
	d, ok := uniqueCommon(g, a, b, assigned)
	if !ok || !assign(1, 1, d) {
		return nil
	}
	// Rows 0 and 1 in lockstep.
	for c := 2; c < cols; c++ {
		top, ok := uniqueUnassignedNeighbor(g, int(cell[0*cols+c-1]), assigned)
		if !ok || !assign(0, c, top) {
			return nil
		}
		if rows > 1 {
			bot, ok := uniqueCommon(g, int(cell[1*cols+c-1]), top, assigned)
			if !ok || !assign(1, c, bot) {
				return nil
			}
		}
	}
	// Rows 2.. row-major.
	for r := 2; r < rows; r++ {
		first, ok := uniqueUnassignedNeighbor(g, int(cell[(r-1)*cols]), assigned)
		if !ok || !assign(r, 0, first) {
			return nil
		}
		for c := 1; c < cols; c++ {
			v, ok := uniqueCommon(g, int(cell[(r-1)*cols+c]), int(cell[r*cols+c-1]), assigned)
			if !ok || !assign(r, c, v) {
				return nil
			}
		}
	}
	if !verifyEmbedding(g, rows, cols, coords, false) {
		return nil
	}
	return coords
}

// uniqueCommon returns the unique unassigned common neighbor of u and v,
// or ok=false when there is none or more than one.
func uniqueCommon(g *graph.Graph, u, v int, assigned func(int) bool) (int, bool) {
	found, count := -1, 0
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(nu) && j < len(nv) {
		switch {
		case nu[i] < nv[j]:
			i++
		case nu[i] > nv[j]:
			j++
		default:
			w := int(nu[i])
			if !assigned(w) {
				found = w
				count++
			}
			i++
			j++
		}
	}
	return found, count == 1
}

// uniqueUnassignedNeighbor returns the unique unassigned neighbor of v.
func uniqueUnassignedNeighbor(g *graph.Graph, v int, assigned func(int) bool) (int, bool) {
	found, count := -1, 0
	for _, w32 := range g.Neighbors(v) {
		w := int(w32)
		if !assigned(w) {
			found = w
			count++
		}
	}
	return found, count == 1
}

// verifyEmbedding is the certificate: it checks that under coords, every
// node's actual neighbor set equals exactly the grid (or torus, with
// wraparound) neighborhood, and that the total edge count matches. Only
// after this can Classify report Grid or Torus, which is what makes false
// positives impossible regardless of how the fill got here.
func verifyEmbedding(g *graph.Graph, rows, cols int, coords []int32, wrap bool) bool {
	n := g.N()
	if len(coords) != n {
		return false
	}
	cell := make([]int32, rows*cols)
	for i := range cell {
		cell[i] = -1
	}
	for v := 0; v < n; v++ {
		p := coords[v]
		if p < 0 || int(p) >= rows*cols || cell[p] != -1 {
			return false
		}
		cell[p] = int32(v)
	}
	wantEdges := 0
	var expect []int32
	for v := 0; v < n; v++ {
		r, c := int(coords[v])/cols, int(coords[v])%cols
		expect = expect[:0]
		push := func(rr, cc int) {
			if wrap {
				rr, cc = (rr+rows)%rows, (cc+cols)%cols
			} else if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
				return
			}
			expect = append(expect, cell[rr*cols+cc])
		}
		push(r-1, c)
		push(r+1, c)
		push(r, c-1)
		push(r, c+1)
		got := g.Neighbors(v)
		if len(got) != len(expect) {
			return false
		}
		// Insertion-sort the ≤ 4 expected neighbors and compare against the
		// sorted adjacency slot for slot — set equality without a search
		// per edge.
		for i := 1; i < len(expect); i++ {
			for j := i; j > 0 && expect[j] < expect[j-1]; j-- {
				expect[j], expect[j-1] = expect[j-1], expect[j]
			}
		}
		for i, w := range expect {
			if got[i] != w {
				return false
			}
		}
		wantEdges += len(expect)
	}
	return wantEdges == 2*g.M()
}

// detectTorus recognizes rows×cols tori (both dimensions >= 3) under
// arbitrary relabeling. The gate is sharp — connected, 4-regular, and
// m == 2n — and then each factorization n = rows*cols (rows <= cols,
// rows >= 3, hinted factorization first) is tried with each ordered pair
// of node 0's neighbors as ((0,1), (1,0)). Unlike the grid there is no
// degree gradient to steer the fill, so fillTorus runs a small
// backtracking search bounded by a global step budget; wrong branches die
// on the unique-common-neighbor constraints within a row, and the final
// verifyEmbedding certificate keeps false positives impossible.
func detectTorus(g *graph.Graph, hint Hint, connected bool) (int, int, []int32) {
	n := g.N()
	if n < 9 || !connected || g.M() != 2*n {
		return 0, 0, nil
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != 4 {
			return 0, 0, nil
		}
	}
	var trials []dims
	for r := 3; r*r <= n; r++ {
		if n%r == 0 && n/r >= 3 {
			trials = append(trials, dims{r, n / r})
			if r != n/r {
				trials = append(trials, dims{n / r, r})
			}
		}
	}
	if hint.Family == "torus" && hint.Rows >= 3 && hint.Cols >= 3 && hint.Rows*hint.Cols == n {
		for i, t := range trials {
			if t.rows == hint.Rows && t.cols == hint.Cols && i > 0 {
				trials[0], trials[i] = trials[i], trials[0]
			}
		}
	}
	nbrs := g.Neighbors(0)
	for _, t := range trials {
		for _, a32 := range nbrs {
			for _, b32 := range nbrs {
				a, b := int(a32), int(b32)
				if a == b {
					continue
				}
				if coords := fillTorus(g, t.rows, t.cols, a, b); coords != nil {
					return t.rows, t.cols, coords
				}
			}
		}
	}
	return 0, 0, nil
}

// torusFill carries the backtracking state of one torus embedding trial.
type torusFill struct {
	g          *graph.Graph
	rows, cols int
	coords     []int32
	cell       []int32
	steps      int // global budget: a non-torus must fail fast, not wander
}

const torusStepFactor = 64

func (tf *torusFill) assigned(v int) bool { return tf.coords[v] != -1 }

func (tf *torusFill) assign(r, c, v int) bool {
	p := r*tf.cols + c
	if tf.coords[v] != -1 || tf.cell[p] != -1 {
		return false
	}
	tf.coords[v] = int32(p)
	tf.cell[p] = int32(v)
	return true
}

func (tf *torusFill) unassign(r, c, v int) {
	tf.coords[v] = -1
	tf.cell[r*tf.cols+c] = -1
}

// fillTorus embeds node 0 at (0,0), a at (0,1), b at (1,0) and fills rows
// 0 and 1 left to right in lockstep (backtracking over the <= 2 candidate
// continuations of row 0; the paired row-1 cell must be a unique common
// neighbor, which kills wrong branches within a step or two), then rows
// 2.. row-major with the same generic rule as the grid, backtracking over
// the <= 2 candidates for each row's first cell.
func fillTorus(g *graph.Graph, rows, cols, a, b int) []int32 {
	n := g.N()
	tf := &torusFill{g: g, rows: rows, cols: cols,
		coords: make([]int32, n), cell: make([]int32, rows*cols),
		steps: torusStepFactor * n}
	for i := range tf.coords {
		tf.coords[i] = -1
	}
	for i := range tf.cell {
		tf.cell[i] = -1
	}
	if !tf.assign(0, 0, 0) || !tf.assign(0, 1, a) || !tf.assign(1, 0, b) {
		return nil
	}
	d, ok := uniqueCommon(g, a, b, tf.assigned)
	if !ok || !tf.assign(1, 1, d) {
		return nil
	}
	if !tf.fillTopPair(2) {
		return nil
	}
	if !verifyEmbedding(g, rows, cols, tf.coords, true) {
		return nil
	}
	return tf.coords
}

// fillTopPair fills columns c.. of rows 0 and 1, then hands off to
// fillRows. For each column, the candidates for (0,c) are the unassigned
// neighbors of (0,c-1); the paired (1,c) must then be the unique
// unassigned common neighbor of (1,c-1) and the chosen (0,c).
func (tf *torusFill) fillTopPair(c int) bool {
	if tf.steps--; tf.steps < 0 {
		return false
	}
	if c == tf.cols {
		return tf.fillRows(2)
	}
	prevTop := int(tf.cell[c-1])
	prevBot := int(tf.cell[tf.cols+c-1])
	for _, w32 := range tf.g.Neighbors(prevTop) {
		top := int(w32)
		if tf.assigned(top) {
			continue
		}
		if !tf.assign(0, c, top) {
			continue
		}
		bot, ok := uniqueCommon(tf.g, prevBot, top, tf.assigned)
		if ok && tf.assign(1, c, bot) {
			if tf.fillTopPair(c + 1) {
				return true
			}
			tf.unassign(1, c, bot)
		}
		tf.unassign(0, c, top)
	}
	return false
}

// fillRows fills rows r.. row-major. The first cell of each row
// backtracks over the unassigned neighbors of the cell above; the rest of
// the row is forced by unique common neighbors.
func (tf *torusFill) fillRows(r int) bool {
	if tf.steps--; tf.steps < 0 {
		return false
	}
	if r == tf.rows {
		return true
	}
	above := int(tf.cell[(r-1)*tf.cols])
	for _, w32 := range tf.g.Neighbors(above) {
		first := int(w32)
		if tf.assigned(first) {
			continue
		}
		if !tf.assign(r, 0, first) {
			continue
		}
		if tf.fillRowRest(r, 1) && tf.fillRows(r+1) {
			return true
		}
		tf.unassignRow(r)
	}
	return false
}

// fillRowRest forces cells (r,1).. from unique common neighbors of the
// cell above and the cell to the left.
func (tf *torusFill) fillRowRest(r, c int) bool {
	for ; c < tf.cols; c++ {
		if tf.steps--; tf.steps < 0 {
			return false
		}
		v, ok := uniqueCommon(tf.g, int(tf.cell[(r-1)*tf.cols+c]), int(tf.cell[r*tf.cols+c-1]), tf.assigned)
		if !ok || !tf.assign(r, c, v) {
			return false
		}
	}
	return true
}

// unassignRow clears every assigned cell of row r (partial fills
// included) so the caller can try the next branch.
func (tf *torusFill) unassignRow(r int) {
	for c := 0; c < tf.cols; c++ {
		if v := tf.cell[r*tf.cols+c]; v != -1 {
			tf.unassign(r, c, int(v))
		}
	}
}
