package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func mustValidate(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
}

func TestGNP(t *testing.T) {
	src := rng.New(1)
	g := GNP(50, 0, src)
	if g.M() != 0 {
		t.Fatalf("G(50, 0) has %d edges", g.M())
	}
	g = GNP(50, 1, src)
	if g.M() != 50*49/2 {
		t.Fatalf("G(50, 1) has %d edges, want %d", g.M(), 50*49/2)
	}
	g = GNP(200, 0.1, src)
	mustValidate(t, g)
	// Expected edges = C(200,2)*0.1 = 1990; allow generous slack.
	if g.M() < 1500 || g.M() > 2500 {
		t.Errorf("G(200, 0.1) has %d edges, expected ~1990", g.M())
	}
}

func TestGNPBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1.5 did not panic")
		}
	}()
	GNP(10, 1.5, rng.New(1))
}

func TestRandomUDG(t *testing.T) {
	src := rng.New(2)
	g, pts := RandomUDG(300, 10, 1.2, src)
	mustValidate(t, g)
	if len(pts) != 300 || g.N() != 300 {
		t.Fatalf("sizes: %d points, %d nodes", len(pts), g.N())
	}
	// Every edge must respect the radius; spot-check all edges.
	g.Edges(func(u, v int) {
		if pts[u].Dist(pts[v]) > 1.2+1e-12 {
			t.Errorf("edge {%d,%d} at distance %v > radius", u, v, pts[u].Dist(pts[v]))
		}
	})
}

func TestUDGEmpty(t *testing.T) {
	g := UDG(nil, 1)
	if g.N() != 0 {
		t.Fatal("empty UDG not empty")
	}
}

func TestClusteredUDG(t *testing.T) {
	g, pts := ClusteredUDG(200, 4, 10, 0.4, 1.0, rng.New(3))
	mustValidate(t, g)
	if g.N() != 200 || len(pts) != 200 {
		t.Fatal("size mismatch")
	}
}

func TestStructuredFamilies(t *testing.T) {
	cases := []struct {
		name       string
		g          *graph.Graph
		n, m, d, D int
	}{
		{"path5", Path(5), 5, 4, 1, 2},
		{"ring6", Ring(6), 6, 6, 2, 2},
		{"star7", Star(7), 7, 6, 1, 6},
		{"k5", Complete(5), 5, 10, 4, 4},
		{"grid3x4", Grid(3, 4), 12, 17, 2, 4},
		{"torus3x3", Torus(3, 3), 9, 18, 4, 4},
		{"caterpillar3x2", Caterpillar(3, 2), 9, 8, 1, 4},
	}
	for _, c := range cases {
		mustValidate(t, c.g)
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
		if c.g.MinDegree() != c.d || c.g.MaxDegree() != c.D {
			t.Errorf("%s: δ=%d Δ=%d, want δ=%d Δ=%d", c.name, c.g.MinDegree(), c.g.MaxDegree(), c.d, c.D)
		}
	}
}

func TestRingSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(2) did not panic")
		}
	}()
	Ring(2)
}

func TestRandomTree(t *testing.T) {
	src := rng.New(4)
	for _, n := range []int{1, 2, 3, 10, 100} {
		g := RandomTree(n, src)
		mustValidate(t, g)
		if n > 0 && g.M() != n-1 {
			t.Fatalf("tree on %d nodes has %d edges", n, g.M())
		}
		if !g.Connected() {
			t.Fatalf("tree on %d nodes disconnected", n)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	src := rng.New(5)
	for _, c := range []struct{ n, d int }{{10, 3}, {20, 4}, {50, 6}, {7, 0}} {
		g := RandomRegular(c.n, c.d, src)
		mustValidate(t, g)
		for v := 0; v < c.n; v++ {
			if g.Degree(v) != c.d {
				t.Fatalf("n=%d d=%d: node %d has degree %d", c.n, c.d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularOddProductPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n*d did not panic")
		}
	}()
	RandomRegular(5, 3, rng.New(1))
}

func isDominatingSet(g *graph.Graph, set []int) bool {
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		ok := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func TestFujitaTrapStructure(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8} {
		g, part := FujitaTrap(k)
		mustValidate(t, g)
		if g.N() != k*k+k+1 {
			t.Fatalf("k=%d: n=%d, want %d", k, g.N(), k*k+k+1)
		}
		if len(part) != k {
			t.Fatalf("k=%d: partition has %d sets", k, len(part))
		}
		used := make([]bool, g.N())
		for s, set := range part {
			if !isDominatingSet(g, set) {
				t.Fatalf("k=%d: planted set %d not dominating", k, s)
			}
			for _, v := range set {
				if used[v] {
					t.Fatalf("k=%d: node %d in two planted sets", k, v)
				}
				used[v] = true
			}
		}
		// δ must be k (so domatic number ≤ k+1, and the planted k is near-tight).
		if g.MinDegree() != k {
			t.Fatalf("k=%d: δ=%d, want %d", k, g.MinDegree(), k)
		}
	}
}

func TestFujitaTrapUniqueMinimumDSProperty(t *testing.T) {
	// The set of all a-nodes must dominate; the set of one-b-per-column must
	// leave z undominated (this is the property that defeats greedy).
	k := 4
	g, _ := FujitaTrap(k)
	as := make([]int, k)
	for i := range as {
		as[i] = 1 + i
	}
	if !isDominatingSet(g, as) {
		t.Fatal("a-set is not dominating")
	}
	diag := make([]int, k)
	for j := 0; j < k; j++ {
		diag[j] = 1 + k + j*k + j // b_{j,j}
	}
	if isDominatingSet(g, diag) {
		t.Fatal("b-only permutation should NOT dominate (z uncovered)")
	}
}

func TestFujitaTrapSmallKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=1 did not panic")
		}
	}()
	FujitaTrap(1)
}

func TestPlantedDomatic(t *testing.T) {
	src := rng.New(6)
	for _, c := range []struct{ n, d, extra int }{{12, 3, 0}, {40, 4, 20}, {60, 6, 0}, {10, 1, 5}} {
		g, classes := PlantedDomatic(c.n, c.d, c.extra, src)
		mustValidate(t, g)
		if len(classes) != c.d {
			t.Fatalf("got %d classes, want %d", len(classes), c.d)
		}
		seen := make([]bool, c.n)
		for i, cl := range classes {
			if !isDominatingSet(g, cl) {
				t.Fatalf("n=%d d=%d: class %d not dominating", c.n, c.d, i)
			}
			for _, v := range cl {
				if seen[v] {
					t.Fatalf("node %d in two classes", v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("node %d in no class", v)
			}
		}
	}
}

func TestPlantedDomaticBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n not divisible by d did not panic")
		}
	}()
	PlantedDomatic(10, 3, 0, rng.New(1))
}

func TestGeneratorsDeterministic(t *testing.T) {
	g1 := GNP(100, 0.05, rng.New(42))
	g2 := GNP(100, 0.05, rng.New(42))
	if g1.M() != g2.M() {
		t.Fatal("GNP not reproducible")
	}
	equal := true
	g1.Edges(func(u, v int) {
		if !g2.HasEdge(u, v) {
			equal = false
		}
	})
	if !equal {
		t.Fatal("GNP edge sets differ for identical seeds")
	}
}
