// Package gen constructs the graph families used by the experiments:
// classical random graphs (G(n,p), random regular), the unit disk graphs the
// paper's wireless model motivates, structured graphs (grids, rings, stars)
// for unit tests, and two purpose-built families:
//
//   - FujitaTrap: a family on which the greedy domatic-partition algorithm
//     (repeatedly extract a minimum dominating set) obtains only 2 disjoint
//     dominating sets while the domatic number is Θ(√n) — an explicit
//     witness of the Ω(√n) greedy lower bound the paper cites from Fujita.
//   - PlantedDomatic: graphs shipped with a certified domatic partition of a
//     chosen size, used to validate partition algorithms against a known
//     lower bound.
package gen

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// GNP returns an Erdős–Rényi graph G(n, p): every pair is an edge
// independently with probability p.
func GNP(n int, p float64, src *rng.Source) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: probability %v out of [0,1]", p))
	}
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return graph.NewFromEdges(n, edges)
}

// UDG returns the unit disk graph of the given points at the given
// communication radius: {u,v} is an edge iff dist(u,v) <= radius.
func UDG(pts []geom.Point, radius float64) *graph.Graph {
	if len(pts) == 0 {
		return graph.New(0)
	}
	idx := geom.NewGridIndex(pts, radius)
	var edges [][2]int
	for u := range pts {
		for _, v := range idx.Within(u) {
			if int32(u) < v {
				edges = append(edges, [2]int{u, int(v)})
			}
		}
	}
	return graph.NewFromEdges(len(pts), edges)
}

// RandomUDG scatters n nodes uniformly in a side×side square and returns
// their unit disk graph at the given radius, along with the points (for
// visualization and the sensing-coverage example).
func RandomUDG(n int, side, radius float64, src *rng.Source) (*graph.Graph, []geom.Point) {
	pts := geom.UniformDeployment(n, side, src)
	return UDG(pts, radius), pts
}

// HeterogeneousUDG scatters n nodes uniformly in a side×side square, draws
// each node's radio range uniformly from [rMin, rMax], and returns the
// *symmetric* communication graph: {u,v} is an edge iff each can hear the
// other, dist(u,v) ≤ min(r_u, r_v). This realizes the paper's §2 assumption
// that links are bidirectional (unidirectional links being "costly", per the
// cited Prakash result) on physically heterogeneous radios. The per-node
// ranges are also returned.
func HeterogeneousUDG(n int, side, rMin, rMax float64, src *rng.Source) (*graph.Graph, []geom.Point, []float64) {
	if rMin <= 0 || rMax < rMin {
		panic(fmt.Sprintf("gen: invalid radius range [%v, %v]", rMin, rMax))
	}
	pts := geom.UniformDeployment(n, side, src)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = rMin + src.Float64()*(rMax-rMin)
	}
	g := graph.New(n)
	if n == 0 {
		return g, pts, radii
	}
	idx := geom.NewGridIndex(pts, rMax)
	for u := 0; u < n; u++ {
		for _, v := range idx.Within(u) {
			if int32(u) < v {
				r := radii[u]
				if radii[v] < r {
					r = radii[v]
				}
				if pts[u].Dist(pts[v]) <= r {
					g.AddEdge(u, int(v))
				}
			}
		}
	}
	return g, pts, radii
}

// ClusteredUDG deploys n nodes around k Gaussian clusters and returns their
// unit disk graph: the irregular-degree regime for the 2-hop ablation.
func ClusteredUDG(n, k int, side, sigma, radius float64, src *rng.Source) (*graph.Graph, []geom.Point) {
	pts := geom.ClusteredDeployment(n, k, side, sigma, src)
	return UDG(pts, radius), pts
}

// Path returns the path graph 0-1-…-(n-1).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle graph C_n. It panics for n in {1, 2}, which have no
// simple cycle.
func Ring(n int) *graph.Graph {
	if n == 1 || n == 2 {
		panic("gen: no simple cycle on 1 or 2 nodes")
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Grid returns the rows×cols grid graph with 4-neighborhoods.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows×cols torus (grid with wraparound). Both dimensions
// must be at least 3 so the wrap edges stay simple.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: torus needs rows, cols >= 3")
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
			g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// RandomTree returns a uniform random labeled tree on n nodes built from a
// random Prüfer sequence.
func RandomTree(n int, src *rng.Source) *graph.Graph {
	g := graph.New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.AddEdge(0, 1)
		return g
	}
	pruefer := make([]int, n-2)
	for i := range pruefer {
		pruefer[i] = src.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range pruefer {
		degree[v]++
	}
	// Repeatedly attach the smallest leaf to the next sequence element.
	used := make([]bool, n)
	for _, v := range pruefer {
		for leaf := 0; leaf < n; leaf++ {
			if degree[leaf] == 1 && !used[leaf] {
				g.AddEdge(leaf, v)
				used[leaf] = true
				degree[v]--
				break
			}
		}
	}
	// Two leaves remain; join them.
	u := -1
	for v := 0; v < n; v++ {
		if degree[v] == 1 && !used[v] {
			if u == -1 {
				u = v
			} else {
				g.AddEdge(u, v)
				break
			}
		}
	}
	return g
}

// RandomRegular returns a random d-regular graph on n nodes via the
// configuration (pairing) model with rejection of non-simple outcomes.
// n·d must be even and d < n. For the modest d used in experiments the
// expected number of retries is O(1).
func RandomRegular(n, d int, src *rng.Source) *graph.Graph {
	if d < 0 || d >= n {
		panic(fmt.Sprintf("gen: degree %d infeasible for n=%d", d, n))
	}
	if n*d%2 != 0 {
		panic(fmt.Sprintf("gen: n*d = %d*%d is odd", n, d))
	}
	for attempt := 0; ; attempt++ {
		if attempt > 10000 {
			panic("gen: RandomRegular failed to produce a simple graph")
		}
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := graph.New(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.AddEdge(u, v)
		}
		if ok {
			return g
		}
	}
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// clique on m+1 nodes, each new node attaches to m distinct existing nodes
// chosen with probability proportional to their degree. The result has the
// heavy-tailed degree distribution typical of scale-free networks — minimum
// degree m but hubs of much higher degree, a stress case for the local
// two-hop color ranges.
func BarabasiAlbert(n, m int, src *rng.Source) *graph.Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs 1 <= m < n (got n=%d m=%d)", n, m))
	}
	g := graph.New(n)
	// Repeated-endpoints list: node v appears once per incident edge, so
	// sampling uniformly from it is degree-proportional sampling.
	var endpoints []int
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			u := endpoints[src.Intn(len(endpoints))]
			if u != v && !chosen[u] {
				chosen[u] = true
			}
		}
		for u := range chosen {
			g.AddEdge(v, u)
			endpoints = append(endpoints, v, u)
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube graph on 2^d nodes: i and j
// are adjacent iff they differ in exactly one bit. d-regular with diameter
// d; a classic structured family for partition algorithms.
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 20 {
		panic(fmt.Sprintf("gen: hypercube dimension %d out of [0, 20]", d))
	}
	n := 1 << d
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b}: parts {0..a-1} and {a..a+b-1} with all
// cross edges. Its domatic number is min(a, b) for a, b >= 2 (disjoint
// cross pairs; any dominating set needs two nodes) and 2 when min(a, b) = 1
// (the star) — useful exact reference points, verified in the tests.
func CompleteBipartite(a, b int) *graph.Graph {
	if a < 0 || b < 0 {
		panic("gen: negative part size")
	}
	g := graph.New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Circulant returns the circulant graph on n nodes where node i is adjacent
// to i±1, …, i±(d/2) (mod n): a deterministic d-regular graph for even d
// that scales to any size (unlike the pairing model, whose rejection rate
// explodes with d). Requires even d with 0 <= d <= n-1; the offsets are
// then automatically distinct (d/2 ≤ (n-2)/2 < n/2).
func Circulant(n, d int) *graph.Graph {
	if d < 0 || d%2 != 0 {
		panic(fmt.Sprintf("gen: circulant degree %d must be even and non-negative", d))
	}
	if d >= n {
		panic(fmt.Sprintf("gen: circulant degree %d infeasible for n=%d", d, n))
	}
	g := graph.New(n)
	for off := 1; off <= d/2; off++ {
		for i := 0; i < n; i++ {
			g.AddEdgeIfAbsent(i, (i+off)%n)
		}
	}
	return g
}

// Caterpillar returns a caterpillar: a spine path of the given length with
// legs pendant leaves attached to every spine node. Minimum degree 1 makes
// it a stress case for lifetime scheduling (leaves can only be dominated by
// themselves or their single spine neighbor).
func Caterpillar(spine, legs int) *graph.Graph {
	if spine < 1 || legs < 0 {
		panic("gen: caterpillar needs spine >= 1 and legs >= 0")
	}
	g := graph.New(spine + spine*legs)
	for i := 0; i+1 < spine; i++ {
		g.AddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(i, next)
			next++
		}
	}
	return g
}
