package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// FujitaTrap returns a graph on n = k² + k + 1 nodes on which the greedy
// domatic-partition algorithm — repeatedly extract a *minimum* dominating
// set from the unused nodes — finds only 2 disjoint dominating sets, while
// the domatic number is at least k = Θ(√n). This realizes, with an explicit
// construction we can verify in code, the Ω(√n) greedy lower bound the paper
// cites from Fujita (WAAC 1999).
//
// Construction (k ≥ 2):
//
//	z          (node 0)          adjacent to every a_i
//	a_0..a_{k-1}  (nodes 1..k)   a_i adjacent to z and to its row b_{i,*}
//	b_{i,j}    (nodes k+1..)     column j is a clique; b_{i,j} adjacent to a_i
//
// Why greedy collapses: any dominating set needs ≥ k nodes just to dominate
// the k² b-nodes (every node dominates at most k of them), and the *unique*
// size-k dominating set is {a_0..a_{k-1}} (a set of k column-b's leaves z
// undominated). Greedy therefore burns all a's in round one. Round two must
// dominate z, whose only remaining dominator is z itself, so round two takes
// z plus a permutation of b's. Round three has no dominator of z left:
// greedy stops at 2.
//
// Why the domatic number is ≥ k: the k sets
//
//	D_s = {a_s} ∪ {b_{i, (i+s) mod k} : i ∈ [0,k)}      s ∈ [0,k)
//
// are pairwise disjoint (Latin-square column choice) and each dominates
// every node. The second return value is exactly this certified partition.
func FujitaTrap(k int) (*graph.Graph, [][]int) {
	if k < 2 {
		panic("gen: FujitaTrap needs k >= 2")
	}
	n := k*k + k + 1
	g := graph.New(n)
	a := func(i int) int { return 1 + i }
	b := func(i, j int) int { return 1 + k + i*k + j }
	for i := 0; i < k; i++ {
		g.AddEdge(0, a(i)) // z - a_i
		for j := 0; j < k; j++ {
			g.AddEdge(a(i), b(i, j)) // a_i - its row
		}
	}
	// Column cliques.
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			for i2 := i + 1; i2 < k; i2++ {
				g.AddEdge(b(i, j), b(i2, j))
			}
		}
	}
	partition := make([][]int, k)
	for s := 0; s < k; s++ {
		set := []int{a(s)}
		for i := 0; i < k; i++ {
			set = append(set, b(i, (i+s)%k))
		}
		partition[s] = set
	}
	return g, partition
}

// PlantedDomatic returns a graph with a certified domatic partition of size
// d on n nodes (n must be a multiple of d), plus that partition. Node v is
// assigned class v mod d; for every node u and every class c ≠ class(u), an
// edge is added from u to a random member of class c, guaranteeing every
// class dominates every node. extraEdges additional random edges are mixed
// in to roughen the structure. The returned partition is a lower-bound
// certificate for the domatic number.
func PlantedDomatic(n, d, extraEdges int, src *rng.Source) (*graph.Graph, [][]int) {
	if d < 1 || n%d != 0 {
		panic(fmt.Sprintf("gen: PlantedDomatic needs d >= 1 dividing n (got n=%d d=%d)", n, d))
	}
	g := graph.New(n)
	classes := make([][]int, d)
	for v := 0; v < n; v++ {
		classes[v%d] = append(classes[v%d], v)
	}
	for u := 0; u < n; u++ {
		for c := 0; c < d; c++ {
			if c == u%d {
				continue
			}
			members := classes[c]
			w := members[src.Intn(len(members))]
			g.AddEdgeIfAbsent(u, w)
		}
	}
	for e := 0; e < extraEdges; e++ {
		g.AddEdgeIfAbsent(src.Intn(n), src.Intn(n))
	}
	return g, classes
}
