package gen

import (
	"testing"

	"repro/internal/rng"
)

func TestBarabasiAlbert(t *testing.T) {
	src := rng.New(1)
	g := BarabasiAlbert(200, 3, src)
	mustValidate(t, g)
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	// Edges: C(4,2) seed + 3 per additional node.
	want := 6 + 3*(200-4)
	if g.M() != want {
		t.Fatalf("m = %d, want %d", g.M(), want)
	}
	if g.MinDegree() < 3 {
		t.Fatalf("δ = %d, want >= 3", g.MinDegree())
	}
	// Scale-free: the maximum degree should far exceed the minimum.
	if g.MaxDegree() < 3*g.MinDegree() {
		t.Errorf("Δ = %d suspiciously close to δ = %d for a BA graph", g.MaxDegree(), g.MinDegree())
	}
	if !g.Connected() {
		t.Fatal("BA graph must be connected")
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n <= m did not panic")
		}
	}()
	BarabasiAlbert(3, 3, rng.New(1))
}

func TestHypercube(t *testing.T) {
	for d := 0; d <= 6; d++ {
		g := Hypercube(d)
		mustValidate(t, g)
		if g.N() != 1<<d {
			t.Fatalf("d=%d: n = %d", d, g.N())
		}
		if g.M() != d*(1<<d)/2 {
			t.Fatalf("d=%d: m = %d, want %d", d, g.M(), d*(1<<d)/2)
		}
		if d > 0 && (g.MinDegree() != d || g.MaxDegree() != d) {
			t.Fatalf("d=%d: not %d-regular", d, d)
		}
		if !g.Connected() {
			t.Fatalf("d=%d: disconnected", d)
		}
	}
}

func TestHypercubePanicsOnHugeDimension(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("d=21 did not panic")
		}
	}()
	Hypercube(21)
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	mustValidate(t, g)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K(3,4): n=%d m=%d", g.N(), g.M())
	}
	if g.MinDegree() != 3 || g.MaxDegree() != 4 {
		t.Fatalf("K(3,4): δ=%d Δ=%d", g.MinDegree(), g.MaxDegree())
	}
	// No edges within a part.
	if g.HasEdge(0, 1) || g.HasEdge(3, 4) {
		t.Fatal("intra-part edge present")
	}
	// Degenerate parts.
	if g := CompleteBipartite(0, 5); g.M() != 0 {
		t.Fatal("K(0,5) should have no edges")
	}
}

func TestHeterogeneousUDG(t *testing.T) {
	src := rng.New(9)
	g, pts, radii := HeterogeneousUDG(200, 12, 1.0, 3.0, src)
	mustValidate(t, g)
	if g.N() != 200 || len(pts) != 200 || len(radii) != 200 {
		t.Fatal("size mismatch")
	}
	for _, r := range radii {
		if r < 1.0 || r > 3.0 {
			t.Fatalf("radius %v out of range", r)
		}
	}
	// Every edge must be mutually reachable; every non-edge within both
	// radii would be a bug — spot check edges.
	g.Edges(func(u, v int) {
		d := pts[u].Dist(pts[v])
		if d > radii[u]+1e-12 || d > radii[v]+1e-12 {
			t.Errorf("edge {%d,%d} at distance %v exceeds a radius (%v, %v)",
				u, v, d, radii[u], radii[v])
		}
	})
	// Cross-check symmetry against brute force on a small instance.
	g2, pts2, radii2 := HeterogeneousUDG(60, 6, 0.8, 2.0, src)
	for u := 0; u < g2.N(); u++ {
		for v := u + 1; v < g2.N(); v++ {
			d := pts2[u].Dist(pts2[v])
			want := d <= radii2[u] && d <= radii2[v]
			if g2.HasEdge(u, v) != want {
				t.Fatalf("edge {%d,%d}: got %v want %v", u, v, g2.HasEdge(u, v), want)
			}
		}
	}
}

func TestHeterogeneousUDGPanicsOnBadRadii(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rMax < rMin did not panic")
		}
	}()
	HeterogeneousUDG(10, 5, 2, 1, rng.New(1))
}

func TestCirculant(t *testing.T) {
	g := Circulant(10, 4)
	mustValidate(t, g)
	if g.MinDegree() != 4 || g.MaxDegree() != 4 {
		t.Fatalf("C(10,4): δ=%d Δ=%d, want 4-regular", g.MinDegree(), g.MaxDegree())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || g.HasEdge(0, 3) {
		t.Fatal("circulant offsets wrong")
	}
	if !g.HasEdge(0, 9) || !g.HasEdge(0, 8) {
		t.Fatal("circulant wraparound missing")
	}
	// d = 0: edgeless.
	if g := Circulant(5, 0); g.M() != 0 {
		t.Fatal("C(5,0) has edges")
	}
}

func TestCirculantPanics(t *testing.T) {
	// Odd degree, degree >= n, overlapping offsets (d/2 >= ceil(n/2)).
	cases := []struct{ n, d int }{{5, 3}, {4, 6}, {6, 6}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Circulant(%d,%d) did not panic", c.n, c.d)
				}
			}()
			Circulant(c.n, c.d)
		}()
	}
}
