package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Cache is the compositional shard-schedule cache contract. Keys are
// content-addressed (Key), so implementations never need an invalidation
// protocol: a shard whose local instance changed simply has a new key, and
// a stale entry ages out of whatever eviction policy the implementation
// uses. Implementations must be safe for concurrent use — per-shard solves
// call Get/Put from pool workers.
type Cache interface {
	// Get returns the schedule cached under key, if any. Callers must not
	// mutate the returned schedule.
	Get(key string) (*core.Schedule, bool)
	// Put stores the schedule under key.
	Put(key string, s *core.Schedule)
}

// Options configures a sharded solve.
type Options struct {
	// Spec names the registry solver every shard runs (including refiner
	// specs with a Base).
	Spec solver.Spec
	// Solver carries the per-shard driver knobs — Tries, Budget, Deadline,
	// Cancel, RaceWidth — shared by every shard. Src is ignored: per-shard
	// sources derive from Seed so cache keys can name them. Pool is
	// ignored in favor of Options.Pool.
	Solver solver.Options
	// Seed is the root seed. Shard i solves with the i-th split child (by
	// stable Shard.Index), so results are deterministic in (partition,
	// Seed) and independent of scheduling; the seed is part of every cache
	// key.
	Seed uint64
	// Pool, when non-nil, runs per-shard solves concurrently; shards a
	// busy pool rejects run inline on the caller, so a sharded solve never
	// deadlocks on a shared pool. Nil solves sequentially unless
	// Transient, below.
	Pool *par.Pool
	// TransientPool, when true and Pool is nil, spins up a pool sized to
	// min(GOMAXPROCS, shards) for the duration of the call (the CLI path).
	TransientPool bool
	// Cache, when non-nil, is consulted before and updated after every
	// per-shard solve.
	Cache Cache
	// Hooks receives one obs "shard" event per shard: stage "hit" for a
	// cache hit, "solve" for a fresh solve. Forwarded (synchronized) to
	// the per-shard solver drivers as well.
	Hooks obs.Hooks
}

// ShardResult is one shard's solved schedule, in the shard's local IDs.
type ShardResult struct {
	Shard    *Shard
	Schedule *core.Schedule
	// Key is the content-addressed cache key of this solve (local
	// instance + solver parameters + seed).
	Key string
	// Cached reports whether Schedule came from the cache.
	Cached bool
}

// Key returns the content-addressed cache key of solving sh as a piece of
// the parent instance: the shard's local fingerprint material plus every
// solver parameter that determines the schedule. Two invocations share a
// key exactly when they are guaranteed to produce the same schedule. The
// parent's tolerance and structure hint are part of the key — the hint can
// steer the classifier's choice among equally valid embeddings, which the
// grid solver's coloring depends on.
func Key(sh *Shard, parent *instance.Instance, opt Options) string {
	h := graph.NewHasher()
	sh.HashInto(h, parent.Budgets)
	h.String("shard.alg", opt.Spec.Name)
	h.String("shard.base", opt.Spec.Base)
	h.String("shard.fallback", opt.Spec.Fallback)
	h.Int("shard.k", parent.Tolerance())
	h.String("shard.hint", parent.Hint().String())
	h.Float("shard.kconst", opt.Spec.KConst)
	h.Int("shard.tries", opt.Solver.Tries)
	h.Int("shard.budget", opt.Solver.Budget)
	h.Int("shard.width", opt.Solver.RaceWidth)
	h.Uint64("shard.seed", opt.Seed)
	h.Int("shard.index", sh.Index)
	return h.Sum()
}

// SolveShards solves every shard of p independently — concurrently when a
// pool is available — and returns the per-shard schedules in partition
// position order. Shard i's typed instance derives from the parent via
// instance.Derive: its local subgraph (owned nodes plus halo, so boundary
// nodes keep full closed neighborhoods) under the local slice of the
// parent's budgets, inheriting the parent's tolerance and a downgraded
// structure hint (a tile of a certified grid re-verifies as a grid in its
// own right, so per-shard auto dispatch stays honest). Shard i's source is
// the Index-th split child of the root seed, making the outcome
// deterministic and each shard's result a pure function of its cache key.
//
// The first shard error cancels the remaining solves (by position, so the
// reported error is deterministic too). A fired Options.Solver.Cancel or
// Deadline surfaces as solver.ErrCanceled.
func SolveShards(parent *instance.Instance, p *Partition, opt Options) ([]*ShardResult, error) {
	budgets := parent.Budgets
	if len(budgets) != len(p.Assign) {
		return nil, fmt.Errorf("shard: %d budgets for %d nodes", len(budgets), len(p.Assign))
	}
	maxIndex := 0
	for _, sh := range p.Shards {
		if sh.Index > maxIndex {
			maxIndex = sh.Index
		}
	}
	children := rng.New(opt.Seed).SplitN(maxIndex + 1)
	hooks := obs.Hooks{Trace: obs.Synchronized(opt.Hooks.Trace)}

	results := make([]*ShardResult, len(p.Shards))
	errs := make([]error, len(p.Shards))
	var aborted atomic.Bool
	baseCancel := opt.Solver.Cancel
	cancel := func() bool {
		return aborted.Load() || (baseCancel != nil && baseCancel())
	}

	solveOne := func(pos int) {
		sh := p.Shards[pos]
		key := Key(sh, parent, opt)
		if opt.Cache != nil {
			if s, ok := opt.Cache.Get(key); ok {
				results[pos] = &ShardResult{Shard: sh, Schedule: s, Key: key, Cached: true}
				hooks.Emit(obs.Shard("hit", sh.Index, 0, s.Lifetime(), 0))
				return
			}
		}
		if aborted.Load() {
			errs[pos] = solver.ErrCanceled
			return
		}
		so := opt.Solver
		so.Src = children[sh.Index]
		so.Cancel = cancel
		so.Pool = opt.Pool
		so.Hooks = hooks
		local := sh.LocalBudgets(budgets, nil)
		s, err := solver.Solve(instance.Derive(parent, sh.Sub, local), opt.Spec, so)
		if err != nil {
			errs[pos] = err
			aborted.Store(true)
			return
		}
		results[pos] = &ShardResult{Shard: sh, Schedule: s, Key: key}
		hooks.Emit(obs.Shard("solve", sh.Index, 0, s.Lifetime(), 0))
		if opt.Cache != nil {
			opt.Cache.Put(key, s)
		}
	}

	pool := opt.Pool
	transient := pool == nil && opt.TransientPool && len(p.Shards) > 1
	if transient {
		workers := runtime.GOMAXPROCS(0)
		if len(p.Shards) < workers {
			workers = len(p.Shards)
		}
		pool = par.NewPool(workers, len(p.Shards))
		opt.Pool = nil // shard solves parallelize across, not within, shards
	}
	if pool == nil {
		for pos := range p.Shards {
			solveOne(pos)
		}
	} else {
		var wg sync.WaitGroup
		for pos := range p.Shards {
			wg.Add(1)
			pos := pos
			task := func() { defer wg.Done(); solveOne(pos) }
			if !pool.TrySubmit(task) {
				task()
			}
		}
		wg.Wait()
	}
	if transient {
		pool.Close()
	}

	// A real error outranks the sibling cancellations it triggered.
	canceled := false
	for pos, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, solver.ErrCanceled) {
			canceled = true
			continue
		}
		return nil, fmt.Errorf("shard %d: %w", p.Shards[pos].Index, err)
	}
	if canceled {
		return nil, solver.ErrCanceled
	}
	return results, nil
}
