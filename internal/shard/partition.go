package shard

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Geometric partitions a deployment with known coordinates into an
// r×c grid of tiles covering the bounding box, r*c >= shards, assigning
// each node to the tile containing its point (overflow tiles beyond the
// requested count clamp to the last shard). UDG and grid instances cut this
// way have short boundaries — edges only cross between adjacent tiles — so
// the stitcher's repair work concentrates on thin seams. Tiles that catch
// no nodes are dropped. The result is deterministic in (pts, shards).
func Geometric(g *graph.Graph, pts []geom.Point, shards int) (*Partition, error) {
	n := g.N()
	if len(pts) != n {
		return nil, fmt.Errorf("shard: %d points for %d nodes", len(pts), n)
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: %d shards requested, need >= 1", shards)
	}
	if n == 0 {
		return nil, fmt.Errorf("shard: cannot partition the empty graph")
	}
	if shards > n {
		shards = n
	}
	if shards == 1 {
		p := Whole(g)
		p.Method = "geom"
		return p, nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(shards))))
	rows := (shards + cols - 1) / cols
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	w, h := maxX-minX, maxY-minY
	assign := make([]int, n)
	for v, p := range pts {
		col, row := 0, 0
		if w > 0 {
			col = int((p.X - minX) / w * float64(cols))
			if col >= cols {
				col = cols - 1
			}
		}
		if h > 0 {
			row = int((p.Y - minY) / h * float64(rows))
			if row >= rows {
				row = rows - 1
			}
		}
		tile := row*cols + col
		if tile >= shards {
			tile = shards - 1
		}
		assign[v] = tile
	}
	ids := make([]int, shards)
	for i := range ids {
		ids[i] = i
	}
	return assemble(g, assign, ids, "geom", 0), nil
}

// BFS partitions a general graph into the requested number of regions with
// no coordinates: farthest-point seeding (the first seed drawn from the
// given seed, each later seed the node maximizing BFS distance to the seeds
// so far, unreached components first), balanced multi-source BFS growth,
// and two label-propagation smoothing sweeps that let boundary nodes defect
// to a plurality-neighbor shard without emptying their own. Components no
// seed reached join the smallest shard wholesale. Deterministic in
// (g, shards, seed): same inputs, same partition, byte for byte.
func BFS(g *graph.Graph, shards int, seed uint64) (*Partition, error) {
	n := g.N()
	if shards < 1 {
		return nil, fmt.Errorf("shard: %d shards requested, need >= 1", shards)
	}
	if n == 0 {
		return nil, fmt.Errorf("shard: cannot partition the empty graph")
	}
	if shards > n {
		shards = n
	}
	if shards == 1 {
		p := Whole(g)
		p.Method, p.Seed = "bfs", seed
		return p, nil
	}

	src := rng.New(seed)
	seeds := make([]int, 0, shards)
	seeds = append(seeds, src.Intn(n))
	// minDist[v] = min over chosen seeds of hop distance; -1 = unreached.
	minDist := g.BFS(seeds[0])
	for len(seeds) < shards {
		next, nextDist := -1, -1
		for v := 0; v < n; v++ {
			d := minDist[v]
			if d == 0 {
				continue // already a seed or co-located
			}
			// Unreached nodes (foreign components) outrank any finite
			// distance; among equals the lower ID wins.
			better := false
			switch {
			case next == -1:
				better = true
			case d == -1 && nextDist != -1:
				better = true
			case d != -1 && nextDist != -1 && d > nextDist:
				better = true
			}
			if better {
				next, nextDist = v, d
			}
		}
		if next == -1 {
			break // fewer distinct positions than shards
		}
		seeds = append(seeds, next)
		for v, d := range g.BFS(next) {
			if d != -1 && (minDist[v] == -1 || d < minDist[v]) {
				minDist[v] = d
			}
		}
	}

	// Balanced multi-source growth: one frontier per seed, expanded
	// smallest-shard-first so no region starves behind a hub seed.
	assign := make([]int, n)
	for v := range assign {
		assign[v] = -1
	}
	sizes := make([]int, len(seeds))
	frontiers := make([][]int, len(seeds))
	for l, s := range seeds {
		assign[s] = l
		sizes[l] = 1
		frontiers[l] = []int{s}
	}
	for {
		grew := false
		// Expansion order: smallest shard first, ties to the lower label.
		order := make([]int, 0, len(seeds))
		for l := range seeds {
			if len(frontiers[l]) > 0 {
				order = append(order, l)
			}
		}
		if len(order) == 0 {
			break
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				a, b := order[j-1], order[j]
				if sizes[b] < sizes[a] || (sizes[b] == sizes[a] && b < a) {
					order[j-1], order[j] = b, a
				} else {
					break
				}
			}
		}
		for _, l := range order {
			var next []int
			for _, v := range frontiers[l] {
				for _, u := range g.Neighbors(v) {
					if assign[u] == -1 {
						assign[u] = l
						sizes[l]++
						next = append(next, int(u))
						grew = true
					}
				}
			}
			frontiers[l] = next
		}
		if !grew {
			break
		}
	}
	// Components no seed reached: each joins the currently smallest shard.
	for _, comp := range g.Components() {
		if assign[comp[0]] != -1 {
			continue
		}
		l := smallest(sizes)
		for _, v := range comp {
			assign[v] = l
		}
		sizes[l] += len(comp)
	}

	// Label-propagation smoothing: a node defects to a strict-plurality
	// neighbor label (ties keep the incumbent) unless that would empty its
	// shard. Two sweeps straighten the ragged BFS boundaries.
	counts := make([]int, len(seeds))
	for sweep := 0; sweep < 2; sweep++ {
		for v := 0; v < n; v++ {
			cur := assign[v]
			if sizes[cur] <= 1 {
				continue
			}
			for i := range counts {
				counts[i] = 0
			}
			for _, u := range g.Neighbors(v) {
				counts[assign[u]]++
			}
			// Ascending scan with strict > keeps the incumbent on ties and
			// prefers the lower label among equal challengers.
			best := cur
			for l := range counts {
				if counts[l] > counts[best] {
					best = l
				}
			}
			if best != cur {
				assign[v] = best
				sizes[cur]--
				sizes[best]++
			}
		}
	}

	ids := make([]int, len(seeds))
	for i := range ids {
		ids[i] = i
	}
	return assemble(g, assign, ids, "bfs", seed), nil
}

// Partitioners lists the partitioner names accepted by ByName.
func Partitioners() []string { return []string{"bfs", "geom"} }

// ByName resolves a partitioner by name. "geom" requires coordinates (pts
// non-nil); "bfs" works on any graph. An empty name defaults to "bfs", the
// coordinate-free choice the service and the CLIs can always run.
func ByName(name string, g *graph.Graph, pts []geom.Point, shards int, seed uint64) (*Partition, error) {
	switch name {
	case "", "bfs":
		return BFS(g, shards, seed)
	case "geom":
		if pts == nil {
			return nil, fmt.Errorf("shard: the geom partitioner needs node coordinates (edge-list inputs have none; use bfs)")
		}
		return Geometric(g, pts, shards)
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %q (have %v)", name, Partitioners())
	}
}
