package shard

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Stitched is the result of merging per-shard schedules into one
// whole-graph schedule.
type Stitched struct {
	// Schedule is the merged, validated whole-graph schedule.
	Schedule *core.Schedule
	// Repairs counts boundary recruitments (node-segments enlisted beyond
	// the shard plans).
	Repairs int
	// Replans counts shard replan escalations.
	Replans int
	// Degraded reports that stitching truncated the schedule at a segment
	// it could not repair, before every shard plan was exhausted.
	Degraded bool
}

// sphase is one shard phase projected to global IDs: owned members only
// (halo members are the owning shard's to run), sorted.
type sphase struct {
	set []int
	dur int
}

// scursor tracks how much of a shard's phase list the stitcher has
// consumed: phases[idx] with off slots already committed.
type scursor struct {
	idx, off int
}

// Stitch merges per-shard schedules into one whole-graph schedule,
// phase-aligned on the union of all shard phase boundaries. For every
// segment it scores the union of the shards' owned active sets against the
// full graph with an incremental domset.Session (halo members are dropped —
// that is where cross-boundary holes come from) and climbs a repair ladder:
//
//  1. recruitment — heal.RecruitCover enlists the highest-residual idle
//     closed neighbors of each under-covered node for the segment, where
//     residual is the energy not yet committed or reserved by the node's
//     own shard plan;
//  2. shard replan — the shard owning a still-uncovered node has its
//     remaining phases rebuilt by sched.Replan over its residual budgets
//     (owned nodes only), and the segment is re-scored;
//  3. truncation — a segment no replan can cover ends the schedule there,
//     reported as Degraded.
//
// The merged schedule is belt-checked with Schedule.ValidateWith before
// being returned; a violation is a stitcher bug, surfaced as an error.
func Stitch(parent *instance.Instance, p *Partition, solved []*ShardResult, hooks obs.Hooks) (*Stitched, error) {
	g, budgets := parent.Graph, parent.Budgets
	n := g.N()
	if len(budgets) != n || len(p.Assign) != n {
		return nil, fmt.Errorf("shard: stitch over %d nodes with %d budgets and a partition of %d", n, len(budgets), len(p.Assign))
	}
	if len(solved) != len(p.Shards) {
		return nil, fmt.Errorf("shard: %d shard results for %d shards", len(solved), len(p.Shards))
	}
	k := parent.Tolerance()

	// Project every shard schedule to global owned members and reserve its
	// planned energy.
	phases := make([][]sphase, len(p.Shards))
	committed := make([]int, n)
	reserved := make([]int, n) // planned-but-not-yet-committed usage
	for pos, sr := range solved {
		if sr == nil || sr.Shard != p.Shards[pos] {
			return nil, fmt.Errorf("shard: result %d does not match partition position %d", pos, pos)
		}
		phases[pos] = projectPhases(sr.Shard, sr.Schedule)
		for _, ph := range phases[pos] {
			for _, v := range ph.set {
				reserved[v] += ph.dur
			}
		}
	}
	cursors := make([]scursor, len(p.Shards))

	ck := domset.NewChecker(g)
	var sess *domset.Session
	cur := make([]bool, n)  // membership of the session's current set
	want := make([]bool, n) // scratch: desired membership for the segment
	uncovBuf := make([]int, 0, n)
	res := &Stitched{Schedule: &core.Schedule{}}
	residual := func(v int) int { return budgets[v] - committed[v] - reserved[v] }

	// syncSession drives the session (and cur) to exactly the nodes in
	// want, via one Begin on first use and O(deg) flips afterwards.
	syncSession := func(members []int) {
		for i := range want {
			want[i] = false
		}
		for _, v := range members {
			want[v] = true
		}
		if sess == nil {
			sess = ck.Begin(members, k, nil)
			copy(cur, want)
			return
		}
		for v := 0; v < n; v++ {
			if cur[v] != want[v] {
				sess.Flip(v)
				cur[v] = want[v]
			}
		}
	}

	t := 0
	for {
		// Segment bounds: the earliest next phase boundary over all shards
		// with plan remaining.
		segDur := -1
		members := members0(phases, cursors)
		for pos := range p.Shards {
			c := cursors[pos]
			if c.idx >= len(phases[pos]) {
				continue
			}
			if remain := phases[pos][c.idx].dur - c.off; segDur == -1 || remain < segDur {
				segDur = remain
			}
		}
		if segDur == -1 {
			break // every shard plan exhausted: the stitched schedule ends
		}

		// Repair ladder for this segment. Each shard may be replanned at
		// most once per segment, so the loop terminates.
		replanned := make(map[int]bool)
		var recruits []int
		for {
			syncSession(members)
			uncovBuf = sess.AppendUndominated(uncovBuf[:0])
			if len(uncovBuf) == 0 {
				break
			}
			got, ok := heal.RecruitCover(g, sess, uncovBuf, k, segDur, residual, func(r, u int) {
				hooks.Emit(obs.Shard("repair", p.Shards[p.Assign[u]].Index, t, r, u))
			})
			for _, r := range got {
				cur[r] = true
			}
			recruits = append(recruits, got...)
			res.Repairs += len(got)
			if ok {
				break
			}
			uncovBuf = sess.AppendUndominated(uncovBuf[:0])
			pos := p.Assign[uncovBuf[0]]
			if replanned[pos] {
				// Rung 3: nothing left to try — truncate here.
				hooks.Emit(obs.Shard("truncate", -1, t, len(uncovBuf), 0))
				res.Degraded = true
				res.Schedule = res.Schedule.Compact()
				if err := res.Schedule.ValidateWith(ck, budgets, k); err != nil {
					return nil, fmt.Errorf("shard: stitched schedule invalid: %w", err)
				}
				return res, nil
			}
			replanned[pos] = true
			res.Replans++
			replanTail(g, p, pos, budgets, committed, reserved, phases, cursors, k, t, hooks)
			// The shard's plan changed: recompute the segment from scratch.
			recruits = recruits[:0]
			members = members0(phases, cursors)
			segDur = -1
			for q := range p.Shards {
				c := cursors[q]
				if c.idx >= len(phases[q]) {
					continue
				}
				if remain := phases[q][c.idx].dur - c.off; segDur == -1 || remain < segDur {
					segDur = remain
				}
			}
			if segDur == -1 {
				// The replan emptied the last remaining plan (no residual
				// energy): the schedule ends cleanly here.
				res.Schedule = res.Schedule.Compact()
				if err := res.Schedule.ValidateWith(ck, budgets, k); err != nil {
					return nil, fmt.Errorf("shard: stitched schedule invalid: %w", err)
				}
				return res, nil
			}
		}

		// Commit the segment: charge plan members and recruits, advance
		// cursors, append the output phase.
		final := make([]int, 0, len(members)+len(recruits))
		final = append(final, members...)
		final = append(final, recruits...)
		sort.Ints(final)
		for pos := range p.Shards {
			c := &cursors[pos]
			if c.idx >= len(phases[pos]) {
				continue
			}
			ph := phases[pos][c.idx]
			for _, v := range ph.set {
				committed[v] += segDur
				reserved[v] -= segDur
			}
			c.off += segDur
			if c.off >= ph.dur {
				c.idx++
				c.off = 0
			}
		}
		for _, v := range recruits {
			committed[v] += segDur
		}
		res.Schedule.Phases = append(res.Schedule.Phases, core.Phase{Set: final, Duration: segDur})
		t += segDur
	}

	res.Schedule = res.Schedule.Compact()
	if err := res.Schedule.ValidateWith(ck, budgets, k); err != nil {
		return nil, fmt.Errorf("shard: stitched schedule invalid: %w", err)
	}
	return res, nil
}

// members0 returns the union of the shards' active owned sets at the
// current cursors. Shards own disjoint nodes, so concatenation is a union.
func members0(phases [][]sphase, cursors []scursor) []int {
	var out []int
	for pos, c := range cursors {
		if c.idx < len(phases[pos]) {
			out = append(out, phases[pos][c.idx].set...)
		}
	}
	return out
}

// projectPhases maps a shard schedule from local IDs to global owned
// members, dropping halo members and empty phases.
func projectPhases(sh *Shard, s *core.Schedule) []sphase {
	var out []sphase
	owned := sh.Owned()
	for _, ph := range s.Phases {
		if ph.Duration <= 0 {
			continue
		}
		set := make([]int, 0, len(ph.Set))
		for _, lv := range ph.Set {
			if lv < owned {
				set = append(set, sh.Orig[lv])
			}
		}
		sort.Ints(set)
		out = append(out, sphase{set: set, dur: ph.Duration})
	}
	return out
}

// replanTail rebuilds shard pos's remaining phases from its residual
// budgets: reservations for the abandoned tail are released, then
// sched.Replan runs over the shard subgraph restricted to owned nodes
// (halo nodes neither serve nor need coverage — they are the neighboring
// shards' responsibility), and the new tail's energy is reserved.
func replanTail(g *graph.Graph, p *Partition, pos int, budgets, committed, reserved []int, phases [][]sphase, cursors []scursor, k, t int, hooks obs.Hooks) {
	sh := p.Shards[pos]
	c := cursors[pos]
	for i := c.idx; i < len(phases[pos]); i++ {
		remain := phases[pos][i].dur
		if i == c.idx {
			remain -= c.off
		}
		for _, v := range phases[pos][i].set {
			reserved[v] -= remain
		}
	}
	localRes := make([]int, len(sh.Orig))
	ownedMask := make([]bool, len(sh.Orig))
	for i, v := range sh.Orig {
		if i < sh.Owned() {
			localRes[i] = budgets[v] - committed[v]
			ownedMask[i] = true
		}
	}
	next := sched.Replan(sh.Sub, localRes, k, ownedMask)
	tail := projectPhases(sh, next)
	for _, ph := range tail {
		for _, v := range ph.set {
			reserved[v] += ph.dur
		}
	}
	phases[pos] = tail
	cursors[pos] = scursor{}
	hooks.Emit(obs.Shard("replan", sh.Index, t, next.Lifetime(), 0))
}
