// Package shard is the partition–solve–stitch subsystem: it cuts a graph
// into regions (geometric tiles for deployments with coordinates, seeded
// BFS/label-propagation regions for general graphs), solves every region's
// lifetime-scheduling instance independently — and concurrently — over the
// region plus a one-hop halo, and stitches the per-shard schedules back into
// one feasible whole-graph schedule, repairing cross-boundary coverage
// holes with heal's recruitment rule and escalating to sched.Replan on a
// shard only when recruitment fails.
//
// The decomposition follows the distributed k-dominating-set literature
// (Penso & Barbosa, arXiv:cs/0309040; the grid constructions of Fata,
// Smith & Sundaram): domination is a local property, so a region solved
// with its full one-hop context is correct everywhere except within one hop
// of a boundary, and those holes are exactly what a local recruitment pass
// repairs.
//
// Every shard carries a content-addressed fingerprint of its local solve
// instance — structure, owned/halo split, and local budgets hashed in local
// IDs — so the fingerprint is invariant under global renumbering. That is
// what makes a shard-schedule cache compositional: a graph.Delta that
// renumbers every surviving node still leaves untouched regions with
// byte-identical local instances, and their cached schedules hit without
// any invalidation protocol.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Shard is one region of a partition: the nodes it owns, the one-hop halo
// it solves with but does not own, and the induced local instance.
type Shard struct {
	// Index is the shard's stable identity within its partition. It
	// survives Rebase (a delta that empties other shards does not shift
	// it), so per-shard seed derivation and cache keys stay aligned across
	// graph deltas.
	Index int
	// Nodes holds the owned nodes in global IDs, sorted. Every node of the
	// partitioned graph is owned by exactly one shard.
	Nodes []int
	// Halo holds the non-owned neighbors of owned nodes in global IDs,
	// sorted. The local solve covers them (so owned nodes keep their full
	// closed neighborhoods), but the stitcher drops halo members from the
	// merged schedule — the owning shard serves them.
	Halo []int
	// Sub is the subgraph induced by Nodes followed by Halo: local IDs
	// 0..len(Nodes)-1 are owned, the rest are halo.
	Sub *graph.Graph
	// Orig maps local IDs back to global IDs (Nodes then Halo order).
	Orig []int
}

// Owned reports how many nodes the shard owns (local IDs below this are
// owned; at or above, halo).
func (s *Shard) Owned() int { return len(s.Nodes) }

// LocalBudgets maps the global budget vector into Sub's ID space, reusing
// dst when it has capacity.
func (s *Shard) LocalBudgets(budgets []int, dst []int) []int {
	dst = dst[:0]
	for _, v := range s.Orig {
		dst = append(dst, budgets[v])
	}
	return dst
}

// HashInto folds the shard's local solve instance — structure, owned/halo
// split, and local budgets — into h. Everything is hashed in local IDs, so
// the digest is invariant under global renumbering: two shards with
// isomorphic-by-construction local instances (same induced order) collide
// intentionally, which is what lets cached shard schedules survive a
// graph.Delta that renumbers the rest of the graph.
func (s *Shard) HashInto(h *graph.Hasher, budgets []int) {
	h.Graph("shard.sub", s.Sub)
	h.Int("shard.owned", len(s.Nodes))
	local := make([]int, 0, len(s.Orig))
	h.Ints("shard.budgets", s.LocalBudgets(budgets, local))
}

// Fingerprint returns the hex digest of the local solve instance under the
// given global budgets. This is the compositional cache identity of the
// shard; solver parameters are layered on top by the solve driver's Key.
func (s *Shard) Fingerprint(budgets []int) string {
	h := graph.NewHasher()
	s.HashInto(h, budgets)
	return h.Sum()
}

// Partition is a disjoint cover of one graph by shards.
type Partition struct {
	// Shards in position order. Positions are dense; Shard.Index values
	// are stable identities and may have gaps after a Rebase drops an
	// emptied shard.
	Shards []*Shard
	// Assign maps every global node to its owning shard's position in
	// Shards.
	Assign []int
	// Method names the partitioner that produced the assignment ("geom",
	// "bfs", or "whole").
	Method string
	// Seed is the partitioner seed (BFS partitioner only; 0 otherwise).
	Seed uint64
}

// assemble builds a Partition from a node→label assignment. ids[label] is
// the stable Index for that label; labels with no nodes are dropped and the
// remaining shards keep their ids. assign is retargeted to positions.
func assemble(g *graph.Graph, assign []int, ids []int, method string, seed uint64) *Partition {
	n := g.N()
	nodesOf := make([][]int, len(ids))
	for v := 0; v < n; v++ {
		l := assign[v]
		if l < 0 || l >= len(ids) {
			panic(fmt.Sprintf("shard: node %d assigned to label %d of %d", v, l, len(ids)))
		}
		nodesOf[l] = append(nodesOf[l], v) // ascending v ⇒ sorted
	}
	p := &Partition{Assign: make([]int, n), Method: method, Seed: seed}
	inShard := make([]bool, n)
	for l, nodes := range nodesOf {
		if len(nodes) == 0 {
			continue
		}
		pos := len(p.Shards)
		sh := &Shard{Index: ids[l], Nodes: nodes}
		for _, v := range nodes {
			inShard[v] = true
			p.Assign[v] = pos
		}
		seen := make(map[int]bool)
		for _, v := range nodes {
			for _, u := range g.Neighbors(v) {
				if !inShard[int(u)] && !seen[int(u)] {
					seen[int(u)] = true
					sh.Halo = append(sh.Halo, int(u))
				}
			}
		}
		sort.Ints(sh.Halo)
		local := make([]int, 0, len(sh.Nodes)+len(sh.Halo))
		local = append(local, sh.Nodes...)
		local = append(local, sh.Halo...)
		sh.Sub, sh.Orig = g.InducedSubgraph(local)
		p.Shards = append(p.Shards, sh)
		for _, v := range nodes {
			inShard[v] = false // reset scratch for the next label
		}
	}
	return p
}

// Whole returns the trivial one-shard partition (the whole graph, no halo).
// It makes the sharded code paths total: shards <= 1 degenerates to the
// whole-graph solve through the same pipeline.
func Whole(g *graph.Graph) *Partition {
	assign := make([]int, g.N())
	return assemble(g, assign, []int{0}, "whole", 0)
}

// Rebase maps p through a graph.Delta's old→new node mapping onto the
// post-delta graph g2: surviving nodes keep their shard, added nodes join
// the shard owning the plurality of their already-assigned neighbors (ties
// to the lower shard position; neighborless additions join the smallest
// shard), and halos, subgraphs, and fingerprints are rebuilt. Shard
// identities (Index) survive, so a delta confined to one tile leaves every
// other shard's fingerprint — and therefore its cached schedule — intact.
func (p *Partition) Rebase(g2 *graph.Graph, mapping []int) *Partition {
	if len(mapping) != len(p.Assign) {
		panic(fmt.Sprintf("shard: mapping for %d nodes against a partition of %d", len(mapping), len(p.Assign)))
	}
	n2 := g2.N()
	assign := make([]int, n2)
	for v := range assign {
		assign[v] = -1
	}
	for old, nw := range mapping {
		if nw >= 0 {
			assign[nw] = p.Assign[old]
		}
	}
	sizes := make([]int, len(p.Shards))
	for _, l := range assign {
		if l >= 0 {
			sizes[l]++
		}
	}
	counts := make([]int, len(p.Shards))
	for v := 0; v < n2; v++ {
		if assign[v] != -1 {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		best := -1
		for _, u := range g2.Neighbors(v) {
			if l := assign[int(u)]; l >= 0 {
				counts[l]++
				if best == -1 || counts[l] > counts[best] || (counts[l] == counts[best] && l < best) {
					best = l
				}
			}
		}
		if best == -1 {
			best = smallest(sizes)
		}
		assign[v] = best
		sizes[best]++
	}
	ids := make([]int, len(p.Shards))
	for i, sh := range p.Shards {
		ids[i] = sh.Index
	}
	return assemble(g2, assign, ids, p.Method, p.Seed)
}

// Touched returns the positions (into p.Shards) of every shard whose local
// instance the given nodes intersect — owned or halo — in ascending order.
// g is the graph p partitions; a node sits in the halo of exactly the
// shards owning one of its neighbors, so the scan is O(Σ deg). Out-of-range
// IDs are ignored (a delta's added nodes do not exist in the pre-delta
// partition).
func (p *Partition) Touched(g *graph.Graph, touched []int) []int {
	hit := make([]bool, len(p.Shards))
	for _, v := range touched {
		if v < 0 || v >= len(p.Assign) {
			continue
		}
		hit[p.Assign[v]] = true
		for _, u := range g.Neighbors(v) {
			hit[p.Assign[int(u)]] = true
		}
	}
	var out []int
	for pos, h := range hit {
		if h {
			out = append(out, pos)
		}
	}
	return out
}

// smallest returns the index of the minimum size, ties to the lower index.
func smallest(sizes []int) int {
	best := 0
	for i, s := range sizes {
		if s < sizes[best] {
			best = i
		}
	}
	return best
}

// validate checks the partition invariants tests and callers rely on:
// every node owned exactly once, assignments consistent, halos disjoint
// from owners.
func (p *Partition) validate(g *graph.Graph) error {
	owned := make([]int, g.N())
	for pos, sh := range p.Shards {
		for _, v := range sh.Nodes {
			owned[v]++
			if p.Assign[v] != pos {
				return fmt.Errorf("shard: node %d owned by position %d but assigned %d", v, pos, p.Assign[v])
			}
		}
		for _, h := range sh.Halo {
			if p.Assign[h] == pos {
				return fmt.Errorf("shard: node %d in both nodes and halo of position %d", h, pos)
			}
		}
	}
	for v, c := range owned {
		if c != 1 {
			return fmt.Errorf("shard: node %d owned by %d shards", v, c)
		}
	}
	return nil
}
