package shard_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/solver"
)

type mapCache struct {
	mu   sync.Mutex
	m    map[string]*core.Schedule
	hits int
	puts int
}

func newMapCache() *mapCache { return &mapCache{m: map[string]*core.Schedule{}} }

func (c *mapCache) Get(key string) (*core.Schedule, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[key]
	if ok {
		c.hits++
	}
	return s, ok
}

func (c *mapCache) Put(key string, s *core.Schedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = s
}

func stitchOnce(t *testing.T, g *graph.Graph, pts []geom.Point, budgets []int, method string, shards, k int, seed uint64, cache shard.Cache) (*shard.Partition, []*shard.ShardResult, *shard.Stitched) {
	t.Helper()
	p, err := shard.ByName(method, g, pts, shards, seed)
	if err != nil {
		t.Fatal(err)
	}
	in := instance.New(g, budgets).WithK(k)
	opt := shard.Options{
		Spec:  solver.Spec{Name: solver.NameGreedy},
		Seed:  seed,
		Cache: cache,
	}
	solved, err := shard.SolveShards(in, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := shard.Stitch(in, p, solved, obs.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return p, solved, st
}

// TestStitchedSchedulesDominats is satellite property #1: every phase of a
// stitched schedule k-dominates the FULL graph, checked two independent
// ways — a fresh Checker fold per phase and an incremental Session driven
// across phases — and the two paths must agree byte for byte on the
// undominated list (empty both ways). Energy usage must respect budgets.
func TestStitchedSchedulesDominate(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 4; trial++ {
		n := 60 + src.Intn(120)
		g, pts := gen.RandomUDG(n, 10, 2.4, src)
		budgets := make([]int, n)
		for v := range budgets {
			if trial%2 == 0 {
				budgets[v] = 4
			} else {
				budgets[v] = 2 + src.Intn(5) // heterogeneous
			}
		}
		for _, method := range []string{"bfs", "geom"} {
			for _, shards := range []int{2, 4, 7} {
				for _, k := range []int{1, 2} {
					_, _, st := stitchOnce(t, g, pts, budgets, method, shards, k, uint64(31+trial), nil)
					if st.Schedule.Lifetime() == 0 {
						t.Fatalf("%s/%d-shard k=%d: stitched lifetime 0", method, shards, k)
					}
					ck := domset.NewChecker(g)
					var sess *domset.Session
					cur := make([]bool, n)
					for pi, ph := range st.Schedule.Phases {
						// Fresh-fold path.
						fresh := ck.AppendUndominated(nil, ph.Set, k, nil)
						// Session path: flip the symmetric difference.
						if sess == nil {
							sess = ck.Begin(ph.Set, k, nil)
							for _, v := range ph.Set {
								cur[v] = true
							}
						} else {
							want := make([]bool, n)
							for _, v := range ph.Set {
								want[v] = true
							}
							for v := 0; v < n; v++ {
								if cur[v] != want[v] {
									sess.Flip(v)
									cur[v] = want[v]
								}
							}
						}
						inc := sess.AppendUndominated(nil)
						if !reflect.DeepEqual(fresh, inc) {
							t.Fatalf("%s/%d-shard k=%d phase %d: fresh fold says undominated=%v, session says %v",
								method, shards, k, pi, fresh, inc)
						}
						if len(fresh) != 0 {
							t.Fatalf("%s/%d-shard k=%d phase %d: not %d-dominating, holes at %v",
								method, shards, k, pi, k, fresh)
						}
					}
					usage := st.Schedule.Usage(n)
					for v, u := range usage {
						if u > budgets[v] {
							t.Fatalf("%s/%d-shard k=%d: node %d used %d of budget %d",
								method, shards, k, v, u, budgets[v])
						}
					}
				}
			}
		}
	}
}

// TestStitchWholeGraphIsPassthrough pins the degenerate case: a one-shard
// partition has no boundaries, so stitching must reproduce the shard's own
// schedule (compacted) with no repairs or replans.
func TestStitchWholeGraphIsPassthrough(t *testing.T) {
	src := rng.New(17)
	g, pts := gen.RandomUDG(80, 8, 2.2, src)
	budgets := make([]int, g.N())
	for v := range budgets {
		budgets[v] = 3
	}
	_, solved, st := stitchOnce(t, g, pts, budgets, "geom", 1, 1, 7, nil)
	if st.Repairs != 0 || st.Replans != 0 || st.Degraded {
		t.Fatalf("one-shard stitch did repair work: %+v", st)
	}
	if got, want := st.Schedule.Lifetime(), solved[0].Schedule.Lifetime(); got != want {
		t.Fatalf("one-shard stitch lifetime %d, shard schedule has %d", got, want)
	}
}

// TestSolveShardsDeterministicAndCached pins two contracts at once: same
// (partition, seed) gives identical schedules across runs, and a warm
// content-addressed cache serves every shard without re-solving.
func TestSolveShardsDeterministicAndCached(t *testing.T) {
	src := rng.New(23)
	g, pts := gen.RandomUDG(140, 10, 2.3, src)
	budgets := make([]int, g.N())
	for v := range budgets {
		budgets[v] = 3 + v%3
	}
	p, err := shard.Geometric(g, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMapCache()
	in := instance.New(g, budgets)
	opt := shard.Options{Spec: solver.Spec{Name: solver.NameGreedy}, Seed: 99, Cache: cache}
	a, err := shard.SolveShards(in, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range a {
		if sr.Cached {
			t.Fatalf("shard %d claims a cache hit on a cold cache", sr.Shard.Index)
		}
	}
	if cache.puts != len(p.Shards) {
		t.Fatalf("%d cache puts for %d shards", cache.puts, len(p.Shards))
	}

	// Cold second run, no cache: byte-identical schedules.
	b, err := shard.SolveShards(in, p, shard.Options{Spec: opt.Spec, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Schedule, b[i].Schedule) {
			t.Fatalf("shard %d: schedules differ across identical runs", a[i].Shard.Index)
		}
		if a[i].Key != b[i].Key {
			t.Fatalf("shard %d: keys differ across identical runs", a[i].Shard.Index)
		}
	}

	// Warm run: every shard is a hit with the same schedule.
	c, err := shard.SolveShards(in, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if !c[i].Cached {
			t.Fatalf("shard %d missed a warm cache", c[i].Shard.Index)
		}
		if !reflect.DeepEqual(a[i].Schedule, c[i].Schedule) {
			t.Fatalf("shard %d: cached schedule differs from solved one", c[i].Shard.Index)
		}
	}

	// A different seed must produce different keys (no false sharing).
	d, err := shard.SolveShards(in, p, shard.Options{Spec: opt.Spec, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i].Key == a[i].Key {
			t.Fatalf("shard %d: same key under different seeds", d[i].Shard.Index)
		}
	}
}

// TestSolveShardsConcurrent runs the pooled path under load; with -race this
// doubles as the data-race check for the shared hooks/cache/abort state.
func TestSolveShardsConcurrent(t *testing.T) {
	src := rng.New(29)
	g, pts := gen.RandomUDG(200, 12, 2.2, src)
	budgets := make([]int, g.N())
	for v := range budgets {
		budgets[v] = 3
	}
	p, err := shard.Geometric(g, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMapCache()
	opt := shard.Options{
		Spec:          solver.Spec{Name: solver.NameGreedy},
		Seed:          5,
		TransientPool: true,
		Cache:         cache,
	}
	in := instance.New(g, budgets)
	par1, err := shard.SolveShards(in, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := shard.SolveShards(in, p, shard.Options{Spec: opt.Spec, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range par1 {
		if !reflect.DeepEqual(par1[i].Schedule, seq[i].Schedule) {
			t.Fatalf("shard %d: pooled and sequential solves disagree", par1[i].Shard.Index)
		}
	}
	st, err := shard.Stitch(in, p, par1, obs.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Schedule.Lifetime() == 0 {
		t.Fatal("stitched lifetime 0")
	}
}

// TestSolveShardsCanceled: a pre-fired cancel surfaces as ErrCanceled.
func TestSolveShardsCanceled(t *testing.T) {
	src := rng.New(31)
	g, pts := gen.RandomUDG(60, 8, 2.5, src)
	budgets := make([]int, g.N())
	for v := range budgets {
		budgets[v] = 3
	}
	p, err := shard.Geometric(g, pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := shard.Options{
		Spec:   solver.Spec{Name: solver.NameGreedy},
		Solver: solver.Options{Cancel: func() bool { return true }},
	}
	if _, err := shard.SolveShards(instance.New(g, budgets), p, opt); err != solver.ErrCanceled {
		t.Fatalf("got %v, want solver.ErrCanceled", err)
	}
}
