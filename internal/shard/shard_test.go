package shard_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/shard"
)

// checkPartition asserts the structural invariants every partitioner must
// deliver: each node owned exactly once, Assign consistent with ownership,
// halos exactly the out-of-shard neighbors of owned nodes, and local
// subgraphs ordered Nodes-then-Halo.
func checkPartition(t *testing.T, g *graph.Graph, p *shard.Partition) {
	t.Helper()
	owned := make([]int, g.N())
	for pos, sh := range p.Shards {
		if sh.Owned() == 0 {
			t.Fatalf("shard at position %d owns no nodes", pos)
		}
		for _, v := range sh.Nodes {
			owned[v]++
			if p.Assign[v] != pos {
				t.Fatalf("node %d owned by position %d but Assign says %d", v, pos, p.Assign[v])
			}
		}
		wantHalo := map[int]bool{}
		inShard := map[int]bool{}
		for _, v := range sh.Nodes {
			inShard[v] = true
		}
		for _, v := range sh.Nodes {
			for _, u := range g.Neighbors(v) {
				if !inShard[int(u)] {
					wantHalo[int(u)] = true
				}
			}
		}
		if len(wantHalo) != len(sh.Halo) {
			t.Fatalf("shard %d: halo has %d nodes, want %d", pos, len(sh.Halo), len(wantHalo))
		}
		for _, h := range sh.Halo {
			if !wantHalo[h] {
				t.Fatalf("shard %d: node %d in halo but not a boundary neighbor", pos, h)
			}
		}
		if !sort.IntsAreSorted(sh.Nodes) || !sort.IntsAreSorted(sh.Halo) {
			t.Fatalf("shard %d: nodes/halo not sorted", pos)
		}
		if len(sh.Orig) != len(sh.Nodes)+len(sh.Halo) || sh.Sub.N() != len(sh.Orig) {
			t.Fatalf("shard %d: local instance sized %d for %d+%d nodes", pos, sh.Sub.N(), len(sh.Nodes), len(sh.Halo))
		}
		for i, v := range sh.Nodes {
			if sh.Orig[i] != v {
				t.Fatalf("shard %d: Orig[%d] = %d, want owned node %d", pos, i, sh.Orig[i], v)
			}
		}
		for i, h := range sh.Halo {
			if sh.Orig[sh.Owned()+i] != h {
				t.Fatalf("shard %d: Orig[%d] = %d, want halo node %d", pos, sh.Owned()+i, sh.Orig[sh.Owned()+i], h)
			}
		}
	}
	for v, c := range owned {
		if c != 1 {
			t.Fatalf("node %d owned by %d shards", v, c)
		}
	}
}

// TestPartitionInvariants checks both partitioners across random UDG
// instances and shard counts.
func TestPartitionInvariants(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 8; trial++ {
		n := 20 + src.Intn(180)
		g, pts := gen.RandomUDG(n, 10, 2.2, src)
		for _, shards := range []int{1, 2, 4, 7} {
			for _, method := range []string{"bfs", "geom"} {
				p, err := shard.ByName(method, g, pts, shards, 42)
				if err != nil {
					t.Fatalf("%s/%d: %v", method, shards, err)
				}
				checkPartition(t, g, p)
			}
		}
	}
}

// TestPartitionDisconnected exercises the BFS partitioner's unreached-
// component fallback: a graph with more components than shards must still
// be fully covered.
func TestPartitionDisconnected(t *testing.T) {
	// Three disjoint paths of 5 nodes.
	g := graph.New(15)
	for c := 0; c < 3; c++ {
		for i := 0; i < 4; i++ {
			g.AddEdge(c*5+i, c*5+i+1)
		}
	}
	p, err := shard.BFS(g, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, p)
}

// TestPartitionerDeterminism pins the determinism contract: same (graph,
// shards, seed) in, byte-identical partition out — node lists, halos,
// assignment, fingerprints.
func TestPartitionerDeterminism(t *testing.T) {
	src := rng.New(5)
	g, pts := gen.RandomUDG(150, 10, 2.0, src)
	budgets := make([]int, g.N())
	for v := range budgets {
		budgets[v] = 3 + v%4
	}
	for _, method := range []string{"bfs", "geom"} {
		a, err := shard.ByName(method, g, pts, 5, 97)
		if err != nil {
			t.Fatal(err)
		}
		b, err := shard.ByName(method, g, pts, 5, 97)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Assign, b.Assign) {
			t.Fatalf("%s: assignments differ across identical runs", method)
		}
		if len(a.Shards) != len(b.Shards) {
			t.Fatalf("%s: %d vs %d shards", method, len(a.Shards), len(b.Shards))
		}
		for i := range a.Shards {
			if !reflect.DeepEqual(a.Shards[i].Nodes, b.Shards[i].Nodes) ||
				!reflect.DeepEqual(a.Shards[i].Halo, b.Shards[i].Halo) {
				t.Fatalf("%s: shard %d differs across identical runs", method, i)
			}
			if a.Shards[i].Fingerprint(budgets) != b.Shards[i].Fingerprint(budgets) {
				t.Fatalf("%s: shard %d fingerprints differ", method, i)
			}
		}
	}
}

// TestShardFingerprintRenumberInvariant is the compositional-cache
// property: a shard's fingerprint depends only on its local instance, so
// renumbering the whole graph (here: reversing node IDs) leaves an
// untouched region's fingerprint intact.
func TestShardFingerprintRenumberInvariant(t *testing.T) {
	// A path 0-1-...-9 partitioned in half, then the same path with IDs
	// reversed: the "low" half of one equals the "high" half of the other.
	n := 10
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	budgets := make([]int, n)
	for v := range budgets {
		budgets[v] = 4
	}
	p1, err := shard.BFS(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Shards) != 2 {
		t.Skipf("partitioner produced %d shards on the path; need 2", len(p1.Shards))
	}
	// Renumber: v -> n-1-v. The path maps onto itself.
	g2 := graph.New(n)
	for i := 0; i < n-1; i++ {
		g2.AddEdge(n-1-i, n-1-(i+1))
	}
	p2, err := shard.BFS(g2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fps1 := []string{p1.Shards[0].Fingerprint(budgets), p1.Shards[1].Fingerprint(budgets)}
	fps2 := []string{p2.Shards[0].Fingerprint(budgets), p2.Shards[1].Fingerprint(budgets)}
	sort.Strings(fps1)
	sort.Strings(fps2)
	if !reflect.DeepEqual(fps1, fps2) {
		t.Fatalf("renumbering changed local fingerprints: %v vs %v", fps1, fps2)
	}
}

// TestRebaseKeepsUntouchedShards pins the delta stability Rebase promises:
// removing an edge inside one region keeps every other shard's node set,
// halo, and fingerprint identical, and the shard Index values survive.
func TestRebaseKeepsUntouchedShards(t *testing.T) {
	src := rng.New(8)
	g, pts := gen.RandomUDG(160, 12, 2.0, src)
	p, err := shard.Geometric(g, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) < 3 {
		t.Skipf("only %d shards; need >= 3 for an untouched-shard assertion", len(p.Shards))
	}
	budgets := make([]int, g.N())
	for v := range budgets {
		budgets[v] = 3
	}
	// Remove one node owned deep inside shard 0 (no halo contact).
	victim := -1
	for _, v := range p.Shards[0].Nodes {
		inHalo := false
		for _, sh := range p.Shards[1:] {
			for _, h := range sh.Halo {
				if h == v {
					inHalo = true
				}
			}
		}
		if !inHalo {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Skip("no interior node in shard 0")
	}
	d := &graph.Delta{RemoveNodes: []int{victim}}
	g2, budgets2, mapping, err := d.Apply(g, budgets)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p.Rebase(g2, mapping)
	checkPartition(t, g2, p2)

	touched := p.Touched(g, []int{victim})
	if len(touched) == 0 || touched[0] != 0 {
		t.Fatalf("Touched(%d) = %v, want it to include shard position 0", victim, touched)
	}
	wasTouched := map[int]bool{}
	for _, pos := range touched {
		wasTouched[p.Shards[pos].Index] = true
	}
	byIndex := map[int]*shard.Shard{}
	for _, sh := range p2.Shards {
		byIndex[sh.Index] = sh
	}
	for _, old := range p.Shards {
		if wasTouched[old.Index] {
			continue
		}
		nw, ok := byIndex[old.Index]
		if !ok {
			t.Fatalf("untouched shard %d vanished after rebase", old.Index)
		}
		if old.Fingerprint(budgets) != nw.Fingerprint(budgets2) {
			t.Fatalf("untouched shard %d changed fingerprint after an interior delta", old.Index)
		}
	}
}
