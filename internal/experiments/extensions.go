package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Extension — general-battery k-tolerant scheduling (paper's open problem)",
		Run:   runE14,
	})
	register(Experiment{
		ID:    "E15",
		Title: "Extension — scarcity-aware vs plain greedy partition extraction",
		Run:   runE15,
	})
}

func runE14(cfg Config) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "Extension — general-battery k-tolerant scheduling (paper's open problem)",
		Header: []string{"n", "b_max", "k", "lifetime", "ratio", "ratio/ln(b_max·n)"},
	}
	root := rng.New(cfg.Seed + 14)
	n := 512
	if cfg.Quick {
		n = 128
	}
	p := 16 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	for _, bMax := range []int{8, 32} {
		for _, k := range []int{1, 2, 3} {
			type sample struct {
				ratio, lifetime float64
				ok              bool
			}
			srcs := root.SplitN(cfg.trials())
			samples := mapTrials(cfg, "E14", cfg.trials(), func(i int) sample {
				src := srcs[i]
				g := gen.GNP(n, p, src)
				if g.MinDegree()+1 < k {
					return sample{}
				}
				b := make([]int, g.N())
				for j := range b {
					b[j] = 1 + src.Intn(bMax)
				}
				s := solve(solver.NameGeneralFT, g, b, k, 30, src.Split())
				if s.Lifetime() == 0 {
					return sample{}
				}
				ub := core.GeneralKTolerantUpperBound(g, b, k)
				return sample{
					ratio:    float64(ub) / float64(s.Lifetime()),
					lifetime: float64(s.Lifetime()),
					ok:       true,
				}
			})
			var ratios, lifetimes []float64
			for _, sm := range samples {
				if sm.ok {
					ratios = append(ratios, sm.ratio)
					lifetimes = append(lifetimes, sm.lifetime)
				}
			}
			if len(ratios) == 0 {
				continue
			}
			r := stats.Summarize(ratios)
			norm := math.Log(float64(bMax) * float64(n))
			t.AddRow(itoa(n), itoa(bMax), itoa(k),
				f2(stats.Summarize(lifetimes).Mean), f2(r.Mean), f3(r.Mean/norm))
		}
	}
	t.Notes = append(t.Notes,
		"our extension beyond the paper: merge k consecutive Algorithm 2 slot classes into k-dominating phases",
		"the merge divides both the lifetime and the Lemma 6.1-style bound by k, so the measured ratio is",
		"independent of k and stays ≈ K·ln(b_max·n) — the same guarantee as the k=1 case (Theorem 5.3)")
	return t
}

func runE15(cfg Config) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "Extension — scarcity-aware vs plain greedy partition extraction",
		Header: []string{"family", "δ+1", "plain greedy sets", "constrained greedy sets", "gain"},
	}
	root := rng.New(cfg.Seed + 15)
	n := 300
	if cfg.Quick {
		n = 120
	}
	families := []family{
		{"udg uniform", func(n int, src *rng.Source) *graph.Graph {
			side := math.Sqrt(float64(n))
			g, _ := gen.RandomUDG(n, side, math.Sqrt(16*math.Log(float64(n))/math.Pi), src)
			return g
		}},
		{"udg clustered", func(n int, src *rng.Source) *graph.Graph {
			side := math.Sqrt(float64(n))
			g, _ := gen.ClusteredUDG(n, 5, side, side/8, math.Sqrt(16*math.Log(float64(n))/math.Pi), src)
			return g
		}},
		{"gnp", func(n int, src *rng.Source) *graph.Graph {
			return gen.GNP(n, 14*math.Log(float64(n))/float64(n), src)
		}},
	}
	for _, fam := range families {
		srcs := root.SplitN(cfg.trials())
		type sample struct{ plain, constrained, delta float64 }
		samples := mapTrials(cfg, "E15", cfg.trials(), func(i int) sample {
			g := fam.build(n, srcs[i])
			return sample{
				plain:       float64(len(domatic.GreedyPartition(g, domatic.GreedyExtractor))),
				constrained: float64(len(domatic.GreedyPartition(g, domatic.ConstrainedExtractor))),
				delta:       float64(g.MinDegree() + 1),
			}
		})
		var plain, constrained, deltas []float64
		for _, sm := range samples {
			plain = append(plain, sm.plain)
			constrained = append(constrained, sm.constrained)
			deltas = append(deltas, sm.delta)
		}
		p := stats.Summarize(plain)
		c := stats.Summarize(constrained)
		gain := 0.0
		if p.Mean > 0 {
			gain = c.Mean / p.Mean
		}
		t.AddRow(fam.name, f2(stats.Summarize(deltas).Mean), f2(p.Mean), f2(c.Mean), f2(gain))
	}
	t.Notes = append(t.Notes,
		"the scarcity-aware extractor (Slijepčević–Potkonjak style) reserves rare dominators for later sets",
		"negative result on benign families: plain greedy already operates near the δ+1 ceiling on UDGs, so",
		"scarcity-awareness adds little there; on adversarial supply (E7's trap) no extraction order survives")
	return t
}
