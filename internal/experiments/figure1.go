package experiments

import (
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Figure1Instance reconstructs the paper's Figure 1 (the scan's drawing is
// unrecoverable; DESIGN.md §4 documents the reconstruction): a 7-node graph
// with non-uniform batteries whose optimal cluster-lifetime is exactly 6,
// bound by node 6, whose closed neighborhood {4, 5, 6} carries exactly 6
// units of energy. One optimal schedule runs a 2-node set for 2 slots, a
// 3-node set for 1 slot, and another 2-node set for 3 slots — the phase
// structure the figure depicts — and, as the caption notes, the optimum is
// not unique.
func Figure1Instance() (*graph.Graph, []int) {
	g := graph.New(7)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {3, 4}, {4, 5}, {4, 6}, {5, 6}} {
		g.AddEdge(e[0], e[1])
	}
	return g, []int{3, 2, 1, 1, 2, 3, 1}
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Figure 1 — 7-node instance with optimal lifetime 6",
		Run:   runE1,
	})
}

func runE1(cfg Config) *Table {
	g, b := Figure1Instance()
	t := &Table{
		ID:     "E1",
		Title:  "Figure 1 — 7-node instance with optimal lifetime 6",
		Header: []string{"quantity", "value"},
	}

	integral, sets, durs := exact.Integral(g, b, 1)
	fractional, _, _, err := exact.Fractional(g, b, 1)
	if err != nil {
		t.Notes = append(t.Notes, "fractional LP failed: "+err.Error())
	}
	bound := core.GeneralUpperBound(g, b)

	alg := solve(solver.NameGeneral, g, b, 1, 20*cfg.trials(), rng.New(cfg.Seed+1))

	t.AddRow("nodes", itoa(g.N()))
	t.AddRow("edges", itoa(g.M()))
	t.AddRow("Lemma 5.1 bound (min energy coverage)", itoa(bound))
	t.AddRow("integral optimum (paper: 6)", itoa(integral))
	t.AddRow("fractional LP optimum", f3(fractional))
	t.AddRow("optimal schedule phases", itoa(len(sets)))
	t.AddRow("Algorithm 2 lifetime (feasible, ≤ optimum)", itoa(alg.Lifetime()))

	total := 0
	for _, d := range durs {
		total += d
	}
	t.AddRow("optimal schedule total slots", itoa(total))
	t.Notes = append(t.Notes,
		"optimum binds at node 6: closed neighborhood {4,5,6} holds 6 energy units",
		"the optimal schedule is not unique (paper, Figure 1 caption)",
		"Algorithm 2's w.h.p. guarantee is asymptotic; on 7 nodes its color range collapses to ~1 slot — the exact solver is the right tool at this scale")
	return t
}
