package experiments

import (
	"math"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/energy"
	"repro/internal/gen"
	"repro/internal/heal"
	"repro/internal/rng"
	"repro/internal/sensim"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E23",
		Title: "Self-healing — static k-tolerance vs 1-tolerant + online repair under chaos",
		Run:   runE23,
	})
}

// E23 puts the two defenses against node failure side by side under the
// identical seeded chaos plan: the paper's static pre-provisioning
// (Algorithm 3's k-tolerant schedules pay ~k× energy for redundancy) versus
// a plain 1-tolerant schedule backed by the online repair ladder of package
// heal (patch → replan → degrade). The chaos plan mixes random crashes,
// a regional blackout, and battery leaks; the patch protocol additionally
// runs under a lossy radio.
func runE23(cfg Config) *Table {
	t := &Table{
		ID:    "E23",
		Title: "Self-healing — static k-tolerance vs 1-tolerant + online repair under chaos",
		Header: []string{"arm", "nominal", "achieved", "covered slots",
			"deaths", "recruits", "replans", "patch msgs", "degraded"},
	}
	root := rng.New(cfg.Seed + 23)
	n := 256
	crashes := 24
	if cfg.Quick {
		n, crashes = 96, 12
	}
	const b = 4
	const k = 3
	g := gen.GNP(n, 8*math.Log(float64(n))/float64(n), root.Split())

	type sample struct {
		nominal, achieved, covered, deaths int
		recruits, replans, msgs, degraded  int
		ok                                 bool
	}
	type arm struct {
		name string
		run  func(src *rng.Source) sample
	}

	// Every arm rebuilds the identical chaos plan from the same sub-seed, so
	// all three see the same crash times, the same blackout region, and the
	// same leak spikes.
	buildPlan := func(src *rng.Source, horizon int) chaos.Plan {
		return chaos.Merge(
			chaos.Crashes(g, crashes, horizon, src.Split()),
			chaos.Blackouts(g, 1, 3, horizon, src.Split()),
			chaos.LeakSpikes(g, n/16, 2, horizon, src.Split()),
		)
	}
	partition := domatic.GreedyPartition(g, domatic.GreedyExtractor)
	plain := core.FromPartition(partition, b)
	horizon := plain.Lifetime()

	static := func(s *core.Schedule) func(src *rng.Source) sample {
		return func(src *rng.Source) sample {
			if s.Lifetime() == 0 {
				return sample{}
			}
			net := energy.NewNetwork(g, energy.Uniform(g, b))
			res := sensim.Run(net, s, sensim.Options{K: 1, Inject: buildPlan(src, horizon).Injector()})
			return sample{
				nominal: s.Lifetime(), achieved: res.AchievedLifetime,
				covered: coveredSlots(res.Coverage), deaths: res.Deaths, ok: true,
			}
		}
	}

	arms := []arm{
		{"static 1-dom (greedy partition)", static(plain)},
		{"static 3-tolerant (Algorithm 3)", func(src *rng.Source) sample {
			s := solve(solver.NameFT, g, uniformBudgets(g.N(), b), k, 30, src.Split())
			return static(s)(src)
		}},
		{"1-dom + self-healing", func(src *rng.Source) sample {
			if plain.Lifetime() == 0 {
				return sample{}
			}
			plan := chaos.Merge(buildPlan(src, horizon), chaos.FlatLoss(0.15, src.Split()))
			net := energy.NewNetwork(g, energy.Uniform(g, b))
			res := heal.Run(net, plain, heal.Options{K: 1, Chaos: plan, Src: src.Split()})
			return sample{
				nominal: plain.Lifetime(), achieved: res.AchievedLifetime,
				covered: coveredSlots(res.Coverage), deaths: res.Deaths,
				recruits: res.Recruited, replans: res.Replans,
				msgs: res.Protocol.Messages, degraded: res.DegradedSlots, ok: true,
			}
		}},
	}

	for _, a := range arms {
		samples := mapTrials(cfg, "E23", cfg.trials(), func(i int) sample {
			// Derive the arm's randomness from the trial index alone, so
			// every arm of trial i replays the same chaos sub-seeds.
			return a.run(rng.New(cfg.Seed + 23 + uint64(i)*1009))
		})
		var achieved, covered, nominal, deaths []float64
		var recruits, replans, msgs, degraded int
		got := 0
		for _, sm := range samples {
			if !sm.ok {
				continue
			}
			got++
			nominal = append(nominal, float64(sm.nominal))
			achieved = append(achieved, float64(sm.achieved))
			covered = append(covered, float64(sm.covered))
			deaths = append(deaths, float64(sm.deaths))
			recruits += sm.recruits
			replans += sm.replans
			msgs += sm.msgs
			degraded += sm.degraded
		}
		if got == 0 {
			continue
		}
		t.AddRow(a.name,
			f2(stats.Summarize(nominal).Mean),
			f2(stats.Summarize(achieved).Mean),
			f2(stats.Summarize(covered).Mean),
			f2(stats.Summarize(deaths).Mean),
			itoa(recruits/got), itoa(replans/got), itoa(msgs/got), itoa(degraded/got))
	}
	t.Notes = append(t.Notes,
		"all arms replay the identical seeded chaos plan (crashes + regional blackout + battery leaks)",
		"the healing arm's patch protocol additionally runs under a 15% lossy radio; msgs prices that repair traffic",
		"static 1-dom falls at the first crash of a serving clusterhead; healing recruits replacements and replans over residuals",
		"covered slots counts all fully covered slots, achieved the consecutive prefix (the lifetime definition)")
	return t
}

// coveredSlots counts the slots with full coverage anywhere in the trace.
func coveredSlots(coverage []float64) int {
	c := 0
	for _, f := range coverage {
		if f >= 1 {
			c++
		}
	}
	return c
}
