package experiments

import (
	"math"

	"repro/internal/cds"
	"repro/internal/domatic"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Algorithm comparison against the exact optimum (small instances)",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Fujita lower bound — greedy-minimum domatic partition collapses to 2 sets",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E9",
		Title: "Feige et al. — domatic partition sizes against (δ+1)/ln Δ and δ+1",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Future work (§7) — the lifetime cost of requiring connected dominating sets",
		Run:   runE11,
	})
}

func runE6(cfg Config) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "Algorithm comparison against the exact optimum (small instances)",
		Header: []string{"n", "b", "exact OPT", "LP OPT", "Alg1 (uniform)", "greedy partition", "naive all-on", "Alg1/OPT"},
	}
	root := rng.New(cfg.Seed + 6)
	// The exact branch-and-bound is exponential; n ≤ 12 with b = 2 keeps
	// every instance in the millisecond range while still separating the
	// algorithms.
	sizes := []int{10, 12}
	if cfg.Quick {
		sizes = []int{10}
	}
	const b = 2
	for _, n := range sizes {
		type sample struct {
			opt, lp, alg, greedy float64
			ok                   bool
		}
		srcs := root.SplitN(cfg.trials())
		samples := mapTrials(cfg, "E6", cfg.trials(), func(i int) sample {
			src := srcs[i]
			g := gen.GNP(n, 0.4, src)
			batteries := make([]int, n)
			for j := range batteries {
				batteries[j] = b
			}
			opt, _, _ := exact.Integral(g, batteries, 1)
			if opt == 0 {
				return sample{}
			}
			lpv, _, _, err := exact.Fractional(g, batteries, 1)
			if err != nil {
				return sample{}
			}
			s := solve(solver.NameUniform, g, batteries, 1, 30, src.Split())
			gp := domatic.GreedyPartition(g, domatic.GreedyExtractor)
			return sample{
				opt:    float64(opt),
				lp:     lpv,
				alg:    float64(s.Lifetime()),
				greedy: float64(len(gp) * b),
				ok:     true,
			}
		})
		var opts, lps, algs, greedys []float64
		for _, sm := range samples {
			if sm.ok {
				opts = append(opts, sm.opt)
				lps = append(lps, sm.lp)
				algs = append(algs, sm.alg)
				greedys = append(greedys, sm.greedy)
			}
		}
		if len(opts) == 0 {
			continue
		}
		o := stats.Summarize(opts)
		a := stats.Summarize(algs)
		t.AddRow(itoa(n), itoa(b), f2(o.Mean), f2(stats.Summarize(lps).Mean),
			f2(a.Mean), f2(stats.Summarize(greedys).Mean), itoa(b),
			f2(a.Mean/o.Mean))
	}
	t.Notes = append(t.Notes,
		"greedy partition × b is the centralized heuristic; Alg1 is distributed yet stays a constant fraction of OPT at these sizes",
		"naive all-on achieves exactly b — the baseline every schedule must beat")
	return t
}

func runE7(cfg Config) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Fujita lower bound — greedy-minimum domatic partition collapses to 2 sets",
		Header: []string{"k", "n", "domatic ≥ (planted)", "greedy-min sets", "greedy-setcover sets", "coloring valid classes", "greedy-min gap"},
	}
	ks := []int{3, 4, 5, 6, 8}
	if cfg.Quick {
		ks = []int{3, 4}
	}
	root := rng.New(cfg.Seed + 7)
	for _, k := range ks {
		g, planted := gen.FujitaTrap(k)
		greedyMin := domatic.GreedyPartition(g, domatic.MinimumExtractor)
		greedySC := domatic.GreedyPartition(g, domatic.GreedyExtractor)
		coloring := domatic.RandomColoring(g, 3, root.Split())
		valid := domatic.CountDominating(g, coloring)
		t.AddRow(itoa(k), itoa(g.N()), itoa(len(planted)), itoa(len(greedyMin)),
			itoa(len(greedySC)), itoa(valid),
			f2(float64(len(planted))/float64(len(greedyMin))))
	}
	t.Notes = append(t.Notes,
		"greedy-min always finds exactly 2 sets while the domatic number is k = Θ(√n): the Ω(√n) gap of Fujita's examples",
		"the coloring's Ω(δ/ln n) guarantee degrades to 1 class here (δ = k ≪ ln n on the trap) but never collapses adversarially")
	return t
}

func runE9(cfg Config) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Feige et al. — domatic partition sizes against (δ+1)/ln Δ and δ+1",
		Header: []string{"family", "n", "δ+1", "(δ+1)/ln Δ", "planted/exact", "greedy sets", "coloring valid"},
	}
	root := rng.New(cfg.Seed + 9)
	n := 240
	if cfg.Quick {
		n = 120
	}
	for _, d := range []int{4, 8, 12} {
		g, planted := gen.PlantedDomatic(n, d, n/2, root.Split())
		greedy := domatic.GreedyPartition(g, domatic.GreedyExtractor)
		coloring := domatic.RandomColoring(g, 3, root.Split())
		t.AddRow("planted", itoa(n), itoa(domatic.UpperBound(g)),
			f2(domatic.FeigeLowerBound(g)), itoa(len(planted)),
			itoa(len(greedy)), itoa(domatic.CountDominating(g, coloring)))
	}
	for _, d := range []int{10, 20, 40} {
		g := gen.Circulant(n, d)
		greedy := domatic.GreedyPartition(g, domatic.GreedyExtractor)
		coloring := domatic.RandomColoring(g, 3, root.Split())
		t.AddRow("circulant", itoa(n), itoa(domatic.UpperBound(g)),
			f2(domatic.FeigeLowerBound(g)), "-",
			itoa(len(greedy)), itoa(domatic.CountDominating(g, coloring)))
	}
	// Small structured instances where the exact domatic number is
	// computable: the full window [(δ+1)/ln Δ, δ+1] with its exact point.
	smalls := []struct {
		name string
		g    *graph.Graph
	}{
		{"C9 (ring)", gen.Ring(9)},
		{"K7", gen.Complete(7)},
		{"hypercube d=3", gen.Hypercube(3)},
		{"K(3,3)", gen.CompleteBipartite(3, 3)},
	}
	for _, sm := range smalls {
		exactD := domatic.ExactDomaticNumber(sm.g)
		greedy := domatic.GreedyPartition(sm.g, domatic.GreedyExtractor)
		coloring := domatic.RandomColoring(sm.g, 3, root.Split())
		t.AddRow(sm.name, itoa(sm.g.N()), itoa(domatic.UpperBound(sm.g)),
			f2(domatic.FeigeLowerBound(sm.g)), itoa(exactD),
			itoa(len(greedy)), itoa(domatic.CountDominating(sm.g, coloring)))
	}
	t.Notes = append(t.Notes,
		"every partition size lies in [(1-o(1))(δ+1)/ln Δ, δ+1] (Feige et al.)",
		"greedy tracks δ+1 closely on benign graphs; the coloring pays the K·ln n factor")
	return t
}

func runE11(cfg Config) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "Future work (§7) — the lifetime cost of requiring connected dominating sets",
		Header: []string{"n", "avg deg", "plain greedy sets", "connected greedy sets", "plain lifetime", "CDS lifetime", "cost factor"},
	}
	root := rng.New(cfg.Seed + 11)
	sizes := []int{100, 200}
	if cfg.Quick {
		sizes = []int{80}
	}
	const b = 3
	for _, n := range sizes {
		type sample struct {
			plain, conn float64
			ok          bool
		}
		srcs := root.SplitN(cfg.trials())
		samples := mapTrials(cfg, "E11", cfg.trials(), func(i int) sample {
			side := math.Sqrt(float64(n))
			radius := math.Sqrt(14 * math.Log(float64(n)) / math.Pi)
			g, _ := gen.RandomUDG(n, side, radius, srcs[i])
			if !g.Connected() {
				return sample{}
			}
			return sample{
				plain: float64(len(domatic.GreedyPartition(g, domatic.GreedyExtractor))),
				conn:  float64(len(cds.GreedyConnectedPartition(g))),
				ok:    true,
			}
		})
		var plainSets, cdsSets []float64
		for _, sm := range samples {
			if sm.ok {
				plainSets = append(plainSets, sm.plain)
				cdsSets = append(cdsSets, sm.conn)
			}
		}
		if len(plainSets) == 0 {
			continue
		}
		p := stats.Summarize(plainSets)
		c := stats.Summarize(cdsSets)
		cost := math.Inf(1)
		if c.Mean > 0 {
			cost = p.Mean / c.Mean
		}
		t.AddRow(itoa(n), "~14 ln n", f2(p.Mean), f2(c.Mean),
			f2(p.Mean*b), f2(c.Mean*b), f2(cost))
	}
	t.Notes = append(t.Notes,
		"connectivity is a real constraint: each CDS needs Ω(diameter) nodes, so fewer disjoint ones fit",
		"the paper leaves approximation of the connected variant open; this table quantifies the greedy gap")
	return t
}
