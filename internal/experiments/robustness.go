package experiments

import (
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Algorithm 3 against the exact k-tolerant optimum (small instances)",
		Run:   runE20,
	})
	register(Experiment{
		ID:    "E21",
		Title: "Robustness — Algorithm 1 under radio message loss",
		Run:   runE21,
	})
}

func runE20(cfg Config) *Table {
	t := &Table{
		ID:     "E20",
		Title:  "Algorithm 3 against the exact k-tolerant optimum (small instances)",
		Header: []string{"n", "k", "exact OPT", "Lemma 6.1 bound", "Alg3 lifetime", "Alg3/OPT"},
	}
	root := rng.New(cfg.Seed + 20)
	n := 11
	if cfg.Quick {
		n = 9
	}
	const b = 2
	for _, k := range []int{1, 2} {
		srcs := root.SplitN(cfg.trials())
		type sample struct {
			opt, alg, bound float64
			ok              bool
		}
		samples := mapTrials(cfg, "E20", cfg.trials(), func(i int) sample {
			src := srcs[i]
			g := gen.GNP(n, 0.5, src)
			if g.MinDegree()+1 < k {
				return sample{}
			}
			batteries := make([]int, n)
			for j := range batteries {
				batteries[j] = b
			}
			opt, _, _ := exact.Integral(g, batteries, k)
			if opt == 0 {
				return sample{}
			}
			s := solve(solver.NameFT, g, batteries, k, 30, src.Split())
			return sample{
				opt:   float64(opt),
				alg:   float64(s.Lifetime()),
				bound: float64(core.KTolerantUpperBound(g, b, k)),
				ok:    true,
			}
		})
		var opts, algs, bounds []float64
		for _, sm := range samples {
			if sm.ok {
				opts = append(opts, sm.opt)
				algs = append(algs, sm.alg)
				bounds = append(bounds, sm.bound)
			}
		}
		if len(opts) == 0 {
			continue
		}
		o := stats.Summarize(opts)
		a := stats.Summarize(algs)
		t.AddRow(itoa(n), itoa(k), f2(o.Mean), f2(stats.Summarize(bounds).Mean),
			f2(a.Mean), f2(a.Mean/o.Mean))
	}
	t.Notes = append(t.Notes,
		"exact optimum from minimal k-dominating set enumeration + branch and bound",
		"Lemma 6.1's bound b(δ+1)/k over-estimates the true optimum noticeably at k=2 on small graphs,",
		"so the measured Alg3/OPT fraction is fairer to the algorithm than ratio-vs-bound columns")
	return t
}

func runE21(cfg Config) *Table {
	t := &Table{
		ID:     "E21",
		Title:  "Robustness — Algorithm 1 under radio message loss",
		Header: []string{"loss", "valid prefix classes", "vs lossless", "dropped msgs"},
	}
	root := rng.New(cfg.Seed + 21)
	n := 400
	if cfg.Quick {
		n = 150
	}
	const b = 3
	g := gen.GNP(n, 0.2, root.Split())
	baselinePrefix := func() float64 {
		srcs := root.SplitN(cfg.trials())
		vals := mapTrials(cfg, "E21", cfg.trials(), func(i int) float64 {
			nodes := distsim.NewUniformNodes(g, 3, srcs[i].SplitN(g.N()))
			if _, err := distsim.Run(g, distsim.Programs(nodes), distsim.Options{MaxRounds: 10}); err != nil {
				return 0
			}
			s := distsim.UniformSchedule(nodes, b).TruncateInvalid(g, 1)
			return float64(s.Lifetime()) / float64(b)
		})
		return stats.Summarize(vals).Mean
	}()
	for _, loss := range []float64{0, 0.05, 0.2, 0.5} {
		srcs := root.SplitN(cfg.trials())
		type sample struct {
			prefix, dropped float64
			ok              bool
		}
		samples := mapTrials(cfg, "E21", cfg.trials(), func(i int) sample {
			src := srcs[i]
			nodes := distsim.NewUniformNodes(g, 3, src.SplitN(g.N()))
			st, err := distsim.Run(g, distsim.Programs(nodes), distsim.Options{MaxRounds: 10, Radio: distsim.FlatRadio(loss, src.Split())})
			if err != nil {
				return sample{}
			}
			s := distsim.UniformSchedule(nodes, b).TruncateInvalid(g, 1)
			return sample{
				prefix:  float64(s.Lifetime()) / float64(b),
				dropped: float64(st.Dropped),
				ok:      true,
			}
		})
		var prefixes, dropped []float64
		for _, sm := range samples {
			if sm.ok {
				prefixes = append(prefixes, sm.prefix)
				dropped = append(dropped, sm.dropped)
			}
		}
		if len(prefixes) == 0 {
			continue
		}
		p := stats.Summarize(prefixes)
		rel := 0.0
		if baselinePrefix > 0 {
			rel = p.Mean / baselinePrefix
		}
		t.AddRow(pct(loss), f2(p.Mean), f2(rel), f2(stats.Summarize(dropped).Mean))
	}
	t.Notes = append(t.Notes,
		"losing a degree message can only *raise* a node's estimate of δ²_v, widening its color range —",
		"exactly the effect of lowering K (cf. E3): longer raw schedules whose validity is no longer",
		"guaranteed w.h.p. On dense graphs the realized valid prefix actually grows; the casualty is the",
		"proof, not the schedule. (Deployments would add link-layer acks, which the paper assumes anyway.)")
	return t
}
