package experiments

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// E22 (tight-ratio families) is the lightest mapTrials experiment at quick
// scale, so the escape-hatch tests drive it.
const hatchExp = "E22"

func TestRunCanceledBeforeStart(t *testing.T) {
	cfg := quickCfg()
	cfg.Cancel = func() bool { return true }
	tab, err := Run(hatchExp, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if tab != nil {
		t.Fatalf("canceled-before-start run produced a table: %+v", tab)
	}
}

func TestRunCanceledMidway(t *testing.T) {
	// Sticky cancel that fires after the first poll: the first trial may
	// run, the rest are skipped, and Run reports the cancellation.
	var polls atomic.Int32
	cfg := quickCfg()
	cfg.Cancel = func() bool { return polls.Add(1) > 1 }
	_, err := Run(hatchExp, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunAllStopsOnCancel(t *testing.T) {
	cfg := quickCfg()
	cfg.Cancel = func() bool { return true }
	if tabs := RunAll(cfg); len(tabs) != 0 {
		t.Fatalf("canceled RunAll returned %d tables, want 0", len(tabs))
	}
}

func TestTrialEventsEmitted(t *testing.T) {
	mem := &obs.Memory{}
	cfg := quickCfg()
	cfg.Trace = mem
	if _, err := Run(hatchExp, cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	starts := mem.Count(obs.EvTrialStart)
	ends := mem.Count(obs.EvTrialEnd)
	if starts == 0 {
		t.Fatal("no trial_start events emitted")
	}
	if starts != ends {
		t.Fatalf("%d trial_start vs %d trial_end events", starts, ends)
	}
	for _, ev := range mem.Events {
		if ev.Name != hatchExp {
			t.Fatalf("trial event labeled %q, want %q", ev.Name, hatchExp)
		}
	}
}
