package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E26",
		Title: "Sharded solve — stitched vs whole-graph lifetime and wall-clock on large UDG instances",
		Run:   runE26,
	})
}

// E26 measures what the partition-solve-stitch pipeline (internal/shard)
// costs in schedule quality and buys in wall-clock on large unit-disk
// instances — the deployment regime sharding exists for. Each arm solves the
// same UDG with greedy recruitment: whole-graph as the reference, then
// geometric tiling at 4 and 9 shards and seeded BFS at 4 shards, each
// stitched back with boundary repair (k = 1). The lifetime columns average
// cfg.trials() independent instances; "vs whole" is the ratio of the arm's
// mean lifetime to the whole-graph mean, and repairs/replans count the
// stitcher's escalations per trial.
//
// The expected shape: stitched lifetime stays within a few percent of the
// whole-graph solve (boundary repair recruits across seams instead of
// truncating), repairs stay small relative to the phase count, and the
// "solve ms" column — one sequential timed pass per arm on the trial-0
// instance, per-shard solves racing on a transient pool — drops as shards
// go up. Timing is machine-dependent and excluded from the deterministic
// trial averages by construction.
func runE26(cfg Config) *Table {
	t := &Table{
		ID:     "E26",
		Title:  "Sharded solve — stitched vs whole-graph lifetime and wall-clock on large UDG instances",
		Header: []string{"arm", "shards", "lifetime", "vs whole", "repairs", "replans", "solve ms"},
	}
	n, b := 2000, 8
	if cfg.Quick {
		n = 160
	}
	radius := 2.0 * math.Sqrt(math.Log(float64(n))/float64(n))

	type arm struct {
		label       string
		partitioner string // "" = whole-graph reference
		shards      int
	}
	arms := []arm{
		{"whole", "", 1},
		{"geom", "geom", 4},
		{"geom", "geom", 9},
		{"bfs", "bfs", 4},
	}

	type sample struct {
		lifetime, repairs, replans float64
		degraded                   bool
		ok                         bool
	}

	// runArm solves one instance under one arm. Every arm runs greedy
	// recruitment so the comparison isolates the partition-stitch pipeline,
	// not the solver; the sharded arms go through the same ByName /
	// SolveShards / Stitch path the service and CLIs use.
	runArm := func(a arm, g *graph.Graph, pts []geom.Point, budgets []int, seed uint64) (*core.Schedule, *shard.Stitched) {
		spec := solver.Spec{Name: solver.NameGreedy}
		in := instance.New(g, budgets)
		if a.partitioner == "" {
			s, err := solver.Solve(in, spec, solver.Options{Src: rng.New(seed)})
			if err != nil {
				panic("experiments: E26 whole: " + err.Error())
			}
			return s, nil
		}
		p, err := shard.ByName(a.partitioner, g, pts, a.shards, seed)
		if err != nil {
			panic("experiments: E26 partition: " + err.Error())
		}
		solved, err := shard.SolveShards(in, p, shard.Options{
			Spec: spec, Seed: seed, TransientPool: true,
		})
		if err != nil {
			panic("experiments: E26 solve: " + err.Error())
		}
		st, err := shard.Stitch(in, p, solved, obs.Hooks{})
		if err != nil {
			panic("experiments: E26 stitch: " + err.Error())
		}
		return st.Schedule, st
	}

	buildInstance := func(i int) (*graph.Graph, []geom.Point, uint64) {
		seed := cfg.Seed + 26 + uint64(i)*5309
		g, pts := gen.RandomUDG(n, 1, radius, rng.New(seed))
		return g, pts, seed
	}

	var wholeMean float64
	var degraded int
	for _, a := range arms {
		id := fmt.Sprintf("E26/%s/%d", a.label, a.shards)
		samples := mapTrials(cfg, "E26", cfg.trials(), func(i int) sample {
			g, pts, seed := buildInstance(i)
			s, st := runArm(a, g, pts, uniformBudgets(g.N(), b), seed)
			out := sample{lifetime: float64(s.Lifetime()), ok: true}
			if st != nil {
				out.repairs = float64(st.Repairs)
				out.replans = float64(st.Replans)
				out.degraded = st.Degraded
			}
			return out
		})
		var lifetimes, repairs, replans []float64
		for _, sm := range samples {
			if sm.ok {
				lifetimes = append(lifetimes, sm.lifetime)
				repairs = append(repairs, sm.repairs)
				replans = append(replans, sm.replans)
				if sm.degraded {
					degraded++
				}
			}
		}
		if len(lifetimes) == 0 {
			continue
		}
		mean := stats.Summarize(lifetimes).Mean
		if a.partitioner == "" {
			wholeMean = mean
		}
		ratio := "-"
		if a.partitioner != "" && wholeMean > 0 {
			ratio = pct(mean / wholeMean)
		}
		// One sequential timed pass per arm on the trial-0 instance. The
		// trial averages above run concurrently (mapTrials), so timing them
		// would measure scheduler contention; this pass is the honest
		// wall-clock comparison and the only non-deterministic cell.
		g0, pts0, seed0 := buildInstance(0)
		budgets0 := uniformBudgets(g0.N(), b)
		start := time.Now()
		runArm(a, g0, pts0, budgets0, seed0)
		ms := float64(time.Since(start).Microseconds()) / 1000

		t.AddRow(id, itoa(a.shards), f2(mean), ratio,
			f2(stats.Summarize(repairs).Mean), f2(stats.Summarize(replans).Mean), f2(ms))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n = %d, uniform battery %d, UDG radius 2·sqrt(ln n / n); greedy recruitment in every arm.", n, b),
		"\"vs whole\" is mean stitched lifetime over the whole-graph mean; the acceptance band is >= 95%.",
		"\"solve ms\" is a single sequential pass (transient per-shard pool) and varies by machine; all other columns are deterministic in the seed.",
	)
	if degraded > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("%d sharded trials degraded (stitcher truncated before exhausting shard plans).", degraded))
	}
	return t
}
