package experiments

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E25",
		Title: "Anytime refinement — lifetime vs move budget for tabu and annealing over the baselines",
		Run:   runE25,
	})
}

// E25 traces the anytime contract of the local-search refiners: starting from
// the greedy baseline's schedule, how much lifetime do tabu search and
// simulated annealing buy per unit of move budget, and where does the curve
// flatten against the prune post-pass and the paper's WHP algorithm? Each row
// is one (family, algorithm, budget) point averaged over the trials; the
// refiners run through the same solver registry the service uses
// (Spec{Name: refiner, Base: "greedy"}), so the numbers here are exactly what
// a /v1/schedule request with refine=... would return.
//
// The expected shape: refined lifetime is monotone in budget (more probes
// never hurt — the driver keeps the best snapshot), dominates its greedy
// start everywhere, and at the largest budget closes most of the gap to —
// often beating — the WHP randomized schedules, which get their lifetime from
// retries rather than repair.
func runE25(cfg Config) *Table {
	t := &Table{
		ID:    "E25",
		Title: "Anytime refinement — lifetime vs move budget for tabu and annealing over the baselines",
		Header: []string{"family", "algorithm", "budget", "lifetime", "vs greedy"},
	}
	n := 128
	budgets := []int{2000, 10000, 50000}
	if cfg.Quick {
		n, budgets = 64, []int{500, 2000, 8000}
	}
	if cfg.Budget > 0 {
		// The unified -budget flag collapses the sweep to one explicit point.
		budgets = []int{cfg.Budget}
	}
	const b = 10

	families := []struct {
		name  string
		build func(src *rng.Source) *graph.Graph
	}{
		{"gnp", func(src *rng.Source) *graph.Graph {
			return gen.GNP(n, 6*math.Log(float64(n))/float64(n), src)
		}},
		{"udg", func(src *rng.Source) *graph.Graph {
			g, _ := gen.RandomUDG(n, 1, 2.0*math.Sqrt(math.Log(float64(n))/float64(n)), src)
			return g
		}},
	}

	type arm struct {
		label  string
		spec   solver.Spec
		budget int // refinement move budget; 0 for the non-refining arms
	}
	for _, fam := range families {
		arms := []arm{
			{"greedy", solver.Spec{Name: solver.NameGreedy}, 0},
			{"prune", solver.Spec{Name: solver.NamePrune}, 0},
			{"whp (general)", solver.Spec{Name: solver.NameGeneral}, 0},
		}
		for _, budget := range budgets {
			arms = append(arms,
				arm{"tabu", solver.Spec{Name: solver.NameTabu, Base: solver.NameGreedy}, budget},
				arm{"anneal", solver.Spec{Name: solver.NameAnneal, Base: solver.NameGreedy}, budget})
		}

		var greedyMean float64
		for _, a := range arms {
			id := fmt.Sprintf("E25/%s/%s", fam.name, a.label)
			samples := mapTrials(cfg, "E25", cfg.trials(), func(i int) float64 {
				src := rng.New(cfg.Seed + 25 + uint64(i)*2477)
				g := fam.build(src.Split())
				// Heterogeneous batteries in [1, 2b]: with uniform batteries
				// the greedy baseline already sits on the min-degree
				// bottleneck bound, so there is nothing for local search to
				// rebalance; battery skew is where move-based repair pays.
				bsrc := src.Split()
				budgets := make([]int, g.N())
				for v := range budgets {
					budgets[v] = 1 + bsrc.Intn(2*b)
				}
				s, err := solver.Solve(instance.New(g, budgets), a.spec,
					solver.Options{Tries: 10, Budget: a.budget, Src: src})
				if err != nil {
					panic("experiments: " + id + ": " + err.Error())
				}
				return float64(s.Lifetime())
			})
			var vals []float64
			for _, v := range samples {
				if v > 0 {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				continue
			}
			mean := stats.Summarize(vals).Mean
			if a.label == "greedy" {
				greedyMean = mean
			}
			budgetCell := "-"
			if a.budget > 0 {
				budgetCell = itoa(a.budget)
			}
			ratio := "-"
			if greedyMean > 0 {
				ratio = f2(mean / greedyMean)
			}
			t.AddRow(fam.name, a.label, budgetCell, f2(mean), ratio)
		}
	}
	t.Notes = append(t.Notes,
		"every trial regenerates the graph from the trial seed, so all arms of a trial score the same instance",
		"tabu/anneal rows refine the greedy arm's schedule under the stated move budget; the driver keeps the best snapshot, so lifetime is monotone in budget",
		"vs greedy is the arm's mean lifetime over the greedy baseline's on the same family")
	return t
}
