package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
)

func quickCfg() Config { return Config{Seed: 42, Quick: true, Trials: 2} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25", "E26"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry order %v, want %v", ids, want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("E99", quickCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestGetIsCaseInsensitive(t *testing.T) {
	if _, ok := Get("e7"); !ok {
		t.Fatal("lowercase lookup failed")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tab, err := Run(id, quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != id {
				t.Fatalf("table id %q, want %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("row %v does not match header %v", row, tab.Header)
				}
			}
			var sb strings.Builder
			if err := tab.Render(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), id+":") {
				t.Fatalf("rendered table missing id header:\n%s", sb.String())
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := Run("E7", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E7", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	if err := a.Render(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Fatalf("E7 not deterministic:\n%s\nvs\n%s", sa.String(), sb.String())
	}
}

func TestFigure1InstanceProperties(t *testing.T) {
	g, b := Figure1Instance()
	if g.N() != 7 {
		t.Fatalf("n = %d, want 7", g.N())
	}
	if !g.Connected() {
		t.Fatal("Figure 1 graph must be connected")
	}
	if got := core.GeneralUpperBound(g, b); got != 6 {
		t.Fatalf("Lemma 5.1 bound = %d, want 6", got)
	}
	opt, _, _ := exact.Integral(g, b, 1)
	if opt != 6 {
		t.Fatalf("integral optimum = %d, want 6", opt)
	}
}

func TestE1ReportsOptimumSix(t *testing.T) {
	tab, err := Run("E1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "integral optimum") {
			found = true
			if row[1] != "6" {
				t.Fatalf("E1 integral optimum cell = %q, want 6", row[1])
			}
		}
	}
	if !found {
		t.Fatal("E1 table missing the integral optimum row")
	}
}

func TestE7GreedyCollapseVisibleInTable(t *testing.T) {
	tab, err := Run("E7", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// greedy-min sets column must be exactly 2 for every k.
		if row[3] != "2" {
			t.Fatalf("E7 row %v: greedy-min = %s, want 2", row, row[3])
		}
		planted, _ := strconv.Atoi(row[2])
		if planted < 3 {
			t.Fatalf("E7 row %v: planted partition too small", row)
		}
	}
}

func TestE8ConstantRounds(t *testing.T) {
	tab, err := Run("E8", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		rounds, _ := strconv.Atoi(row[3])
		switch {
		case strings.HasPrefix(row[0], "Alg1") && rounds != 1:
			t.Fatalf("Alg1 rounds = %d, want 1 (row %v)", rounds, row)
		case strings.HasPrefix(row[0], "Alg2") && rounds != 2:
			t.Fatalf("Alg2 rounds = %d, want 2 (row %v)", rounds, row)
		}
	}
}

func TestE10ToleranceSurvivesBelowK(t *testing.T) {
	tab, err := Run("E10", Config{Seed: 7, Quick: true, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		k, _ := strconv.Atoi(row[0])
		deaths, _ := strconv.Atoi(row[1])
		if deaths < k && row[3] != "100%" {
			t.Fatalf("k=%d deaths=%d: survival %s, want 100%%", k, deaths, row[3])
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell", "1"}},
		Notes:  []string{"a note"},
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "wide-cell  1") {
		t.Fatalf("unexpected alignment:\n%s", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatalf("missing note:\n%s", out)
	}
}

func TestRunAllProducesEveryTable(t *testing.T) {
	// RunAll is what cmd/ltbench uses; a smoke check with tiny settings.
	tabs := RunAll(Config{Seed: 1, Quick: true, Trials: 1})
	if len(tabs) != len(IDs()) {
		t.Fatalf("RunAll produced %d tables, want %d", len(tabs), len(IDs()))
	}
}

func TestRNGIndependencePerExperiment(t *testing.T) {
	// Different seeds must actually change results somewhere (guards against
	// accidentally fixed internal seeds).
	a, _ := Run("E3", Config{Seed: 1, Quick: true, Trials: 2})
	b, _ := Run("E3", Config{Seed: 2, Quick: true, Trials: 2})
	var sa, sb strings.Builder
	if err := a.Render(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() == sb.String() {
		t.Log("warning: E3 output identical across seeds (possible but unlikely)")
	}
}
