package experiments

import (
	"math"

	"repro/internal/async"
	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Related work (§3) — asynchronous wake-up clustering without a global clock",
		Run:   runE19,
	})
}

func runE19(cfg Config) *Table {
	t := &Table{
		ID:     "E19",
		Title:  "Related work (§3) — asynchronous wake-up clustering without a global clock",
		Header: []string{"wake spread", "dominators", "vs central greedy", "stabilized by", "beacons/slot"},
	}
	root := rng.New(cfg.Seed + 19)
	n := 300
	if cfg.Quick {
		n = 120
	}
	const listen = 4
	for _, spread := range []int{1, 10, 50, 200} {
		srcs := root.SplitN(cfg.trials())
		type sample struct {
			dom, greedy, stab, beacons float64
			ok                         bool
		}
		samples := mapTrials(cfg, "E19", cfg.trials(), func(i int) sample {
			src := srcs[i]
			side := math.Sqrt(float64(n))
			radius := math.Sqrt(12 * math.Log(float64(n)) / math.Pi)
			g, _ := gen.RandomUDG(n, side, radius, src)
			wake := async.StaggeredWakeTimes(g.N(), spread, src)
			horizon := spread + listen + 20
			res, err := async.Run(g, async.Config{Listen: listen, WakeTimes: wake, Horizon: horizon})
			if err != nil {
				return sample{}
			}
			if !domset.IsDominating(g, res.Dominators, nil) {
				return sample{}
			}
			return sample{
				dom:     float64(len(res.Dominators)),
				greedy:  float64(len(domset.Greedy(g))),
				stab:    float64(res.StabilizedAt),
				beacons: float64(res.Beacons) / float64(horizon),
				ok:      true,
			}
		})
		var dom, ratio, stab, beacons []float64
		for _, sm := range samples {
			if sm.ok {
				dom = append(dom, sm.dom)
				ratio = append(ratio, sm.dom/sm.greedy)
				stab = append(stab, sm.stab)
				beacons = append(beacons, sm.beacons)
			}
		}
		if len(dom) == 0 {
			continue
		}
		t.AddRow(itoa(spread),
			f2(stats.Summarize(dom).Mean),
			f2(stats.Summarize(ratio).Mean),
			f2(stats.Summarize(stab).Mean),
			f2(stats.Summarize(beacons).Mean))
	}
	t.Notes = append(t.Notes,
		"simultaneous wake-up (spread 1) is the worst case: everyone self-elects before hearing anyone",
		"staggered wake-ups let early dominators suppress their neighborhoods: density approaches the greedy's",
		"stabilization always happens within max wake time + listening window (no global clock needed)")
	return t
}
