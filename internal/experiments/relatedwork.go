package experiments

import (
	"math"

	"repro/internal/distsim"
	"repro/internal/domset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Related work (§3) — one good dominating set, computed distributedly",
		Run:   runE16,
	})
}

func runE16(cfg Config) *Table {
	t := &Table{
		ID:     "E16",
		Title:  "Related work (§3) — one good dominating set, computed distributedly",
		Header: []string{"family", "n", "central greedy", "dist greedy (size/rounds)", "Luby MIS (size/rounds)", "LP-rounded (size/rounds)"},
	}
	root := rng.New(cfg.Seed + 16)
	sizes := []int{128, 512}
	if cfg.Quick {
		sizes = []int{96}
	}
	families := []family{
		{"udg", func(n int, src *rng.Source) *graph.Graph {
			side := math.Sqrt(float64(n))
			g, _ := gen.RandomUDG(n, side, 1.8, src)
			return g
		}},
		{"gnp", func(n int, src *rng.Source) *graph.Graph {
			return gen.GNP(n, 6*math.Log(float64(n))/float64(n), src)
		}},
	}
	for _, fam := range families {
		for _, n := range sizes {
			type sample struct {
				central, dist, mis, lp          float64
				distRounds, misRounds, lpRounds float64
				ok                              bool
			}
			srcs := root.SplitN(cfg.trials())
			samples := mapTrials(cfg, "E16", cfg.trials(), func(i int) sample {
				src := srcs[i]
				g := fam.build(n, src)
				ck := domset.NewChecker(g)

				central := domset.Greedy(g)

				greedyNodes := distsim.NewGreedyDSNodes(g.N())
				gStats, err := distsim.Run(g, distsim.Programs(greedyNodes), distsim.Options{MaxRounds: 4*g.N() + 10})
				if err != nil {
					return sample{}
				}
				ds := distsim.GreedyDSSet(greedyNodes)
				if !ck.IsKDominating(ds, 1, nil) {
					return sample{}
				}

				misNodes := distsim.NewMISNodes(g.N(), src.SplitN(g.N()))
				mStats, err := distsim.Run(g, distsim.Programs(misNodes), distsim.Options{MaxRounds: 3*g.N() + 10})
				if err != nil {
					return sample{}
				}
				mis := distsim.MISSet(misNodes)
				if !domset.IsIndependent(g, mis) || !ck.IsKDominating(mis, 1, nil) {
					return sample{}
				}

				degrees := make([]int, g.N())
				for v := range degrees {
					degrees[v] = g.Degree(v)
				}
				lpNodes := distsim.NewLPDSNodes(degrees, src.SplitN(g.N()))
				lStats, err := distsim.Run(g, distsim.Programs(lpNodes), distsim.Options{MaxRounds: 10})
				if err != nil {
					return sample{}
				}
				lpSet := distsim.LPDSSet(lpNodes)
				if !ck.IsKDominating(lpSet, 1, nil) {
					return sample{}
				}
				return sample{
					central:    float64(len(central)),
					dist:       float64(len(ds)),
					mis:        float64(len(mis)),
					lp:         float64(len(lpSet)),
					distRounds: float64(gStats.Rounds),
					misRounds:  float64(mStats.Rounds),
					lpRounds:   float64(lStats.Rounds),
					ok:         true,
				}
			})
			var central, dist, mis, lp, dr, mr, lr []float64
			for _, sm := range samples {
				if sm.ok {
					central = append(central, sm.central)
					dist = append(dist, sm.dist)
					mis = append(mis, sm.mis)
					lp = append(lp, sm.lp)
					dr = append(dr, sm.distRounds)
					mr = append(mr, sm.misRounds)
					lr = append(lr, sm.lpRounds)
				}
			}
			if len(central) == 0 {
				continue
			}
			t.AddRow(fam.name, itoa(n),
				f2(stats.Summarize(central).Mean),
				f2(stats.Summarize(dist).Mean)+" / "+f2(stats.Summarize(dr).Mean),
				f2(stats.Summarize(mis).Mean)+" / "+f2(stats.Summarize(mr).Mean),
				f2(stats.Summarize(lp).Mean)+" / "+f2(stats.Summarize(lr).Mean))
		}
	}
	t.Notes = append(t.Notes,
		"all of §3's approaches find one good dominating set; none addresses schedule lifetime — the paper's gap",
		"Luby MIS terminates in O(log n) rounds and is a constant-factor dominating set on unit disk graphs",
		"the span-based distributed greedy tracks the centralized greedy's size at higher round cost",
		"LP-rounding runs in 3 rounds flat (Kuhn–Wattenhofer's constant-time regime) at an O(log Δ) size factor")
	return t
}
