package experiments

import (
	"repro/internal/core"
	"repro/internal/domatic"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E22",
		Title: "Tight optima via column generation — true LP ratios at mid-scale",
		Run:   runE22,
	})
}

func runE22(cfg Config) *Table {
	t := &Table{
		ID:     "E22",
		Title:  "Tight optima via column generation — true LP ratios at mid-scale",
		Header: []string{"n", "LP OPT", "Lemma 5.1 bound", "bound/LP", "Alg1/LP", "greedy/LP", "CG iters"},
	}
	root := rng.New(cfg.Seed + 22)
	sizes := []int{24, 40}
	if cfg.Quick {
		sizes = []int{16}
	}
	const b = 3
	for _, n := range sizes {
		srcs := root.SplitN(cfg.trials())
		type sample struct {
			lpOpt, bound, alg, greedy, iters float64
			ok                               bool
		}
		samples := mapTrials(cfg, "E22", cfg.trials(), func(i int) sample {
			src := srcs[i]
			g := gen.GNP(n, 0.3, src)
			batteries := make([]int, n)
			for j := range batteries {
				batteries[j] = b
			}
			lpOpt, _, _, iters, err := exact.FractionalCG(g, batteries, 1, 3000)
			if err != nil || lpOpt <= 0 {
				return sample{}
			}
			s := solve(solver.NameUniform, g, batteries, 1, 30, src.Split())
			gp := domatic.GreedyPartition(g, domatic.GreedyExtractor)
			return sample{
				lpOpt:  lpOpt,
				bound:  float64(core.GeneralUpperBound(g, batteries)),
				alg:    float64(s.Lifetime()),
				greedy: float64(len(gp) * b),
				iters:  float64(iters),
				ok:     true,
			}
		})
		var lpOpts, boundR, algR, greedyR, iters []float64
		for _, sm := range samples {
			if sm.ok {
				lpOpts = append(lpOpts, sm.lpOpt)
				boundR = append(boundR, sm.bound/sm.lpOpt)
				algR = append(algR, sm.alg/sm.lpOpt)
				greedyR = append(greedyR, sm.greedy/sm.lpOpt)
				iters = append(iters, sm.iters)
			}
		}
		if len(lpOpts) == 0 {
			continue
		}
		t.AddRow(itoa(n),
			f2(stats.Summarize(lpOpts).Mean),
			f2(stats.Summarize(lpOpts).Mean*stats.Summarize(boundR).Mean),
			f2(stats.Summarize(boundR).Mean),
			f2(stats.Summarize(algR).Mean),
			f2(stats.Summarize(greedyR).Mean),
			f2(stats.Summarize(iters).Mean))
	}
	t.Notes = append(t.Notes,
		"the LP optimum (column generation, certified by pricing) is the true continuous-time optimum;",
		"bound/LP ≈ 1.01–1.04 certifies that Lemma 5.1 is nearly tight on G(n,p) — so every ratio-vs-bound",
		"column in E2/E4/E5 reflects a genuine algorithm gap, not bound slack; the greedy partition is",
		"near-optimal (≈ 0.85 of LP) while Alg1 pays the distributed log factor")
	return t
}
