package experiments

import (
	"math"

	"repro/internal/distsim"
	"repro/internal/gen"
	"repro/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Distributed cost — constant rounds, messages linear in edges",
		Run:   runE8,
	})
}

func e8Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{64, 256}
	}
	return []int{64, 256, 1024, 4096}
}

func runE8(cfg Config) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Distributed cost — constant rounds, messages linear in edges",
		Header: []string{"protocol", "n", "edges", "rounds", "messages", "msgs/edge"},
	}
	root := rng.New(cfg.Seed + 8)
	for _, n := range e8Sizes(cfg) {
		p := 8 * math.Log(float64(n)) / float64(n)
		if p > 1 {
			p = 1
		}
		src := root.Split()
		g := gen.GNP(n, p, src)

		sources := src.SplitN(n)
		uniNodes := distsim.NewUniformNodes(g, 3, sources)
		uniStats, err := distsim.Run(g, distsim.Programs(uniNodes), distsim.Options{MaxRounds: 10})
		if err == nil {
			t.AddRow("Alg1 uniform", itoa(n), itoa(g.M()), itoa(uniStats.Rounds),
				itoa(uniStats.Messages), f2(float64(uniStats.Messages)/float64(g.M())))
		}

		b := make([]int, n)
		for i := range b {
			b[i] = 1 + src.Intn(4)
		}
		genNodes := distsim.NewGeneralNodes(g, b, 3, src.SplitN(n))
		genStats, err := distsim.Run(g, distsim.Programs(genNodes), distsim.Options{MaxRounds: 10})
		if err == nil {
			t.AddRow("Alg2 general", itoa(n), itoa(g.M()), itoa(genStats.Rounds),
				itoa(genStats.Messages), f2(float64(genStats.Messages)/float64(g.M())))
		}
	}
	t.Notes = append(t.Notes,
		"rounds are constant in n: 1 exchange for Algorithm 1, 2 for Algorithm 2 (2-hop information only)",
		"messages are exactly one per edge direction per broadcast: 2M and 4M respectively")
	return t
}
