// Package experiments defines the reproduction experiments E1–E13 listed in
// DESIGN.md. The paper is theoretical, so each experiment measures the
// quantity one of its theorems, lemmas, figures, or cited results bounds and
// renders a table; EXPERIMENTS.md records the expected shapes. The same code
// backs cmd/ltbench and the root-level benchmarks.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// ErrCanceled is returned by Run when Config.Cancel reported cancellation
// before the experiment finished. The accompanying table, if any, holds only
// the rows completed up to that point. It aliases solver.ErrCanceled so the
// serve layer's errors.Is checks see one identity whether a deadline fired
// inside the solver driver or between experiment trials.
var ErrCanceled = solver.ErrCanceled

// solve resolves an algorithm by its solver-registry name and runs the
// shared WHP driver with the trial's randomness source — the one way every
// experiment obtains a schedule. Experiments construct well-formed
// instances, so a driver error is a bug and panics rather than threading
// error plumbing through every trial closure.
func solve(name string, g *graph.Graph, budgets []int, k, tries int, src *rng.Source) *core.Schedule {
	s, err := solver.Solve(instance.New(g, budgets).WithK(k), solver.Spec{Name: name},
		solver.Options{Tries: tries, Src: src})
	if err != nil {
		panic(fmt.Sprintf("experiments: solver %q: %v", name, err))
	}
	return s
}

// uniformBudgets broadcasts the uniform battery b over n nodes, bridging
// the scalar-battery experiments onto the registry's budget-vector surface.
func uniformBudgets(n, b int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Config controls an experiment run.
type Config struct {
	// Seed makes every experiment deterministic end to end.
	Seed uint64
	// Trials is the number of repetitions per data point (0 = default 10,
	// or 3 in Quick mode).
	Trials int
	// Quick shrinks the parameter sweeps to test/bench-friendly sizes.
	Quick bool
	// Budget overrides the refinement move budget of the experiments that
	// run the tabu/anneal refiners (E25). 0 keeps each experiment's sweep.
	Budget int
	// Trace, when non-nil, receives trial_start/trial_end events around
	// every trial, labeled with the experiment ID. Emissions are serialized
	// (trials run in parallel), so single-writer sinks like obs.JSONL are
	// safe to pass directly.
	Trace obs.Tracer
	// Cancel, when non-nil, is polled between trials (and between
	// experiments in RunAll). It must be sticky — once it returns true it
	// keeps returning true, like a context's Done check. When it fires,
	// remaining trials are skipped and Run returns ErrCanceled.
	Cancel func() bool
}

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return 3
	}
	return 10
}

func (c Config) canceled() bool { return c.Cancel != nil && c.Cancel() }

// mapTrials runs fn for trials 0..n-1 in parallel (via par.Map) with the
// config's escape hatches applied: Cancel is polled as each trial starts —
// once it reports true the remaining trials return the zero T, which every
// experiment already drops via its ok flag or zero guard — and Trace
// receives trial_start/trial_end events labeled with the experiment ID.
// With neither hatch set this is exactly par.Map.
func mapTrials[T any](cfg Config, id string, n int, fn func(i int) T) []T {
	if cfg.Cancel == nil && cfg.Trace == nil {
		return par.Map(n, 0, fn)
	}
	// Trials run in parallel; serialize the trial events so single-writer
	// sinks (JSONL, Memory) can be handed in directly.
	h := obs.Hooks{Trace: obs.Synchronized(cfg.Trace)}
	var stop atomic.Bool
	return par.Map(n, 0, func(i int) T {
		if stop.Load() || cfg.canceled() {
			stop.Store(true)
			var zero T
			return zero
		}
		h.Emit(obs.TrialStart(id, i))
		v := fn(i)
		h.Emit(obs.TrialEnd(id, i))
		return v
	})
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the table in RFC-4180-ish CSV (header row first, notes
// omitted) for downstream plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Numeric ordering: E2 before E10.
		return idKey(ids[i]) < idKey(ids[j])
	})
	return ids
}

func idKey(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// Get looks up an experiment by ID (case-insensitive).
func Get(id string) (Experiment, bool) {
	e, ok := registry[strings.ToUpper(id)]
	return e, ok
}

// Run executes the experiment with the given ID. When cfg.Cancel fires
// before or during the run, Run returns ErrCanceled (alongside whatever
// partial table the experiment produced).
func Run(id string, cfg Config) (*Table, error) {
	e, ok := Get(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	t := e.Run(cfg)
	if cfg.canceled() {
		return t, ErrCanceled
	}
	return t, nil
}

// RunAll executes every registered experiment in ID order, stopping early
// when cfg.Cancel fires (the tables completed so far are returned).
func RunAll(cfg Config) []*Table {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if errors.Is(err, ErrCanceled) {
			return out
		}
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string    { return fmt.Sprint(v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
