package experiments

import (
	"strings"
	"testing"
)

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Header: []string{"a", "b,with comma"},
		Rows:   [][]string{{"1", `quote "q"`}, {"2", "plain"}},
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,\"b,with comma\"\n1,\"quote \"\"q\"\"\"\n2,plain\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestExperimentCSVHasHeaderAndRows(t *testing.T) {
	tab, err := Run("E7", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(tab.Rows)+1 {
		t.Fatalf("%d CSV lines for %d rows", len(lines), len(tab.Rows))
	}
}
